package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunRequiresCommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
}

func TestRunExample1Command(t *testing.T) {
	if err := run([]string{"example1"}); err != nil {
		t.Fatalf("example1: %v", err)
	}
}

func TestRunFig2CommandTiny(t *testing.T) {
	err := run([]string{"fig2", "-alpha", "2", "-k", "4", "-runs", "1", "-n", "8", "-iters", "10"})
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	err = run([]string{"fig2", "-alpha", "2", "-k", "4", "-runs", "1", "-n", "8", "-iters", "10", "-csv"})
	if err != nil {
		t.Fatalf("fig2 csv: %v", err)
	}
	if err := run([]string{"fig2", "-n", "not-a-number"}); err == nil {
		t.Fatal("bad -n accepted")
	}
}

func TestRunHardnessCommand(t *testing.T) {
	if err := run([]string{"hardness", "-m", "2", "-b", "6", "-runs", "2"}); err != nil {
		t.Fatalf("hardness: %v", err)
	}
}

func TestRunAblateCommands(t *testing.T) {
	if err := run([]string{"ablate"}); err == nil {
		t.Fatal("ablate without study accepted")
	}
	if err := run([]string{"ablate", "bogus"}); err == nil {
		t.Fatal("unknown study accepted")
	}
	if err := run([]string{"ablate", "rounding", "-runs", "2"}); err != nil {
		t.Fatalf("ablate rounding: %v", err)
	}
	if err := run([]string{"ablate", "online", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate online: %v", err)
	}
	if err := run([]string{"ablate", "exact", "-runs", "1"}); err != nil {
		t.Fatalf("ablate exact: %v", err)
	}
	if err := run([]string{"ablate", "lambda", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate lambda: %v", err)
	}
	if err := run([]string{"ablate", "surrogate", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate surrogate: %v", err)
	}
	if err := run([]string{"ablate", "rounding", "-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunWorkloadCommand(t *testing.T) {
	if err := run([]string{"workload", "-n", "5", "-k", "4"}); err != nil {
		t.Fatalf("workload: %v", err)
	}
}

func TestRunTraceCommand(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	data := "id,src,dst,release,deadline,size\n0,16,17,0,10,5\n1,17,18,2,12,3\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"rs", "spmcf", "online"} {
		if err := run([]string{"trace", "-file", path, "-scheme", scheme, "-k", "4"}); err != nil {
			t.Fatalf("trace %s: %v", scheme, err)
		}
	}
	if err := run([]string{"trace", "-file", path, "-scheme", "rs", "-gantt"}); err != nil {
		t.Fatalf("trace gantt: %v", err)
	}
	if err := run([]string{"trace", "-file", path, "-scheme", "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"trace", "-file", path, "-topo", "bogus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run([]string{"trace", "-file", dir + "/missing.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCompareCommand(t *testing.T) {
	if err := run([]string{"compare", "-n", "10", "-k", "4", "-iters", "10"}); err != nil {
		t.Fatalf("compare: %v", err)
	}
	if err := run([]string{"compare", "-n", "10", "-k", "4", "-iters", "10", "-idle-mult", "3"}); err != nil {
		t.Fatalf("compare with idle power: %v", err)
	}
}

func TestRunTopoCommand(t *testing.T) {
	for _, kind := range []string{"fattree", "bcube", "leafspine", "line", "parallel"} {
		if err := run([]string{"topo", "-kind", kind, "-k", "4"}); err != nil {
			t.Fatalf("topo %s: %v", kind, err)
		}
	}
	if err := run([]string{"topo", "-kind", "bogus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	if !strings.Contains(usage, "fig2") {
		t.Fatal("usage missing fig2")
	}
}
