package main

import (
	"context"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"dcnflow"
)

func TestRunRequiresCommand(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing command accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatalf("help: %v", err)
	}
}

func TestRunExample1Command(t *testing.T) {
	if err := run([]string{"example1"}); err != nil {
		t.Fatalf("example1: %v", err)
	}
}

func TestRunFig2CommandTiny(t *testing.T) {
	err := run([]string{"fig2", "-alpha", "2", "-k", "4", "-runs", "1", "-n", "8", "-iters", "10"})
	if err != nil {
		t.Fatalf("fig2: %v", err)
	}
	err = run([]string{"fig2", "-alpha", "2", "-k", "4", "-runs", "1", "-n", "8", "-iters", "10", "-csv"})
	if err != nil {
		t.Fatalf("fig2 csv: %v", err)
	}
	if err := run([]string{"fig2", "-n", "not-a-number"}); err == nil {
		t.Fatal("bad -n accepted")
	}
}

func TestRunHardnessCommand(t *testing.T) {
	if err := run([]string{"hardness", "-m", "2", "-b", "6", "-runs", "2"}); err != nil {
		t.Fatalf("hardness: %v", err)
	}
}

func TestRunAblateCommands(t *testing.T) {
	if err := run([]string{"ablate"}); err == nil {
		t.Fatal("ablate without study accepted")
	}
	if err := run([]string{"ablate", "bogus"}); err == nil {
		t.Fatal("unknown study accepted")
	}
	if err := run([]string{"ablate", "rounding", "-runs", "2"}); err != nil {
		t.Fatalf("ablate rounding: %v", err)
	}
	if err := run([]string{"ablate", "online", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate online: %v", err)
	}
	if err := run([]string{"ablate", "exact", "-runs", "1"}); err != nil {
		t.Fatalf("ablate exact: %v", err)
	}
	if err := run([]string{"ablate", "lambda", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate lambda: %v", err)
	}
	if err := run([]string{"ablate", "surrogate", "-runs", "1", "-n", "8", "-iters", "10"}); err != nil {
		t.Fatalf("ablate surrogate: %v", err)
	}
	if err := run([]string{"ablate", "rounding", "-badflag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestUsageListsEveryCommand guards the self-documentation contract: every
// registered subcommand must appear in the top-level usage text with its
// one-line summary, and the experiment commands must carry their DESIGN.md
// IDs.
func TestUsageListsEveryCommand(t *testing.T) {
	text := usage()
	for _, c := range commands() {
		if !strings.Contains(text, "\n  "+c.name) {
			t.Errorf("usage missing command %q", c.name)
		}
		if !strings.Contains(text, c.summary) {
			t.Errorf("usage missing summary for %q", c.name)
		}
		if c.ids != "" && !strings.Contains(text, "["+c.ids+"]") {
			t.Errorf("usage missing experiment ids %q for %q", c.ids, c.name)
		}
	}
	if !strings.Contains(text, "DESIGN.md") {
		t.Error("usage does not point at DESIGN.md")
	}
	// Experiment IDs on the CLI surface: the full DESIGN.md index.
	for _, id := range []string{"E1", "F2", "T2/T3", "A1", "A2", "A3", "O1"} {
		if !strings.Contains(text, id) {
			t.Errorf("usage missing experiment id %q", id)
		}
	}
}

// TestExperimentIDsAgreeAcrossDocs pins the documentation contract: the
// CLI usage text, DESIGN.md's per-experiment index and README.md's
// experiment table must all carry the full set of experiment IDs.
func TestExperimentIDsAgreeAcrossDocs(t *testing.T) {
	ids := []string{"E1", "F2", "T2/T3", "A1", "A2", "A3", "O1"}
	sources := map[string]string{"usage": usage()}
	for _, fname := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile("../../" + fname)
		if err != nil {
			t.Fatalf("reading %s: %v", fname, err)
		}
		sources[fname] = string(data)
	}
	for where, text := range sources {
		for _, id := range ids {
			if !strings.Contains(text, id) {
				t.Errorf("%s missing experiment id %q", where, id)
			}
		}
	}
}

// TestSubcommandHelpSelfDocuments: each command's -h names the command and
// its summary and is not an error.
func TestSubcommandHelpSelfDocuments(t *testing.T) {
	for _, c := range commands() {
		args := []string{c.name, "-h"}
		if c.name == "ablate" {
			args = []string{c.name, "lambda", "-h"}
		}
		if err := run(args); err != nil {
			t.Errorf("%s -h: %v", c.name, err)
		}
	}
}

func TestRunOnlineCommand(t *testing.T) {
	if err := run([]string{"online", "-mode", "compare", "-workload", "uniform", "-n", "8", "-runs", "1", "-iters", "10"}); err != nil {
		t.Fatalf("online compare: %v", err)
	}
	if err := run([]string{"online", "-mode", "rolling", "-n", "10", "-iters", "10"}); err != nil {
		t.Fatalf("online rolling: %v", err)
	}
	if err := run([]string{"online", "-mode", "greedy", "-n", "10", "-iters", "10"}); err != nil {
		t.Fatalf("online greedy: %v", err)
	}
	if err := run([]string{"online", "-mode", "bogus"}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"online", "-mode", "compare", "-warm=false", "-n", "4", "-runs", "1"}); err == nil {
		t.Fatal("compare mode silently ignored -warm")
	}
	if err := run([]string{"online", "-mode", "compare", "-reject", "-n", "4", "-runs", "1"}); err == nil {
		t.Fatal("compare mode silently ignored -reject")
	}
	if err := run([]string{"online", "-mode", "compare", "-workload", "bogus", "-n", "4", "-runs", "1"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestRunScenarioCommand exercises the scenario runner end to end: spec
// loading, registry dispatch, multi-solver runs, and the error paths.
func TestRunScenarioCommand(t *testing.T) {
	const spec = "../../examples/scenarios/uniform-fattree.json"
	if err := run([]string{"run", spec, "-solver", "dcfsr,sp-mcf,greedy-online"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Flags-before-path order works too.
	if err := run([]string{"run", "-solver", "sp-mcf", spec}); err != nil {
		t.Fatalf("run (flags first): %v", err)
	}
	if err := run([]string{"run"}); err == nil {
		t.Fatal("missing spec path accepted")
	}
	if err := run([]string{"run", spec, "-solver", "bogus"}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if err := run([]string{"run", "../../testdata/missing.json"}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	if err := run([]string{"run", spec, "extra-arg"}); err == nil {
		t.Fatal("extra positional argument accepted")
	}
	if err := run([]string{"run", "-solver", "sp-mcf", spec, "extra-arg"}); err == nil {
		t.Fatal("extra positional argument accepted in flags-first form")
	}
	// A timeout that has already expired must surface the context error.
	err := run([]string{"run", spec, "-solver", "dcfsr", "-timeout", "1ns"})
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("expired -timeout returned %v, want context deadline exceeded", err)
	}
}

// TestRunScenarioAllSolversTiny runs every registered solver through the
// CLI on a spec small enough for the exact enumerator.
func TestRunScenarioAllSolversTiny(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tiny.json"
	spec := `{
  "name": "tiny",
  "topology": {"kind": "fattree", "k": 4, "capacity": 1000},
  "workload": {"kind": "uniform", "n": 6, "t0": 1, "t1": 100, "size_mean": 10, "size_stddev": 3, "seed": 42},
  "model": {"mu": 1, "alpha": 2, "c": 1000},
  "seed": 1
}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", path, "-solver", "all"}); err != nil {
		t.Fatalf("run -solver all: %v", err)
	}
}

// TestRunUsageListsEverySolver guards the self-documentation contract of
// the scenario runner: `dcnflow run -h` must name every registered solver
// (cmd/doccheck enforces the same by executing the binary).
func TestRunUsageListsEverySolver(t *testing.T) {
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := run([]string{"run", "-h"})
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run -h: %v", runErr)
	}
	for _, name := range dcnflow.SolverNames() {
		if !strings.Contains(string(out), name) {
			t.Errorf("run -h missing solver %q:\n%s", name, out)
		}
	}
}

// The solver-name documentation contract (README.md and DESIGN.md mention
// every registered solver) is owned by cmd/doccheck: its solverDocs check
// runs in CI and its own tests gate the repository docs, so it is not
// duplicated here.

func TestServeUsageListsEverySolver(t *testing.T) {
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := run([]string{"serve", "-h"})
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("serve -h: %v", runErr)
	}
	for _, name := range dcnflow.SolverNames() {
		if !strings.Contains(string(out), name) {
			t.Errorf("serve -h missing solver %q:\n%s", name, out)
		}
	}
}

// TestServeCommandEndToEnd boots the serve subcommand on a free port,
// solves one scenario through the HTTP client, checks the energy against
// the in-process registry solve, and shuts the server down gracefully via
// SIGINT — the same sequence `make serve-smoke` drives as a subprocess.
func TestServeCommandEndToEnd(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	serveDone := make(chan error, 1)
	go func() { serveDone <- run([]string{"serve", "-addr", "127.0.0.1:0"}) }()

	// The listen line is printed once the listener is up.
	buf := make([]byte, 4096)
	n, err := r.Read(buf)
	os.Stdout = old
	if err != nil {
		t.Fatalf("reading serve banner: %v", err)
	}
	m := regexp.MustCompile(`listening on (http://[^ ]+)`).FindStringSubmatch(string(buf[:n]))
	if m == nil {
		t.Fatalf("no listen banner in %q", buf[:n])
	}
	go func() { // drain any further stdout so the server never blocks on the pipe
		for {
			if _, err := r.Read(buf); err != nil {
				return
			}
		}
	}()

	spec := dcnflow.ScenarioSpec{
		Topology: dcnflow.TopologySpec{Kind: "line", K: 3, Capacity: 100},
		Workload: dcnflow.WorkloadSpec{Kind: "shuffle", Hosts: 2, Deadline: 6, Size: 2},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 100},
		Seed:     1,
	}
	client := &dcnflow.Client{BaseURL: m[1]}
	resp, err := client.Solve(context.Background(), dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
	if err != nil {
		t.Fatalf("served solve: %v", err)
	}
	inst, err := spec.Instance()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dcnflow.Solve(context.Background(), dcnflow.SolverSPMCF, inst, dcnflow.WithSeed(spec.Seed))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Energy != want.Energy {
		t.Fatalf("served energy %v differs from direct %v", resp.Energy, want.Energy)
	}

	// Graceful shutdown: SIGINT must drain and return nil.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down after SIGINT")
	}
}

func TestRunWorkloadCommand(t *testing.T) {
	if err := run([]string{"workload", "-n", "5", "-k", "4"}); err != nil {
		t.Fatalf("workload: %v", err)
	}
}

func TestRunTraceCommand(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.csv"
	data := "id,src,dst,release,deadline,size\n0,16,17,0,10,5\n1,17,18,2,12,3\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	// Legacy aliases and direct registry names both dispatch.
	for _, scheme := range []string{"rs", "spmcf", "online", "dcfsr", "ecmp-mcf"} {
		if err := run([]string{"trace", "-file", path, "-scheme", scheme, "-k", "4"}); err != nil {
			t.Fatalf("trace %s: %v", scheme, err)
		}
	}
	if err := run([]string{"trace", "-file", path, "-scheme", "rs", "-gantt"}); err != nil {
		t.Fatalf("trace gantt: %v", err)
	}
	if err := run([]string{"trace", "-file", path, "-scheme", "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"trace", "-file", path, "-topo", "bogus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run([]string{"trace", "-file", dir + "/missing.csv"}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunCompareCommand(t *testing.T) {
	if err := run([]string{"compare", "-n", "10", "-k", "4", "-iters", "10"}); err != nil {
		t.Fatalf("compare: %v", err)
	}
	if err := run([]string{"compare", "-n", "10", "-k", "4", "-iters", "10", "-idle-mult", "3"}); err != nil {
		t.Fatalf("compare with idle power: %v", err)
	}
}

func TestRunTopoCommand(t *testing.T) {
	for _, kind := range []string{"fattree", "bcube", "leafspine", "line", "parallel"} {
		if err := run([]string{"topo", "-kind", kind, "-k", "4"}); err != nil {
			t.Fatalf("topo %s: %v", kind, err)
		}
	}
	if err := run([]string{"topo", "-kind", "bogus"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	if !strings.Contains(usage(), "fig2") {
		t.Fatal("usage missing fig2")
	}
}

// TestRunSweepCommand exercises the sweep runner end to end: spec loading,
// worker pool, JSONL output, solver override, and the error paths.
func TestRunSweepCommand(t *testing.T) {
	const spec = "../../examples/sweeps/smoke.json"
	dir := t.TempDir()
	if err := run([]string{"sweep", spec, "-workers", "2", "-solver", "sp-mcf,always-on", "-out", dir + "/out.jsonl"}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	data, err := os.ReadFile(dir + "/out.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 8 {
		t.Fatalf("JSONL lines = %d, want 8 (2 topologies x 2 seeds x 2 solvers)", got)
	}
	// Flags-before-path order works too.
	if err := run([]string{"sweep", "-workers", "2", "-solver", "sp-mcf", spec}); err != nil {
		t.Fatalf("sweep (flags first): %v", err)
	}
	if err := run([]string{"sweep"}); err == nil {
		t.Fatal("missing spec path accepted")
	}
	if err := run([]string{"sweep", spec, "-solver", "bogus"}); err == nil {
		t.Fatal("unknown solver override accepted")
	}
	if err := run([]string{"sweep", spec, "extra-arg"}); err == nil {
		t.Fatal("extra positional argument accepted")
	}
	if err := run([]string{"sweep", "../../testdata/missing.json"}); err == nil {
		t.Fatal("missing spec file accepted")
	}
	err = run([]string{"sweep", spec, "-timeout", "1ns"})
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("expired -timeout returned %v, want context deadline exceeded", err)
	}
}

// TestRunSweepCommandDeterministicAcrossWorkers is the CLI half of the
// byte-determinism acceptance criterion: a >= 24-cell grid solved at
// -workers 1 and -workers 8 writes identical JSONL bodies once the
// runtime_ms field is normalised away.
func TestRunSweepCommandDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	spec := dir + "/grid.json"
	if err := os.WriteFile(spec, []byte(`{
  "topologies": [{"kind": "line", "k": 4, "capacity": 1000}, {"kind": "star", "k": 4, "capacity": 1000}],
  "workloads": [{"kind": "uniform", "n": 4, "t0": 1, "t1": 30, "size_mean": 3, "size_stddev": 1}],
  "model": {"mu": 1, "alpha": 2, "c": 1000},
  "seeds": [1, 2, 3],
  "solvers": ["dcfsr", "sp-mcf", "ecmp-mcf", "always-on"]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	runtimeMS := regexp.MustCompile(`"runtime_ms":[0-9eE.+-]+`)
	out := func(workers string) string {
		t.Helper()
		path := dir + "/out-" + workers + ".jsonl"
		if err := run([]string{"sweep", spec, "-workers", workers, "-iters", "15", "-out", path}); err != nil {
			t.Fatalf("sweep -workers %s: %v", workers, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return runtimeMS.ReplaceAllString(string(data), `"runtime_ms":0`)
	}
	one, eight := out("1"), out("8")
	if got := strings.Count(one, "\n"); got != 24 {
		t.Fatalf("JSONL lines = %d, want 24", got)
	}
	if one != eight {
		t.Errorf("sweep JSONL differs between -workers 1 and -workers 8:\n%s\nvs\n%s", one, eight)
	}
}

// TestSweepUsageListsEverySolver guards the self-documentation contract of
// the sweep runner: `dcnflow sweep -h` must name every registered solver
// (cmd/doccheck enforces the same by executing the binary).
func TestSweepUsageListsEverySolver(t *testing.T) {
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	runErr := run([]string{"sweep", "-h"})
	w.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("sweep -h: %v", runErr)
	}
	for _, name := range dcnflow.SolverNames() {
		if !strings.Contains(string(out), name) {
			t.Errorf("sweep -h missing solver %q:\n%s", name, out)
		}
	}
}
