// Command dcnflow regenerates every artifact of the paper's evaluation
// (DESIGN.md per-experiment index) from the command line:
//
//	dcnflow example1                 # E1: Fig. 1 / Example 1 closed-form check
//	dcnflow fig2 -alpha 2            # F2: Fig. 2, x^2 panel
//	dcnflow fig2 -alpha 4 -runs 10   # F2: Fig. 2, x^4 panel, paper-scale runs
//	dcnflow hardness                 # T2/T3: Theorem 2 gadget + Theorem 3 constant
//	dcnflow ablate lambda            # A1: interval granularity
//	dcnflow ablate rounding          # A2: re-rounding budget
//	dcnflow ablate surrogate         # A3: relaxation cost
//	dcnflow online -mode compare     # O1: greedy vs rolling vs offline RS
//	dcnflow online -mode rolling     # one rolling-horizon run with stats
//	dcnflow decisions -mode score    # O2: greedy vs rolling decision regret
//	dcnflow run scenario.json -solver dcfsr,sp-mcf   # solve a JSON scenario spec
//	dcnflow sweep grid.json -workers 8 -out out.jsonl  # run a scenario-sweep grid
//	dcnflow workload -n 100          # dump a generated workload as CSV
//	dcnflow topo -kind fattree -k 4  # emit a topology in Graphviz DOT
//
// Run `dcnflow <command> -h` for any command's flags. The experiment IDs
// (E1, F2, T2/T3, A1-A3, O1, O2) are defined in DESIGN.md's per-experiment
// index, which maps each one to its runner, benchmark and CLI entry.
// Scheme-running commands (run, sweep, compare, trace) dispatch through
// the Scenario/Solver registry of the dcnflow package, so every registered
// solver is reachable from the command line.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dcnflow"
	"dcnflow/internal/core"
	"dcnflow/internal/experiments"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcnflow:", err)
		os.Exit(1)
	}
}

// command is one registered dcnflow subcommand. The usage text is
// generated from this table, so a command cannot be added without
// appearing in `dcnflow -h` (enforced by a test).
type command struct {
	name    string
	summary string // one line for the usage listing
	ids     string // DESIGN.md experiment IDs covered, "" for utilities
	run     func(args []string) error
}

// commands returns the registry backing the dispatch and the usage text.
// (A function rather than a package variable: the run functions reference
// newFlagSet, which reads the registry, and Go rejects that cycle in
// variable initialization.)
func commands() []command {
	return []command{
		{"example1", "reproduce Fig. 1 / Example 1 (closed-form optimum check)", "E1", runExample1},
		{"fig2", "reproduce Fig. 2 (approximation performance of Random-Schedule)", "F2", runFig2},
		{"hardness", "run the Theorem 2 gadget and report the Theorem 3 constant", "T2/T3", runHardness},
		{"ablate", "run an ablation study: lambda | rounding | surrogate | online | exact", "A1 A2 A3", runAblate},
		{"online", "run the online extension: greedy, rolling-horizon, or the O1 comparison", "O1", runOnline},
		{"decisions", "record, replay and score online-scheduler decision logs (counterfactual regret, weighted fitness)", "O2", runDecisions},
		{"run", "solve a JSON scenario spec with registered solvers (see examples/scenarios/)", "", runScenario},
		{"serve", "serve scenario solves over HTTP from a warm engine (POST /v1/solve, /v1/batch; GET /healthz)", "", runServe},
		{"sweep", "run a JSON sweep spec: a scenario grid crossed with solvers, on a worker pool (see examples/sweeps/)", "", runSweep},
		{"workload", "generate and print a random workload as CSV", "", runWorkload},
		{"compare", "run every registered solver (and the fractional LB) on one workload", "", runCompare},
		{"trace", "schedule a CSV flow trace (id,src,dst,release,deadline,size) on a chosen topology; for scheduler-level decision tracing use `dcnflow decisions`", "", runTrace},
		{"topo", "emit a topology in Graphviz DOT", "", runTopo},
	}
}

// usage renders the self-documenting top-level help from the registry.
func usage() string {
	var b strings.Builder
	b.WriteString("usage: dcnflow <command> [flags]\n\ncommands:\n")
	for _, c := range commands() {
		id := ""
		if c.ids != "" {
			id = " [" + c.ids + "]"
		}
		fmt.Fprintf(&b, "  %-9s %s%s\n", c.name, c.summary, id)
	}
	b.WriteString(`
Bracketed IDs refer to DESIGN.md's per-experiment index, which maps every
artifact of the paper's evaluation to its runner, benchmark and CLI entry.
Run "dcnflow <command> -h" for a command's flags.
`)
	return b.String()
}

// newFlagSet builds a flag set whose -h output names the command and its
// registry summary before the flag listing.
func newFlagSet(name string) *flag.FlagSet {
	summary := ""
	for _, c := range commands() {
		if c.name == strings.Fields(name)[0] {
			summary = c.summary
			break
		}
	}
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dcnflow %s [flags]\n  %s\n\nflags:\n", name, summary)
		fs.PrintDefaults()
	}
	return fs
}

func run(args []string) error {
	if len(args) == 0 {
		fmt.Print(usage())
		return errors.New("missing command")
	}
	switch args[0] {
	case "help", "-h", "--help":
		fmt.Print(usage())
		return nil
	}
	for _, c := range commands() {
		if c.name == args[0] {
			err := c.run(args[1:])
			if errors.Is(err, flag.ErrHelp) {
				return nil
			}
			return err
		}
	}
	fmt.Print(usage())
	return fmt.Errorf("unknown command %q", args[0])
}

func runExample1(args []string) error {
	fs := newFlagSet("example1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.RunExample1()
	if err != nil {
		return err
	}
	fmt.Println("Example 1 (line network, f(x) = x^2):")
	fmt.Print(res.Table())
	return nil
}

func runFig2(args []string) error {
	fs := newFlagSet("fig2")
	alpha := fs.Float64("alpha", 2, "power exponent (paper: 2 or 4)")
	k := fs.Int("k", 8, "fat-tree arity (8 = the paper's 80 switches)")
	runs := fs.Int("runs", 10, "independent runs per point (paper: 10)")
	iters := fs.Int("iters", 40, "Frank-Wolfe iterations per interval")
	seed := fs.Int64("seed", 1, "base seed")
	counts := fs.String("n", "40,80,120,160,200", "comma-separated flow counts")
	idleMult := fs.Float64("idle-mult", 0, "idle-power extension: Ropt at this multiple of mean density (0 = paper's sigma=0)")
	csv := fs.Bool("csv", false, "emit CSV instead of a table")
	workers := fs.Int("workers", 1, "concurrent (n, run) grid cells on the sweep pool; never affects results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	flowCounts, err := parseInts(*counts)
	if err != nil {
		return err
	}
	res, err := experiments.RunFig2(experiments.Fig2Config{
		Alpha:            *alpha,
		FlowCounts:       flowCounts,
		Runs:             *runs,
		FatTreeK:         *k,
		Seed:             *seed,
		SolverIters:      *iters,
		IdleRoptMultiple: *idleMult,
		Workers:          *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 2 (power function x^%g, fat-tree k=%d, %d runs):\n", *alpha, *k, *runs)
	if *csv {
		tb := stats.NewTable("n", "RS/LB", "RS_std", "SPMCF/LB", "SPMCF_std", "LB")
		for _, p := range res.Points {
			tb.AddRow(p.N, p.RS, p.RSStd, p.SPMCF, p.SPMCFStd, p.LB)
		}
		fmt.Print(tb.CSV())
		return nil
	}
	fmt.Print(res.Table())
	return nil
}

func runHardness(args []string) error {
	fs := newFlagSet("hardness")
	m := fs.Int("m", 4, "number of 3-element groups")
	b := fs.Float64("b", 12, "group sum B")
	alpha := fs.Float64("alpha", 2, "power exponent")
	links := fs.Int("links", 0, "parallel links (0 = 8m)")
	runs := fs.Int("runs", 5, "rounding seeds to average")
	seed := fs.Int64("seed", 1, "base seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.RunHardness(experiments.HardnessConfig{
		M: *m, B: *b, Alpha: *alpha, Links: *links, Runs: *runs, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Println("Theorem 2 gadget (3-partition reduction):")
	fmt.Print(res.Table())
	return nil
}

func runAblate(args []string) error {
	if len(args) == 0 {
		return errors.New("ablate: need one of lambda | rounding | surrogate | online | exact")
	}
	which := args[0]
	fs := newFlagSet("ablate " + which)
	n := fs.Int("n", 40, "flows")
	runs := fs.Int("runs", 5, "runs per point")
	seed := fs.Int64("seed", 1, "base seed")
	alpha := fs.Float64("alpha", 2, "power exponent")
	iters := fs.Int("iters", 40, "Frank-Wolfe iterations")
	workers := fs.Int("workers", 1, "concurrent grid cells on the sweep pool; never affects results")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cfg := experiments.AblateConfig{
		N: *n, Runs: *runs, Seed: *seed, Alpha: *alpha, SolverIters: *iters, Workers: *workers,
	}
	switch which {
	case "lambda":
		res, err := experiments.RunAblationLambda(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("A1 — interval granularity (lambda) sensitivity:")
		fmt.Print(res.Table())
	case "rounding":
		res, err := experiments.RunAblationRounding(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Println("A2 — re-rounding budget on a capacity-tight instance:")
		fmt.Print(res.Table())
	case "surrogate":
		res, err := experiments.RunAblationSurrogate(cfg)
		if err != nil {
			return err
		}
		fmt.Println("A3 — relaxation cost (dynamic vs envelope):")
		fmt.Print(res.Table())
	case "online":
		res, err := experiments.RunOnlineComparison(experiments.OnlineConfig{AblateConfig: cfg}, nil)
		if err != nil {
			return err
		}
		fmt.Println("O1 — online greedy vs rolling-horizon vs offline Random-Schedule (diurnal):")
		fmt.Print(res.Table())
	case "exact":
		res, err := experiments.RunExactComparison(cfg.Seed, cfg.Runs, nil)
		if err != nil {
			return err
		}
		fmt.Println("EXT — Random-Schedule vs brute-force optimum (small instances):")
		fmt.Print(res.Table())
	default:
		return fmt.Errorf("ablate: unknown study %q", which)
	}
	return nil
}

func runOnline(args []string) error {
	fs := newFlagSet("online")
	mode := fs.String("mode", "compare", "compare | rolling | greedy")
	workload := fs.String("workload", "diurnal", "uniform | diurnal | incast")
	n := fs.Int("n", 80, "flows per run")
	k := fs.Int("k", 4, "fat-tree arity")
	runs := fs.Int("runs", 3, "runs per point (compare mode)")
	counts := fs.String("counts", "", "comma-separated flow counts for compare mode (default: -n)")
	alpha := fs.Float64("alpha", 2, "power exponent")
	iters := fs.Int("iters", 30, "Frank-Wolfe iterations per interval")
	seed := fs.Int64("seed", 1, "base seed")
	epoch := fs.Float64("epoch", 0, "fixed re-plan period for rolling (0 = re-plan per arrival)")
	warm := fs.Bool("warm", true, "warm-start epoch re-solves from the previous epoch")
	reject := fs.Bool("reject", false, "admission control: reject flows that cannot fit under capacity")
	delta := fs.Bool("delta", false, "rolling mode: enable the incremental delta re-solve across epochs")
	deltaDrift := fs.Float64("delta-drift", 0.25, "delta mode: accumulated load-drift bound before a full re-plan")
	deltaStale := fs.Int("delta-stale", 16, "delta mode: max consecutive delta epochs before a full re-plan (0 = unbounded)")
	workers := fs.Int("workers", 1, "concurrent grid cells on the sweep pool (compare mode); never affects results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.OnlineConfig{
		AblateConfig: experiments.AblateConfig{
			FatTreeK: *k, N: *n, Runs: *runs, Seed: *seed, Alpha: *alpha, SolverIters: *iters,
			Workers: *workers,
		},
		Workload: *workload,
		Epoch:    *epoch,
	}
	if *mode == "compare" {
		// The comparison runner pins WarmStart on and admission control
		// off (its contract rejects runs with rejected flows); refuse
		// flags it would silently ignore.
		var ignored []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "warm", "reject", "delta", "delta-drift", "delta-stale":
				ignored = append(ignored, "-"+f.Name)
			}
		})
		if len(ignored) > 0 {
			return fmt.Errorf("online: %s not supported in -mode compare", strings.Join(ignored, ", "))
		}
		flowCounts := []int{*n}
		if *counts != "" {
			var err error
			if flowCounts, err = parseInts(*counts); err != nil {
				return err
			}
		}
		res, err := experiments.RunOnlineComparison(cfg, flowCounts)
		if err != nil {
			return err
		}
		fmt.Printf("O1 — online comparison (%s workload, fat-tree k=%d, %d runs):\n", *workload, *k, *runs)
		fmt.Print(res.Table())
		return nil
	}

	// Single-run modes: one workload instance, one scheme, full stats.
	ft, err := topology.FatTree(*k, 1e12)
	if err != nil {
		return err
	}
	set, err := experiments.OnlineWorkloadInstance(cfg, ft, *n, *seed)
	if err != nil {
		return err
	}
	model := power.Model{Mu: 1, Alpha: *alpha, C: 1e12}
	lb, err := core.LowerBound(ft.Graph, set, model, core.DCFSROptions{
		Solver: mcfsolve.Options{MaxIters: *iters},
	})
	if err != nil {
		return err
	}
	switch *mode {
	case "rolling":
		var policy online.ReplanPolicy = online.ArrivalCount{N: 1}
		if *epoch > 0 {
			policy = online.FixedPeriod{Period: *epoch}
		}
		var dopts core.DeltaOptions
		if *delta {
			dopts = core.DeltaOptions{Enabled: true, DriftBound: *deltaDrift, MaxStaleEpochs: *deltaStale}
		}
		res, rep, err := online.RunRolling(ft.Graph, set, model, online.RollingOptions{
			Policy: policy,
			DCFSR: core.DCFSROptions{
				Seed:      *seed,
				Solver:    mcfsolve.Options{MaxIters: *iters},
				WarmStart: *warm,
			},
			RejectOverCapacity: *reject,
			Delta:              dopts,
		})
		if err != nil {
			return err
		}
		e := res.Schedule.EnergyTotal(model)
		fmt.Printf("rolling-horizon on %s (%d flows, %s workload):\n", ft.Name, set.Len(), *workload)
		fmt.Printf("  energy %.4g (%.3fx of offline LB %.4g)\n", e, e/lb, lb)
		fmt.Printf("  epochs %d, FW iterations %d, warm-seeded intervals %d/%d\n",
			res.Stats.Epochs, res.Stats.FWIters, res.Stats.SeededIntervals, res.Stats.SolvedIntervals)
		if *delta {
			fmt.Printf("  delta epochs %d/%d, reused intervals %d\n",
				res.Stats.DeltaEpochs, res.Stats.Epochs, res.Stats.ReusedIntervals)
		}
		fmt.Printf("  admitted %d, rejected %d; deadline violations %d, capacity violations %d\n",
			rep.Admitted, rep.Rejected, rep.DeadlineViolations, rep.CapacityViolations)
	case "greedy":
		res, err := online.Run(ft.Graph, set, model, online.Options{RejectOverCapacity: *reject})
		if err != nil {
			return err
		}
		simRes, err := dcnflow.Simulate(ft.Graph, set, res.Schedule, model, dcnflow.SimOptions{})
		if err != nil {
			return err
		}
		e := res.Schedule.EnergyTotal(model)
		fmt.Printf("marginal-cost greedy on %s (%d flows, %s workload):\n", ft.Name, set.Len(), *workload)
		fmt.Printf("  energy %.4g (%.3fx of offline LB %.4g)\n", e, e/lb, lb)
		fmt.Printf("  admitted %d/%d, peak link rate %.4g, deadlines met %d/%d\n",
			res.Admitted, set.Len(), res.PeakRate, simRes.DeadlinesMet, set.Len())
	default:
		return fmt.Errorf("online: unknown mode %q", *mode)
	}
	return nil
}

// runDecisions is the CLI face of the decision-log subsystem (O2): record a
// scheduler's decision trace as JSONL, replay a recorded trace's top-k
// alternatives for per-decision regret, or run the full greedy-vs-rolling
// decision-regret experiment.
func runDecisions(args []string) error {
	fs := newFlagSet("decisions")
	mode := fs.String("mode", "score", "record | replay | score")
	scheduler := fs.String("scheduler", "rolling", "record mode: greedy | rolling")
	workload := fs.String("workload", "diurnal", "uniform | diurnal | incast")
	n := fs.Int("n", 40, "flows")
	k := fs.Int("k", 4, "fat-tree arity")
	alpha := fs.Float64("alpha", 2, "power exponent")
	iters := fs.Int("iters", 30, "Frank-Wolfe iterations per interval")
	seed := fs.Int64("seed", 1, "workload and solver seed")
	epoch := fs.Float64("epoch", 0, "fixed re-plan period for rolling (0 = re-plan per arrival)")
	out := fs.String("out", "", "record mode: write the decision log to this file (\"-\" = stdout)")
	file := fs.String("file", "", "replay mode: recorded decision log to replay")
	topk := fs.Int("topk", 2, "alternative paths replayed per admit decision")
	maxDec := fs.Int("max-decisions", 4, "admit decisions expanded by replay/score (each costs one full re-run)")
	fitEnergy := fs.Float64("fit-energy", 1, "fitness weight on total energy")
	fitMiss := fs.Float64("fit-miss", 0, "fitness weight per missed deadline")
	fitSlack := fs.Float64("fit-slack", 0, "fitness credit on the p99 tail slack")
	requireRegret := fs.Bool("require-regret", false, "replay mode: fail unless some counterfactual shows nonzero regret")
	requireWin := fs.Bool("require-win", false, "score mode: fail unless rolling demonstrably beats a forced greedy choice")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fit := dcnflow.Fitness{EnergyWeight: *fitEnergy, MissWeight: *fitMiss, SlackP99Weight: *fitSlack}
	cfg := experiments.DecisionConfig{
		OnlineConfig: experiments.OnlineConfig{
			AblateConfig: experiments.AblateConfig{
				FatTreeK: *k, N: *n, Seed: *seed, Alpha: *alpha, SolverIters: *iters,
			},
			Workload: *workload,
			Epoch:    *epoch,
		},
		TopK: *topk, MaxDecisions: *maxDec, Fitness: fit,
	}
	switch *mode {
	case "record":
		log, rep, err := experiments.RecordDecisions(cfg, *scheduler)
		if err != nil {
			return err
		}
		switch *out {
		case "-":
			if err := dcnflow.SaveDecisionLog(os.Stdout, log); err != nil {
				return err
			}
		case "":
			return errors.New("decisions: record mode needs -out (path, or \"-\" for stdout)")
		default:
			if err := dcnflow.SaveDecisionLogFile(*out, log); err != nil {
				return err
			}
			fmt.Printf("recorded %d decisions of the %s scheduler to %s\n", len(log.Records), *scheduler, *out)
		}
		fmt.Fprintf(os.Stderr, "  admitted %d, rejected %d; deadline violations %d, capacity violations %d\n",
			rep.Admitted, rep.Rejected, rep.DeadlineViolations, rep.CapacityViolations)
		return nil
	case "replay":
		if *file == "" {
			return errors.New("decisions: replay mode needs -file")
		}
		log, err := dcnflow.LoadDecisionLogFile(*file)
		if err != nil {
			return err
		}
		ft, set, model, err := experiments.DecisionInstance(log.Meta)
		if err != nil {
			return err
		}
		rep, err := dcnflow.ReplayDecisions(dcnflow.DecisionReplayInput{
			Log: log, Graph: ft.Graph, Flows: set, Model: model,
			Factory: experiments.DecisionFactory(log.Meta, ft, set, model),
			Opts:    dcnflow.DecisionReplayOptions{TopK: *topk, MaxDecisions: *maxDec, Fitness: fit},
		})
		if err != nil {
			return err
		}
		fmt.Printf("counterfactual replay of %s (%s scheduler, fitness %s):\n", *file, log.Meta.Scheduler, fit)
		fmt.Print(rep.Table())
		if *requireRegret && rep.RegretRows() == 0 {
			return errors.New("decisions: no counterfactual produced nonzero regret")
		}
		return nil
	case "score":
		res, err := experiments.RunDecisionRegret(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("O2 — decision regret, greedy vs rolling (%s workload, fat-tree k=%d, fitness %s):\n",
			*workload, *k, fit)
		fmt.Print(res.Table())
		fmt.Printf("rolling wins %d/%d forced-path demonstrations; top-%d replay of the rolling log:\n",
			res.RollingWins(), len(res.Demos), *topk)
		fmt.Print(res.Replay.Table())
		if *requireWin && res.RollingWins() == 0 {
			return errors.New("decisions: no demonstrated rolling win over the forced greedy choice")
		}
		return nil
	default:
		return fmt.Errorf("decisions: unknown mode %q", *mode)
	}
}

// cliEngine is the one shared Engine the scheme-running subcommands (run,
// sweep, compare, trace) dispatch through: compiled topologies, cached
// workload instances and pooled solver scratch are shared across whatever
// a single invocation does. The serve subcommand builds its own engine
// sized by its -cache/-workers flags.
var (
	cliEngineOnce sync.Once
	cliEngineVal  *dcnflow.Engine
)

func cliEngine() *dcnflow.Engine {
	cliEngineOnce.Do(func() {
		cliEngineVal = dcnflow.NewEngine(dcnflow.EngineOptions{})
	})
	return cliEngineVal
}

// runServe starts the HTTP solve server on a warm shared engine. The
// listener address is printed once serving begins ("listening on
// http://..."), and SIGINT/SIGTERM drain in-flight requests before exit —
// the smoke harness (cmd/servesmoke, `make serve-smoke`) drives exactly
// this sequence.
func runServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request solve ceiling (requests may ask for less via timeout_ms)")
	maxBatch := fs.Int("max-batch", 64, "largest /v1/batch request accepted")
	cache := fs.Int("cache", 64, "compiled-instance cache entries (distinct topology+model pairs held warm)")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent batch solves; a pure wall-clock lever")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window after SIGINT/SIGTERM")
	shards := fs.Int("shards", 1, "engine shards; requests route by topology fingerprint, each shard holds its own cache and solver pools")
	admitRate := fs.Float64("admit-rate", 0, "token-bucket admission rate in requests/s (0 disables admission control)")
	admitBurst := fs.Float64("admit-burst", 0, "admission bucket capacity (0 selects max(admit-rate, 1))")
	admitQueue := fs.Int("admit-queue", 64, "bounded accept-queue depth; a full queue answers 429 with Retry-After")
	solvers := fs.String("solver", "all",
		"solvers served: comma-separated names, or \"all\"; registered: "+strings.Join(dcnflow.SolverNames(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	names, err := solverList(*solvers)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	group := dcnflow.NewEngineGroup(*shards, dcnflow.EngineOptions{CacheSize: *cache, Workers: *workers})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
		MaxTimeout: *timeout,
		MaxBatch:   *maxBatch,
		Solvers:    names,
		Admission: dcnflow.AdmissionOptions{
			Rate:       *admitRate,
			Burst:      *admitBurst,
			QueueDepth: *admitQueue,
		},
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("dcnflow serve: listening on http://%s (%d solvers, cache %d, shards %d)\n",
		ln.Addr().String(), len(names), *cache, *shards)

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop()
	// Bounce the admission queue (503) before shutting the listener down,
	// so queued requests answer cleanly instead of hanging into Shutdown.
	handler.Drain()
	fmt.Println("dcnflow serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// solverList resolves a -solver flag value against the registry: a
// comma-separated list of registered names, or "all".
func solverList(value string) ([]string, error) {
	if value == "all" {
		return dcnflow.SolverNames(), nil
	}
	registered := make(map[string]bool)
	for _, name := range dcnflow.SolverNames() {
		registered[name] = true
	}
	var out []string
	for _, name := range strings.Split(value, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !registered[name] {
			return nil, fmt.Errorf("unknown solver %q (registered: %s)",
				name, strings.Join(dcnflow.SolverNames(), ", "))
		}
		out = append(out, name)
	}
	if len(out) == 0 {
		return nil, errors.New("no solvers selected")
	}
	return out, nil
}

// solutionTable renders solutions uniformly: energy, the ratio against the
// best lower bound any selected solver produced, and active link counts.
func solutionTable(sols []*dcnflow.Solution, lb float64) *stats.Table {
	tb := stats.NewTable("solver", "energy", "vs LB", "links on")
	if lb > 0 {
		tb.AddRow("fractional LB", lb, 1.0, "-")
	}
	for _, sol := range sols {
		ratio := "-"
		if lb > 0 {
			ratio = fmt.Sprintf("%.4g", sol.Energy/lb)
		}
		tb.AddRow(sol.Solver, sol.Energy, ratio, int(sol.Stats["links_on"]))
	}
	return tb
}

func runScenario(args []string) (retErr error) {
	fs := newFlagSet("run <scenario.json>")
	solvers := fs.String("solver", "dcfsr",
		"comma-separated solver names, or \"all\"; registered: "+strings.Join(dcnflow.SolverNames(), ", "))
	timeout := fs.Duration("timeout", 0, "cancel the solves after this long (0 = no limit)")
	progress := fs.Bool("progress", false, "stream per-interval / per-epoch progress events to stderr")
	oracleWorkers := fs.Int("oracle-workers", 0,
		"intra-solve shortest-path parallelism for the relaxation solvers (0/1 sequential, -1 = all cores); results are identical at any value")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the solves to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	// The spec path may come before the flags (`dcnflow run spec.json
	// -solver x`, the documented form) or after them.
	path := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		if fs.NArg() == 0 {
			fs.Usage()
			return errors.New("run: missing scenario file")
		}
		path = fs.Arg(0)
		if fs.NArg() > 1 {
			return fmt.Errorf("run: unexpected arguments %q", fs.Args()[1:])
		}
	} else if fs.NArg() > 0 {
		return fmt.Errorf("run: unexpected arguments %q", fs.Args())
	}
	names, err := solverList(*solvers)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = fmt.Errorf("run: %w", err)
		}
	}()

	spec, err := dcnflow.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	// All solver runs dispatch through the shared engine: the instance is
	// compiled once and every solver draws pooled scratch from it.
	eng := cliEngine()
	inst, err := eng.Instance(spec)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []dcnflow.SolveOption
	if *oracleWorkers != 0 {
		opts = append(opts, dcnflow.WithSolverOptions(mcfsolve.Options{OracleWorkers: *oracleWorkers}))
	}
	if *progress {
		opts = append(opts, dcnflow.WithProgress(func(ev dcnflow.ProgressEvent) {
			switch ev.Stage {
			case "epoch":
				fmt.Fprintf(os.Stderr, "  epoch %d at t=%.4g (%d FW iterations)\n", ev.Index, ev.Time, ev.FWIters)
			default:
				fmt.Fprintf(os.Stderr, "  interval %d/%d solved (%d FW iterations)\n", ev.Index+1, ev.Total, ev.FWIters)
			}
		}))
	}

	label := spec.Name
	if label == "" {
		label = path
	}
	m := inst.Model()
	fmt.Printf("scenario %q: %s, %d flows, f(x) = %g + %g*x^%g (C=%g):\n",
		label, inst.Topology().Name, inst.Flows().Len(), m.Sigma, m.Mu, m.Alpha, m.C)

	var (
		sols []*dcnflow.Solution
		lb   float64
	)
	for _, name := range names {
		start := time.Now()
		// The engine applies WithSeed(spec.Seed) itself.
		r := eng.Solve(ctx, dcnflow.Request{Scenario: spec, Solver: name, Options: opts})
		if r.Err != nil {
			return fmt.Errorf("run: solver %s: %w", name, r.Err)
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "%s finished in %v\n", name, time.Since(start).Round(time.Millisecond))
		}
		if r.Solution.LowerBound > lb {
			lb = r.Solution.LowerBound
		}
		sols = append(sols, r.Solution)
	}
	fmt.Print(solutionTable(sols, lb).String())
	return nil
}

// runSweep is the CLI face of the sweep engine: expand a SweepSpec grid,
// solve every cell on a bounded worker pool, stream per-cell JSONL and
// print the per-solver aggregate. JSONL bodies and aggregates are
// byte-identical for every -workers value (runtime fields aside) — the
// engine orders cells by index and derives every seed from the spec.
func runSweep(args []string) (retErr error) {
	fs := newFlagSet("sweep <sweep.json>")
	workers := fs.Int("workers", runtime.NumCPU(),
		"worker pool size; a pure wall-clock lever — results are identical for every value")
	out := fs.String("out", "", "write per-cell results as JSONL to this file (\"-\" = stdout)")
	solvers := fs.String("solver", "",
		"override the spec's solver list: comma-separated names, or \"all\"; registered: "+strings.Join(dcnflow.SolverNames(), ", "))
	iters := fs.Int("iters", 0, "cap Frank-Wolfe iterations sweep-wide (0 = solver default)")
	timeout := fs.Duration("timeout", 0, "cancel the sweep after this long (0 = no limit)")
	progress := fs.Bool("progress", false, "stream per-cell progress to stderr")
	noLB := fs.Bool("no-lb", false, "skip the shared per-scenario relaxation bound (lb/lb_ratio then only on cells whose solver reports its own bound)")
	fitEnergy := fs.Float64("fit-energy", 0, "fitness weight on total energy; any -fit-* flag re-scores every cell through the simulator")
	fitMiss := fs.Float64("fit-miss", 0, "fitness weight per missed deadline")
	fitSlack := fs.Float64("fit-slack", 0, "fitness credit on the p99 tail slack")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	// The spec path may come before or after the flags, like `dcnflow run`.
	path := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if path == "" {
		if fs.NArg() == 0 {
			fs.Usage()
			return errors.New("sweep: missing sweep file")
		}
		path = fs.Arg(0)
		if fs.NArg() > 1 {
			return fmt.Errorf("sweep: unexpected arguments %q", fs.Args()[1:])
		}
	} else if fs.NArg() > 0 {
		return fmt.Errorf("sweep: unexpected arguments %q", fs.Args())
	}

	stopProf, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = fmt.Errorf("sweep: %w", err)
		}
	}()

	spec, err := dcnflow.LoadSweepFile(path)
	if err != nil {
		return err
	}
	if *solvers != "" {
		names, err := solverList(*solvers)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		spec.Solvers = names
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		enc      *json.Encoder
		jsonlErr error
		outFile  *os.File
	)
	if *out == "-" {
		enc = json.NewEncoder(os.Stdout)
	} else if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		outFile = f
		defer f.Close()
		enc = json.NewEncoder(f)
	}

	opts := dcnflow.SweepOptions{
		Workers: *workers,
		Engine:  cliEngine(),
		SkipLB:  *noLB,
		OnCell: func(c dcnflow.SweepCellResult) {
			if enc != nil {
				// A failed write must fail the command — a truncated JSONL
				// file that exits 0 reads as a complete grid downstream.
				if err := enc.Encode(c); err != nil && jsonlErr == nil {
					jsonlErr = err
				}
			}
			if *progress {
				status := fmt.Sprintf("energy %.6g", c.Energy)
				if c.Err != "" {
					status = "error: " + c.Err
				}
				fmt.Fprintf(os.Stderr, "  cell %d/%d %s %s: %s (%.0f ms)\n",
					c.Cell+1, spec.CellCount(), c.Scenario, c.Solver, status, c.RuntimeMS)
			}
		},
	}
	if *iters > 0 {
		opts.Options = append(opts.Options, dcnflow.WithSolverOptions(mcfsolve.Options{MaxIters: *iters}))
	}
	if *fitEnergy != 0 || *fitMiss != 0 || *fitSlack != 0 {
		opts.Fitness = &dcnflow.Fitness{EnergyWeight: *fitEnergy, MissWeight: *fitMiss, SlackP99Weight: *fitSlack}
	}

	label := spec.Name
	if label == "" {
		label = path
	}
	fmt.Printf("sweep %q: %d cells (%d topologies x %d workloads x %d tightness x %d seeds x %d solvers), %d workers\n",
		label, spec.CellCount(), len(spec.Topologies), len(spec.Workloads),
		max(1, len(spec.Tightness)), max(1, len(spec.Seeds)), len(spec.Solvers), *workers)
	res, err := dcnflow.Sweep(ctx, spec, opts)
	if err != nil {
		return err
	}
	if jsonlErr != nil {
		return fmt.Errorf("sweep: writing %s: %w", *out, jsonlErr)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return fmt.Errorf("sweep: closing %s: %w", *out, err)
		}
	}
	fmt.Print(res.AggregateTable())
	return nil
}

func runWorkload(args []string) error {
	fs := newFlagSet("workload")
	n := fs.Int("n", 100, "number of flows")
	t0 := fs.Float64("t0", 1, "horizon start")
	t1 := fs.Float64("t1", 100, "horizon end")
	mean := fs.Float64("mean", 10, "size mean")
	std := fs.Float64("std", 3, "size stddev")
	k := fs.Int("k", 8, "fat-tree arity for host naming")
	seed := fs.Int64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ft, err := topology.FatTree(*k, 1e12)
	if err != nil {
		return err
	}
	set, err := flow.Uniform(flow.GenConfig{
		N: *n, T0: *t0, T1: *t1, SizeMean: *mean, SizeStddev: *std,
		Hosts: ft.Hosts, Seed: *seed,
	})
	if err != nil {
		return err
	}
	tb := stats.NewTable("id", "src", "dst", "release", "deadline", "size")
	for _, f := range set.Flows() {
		tb.AddRow(int(f.ID), int(f.Src), int(f.Dst), f.Release, f.Deadline, f.Size)
	}
	fmt.Print(tb.CSV())
	return nil
}

// runCompare runs a set of registered solvers on one generated workload —
// the CLI face of the Scenario/Solver registry on ad-hoc (non-spec) inputs.
func runCompare(args []string) error {
	fs := newFlagSet("compare")
	n := fs.Int("n", 60, "number of flows")
	k := fs.Int("k", 4, "fat-tree arity")
	alpha := fs.Float64("alpha", 2, "power exponent")
	seed := fs.Int64("seed", 1, "seed")
	idleMult := fs.Float64("idle-mult", 0, "idle power: Ropt at this multiple of mean density (0 = sigma 0)")
	capacity := fs.Float64("cap", 1000, "link capacity C")
	iters := fs.Int("iters", 40, "Frank-Wolfe iterations")
	solvers := fs.String("solvers", "dcfsr,sp-mcf,ecmp-mcf,greedy-online,rolling-online,always-on",
		"comma-separated solver names, or \"all\"; registered: "+strings.Join(dcnflow.SolverNames(), ", "))
	if err := fs.Parse(args); err != nil {
		return err
	}
	names, err := solverList(*solvers)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	ft, err := topology.FatTree(*k, *capacity)
	if err != nil {
		return err
	}
	set, err := flow.Uniform(flow.GenConfig{
		N: *n, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: *seed,
	})
	if err != nil {
		return err
	}
	var sigma float64
	if *idleMult > 0 {
		sigma = power.SigmaForRopt(1, *alpha, *idleMult*set.MeanDensity())
	}
	model := power.Model{Sigma: sigma, Mu: 1, Alpha: *alpha, C: *capacity}
	inst, err := dcnflow.NewInstanceBuilder().Topology(ft).Flows(set).Model(model).Build()
	if err != nil {
		return err
	}

	opts := []dcnflow.SolveOption{
		dcnflow.WithSeed(*seed),
		dcnflow.WithSolverOptions(mcfsolve.Options{MaxIters: *iters}),
		dcnflow.WithOnlineOptions(online.Options{CostFull: sigma > 0}),
	}
	var (
		sols []*dcnflow.Solution
		lb   float64
	)
	for _, name := range names {
		r := cliEngine().Solve(context.Background(), dcnflow.Request{Instance: inst, Solver: name, Options: opts})
		if r.Err != nil {
			// compare is a survey: a solver that refuses the instance (the
			// exact enumerator past its assignment bound, always-on without
			// full-rate feasibility) is reported and skipped, not fatal.
			fmt.Printf("(skipping %s: %v)\n", name, r.Err)
			continue
		}
		sol := r.Solution
		if sol.LowerBound > lb {
			lb = sol.LowerBound
		}
		sols = append(sols, sol)
	}
	if len(sols) == 0 {
		return errors.New("compare: every selected solver failed")
	}
	fmt.Printf("%s, %d flows, alpha=%g, sigma=%.4g:\n", ft.Name, set.Len(), *alpha, sigma)
	fmt.Print(solutionTable(sols, lb).String())
	return nil
}

func runTrace(args []string) error {
	fs := newFlagSet("trace")
	path := fs.String("file", "", "trace file (default: stdin)")
	kind := fs.String("topo", "fattree", "fattree | bcube | leafspine | line")
	k := fs.Int("k", 4, "topology size parameter")
	scheme := fs.String("scheme", "rs",
		"rs | spmcf | online, or any registered solver: "+strings.Join(dcnflow.SolverNames(), ", "))
	alpha := fs.Float64("alpha", 2, "power exponent")
	sigma := fs.Float64("sigma", 0, "idle power")
	capacity := fs.Float64("cap", 1000, "link capacity C")
	seed := fs.Int64("seed", 1, "rounding seed")
	gantt := fs.Bool("gantt", false, "print an ASCII Gantt chart of the schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	set, err := flow.ReadTrace(in)
	if err != nil {
		return err
	}
	var top *topology.Topology
	switch *kind {
	case "fattree":
		top, err = topology.FatTree(*k, *capacity)
	case "bcube":
		top, err = topology.BCube(*k, 1, *capacity)
	case "leafspine":
		top, err = topology.LeafSpine(*k, 2*(*k), 8, *capacity)
	case "line":
		top, err = topology.Line(*k, *capacity)
	default:
		return fmt.Errorf("trace: unknown topology %q", *kind)
	}
	if err != nil {
		return err
	}
	model := power.Model{Sigma: *sigma, Mu: 1, Alpha: *alpha, C: *capacity}
	inst, err := dcnflow.NewInstanceBuilder().Topology(top).Flows(set).Model(model).Build()
	if err != nil {
		return err
	}
	// Legacy scheme aliases map onto the registry; registered solver names
	// pass through directly.
	name := *scheme
	switch name {
	case "rs":
		name = dcnflow.SolverDCFSR
	case "spmcf":
		name = dcnflow.SolverSPMCF
	case "online":
		name = dcnflow.SolverGreedyOnline
	}
	r := cliEngine().Solve(context.Background(), dcnflow.Request{
		Instance: inst,
		Solver:   name,
		Options: []dcnflow.SolveOption{
			dcnflow.WithSeed(*seed),
			dcnflow.WithOnlineOptions(online.Options{CostFull: *sigma > 0}),
		},
	})
	if r.Err != nil {
		if errors.Is(r.Err, dcnflow.ErrUnknownSolver) {
			return fmt.Errorf("trace: unknown scheme %q: %w", *scheme, r.Err)
		}
		return r.Err
	}
	sol := r.Solution
	if sol.LowerBound > 0 {
		fmt.Printf("lower bound: %.4g\n", sol.LowerBound)
	}
	simRes, err := dcnflow.Simulate(top.Graph, set, sol.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: energy %.4g, deadlines %d/%d, peak rate %.4g, %d links on\n",
		*scheme, top.Name, simRes.TotalEnergy, simRes.DeadlinesMet, set.Len(),
		simRes.MaxLinkRate, simRes.ActiveLinks)
	if *gantt {
		fmt.Print(sol.Schedule.Gantt(72))
	}
	return nil
}

func runTopo(args []string) error {
	fs := newFlagSet("topo")
	kind := fs.String("kind", "fattree", "fattree | bcube | leafspine | line | parallel")
	k := fs.Int("k", 4, "fat-tree arity / bcube n / line length / parallel links")
	l := fs.Int("l", 1, "bcube level")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		top *topology.Topology
		err error
	)
	switch *kind {
	case "fattree":
		top, err = topology.FatTree(*k, 1)
	case "bcube":
		top, err = topology.BCube(*k, *l, 1)
	case "leafspine":
		top, err = topology.LeafSpine(*k, 2*(*k), 8, 1)
	case "line":
		top, err = topology.Line(*k, 1)
	case "parallel":
		top, _, _, err = topology.ParallelLinks(*k, 1)
	default:
		return fmt.Errorf("topo: unknown kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Print(top.Graph.DOT())
	return nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
