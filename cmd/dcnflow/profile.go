package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts a pprof CPU profile and/or arranges a heap snapshot
// for the -cpuprofile/-memprofile flags of the scheme-running commands.
// Either path may be empty. The returned stop function must run exactly
// once after the profiled work: it stops the CPU profiler and writes the
// heap profile, and its error must fail the command (a truncated profile
// that exits 0 reads as a complete one in `go tool pprof`).
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		var first error
		keep := func(err error) {
			if err != nil && first == nil {
				first = err
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				keep(fmt.Errorf("cpuprofile: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				keep(fmt.Errorf("memprofile: %w", err))
				return first
			}
			// Settle the heap first so the snapshot shows retained memory,
			// not garbage awaiting collection.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				keep(fmt.Errorf("memprofile: %w", err))
			}
			if err := f.Close(); err != nil {
				keep(fmt.Errorf("memprofile: %w", err))
			}
		}
		return first
	}, nil
}
