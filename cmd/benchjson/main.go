// Command benchjson runs the repository's component micro-benchmarks and
// records their results in BENCH_solver.json so the performance trajectory
// of the solver hot paths is tracked from PR to PR.
//
//	go run ./cmd/benchjson                  # run defaults, update BENCH_solver.json
//	go run ./cmd/benchjson -suite graph     # large-topology suite, BENCH_graph.json
//	go run ./cmd/benchjson -suite serve     # serve-API load matrix, BENCH_serve.json
//	go run ./cmd/benchjson -bench Frank     # restrict the benchmark regexp
//	go run ./cmd/benchjson -benchtime 10x   # more samples per benchmark
//	go run ./cmd/benchjson -o out.json      # write elsewhere
//
// The output file holds two sections: "current" (overwritten on every run)
// and "baseline" (written only when absent — the first snapshot, normally
// the seed implementation's numbers, is preserved so later runs can always
// be compared against it). Use -rebaseline to promote the current run to
// the new baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultBench selects the component micro-benchmarks (not the full-figure
// regenerations, which take minutes at paper scale).
const defaultBench = "BenchmarkFrankWolfe$|BenchmarkRandomSchedule|BenchmarkDijkstraFatTree8|BenchmarkMostCriticalFirst|BenchmarkYDS|BenchmarkOnlineGreedy|BenchmarkOnlineRolling|BenchmarkOnlineDelta|BenchmarkDeltaSeed|BenchmarkSimulator|BenchmarkExactSmall|BenchmarkEngineRepeatedSolve|BenchmarkEngineColdVsWarm"

// graphBench selects the large-topology scale suite (10k-node SSSP and
// intra-solve parallel Frank–Wolfe), tracked in BENCH_graph.json.
const graphBench = "BenchmarkSSSPLarge|BenchmarkFrankWolfeLarge"

// serveBench selects the serve-API load matrix (arrival processes x
// admission configurations against a live serve subprocess), tracked in
// BENCH_serve.json.
const serveBench = "BenchmarkServeLoad"

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	// Metrics holds the benchmark's custom b.ReportMetric series (e.g.
	// BenchmarkOnlineRolling's fw-iters-warm / fw-iters-cold counters).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the BENCH_solver.json document.
type Snapshot struct {
	// Baseline holds the first recorded numbers (normally the seed
	// implementation); it is never overwritten unless -rebaseline is given.
	Baseline map[string]Result `json:"baseline,omitempty"`
	// Current holds the latest run.
	Current map[string]Result `json:"current"`
}

// benchLine matches the name and iteration count; the metric pairs that
// follow (value unit, e.g. "123 ns/op", "8 B/op", "942 fw-iters-warm") are
// tokenised separately so custom b.ReportMetric series survive.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", "", "benchmark regexp passed to go test -bench (default: the selected suite's set)")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("o", "", "output file (default: the selected suite's snapshot)")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	suite := flag.String("suite", "solver", `benchmark suite: "solver" (component micro-benchmarks, BENCH_solver.json) or "graph" (large-topology scale suite, BENCH_graph.json)`)
	rebaseline := flag.Bool("rebaseline", false, "promote this run to the stored baseline")
	check := flag.String("check", "", "validate an existing snapshot instead of running: the file must parse and its current section must contain an entry matching -bench (or the suite's set)")
	flag.Parse()
	benchtimeSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "benchtime" {
			benchtimeSet = true
		}
	})

	// Suite selection fills whatever -bench/-o leave unset, so explicit
	// flags always win.
	switch *suite {
	case "solver":
		if *bench == "" {
			*bench = defaultBench
		}
		if *out == "" {
			*out = "BENCH_solver.json"
		}
	case "graph":
		if *bench == "" {
			*bench = graphBench
		}
		if *out == "" {
			*out = "BENCH_graph.json"
		}
	case "serve":
		if *bench == "" {
			*bench = serveBench
		}
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		// One iteration of a serve load benchmark is a complete open-loop
		// run (server subprocess + full schedule); repeating it 5x per
		// sub-benchmark buys nothing but wall time.
		if !benchtimeSet {
			*benchtime = "1x"
		}
	default:
		return fmt.Errorf("unknown suite %q (want solver, graph or serve)", *suite)
	}

	if *check != "" {
		return checkSnapshot(*check, *bench)
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"-benchmem", *pkg)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	results, err := parseBench(stdout.Bytes())
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *bench)
	}

	snap := Snapshot{Current: results}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Snapshot
		if err := json.Unmarshal(prev, &old); err == nil {
			snap.Baseline = old.Baseline
		}
	}
	if snap.Baseline == nil || *rebaseline {
		snap.Baseline = results
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	report(snap)
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
	return nil
}

// checkSnapshot validates a committed snapshot without running anything:
// the file must parse as a Snapshot and its current section must hold at
// least one entry matching the benchmark regexp — the CI gate that keeps a
// suite's entries from silently dropping out of the tracked file.
func checkSnapshot(path, bench string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	re, err := regexp.Compile(bench)
	if err != nil {
		return fmt.Errorf("-bench %q: %w", bench, err)
	}
	var matched int
	for name := range snap.Current {
		if re.MatchString(name) {
			matched++
		}
	}
	if matched == 0 {
		return fmt.Errorf("%s: no current entry matches %q", path, bench)
	}
	fmt.Printf("%s: %d entries match %q\n", path, matched, bench)
	return nil
}

// parseBench extracts per-benchmark results, averaging repeated runs of the
// same benchmark (-count > 1). Each line after the name and iteration count
// is a sequence of "value unit" pairs; ns/op, B/op and allocs/op land in
// the fixed fields and everything else (custom b.ReportMetric units) in
// Metrics.
func parseBench(out []byte) (map[string]Result, error) {
	sums := map[string]Result{}
	counts := map[string]float64{}
	for _, line := range bytes.Split(out, []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		name := string(m[1])
		fields := strings.Fields(string(m[2]))
		if len(fields)%2 != 0 || len(fields) == 0 {
			continue
		}
		s := sums[name]
		seen := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				s.NsPerOp += v
				seen = true
			case "B/op":
				s.BytesPerOp += int64(v)
			case "allocs/op":
				s.AllocsPerOp += int64(v)
			case "MB/s":
				// throughput is derivable from ns/op; skip
			default:
				if s.Metrics == nil {
					s.Metrics = map[string]float64{}
				}
				s.Metrics[unit] += v
			}
		}
		if !seen {
			continue
		}
		sums[name] = s
		counts[name]++
	}
	for name, s := range sums {
		n := counts[name]
		s.NsPerOp /= n
		s.BytesPerOp = int64(float64(s.BytesPerOp) / n)
		s.AllocsPerOp = int64(float64(s.AllocsPerOp) / n)
		for k := range s.Metrics {
			s.Metrics[k] /= n
		}
		sums[name] = s
	}
	return sums, nil
}

// report prints a current-vs-baseline table.
func report(snap Snapshot) {
	names := make([]string, 0, len(snap.Current))
	for name := range snap.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-28s %14s %14s %8s %12s\n", "benchmark", "ns/op", "baseline", "speedup", "allocs/op")
	for _, name := range names {
		cur := snap.Current[name]
		base, ok := snap.Baseline[name]
		speed := "-"
		baseNs := "-"
		if ok && cur.NsPerOp > 0 {
			speed = fmt.Sprintf("%.2fx", base.NsPerOp/cur.NsPerOp)
			baseNs = fmt.Sprintf("%.0f", base.NsPerOp)
		}
		fmt.Printf("%-28s %14.0f %14s %8s %12d\n", name, cur.NsPerOp, baseNs, speed, cur.AllocsPerOp)
	}
}
