// Command benchjson runs the repository's component micro-benchmarks and
// records their results in BENCH_solver.json so the performance trajectory
// of the solver hot paths is tracked from PR to PR.
//
//	go run ./cmd/benchjson                  # run defaults, update BENCH_solver.json
//	go run ./cmd/benchjson -bench Frank     # restrict the benchmark regexp
//	go run ./cmd/benchjson -benchtime 10x   # more samples per benchmark
//	go run ./cmd/benchjson -o out.json      # write elsewhere
//
// The output file holds two sections: "current" (overwritten on every run)
// and "baseline" (written only when absent — the first snapshot, normally
// the seed implementation's numbers, is preserved so later runs can always
// be compared against it). Use -rebaseline to promote the current run to
// the new baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

// defaultBench selects the component micro-benchmarks (not the full-figure
// regenerations, which take minutes at paper scale).
const defaultBench = "BenchmarkFrankWolfe|BenchmarkRandomSchedule|BenchmarkDijkstraFatTree8|BenchmarkMostCriticalFirst|BenchmarkYDS|BenchmarkOnlineGreedy|BenchmarkSimulator|BenchmarkExactSmall"

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// Snapshot is the BENCH_solver.json document.
type Snapshot struct {
	// Baseline holds the first recorded numbers (normally the seed
	// implementation); it is never overwritten unless -rebaseline is given.
	Baseline map[string]Result `json:"baseline,omitempty"`
	// Current holds the latest run.
	Current map[string]Result `json:"current"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "5x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("o", "BENCH_solver.json", "output file")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	rebaseline := flag.Bool("rebaseline", false, "promote this run to the stored baseline")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"-benchmem", *pkg)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}

	results, err := parseBench(stdout.Bytes())
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *bench)
	}

	snap := Snapshot{Current: results}
	if prev, err := os.ReadFile(*out); err == nil {
		var old Snapshot
		if err := json.Unmarshal(prev, &old); err == nil {
			snap.Baseline = old.Baseline
		}
	}
	if snap.Baseline == nil || *rebaseline {
		snap.Baseline = results
	}

	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	report(snap)
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
	return nil
}

// parseBench extracts per-benchmark results, averaging repeated runs of the
// same benchmark (-count > 1).
func parseBench(out []byte) (map[string]Result, error) {
	sums := map[string]Result{}
	counts := map[string]float64{}
	for _, line := range bytes.Split(out, []byte("\n")) {
		m := benchLine.FindSubmatch(line)
		if m == nil {
			continue
		}
		name := string(m[1])
		ns, err := strconv.ParseFloat(string(m[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", line, err)
		}
		var b, a int64
		if len(m[3]) > 0 {
			b, _ = strconv.ParseInt(string(m[3]), 10, 64)
		}
		if len(m[4]) > 0 {
			a, _ = strconv.ParseInt(string(m[4]), 10, 64)
		}
		s := sums[name]
		s.NsPerOp += ns
		s.BytesPerOp += b
		s.AllocsPerOp += a
		sums[name] = s
		counts[name]++
	}
	for name, s := range sums {
		n := counts[name]
		s.NsPerOp /= n
		s.BytesPerOp = int64(float64(s.BytesPerOp) / n)
		s.AllocsPerOp = int64(float64(s.AllocsPerOp) / n)
		sums[name] = s
	}
	return sums, nil
}

// report prints a current-vs-baseline table.
func report(snap Snapshot) {
	names := make([]string, 0, len(snap.Current))
	for name := range snap.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-28s %14s %14s %8s %12s\n", "benchmark", "ns/op", "baseline", "speedup", "allocs/op")
	for _, name := range names {
		cur := snap.Current[name]
		base, ok := snap.Baseline[name]
		speed := "-"
		baseNs := "-"
		if ok && cur.NsPerOp > 0 {
			speed = fmt.Sprintf("%.2fx", base.NsPerOp/cur.NsPerOp)
			baseNs = fmt.Sprintf("%.0f", base.NsPerOp)
		}
		fmt.Printf("%-28s %14.0f %14s %8s %12d\n", name, cur.NsPerOp, baseNs, speed, cur.AllocsPerOp)
	}
}
