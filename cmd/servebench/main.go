// Command servebench replays one load spec against a live `dcnflow serve`
// process and prints the run's report as JSON, or validates a recorded
// BENCH_serve.json snapshot.
//
//	go run ./cmd/servebench -spec examples/servebench/smoke.json
//	go run ./cmd/servebench -spec S.json -assert-no-failures   # CI smoke
//	go run ./cmd/servebench -spec S.json -url http://host:8080 # reuse a server
//	go run ./cmd/servebench -check BENCH_serve.json            # schema check
//
// Without -url, the command builds the dcnflow binary into a temp
// directory, launches `dcnflow serve` configured from the spec's "serve"
// section on a free port, drives the schedule and SIGTERMs the server.
// -assert-no-failures exits non-zero when any request finished with an
// outcome other than "ok" — the CI smoke contract. -check asserts the
// snapshot covers the serve-bench matrix: at least two arrival kinds and
// two admission configurations, each with latency-percentile and
// throughput metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"dcnflow/internal/servebench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servebench:", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "load spec to replay (examples/servebench/*.json)")
	url := flag.String("url", "", "run against this base URL instead of launching a serve subprocess")
	assertNoFailures := flag.Bool("assert-no-failures", false, "exit non-zero when any request did not finish ok")
	check := flag.String("check", "", "validate a BENCH_serve.json snapshot instead of running a spec")
	flag.Parse()

	if *check != "" {
		return checkSnapshot(*check)
	}
	if *specPath == "" {
		return fmt.Errorf("one of -spec or -check is required")
	}

	spec, err := servebench.LoadFile(*specPath)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	if base == "" {
		dir, err := os.MkdirTemp("", "dcnflow-servebench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bin, err := servebench.BuildBinary(ctx, dir)
		if err != nil {
			return err
		}
		srv, err := servebench.StartServer(ctx, bin, spec)
		if err != nil {
			return err
		}
		defer srv.Kill() // no-op after a clean Stop
		base = srv.BaseURL
		defer func() {
			if err := srv.Stop(); err != nil {
				fmt.Fprintln(os.Stderr, "servebench:", err)
			}
		}()
	}

	report, err := servebench.Run(ctx, base, spec)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))

	if *assertNoFailures {
		failed := report.Total.Requests - report.Total.Outcomes[servebench.OutcomeOK]
		if failed > 0 {
			return fmt.Errorf("%d of %d requests failed: %v",
				failed, report.Total.Requests, report.Total.Outcomes)
		}
	}
	return nil
}

// benchResult mirrors cmd/benchjson's Result for the fields the schema
// check needs.
type benchResult struct {
	NsPerOp float64            `json:"ns_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchSnapshot mirrors cmd/benchjson's Snapshot.
type benchSnapshot struct {
	Current map[string]benchResult `json:"current"`
}

// checkSnapshot asserts a BENCH_serve.json covers the serve-bench matrix:
// BenchmarkServeLoad/<arrival>-<admission> entries spanning >= 2 arrival
// kinds and >= 2 admission configurations, each carrying the latency
// percentiles and throughput Run reports.
func checkSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	arrivals := map[string]bool{}
	admissions := map[string]bool{}
	n := 0
	for name, res := range snap.Current {
		rest, ok := strings.CutPrefix(name, "BenchmarkServeLoad/")
		if !ok {
			continue
		}
		arrival, admission, ok := strings.Cut(rest, "-")
		if !ok {
			return fmt.Errorf("%s: benchmark %q is not named <arrival>-<admission>", path, name)
		}
		for _, metric := range []string{"p50_ms", "p95_ms", "p99_ms", "rps", "err_rate"} {
			if _, ok := res.Metrics[metric]; !ok {
				return fmt.Errorf("%s: %s is missing metric %q", path, name, metric)
			}
		}
		if res.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s has no wall-time measurement", path, name)
		}
		arrivals[arrival] = true
		admissions[admission] = true
		n++
	}
	if n == 0 {
		return fmt.Errorf("%s: no BenchmarkServeLoad entries", path)
	}
	if len(arrivals) < 2 {
		return fmt.Errorf("%s: only %d arrival kind(s) covered (%s), want >= 2",
			path, len(arrivals), keys(arrivals))
	}
	if len(admissions) < 2 {
		return fmt.Errorf("%s: only %d admission config(s) covered (%s), want >= 2",
			path, len(admissions), keys(admissions))
	}
	fmt.Printf("%s: ok (%d configs, arrivals: %s, admissions: %s)\n",
		path, n, keys(arrivals), keys(admissions))
	return nil
}

func keys(set map[string]bool) string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}
