package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAuditFindsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bad struct{}

// Good has a doc comment.
type Good struct{}

var BadVar = 1

// Grouped declarations with a block doc pass.
var (
	GroupedA = 1
	GroupedB = 2
)

const BadConst = 3 // trailing comments count as documentation

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"func Undocumented", "type Bad", "value BadVar"} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit missed %q; got:\n%s", want, joined)
		}
	}
	for _, clean := range []string{"Documented", "Good", "GroupedA", "BadConst", "unexported"} {
		for _, m := range missing {
			if strings.HasSuffix(m, " "+clean) {
				t.Errorf("audit flagged documented/unexported symbol %q", clean)
			}
		}
	}
}

func TestAuditRootPackageClean(t *testing.T) {
	missing, err := audit("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("root package has undocumented exports:\n%s", strings.Join(missing, "\n"))
	}
}
