package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcnflow"
)

func TestAuditFindsUndocumentedExports(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

// Documented is fine.
func Documented() {}

func Undocumented() {}

type Bad struct{}

// Good has a doc comment.
type Good struct{}

var BadVar = 1

// Grouped declarations with a block doc pass.
var (
	GroupedA = 1
	GroupedB = 2
)

const BadConst = 3 // trailing comments count as documentation

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := audit(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(missing, "\n")
	for _, want := range []string{"func Undocumented", "type Bad", "value BadVar"} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit missed %q; got:\n%s", want, joined)
		}
	}
	for _, clean := range []string{"Documented", "Good", "GroupedA", "BadConst", "unexported"} {
		for _, m := range missing {
			if strings.HasSuffix(m, " "+clean) {
				t.Errorf("audit flagged documented/unexported symbol %q", clean)
			}
		}
	}
}

func TestAuditRootPackageClean(t *testing.T) {
	missing, err := audit("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("root package has undocumented exports:\n%s", strings.Join(missing, "\n"))
	}
}

func TestMissingNames(t *testing.T) {
	got := missingNames("src", "the dcfsr and sp-mcf solvers", []string{"dcfsr", "sp-mcf", "exact"})
	if len(got) != 1 || !strings.Contains(got[0], `"exact"`) || !strings.Contains(got[0], "src") {
		t.Errorf("missingNames = %v, want one finding about exact", got)
	}
	if got := missingNames("src", "all: a b", []string{"a", "b"}); len(got) != 0 {
		t.Errorf("false positives: %v", got)
	}
	// Whole-word matching: prose containing "exactly" or a superstring
	// solver name must not satisfy the gate.
	if got := missingNames("src", "reproduces a run exactly via ecmp-mcf", []string{"exact", "sp-mcf"}); len(got) != 2 {
		t.Errorf("substring leak: %v, want both exact and sp-mcf missing", got)
	}
	if got := missingNames("src", "| `exact` | enumerator | and `sp-mcf`, too", []string{"exact", "sp-mcf"}); len(got) != 0 {
		t.Errorf("delimited names not recognised: %v", got)
	}
}

// TestSolverDocsFindsGaps runs the solver-docs gate against a fake repo:
// README documents everything, DESIGN misses one solver.
func TestSolverDocsFindsGaps(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("README.md", "solvers: alpha, beta")
	writeFile("DESIGN.md", "solvers: alpha")
	missing, err := solverDocs(dir, []string{"alpha", "beta"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "DESIGN.md") || !strings.Contains(missing[0], `"beta"`) {
		t.Errorf("solverDocs = %v, want exactly the DESIGN.md beta gap", missing)
	}
	if _, err := solverDocs(t.TempDir(), []string{"alpha"}, false); err == nil {
		t.Error("missing README accepted")
	}
}

// TestSolverDocsRepoClean gates the real repository docs (without the CLI
// exec, which CI covers via `go run ./cmd/doccheck`).
func TestSolverDocsRepoClean(t *testing.T) {
	missing, err := solverDocs("../..", dcnflow.SolverNames(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("solver docs gaps:\n%s", strings.Join(missing, "\n"))
	}
}

// TestSolverDocsChecksBothCLIUsages: the CLI half of the gate executes
// `dcnflow run -h`, `dcnflow sweep -h` and `dcnflow serve -h` against the
// real repository, so a solver cannot register without surfacing in every
// scheme-running usage.
func TestSolverDocsChecksBothCLIUsages(t *testing.T) {
	if testing.Short() {
		t.Skip("executes go run three times")
	}
	missing, err := solverDocs("../..", dcnflow.SolverNames(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("solver docs gaps:\n%s", strings.Join(missing, "\n"))
	}
	// An unregistered name must be reported once per CLI usage source.
	missing, err = solverDocs("../..", []string{"no-such-solver"}, true)
	if err != nil {
		t.Fatal(err)
	}
	var runGap, sweepGap, serveGap bool
	for _, m := range missing {
		runGap = runGap || strings.Contains(m, "dcnflow run -h")
		sweepGap = sweepGap || strings.Contains(m, "dcnflow sweep -h")
		serveGap = serveGap || strings.Contains(m, "dcnflow serve -h")
	}
	if !runGap || !sweepGap || !serveGap {
		t.Errorf("missing gaps for every usage, got: %v", missing)
	}
}
