// Command doccheck is the docs gate run by CI. It fails when an exported
// symbol of the target package (default: the repository root package, the
// public facade) is missing a doc comment, so the pkg.go.dev surface cannot
// silently rot — and when a solver registered in the Scenario/Solver
// registry is missing from the user-facing docs (README.md, DESIGN.md and
// the `dcnflow run -h` usage text), so a solver cannot ship undocumented.
//
//	go run ./cmd/doccheck              # audit the root package + solver docs
//	go run ./cmd/doccheck -dir path    # audit another package directory
//	go run ./cmd/doccheck -cli=false   # skip the `dcnflow run -h` exec
//
// Checked declarations: exported functions, types, and every exported name
// inside const/var/type blocks. Names inside a documented group
// declaration (a var/const block with a doc comment per spec entry, the
// style the facade uses) pass when either the group or the spec is
// documented.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"dcnflow"
)

func main() {
	dir := flag.String("dir", ".", "package directory to audit")
	repo := flag.String("repo", ".", "repository root holding README.md and DESIGN.md")
	solvers := flag.Bool("solvers", true, "verify every registered solver name appears in README.md, DESIGN.md and `dcnflow run -h`")
	cli := flag.Bool("cli", true, "include the `dcnflow run -h` check (runs the go tool)")
	flag.Parse()
	missing, err := audit(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if *solvers {
		more, err := solverDocs(*repo, dcnflow.SolverNames(), *cli)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		missing = append(missing, more...)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d findings:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: %s clean\n", *dir)
}

// solverDocs verifies that every registered solver name appears in the
// repository's README.md and DESIGN.md and — when cli is set — in the
// generated `dcnflow run -h`, `dcnflow sweep -h` and `dcnflow serve -h`
// usages (obtained by running the command, so the check covers exactly
// what a user sees).
func solverDocs(repo string, names []string, cli bool) ([]string, error) {
	var missing []string
	for _, fname := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(filepath.Join(repo, fname))
		if err != nil {
			return nil, err
		}
		missing = append(missing, missingNames(fname, string(data), names)...)
	}
	if cli {
		for _, sub := range []string{"run", "sweep", "serve"} {
			cmd := exec.Command("go", "run", "./cmd/dcnflow", sub, "-h")
			cmd.Dir = repo
			out, err := cmd.CombinedOutput()
			if err != nil {
				return nil, fmt.Errorf("dcnflow %s -h: %v\n%s", sub, err, out)
			}
			missing = append(missing, missingNames("dcnflow "+sub+" -h", string(out), names)...)
			if sub == "serve" {
				missing = append(missing, missingFlags("dcnflow serve -h", string(out), serveFlags)...)
			}
		}
		more, err := decisionDocs(repo)
		if err != nil {
			return nil, err
		}
		missing = append(missing, more...)
		more, err = onlineDocs(repo)
		if err != nil {
			return nil, err
		}
		missing = append(missing, more...)
	}
	return missing, nil
}

// onlineDocs verifies the rolling scheduler's delta-solve surface stays
// documented: the `dcnflow online` usage text must define the delta flags,
// and README.md and DESIGN.md must mention the delta-solve itself.
func onlineDocs(repo string) ([]string, error) {
	cmd := exec.Command("go", "run", "./cmd/dcnflow", "online", "-h")
	cmd.Dir = repo
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("dcnflow online -h: %v\n%s", err, out)
	}
	missing := missingFlags("dcnflow online -h", string(out), onlineFlags)
	for _, fname := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(filepath.Join(repo, fname))
		if err != nil {
			return nil, err
		}
		re := regexp.MustCompile(`(^|[^a-zA-Z0-9-])delta-solve($|[^a-zA-Z0-9-])`)
		if !re.MatchString(string(data)) {
			missing = append(missing, fmt.Sprintf("%s: %q not mentioned", fname, "delta-solve"))
		}
	}
	return missing, nil
}

// decisionDocs verifies the decision-tracing surface stays documented: the
// `dcnflow decisions` usage text must define its mode and fitness flags, and
// README.md and DESIGN.md must mention the subcommand and the O2 experiment
// it drives.
func decisionDocs(repo string) ([]string, error) {
	cmd := exec.Command("go", "run", "./cmd/dcnflow", "decisions", "-h")
	cmd.Dir = repo
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("dcnflow decisions -h: %v\n%s", err, out)
	}
	missing := missingFlags("dcnflow decisions -h", string(out), decisionsFlags)
	for _, fname := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(filepath.Join(repo, fname))
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"decisions", "O2"} {
			re := regexp.MustCompile(`(^|[^a-zA-Z0-9-])` + regexp.QuoteMeta(name) + `($|[^a-zA-Z0-9-])`)
			if !re.MatchString(string(data)) {
				missing = append(missing, fmt.Sprintf("%s: %q not mentioned", fname, name))
			}
		}
	}
	return missing, nil
}

// decisionsFlags are the flags `dcnflow decisions` must document in its
// usage text: the mode selector and the fitness weights.
var decisionsFlags = []string{"-mode", "-fit-energy", "-fit-miss", "-fit-slack", "-topk", "-require-regret", "-require-win"}

// serveFlags are the load-management flags `dcnflow serve` must document
// in its usage text: engine sharding and token-bucket admission control.
var serveFlags = []string{"-shards", "-admit-rate", "-admit-burst", "-admit-queue"}

// onlineFlags are the delta-solve flags `dcnflow online` must document in
// its usage text.
var onlineFlags = []string{"-delta", "-delta-drift", "-delta-stale"}

// missingFlags reports the flags absent from a command's usage text. The
// flag package prints definitions with a single dash and leading
// whitespace, so "  -shards" is matched; prose mentions do not count.
func missingFlags(source, text string, flags []string) []string {
	var missing []string
	for _, f := range flags {
		if !regexp.MustCompile(`(?m)^\s*` + regexp.QuoteMeta(f) + `\b`).MatchString(text) {
			missing = append(missing, fmt.Sprintf("%s: flag %s not documented", source, f))
		}
	}
	return missing
}

// missingNames reports the names absent from text, labelled by source. A
// name must appear as a whole word — solver names use [a-z0-9-], so any
// other character (backtick, comma, quote, space, line edge) delimits it.
// Bare substring matching would let prose like "exactly" satisfy the gate
// for the "exact" solver.
func missingNames(source, text string, names []string) []string {
	var missing []string
	for _, name := range names {
		re := regexp.MustCompile(`(^|[^a-z0-9-])` + regexp.QuoteMeta(name) + `($|[^a-z0-9-])`)
		if !re.MatchString(text) {
			missing = append(missing, fmt.Sprintf("%s: registered solver %q not mentioned", source, name))
		}
	}
	return missing
}

// audit parses the package in dir (tests excluded) and returns the
// positions of exported, undocumented declarations.
func audit(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods count too: an exported method on an exported
					// receiver is API surface.
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func", d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && !groupDoc && sp.Doc == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							if !groupDoc && sp.Doc == nil && sp.Comment == nil {
								for _, n := range sp.Names {
									if n.IsExported() {
										report(sp.Pos(), "value", n.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}
