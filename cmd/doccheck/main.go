// Command doccheck is the docs gate run by CI: it fails when an exported
// symbol of the target package (default: the repository root package, the
// public facade) is missing a doc comment, so the pkg.go.dev surface cannot
// silently rot.
//
//	go run ./cmd/doccheck            # audit the root package
//	go run ./cmd/doccheck -dir path  # audit another package directory
//
// Checked declarations: exported functions, types, and every exported name
// inside const/var/type blocks. Names inside a documented group
// declaration (a var/const block with a doc comment per spec entry, the
// style the facade uses) pass when either the group or the spec is
// documented.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to audit")
	flag.Parse()
	missing, err := audit(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbols missing doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: %s clean\n", *dir)
}

// audit parses the package in dir (tests excluded) and returns the
// positions of exported, undocumented declarations.
func audit(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					// Methods count too: an exported method on an exported
					// receiver is API surface.
					if d.Name.IsExported() && d.Doc == nil {
						report(d.Pos(), "func", d.Name.Name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && !groupDoc && sp.Doc == nil {
								report(sp.Pos(), "type", sp.Name.Name)
							}
						case *ast.ValueSpec:
							if !groupDoc && sp.Doc == nil && sp.Comment == nil {
								for _, n := range sp.Names {
									if n.IsExported() {
										report(sp.Pos(), "value", n.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}
