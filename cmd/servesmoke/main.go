// Command servesmoke is the end-to-end smoke test of the serve path,
// wired into CI as `make serve-smoke`:
//
//  1. build the dcnflow binary and start `dcnflow serve` on a free port;
//  2. fire a 3-request batch (three solver families on one example
//     scenario) through the Go client (dcnflow.Client);
//  3. assert every returned energy is bit-identical to the in-process
//     engine solve of the same spec — the exact code path `dcnflow run`
//     prints — and that /healthz answers with warm cache counters;
//  4. SIGTERM the server and require a graceful zero-status exit.
//
// Any divergence, refusal or hang (a 60s watchdog) exits non-zero.
package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"time"

	"dcnflow"
)

const scenarioPath = "examples/scenarios/incast-leafspine.json"

var smokeSolvers = []string{dcnflow.SolverDCFSR, dcnflow.SolverSPMCF, dcnflow.SolverGreedyOnline}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec, err := dcnflow.LoadScenarioFile(scenarioPath)
	if err != nil {
		return err
	}

	// Build a real binary so the server process receives signals directly
	// (go run interposes a wrapper).
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "dcnflow")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/dcnflow")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building dcnflow: %w", err)
	}

	srv := exec.CommandContext(ctx, bin, "serve", "-addr", "127.0.0.1:0")
	srv.Stderr = os.Stderr
	stdout, err := srv.StdoutPipe()
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting serve: %w", err)
	}
	defer srv.Process.Kill() // no-op after a clean Wait

	// The server prints its resolved address once the listener is up.
	scanner := bufio.NewScanner(stdout)
	listen := regexp.MustCompile(`listening on (http://\S+)`)
	base := ""
	for scanner.Scan() {
		if m := listen.FindStringSubmatch(scanner.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		return fmt.Errorf("serve printed no listen banner (scan error: %v)", scanner.Err())
	}
	go func() { // keep draining so the server never blocks on stdout
		for scanner.Scan() {
		}
	}()
	fmt.Println("servesmoke: server up at", base)

	// The 3-request batch: three solver families on one scenario.
	client := &dcnflow.Client{BaseURL: base}
	reqs := make([]dcnflow.ServeRequest, len(smokeSolvers))
	for i, solver := range smokeSolvers {
		reqs[i] = dcnflow.ServeRequest{Scenario: *spec, Solver: solver}
	}
	results, err := client.SolveBatch(ctx, reqs)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}

	// Reference energies: the same engine dispatch `dcnflow run` uses.
	eng := dcnflow.NewEngine(dcnflow.EngineOptions{})
	for i, solver := range smokeSolvers {
		if results[i].Error != "" {
			return fmt.Errorf("batch item %s failed: %s", solver, results[i].Error)
		}
		ref := eng.Solve(ctx, dcnflow.Request{Scenario: spec, Solver: solver})
		if ref.Err != nil {
			return fmt.Errorf("reference solve %s: %w", solver, ref.Err)
		}
		if results[i].Energy != ref.Solution.Energy {
			return fmt.Errorf("%s: served energy %v != dcnflow run energy %v",
				solver, results[i].Energy, ref.Solution.Energy)
		}
		fmt.Printf("servesmoke: %-14s energy %.6f == local (cache hit: %v)\n",
			solver, results[i].Energy, results[i].CacheHit)
	}

	health, err := client.Health(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if health.Status != "ok" || health.Cache.Misses == 0 {
		return fmt.Errorf("unhealthy server: %+v", health)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signalling serve: %w", err)
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("serve did not exit cleanly: %w", err)
	}
	fmt.Println("servesmoke: OK (batch matched, graceful shutdown)")
	return nil
}
