package dcnflow_test

import (
	"context"
	"fmt"
	"strings"

	"dcnflow"
)

// ExampleLoadScenario loads a declarative JSON scenario spec, builds the
// typed Instance it describes and solves it with a registered solver — the
// whole experiment as data.
func ExampleLoadScenario() {
	spec, err := dcnflow.LoadScenario(strings.NewReader(`{
	  "name": "line-demo",
	  "topology": {"kind": "line", "k": 3, "capacity": 1000},
	  "workload": {"kind": "shuffle", "hosts": 2, "release": 0, "deadline": 10, "size": 40},
	  "model": {"mu": 1, "alpha": 2, "c": 1000},
	  "seed": 1
	}`))
	if err != nil {
		panic(err)
	}
	inst, _ := spec.Instance()
	sol, _ := dcnflow.Solve(context.Background(), dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(spec.Seed))
	fmt.Printf("%s on %q: %d flows, energy %.0f\n", sol.Solver, spec.Name, inst.Flows().Len(), sol.Energy)
	// Output: dcfsr on "line-demo": 2 flows, energy 320
}

// ExampleSolve runs two registered solver families on the same typed
// Instance and compares them against the shared fractional lower bound —
// the uniform comparison loop the Scenario/Solver registry exists for.
func ExampleSolve() {
	ft, _ := dcnflow.FatTree(4, 1000)
	flows, _ := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 20, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}
	inst, _ := dcnflow.NewInstance(ft.Graph, flows, model)

	ctx := context.Background()
	rs, _ := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(1))
	sp, _ := dcnflow.Solve(ctx, dcnflow.SolverSPMCF, inst)
	fmt.Printf("%s: %.2fx of the lower bound\n", rs.Solver, rs.Energy/rs.LowerBound)
	fmt.Printf("%s: %.2fx of the lower bound\n", sp.Solver, sp.Energy/rs.LowerBound)
	// Output:
	// dcfsr: 1.60x of the lower bound
	// sp-mcf: 1.82x of the lower bound
}

// ExampleSaveScenario round-trips a spec through its canonical JSON form:
// saving and re-loading reproduces the identical experiment.
func ExampleSaveScenario() {
	spec := &dcnflow.ScenarioSpec{
		Name:     "roundtrip",
		Topology: dcnflow.TopologySpec{Kind: "star", K: 4, Capacity: 100},
		Workload: dcnflow.WorkloadSpec{Kind: "incast", Hosts: 3, Release: 0, Deadline: 5, Size: 10},
		Model:    dcnflow.ModelSpec{Sigma: 1, Mu: 1, Alpha: 2, C: 100},
	}
	var buf strings.Builder
	if err := dcnflow.SaveScenario(&buf, spec); err != nil {
		panic(err)
	}
	back, _ := dcnflow.LoadScenario(strings.NewReader(buf.String()))
	fmt.Printf("round-trip identical: %v\n", *back == *spec)
	// Output: round-trip identical: true
}
