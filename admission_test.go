package dcnflow

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives an admitter deterministically: now() reads a settable
// instant and afterFunc hands back an inert timer (tests call tick
// themselves).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1700000000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) afterFunc(time.Duration, func()) *time.Timer {
	// Far-future inert timer; the test advances time and ticks manually.
	return time.AfterFunc(24*time.Hour, func() {})
}

// fakeAdmitter builds an admitter on a fake clock.
func fakeAdmitter(o AdmissionOptions) (*admitter, *fakeClock) {
	clk := newFakeClock()
	a := newAdmitter(o)
	a.now = clk.now
	a.afterFunc = clk.afterFunc
	a.tokens = a.burst
	a.last = clk.now()
	return a, clk
}

func TestAdmissionRefillMath(t *testing.T) {
	cases := []struct {
		name       string
		rate       float64
		burst      float64
		startToken float64
		dt         time.Duration
		want       float64
	}{
		{"accrues_linearly", 10, 100, 0, time.Second, 10},
		{"caps_at_burst", 10, 5, 0, 10 * time.Second, 5},
		{"partial_second", 4, 100, 1, 250 * time.Millisecond, 2},
		{"zero_elapsed", 10, 100, 3, 0, 3},
		{"fractional_rate", 0.5, 10, 0, 3 * time.Second, 1.5},
		{"already_full", 10, 8, 8, time.Minute, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, clk := fakeAdmitter(AdmissionOptions{Rate: tc.rate, Burst: tc.burst})
			a.tokens = tc.startToken
			clk.advance(tc.dt)
			a.mu.Lock()
			a.refillLocked(clk.now())
			got := a.tokens
			a.mu.Unlock()
			if diff := got - tc.want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("tokens after %v = %v, want %v", tc.dt, got, tc.want)
			}
		})
	}
}

func TestAdmissionFastPathAndExhaustion(t *testing.T) {
	a, clk := fakeAdmitter(AdmissionOptions{Rate: 1, Burst: 3, QueueDepth: 1, MaxWait: time.Hour})
	// Burst admits 3 back to back without queueing.
	for i := 0; i < 3; i++ {
		if err := a.admit(nil, ""); err != nil {
			t.Fatalf("admit %d under burst: %v", i, err)
		}
	}
	tokens, queued := a.snapshot()
	if tokens != 0 || queued != 0 {
		t.Fatalf("after burst: tokens=%v queued=%d, want 0/0", tokens, queued)
	}
	// One second of refill buys exactly one more.
	clk.advance(time.Second)
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("admit after refill: %v", err)
	}
	if tokens, _ := a.snapshot(); tokens != 0 {
		t.Fatalf("tokens = %v, want 0", tokens)
	}
}

func TestAdmissionQueueFull429(t *testing.T) {
	a, _ := fakeAdmitter(AdmissionOptions{Rate: 0.5, Burst: 1, QueueDepth: 1, MaxWait: time.Hour})
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	// Occupy the single queue slot with a blocked waiter.
	admittedCh := make(chan *admitError, 1)
	go func() { admittedCh <- a.admit(nil, "") }()
	waitQueued(t, a, 1)

	// Queue full: immediate 429 with a Retry-After estimate. Two requests
	// (the queued one + this one) against 0 tokens at 0.5/s = 4s.
	err := a.admit(nil, "")
	if err == nil {
		t.Fatal("want 429 when the queue is full")
	}
	if err.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", err.status)
	}
	if err.retryAfter != 4 {
		t.Fatalf("retryAfter = %d, want 4 (2 waiters / 0.5 rps)", err.retryAfter)
	}
	if !strings.Contains(err.msg, "queue full") {
		t.Fatalf("msg %q does not mention the full queue", err.msg)
	}

	// Drain releases the queued waiter with 503.
	a.drain()
	qerr := <-admittedCh
	if qerr == nil || qerr.status != http.StatusServiceUnavailable {
		t.Fatalf("queued waiter got %+v, want 503 on drain", qerr)
	}
}

func TestAdmissionPriorityOrdering(t *testing.T) {
	a, clk := fakeAdmitter(AdmissionOptions{Rate: 1, Burst: 1, QueueDepth: 16, MaxWait: time.Hour})
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("drain the bucket: %v", err)
	}

	// Queue arrivals worst-first so ordering cannot be FIFO luck.
	order := make(chan string, 3)
	var wg sync.WaitGroup
	for i, class := range []string{PriorityLow, PriorityNormal, PriorityHigh} {
		class := class
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.admit(nil, class); err != nil {
				t.Errorf("admit(%s): %v", class, err)
				return
			}
			order <- class
		}()
		waitQueuedAtLeast(t, a, i+1) // enqueue strictly worst-first
	}
	waitQueued(t, a, 3)

	// Release one token at a time; each tick must admit the most urgent
	// remaining class.
	want := []string{PriorityHigh, PriorityNormal, PriorityLow}
	for _, w := range want {
		clk.advance(time.Second)
		a.tick()
		select {
		case got := <-order:
			if got != w {
				t.Fatalf("admitted %q, want %q", got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no admission after tick (waiting for %q)", w)
		}
	}
	wg.Wait()
}

func TestAdmissionDrainBouncesEveryone(t *testing.T) {
	a, _ := fakeAdmitter(AdmissionOptions{Rate: 1, Burst: 1, QueueDepth: 8, MaxWait: time.Hour})
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("drain the bucket: %v", err)
	}
	errs := make(chan *admitError, 3)
	for i := 0; i < 3; i++ {
		go func() { errs <- a.admit(nil, "") }()
	}
	waitQueued(t, a, 3)
	a.drain()
	for i := 0; i < 3; i++ {
		if e := <-errs; e == nil || e.status != http.StatusServiceUnavailable {
			t.Fatalf("queued waiter %d got %+v, want 503", i, e)
		}
	}
	// After the drain every new admit answers 503 immediately.
	if e := a.admit(nil, PriorityHigh); e == nil || e.status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admit got %+v, want 503", e)
	}
	a.drain() // idempotent
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a, _ := fakeAdmitter(AdmissionOptions{Rate: 1, Burst: 1, QueueDepth: 8, MaxWait: time.Hour})
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("drain the bucket: %v", err)
	}
	cancel := make(chan struct{})
	errCh := make(chan *admitError, 1)
	go func() { errCh <- a.admit(cancel, "") }()
	waitQueued(t, a, 1)
	close(cancel)
	e := <-errCh
	if e == nil || e.status != http.StatusServiceUnavailable {
		t.Fatalf("cancelled waiter got %+v, want 503", e)
	}
	if _, queued := a.snapshot(); queued != 0 {
		t.Fatalf("queue depth = %d after cancel, want 0", queued)
	}
}

func TestAdmissionMaxWaitTimeout(t *testing.T) {
	// Real timers here: MaxWait is enforced by afterFunc, so give the
	// admitter a clock that actually fires and a refill rate too slow to
	// ever admit the waiter.
	a := newAdmitter(AdmissionOptions{Rate: 0.001, Burst: 1, QueueDepth: 8, MaxWait: 20 * time.Millisecond})
	if err := a.admit(nil, ""); err != nil {
		t.Fatalf("drain the bucket: %v", err)
	}
	start := time.Now()
	e := a.admit(nil, "")
	if e == nil {
		t.Fatal("want 429 after MaxWait")
	}
	if e.status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", e.status)
	}
	if e.retryAfter < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", e.retryAfter)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("timed out after %v, before MaxWait elapsed", waited)
	}
	a.drain()
}

func TestAdmissionDefaults(t *testing.T) {
	a := newAdmitter(AdmissionOptions{Rate: 2})
	if a.burst != 2 {
		t.Fatalf("default burst = %v, want max(rate,1) = 2", a.burst)
	}
	if a.depth != 64 {
		t.Fatalf("default queue depth = %d, want 64", a.depth)
	}
	if a.maxWait != 10*time.Second {
		t.Fatalf("default max wait = %v, want 10s", a.maxWait)
	}
	b := newAdmitter(AdmissionOptions{Rate: 0.25})
	if b.burst != 1 {
		t.Fatalf("sub-1 rate burst = %v, want 1", b.burst)
	}
}

func TestPriorityRank(t *testing.T) {
	cases := []struct {
		class string
		rank  int
		ok    bool
	}{
		{"high", 0, true},
		{"", 1, true},
		{"normal", 1, true},
		{"low", 2, true},
		{"urgent", 0, false},
		{"HIGH", 0, false},
	}
	for _, tc := range cases {
		rank, ok := priorityRank(tc.class)
		if ok != tc.ok || (ok && rank != tc.rank) {
			t.Errorf("priorityRank(%q) = (%d, %v), want (%d, %v)", tc.class, rank, ok, tc.rank, tc.ok)
		}
	}
	if canonicalPriority("") != PriorityNormal {
		t.Error(`canonicalPriority("") != "normal"`)
	}
	if canonicalPriority("low") != "low" {
		t.Error(`canonicalPriority("low") != "low"`)
	}
}

// waitQueued polls until exactly n live waiters are queued.
func waitQueued(t *testing.T, a *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, queued := a.snapshot(); queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	_, queued := a.snapshot()
	t.Fatalf("queue depth = %d, want %d", queued, n)
}

// waitQueuedAtLeast polls until at least n live waiters are queued.
func waitQueuedAtLeast(t *testing.T, a *admitter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, queued := a.snapshot(); queued >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	_, queued := a.snapshot()
	t.Fatalf("queue depth = %d, want >= %d", queued, n)
}
