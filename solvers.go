package dcnflow

import (
	"context"
	"fmt"

	"dcnflow/internal/baseline"
	"dcnflow/internal/core"
	"dcnflow/internal/online"
)

// Built-in solver names, as registered in the package-level registry. The
// constants exist so callers and the CLI can reference families without
// string literals; SolverNames() returns the same set.
const (
	// SolverDCFSR is the Random-Schedule relaxation/rounding approximation
	// for joint routing and scheduling (Algorithm 2).
	SolverDCFSR = "dcfsr"
	// SolverDCFSMCF schedules with Most-Critical-First on the instance's
	// fixed routing (Instance.Routing), falling back to shortest paths when
	// the instance fixes none.
	SolverDCFSMCF = "dcfs-mcf"
	// SolverSPMCF is the paper's comparison baseline: deterministic
	// shortest-path routing plus the optimal Most-Critical-First schedule.
	SolverSPMCF = "sp-mcf"
	// SolverECMPMCF is SP+MCF with randomised equal-cost multi-path routing.
	SolverECMPMCF = "ecmp-mcf"
	// SolverAlwaysOn is the no-energy-management baseline: full-rate
	// shortest-path transmission, every link powered the whole horizon.
	SolverAlwaysOn = "always-on"
	// SolverExact is the brute-force small-instance optimum (path
	// enumeration with optimal per-assignment scheduling).
	SolverExact = "exact"
	// SolverGreedyOnline is the irrevocable marginal-cost greedy online
	// scheduler.
	SolverGreedyOnline = "greedy-online"
	// SolverRollingOnline is the rolling-horizon online re-optimizer.
	SolverRollingOnline = "rolling-online"
)

// solverFunc adapts a closure to the Solver interface with the shared
// entry checks (nil instance, nil context).
type solverFunc struct {
	name string
	run  func(ctx context.Context, in *Instance) (*Solution, error)
}

// Name implements Solver.
func (s *solverFunc) Name() string { return s.name }

// Solve implements Solver.
func (s *solverFunc) Solve(ctx context.Context, in *Instance) (*Solution, error) {
	if in == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrBadInstance)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return s.run(ctx, in)
}

func boolStat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// mcfSolution packages a Most-Critical-First result uniformly.
func mcfSolution(name string, in *Instance, res *core.DCFSResult) *Solution {
	return &Solution{
		Solver:   name,
		Schedule: res.Schedule,
		Energy:   res.Schedule.EnergyTotal(in.model),
		Stats: map[string]float64{
			"rounds":    float64(len(res.Rounds)),
			"conflicts": float64(res.Conflicts),
			"links_on":  float64(len(res.Schedule.ActiveLinks())),
		},
	}
}

// registerBuiltins populates the package-level registry with the eight
// solver families. It runs once at init; a registration failure here is a
// programming error, hence the panic.
func registerBuiltins() {
	mustRegister := func(name string, f SolverFactory) {
		if err := Register(name, f); err != nil {
			panic(err)
		}
	}

	mustRegister(SolverDCFSR, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverDCFSR, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			opts := cfg.DCFSR
			if cfg.scratch != nil {
				// Engine-dispatched solve: draw the per-interval fan-out's
				// solvers from the pooled scratch bound to this instance's
				// compiled graph. Reuse never affects results.
				opts.Solvers = cfg.scratch.poolFor(in.graph, in.model, opts.Solver)
			}
			res, err := core.SolveDCFSRCtx(ctx, core.DCFSRInput{
				Graph: in.graph, Flows: in.flows, Model: in.model, Opts: opts,
			})
			if err != nil {
				return nil, err
			}
			return &Solution{
				Solver:     SolverDCFSR,
				Schedule:   res.Schedule,
				Energy:     res.Schedule.EnergyTotal(in.model),
				LowerBound: res.LowerBound,
				Stats: map[string]float64{
					"attempts":          float64(res.Attempts),
					"intervals":         float64(res.Intervals),
					"lambda":            res.Lambda,
					"max_rate":          res.MaxRate,
					"capacity_feasible": boolStat(res.CapacityFeasible),
					"links_on":          float64(len(res.Schedule.ActiveLinks())),
				},
			}, nil
		}}, nil
	})

	mustRegister(SolverDCFSMCF, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverDCFSMCF, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			paths := in.paths
			if paths == nil {
				var err error
				if paths, err = baseline.ShortestPaths(in.graph, in.flows); err != nil {
					return nil, err
				}
			}
			res, err := core.SolveDCFSCtx(ctx, core.DCFSInput{
				Graph: in.graph, Flows: in.flows, Paths: paths, Model: in.model,
			})
			if err != nil {
				return nil, err
			}
			return mcfSolution(SolverDCFSMCF, in, res), nil
		}}, nil
	})

	mustRegister(SolverSPMCF, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverSPMCF, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			paths, err := baseline.ShortestPaths(in.graph, in.flows)
			if err != nil {
				return nil, err
			}
			res, err := core.SolveDCFSCtx(ctx, core.DCFSInput{
				Graph: in.graph, Flows: in.flows, Paths: paths, Model: in.model,
			})
			if err != nil {
				return nil, err
			}
			return mcfSolution(SolverSPMCF, in, res), nil
		}}, nil
	})

	mustRegister(SolverECMPMCF, func(cfg SolverConfig) (Solver, error) {
		width := cfg.ECMPWidth
		if width <= 0 {
			width = 8
		}
		return &solverFunc{name: SolverECMPMCF, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			paths, err := baseline.ECMPPaths(in.graph, in.flows, width, cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := core.SolveDCFSCtx(ctx, core.DCFSInput{
				Graph: in.graph, Flows: in.flows, Paths: paths, Model: in.model,
			})
			if err != nil {
				return nil, err
			}
			sol := mcfSolution(SolverECMPMCF, in, res)
			sol.Stats["ecmp_width"] = float64(width)
			return sol, nil
		}}, nil
	})

	mustRegister(SolverAlwaysOn, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverAlwaysOn, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			res, err := baseline.AlwaysOnFullRate(in.graph, in.flows, in.model)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Solver:   SolverAlwaysOn,
				Schedule: res.Schedule,
				Energy:   res.Energy,
				Stats: map[string]float64{
					"links_on": float64(in.graph.NumEdges()),
				},
			}, nil
		}}, nil
	})

	mustRegister(SolverExact, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverExact, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			res, err := core.SolveDCFSRExactCtx(ctx, core.DCFSRInput{
				Graph: in.graph, Flows: in.flows, Model: in.model,
			}, cfg.Exact)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Solver:   SolverExact,
				Schedule: res.Result.Schedule,
				Energy:   res.Energy,
				Stats: map[string]float64{
					"assignments": float64(res.Assignments),
					"links_on":    float64(len(res.Result.Schedule.ActiveLinks())),
				},
			}, nil
		}}, nil
	})

	mustRegister(SolverGreedyOnline, func(cfg SolverConfig) (Solver, error) {
		return &solverFunc{name: SolverGreedyOnline, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			horizon := in.horizon
			res, err := online.RunCtx(ctx, in.graph, in.flows, in.model, &horizon, cfg.Online)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Solver:   SolverGreedyOnline,
				Schedule: res.Schedule,
				Energy:   res.Schedule.EnergyTotal(in.model),
				Stats: map[string]float64{
					"admitted":  float64(res.Admitted),
					"rejected":  float64(in.flows.Len() - res.Admitted),
					"peak_rate": res.PeakRate,
					"links_on":  float64(len(res.Schedule.ActiveLinks())),
				},
			}, nil
		}}, nil
	})

	mustRegister(SolverRollingOnline, func(cfg SolverConfig) (Solver, error) {
		ropts := cfg.Rolling
		ropts.DCFSR = cfg.DCFSR
		return &solverFunc{name: SolverRollingOnline, run: func(ctx context.Context, in *Instance) (*Solution, error) {
			horizon := in.horizon
			opts := ropts
			if cfg.scratch != nil {
				// Engine-dispatched solve: hand the rolling scheduler the
				// engine's shared solver pool so epoch re-solves of repeated
				// requests on one topology recycle scratch across requests,
				// not just across epochs.
				opts.DCFSR.Solvers = cfg.scratch.poolFor(in.graph, in.model, opts.DCFSR.Solver)
			}
			res, rep, err := online.RunRollingCtx(ctx, in.graph, in.flows, in.model, &horizon, opts)
			if err != nil {
				return nil, err
			}
			return &Solution{
				Solver:   SolverRollingOnline,
				Schedule: res.Schedule,
				Energy:   res.Schedule.EnergyTotal(in.model),
				Stats: map[string]float64{
					"epochs":              float64(res.Stats.Epochs),
					"fw_iters":            float64(res.Stats.FWIters),
					"seeded_intervals":    float64(res.Stats.SeededIntervals),
					"solved_intervals":    float64(res.Stats.SolvedIntervals),
					"admitted":            float64(rep.Admitted),
					"rejected":            float64(rep.Rejected),
					"deadline_violations": float64(rep.DeadlineViolations),
					"capacity_violations": float64(rep.CapacityViolations),
					"first_residual_lb":   res.Stats.FirstResidualLB,
					"links_on":            float64(len(res.Schedule.ActiveLinks())),
				},
			}, nil
		}}, nil
	})
}

func init() { registerBuiltins() }
