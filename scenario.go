package dcnflow

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"dcnflow/internal/flow"
	"dcnflow/internal/topology"
)

// ErrBadScenario reports a scenario spec that failed strict decoding or
// validation; the wrapped message names the offending field.
var ErrBadScenario = errors.New("dcnflow: invalid scenario spec")

// Scenario kind vocabularies, in the order they are documented.
var (
	// TopologyKinds lists the TopologySpec.Kind values LoadScenario accepts.
	TopologyKinds = []string{"fattree", "bcube", "leafspine", "vl2", "jellyfish", "line", "star"}
	// WorkloadKinds lists the WorkloadSpec.Kind values LoadScenario accepts.
	WorkloadKinds = []string{"uniform", "diurnal", "incast", "partition-aggregate", "shuffle"}
)

// TopologySpec declares a generated topology by kind and parameters. Only
// the fields of the selected kind are consulted; Capacity is shared by all
// kinds (it is the per-link rate cap C's physical counterpart).
//
//	fattree:   k (arity; 8 = the paper's 80 switches / 128 servers)
//	bcube:     k (port count n), l (level)
//	leafspine: spines, leaves, hosts_per_leaf
//	vl2:       di, da, tors, hosts_per_tor
//	jellyfish: switches, degree, hosts_per_switch, seed
//	line:      k (switch count)
//	star:      k (leaf count)
type TopologySpec struct {
	// Kind selects the generator; see TopologyKinds.
	Kind string `json:"kind"`
	// K is the fat-tree arity, BCube port count, line length or star size.
	K int `json:"k,omitempty"`
	// L is the BCube level.
	L int `json:"l,omitempty"`
	// Spines, Leaves and HostsPerLeaf shape a leaf-spine Clos.
	Spines       int `json:"spines,omitempty"`
	Leaves       int `json:"leaves,omitempty"`
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`
	// Di, Da, Tors and HostsPerTor shape a VL2 folded Clos.
	Di          int `json:"di,omitempty"`
	Da          int `json:"da,omitempty"`
	Tors        int `json:"tors,omitempty"`
	HostsPerTor int `json:"hosts_per_tor,omitempty"`
	// Switches, Degree and HostsPerSwitch shape a Jellyfish random graph.
	Switches       int `json:"switches,omitempty"`
	Degree         int `json:"degree,omitempty"`
	HostsPerSwitch int `json:"hosts_per_switch,omitempty"`
	// Seed drives the Jellyfish random wiring.
	Seed int64 `json:"seed,omitempty"`
	// Capacity is the per-link capacity every generated link carries.
	Capacity float64 `json:"capacity"`
}

// Validate checks the cheap, generator-independent invariants: the kind is
// known and the shared capacity is positive. (Kind-specific dimension
// errors surface from Build, wrapped in ErrBadScenario.) Shared by
// ScenarioSpec.Validate and SweepSpec.Validate.
func (t TopologySpec) Validate() error {
	known := false
	for _, k := range TopologyKinds {
		known = known || t.Kind == k
	}
	if !known {
		return fmt.Errorf("%w: unknown topology kind %q (want one of %s)",
			ErrBadScenario, t.Kind, strings.Join(TopologyKinds, ", "))
	}
	if t.Capacity <= 0 {
		return fmt.Errorf("%w: topology capacity must be positive, got %v", ErrBadScenario, t.Capacity)
	}
	return nil
}

// Label is a compact deterministic tag for reports and sweep JSONL rows,
// e.g. "fattree-k8" or "leafspine-2x4x8".
func (t TopologySpec) Label() string {
	switch t.Kind {
	case "fattree", "line", "star":
		return fmt.Sprintf("%s-k%d", t.Kind, t.K)
	case "bcube":
		return fmt.Sprintf("bcube-n%d-l%d", t.K, t.L)
	case "leafspine":
		return fmt.Sprintf("leafspine-%dx%dx%d", t.Spines, t.Leaves, t.HostsPerLeaf)
	case "vl2":
		return fmt.Sprintf("vl2-%d.%d.%d.%d", t.Di, t.Da, t.Tors, t.HostsPerTor)
	case "jellyfish":
		return fmt.Sprintf("jellyfish-%d.%d.%d", t.Switches, t.Degree, t.HostsPerSwitch)
	}
	return t.Kind
}

// Build generates the declared topology.
func (t TopologySpec) Build() (*Topology, error) {
	if t.Capacity <= 0 {
		return nil, fmt.Errorf("%w: topology capacity must be positive, got %v", ErrBadScenario, t.Capacity)
	}
	var (
		top *Topology
		err error
	)
	switch t.Kind {
	case "fattree":
		top, err = topology.FatTree(t.K, t.Capacity)
	case "bcube":
		top, err = topology.BCube(t.K, t.L, t.Capacity)
	case "leafspine":
		top, err = topology.LeafSpine(t.Spines, t.Leaves, t.HostsPerLeaf, t.Capacity)
	case "vl2":
		top, err = topology.VL2(t.Di, t.Da, t.Tors, t.HostsPerTor, t.Capacity)
	case "jellyfish":
		top, err = topology.Jellyfish(t.Switches, t.Degree, t.HostsPerSwitch, t.Capacity, t.Seed)
	case "line":
		top, err = topology.Line(t.K, t.Capacity)
	case "star":
		top, err = topology.Star(t.K, t.Capacity)
	default:
		return nil, fmt.Errorf("%w: unknown topology kind %q (want one of %s)",
			ErrBadScenario, t.Kind, strings.Join(TopologyKinds, ", "))
	}
	if err != nil {
		return nil, fmt.Errorf("%w: topology %s: %v", ErrBadScenario, t.Kind, err)
	}
	return top, nil
}

// WorkloadSpec declares a generated flow set by kind and parameters.
//
//	uniform:             n, t0, t1, size_mean, size_stddev, min_span,
//	                     time_quantum, seed — the paper's evaluation workload
//	diurnal:             n, t0, t1, peak_factor, size_mean, size_stddev,
//	                     span_mean, seed — sinusoidal arrival intensity
//	incast:              hosts (senders + 1), release, deadline, size — the
//	                     first topology host receives from the next hosts-1
//	partition-aggregate: like incast (the aggregator is the first host)
//	shuffle:             hosts, release, deadline, size — all-to-all among
//	                     the first hosts topology hosts
type WorkloadSpec struct {
	// Kind selects the generator; see WorkloadKinds.
	Kind string `json:"kind"`
	// N is the flow count of the random generators.
	N int `json:"n,omitempty"`
	// T0 and T1 delimit the horizon of the random generators.
	T0 float64 `json:"t0,omitempty"`
	T1 float64 `json:"t1,omitempty"`
	// SizeMean and SizeStddev parameterise the truncated-normal sizes.
	SizeMean   float64 `json:"size_mean,omitempty"`
	SizeStddev float64 `json:"size_stddev,omitempty"`
	// MinSpan and TimeQuantum tune the uniform generator (see
	// WorkloadConfig).
	MinSpan     float64 `json:"min_span,omitempty"`
	TimeQuantum float64 `json:"time_quantum,omitempty"`
	// PeakFactor and SpanMean tune the diurnal generator (see
	// DiurnalConfig).
	PeakFactor float64 `json:"peak_factor,omitempty"`
	SpanMean   float64 `json:"span_mean,omitempty"`
	// Hosts is the participant count of the deterministic patterns (incast,
	// partition-aggregate, shuffle), drawn from the front of the topology's
	// host list.
	Hosts int `json:"hosts,omitempty"`
	// Release, Deadline and Size shape the deterministic patterns' shared
	// window and per-flow size.
	Release  float64 `json:"release,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	Size     float64 `json:"size,omitempty"`
	// Seed drives the random generators.
	Seed int64 `json:"seed,omitempty"`
	// Tightness is the deadline-tightness override hook: after generation,
	// every flow's window is rescaled to
	// [Release, Release + Tightness*(Deadline-Release)], so values below 1
	// tighten deadlines and values above 1 relax them. Zero (the default)
	// leaves the generated windows untouched. The sweep engine crosses its
	// tightness axis through this field.
	Tightness float64 `json:"tightness,omitempty"`
}

// Validate checks the generator-independent invariants: the kind is known,
// the kind's mandatory parameters are present, and the tightness override
// is non-negative. Shared by ScenarioSpec.Validate and SweepSpec.Validate.
func (w WorkloadSpec) Validate() error {
	known := false
	for _, k := range WorkloadKinds {
		known = known || w.Kind == k
	}
	if !known {
		return fmt.Errorf("%w: unknown workload kind %q (want one of %s)",
			ErrBadScenario, w.Kind, strings.Join(WorkloadKinds, ", "))
	}
	if w.Tightness < 0 {
		return fmt.Errorf("%w: workload tightness must be positive, got %v", ErrBadScenario, w.Tightness)
	}
	switch w.Kind {
	case "uniform", "diurnal":
		if w.N <= 0 {
			return fmt.Errorf("%w: workload n must be positive, got %d", ErrBadScenario, w.N)
		}
		if w.T1 <= w.T0 {
			return fmt.Errorf("%w: workload horizon [%v, %v] is empty", ErrBadScenario, w.T0, w.T1)
		}
		if w.SizeMean <= 0 {
			return fmt.Errorf("%w: workload size_mean must be positive, got %v", ErrBadScenario, w.SizeMean)
		}
	default:
		if w.Hosts < 2 {
			return fmt.Errorf("%w: workload hosts must be at least 2, got %d", ErrBadScenario, w.Hosts)
		}
		if w.Deadline <= w.Release {
			return fmt.Errorf("%w: workload window [%v, %v] is empty", ErrBadScenario, w.Release, w.Deadline)
		}
		if w.Size <= 0 {
			return fmt.Errorf("%w: workload size must be positive, got %v", ErrBadScenario, w.Size)
		}
	}
	return nil
}

// Label is a compact deterministic tag for reports and sweep JSONL rows,
// e.g. "uniform-n40" or "incast-h8".
func (w WorkloadSpec) Label() string {
	switch w.Kind {
	case "uniform", "diurnal":
		return fmt.Sprintf("%s-n%d", w.Kind, w.N)
	}
	return fmt.Sprintf("%s-h%d", w.Kind, w.Hosts)
}

// Build generates the declared flow set on the topology's hosts.
func (w WorkloadSpec) Build(top *Topology) (*FlowSet, error) {
	if top == nil {
		return nil, fmt.Errorf("%w: workload needs a topology", ErrBadScenario)
	}
	if w.Tightness < 0 {
		return nil, fmt.Errorf("%w: workload tightness must be positive, got %v", ErrBadScenario, w.Tightness)
	}
	var (
		fs  *FlowSet
		err error
	)
	switch w.Kind {
	case "uniform":
		fs, err = flow.Uniform(flow.GenConfig{
			N: w.N, T0: w.T0, T1: w.T1,
			SizeMean: w.SizeMean, SizeStddev: w.SizeStddev,
			MinSpan: w.MinSpan, TimeQuantum: w.TimeQuantum,
			Hosts: top.Hosts, Seed: w.Seed,
		})
	case "diurnal":
		fs, err = flow.Diurnal(flow.DiurnalConfig{
			N: w.N, T0: w.T0, T1: w.T1, PeakFactor: w.PeakFactor,
			SizeMean: w.SizeMean, SizeStddev: w.SizeStddev, SpanMean: w.SpanMean,
			Hosts: top.Hosts, Seed: w.Seed,
		})
	case "incast", "partition-aggregate":
		if w.Hosts < 2 || w.Hosts > len(top.Hosts) {
			return nil, fmt.Errorf("%w: %s workload needs 2..%d hosts, got %d",
				ErrBadScenario, w.Kind, len(top.Hosts), w.Hosts)
		}
		fs, err = flow.PartitionAggregate(top.Hosts[0], top.Hosts[1:w.Hosts], w.Release, w.Deadline, w.Size)
	case "shuffle":
		if w.Hosts < 2 || w.Hosts > len(top.Hosts) {
			return nil, fmt.Errorf("%w: shuffle workload needs 2..%d hosts, got %d",
				ErrBadScenario, len(top.Hosts), w.Hosts)
		}
		fs, err = flow.Shuffle(top.Hosts[:w.Hosts], w.Release, w.Deadline, w.Size)
	default:
		return nil, fmt.Errorf("%w: unknown workload kind %q (want one of %s)",
			ErrBadScenario, w.Kind, strings.Join(WorkloadKinds, ", "))
	}
	if err != nil {
		return nil, fmt.Errorf("%w: workload %s: %v", ErrBadScenario, w.Kind, err)
	}
	if w.Tightness > 0 && w.Tightness != 1 {
		if fs, err = tightenDeadlines(fs, w.Tightness); err != nil {
			return nil, fmt.Errorf("%w: workload %s: tightness %v: %v", ErrBadScenario, w.Kind, w.Tightness, err)
		}
	}
	return fs, nil
}

// tightenDeadlines rescales every flow's window to
// [Release, Release + scale*(Deadline-Release)] — the deadline-tightness
// axis of the sweep engine. NewSet re-validates, so a scale that collapses
// a window below the representable span is rejected rather than silently
// producing an infeasible flow.
func tightenDeadlines(fs *FlowSet, scale float64) (*FlowSet, error) {
	flows := fs.Flows()
	for i := range flows {
		flows[i].Deadline = flows[i].Release + scale*(flows[i].Deadline-flows[i].Release)
	}
	return NewFlowSet(flows)
}

// ModelSpec declares the link power model f(x) = sigma + mu*x^alpha for
// 0 < x <= c, f(0) = 0. A zero C means uncapped.
type ModelSpec struct {
	// Sigma is the idle (leakage) power charged while a link is on.
	Sigma float64 `json:"sigma,omitempty"`
	// Mu scales the dynamic (speed-scaling) term.
	Mu float64 `json:"mu"`
	// Alpha is the power exponent (the paper evaluates 2 and 4).
	Alpha float64 `json:"alpha"`
	// C is the link rate cap; zero leaves the model uncapped.
	C float64 `json:"c,omitempty"`
}

// Model converts the spec to the internal power model.
func (m ModelSpec) Model() PowerModel {
	return PowerModel{Sigma: m.Sigma, Mu: m.Mu, Alpha: m.Alpha, C: m.C}
}

// ScenarioSpec is a declarative, JSON-serializable problem description:
// topology kind + parameters, workload kind + parameters, power model and
// seeds. A spec plus a solver name reproduces a run exactly —
// LoadScenario/SaveScenario round-trip bit-identically, so experiments
// become data (see examples/scenarios/ and `dcnflow run`).
type ScenarioSpec struct {
	// Name labels the scenario in reports; free-form.
	Name string `json:"name,omitempty"`
	// Topology declares the network.
	Topology TopologySpec `json:"topology"`
	// Workload declares the flow set, generated on the topology's hosts.
	Workload WorkloadSpec `json:"workload"`
	// Model declares the link power function.
	Model ModelSpec `json:"model"`
	// Seed is the solver seed (randomized rounding, ECMP draws); workload
	// and topology randomness have their own seeds in their specs.
	Seed int64 `json:"seed,omitempty"`
}

// Validate checks the spec without generating anything expensive: kinds are
// known, the model is well-formed and the obviously-broken parameter
// combinations are rejected with field-naming errors.
func (s *ScenarioSpec) Validate() error {
	if s == nil {
		return fmt.Errorf("%w: nil spec", ErrBadScenario)
	}
	if err := s.Topology.Validate(); err != nil {
		return err
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	if err := s.Model.Model().Validate(); err != nil {
		return fmt.Errorf("%w: model: %v", ErrBadScenario, err)
	}
	return nil
}

// Instance generates the topology and workload and packages them as a
// validated Instance (with the topology attached for host-list access).
func (s *ScenarioSpec) Instance() (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	top, err := s.Topology.Build()
	if err != nil {
		return nil, err
	}
	fs, err := s.Workload.Build(top)
	if err != nil {
		return nil, err
	}
	return NewInstanceBuilder().Topology(top).Flows(fs).Model(s.Model.Model()).Build()
}

// LoadScenario strictly decodes one JSON scenario spec: unknown fields,
// trailing garbage and invalid parameter combinations are all rejected with
// errors wrapping ErrBadScenario that name the problem.
func LoadScenario(r io.Reader) (*ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec ScenarioSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the spec object", ErrBadScenario)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// LoadScenarioFile is LoadScenario on a file path.
func LoadScenarioFile(path string) (*ScenarioSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dcnflow: %w", err)
	}
	defer f.Close()
	spec, err := LoadScenario(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// SaveScenario validates the spec and writes it as canonical indented JSON
// (two-space indent, trailing newline) — the byte format the golden-file
// tests and examples/scenarios/ pin. SaveScenario(LoadScenario(x)) is
// byte-identical for canonical x.
func SaveScenario(w io.Writer, spec *ScenarioSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("dcnflow: encoding scenario: %w", err)
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// SaveScenarioFile is SaveScenario on a file path.
func SaveScenarioFile(path string, spec *ScenarioSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dcnflow: %w", err)
	}
	if err := SaveScenario(f, spec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
