package dcnflow

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"time"
)

// Priority classes the serve API accepts in ServeRequest.Priority, from
// most to least urgent. The empty string is PriorityNormal.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// PriorityClasses lists the accepted ServeRequest.Priority values in
// admission order (most urgent first).
var PriorityClasses = []string{PriorityHigh, PriorityNormal, PriorityLow}

// priorityRank maps a class name to its admission rank (lower admits
// first); the bool reports whether the name is valid. "" is normal.
func priorityRank(class string) (int, bool) {
	switch class {
	case PriorityHigh:
		return 0, true
	case "", PriorityNormal:
		return 1, true
	case PriorityLow:
		return 2, true
	}
	return 0, false
}

// canonicalPriority normalises "" to PriorityNormal for metrics labels.
func canonicalPriority(class string) string {
	if class == "" {
		return PriorityNormal
	}
	return class
}

// AdmissionOptions configures the serve handler's token-bucket admission
// controller. The zero value disables admission control entirely (every
// request is admitted immediately) — set Rate to turn it on.
//
// Admission charges one token per solve-carrying HTTP request (/v1/solve
// and /v1/batch each cost one token; batch width is bounded separately by
// MaxBatch). When the bucket is empty the request joins a bounded queue
// ordered by priority class then arrival; when the queue is full — or the
// queued request outwaits MaxWait — the server answers 429 with a
// Retry-After estimate. During a drain, queued and newly arriving
// requests answer 503 so a load balancer can fail them over cleanly.
type AdmissionOptions struct {
	// Rate is the sustained admission rate in requests per second (the
	// token-bucket refill rate). <= 0 disables admission control.
	Rate float64
	// Burst is the bucket capacity — the largest instantaneous burst
	// admitted without queueing. <= 0 selects max(Rate, 1).
	Burst float64
	// QueueDepth bounds the accept queue of requests waiting for a token;
	// <= 0 selects 64.
	QueueDepth int
	// MaxWait bounds how long one request may queue before it is bounced
	// with 429; <= 0 selects 10s.
	MaxWait time.Duration
}

// enabled reports whether the options ask for admission control at all.
func (o AdmissionOptions) enabled() bool { return o.Rate > 0 }

// admitOutcome is the terminal state of one admission attempt.
type admitOutcome int

const (
	admitted admitOutcome = iota
	admitRejected
	admitDrained
	admitTimedOut
)

// waiter is one queued admission request.
type waiter struct {
	rank int
	seq  uint64
	ch   chan admitOutcome
	done bool // cancelled/timed out; skipped by the dispatcher
	idx  int
}

// waiterQueue is a heap ordered by (priority rank, arrival sequence).
type waiterQueue []*waiter

// Len implements heap.Interface.
func (q waiterQueue) Len() int { return len(q) }

// Less orders waiters most-urgent-first, FIFO within a class.
func (q waiterQueue) Less(i, j int) bool {
	if q[i].rank != q[j].rank {
		return q[i].rank < q[j].rank
	}
	return q[i].seq < q[j].seq
}

// Swap implements heap.Interface, keeping each waiter's heap index.
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

// Push implements heap.Interface.
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*q)
	*q = append(*q, w)
}

// Pop implements heap.Interface.
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*q = old[:n-1]
	return w
}

// admitter is the token-bucket admission controller behind the serve
// handler. Time is injectable (now, afterFunc) so the refill math and the
// queue discipline are unit-testable against a fake clock.
type admitter struct {
	rate    float64
	burst   float64
	depth   int
	maxWait time.Duration

	now       func() time.Time
	afterFunc func(d time.Duration, f func()) *time.Timer

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	queue    waiterQueue
	seq      uint64
	draining bool
	timer    *time.Timer
}

// newAdmitter builds an admitter from options (which must be enabled).
func newAdmitter(o AdmissionOptions) *admitter {
	if o.Burst <= 0 {
		o.Burst = math.Max(o.Rate, 1)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 10 * time.Second
	}
	a := &admitter{
		rate:      o.Rate,
		burst:     o.Burst,
		depth:     o.QueueDepth,
		maxWait:   o.MaxWait,
		now:       time.Now,
		afterFunc: time.AfterFunc,
	}
	a.tokens = a.burst
	a.last = a.now()
	return a
}

// refillLocked accrues tokens for the time elapsed since the last refill,
// capped at the bucket capacity. Callers hold mu.
func (a *admitter) refillLocked(now time.Time) {
	dt := now.Sub(a.last).Seconds()
	if dt > 0 {
		a.tokens = math.Min(a.burst, a.tokens+dt*a.rate)
	}
	if now.After(a.last) {
		a.last = now
	}
}

// retryAfterLocked estimates the seconds until a newly arriving request
// could plausibly be admitted: the token deficit of everyone ahead of it
// (the live queue plus itself) divided by the refill rate, at least 1.
// Callers hold mu.
func (a *admitter) retryAfterLocked() int {
	ahead := 0
	for _, w := range a.queue {
		if !w.done {
			ahead++
		}
	}
	deficit := float64(ahead+1) - a.tokens
	if deficit <= 0 {
		return 1
	}
	secs := int(math.Ceil(deficit / a.rate))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// dispatchLocked admits queued waiters while tokens last, dropping
// cancelled entries, and re-arms the refill timer when waiters remain.
// Callers hold mu.
func (a *admitter) dispatchLocked() {
	for len(a.queue) > 0 {
		w := a.queue[0]
		if w.done {
			heap.Pop(&a.queue)
			continue
		}
		if a.tokens < 1 {
			break
		}
		a.tokens--
		heap.Pop(&a.queue)
		w.done = true
		w.ch <- admitted
	}
	a.armLocked()
}

// armLocked schedules the next dispatch at the instant the next token
// accrues, if any live waiter is still queued. Callers hold mu.
func (a *admitter) armLocked() {
	live := false
	for _, w := range a.queue {
		if !w.done {
			live = true
			break
		}
	}
	if !live || a.draining {
		return
	}
	need := 1 - a.tokens
	if need < 0 {
		need = 0
	}
	d := time.Duration(need / a.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if a.timer != nil {
		a.timer.Stop()
	}
	a.timer = a.afterFunc(d, a.tick)
}

// tick is the refill-timer callback.
func (a *admitter) tick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.refillLocked(a.now())
	a.dispatchLocked()
}

// admitError is a rejected admission: an HTTP status plus the Retry-After
// hint (0 = no header).
type admitError struct {
	status     int
	retryAfter int
	msg        string
}

// Error implements error.
func (e *admitError) Error() string { return e.msg }

// admit runs one request through the bucket: immediate admission when a
// token is free and nobody more urgent is queued, otherwise a bounded
// prioritised wait. The returned error is nil (admitted) or an
// *admitError carrying the 429/503 to answer. cancel is the request
// context's done channel (client disconnect).
func (a *admitter) admit(cancel <-chan struct{}, class string) *admitError {
	rank, ok := priorityRank(class)
	if !ok {
		// Validation rejects unknown classes before admission; guard anyway.
		rank = 2
	}
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return &admitError{status: 503, msg: "server is draining"}
	}
	a.refillLocked(a.now())
	// Fast path: token free and nobody (live) queued ahead.
	liveQueued := 0
	for _, w := range a.queue {
		if !w.done {
			liveQueued++
		}
	}
	if a.tokens >= 1 && liveQueued == 0 {
		a.tokens--
		a.mu.Unlock()
		return nil
	}
	if liveQueued >= a.depth {
		retry := a.retryAfterLocked()
		a.mu.Unlock()
		return &admitError{status: 429, retryAfter: retry,
			msg: fmt.Sprintf("admission queue full (%d waiting)", liveQueued)}
	}
	w := &waiter{rank: rank, seq: a.seq, ch: make(chan admitOutcome, 1)}
	a.seq++
	heap.Push(&a.queue, w)
	// Tokens may be free with queued waiters (a just-vacated slot);
	// dispatch so the new arrival cannot deadlock waiting for a timer that
	// never armed.
	a.dispatchLocked()
	a.mu.Unlock()

	expire := a.afterFunc(a.maxWait, func() {
		a.expire(w, admitTimedOut)
	})
	defer expire.Stop()

	select {
	case out := <-w.ch:
		switch out {
		case admitted:
			return nil
		case admitDrained:
			return &admitError{status: 503, msg: "server is draining"}
		default:
			a.mu.Lock()
			retry := a.retryAfterLocked()
			a.mu.Unlock()
			return &admitError{status: 429, retryAfter: retry,
				msg: fmt.Sprintf("no admission token within %v", a.maxWait)}
		}
	case <-cancel:
		a.expire(w, admitTimedOut)
		// The dispatcher may have admitted w in the race window; consume
		// the outcome so the channel (and a token, if granted) is settled.
		select {
		case out := <-w.ch:
			if out == admitted {
				return nil
			}
		default:
		}
		return &admitError{status: 503, msg: "client went away while queued"}
	}
}

// expire marks a queued waiter as abandoned (timeout or disconnect) and
// signals it, unless the dispatcher already settled it.
func (a *admitter) expire(w *waiter, out admitOutcome) {
	a.mu.Lock()
	if !w.done {
		w.done = true
		if w.idx >= 0 && w.idx < len(a.queue) && a.queue[w.idx] == w {
			heap.Remove(&a.queue, w.idx)
		}
		w.ch <- out
	}
	a.mu.Unlock()
}

// drain flips the admitter into drain mode: every queued waiter is bounced
// with 503 immediately and every later admit answers 503 without queueing.
// Idempotent; stops the refill timer so no goroutine outlives the drain.
func (a *admitter) drain() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return
	}
	a.draining = true
	if a.timer != nil {
		a.timer.Stop()
		a.timer = nil
	}
	for len(a.queue) > 0 {
		w := heap.Pop(&a.queue).(*waiter)
		if !w.done {
			w.done = true
			w.ch <- admitDrained
		}
	}
}

// snapshot reports the live token count and queue depth for /metrics.
func (a *admitter) snapshot() (tokens float64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.refillLocked(a.now())
	for _, w := range a.queue {
		if !w.done {
			queued++
		}
	}
	return a.tokens, queued
}
