package dcnflow

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"

	"dcnflow/internal/graph"
	"dcnflow/internal/sweep"
)

// EngineGroup shards solve traffic across a fixed set of Engines by
// topology fingerprint: every request naming the same topology+model pair
// lands on the same shard, so each shard's compiled-instance LRU and
// pooled solver scratch serve a stable slice of the topology population
// and unrelated topologies stop evicting each other.
//
// Assignment is consistent and content-derived (an FNV-1a hash of the
// canonical topology+model key, or of the compiled graph fingerprint for
// pre-built Instance requests) — it depends only on the request and the
// shard count, never on arrival order or concurrency. Because every
// Engine is deterministic (see Engine's determinism contract), a group
// returns bit-identical results at every shard count; the serve shard
// tests assert this at counts 1, 2 and 8 under concurrent load.
//
// An EngineGroup is safe for concurrent use. A group of one shard behaves
// exactly like its single Engine.
type EngineGroup struct {
	engines []*Engine
	workers int
}

// NewEngineGroup builds a group of shards independent Engines, each
// configured with opts (shards < 1 selects 1). The per-shard cache size is
// opts.CacheSize (not divided), so raising the shard count only ever adds
// cache capacity.
func NewEngineGroup(shards int, opts EngineOptions) *EngineGroup {
	if shards < 1 {
		shards = 1
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = NewEngine(opts)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &EngineGroup{engines: engines, workers: workers}
}

// Shards returns the shard count.
func (g *EngineGroup) Shards() int { return len(g.engines) }

// Shard returns the i'th shard's Engine (for tests and embedders that
// need per-shard access; i must be in [0, Shards())).
func (g *EngineGroup) Shard(i int) *Engine { return g.engines[i] }

// ShardFor returns the shard index the request routes to: a stable hash
// of the scenario's topology+model fragment (or of the pre-built
// instance's compiled graph fingerprint) modulo the shard count. Requests
// with neither a scenario nor an instance route to shard 0 (they fail
// validation inside Solve anyway).
func (g *EngineGroup) ShardFor(req Request) int {
	if len(g.engines) == 1 {
		return 0
	}
	h, ok := requestShardHash(req)
	if !ok {
		return 0
	}
	return int(h % uint64(len(g.engines)))
}

// requestShardHash derives the content hash sharding keys on. Scenario
// requests hash the canonical topology+model key (the same bytes the
// compiled-instance LRU is keyed by); instance requests hash the compiled
// graph's structural fingerprint.
func requestShardHash(req Request) (uint64, bool) {
	switch {
	case req.Scenario != nil:
		h := fnv.New64a()
		h.Write([]byte(topoModelKey(req.Scenario)))
		return h.Sum64(), true
	case req.Instance != nil && req.Instance.graph != nil:
		return graph.Compile(req.Instance.graph).Fingerprint(), true
	}
	return 0, false
}

// Solve routes the request to its shard's Engine. Results are
// bit-identical to a direct Engine solve at every shard count.
func (g *EngineGroup) Solve(ctx context.Context, req Request) Result {
	return g.engines[g.ShardFor(req)].Solve(ctx, req)
}

// SolveBatch runs every request on the group's bounded worker pool, each
// routed to its shard. Results come back in request order, per-request
// failures inline, independent of worker and shard counts — the same
// contract as Engine.SolveBatch.
func (g *EngineGroup) SolveBatch(ctx context.Context, reqs []Request) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(g.engines) == 1 {
		return g.engines[0].SolveBatch(ctx, reqs)
	}
	results, err := sweep.Map(ctx, len(reqs), g.workers,
		func(ctx context.Context, i, _ int) (Result, error) {
			if cerr := ctx.Err(); cerr != nil {
				return Result{Err: fmt.Errorf("dcnflow: batch request %d: %w", i, cerr)}, nil
			}
			return g.Solve(ctx, reqs[i]), nil
		}, nil)
	if err != nil {
		for i := range results {
			if results[i].Solution == nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("dcnflow: batch request %d: %w", i, err)
			}
		}
	}
	return results
}

// Stats sums the cache counters across shards (the aggregate /healthz
// reports). Size and Capacity are totals over all shard LRUs.
func (g *EngineGroup) Stats() EngineStats {
	var agg EngineStats
	for _, e := range g.engines {
		s := e.Stats()
		agg.Size += s.Size
		agg.Capacity += s.Capacity
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Evictions += s.Evictions
	}
	return agg
}

// ShardStats snapshots every shard's cache counters in shard order (the
// per-shard occupancy series /metrics exposes).
func (g *EngineGroup) ShardStats() []EngineStats {
	out := make([]EngineStats, len(g.engines))
	for i, e := range g.engines {
		out[i] = e.Stats()
	}
	return out
}
