package dcnflow_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"dcnflow"
)

var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+\-]+|NaN|[+-]?Inf)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// checkPromExposition validates text against the Prometheus text exposition
// format 0.0.4: every line is a HELP/TYPE comment or a well-formed sample,
// every sample's metric is TYPE-declared first, histogram buckets are
// cumulative and agree with _count, and no series repeats.
func checkPromExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	seen := map[string]bool{}
	bucketCum := map[string]float64{} // histogram base name -> last cumulative bucket
	counts := map[string]float64{}    // histogram base name -> _count value
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			if !promHelpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[m[1]] = m[2]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name, labels := m[1], m[2]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, okSuffix := strings.CutSuffix(name, suffix); okSuffix && typed[b] == "histogram" {
				base = b
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if seen[name+labels] {
			t.Fatalf("line %d: duplicate series %q", ln+1, name+labels)
		}
		seen[name+labels] = true
		if labels != "" {
			for _, pair := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if !promLabelRe.MatchString(pair) {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
			}
		}
		value, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Fatalf("line %d: unparsable value %q", ln+1, m[3])
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && typed[base] == "histogram":
			if value < bucketCum[base] {
				t.Fatalf("line %d: histogram bucket not cumulative: %v < %v", ln+1, value, bucketCum[base])
			}
			bucketCum[base] = value
		case strings.HasSuffix(name, "_count") && typed[base] == "histogram":
			counts[base] = value
		case typed[name] == "counter" || typed[name] == "gauge":
			if value < 0 && typed[name] == "counter" {
				t.Fatalf("line %d: negative counter %q", ln+1, line)
			}
		}
	}
	for base, count := range counts {
		if cum, ok := bucketCum[base]; ok && cum != count {
			t.Fatalf("histogram %s: +Inf bucket %v != _count %v", base, cum, count)
		}
	}
}

// TestServeMetricsEndpoint drives mixed traffic through an admission-enabled
// sharded server and checks /metrics: the exposition is valid, and the
// counters it reports agree with the traffic that was sent.
func TestServeMetricsEndpoint(t *testing.T) {
	group := dcnflow.NewEngineGroup(2, dcnflow.EngineOptions{})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
		Admission: dcnflow.AdmissionOptions{Rate: 1000, Burst: 1000},
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()
	defer handler.Drain()
	spec := serveScenario()

	post := func(path, body string) int {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	encode := func(req dcnflow.ServeRequest) string {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(req); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// 2 ok solves (one normal, one high), 2 bad requests, 1 batch of 2 ok
	// items — 5 histogram samples in all.
	if st := post("/v1/solve", encode(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})); st != 200 {
		t.Fatalf("ok solve: %d", st)
	}
	if st := post("/v1/solve", encode(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF, Priority: "high"})); st != 200 {
		t.Fatalf("high solve: %d", st)
	}
	if st := post("/v1/solve", "{broken"); st != 400 {
		t.Fatalf("bad request: %d", st)
	}
	if st := post("/v1/solve", encode(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverDCFSR, Priority: "nope"})); st != 400 {
		t.Fatalf("unknown priority: %d", st)
	}
	var batch bytes.Buffer
	if err := json.NewEncoder(&batch).Encode(dcnflow.ServeBatchRequest{Requests: []dcnflow.ServeRequest{
		{Scenario: spec, Solver: dcnflow.SolverSPMCF},
		{Scenario: spec, Solver: dcnflow.SolverGreedyOnline},
	}}); err != nil {
		t.Fatal(err)
	}
	if st := post("/v1/batch", batch.String()); st != 200 {
		t.Fatalf("batch: %d", st)
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content-type %q is not the 0.0.4 text exposition", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	checkPromExposition(t, text)

	for _, want := range []string{
		`dcnflow_requests_total{class="normal",endpoint="solve",outcome="ok"} 1`,
		`dcnflow_requests_total{class="high",endpoint="solve",outcome="ok"} 1`,
		`dcnflow_requests_total{class="normal",endpoint="solve",outcome="bad_request"} 2`,
		`dcnflow_requests_total{class="normal",endpoint="batch",outcome="ok"} 1`,
		`dcnflow_batch_items_total{outcome="ok"} 2`,
		`dcnflow_request_duration_seconds_count 5`,
		`dcnflow_engine_cache_hits_total{shard="0"}`,
		`dcnflow_engine_cache_capacity{shard="1"}`,
		"dcnflow_admission_tokens ",
		"dcnflow_admission_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q\n%s", want, text)
		}
	}
}

// FuzzMetricsEndpoint: whatever request mix hits the server — well-formed,
// garbage, batches, odd priorities — GET /metrics always answers a valid
// Prometheus 0.0.4 text exposition. The fuzz input chooses the op sequence.
func FuzzMetricsEndpoint(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6})
	f.Add([]byte{6, 6, 6, 1, 1})
	f.Add([]byte{2, 4, 0, 5, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		group := dcnflow.NewEngineGroup(2, dcnflow.EngineOptions{})
		handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
			Admission: dcnflow.AdmissionOptions{Rate: 10000, Burst: 10000},
		})
		srv := httptest.NewServer(handler)
		defer srv.Close()
		defer handler.Drain()
		spec := serveScenario()

		if len(ops) > 12 {
			ops = ops[:12]
		}
		for _, op := range ops {
			var path, body string
			switch op % 7 {
			case 0:
				b, _ := json.Marshal(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverSPMCF})
				path, body = "/v1/solve", string(b)
			case 1:
				path, body = "/v1/solve", "{garbage"
			case 2:
				b, _ := json.Marshal(dcnflow.ServeRequest{Scenario: spec, Solver: "no-such-solver"})
				path, body = "/v1/solve", string(b)
			case 3:
				b, _ := json.Marshal(dcnflow.ServeRequest{Scenario: spec, Solver: dcnflow.SolverGreedyOnline, Priority: "low"})
				path, body = "/v1/solve", string(b)
			case 4:
				b, _ := json.Marshal(dcnflow.ServeBatchRequest{Requests: []dcnflow.ServeRequest{
					{Scenario: spec, Solver: dcnflow.SolverSPMCF, Priority: "high"},
					{Scenario: spec, Solver: "bogus"},
				}})
				path, body = "/v1/batch", string(b)
			case 5:
				path, body = "/v1/batch", `{"requests": []}`
			default:
				resp, err := srv.Client().Get(srv.URL + "/metrics")
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				continue
			}
			resp, err := srv.Client().Post(srv.URL+path, "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}

		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics answered %d", resp.StatusCode)
		}
		var body bytes.Buffer
		if _, err := body.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		checkPromExposition(t, body.String())
		// The histogram count must equal the solve-carrying requests sent
		// (every op except direct scrapes).
		solves := 0
		for _, op := range ops {
			if op%7 != 6 {
				solves++
			}
		}
		want := fmt.Sprintf("dcnflow_request_duration_seconds_count %d", solves)
		if !strings.Contains(body.String(), want) {
			t.Fatalf("exposition is missing %q\n%s", want, body.String())
		}
	})
}
