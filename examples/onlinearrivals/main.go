// Command onlinearrivals demonstrates the online extension: flows are
// revealed one at a time at their release instants (a diurnal arrival
// pattern) and must be routed and scheduled irrevocably on arrival. The
// example compares the online marginal-cost greedy against the offline
// Random-Schedule (which sees the whole future) and the fractional lower
// bound.
package main

import (
	"fmt"
	"log"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ft, err := dcnflow.FatTree(4, 1000)
	if err != nil {
		return err
	}
	// A time-varying (sinusoidal) arrival pattern: busy edges, quiet
	// middle — the load variation that motivates powering links down.
	flows, err := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 80, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2,
		Hosts: ft.Hosts, Seed: 11,
	})
	if err != nil {
		return err
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	// Offline: the paper's Random-Schedule with full knowledge.
	offline, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	if err != nil {
		return err
	}
	// Online: flows admitted in release order, decisions irrevocable.
	onl, err := dcnflow.SolveOnline(ft.Graph, flows, model, dcnflow.OnlineOptions{})
	if err != nil {
		return err
	}

	lb := offline.LowerBound
	offE := offline.Schedule.EnergyTotal(model)
	onE := onl.Schedule.EnergyTotal(model)
	fmt.Printf("workload: %d flows, diurnal arrivals over [0, 100]\n", flows.Len())
	fmt.Printf("%-34s %12s %8s\n", "scheme", "energy", "vs LB")
	fmt.Printf("%-34s %12.1f %8s\n", "fractional lower bound", lb, "1.00x")
	fmt.Printf("%-34s %12.1f %7.2fx\n", "offline Random-Schedule (paper)", offE, offE/lb)
	fmt.Printf("%-34s %12.1f %7.2fx\n", "online marginal-cost greedy", onE, onE/lb)
	fmt.Printf("online admitted %d/%d flows; peak link rate %.2f\n",
		onl.Admitted, flows.Len(), onl.PeakRate)

	// Both schemes must meet every deadline — verify with the simulator.
	for name, sched := range map[string]*dcnflow.Schedule{
		"offline": offline.Schedule, "online": onl.Schedule,
	} {
		simRes, err := dcnflow.Simulate(ft.Graph, flows, sched, model, dcnflow.SimOptions{})
		if err != nil {
			return err
		}
		if simRes.DeadlinesMissed > 0 {
			return fmt.Errorf("%s missed %d deadlines", name, simRes.DeadlinesMissed)
		}
	}
	fmt.Println("all deadlines met by both schemes")
	return nil
}
