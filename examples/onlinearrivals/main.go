// Command onlinearrivals demonstrates the online extension: flows are
// revealed one at a time at their release instants (a diurnal arrival
// pattern) and must be scheduled without knowledge of the future. Three
// schedulers compete on the same workload:
//
//   - the marginal-cost greedy, which routes each flow irrevocably the
//     moment it arrives and transmits at constant density;
//   - the rolling-horizon re-optimizer, which re-runs the Random-Schedule
//     relaxation over the remaining horizon at every epoch boundary with
//     frozen commitments (pinned paths, transmitted data), re-balancing the
//     future rate profiles of in-flight flows around newly arrived load;
//   - the offline Random-Schedule, which sees the whole future — together
//     with the fractional lower bound nothing can beat.
//
// Every schedule is validated by the discrete-event simulator: deadlines
// and capacities are checked independently of the schedulers' own
// accounting.
package main

import (
	"fmt"
	"log"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ft, err := dcnflow.FatTree(4, 1000)
	if err != nil {
		return err
	}
	// A time-varying (sinusoidal) arrival pattern: busy edges, quiet
	// middle — the load variation that motivates powering links down.
	flows, err := dcnflow.DiurnalWorkload(dcnflow.DiurnalConfig{
		N: 80, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2,
		Hosts: ft.Hosts, Seed: 11,
	})
	if err != nil {
		return err
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	// Offline: the paper's Random-Schedule with full knowledge.
	offline, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 1})
	if err != nil {
		return err
	}
	// Online, irrevocable: the marginal-cost greedy.
	greedy, err := dcnflow.SolveOnline(ft.Graph, flows, model, dcnflow.OnlineOptions{})
	if err != nil {
		return err
	}
	// Online, re-optimizing: the rolling horizon (re-plan at every
	// arrival, warm-starting each epoch's Frank–Wolfe solves from the
	// previous epoch's decompositions).
	rolling, rollingReplay, err := dcnflow.SolveOnlineRolling(ft.Graph, flows, model, dcnflow.RollingOptions{
		Policy: dcnflow.ArrivalCount{N: 1},
		DCFSR:  dcnflow.DCFSROptions{Seed: 1, WarmStart: true},
	})
	if err != nil {
		return err
	}

	lb := offline.LowerBound
	offE := offline.Schedule.EnergyTotal(model)
	grE := greedy.Schedule.EnergyTotal(model)
	roE := rolling.Schedule.EnergyTotal(model)
	fmt.Printf("workload: %d flows, diurnal arrivals over [0, 100]\n", flows.Len())
	fmt.Printf("%-36s %12s %8s\n", "scheme", "energy", "vs LB")
	fmt.Printf("%-36s %12.1f %8s\n", "fractional lower bound", lb, "1.00x")
	fmt.Printf("%-36s %12.1f %7.2fx\n", "offline Random-Schedule (paper)", offE, offE/lb)
	fmt.Printf("%-36s %12.1f %7.2fx\n", "online marginal-cost greedy", grE, grE/lb)
	fmt.Printf("%-36s %12.1f %7.2fx\n", "online rolling-horizon", roE, roE/lb)
	fmt.Printf("rolling: %d epochs, %d Frank-Wolfe iterations, %d/%d warm-seeded interval solves\n",
		rolling.Stats.Epochs, rolling.Stats.FWIters,
		rolling.Stats.SeededIntervals, rolling.Stats.SolvedIntervals)

	// Every scheme must meet every deadline — verify with the simulator.
	// (The rolling replay has already been validated the same way.)
	if rollingReplay.DeadlineViolations > 0 {
		return fmt.Errorf("rolling missed %d deadlines", rollingReplay.DeadlineViolations)
	}
	for name, sched := range map[string]*dcnflow.Schedule{
		"offline": offline.Schedule, "greedy": greedy.Schedule,
	} {
		simRes, err := dcnflow.Simulate(ft.Graph, flows, sched, model, dcnflow.SimOptions{})
		if err != nil {
			return err
		}
		if simRes.DeadlinesMissed > 0 {
			return fmt.Errorf("%s missed %d deadlines", name, simRes.DeadlinesMissed)
		}
	}
	fmt.Println("all deadlines met by all three schemes")
	return nil
}
