// Command linenet reproduces the paper's Fig. 1 / Example 1 in full
// detail: two flows on a three-node line network with f(x) = x^2, whose
// optimal schedule is known in closed form (sqrt(2)*s1 = s2 = (8+6√2)/3).
// It prints the Most-Critical-First trace and compares against the
// analytic optimum.
package main

import (
	"fmt"
	"log"
	"math"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	line, err := dcnflow.Line(3, 1000)
	if err != nil {
		return err
	}
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	fmt.Println("topology: A --- B --- C (paper Fig. 1)")

	flows, err := dcnflow.NewFlowSet([]dcnflow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6}, // j1: A->C
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8}, // j2: A->B
	})
	if err != nil {
		return err
	}
	fmt.Println("j1 = (A->C, r=2, d=4, w=6)   j2 = (A->B, r=1, d=3, w=8)")

	paths, err := dcnflow.ShortestPathRouting(line.Graph, flows)
	if err != nil {
		return err
	}
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000} // f(x) = x^2
	res, err := dcnflow.SolveDCFS(line.Graph, flows, paths, model)
	if err != nil {
		return err
	}

	for _, round := range res.Rounds {
		fmt.Printf("critical interval %v on link e%d, intensity %.4f, flows %v\n",
			round.Window, round.Link, round.Intensity, round.FlowIDs)
	}

	wantS2 := (8 + 6*math.Sqrt2) / 3
	wantS1 := wantS2 / math.Sqrt2
	s1 := res.Schedule.FlowSchedule(0).MaxRate()
	s2 := res.Schedule.FlowSchedule(1).MaxRate()
	fmt.Printf("s1: computed %.6f, analytic %.6f\n", s1, wantS1)
	fmt.Printf("s2: computed %.6f, analytic %.6f\n", s2, wantS2)

	energy := res.Schedule.EnergyDynamic(model)
	want := 12*wantS1 + 8*wantS2
	fmt.Printf("energy: computed %.6f, analytic %.6f (rel. err %.2e)\n",
		energy, want, math.Abs(energy-want)/want)

	// Show the actual transmission windows chosen by EDF.
	for _, id := range res.Schedule.FlowIDs() {
		fs := res.Schedule.FlowSchedule(id)
		fmt.Printf("flow %d (priority %d) transmits:", id, fs.Priority)
		for _, seg := range fs.Segments {
			fmt.Printf("  %v @ %.4f", seg.Interval, seg.Rate)
		}
		fmt.Println()
	}
	fmt.Print(res.Schedule.Gantt(60))
	return nil
}
