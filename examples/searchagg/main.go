// Command searchagg models the workload the paper's introduction
// motivates: a web-search front end fans a query out to many workers, and
// every worker's response must reach the aggregator before a hard latency
// budget — the classic partition/aggregate pattern. The example runs three
// consecutive query waves on a k=8 fat-tree (the paper's 80-switch /
// 128-server evaluation topology) and compares the energy of
// Random-Schedule against SP+MCF and the always-on status quo.
package main

import (
	"fmt"
	"log"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ft, err := dcnflow.FatTree(8, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s — %d switches, %d servers\n",
		ft.Name, len(ft.Switches), len(ft.Hosts))

	// Three query waves. Each wave: one aggregator, 32 workers, a 25-unit
	// latency budget for all responses of the wave.
	var all []dcnflow.Flow
	for wave := 0; wave < 3; wave++ {
		aggregator := ft.Hosts[wave*40]
		release := float64(1 + 30*wave)
		deadline := release + 25
		for w := 0; w < 32; w++ {
			worker := ft.Hosts[(wave*40+7*w+1)%len(ft.Hosts)]
			if worker == aggregator {
				worker = ft.Hosts[(wave*40+7*w+2)%len(ft.Hosts)]
			}
			all = append(all, dcnflow.Flow{
				Src: worker, Dst: aggregator,
				Release: release, Deadline: deadline,
				Size: 8,
			})
		}
	}
	flows, err := dcnflow.NewFlowSet(all)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d response flows in 3 waves, hard deadline 25 units/wave\n", flows.Len())

	model := dcnflow.PowerModel{
		Sigma: dcnflow.SigmaForRopt(1, 2, 3*flows.MeanDensity()),
		Mu:    1, Alpha: 2, C: 1000,
	}

	rs, err := dcnflow.SolveDCFSR(ft.Graph, flows, model, dcnflow.DCFSROptions{Seed: 7})
	if err != nil {
		return err
	}
	sp, err := dcnflow.SPMCF(ft.Graph, flows, model)
	if err != nil {
		return err
	}
	ao, err := dcnflow.AlwaysOnFullRate(ft.Graph, flows, model)
	if err != nil {
		return err
	}

	rsE := rs.Schedule.EnergyTotal(model)
	spE := sp.Schedule.EnergyTotal(model)
	fmt.Printf("%-28s %12s %10s %12s\n", "scheme", "energy", "vs LB", "links on")
	fmt.Printf("%-28s %12.1f %10s %12d\n", "fractional lower bound", rs.LowerBound, "1.00x", 0)
	fmt.Printf("%-28s %12.1f %9.2fx %12d\n", "Random-Schedule (paper)", rsE, rsE/rs.LowerBound, len(rs.Schedule.ActiveLinks()))
	fmt.Printf("%-28s %12.1f %9.2fx %12d\n", "SP+MCF baseline", spE, spE/rs.LowerBound, len(sp.Schedule.ActiveLinks()))
	fmt.Printf("%-28s %12.1f %9.2fx %12d\n", "always-on full rate", ao.Energy, ao.Energy/rs.LowerBound, ft.Graph.NumEdges())

	// Where does the energy go? Attribute it to fat-tree tiers.
	breakdown, err := rs.Schedule.Breakdown(ft.Graph, model)
	if err != nil {
		return err
	}
	fmt.Println("\nRandom-Schedule energy by link tier:")
	fmt.Print(breakdown.Table())

	// Every wave must meet its latency budget: verify via simulation.
	simRes, err := dcnflow.Simulate(ft.Graph, flows, rs.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("deadlines: %d met, %d missed (hard requirement)\n",
		simRes.DeadlinesMet, simRes.DeadlinesMissed)
	if simRes.DeadlinesMissed > 0 {
		return fmt.Errorf("searchagg: %d responses missed the latency budget", simRes.DeadlinesMissed)
	}
	return nil
}
