// Command greenbcube runs a MapReduce-style shuffle on a BCube(4, 1)
// server-centric topology and shows how joint scheduling and routing
// (Random-Schedule) exploits BCube's path diversity to finish every
// transfer by its deadline with less energy than shortest-path routing.
// It also demonstrates the Theorem 4 EDF time-sharing check.
package main

import (
	"fmt"
	"log"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	bc, err := dcnflow.BCube(4, 1, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s — %d servers, %d switches, %d links\n",
		bc.Name, len(bc.Hosts), len(bc.Switches), bc.NumPhysicalLinks())

	// Shuffle stage: 8 mappers each send an equal partition to 8 reducers
	// within a common window.
	mappers := bc.Hosts[:8]
	reducers := bc.Hosts[8:16]
	var raw []dcnflow.Flow
	for _, m := range mappers {
		for _, r := range reducers {
			raw = append(raw, dcnflow.Flow{
				Src: m, Dst: r,
				Release: 0, Deadline: 40,
				Size: 6,
			})
		}
	}
	flows, err := dcnflow.NewFlowSet(raw)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d shuffle flows, deadline 40 units\n", flows.Len())

	model := dcnflow.PowerModel{
		Sigma: dcnflow.SigmaForRopt(1, 2, 3*flows.MeanDensity()),
		Mu:    1, Alpha: 2, C: 1000,
	}

	rs, err := dcnflow.SolveDCFSR(ft(bc), flows, model, dcnflow.DCFSROptions{Seed: 3})
	if err != nil {
		return err
	}
	sp, err := dcnflow.SPMCF(bc.Graph, flows, model)
	if err != nil {
		return err
	}

	rsE := rs.Schedule.EnergyTotal(model)
	spE := sp.Schedule.EnergyTotal(model)
	fmt.Printf("Random-Schedule: energy %.1f (%.2fx LB), %d links on\n",
		rsE, rsE/rs.LowerBound, len(rs.Schedule.ActiveLinks()))
	fmt.Printf("SP+MCF:          energy %.1f (%.2fx LB), %d links on\n",
		spE, spE/rs.LowerBound, len(sp.Schedule.ActiveLinks()))

	// Theorem 4: per-link EDF time sharing serialises every interval's
	// data by the interval end — validate it explicitly.
	report, err := dcnflow.VerifyEDFTimeSharing(bc.Graph, flows, rs.Schedule)
	if err != nil {
		return err
	}
	fmt.Printf("EDF time-sharing check: %d links, %d (link, interval) pairs, violations: %d\n",
		report.LinksChecked, report.IntervalsChecked, len(report.Violations))
	if !report.OK() {
		return fmt.Errorf("greenbcube: EDF discipline violated: %v", report.Violations[0])
	}

	simRes, err := dcnflow.Simulate(bc.Graph, flows, rs.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %d/%d deadlines met, peak link rate %.2f (C=%g)\n",
		simRes.DeadlinesMet, flows.Len(), simRes.MaxLinkRate, model.C)
	return nil
}

// ft returns the graph of a topology (tiny helper to keep the call site
// readable).
func ft(t *dcnflow.Topology) *dcnflow.Graph { return t.Graph }
