// Command quickstart is the smallest end-to-end use of dcnflow's
// Scenario/Solver API: build a fat-tree, draw a random deadline-constrained
// workload, package both as a validated Instance, and fan it across two
// registered solvers — Random-Schedule and the shortest-path baseline —
// comparing energies against the fractional lower bound.
package main

import (
	"context"
	"fmt"
	"log"

	"dcnflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A k=4 fat-tree: 20 switches, 16 hosts, uniform link capacity.
	ft, err := dcnflow.FatTree(4, 1000)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s — %d switches, %d hosts, %d links\n",
		ft.Name, len(ft.Switches), len(ft.Hosts), ft.NumPhysicalLinks())

	// 50 flows over the horizon [1, 100]; sizes ~ N(10, 3).
	flows, err := dcnflow.UniformWorkload(dcnflow.WorkloadConfig{
		N: 50, T0: 1, T1: 100,
		SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		return err
	}

	// The paper's evaluation power function f(x) = x^2 (speed scaling
	// only). Set Sigma (e.g. via dcnflow.SigmaForRopt) to add power-down
	// idle energy — the combined model of Section II-A.
	model := dcnflow.PowerModel{Mu: 1, Alpha: 2, C: 1000}

	// One validated instance, fanned across interchangeable solvers.
	inst, err := dcnflow.NewInstance(ft.Graph, flows, model)
	if err != nil {
		return err
	}
	ctx := context.Background()
	// Joint scheduling and routing (the paper's Random-Schedule).
	rs, err := dcnflow.Solve(ctx, dcnflow.SolverDCFSR, inst, dcnflow.WithSeed(1))
	if err != nil {
		return err
	}
	// The SP+MCF comparison scheme: shortest paths + optimal scheduling.
	sp, err := dcnflow.Solve(ctx, dcnflow.SolverSPMCF, inst)
	if err != nil {
		return err
	}

	fmt.Printf("fractional lower bound:  %10.1f\n", rs.LowerBound)
	fmt.Printf("Random-Schedule energy:  %10.1f  (%.2fx LB, %.0f links on)\n",
		rs.Energy, rs.Energy/rs.LowerBound, rs.Stats["links_on"])
	fmt.Printf("SP+MCF baseline energy:  %10.1f  (%.2fx LB, %.0f links on)\n",
		sp.Energy, sp.Energy/rs.LowerBound, sp.Stats["links_on"])

	// Independent verification with the discrete-event simulator.
	simRes, err := dcnflow.Simulate(ft.Graph, flows, rs.Schedule, model, dcnflow.SimOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %d/%d deadlines met, energy %.1f, peak link rate %.2f\n",
		simRes.DeadlinesMet, flows.Len(), simRes.TotalEnergy, simRes.MaxLinkRate)
	return nil
}
