package dcnflow

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dcnflow/internal/core"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/sweep"
)

// ErrBadRequest reports an Engine request (or a serve-API request body)
// that failed validation; the wrapped message names the problem.
var ErrBadRequest = errors.New("dcnflow: invalid request")

// EngineOptions configures NewEngine. The zero value serves from a
// 64-entry compiled-instance cache with GOMAXPROCS batch workers and the
// package-level solver registry.
type EngineOptions struct {
	// CacheSize bounds the compiled-instance LRU (distinct topology+model
	// pairs held warm); <= 0 selects 64.
	CacheSize int
	// Workers bounds concurrent SolveBatch requests; <= 0 selects
	// GOMAXPROCS. Purely a wall-clock lever: batch results are identical
	// for every value.
	Workers int
	// Registry resolves solver names; nil selects the package registry.
	Registry *Registry
	// Options is applied to every solve before the request's own options
	// (e.g. WithSolverOptions to cap Frank–Wolfe iterations engine-wide).
	Options []SolveOption
	// DisableCache turns the compiled-instance cache off: every request
	// recompiles its topology and rebuilds its instance. Outputs are
	// bit-identical either way (asserted by the engine conformance tests);
	// the knob exists for those tests and for memory-constrained
	// embeddings.
	DisableCache bool
}

// Engine is the compile-once/solve-many front door of the library: it owns
// a bounded LRU cache of CompiledInstances (per topology+model: the built
// topology, the compiled graph artifacts and the generated-workload
// instances on it), a bounded registry of pooled per-solver scratch
// (reusable F-MCF solvers keyed by compiled graph, model and solver
// options), and a deterministic batch executor. Repeated and concurrent
// solves of related scenarios — one data-center topology, a stream of flow
// batches — therefore skip topology generation, graph compilation and
// solver-scratch allocation entirely.
//
// Determinism contract: an Engine never changes results. Every Solve
// returns bit-identical output to a direct Solve of the same scenario with
// the same options, whether the cache hits, misses or is disabled, and
// SolveBatch results are independent of the worker count. The contract is
// enforced by TestEngineMatchesDirectSolve across all registered solver
// families and by the -race engine tests.
//
// An Engine is safe for concurrent use; `dcnflow serve` exposes one over
// HTTP.
type Engine struct {
	reg     *Registry
	base    []SolveOption
	workers int
	nocache bool

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // topology+model key -> *ceEntry element
	ll      *list.List

	pools *enginePools

	stats struct {
		hits, misses, evictions uint64
	}
}

// EngineStats is a point-in-time snapshot of the engine's cache counters
// (exposed by GET /healthz on the serve API).
type EngineStats struct {
	// Size and Capacity describe the compiled-instance LRU.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
	// Hits and Misses count compiled-instance lookups; Evictions counts
	// entries dropped by the LRU bound.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// NewEngine builds an Engine.
func NewEngine(opts EngineOptions) *Engine {
	reg := opts.Registry
	if reg == nil {
		reg = defaultRegistry
	}
	size := opts.CacheSize
	if size <= 0 {
		size = 64
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		reg:     reg,
		base:    append([]SolveOption(nil), opts.Options...),
		workers: workers,
		nocache: opts.DisableCache,
		cap:     size,
		entries: make(map[string]*list.Element),
		ll:      list.New(),
		pools:   newEnginePools(2 * size),
	}
}

// Request is one unit of Engine work: a problem to solve with one
// registered solver. Exactly one of Scenario and Instance must be set —
// scenarios resolve through the engine's compiled-instance cache, while
// pre-built instances bypass it but still draw pooled solver scratch.
type Request struct {
	// Scenario declares the problem; the engine compiles and caches its
	// topology+model pair and the generated workload instance. The
	// scenario's Seed seeds the solver (applied after Options, exactly as
	// `dcnflow run` does).
	Scenario *ScenarioSpec
	// Instance supplies a pre-built problem instead of a scenario.
	Instance *Instance
	// Solver is the registered solver name.
	Solver string
	// Timeout, when positive, bounds this request's solve (the context the
	// solver sees is cancelled after this long).
	Timeout time.Duration
	// Options configures the solver (applied after the engine-wide
	// EngineOptions.Options).
	Options []SolveOption
}

// Result is one Request's outcome. Exactly one of Solution and Err is
// non-nil except for batch requests abandoned by a cancelled context,
// which carry the context error in Err.
type Result struct {
	// Solution is the solver's outcome when Err is nil.
	Solution *Solution
	// Err records a failed request (invalid request, unknown solver,
	// infeasible instance, cancelled context). A failed request never
	// aborts a batch.
	Err error
	// CacheHit reports whether the request's topology+model pair was
	// served from the compiled-instance cache (always false for Instance
	// requests and cache-disabled engines).
	CacheHit bool
	// Runtime is this request's wall-clock time inside the engine (cache
	// resolution + solve) — per request even inside a batch. The one
	// nondeterministic field.
	Runtime time.Duration
}

// ceEntry is one LRU slot: the build runs under once (losers of the
// insertion race wait on it), so a topology is generated at most once per
// cache residency however many requests arrive together.
type ceEntry struct {
	key  string
	once sync.Once
	ci   *CompiledInstance
	err  error
}

// CompiledInstance is one cached compilation of a topology+model pair: the
// generated topology, the compiled graph artifact bundle (flat CSR and
// reverse adjacency, structural fingerprint, pooled shortest-path scratch)
// and the instances of workloads generated on it. Instances are immutable
// and shared by every solve that hits the cache.
type CompiledInstance struct {
	topo  *Topology
	model PowerModel
	comp  *graph.Compiled

	imu    sync.Mutex
	insts  map[string]*instEntry
	iorder []string
	icap   int
}

// Topology returns the cached generated topology.
func (ci *CompiledInstance) Topology() *Topology { return ci.topo }

// Model returns the power model the compilation is keyed by.
func (ci *CompiledInstance) Model() PowerModel { return ci.model }

// Fingerprint returns the compiled graph's structural fingerprint.
func (ci *CompiledInstance) Fingerprint() uint64 { return ci.comp.Fingerprint() }

// instEntry caches one workload's built Instance on a CompiledInstance,
// plus the shared lower bounds computed on it.
type instEntry struct {
	once sync.Once
	inst *Instance
	err  error

	lmu sync.Mutex
	lbs map[lbKey]*lbMemo
}

// lbKey identifies a lower-bound computation by the option fields that can
// change its value (solver options and the warm-start toggle; seeds,
// rounding budgets and parallelism never reach the relaxation).
type lbKey struct {
	solver SolverOptions
	warm   bool
}

// lbMemo memoises one lower bound. Unlike a sync.Once it does not memoise
// context cancellation: a request that times out while computing the bound
// must not poison the cache for later, healthier requests.
type lbMemo struct {
	mu   sync.Mutex
	done bool
	lb   float64
	err  error
}

// topoModelKey is the canonical compiled-instance cache key: the
// topology+model fragment of the spec, canonically marshalled. Scenario
// name, workload and seed are excluded — they never change the compiled
// artifacts.
func topoModelKey(spec *ScenarioSpec) string {
	b, err := json.Marshal(struct {
		T TopologySpec `json:"t"`
		M ModelSpec    `json:"m"`
	}{spec.Topology, spec.Model})
	if err != nil {
		// Specs are plain data; Marshal cannot fail on them.
		panic(fmt.Sprintf("dcnflow: marshalling cache key: %v", err))
	}
	return string(b)
}

// workloadKey is the canonical per-compilation instance cache key.
func workloadKey(spec *ScenarioSpec) string {
	b, err := json.Marshal(spec.Workload)
	if err != nil {
		panic(fmt.Sprintf("dcnflow: marshalling workload key: %v", err))
	}
	return string(b)
}

// Compile resolves the spec's topology+model pair through the engine's
// cache, building (topology generation + graph compilation) at most once
// per cache residency. With the cache disabled it builds fresh every call.
func (e *Engine) Compile(spec *ScenarioSpec) (*CompiledInstance, error) {
	ci, _, err := e.compile(spec)
	return ci, err
}

func (e *Engine) compile(spec *ScenarioSpec) (*CompiledInstance, bool, error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if e.nocache {
		ci, err := buildCompiledInstance(spec)
		return ci, false, err
	}
	key := topoModelKey(spec)
	e.mu.Lock()
	el, hit := e.entries[key]
	if hit {
		e.ll.MoveToFront(el)
		e.stats.hits++
	} else {
		e.stats.misses++
		el = e.ll.PushFront(&ceEntry{key: key})
		e.entries[key] = el
		for e.ll.Len() > e.cap {
			old := e.ll.Back()
			e.ll.Remove(old)
			delete(e.entries, old.Value.(*ceEntry).key)
			e.stats.evictions++
		}
	}
	e.mu.Unlock()
	ent := el.Value.(*ceEntry)
	ent.once.Do(func() {
		ent.ci, ent.err = buildCompiledInstance(spec)
	})
	return ent.ci, hit, ent.err
}

func buildCompiledInstance(spec *ScenarioSpec) (*CompiledInstance, error) {
	top, err := spec.Topology.Build()
	if err != nil {
		return nil, err
	}
	return &CompiledInstance{
		topo:  top,
		model: spec.Model.Model(),
		comp:  graph.Compile(top.Graph),
		insts: make(map[string]*instEntry),
		icap:  64,
	}, nil
}

// instance resolves the spec's workload to a built Instance on the
// compilation, generating each distinct workload at most once.
func (ci *CompiledInstance) instance(spec *ScenarioSpec) (*Instance, *instEntry, error) {
	key := workloadKey(spec)
	ci.imu.Lock()
	ent, ok := ci.insts[key]
	if !ok {
		ent = &instEntry{lbs: make(map[lbKey]*lbMemo)}
		ci.insts[key] = ent
		ci.iorder = append(ci.iorder, key)
		if len(ci.iorder) > ci.icap {
			delete(ci.insts, ci.iorder[0])
			ci.iorder = ci.iorder[1:]
		}
	}
	ci.imu.Unlock()
	ent.once.Do(func() {
		fs, err := spec.Workload.Build(ci.topo)
		if err != nil {
			ent.err = err
			return
		}
		ent.inst, ent.err = NewInstanceBuilder().Topology(ci.topo).Flows(fs).Model(ci.model).Build()
	})
	return ent.inst, ent, ent.err
}

// Instance resolves a scenario to its validated Instance through the
// engine's caches: a warm engine hands back the same shared Instance for
// every request naming the same topology, workload and model.
func (e *Engine) Instance(spec *ScenarioSpec) (*Instance, error) {
	ci, _, err := e.compile(spec)
	if err != nil {
		return nil, err
	}
	inst, _, err := ci.instance(spec)
	return inst, err
}

// Solve runs one request. It never panics on malformed requests — invalid
// specs, unknown solvers and solver failures all come back in Result.Err.
func (e *Engine) Solve(ctx context.Context, req Request) Result {
	start := time.Now()
	done := func(r Result) Result {
		r.Runtime = time.Since(start)
		return r
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if (req.Scenario == nil) == (req.Instance == nil) {
		return done(Result{Err: fmt.Errorf("%w: exactly one of Scenario and Instance must be set", ErrBadRequest)})
	}
	if req.Timeout < 0 {
		return done(Result{Err: fmt.Errorf("%w: negative timeout %v", ErrBadRequest, req.Timeout)})
	}
	if req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.Timeout)
		defer cancel()
	}

	inst := req.Instance
	hit := false
	opts := make([]SolveOption, 0, len(e.base)+len(req.Options)+2)
	opts = append(opts, e.base...)
	opts = append(opts, req.Options...)
	if req.Scenario != nil {
		ci, h, err := e.compile(req.Scenario)
		if err != nil {
			return done(Result{Err: err})
		}
		hit = h
		inst, _, err = ci.instance(req.Scenario)
		if err != nil {
			return done(Result{Err: err})
		}
		// The scenario's Seed is the request's seed, applied last exactly
		// like `dcnflow run` applies WithSeed(spec.Seed).
		opts = append(opts, WithSeed(req.Scenario.Seed))
	}
	if !e.nocache {
		// With the cache disabled every request compiles a fresh graph, so
		// a pool keyed by it could never be hit again — registering one
		// would only retain dead graphs and cost an extra solver build.
		opts = append(opts, withScratch(e.pools))
	}
	sol, err := e.reg.Solve(ctx, req.Solver, inst, opts...)
	return done(Result{Solution: sol, Err: err, CacheHit: hit})
}

// SolveBatch runs every request on the engine's bounded worker pool — the
// deterministic batch API behind `dcnflow serve`'s /v1/batch and the sweep
// engine. Results come back in request order, per-request failures are
// recorded in their Result (never aborting the batch), and the outcome is
// independent of the worker count. A cancelled context marks the
// unfinished requests with the context error.
func (e *Engine) SolveBatch(ctx context.Context, reqs []Request) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results, err := sweep.Map(ctx, len(reqs), e.workers,
		func(ctx context.Context, i, _ int) (Result, error) {
			if cerr := ctx.Err(); cerr != nil {
				return Result{Err: fmt.Errorf("dcnflow: batch request %d: %w", i, cerr)}, nil
			}
			return e.Solve(ctx, reqs[i]), nil
		}, nil)
	if err != nil {
		// Requests skipped by the winding-down pool hold a zero Result;
		// stamp them with the cancellation so callers can tell them from
		// successful solves.
		for i := range results {
			if results[i].Solution == nil && results[i].Err == nil {
				results[i].Err = fmt.Errorf("dcnflow: batch request %d: %w", i, err)
			}
		}
	}
	return results
}

// LowerBound computes the scenario's fractional relaxation bound — the
// shared normaliser sweep reports divide by — memoised per (instance,
// relaxation options) on the engine's caches, so the per-scenario bound of
// a sweep's cell group is computed once however many solver cells share
// it. Context cancellation is returned but never memoised.
func (e *Engine) LowerBound(ctx context.Context, spec *ScenarioSpec, opts ...SolveOption) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ci, _, err := e.compile(spec)
	if err != nil {
		return 0, err
	}
	inst, ent, err := ci.instance(spec)
	if err != nil {
		return 0, err
	}
	var cfg SolverConfig
	for _, o := range e.base {
		o(&cfg)
	}
	for _, o := range opts {
		o(&cfg)
	}
	d := cfg.DCFSR
	d.Progress = nil
	key := lbKey{solver: d.Solver, warm: d.WarmStart}
	ent.lmu.Lock()
	memo, ok := ent.lbs[key]
	if !ok {
		memo = &lbMemo{}
		ent.lbs[key] = memo
	}
	ent.lmu.Unlock()

	memo.mu.Lock()
	defer memo.mu.Unlock()
	if memo.done {
		return memo.lb, memo.err
	}
	if !e.nocache {
		d.Solvers = e.pools.poolFor(inst.graph, inst.model, d.Solver)
	}
	lb, err := core.LowerBoundCtx(ctx, inst.graph, inst.flows, inst.model, d)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return 0, err
	}
	memo.lb, memo.err, memo.done = lb, err, true
	return lb, err
}

// Stats snapshots the cache counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EngineStats{
		Size:      e.ll.Len(),
		Capacity:  e.cap,
		Hits:      e.stats.hits,
		Misses:    e.stats.misses,
		Evictions: e.stats.evictions,
	}
}

// enginePools is the bounded registry of pooled per-solver scratch: one
// mcfsolve.Pool per (compiled graph, model, solver options) triple, keyed
// by compiled-view pointer so distinct graphs can never cross-wire, with a
// FIFO bound so ad-hoc instance churn cannot grow it without limit.
type enginePools struct {
	mu    sync.Mutex
	pools map[enginePoolKey]*mcfsolve.Pool
	order []enginePoolKey
	max   int
}

type enginePoolKey struct {
	c    *graph.Compiled
	m    PowerModel
	opts SolverOptions
}

func newEnginePools(max int) *enginePools {
	if max < 8 {
		max = 8
	}
	return &enginePools{pools: make(map[enginePoolKey]*mcfsolve.Pool), max: max}
}

// poolFor returns the pool bound to (g's compiled view, m, opts), creating
// it on first use. A nil return (invalid binding) makes callers fall back
// to per-call solver construction.
func (p *enginePools) poolFor(g *Graph, m PowerModel, opts SolverOptions) *mcfsolve.Pool {
	if p == nil || g == nil {
		return nil
	}
	key := enginePoolKey{c: graph.Compile(g), m: m, opts: opts}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pool, ok := p.pools[key]; ok {
		return pool
	}
	pool, err := mcfsolve.NewPoolCompiled(key.c, m, opts)
	if err != nil {
		return nil
	}
	p.pools[key] = pool
	p.order = append(p.order, key)
	if len(p.order) > p.max {
		delete(p.pools, p.order[0])
		p.order = p.order[1:]
	}
	return pool
}

// withScratch hands the engine's pooled scratch to the built-in solver
// factories (an internal option: the exported With* options never touch
// it).
func withScratch(p *enginePools) SolveOption {
	return func(c *SolverConfig) { c.scratch = p }
}
