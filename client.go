package dcnflow

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ServeError is the typed error the Client returns for a non-2xx serve
// reply: the HTTP status, the server's error message and the parsed
// Retry-After hint (zero when the server sent none). errors.As-friendly,
// so callers can branch on Status without string matching.
type ServeError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's {"error": ...} body (possibly empty).
	Message string
	// RetryAfter is the server's Retry-After hint, when present.
	RetryAfter time.Duration
}

// Error formats the serve error ("dcnflow: server status 429: ...").
func (e *ServeError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("dcnflow: server status %d", e.Status)
	}
	return fmt.Sprintf("dcnflow: server status %d: %s", e.Status, e.Message)
}

// Temporary reports whether the failure is worth retrying: admission
// rejections (429) and drains/overload (503).
func (e *ServeError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// RetryPolicy bounds the Client's automatic retries of temporary serve
// failures (429 Too Many Requests and 503 Service Unavailable): capped
// exponential backoff with half-open jitter, honoring the server's
// Retry-After when it sends one. The zero value of every field selects
// its default.
type RetryPolicy struct {
	// MaxRetries is the retry budget beyond the first attempt; <= 0
	// selects 3.
	MaxRetries int
	// BaseDelay seeds the exponential backoff (delay grows as
	// BaseDelay * 2^attempt before jitter); <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps every computed delay, including server-supplied
	// Retry-After hints; <= 0 selects 5s.
	MaxDelay time.Duration
}

func (p RetryPolicy) maxRetries() int {
	if p.MaxRetries <= 0 {
		return 3
	}
	return p.MaxRetries
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

// Client is the Go client of the serve API (`dcnflow serve` /
// NewServeHandler): thin typed wrappers over POST /v1/solve, POST
// /v1/batch and GET /healthz. The zero value is not usable; set BaseURL
// (e.g. "http://127.0.0.1:8080"). A Client is safe for concurrent use.
//
// With Retry set, temporary failures (429/503, the admission controller's
// statuses) are retried with bounded exponential backoff and jitter,
// honoring the server's Retry-After; all other failures surface
// immediately as *ServeError.
type Client struct {
	// BaseURL is the server root, without a trailing slash requirement.
	BaseURL string
	// HTTPClient overrides the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when non-nil, enables automatic retries of 429/503 replies.
	Retry *RetryPolicy

	// sleep and jitter are test seams: sleep waits out one backoff delay
	// (default: timer + ctx), jitter draws from [0, 1) (default: a
	// process-wide seeded PRNG). Unit tests inject a fake clock here.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) (string, error) {
	if c.BaseURL == "" {
		return "", errServeNoBase
	}
	return strings.TrimRight(c.BaseURL, "/") + path, nil
}

// jitterRand is the default shared jitter source (rand.Float64 is
// goroutine-safe via its internal lock).
var (
	jitterOnce sync.Once
	jitterSrc  *rand.Rand
	jitterMu   sync.Mutex
)

func defaultJitter() float64 {
	jitterOnce.Do(func() {
		jitterSrc = rand.New(rand.NewSource(time.Now().UnixNano()))
	})
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterSrc.Float64()
}

func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff computes the attempt'th retry delay: the server's Retry-After
// when given, else BaseDelay * 2^attempt jittered to [d/2, d); either way
// capped at MaxDelay.
func (c *Client) backoff(p RetryPolicy, attempt int, retryAfter time.Duration) time.Duration {
	maxd := p.maxDelay()
	if retryAfter > 0 {
		if retryAfter > maxd {
			return maxd
		}
		return retryAfter
	}
	d := p.baseDelay() << uint(attempt)
	if d > maxd || d <= 0 {
		d = maxd
	}
	j := c.jitter
	if j == nil {
		j = defaultJitter
	}
	half := d / 2
	return half + time.Duration(j()*float64(half))
}

// doRetry runs fn (one HTTP attempt) under the client's retry policy:
// *ServeError replies that are Temporary are retried up to MaxRetries
// times with backoff; everything else returns immediately.
func (c *Client) doRetry(ctx context.Context, fn func() error) error {
	policy := c.Retry
	if policy == nil {
		return fn()
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = defaultSleep
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		se, ok := asServeError(err)
		if !ok || !se.Temporary() || attempt >= policy.maxRetries() {
			return err
		}
		if serr := sleep(ctx, c.backoff(*policy, attempt, se.RetryAfter)); serr != nil {
			return fmt.Errorf("dcnflow: retry wait: %w (last server reply: %v)", serr, err)
		}
	}
}

// asServeError unwraps err to a *ServeError.
func asServeError(err error) (*ServeError, bool) {
	if err == nil {
		return nil, false
	}
	var se *ServeError
	ok := errors.As(err, &se)
	return se, ok
}

// decodeServeError turns a non-2xx serve reply into a *ServeError carrying
// the status, the {"error": ...} body and the Retry-After hint.
func decodeServeError(resp *http.Response, body io.Reader) error {
	se := &ServeError{
		Status:     resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header),
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(body).Decode(&e); err == nil {
		se.Message = e.Error
	}
	return se
}

// post sends body as JSON and decodes a 2xx reply into out; non-2xx
// replies come back as *ServeError carrying the server's status, message
// and Retry-After hint (a 422 or 504 solve reply is a full ServeResponse,
// whose "error" field decodes the same way).
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	u, err := c.url(path)
	if err != nil {
		return err
	}
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dcnflow: encoding request: %w", err)
	}
	return c.doRetry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			return decodeServeError(resp, resp.Body)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// Solve runs one request on the server. A solver-level failure (422/504)
// is returned as an error carrying the server's message; transport and
// decoding failures likewise. Admission rejections (429/503) are retried
// first when Retry is set.
func (c *Client) Solve(ctx context.Context, req ServeRequest) (*ServeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out ServeResponse
	if err := c.post(ctx, "/v1/solve", &req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("dcnflow: server: %s", out.Error)
	}
	return &out, nil
}

// SolveBatch runs a batch on the server and returns one response per
// request, in request order. Per-request failures stay in their item's
// Error field — only transport-level problems (and exhausted 429/503
// retries) error here.
func (c *Client) SolveBatch(ctx context.Context, reqs []ServeRequest) ([]ServeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out ServeBatchResponse
	if err := c.post(ctx, "/v1/batch", &ServeBatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("dcnflow: server answered %d results for %d requests", len(out.Results), len(reqs))
	}
	return out.Results, nil
}

// Health fetches the server's health document.
func (c *Client) Health(ctx context.Context) (*ServeHealth, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	u, err := c.url("/healthz")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServeError(resp, resp.Body)
	}
	var out ServeHealth
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the raw Prometheus text exposition from GET /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	u, err := c.url("/metrics")
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeServeError(resp, resp.Body)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// parseRetryAfter parses a Retry-After header (delta-seconds form; the
// HTTP-date form is ignored — the serve API never sends it).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
