package dcnflow

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Client is the Go client of the serve API (`dcnflow serve` /
// NewServeHandler): thin typed wrappers over POST /v1/solve, POST
// /v1/batch and GET /healthz. The zero value is not usable; set BaseURL
// (e.g. "http://127.0.0.1:8080"). A Client is safe for concurrent use.
type Client struct {
	// BaseURL is the server root, without a trailing slash requirement.
	BaseURL string
	// HTTPClient overrides the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) (string, error) {
	if c.BaseURL == "" {
		return "", errServeNoBase
	}
	return strings.TrimRight(c.BaseURL, "/") + path, nil
}

// post sends body as JSON and decodes a 2xx reply into out; non-2xx
// replies come back as errors carrying the server's error message (a 422
// or 504 solve reply is a full ServeResponse, whose "error" field decodes
// the same way).
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	u, err := c.url(path)
	if err != nil {
		return err
	}
	data, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("dcnflow: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return decodeServeError(resp.StatusCode, resp.Body)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Solve runs one request on the server. A solver-level failure (422/504)
// is returned as an error carrying the server's message; transport and
// decoding failures likewise.
func (c *Client) Solve(ctx context.Context, req ServeRequest) (*ServeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out ServeResponse
	if err := c.post(ctx, "/v1/solve", &req, &out); err != nil {
		return nil, err
	}
	if out.Error != "" {
		return nil, fmt.Errorf("dcnflow: server: %s", out.Error)
	}
	return &out, nil
}

// SolveBatch runs a batch on the server and returns one response per
// request, in request order. Per-request failures stay in their item's
// Error field — only transport-level problems error here.
func (c *Client) SolveBatch(ctx context.Context, reqs []ServeRequest) ([]ServeResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var out ServeBatchResponse
	if err := c.post(ctx, "/v1/batch", &ServeBatchRequest{Requests: reqs}, &out); err != nil {
		return nil, err
	}
	if len(out.Results) != len(reqs) {
		return nil, fmt.Errorf("dcnflow: server answered %d results for %d requests", len(out.Results), len(reqs))
	}
	return out.Results, nil
}

// Health fetches the server's health document.
func (c *Client) Health(ctx context.Context) (*ServeHealth, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	u, err := c.url("/healthz")
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeServeError(resp.StatusCode, resp.Body)
	}
	var out ServeHealth
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
