package power

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff/scale < tol
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Model
		wantErr bool
	}{
		{"ok quadratic", Model{Sigma: 1, Mu: 1, Alpha: 2, C: 10}, false},
		{"ok uncapped", Model{Sigma: 0, Mu: 2, Alpha: 4}, false},
		{"negative sigma", Model{Sigma: -1, Mu: 1, Alpha: 2}, true},
		{"zero mu", Model{Sigma: 1, Mu: 0, Alpha: 2}, true},
		{"alpha one", Model{Sigma: 1, Mu: 1, Alpha: 1}, true},
		{"alpha below one", Model{Sigma: 1, Mu: 1, Alpha: 0.5}, true},
		{"negative capacity", Model{Sigma: 1, Mu: 1, Alpha: 2, C: -3}, true},
		{"nan", Model{Sigma: math.NaN(), Mu: 1, Alpha: 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestFAndG(t *testing.T) {
	m := Model{Sigma: 3, Mu: 2, Alpha: 2, C: 100}
	if got := m.F(0); got != 0 {
		t.Fatalf("F(0) = %v, want 0 (power-down)", got)
	}
	if got := m.F(-1); got != 0 {
		t.Fatalf("F(-1) = %v, want 0", got)
	}
	if got := m.F(4); got != 3+2*16 {
		t.Fatalf("F(4) = %v, want 35", got)
	}
	if got := m.G(4); got != 32 {
		t.Fatalf("G(4) = %v, want 32", got)
	}
	if got := m.G(0); got != 0 {
		t.Fatalf("G(0) = %v, want 0", got)
	}
}

func TestGDeriv(t *testing.T) {
	m := Model{Mu: 3, Alpha: 3}
	// g(x) = 3x^3, g'(x) = 9x^2.
	if got := m.GDeriv(2); got != 36 {
		t.Fatalf("GDeriv(2) = %v, want 36", got)
	}
	if got := m.GDeriv(0); got != 0 {
		t.Fatalf("GDeriv(0) = %v, want 0", got)
	}
}

func TestPowerRate(t *testing.T) {
	m := Model{Sigma: 4, Mu: 1, Alpha: 2}
	// f(x)/x = 4/x + x, minimised at x = 2 with value 4.
	if got := m.PowerRate(2); got != 4 {
		t.Fatalf("PowerRate(2) = %v, want 4", got)
	}
	if !math.IsInf(m.PowerRate(0), 1) {
		t.Fatal("PowerRate(0) should be +Inf")
	}
}

func TestRoptLemma3(t *testing.T) {
	// Lemma 3: Ropt = (sigma/(mu*(alpha-1)))^(1/alpha).
	m := Model{Sigma: 4, Mu: 1, Alpha: 2}
	if got := m.Ropt(); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Ropt = %v, want 2", got)
	}
	m4 := Model{Sigma: 3, Mu: 1, Alpha: 4}
	want := math.Pow(1, 0.25) // 3/(1*3) = 1
	if got := m4.Ropt(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Ropt = %v, want %v", got, want)
	}
	if got := (Model{Sigma: 0, Mu: 1, Alpha: 2}).Ropt(); got != 0 {
		t.Fatalf("Ropt with sigma=0 = %v, want 0", got)
	}
}

func TestRoptMinimisesPowerRate(t *testing.T) {
	prop := func(rawSigma, rawMu, rawAlpha uint8) bool {
		m := Model{
			Sigma: 0.1 + float64(rawSigma)/16,
			Mu:    0.1 + float64(rawMu)/32,
			Alpha: 1.5 + float64(rawAlpha%40)/10,
		}
		r := m.Ropt()
		base := m.PowerRate(r)
		for _, mult := range []float64{0.5, 0.9, 1.1, 2.0} {
			if m.PowerRate(r*mult) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEffectiveOpt(t *testing.T) {
	m := Model{Sigma: 4, Mu: 1, Alpha: 2, C: 1} // Ropt = 2 > C = 1
	if got := m.EffectiveOpt(); got != 1 {
		t.Fatalf("EffectiveOpt = %v, want clamped to C = 1", got)
	}
	m.C = 10
	if got := m.EffectiveOpt(); got != 2 {
		t.Fatalf("EffectiveOpt = %v, want Ropt = 2", got)
	}
	m.C = 0 // uncapped
	if got := m.EffectiveOpt(); got != 2 {
		t.Fatalf("EffectiveOpt uncapped = %v, want 2", got)
	}
}

func TestSigmaForRoptRoundTrip(t *testing.T) {
	prop := func(rawR, rawMu, rawAlpha uint8) bool {
		r := 0.5 + float64(rawR)/32
		mu := 0.1 + float64(rawMu)/64
		alpha := 1.2 + float64(rawAlpha%30)/10
		sigma := SigmaForRopt(mu, alpha, r)
		m := Model{Sigma: sigma, Mu: mu, Alpha: alpha}
		return almostEqual(m.Ropt(), r, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if got := SigmaForRopt(1, 2, 0); got != 0 {
		t.Fatalf("SigmaForRopt(.,.,0) = %v, want 0", got)
	}
}

func TestEnvelopeProperties(t *testing.T) {
	m := Model{Sigma: 4, Mu: 1, Alpha: 2, C: 100} // Ropt = 2
	// Below r*: linear through origin with slope f(2)/2 = 8/2 = 4.
	if got := m.Envelope(1); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Envelope(1) = %v, want 4", got)
	}
	// At r*: touches f.
	if got := m.Envelope(2); !almostEqual(got, m.F(2), 1e-12) {
		t.Fatalf("Envelope(2) = %v, want f(2) = %v", got, m.F(2))
	}
	// Above r*: equals f.
	if got := m.Envelope(5); !almostEqual(got, m.F(5), 1e-12) {
		t.Fatalf("Envelope(5) = %v, want f(5) = %v", got, m.F(5))
	}
	if got := m.Envelope(0); got != 0 {
		t.Fatalf("Envelope(0) = %v, want 0", got)
	}
}

func TestEnvelopeIsLowerBound(t *testing.T) {
	prop := func(rawSigma, rawX uint8) bool {
		m := Model{Sigma: float64(rawSigma) / 8, Mu: 1, Alpha: 2.5, C: 50}
		x := float64(rawX) / 8
		return m.Envelope(x) <= m.F(x)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnvelopeIsConvex(t *testing.T) {
	m := Model{Sigma: 4, Mu: 1, Alpha: 3, C: 100}
	// Midpoint convexity sampled over a grid.
	for _, a := range []float64{0, 0.5, 1, 2, 3, 5, 8} {
		for _, b := range []float64{0.2, 1.5, 2.5, 4, 10} {
			mid := m.Envelope((a + b) / 2)
			avg := (m.Envelope(a) + m.Envelope(b)) / 2
			if mid > avg+1e-9 {
				t.Fatalf("envelope not convex at (%v,%v): mid=%v avg=%v", a, b, mid, avg)
			}
		}
	}
}

func TestEnvelopeNoIdlePower(t *testing.T) {
	m := Model{Sigma: 0, Mu: 2, Alpha: 2, C: 10}
	if got := m.Envelope(3); got != m.G(3) {
		t.Fatalf("Envelope with sigma=0 = %v, want g(3) = %v", got, m.G(3))
	}
	if got := m.EnvelopeDeriv(3); got != m.GDeriv(3) {
		t.Fatalf("EnvelopeDeriv with sigma=0 = %v, want g'(3) = %v", got, m.GDeriv(3))
	}
}

func TestEnvelopeDeriv(t *testing.T) {
	m := Model{Sigma: 4, Mu: 1, Alpha: 2, C: 100} // r* = 2, slope below = 4
	if got := m.EnvelopeDeriv(1); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("EnvelopeDeriv(1) = %v, want 4", got)
	}
	if got := m.EnvelopeDeriv(5); !almostEqual(got, m.GDeriv(5), 1e-12) {
		t.Fatalf("EnvelopeDeriv(5) = %v, want g'(5)", got)
	}
	if got := m.EnvelopeDeriv(-1); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("EnvelopeDeriv(-1) = %v, want slope at 0", got)
	}
}

func TestSingleRateEnergyLemma2(t *testing.T) {
	m := Model{Mu: 1, Alpha: 2}
	// Energy = hops * mu * w * s^(alpha-1) = 2 * 6 * s for Example 1 flow 1.
	if got := m.SingleRateEnergy(6, 3, 2); got != 36 {
		t.Fatalf("SingleRateEnergy = %v, want 36", got)
	}
	if got := m.SingleRateEnergy(0, 3, 2); got != 0 {
		t.Fatalf("zero data energy = %v, want 0", got)
	}
	if got := m.SingleRateEnergy(6, 0, 2); got != 0 {
		t.Fatalf("zero rate energy = %v, want 0", got)
	}
}

func TestSingleRateEnergyMonotoneInRate(t *testing.T) {
	// Lemma 2: with alpha > 1 the energy increases with the rate, so the
	// minimum feasible rate is optimal.
	m := Model{Mu: 2, Alpha: 3}
	prev := 0.0
	for _, s := range []float64{0.5, 1, 2, 4, 8} {
		e := m.SingleRateEnergy(10, s, 3)
		if e <= prev {
			t.Fatalf("energy not increasing: E(%v) = %v <= %v", s, e, prev)
		}
		prev = e
	}
}

func TestVirtualWeight(t *testing.T) {
	m := Model{Mu: 1, Alpha: 2}
	// w' = w * |P|^(1/alpha); Example 1: flow 1 has w=6, |P|=2 => 6*sqrt(2).
	if got := m.VirtualWeight(6, 2); !almostEqual(got, 6*math.Sqrt2, 1e-12) {
		t.Fatalf("VirtualWeight(6,2) = %v, want %v", got, 6*math.Sqrt2)
	}
	if got := m.VirtualWeight(6, 1); got != 6 {
		t.Fatalf("VirtualWeight(6,1) = %v, want 6", got)
	}
	if got := m.VirtualWeight(6, 0); got != 6 {
		t.Fatalf("VirtualWeight(6,0) = %v, want 6 (degenerate)", got)
	}
}

func TestCapped(t *testing.T) {
	if (Model{C: 0}).Capped() {
		t.Fatal("C=0 should be uncapped")
	}
	if !(Model{C: 5}).Capped() {
		t.Fatal("C=5 should be capped")
	}
}
