// Package power implements the paper's link power-consumption model
// (Section II-A, Eq. 1): an integration of power-down and speed scaling,
//
//	f(x) = 0                       if x = 0
//	f(x) = sigma + mu * x^alpha    if 0 < x <= C,
//
// together with the derived quantities used throughout the paper: the
// dynamic-only cost g(x) = mu*x^alpha, the power rate f(x)/x (Definition 3),
// the energy-optimal operating rate Ropt (Lemma 3), and the convex lower
// envelope of f used for fractional lower bounds.
package power

import (
	"errors"
	"fmt"
	"math"
)

// Model holds the parameters of the uniform link power function.
type Model struct {
	// Sigma is the idle power for maintaining link state (paid whenever the
	// link is active at any point in the horizon).
	Sigma float64
	// Mu scales the dynamic, rate-dependent power term.
	Mu float64
	// Alpha is the superadditivity exponent; the paper requires alpha > 1.
	Alpha float64
	// C is the maximum transmission rate of a link. Zero means "uncapped"
	// (the DCFS analysis relaxes the capacity constraint).
	C float64
}

// ErrInvalidModel is returned by Validate for malformed parameters.
var ErrInvalidModel = errors.New("power: invalid model")

// Validate checks the model parameters against the paper's assumptions.
func (m Model) Validate() error {
	switch {
	case m.Sigma < 0:
		return fmt.Errorf("%w: sigma %v < 0", ErrInvalidModel, m.Sigma)
	case m.Mu <= 0:
		return fmt.Errorf("%w: mu %v <= 0", ErrInvalidModel, m.Mu)
	case m.Alpha <= 1:
		return fmt.Errorf("%w: alpha %v <= 1 (paper requires superadditive f)", ErrInvalidModel, m.Alpha)
	case m.C < 0:
		return fmt.Errorf("%w: C %v < 0", ErrInvalidModel, m.C)
	case math.IsNaN(m.Sigma) || math.IsNaN(m.Mu) || math.IsNaN(m.Alpha) || math.IsNaN(m.C):
		return fmt.Errorf("%w: NaN parameter", ErrInvalidModel)
	}
	return nil
}

// Capped reports whether the model enforces a finite maximum rate.
func (m Model) Capped() bool { return m.C > 0 }

// pow is math.Pow with multiplication fast paths for the small integer
// exponents the paper's evaluation uses (alpha in {2, 3, 4}, hence
// derivative exponents in {1, 2, 3}). The fast paths produce the same
// rounding sequence as math.Pow's integer-exponent branch (mantissa
// squaring), so switching to them does not perturb solver trajectories.
// Removing math.Pow from the Frank–Wolfe inner loops is worth ~1.3x on the
// relaxation hot path.
func pow(x, a float64) float64 {
	switch a {
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	case 4:
		xx := x * x
		return xx * xx
	}
	return math.Pow(x, a)
}

// F evaluates the full power function f(x) including idle power. Rates at
// or below zero consume no power (the link is off).
func (m Model) F(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return m.Sigma + m.Mu*pow(x, m.Alpha)
}

// G evaluates the dynamic-only power g(x) = mu * x^alpha used once the set
// of active links is fixed (Section III-A).
func (m Model) G(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return m.Mu * pow(x, m.Alpha)
}

// GDeriv evaluates g'(x) = alpha * mu * x^(alpha-1), the marginal dynamic
// power. It is the gradient used by the Frank–Wolfe oracle.
func (m Model) GDeriv(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return m.Alpha * m.Mu * pow(x, m.Alpha-1)
}

// PowerRate returns the power consumed per unit of traffic, f(x)/x
// (Definition 3). It returns +Inf for x <= 0.
func (m Model) PowerRate(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return m.F(x) / x
}

// Ropt returns the ideal energy-optimal operating rate of Lemma 3,
//
//	Ropt = (sigma / (mu * (alpha-1)))^(1/alpha),
//
// the unconstrained minimiser of the power rate. It can exceed C; see
// EffectiveOpt for the capacity-clamped value.
func (m Model) Ropt() float64 {
	if m.Sigma == 0 {
		return 0
	}
	return math.Pow(m.Sigma/(m.Mu*(m.Alpha-1)), 1/m.Alpha)
}

// EffectiveOpt returns the achievable rate minimising the power rate:
// min(Ropt, C) when the model is capped, Ropt otherwise.
func (m Model) EffectiveOpt() float64 {
	r := m.Ropt()
	if m.Capped() && r > m.C {
		return m.C
	}
	return r
}

// SigmaForRopt returns the idle power that places the energy-optimal rate
// at the given target: sigma = mu * (alpha-1) * r^alpha. It is the inverse
// of Lemma 3 and is used by the experiment harness to position Ropt
// relative to the workload's mean flow density.
func SigmaForRopt(mu, alpha, r float64) float64 {
	if r <= 0 {
		return 0
	}
	return mu * (alpha - 1) * math.Pow(r, alpha)
}

// Envelope evaluates the convex lower envelope of f on [0, C]:
//
//	env(x) = x * f(r*)/r*   for 0 <= x <= r*,   r* = min(Ropt, C)
//	env(x) = f(x)           for x  > r*.
//
// The envelope is the tightest convex function below f (the discontinuity
// of f at 0 makes f itself non-convex), so minimising the envelope yields a
// genuine lower bound on the energy of any feasible schedule. It is what
// the lower-bound series LB in Fig. 2 is computed from.
func (m Model) Envelope(x float64) float64 {
	if x <= 0 {
		return 0
	}
	r := m.EffectiveOpt()
	if r <= 0 {
		// No idle power: f is already convex (f == g on x > 0).
		return m.G(x)
	}
	if x <= r {
		return x * m.PowerRate(r)
	}
	return m.F(x)
}

// EnvelopeDeriv returns a subgradient of the envelope at x (the right
// derivative at the kink r*).
func (m Model) EnvelopeDeriv(x float64) float64 {
	if x < 0 {
		x = 0
	}
	r := m.EffectiveOpt()
	if r <= 0 {
		return m.GDeriv(x)
	}
	if x <= r {
		return m.PowerRate(r)
	}
	return m.GDeriv(x)
}

// SingleRateEnergy returns the dynamic energy consumed by transmitting w
// units of data over a path of hops links at constant rate s:
// hops * g(s) * w/s = hops * mu * w * s^(alpha-1) (Lemma 2).
func (m Model) SingleRateEnergy(w float64, s float64, hops int) float64 {
	if w <= 0 || s <= 0 || hops <= 0 {
		return 0
	}
	return float64(hops) * m.Mu * w * pow(s, m.Alpha-1)
}

// VirtualWeight returns the virtual weight w' = w * hops^(1/alpha) used by
// the Most-Critical-First reduction to single-processor speed scaling
// (Section III-C).
func (m Model) VirtualWeight(w float64, hops int) float64 {
	if hops <= 0 {
		return w
	}
	return w * math.Pow(float64(hops), 1/m.Alpha)
}
