package flow

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitEqualShares(t *testing.T) {
	f := Flow{Src: 0, Dst: 1, Release: 2, Deadline: 8, Size: 9}
	parts, err := Split(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	for _, p := range parts {
		if p.Size != 3 {
			t.Fatalf("share = %v, want 3", p.Size)
		}
		if p.Release != f.Release || p.Deadline != f.Deadline || p.Src != f.Src || p.Dst != f.Dst {
			t.Fatalf("sub-flow changed identity: %+v", p)
		}
	}
}

func TestSplitErrors(t *testing.T) {
	good := Flow{Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: 1}
	if _, err := Split(good, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := Flow{Src: 0, Dst: 0, Release: 0, Deadline: 1, Size: 1}
	if _, err := Split(bad, 2); err == nil {
		t.Fatal("invalid flow accepted")
	}
}

func TestSplitSet(t *testing.T) {
	s, err := NewSet([]Flow{
		{Src: 0, Dst: 1, Release: 0, Deadline: 10, Size: 10}, // -> 4 parts of 2.5
		{Src: 1, Dst: 0, Release: 0, Deadline: 10, Size: 2},  // untouched
	})
	if err != nil {
		t.Fatal(err)
	}
	split, err := SplitSet(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if split.Len() != 5 {
		t.Fatalf("Len = %d, want 5", split.Len())
	}
	if math.Abs(split.TotalData()-s.TotalData()) > 1e-9 {
		t.Fatalf("total data changed: %v -> %v", s.TotalData(), split.TotalData())
	}
	for _, f := range split.Flows() {
		if f.Size > 3+1e-9 {
			t.Fatalf("sub-flow size %v exceeds max", f.Size)
		}
	}
	if _, err := SplitSet(s, 0); err == nil {
		t.Fatal("non-positive max size accepted")
	}
}

// Property: splitting conserves data and keeps every sub-flow valid.
func TestPropertySplitConserves(t *testing.T) {
	prop := func(rawSize, rawK uint8) bool {
		size := 0.5 + float64(rawSize)
		k := 1 + int(rawK%16)
		f := Flow{Src: 0, Dst: 1, Release: 1, Deadline: 5, Size: size}
		parts, err := Split(f, k)
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range parts {
			if p.Validate() != nil {
				return false
			}
			sum += p.Size
		}
		return math.Abs(sum-size) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
