package flow

import (
	"fmt"
	"math"
)

// Split divides a flow into k sub-flows with the same endpoints, release
// time and deadline, each carrying an equal share of the data. This is the
// paper's Section II-B device for incorporating multi-path routing into the
// single-path model: "multi-path routing protocols can be incorporated in
// our model by splitting a big flow into many small flows with the same
// release time and deadline at the source end and each of the small flows
// will follow a single path."
func Split(f Flow, k int) ([]Flow, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("flow: split count %d must be positive", k)
	}
	share := f.Size / float64(k)
	out := make([]Flow, k)
	for i := range out {
		out[i] = Flow{
			Src:      f.Src,
			Dst:      f.Dst,
			Release:  f.Release,
			Deadline: f.Deadline,
			Size:     share,
		}
	}
	return out, nil
}

// SplitSet splits every flow of the set whose size exceeds maxSize into
// ceil(size/maxSize) equal sub-flows and returns a new validated Set. Flow
// IDs are reassigned positionally.
func SplitSet(s *Set, maxSize float64) (*Set, error) {
	if maxSize <= 0 || math.IsNaN(maxSize) {
		return nil, fmt.Errorf("flow: max size %v must be positive", maxSize)
	}
	var out []Flow
	for _, f := range s.Flows() {
		k := int(math.Ceil(f.Size / maxSize))
		if k <= 1 {
			out = append(out, f)
			continue
		}
		parts, err := Split(f, k)
		if err != nil {
			return nil, err
		}
		out = append(out, parts...)
	}
	return NewSet(out)
}
