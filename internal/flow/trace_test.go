package flow

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig, err := NewSet([]Flow{
		{Src: 3, Dst: 7, Release: 1.5, Deadline: 9.25, Size: 10.125},
		{Src: 0, Dst: 1, Release: 0, Deadline: 100, Size: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), orig.Len())
	}
	fa, fb := orig.Flows(), back.Flows()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("flow %d: %+v != %+v", i, fa[i], fb[i])
		}
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"bad header":    "a,b,c,d,e,f\n",
		"bad src":       "id,src,dst,release,deadline,size\n0,x,1,0,1,1\n",
		"bad dst":       "id,src,dst,release,deadline,size\n0,1,x,0,1,1\n",
		"bad release":   "id,src,dst,release,deadline,size\n0,0,1,x,1,1\n",
		"bad deadline":  "id,src,dst,release,deadline,size\n0,0,1,0,x,1\n",
		"bad size":      "id,src,dst,release,deadline,size\n0,0,1,0,1,x\n",
		"invalid flow":  "id,src,dst,release,deadline,size\n0,0,0,0,1,1\n",
		"missing field": "id,src,dst,release,deadline,size\n0,0,1,0\n",
		"empty":         "",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadTrace(strings.NewReader(data)); err == nil {
				t.Fatalf("accepted %q", data)
			}
		})
	}
}

func TestReadTraceIgnoresIDs(t *testing.T) {
	data := "id,src,dst,release,deadline,size\n42,0,1,0,1,1\n7,1,0,0,1,1\n"
	s, err := ReadTrace(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range s.Flows() {
		if int(f.ID) != i {
			t.Fatalf("id not reassigned positionally: %d", f.ID)
		}
	}
}

func TestIncast(t *testing.T) {
	s, err := Incast(0, hostIDs(9)[1:], 0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 {
		t.Fatalf("len = %d, want 8", s.Len())
	}
	for _, f := range s.Flows() {
		if f.Dst != 0 {
			t.Fatal("incast flow not targeting receiver")
		}
	}
}

func TestDiurnal(t *testing.T) {
	s, err := Diurnal(DiurnalConfig{
		N: 300, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 10, SizeStddev: 3, Hosts: hostIDs(10), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 300 {
		t.Fatalf("len = %d, want 300", s.Len())
	}
	// The edges of the horizon (peak) must hold clearly more releases than
	// the middle (trough).
	var edge, mid int
	for _, f := range s.Flows() {
		switch {
		case f.Release < 20 || f.Release > 80:
			edge++
		case f.Release > 40 && f.Release < 60:
			mid++
		}
	}
	if edge <= mid {
		t.Fatalf("diurnal profile flat: edge=%d mid=%d", edge, mid)
	}
	for _, f := range s.Flows() {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
		if f.Release < 0 || f.Deadline > 100 {
			t.Fatalf("flow outside horizon: %+v", f)
		}
	}
}

func TestDiurnalErrors(t *testing.T) {
	base := DiurnalConfig{N: 10, T0: 0, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: hostIDs(4)}
	for name, mod := range map[string]func(*DiurnalConfig){
		"zero n":      func(c *DiurnalConfig) { c.N = 0 },
		"bad horizon": func(c *DiurnalConfig) { c.T1 = c.T0 },
		"one host":    func(c *DiurnalConfig) { c.Hosts = hostIDs(1) },
		"bad size":    func(c *DiurnalConfig) { c.SizeMean = 0 },
	} {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mod(&cfg)
			if _, err := Diurnal(cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
