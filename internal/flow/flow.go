// Package flow defines the deadline-constrained flow model of Section II-B
// and the synthetic workload generators used by the evaluation: every flow
// j_i carries w_i units of data from source p_i to destination q_i and must
// complete within its span S_i = [r_i, d_i].
package flow

import (
	"errors"
	"fmt"
	"math"

	"dcnflow/internal/graph"
)

// ID identifies a flow within a Set.
type ID int

// Flow is a deadline-constrained flow (Section II-B).
type Flow struct {
	// ID is the flow's index within its Set.
	ID ID
	// Src and Dst are the endpoints (p_i and q_i).
	Src, Dst graph.NodeID
	// Release and Deadline delimit the span S_i = [r_i, d_i].
	Release, Deadline float64
	// Size is the amount of data w_i to transfer.
	Size float64
}

// Span returns the length of the flow's feasible window d_i - r_i.
func (f Flow) Span() float64 { return f.Deadline - f.Release }

// Density returns D_i = w_i / (d_i - r_i), the minimum sustained rate that
// completes the flow exactly at its deadline.
func (f Flow) Density() float64 {
	s := f.Span()
	if s <= 0 {
		return math.Inf(1)
	}
	return f.Size / s
}

// ActiveAt reports whether t lies within the flow's span.
func (f Flow) ActiveAt(t float64) bool { return t >= f.Release && t <= f.Deadline }

// Validate checks the flow's parameters for internal consistency.
func (f Flow) Validate() error {
	switch {
	case math.IsNaN(f.Release) || math.IsNaN(f.Deadline) || math.IsNaN(f.Size):
		return fmt.Errorf("flow %d: %w: NaN field", f.ID, ErrInvalidFlow)
	case f.Size <= 0:
		return fmt.Errorf("flow %d: %w: size %v <= 0", f.ID, ErrInvalidFlow, f.Size)
	case f.Deadline <= f.Release:
		return fmt.Errorf("flow %d: %w: deadline %v <= release %v", f.ID, ErrInvalidFlow, f.Deadline, f.Release)
	case f.Src == f.Dst:
		return fmt.Errorf("flow %d: %w: src == dst (%d)", f.ID, ErrInvalidFlow, f.Src)
	}
	return nil
}

// Errors returned by flow validation.
var ErrInvalidFlow = errors.New("flow: invalid flow")

// Set is an ordered collection of flows; the paper's J = {j_1, ..., j_n}.
type Set struct {
	flows []Flow
}

// NewSet builds a Set from the given flows, reassigning IDs to the
// positional index and validating every flow.
func NewSet(flows []Flow) (*Set, error) {
	s := &Set{flows: make([]Flow, len(flows))}
	copy(s.flows, flows)
	for i := range s.flows {
		s.flows[i].ID = ID(i)
		if err := s.flows[i].Validate(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Len returns the number of flows.
func (s *Set) Len() int { return len(s.flows) }

// Flow returns the flow with the given id.
func (s *Set) Flow(id ID) (Flow, error) {
	if id < 0 || int(id) >= len(s.flows) {
		return Flow{}, fmt.Errorf("flow %d: %w", id, ErrInvalidFlow)
	}
	return s.flows[id], nil
}

// Flows returns a copy of all flows in id order.
func (s *Set) Flows() []Flow {
	out := make([]Flow, len(s.flows))
	copy(out, s.flows)
	return out
}

// Horizon returns [T0, T1]: the earliest release and the latest deadline.
// It returns (0, 0) for an empty set.
func (s *Set) Horizon() (t0, t1 float64) {
	if len(s.flows) == 0 {
		return 0, 0
	}
	t0, t1 = s.flows[0].Release, s.flows[0].Deadline
	for _, f := range s.flows[1:] {
		t0 = math.Min(t0, f.Release)
		t1 = math.Max(t1, f.Deadline)
	}
	return t0, t1
}

// TotalData returns the sum of flow sizes.
func (s *Set) TotalData() float64 {
	var sum float64
	for _, f := range s.flows {
		sum += f.Size
	}
	return sum
}

// MeanDensity returns the average of the flow densities D_i.
func (s *Set) MeanDensity() float64 {
	if len(s.flows) == 0 {
		return 0
	}
	var sum float64
	for _, f := range s.flows {
		sum += f.Density()
	}
	return sum / float64(len(s.flows))
}

// MaxDensity returns D = max_i D_i (used by the approximation bound of
// Theorem 6).
func (s *Set) MaxDensity() float64 {
	var max float64
	for _, f := range s.flows {
		if d := f.Density(); d > max {
			max = d
		}
	}
	return max
}
