package flow

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dcnflow/internal/graph"
)

// traceHeader is the canonical column order of the CSV trace format.
var traceHeader = []string{"id", "src", "dst", "release", "deadline", "size"}

// WriteTrace serializes the set as CSV with a header row, one flow per
// line: id,src,dst,release,deadline,size. The format round-trips through
// ReadTrace and is the interchange format of `dcnflow workload`.
func WriteTrace(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(traceHeader); err != nil {
		return fmt.Errorf("flow: write trace header: %w", err)
	}
	for _, f := range s.Flows() {
		rec := []string{
			strconv.Itoa(int(f.ID)),
			strconv.Itoa(int(f.Src)),
			strconv.Itoa(int(f.Dst)),
			strconv.FormatFloat(f.Release, 'g', -1, 64),
			strconv.FormatFloat(f.Deadline, 'g', -1, 64),
			strconv.FormatFloat(f.Size, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("flow: write trace row %d: %w", f.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV trace produced by WriteTrace (or hand-written in
// the same format). The id column is ignored — ids are reassigned
// positionally — so traces can be concatenated or filtered freely.
func ReadTrace(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(traceHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("flow: read trace header: %w", err)
	}
	for i, want := range traceHeader {
		if header[i] != want {
			return nil, fmt.Errorf("flow: trace header column %d is %q, want %q", i, header[i], want)
		}
	}
	var flows []Flow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flow: read trace line %d: %w", line, err)
		}
		src, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("flow: trace line %d src: %w", line, err)
		}
		dst, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("flow: trace line %d dst: %w", line, err)
		}
		release, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("flow: trace line %d release: %w", line, err)
		}
		deadline, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("flow: trace line %d deadline: %w", line, err)
		}
		size, err := strconv.ParseFloat(rec[5], 64)
		if err != nil {
			return nil, fmt.Errorf("flow: trace line %d size: %w", line, err)
		}
		flows = append(flows, Flow{
			Src: graph.NodeID(src), Dst: graph.NodeID(dst),
			Release: release, Deadline: deadline, Size: size,
		})
	}
	return NewSet(flows)
}
