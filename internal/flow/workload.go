package flow

import (
	"fmt"
	"math"
	"math/rand"

	"dcnflow/internal/graph"
)

// GenConfig configures the random workload generator reproducing the
// paper's Section V-C setup: spans drawn uniformly from the horizon and
// sizes from a truncated normal distribution.
type GenConfig struct {
	// N is the number of flows to generate.
	N int
	// T0, T1 delimit the time period of interest (the paper uses [1, 100]).
	T0, T1 float64
	// SizeMean, SizeStddev parameterise the normal size distribution (the
	// paper uses N(10, 3)). Draws are truncated to be strictly positive.
	SizeMean, SizeStddev float64
	// MinSpan is the minimum deadline-minus-release window; it guards
	// against degenerate near-zero spans that explode densities. Zero
	// selects a default of 1% of the horizon.
	MinSpan float64
	// TimeQuantum, when positive, snaps releases down and deadlines up to
	// the grid T0 + k*TimeQuantum. Quantisation lower-bounds the spacing of
	// the schedule's breakpoints and therefore caps lambda =
	// horizon / min_k |I_k| at roughly horizon / TimeQuantum (the knob the
	// A1 ablation sweeps).
	TimeQuantum float64
	// Hosts are the candidate endpoints; source and destination are drawn
	// uniformly without replacement per flow.
	Hosts []graph.NodeID
	// Seed makes generation deterministic.
	Seed int64
}

// Uniform generates cfg.N flows with spans uniform in [T0, T1] and sizes
// from the truncated normal distribution, matching the paper's evaluation
// workload ("we select release times and deadlines of flows randomly
// following a uniform distribution in [1,100] ... the amount of data from
// each flow is given by a random rational number following normal
// distribution N(10,3)").
func Uniform(cfg GenConfig) (*Set, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	if cfg.T1 <= cfg.T0 {
		return nil, fmt.Errorf("workload: empty horizon [%v, %v]", cfg.T0, cfg.T1)
	}
	if len(cfg.Hosts) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, got %d", len(cfg.Hosts))
	}
	if cfg.SizeMean <= 0 {
		return nil, fmt.Errorf("workload: size mean must be positive, got %v", cfg.SizeMean)
	}
	minSpan := cfg.MinSpan
	if minSpan <= 0 {
		minSpan = (cfg.T1 - cfg.T0) / 100
	}
	if minSpan >= cfg.T1-cfg.T0 {
		return nil, fmt.Errorf("workload: min span %v exceeds horizon %v", minSpan, cfg.T1-cfg.T0)
	}
	if cfg.TimeQuantum < 0 || cfg.TimeQuantum >= cfg.T1-cfg.T0 {
		if cfg.TimeQuantum != 0 {
			return nil, fmt.Errorf("workload: time quantum %v outside (0, horizon)", cfg.TimeQuantum)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make([]Flow, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		r := cfg.T0 + rng.Float64()*(cfg.T1-cfg.T0-minSpan)
		d := r + minSpan + rng.Float64()*(cfg.T1-r-minSpan)
		if q := cfg.TimeQuantum; q > 0 {
			r = cfg.T0 + math.Floor((r-cfg.T0)/q)*q
			d = cfg.T0 + math.Ceil((d-cfg.T0)/q)*q
			if d > cfg.T1 {
				d = cfg.T1
			}
			if d-r <= 0 {
				r = math.Max(cfg.T0, d-q)
			}
		}
		src, dst := pickPair(rng, cfg.Hosts)
		flows = append(flows, Flow{
			Src:      src,
			Dst:      dst,
			Release:  r,
			Deadline: d,
			Size:     truncNormal(rng, cfg.SizeMean, cfg.SizeStddev),
		})
	}
	return NewSet(flows)
}

// truncNormal draws from N(mean, stddev) truncated to be strictly positive
// (re-sampling, with a floor fallback to remain total).
func truncNormal(rng *rand.Rand, mean, stddev float64) float64 {
	for i := 0; i < 64; i++ {
		v := rng.NormFloat64()*stddev + mean
		if v > 0 {
			return v
		}
	}
	return math.Max(mean/100, 1e-6)
}

func pickPair(rng *rand.Rand, hosts []graph.NodeID) (src, dst graph.NodeID) {
	i := rng.Intn(len(hosts))
	j := rng.Intn(len(hosts) - 1)
	if j >= i {
		j++
	}
	return hosts[i], hosts[j]
}

// PartitionAggregate generates the search-style partition/aggregate pattern
// the paper's introduction motivates: a front-end host fans a request out
// to `workers` hosts and every worker responds to the aggregator with a
// response of the given size; all responses share one release time and one
// hard deadline (the user-perceived latency budget).
func PartitionAggregate(aggregator graph.NodeID, workers []graph.NodeID, release, deadline, respSize float64) (*Set, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("workload: partition-aggregate needs workers")
	}
	flows := make([]Flow, 0, len(workers))
	for _, w := range workers {
		if w == aggregator {
			return nil, fmt.Errorf("workload: worker %d equals aggregator", w)
		}
		flows = append(flows, Flow{
			Src:      w,
			Dst:      aggregator,
			Release:  release,
			Deadline: deadline,
			Size:     respSize,
		})
	}
	return NewSet(flows)
}

// Shuffle generates an all-to-all shuffle among the given hosts: one flow
// per ordered pair, each with the shared release/deadline window and the
// given size. It models the MapReduce-style shuffle stage.
func Shuffle(hosts []graph.NodeID, release, deadline, size float64) (*Set, error) {
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: shuffle needs at least 2 hosts")
	}
	flows := make([]Flow, 0, len(hosts)*(len(hosts)-1))
	for _, s := range hosts {
		for _, d := range hosts {
			if s == d {
				continue
			}
			flows = append(flows, Flow{Src: s, Dst: d, Release: release, Deadline: deadline, Size: size})
		}
	}
	return NewSet(flows)
}

// HardnessInstance builds the flow set of the Theorem 2 reduction: 3m flows
// between a fixed pair of nodes, sizes a_1..a_3m, all released at time 0
// with deadline 1.
func HardnessInstance(src, dst graph.NodeID, sizes []float64) (*Set, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: hardness instance needs sizes")
	}
	flows := make([]Flow, 0, len(sizes))
	for _, a := range sizes {
		flows = append(flows, Flow{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: a})
	}
	return NewSet(flows)
}

// Staggered generates n flows between random pairs whose spans are
// consecutive, non-overlapping windows tiling [t0, t1]; useful for
// exercising the interval decomposition with many breakpoints.
func Staggered(n int, t0, t1, size float64, hosts []graph.NodeID, seed int64) (*Set, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", n)
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("workload: empty horizon [%v, %v]", t0, t1)
	}
	if len(hosts) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts")
	}
	rng := rand.New(rand.NewSource(seed))
	step := (t1 - t0) / float64(n)
	flows := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		src, dst := pickPair(rng, hosts)
		flows = append(flows, Flow{
			Src:      src,
			Dst:      dst,
			Release:  t0 + float64(i)*step,
			Deadline: t0 + float64(i+1)*step,
			Size:     size,
		})
	}
	return NewSet(flows)
}
