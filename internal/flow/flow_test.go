package flow

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dcnflow/internal/graph"
)

func TestFlowBasics(t *testing.T) {
	f := Flow{Src: 0, Dst: 1, Release: 2, Deadline: 4, Size: 6}
	if f.Span() != 2 {
		t.Fatalf("Span = %v, want 2", f.Span())
	}
	if f.Density() != 3 {
		t.Fatalf("Density = %v, want 3", f.Density())
	}
	if !f.ActiveAt(2) || !f.ActiveAt(3) || !f.ActiveAt(4) {
		t.Fatal("flow should be active on its span")
	}
	if f.ActiveAt(1.999) || f.ActiveAt(4.001) {
		t.Fatal("flow active outside its span")
	}
}

func TestFlowDensityDegenerate(t *testing.T) {
	f := Flow{Release: 3, Deadline: 3, Size: 1}
	if !math.IsInf(f.Density(), 1) {
		t.Fatalf("Density of zero span = %v, want +Inf", f.Density())
	}
}

func TestFlowValidate(t *testing.T) {
	tests := []struct {
		name string
		f    Flow
		ok   bool
	}{
		{"valid", Flow{Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: 1}, true},
		{"zero size", Flow{Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: 0}, false},
		{"negative size", Flow{Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: -2}, false},
		{"deadline before release", Flow{Src: 0, Dst: 1, Release: 2, Deadline: 1, Size: 1}, false},
		{"zero span", Flow{Src: 0, Dst: 1, Release: 1, Deadline: 1, Size: 1}, false},
		{"self loop", Flow{Src: 3, Dst: 3, Release: 0, Deadline: 1, Size: 1}, false},
		{"nan release", Flow{Src: 0, Dst: 1, Release: math.NaN(), Deadline: 1, Size: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrInvalidFlow) {
				t.Fatalf("error %v does not wrap ErrInvalidFlow", err)
			}
		})
	}
}

func TestNewSetAssignsIDs(t *testing.T) {
	s, err := NewSet([]Flow{
		{ID: 99, Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: 1},
		{ID: -5, Src: 1, Dst: 0, Release: 1, Deadline: 3, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range s.Flows() {
		if f.ID != ID(i) {
			t.Fatalf("flow %d has ID %d", i, f.ID)
		}
	}
}

func TestNewSetRejectsInvalid(t *testing.T) {
	_, err := NewSet([]Flow{{Src: 0, Dst: 0, Release: 0, Deadline: 1, Size: 1}})
	if err == nil {
		t.Fatal("NewSet accepted invalid flow")
	}
}

func TestSetAccessors(t *testing.T) {
	s, err := NewSet([]Flow{
		{Src: 0, Dst: 1, Release: 2, Deadline: 4, Size: 6},  // density 3
		{Src: 1, Dst: 0, Release: 1, Deadline: 3, Size: 8},  // density 4
		{Src: 0, Dst: 2, Release: 5, Deadline: 10, Size: 5}, // density 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	t0, t1 := s.Horizon()
	if t0 != 1 || t1 != 10 {
		t.Fatalf("Horizon = [%v, %v], want [1, 10]", t0, t1)
	}
	if s.TotalData() != 19 {
		t.Fatalf("TotalData = %v, want 19", s.TotalData())
	}
	if got := s.MeanDensity(); math.Abs(got-8.0/3) > 1e-12 {
		t.Fatalf("MeanDensity = %v, want %v", got, 8.0/3)
	}
	if s.MaxDensity() != 4 {
		t.Fatalf("MaxDensity = %v, want 4", s.MaxDensity())
	}
	f, err := s.Flow(1)
	if err != nil || f.Size != 8 {
		t.Fatalf("Flow(1) = %+v, %v", f, err)
	}
	if _, err := s.Flow(99); err == nil {
		t.Fatal("Flow(99) should error")
	}
	if _, err := s.Flow(-1); err == nil {
		t.Fatal("Flow(-1) should error")
	}
}

func TestEmptySet(t *testing.T) {
	s, err := NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := s.Horizon()
	if t0 != 0 || t1 != 0 {
		t.Fatalf("empty Horizon = [%v, %v], want [0, 0]", t0, t1)
	}
	if s.MeanDensity() != 0 || s.MaxDensity() != 0 || s.TotalData() != 0 {
		t.Fatal("empty set aggregates should be zero")
	}
}

func TestFlowsCopySemantics(t *testing.T) {
	s, err := NewSet([]Flow{{Src: 0, Dst: 1, Release: 0, Deadline: 1, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Flows()
	fs[0].Size = 999
	f, err := s.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size == 999 {
		t.Fatal("Flows() exposes internal state")
	}
}

func hostIDs(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestUniformGenerator(t *testing.T) {
	cfg := GenConfig{
		N: 200, T0: 1, T1: 100,
		SizeMean: 10, SizeStddev: 3,
		Hosts: hostIDs(16), Seed: 42,
	}
	s, err := Uniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d, want 200", s.Len())
	}
	var sizeSum float64
	for _, f := range s.Flows() {
		if err := f.Validate(); err != nil {
			t.Fatalf("generated invalid flow: %v", err)
		}
		if f.Release < 1 || f.Deadline > 100 {
			t.Fatalf("span [%v, %v] outside horizon", f.Release, f.Deadline)
		}
		if f.Span() < (100.0-1.0)/100-1e-9 {
			t.Fatalf("span %v below MinSpan default", f.Span())
		}
		sizeSum += f.Size
	}
	mean := sizeSum / 200
	if mean < 8 || mean > 12 {
		t.Fatalf("empirical size mean %v implausible for N(10,3)", mean)
	}
}

func TestUniformDeterminism(t *testing.T) {
	cfg := GenConfig{N: 50, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: hostIDs(8), Seed: 7}
	a, err := Uniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := a.Flows(), b.Flows()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("flow %d differs across identical seeds: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	cfg.Seed = 8
	c, err := Uniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	fc := c.Flows()
	for i := range fa {
		if fa[i] != fc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestUniformErrors(t *testing.T) {
	base := GenConfig{N: 10, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: hostIDs(4), Seed: 1}
	tests := []struct {
		name string
		mod  func(*GenConfig)
	}{
		{"zero N", func(c *GenConfig) { c.N = 0 }},
		{"empty horizon", func(c *GenConfig) { c.T1 = c.T0 }},
		{"one host", func(c *GenConfig) { c.Hosts = hostIDs(1) }},
		{"bad size mean", func(c *GenConfig) { c.SizeMean = 0 }},
		{"minspan too large", func(c *GenConfig) { c.MinSpan = 1000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mod(&cfg)
			if _, err := Uniform(cfg); err == nil {
				t.Fatal("Uniform accepted invalid config")
			}
		})
	}
}

func TestTruncNormalAlwaysPositive(t *testing.T) {
	prop := func(seed int64) bool {
		cfg := GenConfig{N: 20, T0: 0, T1: 10, SizeMean: 0.5, SizeStddev: 5, Hosts: hostIDs(4), Seed: seed}
		s, err := Uniform(cfg)
		if err != nil {
			return false
		}
		for _, f := range s.Flows() {
			if f.Size <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionAggregate(t *testing.T) {
	workers := hostIDs(8)[1:]
	s, err := PartitionAggregate(0, workers, 5, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
	for _, f := range s.Flows() {
		if f.Dst != 0 {
			t.Fatalf("flow %d does not target aggregator", f.ID)
		}
		if f.Release != 5 || f.Deadline != 10 || f.Size != 2 {
			t.Fatalf("flow %d parameters wrong: %+v", f.ID, f)
		}
	}
	if _, err := PartitionAggregate(0, nil, 0, 1, 1); err == nil {
		t.Fatal("empty workers accepted")
	}
	if _, err := PartitionAggregate(0, []graph.NodeID{0}, 0, 1, 1); err == nil {
		t.Fatal("worker == aggregator accepted")
	}
}

func TestShuffle(t *testing.T) {
	s, err := Shuffle(hostIDs(4), 0, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12 { // 4*3 ordered pairs
		t.Fatalf("Len = %d, want 12", s.Len())
	}
	if _, err := Shuffle(hostIDs(1), 0, 10, 3); err == nil {
		t.Fatal("shuffle with one host accepted")
	}
}

func TestHardnessInstance(t *testing.T) {
	sizes := []float64{3, 3, 4, 2, 5, 3}
	s, err := HardnessInstance(0, 1, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(sizes) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(sizes))
	}
	for i, f := range s.Flows() {
		if f.Size != sizes[i] || f.Release != 0 || f.Deadline != 1 {
			t.Fatalf("flow %d = %+v", i, f)
		}
	}
	if _, err := HardnessInstance(0, 1, nil); err == nil {
		t.Fatal("empty sizes accepted")
	}
}

func TestStaggered(t *testing.T) {
	s, err := Staggered(10, 0, 100, 5, hostIDs(6), 3)
	if err != nil {
		t.Fatal(err)
	}
	fs := s.Flows()
	for i := 1; i < len(fs); i++ {
		if fs[i].Release != fs[i-1].Deadline {
			t.Fatalf("staggered windows not contiguous at %d", i)
		}
	}
	if fs[0].Release != 0 || fs[len(fs)-1].Deadline != 100 {
		t.Fatal("staggered windows do not tile the horizon")
	}
	if _, err := Staggered(0, 0, 1, 1, hostIDs(4), 1); err == nil {
		t.Fatal("zero N accepted")
	}
	if _, err := Staggered(5, 1, 1, 1, hostIDs(4), 1); err == nil {
		t.Fatal("empty horizon accepted")
	}
	if _, err := Staggered(5, 0, 1, 1, hostIDs(1), 1); err == nil {
		t.Fatal("single host accepted")
	}
}
