package flow

import (
	"fmt"
	"math"
	"math/rand"

	"dcnflow/internal/graph"
)

// Incast generates the many-to-one pattern that stresses the links around
// one receiver: `senders` hosts all transmit to the same receiver with a
// shared release and deadline. It is the degenerate, most congested form
// of partition/aggregate.
func Incast(receiver graph.NodeID, senders []graph.NodeID, release, deadline, size float64) (*Set, error) {
	return PartitionAggregate(receiver, senders, release, deadline, size)
}

// DiurnalConfig parameterises the time-varying workload generator that
// models the load variation the paper's introduction cites ("the traffic
// load in a data center network varies significantly over time").
type DiurnalConfig struct {
	// N is the number of flows.
	N int
	// T0, T1 delimit the horizon; one full sinusoidal load cycle spans it.
	T0, T1 float64
	// PeakFactor is the ratio of peak arrival density to trough density
	// (>= 1); default 4.
	PeakFactor float64
	// SizeMean, SizeStddev parameterise flow sizes.
	SizeMean, SizeStddev float64
	// SpanMean is the mean flow span; spans are exponential-ish around it
	// and clipped to the horizon. Zero selects 10% of the horizon.
	SpanMean float64
	// Hosts are candidate endpoints.
	Hosts []graph.NodeID
	// Seed drives all randomness.
	Seed int64
}

// Diurnal draws releases from a sinusoidal intensity profile (one cycle
// across the horizon) via rejection sampling, producing the busy/idle
// alternation that makes power-down worthwhile.
func Diurnal(cfg DiurnalConfig) (*Set, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", cfg.N)
	}
	if cfg.T1 <= cfg.T0 {
		return nil, fmt.Errorf("workload: empty horizon [%v, %v]", cfg.T0, cfg.T1)
	}
	if len(cfg.Hosts) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 hosts, got %d", len(cfg.Hosts))
	}
	if cfg.SizeMean <= 0 {
		return nil, fmt.Errorf("workload: size mean must be positive, got %v", cfg.SizeMean)
	}
	peak := cfg.PeakFactor
	if peak < 1 {
		peak = 4
	}
	spanMean := cfg.SpanMean
	if spanMean <= 0 {
		spanMean = (cfg.T1 - cfg.T0) / 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.T1 - cfg.T0

	// Intensity in [1/peak, 1]: (1 + cos(2*pi*t'))/2 scaled.
	intensity := func(t float64) float64 {
		phase := (t - cfg.T0) / horizon
		base := (1 + math.Cos(2*math.Pi*phase)) / 2 // 1 at edges, 0 mid
		return 1/peak + (1-1/peak)*base
	}
	flows := make([]Flow, 0, cfg.N)
	for len(flows) < cfg.N {
		t := cfg.T0 + rng.Float64()*horizon
		if rng.Float64() > intensity(t) {
			continue // rejection sampling against the profile
		}
		span := spanMean * (0.25 + rng.ExpFloat64())
		if t+span > cfg.T1 {
			span = cfg.T1 - t
		}
		if span < horizon/1000 {
			continue
		}
		src, dst := pickPair(rng, cfg.Hosts)
		flows = append(flows, Flow{
			Src: src, Dst: dst,
			Release: t, Deadline: t + span,
			Size: truncNormal(rng, cfg.SizeMean, cfg.SizeStddev),
		})
	}
	return NewSet(flows)
}
