package graph

// PathHandle is a small-integer identity for an interned path: two equal
// edge-id sequences interned in the same PathInterner always yield the same
// handle, so hot paths can deduplicate and index paths by integer instead
// of building string keys.
type PathHandle int32

// PathInterner deduplicates paths (edge-id sequences) into dense integer
// handles. Interned edge sequences live in one flat arena, so interning N
// distinct paths costs O(1) allocations amortised rather than one per
// path. The zero value is not ready for use; call NewPathInterner. A
// PathInterner is not safe for concurrent use.
type PathInterner struct {
	byHash map[uint64][]PathHandle
	offs   []int32  // len = Len()+1; path h occupies edges[offs[h]:offs[h+1]]
	edges  []EdgeID // flat arena of all interned sequences
}

// NewPathInterner returns an empty interner.
func NewPathInterner() *PathInterner {
	return &PathInterner{
		byHash: make(map[uint64][]PathHandle, 64),
		offs:   []int32{0},
	}
}

// Len returns the number of distinct paths interned.
func (t *PathInterner) Len() int { return len(t.offs) - 1 }

// Intern returns the handle of the given edge sequence, adding it to the
// table when new. The input slice is copied on first insertion and may be
// reused by the caller.
func (t *PathInterner) Intern(edges []EdgeID) PathHandle {
	h := hashEdges(edges)
	for _, cand := range t.byHash[h] {
		if edgesEqual(t.Edges(cand), edges) {
			return cand
		}
	}
	handle := PathHandle(t.Len())
	t.edges = append(t.edges, edges...)
	t.offs = append(t.offs, int32(len(t.edges)))
	t.byHash[h] = append(t.byHash[h], handle)
	return handle
}

// Edges returns the interned edge sequence of h as a view into the arena;
// the caller must not modify it.
func (t *PathInterner) Edges(h PathHandle) []EdgeID {
	return t.edges[t.offs[h]:t.offs[h+1]:t.offs[h+1]]
}

// Path returns a freshly-allocated Path copy of h, safe to hand to callers
// that may retain or mutate it.
func (t *PathInterner) Path(h PathHandle) Path {
	src := t.Edges(h)
	out := make([]EdgeID, len(src))
	copy(out, src)
	return Path{Edges: out}
}

// CompareEdges orders two edge sequences lexicographically by numeric edge
// id (shorter prefix first), returning -1, 0 or +1. For tie-breaking that
// must reproduce the historical Path.Key() string order, use
// ComparePathKeys instead — decimal-string order differs from numeric
// order.
func CompareEdges(a, b []EdgeID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// ComparePathKeys orders two edge sequences exactly as the historical
// Path.Key() strings ("e0,e1,...") compare lexicographically, without
// building the strings. This is the drop-in replacement for Key()-based
// tie-breaking: because digits sort above the ',' separator, string order
// differs from the numeric order of CompareEdges (e.g. Key "10,2" sorts
// before "2,10", but also "1,22" before "10,2"), and preserving it keeps
// equal-weight tie-breaks — and therefore sampled schedules — identical to
// the pre-interning implementation.
func ComparePathKeys(a, b []EdgeID) int {
	var abuf, bbuf [24]byte
	ai, bi := 0, 0 // next element index per sequence
	var as, bs []byte
	for {
		if len(as) == 0 {
			if ai >= len(a) {
				if len(bs) == 0 && bi >= len(b) {
					return 0
				}
				return -1 // a exhausted first: shorter prefix sorts first
			}
			as = appendKeyElem(abuf[:0], a, ai)
			ai++
		}
		if len(bs) == 0 {
			if bi >= len(b) {
				return 1
			}
			bs = appendKeyElem(bbuf[:0], b, bi)
			bi++
		}
		n := len(as)
		if len(bs) < n {
			n = len(bs)
		}
		for i := 0; i < n; i++ {
			switch {
			case as[i] < bs[i]:
				return -1
			case as[i] > bs[i]:
				return 1
			}
		}
		as, bs = as[n:], bs[n:]
	}
}

// appendKeyElem renders element idx of edges as it appears in Path.Key():
// its decimal digits, followed by the ',' separator unless it is last.
func appendKeyElem(buf []byte, edges []EdgeID, idx int) []byte {
	v := int64(edges[idx])
	if v == 0 {
		buf = append(buf, '0')
	} else {
		neg := v < 0
		if neg {
			v = -v
		}
		start := len(buf)
		for v > 0 {
			buf = append(buf, byte('0'+v%10))
			v /= 10
		}
		if neg {
			buf = append(buf, '-')
		}
		for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	if idx < len(edges)-1 {
		buf = append(buf, ',')
	}
	return buf
}

// hashEdges mixes the edge ids with a 64-bit avalanche (splitmix64 finaliser
// per element folded FNV-style). The hash only steers bucket placement in
// the intern table; equality is always confirmed by edgesEqual.
func hashEdges(edges []EdgeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range edges {
		x := uint64(e)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		h = (h ^ x) * prime64
	}
	return h
}

func edgesEqual(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
