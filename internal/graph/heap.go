package graph

// heapItem is a (node, tentative distance) pair in the Dijkstra priority
// queue.
type heapItem struct {
	node NodeID
	dist float64
}

// edgeHeap is a minimal binary min-heap specialised for Dijkstra. A
// hand-rolled heap avoids container/heap interface allocations on the hot
// path (the Frank–Wolfe oracle calls Dijkstra thousands of times).
type edgeHeap struct {
	items []heapItem
}

func (h *edgeHeap) len() int { return len(h.items) }

func (h *edgeHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *edgeHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].dist < h.items[smallest].dist {
			smallest = l
		}
		if r < last && h.items[r].dist < h.items[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
