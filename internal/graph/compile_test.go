package graph_test

import (
	"sync"
	"testing"

	"dcnflow/internal/graph"
	"dcnflow/internal/topology"
)

// compileCorpus builds one representative of every topology family the
// scenario vocabulary exposes.
func compileCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	out := make(map[string]*graph.Graph)
	add := func(name string, top *topology.Topology, err error) {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		out[name] = top.Graph
	}
	ft, err := topology.FatTree(4, 10)
	add("fattree-k4", ft, err)
	bc, err := topology.BCube(2, 1, 10)
	add("bcube-2-1", bc, err)
	ls, err := topology.LeafSpine(2, 3, 2, 10)
	add("leafspine", ls, err)
	vl, err := topology.VL2(4, 4, 4, 2, 10)
	add("vl2", vl, err)
	jf, err := topology.Jellyfish(8, 3, 1, 10, 7)
	add("jellyfish", jf, err)
	ln, err := topology.Line(4, 10)
	add("line-4", ln, err)
	st, err := topology.Star(4, 10)
	add("star-4", st, err)
	return out
}

// TestCompileIdempotentAndInvalidated: Compile caches per graph and the
// cache drops on mutation.
func TestCompileIdempotentAndInvalidated(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", graph.KindSwitch)
	b := g.AddNode("b", graph.KindSwitch)
	if _, _, err := g.AddBiEdge(a, b, 5); err != nil {
		t.Fatal(err)
	}
	c1 := graph.Compile(g)
	if c2 := graph.Compile(g); c2 != c1 {
		t.Fatal("Compile is not cached: two calls returned distinct bundles")
	}
	if c1.Graph() != g || c1.CSR() != g.CSR() {
		t.Fatal("compiled bundle does not reference the graph's own views")
	}
	fp := c1.Fingerprint()
	if fp != g.Fingerprint() {
		t.Fatal("compiled fingerprint differs from the graph's")
	}
	g.AddNode("c", graph.KindHost)
	c3 := graph.Compile(g)
	if c3 == c1 {
		t.Fatal("mutation did not invalidate the compiled cache")
	}
	if c3.Fingerprint() == fp {
		t.Fatal("adding a node did not change the fingerprint")
	}
}

// TestFingerprintSensitivity: structurally equal builds hash equal; any
// structural change (edge, capacity, node kind) changes the hash.
func TestFingerprintSensitivity(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		a := g.AddNode("a", graph.KindSwitch)
		b := g.AddNode("b", graph.KindHost)
		if _, err := g.AddEdge(a, b, 3); err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := build(), build()
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical builds produced different fingerprints")
	}
	// Renaming nodes must not change the hash (labels are report-only).
	g3 := graph.New()
	a := g3.AddNode("other", graph.KindSwitch)
	b := g3.AddNode("names", graph.KindHost)
	if _, err := g3.AddEdge(a, b, 3); err != nil {
		t.Fatal(err)
	}
	if g3.Fingerprint() != g1.Fingerprint() {
		t.Fatal("node names leaked into the fingerprint")
	}
	// Capacity change must.
	g4 := graph.New()
	a = g4.AddNode("a", graph.KindSwitch)
	b = g4.AddNode("b", graph.KindHost)
	if _, err := g4.AddEdge(a, b, 4); err != nil {
		t.Fatal(err)
	}
	if g4.Fingerprint() == g1.Fingerprint() {
		t.Fatal("capacity change did not change the fingerprint")
	}
	// Node kind change must.
	g5 := graph.New()
	a = g5.AddNode("a", graph.KindSwitch)
	b = g5.AddNode("b", graph.KindSwitch)
	if _, err := g5.AddEdge(a, b, 3); err != nil {
		t.Fatal(err)
	}
	if g5.Fingerprint() == g1.Fingerprint() {
		t.Fatal("node kind change did not change the fingerprint")
	}
	// Distinct topology seeds must (jellyfish wirings differ).
	j1, err := topology.Jellyfish(8, 3, 1, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := topology.Jellyfish(8, 3, 1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if j1.Graph.Fingerprint() == j2.Graph.Fingerprint() {
		t.Fatal("distinct jellyfish wirings share a fingerprint")
	}
}

// TestCompiledReverseAdjacency: the flat reverse arrays agree with
// Graph.InEdges slot for slot, and every directed edge appears exactly once.
func TestCompiledReverseAdjacency(t *testing.T) {
	for name, g := range compileCorpus(t) {
		c := graph.Compile(g)
		total := 0
		for v := 0; v < g.NumNodes(); v++ {
			lo, hi := c.RStart[v], c.RStart[v+1]
			in := g.InEdges(graph.NodeID(v))
			if int(hi-lo) != len(in) {
				t.Fatalf("%s: node %d has %d reverse slots, want %d", name, v, hi-lo, len(in))
			}
			for k, eid := range in {
				if c.RAdjEdge[lo+int32(k)] != eid {
					t.Fatalf("%s: node %d reverse slot %d holds edge %d, want %d",
						name, v, k, c.RAdjEdge[lo+int32(k)], eid)
				}
				e := g.MustEdge(eid)
				if c.RAdjFrom[lo+int32(k)] != e.From || e.To != graph.NodeID(v) {
					t.Fatalf("%s: node %d reverse slot %d disagrees with edge %d", name, v, k, eid)
				}
			}
			total += len(in)
		}
		if total != g.NumEdges() {
			t.Fatalf("%s: reverse adjacency covers %d edges, want %d", name, total, g.NumEdges())
		}
	}
}

// TestCompiledShortestPathMatchesGraph: the pooled-scratch shortest path is
// bit-identical to the historical Graph.ShortestPath on every node pair of
// every topology family — same paths (not just same lengths), same errors.
func TestCompiledShortestPathMatchesGraph(t *testing.T) {
	for name, g := range compileCorpus(t) {
		c := graph.Compile(g)
		n := g.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				src, dst := graph.NodeID(s), graph.NodeID(d)
				want, wantErr := g.ShortestPath(src, dst)
				got, gotErr := c.ShortestPath(src, dst)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: %d->%d error mismatch: graph %v, compiled %v", name, s, d, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if want.Key() != got.Key() {
					t.Fatalf("%s: %d->%d path mismatch: graph %s, compiled %s", name, s, d, want.Key(), got.Key())
				}
			}
		}
	}
}

// TestCompiledShortestPathConcurrent: the scratch pool serves concurrent
// callers without cross-talk (run under -race by make test-race-online).
func TestCompiledShortestPathConcurrent(t *testing.T) {
	ft, err := topology.FatTree(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	g := ft.Graph
	c := graph.Compile(g)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(ft.Hosts); i++ {
				for j := 0; j < len(ft.Hosts); j++ {
					if i == j {
						continue
					}
					want, err := g.ShortestPath(ft.Hosts[i], ft.Hosts[j])
					if err != nil {
						errs <- err
						return
					}
					got, err := c.ShortestPath(ft.Hosts[i], ft.Hosts[j])
					if err != nil {
						errs <- err
						return
					}
					if want.Key() != got.Key() {
						errs <- errMismatch{want.Key(), got.Key()}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{ want, got string }

func (e errMismatch) Error() string {
	return "concurrent compiled shortest path diverged: want " + e.want + ", got " + e.got
}
