package graph

import "unsafe"

// cacheLine is the slab alignment used for the hot-path arrays: the
// renumbered CSR's slot streams and the SSSP label array. Starting each
// slab on a 64-byte boundary makes the "labels per cache line" packing of
// nodeState exact (4 per line) and keeps the slot streams from straddling
// an extra line per row.
const cacheLine = 64

// alignedSlab returns a zeroed length-n slice of T whose backing storage
// starts on a cache-line boundary. T must be a pointer-free type (the
// storage is a byte array the collector does not scan); every use in this
// package is a plain numeric record. n == 0 yields nil.
func alignedSlab[T any](n int) []T {
	if n == 0 {
		return nil
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	buf := make([]byte, n*size+cacheLine-1)
	off := 0
	if r := int(uintptr(unsafe.Pointer(&buf[0])) & (cacheLine - 1)); r != 0 {
		off = cacheLine - r
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&buf[off])), n)
}
