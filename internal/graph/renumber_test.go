package graph_test

import (
	"errors"
	"testing"

	"dcnflow/internal/graph"
)

// TestFingerprintRenumberStability is the cache-keying guard for the
// BFS-renumbered hot layout: the fingerprint is a function of the Graph
// alone, so the renumbered compile, the identity compile and the graph
// itself must all report one value — otherwise the Engine's
// fingerprint-routed caches could double-cache a hot topology. Run under
// -race by make test-race-online.
func TestFingerprintRenumberStability(t *testing.T) {
	sawRenumbered := false
	for name, g := range compileCorpus(t) {
		want := g.Fingerprint()
		c := graph.Compile(g)
		ci := graph.CompileIdentity(g)
		if c.Fingerprint() != want {
			t.Fatalf("%s: renumbered compile fingerprint %x, graph %x", name, c.Fingerprint(), want)
		}
		if ci.Fingerprint() != want {
			t.Fatalf("%s: identity compile fingerprint %x, graph %x", name, ci.Fingerprint(), want)
		}
		if ci.CSR() != ci.Hot() {
			t.Fatalf("%s: identity compile's hot view is not the graph CSR", name)
		}
		for v := 0; v < g.NumNodes(); v++ {
			id := graph.NodeID(v)
			if c.FromHot(c.ToHot(id)) != id {
				t.Fatalf("%s: perm/inv are not inverse at node %d", name, v)
			}
			if c.ToHot(id) != id {
				sawRenumbered = true
			}
			if ci.ToHot(id) != id || ci.FromHot(id) != id {
				t.Fatalf("%s: identity compile permutes node %d", name, v)
			}
		}
	}
	if !sawRenumbered {
		t.Fatal("no corpus family was actually renumbered; the stability guard is vacuous")
	}
}

// TestRenumberHotViewStructure pins the hot view's layout contract: node
// indices in hot space, edge ids original, per-node slot rows in ascending
// original-edge-id order (the tie-break substrate), and capacities carried
// through untouched.
func TestRenumberHotViewStructure(t *testing.T) {
	for name, g := range compileCorpus(t) {
		c := graph.Compile(g)
		hot, orig := c.Hot(), g.CSR()
		if hot.NumNodes() != orig.NumNodes() || hot.NumEdges() != orig.NumEdges() {
			t.Fatalf("%s: hot view dims %dx%d, want %dx%d",
				name, hot.NumNodes(), hot.NumEdges(), orig.NumNodes(), orig.NumEdges())
		}
		for h := 0; h < hot.NumNodes(); h++ {
			u := c.FromHot(graph.NodeID(h))
			row := hot.AdjEdge[hot.Start[h]:hot.Start[h+1]]
			want := g.OutEdges(u)
			if len(row) != len(want) {
				t.Fatalf("%s: hot node %d has %d slots, original node %d has %d",
					name, h, len(row), u, len(want))
			}
			for k, eid := range row {
				if eid != want[k] {
					t.Fatalf("%s: hot node %d slot %d holds edge %d, want %d (ascending original ids)",
						name, h, k, eid, want[k])
				}
				e := g.MustEdge(eid)
				if hot.AdjTo[hot.Start[h]+int32(k)] != c.ToHot(e.To) {
					t.Fatalf("%s: hot slot head of edge %d is not the hot id of its To", name, eid)
				}
			}
		}
		for i := 0; i < g.NumEdges(); i++ {
			e := g.MustEdge(graph.EdgeID(i))
			if hot.EdgeFrom[i] != c.ToHot(e.From) || hot.EdgeTo[i] != c.ToHot(e.To) {
				t.Fatalf("%s: hot EdgeFrom/EdgeTo[%d] disagree with the permuted endpoints", name, i)
			}
			if hot.Cap[i] != e.Capacity {
				t.Fatalf("%s: hot Cap[%d] = %v, want %v", name, i, hot.Cap[i], e.Capacity)
			}
		}
	}
}

// TestBatchShortestPathsMatchesPerQuery: the shared-frontier batch answers
// exactly what per-query ShortestPath answers, over every node pair of
// every family (including src==dst empties).
func TestBatchShortestPathsMatchesPerQuery(t *testing.T) {
	for name, g := range compileCorpus(t) {
		c := graph.Compile(g)
		n := g.NumNodes()
		var queries []graph.PathQuery
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				queries = append(queries, graph.PathQuery{Src: graph.NodeID(s), Dst: graph.NodeID(d)})
			}
		}
		paths, failed, err := c.BatchShortestPaths(queries)
		if err != nil {
			t.Fatalf("%s: batch failed at query %d: %v", name, failed, err)
		}
		for i, q := range queries {
			want, wantErr := c.ShortestPath(q.Src, q.Dst)
			if wantErr != nil {
				t.Fatalf("%s: per-query %d->%d failed: %v", name, q.Src, q.Dst, wantErr)
			}
			if want.Key() != paths[i].Key() {
				t.Fatalf("%s: %d->%d batch path %s, per-query %s", name, q.Src, q.Dst, paths[i].Key(), want.Key())
			}
		}
	}
}

// TestBatchShortestPathsErrors: the batch reports the FIRST failing query
// in input order with ShortestPath's exact error classes, even when an
// earlier-indexed failure is discovered later (unreachable vs unknown
// node).
func TestBatchShortestPathsErrors(t *testing.T) {
	g := graph.New()
	a := g.AddNode("a", graph.KindSwitch)
	b := g.AddNode("b", graph.KindSwitch)
	iso := g.AddNode("iso", graph.KindSwitch) // no edges: unreachable
	if _, _, err := g.AddBiEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	c := graph.Compile(g)

	// Unreachable before unknown-node: index 0 must win even though the
	// unknown node is detectable earlier in the pipeline.
	_, failed, err := c.BatchShortestPaths([]graph.PathQuery{
		{Src: a, Dst: iso},
		{Src: a, Dst: graph.NodeID(99)},
	})
	if failed != 0 || !errors.Is(err, graph.ErrNoPath) {
		t.Fatalf("failed=%d err=%v, want index 0 wrapping ErrNoPath", failed, err)
	}
	_, failed, err = c.BatchShortestPaths([]graph.PathQuery{
		{Src: a, Dst: graph.NodeID(99)},
		{Src: a, Dst: iso},
	})
	if failed != 0 || !errors.Is(err, graph.ErrNodeNotFound) {
		t.Fatalf("failed=%d err=%v, want index 0 wrapping ErrNodeNotFound", failed, err)
	}
	// All-good batch reports failed = -1.
	paths, failed, err := c.BatchShortestPaths([]graph.PathQuery{{Src: a, Dst: b}, {Src: b, Dst: b}})
	if err != nil || failed != -1 {
		t.Fatalf("good batch: failed=%d err=%v", failed, err)
	}
	if len(paths[0].Edges) != 1 || len(paths[1].Edges) != 0 {
		t.Fatalf("good batch paths: %v", paths)
	}
}
