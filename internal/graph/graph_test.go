package graph

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func buildDiamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindSwitch)
	c := g.AddNode("c", KindSwitch)
	d := g.AddNode("d", KindHost)
	mustBi := func(x, y NodeID) {
		if _, _, err := g.AddBiEdge(x, y, 10); err != nil {
			t.Fatalf("AddBiEdge(%d,%d): %v", x, y, err)
		}
	}
	mustBi(a, b)
	mustBi(a, c)
	mustBi(b, d)
	mustBi(c, d)
	return g, a, b, c, d
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindCoreSwitch)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	e, err := g.AddEdge(a, b, 5)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	got, err := g.Edge(e)
	if err != nil {
		t.Fatalf("Edge: %v", err)
	}
	if got.From != a || got.To != b || got.Capacity != 5 {
		t.Fatalf("Edge = %+v, want from=%d to=%d cap=5", got, a, b)
	}
	if len(g.OutEdges(a)) != 1 || len(g.InEdges(b)) != 1 {
		t.Fatalf("adjacency wrong: out(a)=%v in(b)=%v", g.OutEdges(a), g.InEdges(b))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	tests := []struct {
		name     string
		from, to NodeID
		cap      float64
	}{
		{"missing from", 99, a, 1},
		{"missing to", a, 99, 1},
		{"zero capacity", a, a, 0},
		{"negative capacity", a, a, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.from, tt.to, tt.cap); err == nil {
				t.Fatalf("AddEdge(%d,%d,%v) succeeded, want error", tt.from, tt.to, tt.cap)
			}
		})
	}
}

func TestNodeEdgeLookupErrors(t *testing.T) {
	g := New()
	if _, err := g.Node(0); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("Node(0) err = %v, want ErrNodeNotFound", err)
	}
	if _, err := g.Edge(0); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("Edge(0) err = %v, want ErrEdgeNotFound", err)
	}
	if g.MustEdge(3) != (Edge{}) {
		t.Fatal("MustEdge(invalid) should return zero Edge")
	}
}

func TestShortestPathHopCount(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	p, err := g.ShortestPath(a, d)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if p.Len() != 2 {
		t.Fatalf("path length = %d, want 2", p.Len())
	}
	if err := p.Validate(g, a, d); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestShortestPathDeterministic(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	p1, err := g.ShortestPath(a, d)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	for i := 0; i < 10; i++ {
		p2, err := g.ShortestPath(a, d)
		if err != nil {
			t.Fatalf("ShortestPath: %v", err)
		}
		if p1.Key() != p2.Key() {
			t.Fatalf("nondeterministic shortest path: %s vs %s", p1, p2)
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g, a, _, _, _ := buildDiamond(t)
	p, err := g.ShortestPath(a, a)
	if err != nil {
		t.Fatalf("ShortestPath(a,a): %v", err)
	}
	if p.Len() != 0 {
		t.Fatalf("self path length = %d, want 0", p.Len())
	}
}

func TestShortestPathNoPath(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	if _, err := g.ShortestPath(a, b); !errors.Is(err, ErrNoPath) {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathWeighted(t *testing.T) {
	// a -> b (cost 1) -> d (cost 1); a -> c (cost 0.1) -> d (cost 0.1):
	// weighted route must use c even though both are two hops.
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindSwitch)
	c := g.AddNode("c", KindSwitch)
	d := g.AddNode("d", KindHost)
	ab, _ := g.AddEdge(a, b, 1)
	ac, _ := g.AddEdge(a, c, 1)
	bd, _ := g.AddEdge(b, d, 1)
	cd, _ := g.AddEdge(c, d, 1)
	cost := map[EdgeID]float64{ab: 1, bd: 1, ac: 0.1, cd: 0.1}
	p, err := g.ShortestPathWeighted(a, d, func(e Edge) float64 { return cost[e.ID] })
	if err != nil {
		t.Fatalf("ShortestPathWeighted: %v", err)
	}
	want := Path{Edges: []EdgeID{ac, cd}}
	if p.Key() != want.Key() {
		t.Fatalf("path = %s, want %s", p, want)
	}
}

// TestShortestPathFloatAbsorptionNoCycle pins the predecessor-cycle bug:
// a bidirectional pair of near-zero-weight edges reached via a huge-weight
// edge makes the return relaxation land on an *equal* float distance
// (absorption). The old equal-distance tie-break then rewrote the
// finalised node's predecessor, creating a pred cycle and an unterminated
// reconstruction.
func TestShortestPathFloatAbsorptionNoCycle(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindSwitch)
	b := g.AddNode("b", KindSwitch)
	x := g.AddNode("x", KindHost)
	// Edge ids 0 (a->b) and 1 (b->a) are smaller than the entry edge 2.
	if _, _, err := g.AddBiEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(x, a, 1); err != nil {
		t.Fatal(err)
	}
	weights := map[EdgeID]float64{0: 1e-12, 1: 1e-12, 2: 1e7}
	done := make(chan struct{})
	var p Path
	var err error
	go func() {
		defer close(done)
		p, err = g.ShortestPathWeighted(x, b, func(e Edge) float64 { return weights[e.ID] })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ShortestPathWeighted did not terminate (pred cycle)")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g, x, b); err != nil {
		t.Fatal(err)
	}
}

func TestShortestPathNegativeWeight(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	if _, err := g.AddEdge(a, b, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ShortestPathWeighted(a, b, func(Edge) float64 { return -1 }); err == nil {
		t.Fatal("negative weight accepted, want error")
	}
}

func TestPathValidateRejects(t *testing.T) {
	g, a, b, c, d := buildDiamond(t)
	good, err := g.ShortestPath(a, d)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		p    Path
		src  NodeID
		dst  NodeID
	}{
		{"wrong destination", good, a, b},
		{"wrong source", good, c, d},
		{"disconnected hops", Path{Edges: []EdgeID{good.Edges[0], good.Edges[0]}}, a, d},
		{"empty but distinct endpoints", Path{}, a, d},
		{"bogus edge id", Path{Edges: []EdgeID{999}}, a, d},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(g, tt.src, tt.dst); err == nil {
				t.Fatal("Validate accepted an invalid path")
			}
		})
	}
}

func TestPathNodesAndClone(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	p, err := g.ShortestPath(a, d)
	if err != nil {
		t.Fatal(err)
	}
	nodes := p.Nodes(g)
	if len(nodes) != p.Len()+1 {
		t.Fatalf("Nodes len = %d, want %d", len(nodes), p.Len()+1)
	}
	if nodes[0] != a || nodes[len(nodes)-1] != d {
		t.Fatalf("Nodes endpoints = %v, want %d..%d", nodes, a, d)
	}
	cl := p.Clone()
	cl.Edges[0] = 999
	if p.Edges[0] == 999 {
		t.Fatal("Clone shares backing array with original")
	}
}

func TestKShortestPathsDiamond(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	paths, err := g.KShortestPaths(a, d, 4, nil)
	if err != nil {
		t.Fatalf("KShortestPaths: %v", err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d simple paths, want 2 (diamond)", len(paths))
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if err := p.Validate(g, a, d); err != nil {
			t.Fatalf("invalid path %s: %v", p, err)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate path %s", p)
		}
		seen[p.Key()] = true
		if p.Len() != 2 {
			t.Fatalf("diamond path length = %d, want 2", p.Len())
		}
	}
}

func TestKShortestPathsOrdering(t *testing.T) {
	// Line with a long detour: the 2nd shortest path must be the detour.
	g := New()
	a := g.AddNode("a", KindHost)
	m := g.AddNode("m", KindSwitch)
	x := g.AddNode("x", KindSwitch)
	y := g.AddNode("y", KindSwitch)
	b := g.AddNode("b", KindHost)
	must := func(from, to NodeID) EdgeID {
		id, err := g.AddEdge(from, to, 1)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	must(a, m)
	must(m, b)
	must(a, x)
	must(x, y)
	must(y, b)
	paths, err := g.KShortestPaths(a, b, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Len() != 2 || paths[1].Len() != 3 {
		t.Fatalf("path lengths = %d,%d want 2,3", paths[0].Len(), paths[1].Len())
	}
}

func TestKShortestZero(t *testing.T) {
	g, a, _, _, d := buildDiamond(t)
	paths, err := g.KShortestPaths(a, d, 0, nil)
	if err != nil || paths != nil {
		t.Fatalf("k=0: got %v, %v; want nil, nil", paths, err)
	}
}

func TestConnected(t *testing.T) {
	g, a, b, _, d := buildDiamond(t)
	iso := g.AddNode("iso", KindHost)
	if !g.Connected(a, d) || !g.Connected(a, b) || !g.Connected(a, a) {
		t.Fatal("expected connectivity within diamond")
	}
	if g.Connected(a, iso) {
		t.Fatal("isolated node reported reachable")
	}
	if g.Connected(999, a) {
		t.Fatal("invalid node reported reachable")
	}
}

func TestReverse(t *testing.T) {
	g := New()
	a := g.AddNode("a", KindHost)
	b := g.AddNode("b", KindHost)
	e1, e2, err := g.AddBiEdge(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := g.Reverse(e1); !ok || r != e2 {
		t.Fatalf("Reverse(e1) = %d,%v want %d,true", r, ok, e2)
	}
	if r, ok := g.Reverse(e2); !ok || r != e1 {
		t.Fatalf("Reverse(e2) = %d,%v want %d,true", r, ok, e1)
	}
	if _, ok := g.Reverse(999); ok {
		t.Fatal("Reverse(bogus) reported ok")
	}
}

func TestNodesOfKind(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	hosts := g.NodesOfKind(KindHost)
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v, want 2 entries", hosts)
	}
	switches := g.NodesOfKind(KindSwitch)
	if len(switches) != 2 {
		t.Fatalf("switches = %v, want 2 entries", switches)
	}
}

func TestCopySemantics(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	nodes := g.Nodes()
	nodes[0].Name = "mutated"
	n, err := g.Node(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name == "mutated" {
		t.Fatal("Nodes() exposes internal state")
	}
	edges := g.Edges()
	edges[0].Capacity = -5
	e, err := g.Edge(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Capacity == -5 {
		t.Fatal("Edges() exposes internal state")
	}
}

func TestDOT(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	dot := g.DOT()
	for _, want := range []string{"digraph dcn", "n0", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	kinds := map[NodeKind]string{
		KindHost:       "host",
		KindEdgeSwitch: "edge",
		KindAggSwitch:  "agg",
		KindCoreSwitch: "core",
		KindSwitch:     "switch",
		KindUnknown:    "unknown",
		NodeKind(42):   "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("NodeKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// randomConnectedGraph builds a connected random graph with n nodes for the
// property tests: a spanning chain plus extra random bi-edges.
func randomConnectedGraph(rng *rand.Rand, n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddNode("n", KindSwitch)
	}
	for i := 1; i < n; i++ {
		_, _, _ = g.AddBiEdge(NodeID(i-1), NodeID(i), 1)
	}
	extra := rng.Intn(2 * n)
	for i := 0; i < extra; i++ {
		a := NodeID(rng.Intn(n))
		b := NodeID(rng.Intn(n))
		if a != b {
			_, _, _ = g.AddBiEdge(a, b, 1)
		}
	}
	return g
}

func TestPropertyShortestPathsAreValidAndMinimal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := randomConnectedGraph(rng, n)
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		p, err := g.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		if err := p.Validate(g, src, dst); err != nil {
			return false
		}
		// BFS distance agrees with path length.
		return bfsDistance(g, src, dst) == p.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKShortestSortedAndSimple(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := randomConnectedGraph(rng, n)
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		if src == dst {
			return true
		}
		paths, err := g.KShortestPaths(src, dst, 5, nil)
		if err != nil {
			return false
		}
		prevLen := 0
		seen := map[string]bool{}
		for _, p := range paths {
			if err := p.Validate(g, src, dst); err != nil {
				return false
			}
			if p.Len() < prevLen {
				return false // must be nondecreasing
			}
			prevLen = p.Len()
			if seen[p.Key()] {
				return false
			}
			seen[p.Key()] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func bfsDistance(g *Graph, src, dst NodeID) int {
	if src == dst {
		return 0
	}
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.OutEdges(u) {
			v := g.MustEdge(eid).To
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if v == dst {
					return dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return -1
}
