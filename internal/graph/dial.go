package graph

import "math"

// MaxDialSpan bounds the weight span (largest weight divided by the
// quantum) TreeDial accepts. The bound serves two purposes: it caps the
// bucket array at MaxDialSpan+1 entries, and it keeps the accumulated
// floating-point drift of path distances far below half a quantum, which
// is what makes bucket classification — and therefore the whole dial
// traversal — provably identical to the binary-heap Dijkstra (see the
// TreeDial contract). With span <= 256 and up to ~10^6-node graphs, the
// worst-case drift is below 2^-4 of a bucket.
const MaxDialSpan = 256

// QuantizeWeights reports whether the slot-ordered weights w are exact
// positive integer multiples of their minimum — w[i] == k_i * q for
// integer k_i in [1, maxSpan], with q the smallest weight — and returns
// the quantum q and the span max(k_i). This is the selection test for
// TreeDial: the all-ones hop weights of cold-start sweeps and unit-weight
// shortest paths quantize with span 1, while the Frank–Wolfe oracle's
// marginal-cost weights (arbitrary floats) are rejected and fall back to
// the heap. The multiples must hold under exact float64 equality, so a
// positive answer certifies that bucket arithmetic reproduces heap
// arithmetic bit for bit.
func QuantizeWeights(w []float64, maxSpan int) (q float64, span int, ok bool) {
	if len(w) == 0 {
		return 0, 0, false
	}
	q = math.Inf(1)
	for _, wt := range w {
		if wt < q {
			q = wt
		}
	}
	if q <= 0 || math.IsInf(q, 1) {
		return 0, 0, false
	}
	limit := float64(maxSpan)
	for _, wt := range w {
		r := wt / q
		if r > limit {
			return 0, 0, false
		}
		k := math.Floor(r + 0.5)
		if k < 1 || k*q != wt {
			return 0, 0, false
		}
		if int(k) > span {
			span = int(k)
		}
	}
	return q, span, true
}

// TreeDial is Tree on a circular Dial bucket queue instead of the binary
// heap: nodes are filed into span+1 distance buckets of width quantum and
// drained in ascending bucket order, so a full tree build costs O(E +
// B) with no per-node log factor — the win that makes unit-weight sweeps
// over 10k-node fabrics cheap. It requires the weight contract certified
// by QuantizeWeights: every slot weight is exactly k*quantum for an
// integer k in [1, span]. Callers that cannot certify it must use Tree.
//
// The result is bit-identical to Tree on the same weights: distances are
// accumulated with the same float64 additions, labels use the same
// epoch-stamped nodeState updates and the same tie-break (a finalised
// node is never relabelled; among exactly-equal distances the smaller
// predecessor edge id wins). Identity does not depend on within-bucket
// ordering: every offer a node receives comes from a strictly smaller
// bucket (weights are >= quantum), so all offers land before the node
// finalises, and "minimum distance, then minimum edge id" is
// order-independent. Offers arriving after finalisation are strictly
// worse under both traversals and rejected by the same comparisons.
// TestTreeDialMatchesTree cross-checks the equivalence on randomized
// weights.
func (s *SSSPScratch) TreeDial(src NodeID, dsts []NodeID, quantum float64, span int) {
	ep, remaining := s.beginEpoch(dsts)
	nodes := s.node
	wSlot := s.wSlot
	eids, tos, starts := s.csr.slotEid, s.csr.slotTo, s.csr.Start

	keep := uint32(0)
	if st := nodes[src].stamp; st-ep < epochStride {
		keep = st & fNeed
	}
	nodes[src] = nodeState{dist: 0, pred: int32(unreachedPred), stamp: ep | fSeen | keep}

	if span == 1 {
		// Uniform fast path: span == 1 certifies every slot weight IS the
		// quantum, so the weight stream never needs reading (nd = levelDist
		// + quantum is the same float64 addition relaxation would perform —
		// every node pushed into one level carries the same distance), and
		// the two live buckets degenerate into a pair of level frontiers.
		// With no duplicate entries (a live node's distance never improves
		// under uniform weights, so a tie-break-only update leaves its
		// entry valid), an entry is just the node id — 4 bytes instead of
		// 16 — and the pop-side staleness checks of the general drain
		// (finalised-already, distance-improved) can never fire. Pops stay
		// LIFO from the end, the same order the bucket stack produced.
		// This is the path for cold-start hop-count sweeps and unit-weight
		// batch queries, which touch only the adjacency heads and labels.
		cur := append(s.frontier[:0], int32(src))
		next := s.nextFrontier[:0]
		d := 0.0
	levels:
		for len(cur) > 0 {
			nd := d + quantum
			for len(cur) > 0 {
				u := cur[len(cur)-1]
				cur = cur[:len(cur)-1]
				su := &nodes[u]
				su.stamp |= fDone
				if su.stamp&fNeed != 0 {
					remaining--
					if remaining == 0 {
						break levels
					}
				}
				base := starts[u]
				row := tos[base:starts[u+1]]
				for k := range row {
					v := row[k]
					st := &nodes[v]
					sv := st.stamp - ep
					if sv&^uint32(fSeen|fNeed) == fDone {
						continue
					}
					if sv >= epochStride {
						st.stamp = ep | fSeen
					} else if sv&fSeen == 0 {
						st.stamp |= fSeen
					} else {
						// Already offered: only the min-edge-id tie-break
						// can apply (a same-level offer is equal, a
						// same-frontier offer is one level higher and
						// fails the equality), and no re-push is needed.
						if nd == st.dist && st.pred != int32(unreachedPred) && eids[base+int32(k)] < eids[st.pred] {
							st.pred = base + int32(k)
						}
						continue
					}
					st.dist = nd
					st.pred = base + int32(k)
					next = append(next, v)
				}
			}
			cur, next = next, cur[:0]
			d = nd
		}
		s.frontier, s.nextFrontier = cur[:0], next[:0]
		s.remaining = remaining
		return
	}

	nb := span + 1
	if len(s.buckets) < nb {
		s.buckets = append(s.buckets, make([][]ssspItem, nb-len(s.buckets))...)
	}
	buckets := s.buckets[:nb]
	// An early-exited previous call may have left entries behind; O(span)
	// clearing here keeps the traversal itself reset-free.
	for i := range buckets {
		buckets[i] = buckets[i][:0]
	}

	buckets[0] = append(buckets[0], ssspItem{node: int32(src), dist: 0})
	pending := 1
	inv := 1 / quantum
	bi := 0 // circular index of the bucket being drained
	for pending > 0 {
		for len(buckets[bi]) == 0 {
			bi++
			if bi == nb {
				bi = 0
			}
		}
		bkt := buckets[bi]
		top := bkt[len(bkt)-1]
		buckets[bi] = bkt[:len(bkt)-1]
		pending--

		u, d := top.node, top.dist
		su := &nodes[u]
		// Bucket entries are all pushed this call, so su's stamp is current.
		if su.stamp&fDone != 0 || d > su.dist {
			continue // stale lazy entry: the node improved or finalised already
		}
		su.stamp |= fDone
		if su.stamp&fNeed != 0 {
			remaining--
			if remaining == 0 {
				break
			}
		}
		base := starts[u]
		row := tos[base:starts[u+1]]
		ws := wSlot[base : base+int32(len(row))]
		for k := range row {
			v := row[k]
			st := &nodes[v]
			sv := st.stamp - ep
			if sv&^uint32(fSeen|fNeed) == fDone {
				// Current and finalised: never rewrite a finalised node's
				// predecessor — same invariant as Tree.
				continue
			}
			nd := d + ws[k]
			if sv >= epochStride {
				st.stamp = ep | fSeen
				st.dist = nd
				st.pred = base + int32(k)
			} else if sv&fSeen == 0 {
				st.stamp |= fSeen
				st.dist = nd
				st.pred = base + int32(k)
			} else if nd < st.dist {
				st.dist = nd
				st.pred = base + int32(k)
			} else if nd == st.dist && st.pred != int32(unreachedPred) && eids[base+int32(k)] < eids[st.pred] {
				// Tie-break-only update: the distance is unchanged, so the
				// node's existing bucket entry is still in the right bucket
				// and a duplicate push would only add a stale pop. (Safe for
				// the dial, where weights >= quantum > 0 mean every offer
				// lands before the node finalises; the heap keeps its
				// historical push sequence.)
				st.pred = base + int32(k)
				continue
			} else {
				continue
			}
			// Bucket index: nd is (up to sub-half-quantum drift) an exact
			// multiple of the quantum, so nearest-integer rounding
			// recovers the unit distance; weights >= quantum guarantee the
			// target bucket is strictly ahead of bi, within the window of
			// span buckets the circular array covers.
			idx := int(uint64(nd*inv+0.5) % uint64(nb))
			buckets[idx] = append(buckets[idx], ssspItem{node: v, dist: nd})
			pending++
		}
	}
	s.remaining = remaining
}
