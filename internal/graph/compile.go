package graph

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Compiled bundles every immutable artifact the hot paths derive from one
// Graph — the flat CSR adjacency, a flat reverse adjacency, the structural
// fingerprint and a pool of reusable shortest-path scratch — built exactly
// once per graph and shared by all consumers. It is the explicit
// compile-once entry point of the compile-once/solve-many architecture:
// solvers and baselines accept a *Compiled instead of rebuilding per-call
// views, and the root-level Engine keys its instance cache by
// Fingerprint-compatible identities.
//
// A Compiled is safe for concurrent use. It must not outlive mutations of
// the underlying graph: AddNode/AddEdge invalidate it (the next Compile
// call rebuilds), and holding a stale Compiled across mutations is a
// caller bug, exactly as for Graph.CSR.
type Compiled struct {
	g   *Graph
	csr *CSR
	fp  uint64

	// Flat reverse adjacency, the mirror of CSR's forward slot arrays:
	// node v's in-slots are RAdjEdge[RStart[v]:RStart[v+1]] in ascending
	// edge-id order (the order Graph.InEdges reports), and RAdjFrom[i] is
	// the tail node of edge RAdjEdge[i]. Algorithms that sweep predecessors
	// (reverse SSSP, backward reachability) read three contiguous arrays
	// instead of chasing per-node slices.
	RStart   []int32
	RAdjEdge []EdgeID
	RAdjFrom []NodeID

	// scratch pools per-topology SSSP state: a Dijkstra run borrows a
	// *SSSPScratch and returns it, so concurrent shortest-path callers on
	// one compiled graph allocate nothing after warm-up.
	scratch sync.Pool
}

// compiledCache holds the lazily-built Compiled; Graph mutations reset it.
type compiledCache struct {
	mu  sync.Mutex
	ptr *Compiled
}

// Compile returns the compiled artifact bundle of g, building and caching
// it on first use (subsequent calls return the same *Compiled until the
// graph mutates). Compiling also builds and caches g.CSR, so Compile
// subsumes the implicit per-call view builds it replaces.
func Compile(g *Graph) *Compiled {
	g.compiled.mu.Lock()
	defer g.compiled.mu.Unlock()
	if c := g.compiled.ptr; c != nil {
		return c
	}
	c := buildCompiled(g)
	g.compiled.ptr = c
	return c
}

func buildCompiled(g *Graph) *Compiled {
	csr := g.CSR()
	n, e := g.NumNodes(), g.NumEdges()
	c := &Compiled{
		g:        g,
		csr:      csr,
		fp:       g.Fingerprint(),
		RStart:   make([]int32, n+1),
		RAdjEdge: make([]EdgeID, 0, e),
		RAdjFrom: make([]NodeID, 0, e),
	}
	for v := 0; v < n; v++ {
		c.RStart[v] = int32(len(c.RAdjEdge))
		for _, eid := range g.in[v] {
			c.RAdjEdge = append(c.RAdjEdge, eid)
			c.RAdjFrom = append(c.RAdjFrom, g.edges[eid].From)
		}
	}
	c.RStart[n] = int32(len(c.RAdjEdge))
	c.scratch.New = func() any { return NewSSSPScratch(csr) }
	return c
}

// Graph returns the compiled graph.
func (c *Compiled) Graph() *Graph { return c.g }

// CSR returns the flat forward adjacency view.
func (c *Compiled) CSR() *CSR { return c.csr }

// Fingerprint returns the structural fingerprint of the compiled graph
// (see Graph.Fingerprint).
func (c *Compiled) Fingerprint() uint64 { return c.fp }

// AcquireScratch borrows reusable SSSP scratch sized for this graph; pair
// it with ReleaseScratch. The scratch is bound to this compiled view and
// must not be used after the underlying graph mutates.
func (c *Compiled) AcquireScratch() *SSSPScratch {
	return c.scratch.Get().(*SSSPScratch)
}

// ReleaseScratch returns scratch obtained from AcquireScratch to the pool.
// Any weight sharing set up with ShareWeightsFrom is severed first, so a
// pooled scratch can never alias a buffer owned by a different borrower.
func (c *Compiled) ReleaseScratch(s *SSSPScratch) {
	if s != nil && s.csr == c.csr {
		s.UnshareWeights()
		c.scratch.Put(s)
	}
}

// ShortestPath returns a minimum-hop path from src to dst with the exact
// deterministic tie-breaking of Graph.ShortestPath (lowest predecessor
// edge id wins among equal-distance labels, finalised nodes are never
// relabelled), computed on pooled epoch-reset scratch instead of
// freshly-allocated Dijkstra state. Results are identical to
// Graph.ShortestPath on every input — asserted exhaustively by
// TestCompiledShortestPathMatchesGraph — only the allocation profile
// differs.
func (c *Compiled) ShortestPath(src, dst NodeID) (Path, error) {
	if !c.g.HasNode(src) || !c.g.HasNode(dst) {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNodeNotFound)
	}
	if src == dst {
		return Path{}, nil
	}
	s := c.AcquireScratch()
	defer c.ReleaseScratch(s)
	w := s.SlotWeights()
	for i := range w {
		w[i] = 1
	}
	// Unit weights quantize trivially (quantum 1, span 1), so the dial
	// bucket queue applies; it is bit-identical to Tree by contract.
	s.TreeDial(src, []NodeID{dst}, 1, 1)
	edges, ok := s.AppendPathTo(dst, nil)
	if !ok {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNoPath)
	}
	return Path{Edges: edges}, nil
}

// Fingerprint returns a structural FNV-1a hash of the graph: node count,
// per-node kinds, and every directed edge's endpoints and capacity bits.
// Two graphs built by the same deterministic generator hash equal; any
// change to the structure (a node, an edge, a capacity) changes the hash.
// Node names are excluded — they label reports, never algorithms. The
// fingerprint identifies compiled artifacts in caches; it is not a
// collision-proof identity, so caches that must never cross-wire distinct
// graphs key by *Graph or *Compiled and use the fingerprint for reporting
// and canonical-spec keys only.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(g.nodes)))
	for i := range g.nodes {
		put(uint64(g.nodes[i].Kind))
	}
	put(uint64(len(g.edges)))
	for i := range g.edges {
		e := &g.edges[i]
		put(uint64(e.From))
		put(uint64(e.To))
		put(math.Float64bits(e.Capacity))
	}
	return h.Sum64()
}
