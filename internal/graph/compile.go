package graph

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Compiled bundles every immutable artifact the hot paths derive from one
// Graph — the flat CSR adjacency, a flat reverse adjacency, a BFS-renumbered
// cache-blocked "hot" CSR with its permutation, the structural fingerprint
// and a pool of reusable shortest-path scratch — built exactly once per
// graph and shared by all consumers. It is the explicit compile-once entry
// point of the compile-once/solve-many architecture: solvers and baselines
// accept a *Compiled instead of rebuilding per-call views, and the
// root-level Engine keys its instance cache by Fingerprint-compatible
// identities.
//
// Renumbering contract: Hot() is the graph re-indexed by a BFS visitation
// order (ToHot/FromHot translate node ids), chosen so that the
// neighbourhoods a frontier expands are contiguous in memory. The hot view
// changes only WHERE labels and adjacency rows live, never WHAT the
// algorithms compute: slot rows keep ascending-original-edge-id order, all
// tie-breaks compare original edge ids (slotEid/pred), and no comparison
// anywhere involves a node id — so every traversal is isomorphic to the
// identity-order one and all outputs (paths, distances, schedules) are
// byte-identical. Fingerprint is computed from the Graph itself and is
// therefore permutation-independent by construction. CompileIdentity
// builds the unrenumbered twin for tests that pin this equivalence.
//
// A Compiled is safe for concurrent use. It must not outlive mutations of
// the underlying graph: AddNode/AddEdge invalidate it (the next Compile
// call rebuilds), and holding a stale Compiled across mutations is a
// caller bug, exactly as for Graph.CSR.
type Compiled struct {
	g   *Graph
	csr *CSR // identity-order view (g.CSR())
	hot *CSR // renumbered, structure-of-arrays, cache-aligned view
	fp  uint64

	// perm maps original node id -> hot id; inv is its inverse. For
	// CompileIdentity both are the identity and hot == csr.
	perm, inv []int32

	// Flat reverse adjacency, the mirror of CSR's forward slot arrays:
	// node v's in-slots are RAdjEdge[RStart[v]:RStart[v+1]] in ascending
	// edge-id order (the order Graph.InEdges reports), and RAdjFrom[i] is
	// the tail node of edge RAdjEdge[i]. Original node space. Algorithms
	// that sweep predecessors (reverse SSSP, backward reachability) read
	// three contiguous arrays instead of chasing per-node slices.
	RStart   []int32
	RAdjEdge []EdgeID
	RAdjFrom []NodeID

	// scratch pools per-topology SSSP state bound to the hot view: a
	// Dijkstra run borrows a *SSSPScratch and returns it, so concurrent
	// shortest-path callers on one compiled graph allocate nothing after
	// warm-up.
	scratch sync.Pool
}

// compiledCache holds the lazily-built Compiled; Graph mutations reset it.
type compiledCache struct {
	mu  sync.Mutex
	ptr *Compiled
}

// Compile returns the compiled artifact bundle of g, building and caching
// it on first use (subsequent calls return the same *Compiled until the
// graph mutates). Compiling also builds and caches g.CSR, so Compile
// subsumes the implicit per-call view builds it replaces.
func Compile(g *Graph) *Compiled {
	g.compiled.mu.Lock()
	defer g.compiled.mu.Unlock()
	if c := g.compiled.ptr; c != nil {
		return c
	}
	c := buildCompiled(g, true)
	g.compiled.ptr = c
	return c
}

// CompileIdentity builds a compiled bundle whose hot view IS the
// identity-order CSR — no renumbering, no repacking. It is never cached on
// the graph (Compile keeps returning the renumbered bundle) and exists so
// tests can pin the byte-identity of renumbered and identity layouts
// end to end. Production callers want Compile.
func CompileIdentity(g *Graph) *Compiled {
	return buildCompiled(g, false)
}

func buildCompiled(g *Graph, renumber bool) *Compiled {
	csr := g.CSR()
	n, e := g.NumNodes(), g.NumEdges()
	c := &Compiled{
		g:        g,
		csr:      csr,
		fp:       g.Fingerprint(),
		RStart:   make([]int32, n+1),
		RAdjEdge: make([]EdgeID, 0, e),
		RAdjFrom: make([]NodeID, 0, e),
	}
	for v := 0; v < n; v++ {
		c.RStart[v] = int32(len(c.RAdjEdge))
		for _, eid := range g.in[v] {
			c.RAdjEdge = append(c.RAdjEdge, eid)
			c.RAdjFrom = append(c.RAdjFrom, g.edges[eid].From)
		}
	}
	c.RStart[n] = int32(len(c.RAdjEdge))
	if renumber {
		c.perm, c.inv = bfsOrder(csr)
		c.hot = buildHotCSR(g, csr, c.perm, c.inv)
	} else {
		c.perm = make([]int32, n)
		c.inv = make([]int32, n)
		for i := range c.perm {
			c.perm[i] = int32(i)
			c.inv[i] = int32(i)
		}
		c.hot = csr
	}
	hot := c.hot
	c.scratch.New = func() any { return NewSSSPScratch(hot) }
	return c
}

// bfsOrder computes the hot-layout permutation: nodes in BFS visitation
// order from node 0 (unreached components restart from the smallest
// unvisited original id), expanding out-edges in ascending original edge-id
// order. The order is a pure function of the graph, so compiles are
// deterministic. inv doubles as the BFS queue — nodes are appended in
// visitation order and expanded FIFO.
func bfsOrder(csr *CSR) (perm, inv []int32) {
	n := csr.NumNodes()
	perm = make([]int32, n)
	inv = make([]int32, 0, n)
	for i := range perm {
		perm[i] = -1
	}
	head := 0
	for root := 0; root < n; root++ {
		if perm[root] >= 0 {
			continue
		}
		perm[root] = int32(len(inv))
		inv = append(inv, int32(root))
		for head < len(inv) {
			u := inv[head]
			head++
			for _, v := range csr.slotTo[csr.Start[u]:csr.Start[u+1]] {
				if perm[v] < 0 {
					perm[v] = int32(len(inv))
					inv = append(inv, v)
				}
			}
		}
	}
	return perm, inv
}

// buildHotCSR repacks the adjacency into the renumbered node space on
// cache-aligned structure-of-arrays slabs. Node indices (Start, AdjTo,
// slotTo, the values of EdgeFrom/EdgeTo) are hot ids; edge ids
// (AdjEdge, slotEid, the indexing of EdgeFrom/EdgeTo/Cap) stay original,
// which is what lets predecessor chains and path extraction emit original
// edge ids with zero translation. Per-node slot rows keep ascending
// original-edge-id order — the node permutation permutes rows, never the
// slots within a row — preserving every tie-break downstream.
func buildHotCSR(g *Graph, csr *CSR, perm, inv []int32) *CSR {
	n, e := g.NumNodes(), g.NumEdges()
	hot := &CSR{
		Start:    alignedSlab[int32](n + 1),
		AdjEdge:  make([]EdgeID, 0, e),
		AdjTo:    make([]NodeID, 0, e),
		EdgeFrom: make([]NodeID, e),
		EdgeTo:   make([]NodeID, e),
		Cap:      csr.Cap, // original-edge-indexed; values are layout-free
		slotEid:  alignedSlab[int32](e)[:0],
		slotTo:   alignedSlab[int32](e)[:0],
	}
	for h := 0; h < n; h++ {
		u := inv[h]
		hot.Start[h] = int32(len(hot.AdjEdge))
		for _, eid := range g.out[u] {
			to := perm[g.edges[eid].To]
			hot.AdjEdge = append(hot.AdjEdge, eid)
			hot.AdjTo = append(hot.AdjTo, NodeID(to))
			hot.slotEid = append(hot.slotEid, int32(eid))
			hot.slotTo = append(hot.slotTo, to)
		}
	}
	hot.Start[n] = int32(len(hot.AdjEdge))
	for i := range g.edges {
		hot.EdgeFrom[i] = NodeID(perm[g.edges[i].From])
		hot.EdgeTo[i] = NodeID(perm[g.edges[i].To])
	}
	return hot
}

// Graph returns the compiled graph.
func (c *Compiled) Graph() *Graph { return c.g }

// CSR returns the flat forward adjacency view in original node order (the
// graph's own CSR). Hot paths that can run in renumbered space should use
// Hot instead.
func (c *Compiled) CSR() *CSR { return c.csr }

// Hot returns the BFS-renumbered cache-blocked adjacency view. Its node
// indices are hot ids (translate with ToHot/FromHot); its edge ids are
// original. Scratch from AcquireScratch is bound to this view.
func (c *Compiled) Hot() *CSR { return c.hot }

// ToHot translates an original node id into the hot (renumbered) space.
func (c *Compiled) ToHot(id NodeID) NodeID { return NodeID(c.perm[id]) }

// FromHot translates a hot node id back to the original space.
func (c *Compiled) FromHot(id NodeID) NodeID { return NodeID(c.inv[id]) }

// Fingerprint returns the structural fingerprint of the compiled graph
// (see Graph.Fingerprint). It is computed from the Graph's own node/edge
// order, so it is identical for renumbered and identity compiles — engine
// caches keyed by it can never double-cache one topology across layouts.
func (c *Compiled) Fingerprint() uint64 { return c.fp }

// AcquireScratch borrows reusable SSSP scratch sized for this graph and
// bound to the hot view (node-id arguments to Tree/TreeDial and friends
// are hot ids; ToHot translates); pair it with ReleaseScratch. The scratch
// must not be used after the underlying graph mutates.
func (c *Compiled) AcquireScratch() *SSSPScratch {
	return c.scratch.Get().(*SSSPScratch)
}

// ReleaseScratch returns scratch obtained from AcquireScratch to the pool.
// Any weight sharing set up with ShareWeightsFrom is severed first, so a
// pooled scratch can never alias a buffer owned by a different borrower.
func (c *Compiled) ReleaseScratch(s *SSSPScratch) {
	if s != nil && s.csr == c.hot {
		s.UnshareWeights()
		c.scratch.Put(s)
	}
}

// ShortestPath returns a minimum-hop path from src to dst with the exact
// deterministic tie-breaking of Graph.ShortestPath (lowest predecessor
// edge id wins among equal-distance labels, finalised nodes are never
// relabelled), computed in renumbered space on pooled epoch-reset scratch
// instead of freshly-allocated Dijkstra state. Results are identical to
// Graph.ShortestPath on every input — asserted exhaustively by
// TestCompiledShortestPathMatchesGraph — only the layout and allocation
// profile differ.
func (c *Compiled) ShortestPath(src, dst NodeID) (Path, error) {
	if !c.g.HasNode(src) || !c.g.HasNode(dst) {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNodeNotFound)
	}
	if src == dst {
		return Path{}, nil
	}
	s := c.AcquireScratch()
	defer c.ReleaseScratch(s)
	w := s.SlotWeights()
	for i := range w {
		w[i] = 1
	}
	// Unit weights quantize trivially (quantum 1, span 1), so the dial
	// bucket queue applies; it is bit-identical to Tree by contract.
	hd := c.ToHot(dst)
	s.TreeDial(c.ToHot(src), []NodeID{hd}, 1, 1)
	edges, ok := s.AppendPathTo(hd, nil)
	if !ok {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNoPath)
	}
	return Path{Edges: edges}, nil
}

// PathQuery is one (src, dst) request for BatchShortestPaths, in original
// node ids.
type PathQuery struct {
	Src, Dst NodeID
}

// BatchShortestPaths answers many unit-weight shortest-path queries with
// one shared-frontier tree build per distinct source: queries are grouped
// by source in first-appearance order and each group runs a single
// early-exiting Dijkstra whose destination watermarks are the group's dst
// set, instead of one full run per query. Results are identical to calling
// ShortestPath per query — destinations only gate the early exit, and a
// label is frozen the moment its node finalises — so the batch is a pure
// cost optimisation. On failure it returns the index of the first failing
// query in input order together with the error (wrapping ErrNodeNotFound
// or ErrNoPath exactly as ShortestPath does); paths is nil in that case.
func (c *Compiled) BatchShortestPaths(queries []PathQuery) (paths []Path, failed int, err error) {
	n := len(queries)
	paths = make([]Path, n)
	errs := make([]error, n)
	type group struct {
		src     NodeID // hot id
		dsts    []NodeID
		members []int
	}
	gidx := make(map[NodeID]int, 8)
	var groups []group
	for i, q := range queries {
		if !c.g.HasNode(q.Src) || !c.g.HasNode(q.Dst) {
			errs[i] = fmt.Errorf("shortest path %d->%d: %w", q.Src, q.Dst, ErrNodeNotFound)
			continue
		}
		if q.Src == q.Dst {
			continue // empty path
		}
		hs := c.ToHot(q.Src)
		gi, ok := gidx[hs]
		if !ok {
			gi = len(groups)
			gidx[hs] = gi
			groups = append(groups, group{src: hs})
		}
		groups[gi].dsts = append(groups[gi].dsts, c.ToHot(q.Dst))
		groups[gi].members = append(groups[gi].members, i)
	}
	if len(groups) > 0 {
		s := c.AcquireScratch()
		w := s.SlotWeights()
		for i := range w {
			w[i] = 1
		}
		for _, gr := range groups {
			s.TreeDial(gr.src, gr.dsts, 1, 1)
			for j, qi := range gr.members {
				edges, ok := s.AppendPathTo(gr.dsts[j], nil)
				if !ok {
					q := queries[qi]
					errs[qi] = fmt.Errorf("shortest path %d->%d: %w", q.Src, q.Dst, ErrNoPath)
					continue
				}
				paths[qi] = Path{Edges: edges}
			}
		}
		c.ReleaseScratch(s)
	}
	for i, e := range errs {
		if e != nil {
			return nil, i, e
		}
	}
	return paths, -1, nil
}

// Fingerprint returns a structural FNV-1a hash of the graph: node count,
// per-node kinds, and every directed edge's endpoints and capacity bits.
// Two graphs built by the same deterministic generator hash equal; any
// change to the structure (a node, an edge, a capacity) changes the hash.
// Node names are excluded — they label reports, never algorithms — and so
// is any compiled-layout artifact such as the hot-view renumbering. The
// fingerprint identifies compiled artifacts in caches; it is not a
// collision-proof identity, so caches that must never cross-wire distinct
// graphs key by *Graph or *Compiled and use the fingerprint for reporting
// and canonical-spec keys only.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(g.nodes)))
	for i := range g.nodes {
		put(uint64(g.nodes[i].Kind))
	}
	put(uint64(len(g.edges)))
	for i := range g.edges {
		e := &g.edges[i]
		put(uint64(e.From))
		put(uint64(e.To))
		put(math.Float64bits(e.Capacity))
	}
	return h.Sum64()
}
