package graph

import (
	"fmt"
	"sync/atomic"
)

// CSR is an immutable flat (compressed-sparse-row) adjacency view of a
// Graph, built once and shared by hot-path shortest-path code. Relative to
// walking Graph.OutEdges + MustEdge, a CSR traversal touches three
// contiguous arrays and copies no Edge structs, which is what lets the
// Frank–Wolfe oracle relax edges allocation- and indirection-free.
//
// The slot arrays (AdjEdge, AdjTo) are grouped by source node: the out-edges
// of node u occupy slots Start[u]..Start[u+1], in ascending edge-id order —
// the same order Graph.OutEdges reports, so tie-breaking behaviour of
// algorithms ported to the CSR is unchanged. The edge-indexed arrays
// (EdgeFrom, EdgeTo, Cap) are addressed by EdgeID.
type CSR struct {
	// Start has length NumNodes()+1; node u's out-slots are
	// AdjEdge[Start[u]:Start[u+1]].
	Start []int32
	// AdjEdge holds the edge id of each slot.
	AdjEdge []EdgeID
	// AdjTo holds the head node of each slot (AdjTo[i] is the To of edge
	// AdjEdge[i]).
	AdjTo []NodeID
	// EdgeFrom, EdgeTo and Cap are indexed by EdgeID.
	EdgeFrom []NodeID
	EdgeTo   []NodeID
	Cap      []float64

	// slots packs (edge id, head node) per adjacency slot into one cache
	// line friendly array for the Dijkstra inner loop.
	slots []adjSlot
}

// adjSlot is the packed per-slot adjacency record used by SSSPScratch.
type adjSlot struct {
	eid int32
	to  int32
}

// NumNodes returns the number of nodes of the underlying graph.
func (c *CSR) NumNodes() int { return len(c.Start) - 1 }

// NumEdges returns the number of directed edges.
func (c *CSR) NumEdges() int { return len(c.AdjEdge) }

// csrCache holds the lazily-built CSR; Graph mutations reset it.
type csrCache struct {
	ptr atomic.Pointer[CSR]
}

// CSR returns the flat adjacency view of g, building and caching it on
// first use. The cache is invalidated by AddNode/AddEdge; concurrent
// readers of an unchanging graph share one CSR. The returned CSR and its
// arrays must not be modified.
func (g *Graph) CSR() *CSR {
	if c := g.csr.ptr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.ptr.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	n, e := len(g.nodes), len(g.edges)
	c := &CSR{
		Start:    make([]int32, n+1),
		AdjEdge:  make([]EdgeID, 0, e),
		AdjTo:    make([]NodeID, 0, e),
		EdgeFrom: make([]NodeID, e),
		EdgeTo:   make([]NodeID, e),
		Cap:      make([]float64, e),
	}
	for i := range g.edges {
		ed := &g.edges[i]
		c.EdgeFrom[i] = ed.From
		c.EdgeTo[i] = ed.To
		c.Cap[i] = ed.Capacity
	}
	c.slots = make([]adjSlot, 0, e)
	for u := 0; u < n; u++ {
		c.Start[u] = int32(len(c.AdjEdge))
		for _, eid := range g.out[u] {
			c.AdjEdge = append(c.AdjEdge, eid)
			c.AdjTo = append(c.AdjTo, g.edges[eid].To)
			c.slots = append(c.slots, adjSlot{eid: int32(eid), to: int32(g.edges[eid].To)})
		}
	}
	c.Start[n] = int32(len(c.AdjEdge))
	return c
}

// unreachedPred marks a node with no predecessor edge in an SSSP tree.
const unreachedPred = EdgeID(-1)

// SSSPScratch is reusable single-source shortest-path state over one CSR:
// distance, predecessor, weight and heap buffers that are reset by bumping
// an epoch counter instead of clearing, so a Dijkstra tree build performs
// zero allocations after warm-up. A scratch is not safe for concurrent use;
// hot paths keep one per worker.
//
// Usage: call SetWeights whenever the edge weights change, then Tree once
// per source; many Tree calls may share one SetWeights (the Frank–Wolfe
// oracle runs one sweep of sources per gradient).
type SSSPScratch struct {
	csr *CSR

	wSlot []float64 // active slot-ordered weights (own, or shared — see ShareWeightsFrom)
	own   []float64 // the scratch's private weight buffer

	node      []nodeState // per-node label: one bounds check, one cache line
	epoch     uint32
	remaining int // wanted destinations not yet finalised

	heap []ssspItem

	buckets [][]ssspItem // circular Dial bucket queue (see TreeDial)

	pathBuf []EdgeID // reversal scratch for AppendPathTo
}

// ssspItem is one (distance, node) heap entry; a single packed array keeps
// sift operations to one swap per level.
type ssspItem struct {
	dist float64
	node int32
}

// nodeState packs one node's entire Dijkstra label — tentative distance,
// predecessor edge, and the epoch stamps that replace per-run clearing
// (dist/pred are valid when seen == epoch, the node is finalised when done
// == epoch, and it is a wanted destination when need == epoch). Keeping the
// label in one 24-byte struct means the relaxation step performs a single
// bounds check and touches at most two cache lines per neighbour.
type nodeState struct {
	dist             float64
	pred             int32
	seen, done, need uint32
}

// NewSSSPScratch allocates scratch state sized for c.
func NewSSSPScratch(c *CSR) *SSSPScratch {
	n := c.NumNodes()
	own := make([]float64, len(c.slots))
	return &SSSPScratch{
		csr:   c,
		wSlot: own,
		own:   own,
		node:  make([]nodeState, n),
		heap:  make([]ssspItem, 0, n),
	}
}

// ShareWeightsFrom points this scratch's weight view at src's buffer, so a
// group of per-worker scratches reads one frozen weight fill instead of
// each copying it — the zero-copy substrate of the oracle's intra-solve
// parallel sweep. Both scratches must be built for the same CSR (a
// mismatch is ignored). While shared, Tree/TreeDial only read the buffer;
// writing through SlotWeights or SetWeights on either scratch writes the
// shared storage, so sharers must treat the weights as frozen. Call
// UnshareWeights (done automatically by Compiled.ReleaseScratch) before
// the scratch is reused independently.
func (s *SSSPScratch) ShareWeightsFrom(src *SSSPScratch) {
	if src != nil && src.csr == s.csr {
		s.wSlot = src.wSlot
	}
}

// UnshareWeights restores the scratch's private weight buffer after a
// ShareWeightsFrom, severing any aliasing with other scratches.
func (s *SSSPScratch) UnshareWeights() { s.wSlot = s.own }

// SetWeights loads the edge-indexed weights w (len NumEdges) into the
// scratch's slot-ordered buffer so the Dijkstra inner loop reads weights
// sequentially, and validates them: weights must be nonnegative.
// Validating here keeps the per-relaxation step branch-free.
func (s *SSSPScratch) SetWeights(w []float64) error {
	slots := s.csr.slots
	for i := range slots {
		wt := w[slots[i].eid]
		if wt < 0 {
			return fmt.Errorf("graph: negative weight %v on edge %d", wt, slots[i].eid)
		}
		s.wSlot[i] = wt
	}
	return nil
}

// SlotWeights exposes the scratch's slot-ordered weight buffer for callers
// that can compute weights directly in slot order (slot i corresponds to
// edge CSR.AdjEdge[i]), skipping SetWeights' gather pass. The caller must
// fill every entry with a nonnegative value before the next Tree call.
func (s *SSSPScratch) SlotWeights() []float64 { return s.wSlot }

// Tree computes the Dijkstra shortest-path tree from src under the weights
// last loaded by SetWeights. When dsts is non-empty, the search stops as
// soon as every listed destination is finalised — predecessors of other
// nodes are then unspecified. Ties are broken exactly like the historical
// oracle: a node finalised once is never relabelled, and among
// equal-distance labels the smaller predecessor edge id wins.
//
// The heap is inlined and all scratch state is hoisted into locals: the
// compiler cannot prove the scratch's slice fields do not alias, so method
// calls and field loads inside the loop would otherwise defeat register
// allocation. The sift code preserves the exact comparison sequence of the
// historical swap-based heap, keeping pop order among equal keys — and
// with it every deterministic tie-break downstream — unchanged.
func (s *SSSPScratch) Tree(src NodeID, dsts []NodeID) {
	s.epoch++
	if s.epoch == 0 { // wrapped: stamps are stale, clear them
		for i := range s.node {
			s.node[i] = nodeState{}
		}
		s.epoch = 1
	}
	ep := s.epoch
	remaining := 0
	for _, d := range dsts {
		if s.node[d].need != ep {
			s.node[d].need = ep
			remaining++
		}
	}
	nodes := s.node
	wSlot := s.wSlot
	slots, starts := s.csr.slots, s.csr.Start

	nodes[src] = nodeState{dist: 0, pred: int32(unreachedPred), seen: ep, need: nodes[src].need}

	h := append(s.heap[:0], ssspItem{node: int32(src), dist: 0})
	for len(h) > 0 {
		// Inline heapPop (hole sift-down of the former last entry). Indices
		// are uint so the prover can drop the bounds checks.
		top := h[0]
		last := uint(len(h)) - 1
		siftv := h[last]
		h = h[:last]
		i := uint(0)
		sd := siftv.dist
		for {
			l, r := 2*i+1, 2*i+2
			// Pick the smaller child first (left wins ties), then compare it
			// against the sifted value: decision-equivalent to checking each
			// child against the running minimum in turn, but the two child
			// loads are independent, which shortens the serial load chain.
			var m uint
			if r < last {
				if h[l].dist <= h[r].dist {
					m = l
				} else {
					m = r
				}
			} else if l < last {
				m = l
			} else {
				break
			}
			if h[m].dist >= sd {
				break
			}
			h[i] = h[m]
			i = m
		}
		if last > 0 {
			h[i] = siftv
		}

		u, d := top.node, top.dist
		su := &nodes[u]
		if su.done == ep || d > su.dist {
			continue
		}
		su.done = ep
		if su.need == ep {
			remaining--
			if remaining == 0 {
				break
			}
		}
		// Sub-slice ranging bounds-checks the adjacency row once; ws is cut
		// to the same bounds so its accesses are provably in range too.
		row := slots[starts[u]:starts[u+1]]
		ws := wSlot[starts[u]:starts[u+1]]
		for k := range row {
			v := row[k].to
			st := &nodes[v]
			if st.done == ep {
				// Never rewrite a finalised node's predecessor: an
				// equal-distance overwrite after finalisation (common under
				// float absorption of tiny weights) can create predecessor
				// cycles and break path reconstruction.
				continue
			}
			nd := d + ws[k]
			if st.seen != ep {
				st.seen = ep
				st.dist = nd
				st.pred = row[k].eid
			} else if nd < st.dist || (nd == st.dist && st.pred != int32(unreachedPred) && row[k].eid < st.pred) {
				st.dist = nd
				st.pred = row[k].eid
			} else {
				continue
			}
			// Inline heapPush (hole sift-up).
			it := ssspItem{node: v, dist: nd}
			h = append(h, it)
			j := uint(len(h)) - 1
			for j > 0 {
				p := (j - 1) / 2
				if h[p].dist <= nd {
					break
				}
				h[j] = h[p]
				j = p
			}
			h[j] = it
		}
	}
	s.heap = h
	s.remaining = remaining
}

// Reached reports whether dst was finalised by the last Tree call.
func (s *SSSPScratch) Reached(dst NodeID) bool { return s.node[dst].done == s.epoch }

// Dist returns the shortest distance to dst from the last Tree call; it is
// meaningful only when Reached(dst).
func (s *SSSPScratch) Dist(dst NodeID) float64 { return s.node[dst].dist }

// AppendPathTo appends the edge ids of the tree path src->dst to buf and
// returns the extended slice. It reports ok=false when dst was not
// finalised by the last Tree call (unreachable, or pruned by the dsts
// early exit). An src==dst query yields an empty path. The appended edges
// reuse no internal storage, but callers that retain the path across Tree
// calls on shared buffers should copy it.
func (s *SSSPScratch) AppendPathTo(dst NodeID, buf []EdgeID) (out []EdgeID, ok bool) {
	ep := s.epoch
	if s.node[dst].done != ep {
		return buf, false
	}
	s.pathBuf = s.pathBuf[:0]
	c := s.csr
	for cur := dst; ; {
		if s.node[cur].seen != ep {
			return buf, false
		}
		eid := s.node[cur].pred
		if eid == int32(unreachedPred) {
			break
		}
		s.pathBuf = append(s.pathBuf, EdgeID(eid))
		cur = c.EdgeFrom[eid]
		if len(s.pathBuf) > c.NumEdges() {
			return buf, false // defensive: corrupted predecessor chain
		}
	}
	for i := len(s.pathBuf) - 1; i >= 0; i-- {
		buf = append(buf, s.pathBuf[i])
	}
	return buf, true
}
