package graph

import (
	"fmt"
	"sync/atomic"
)

// CSR is an immutable flat (compressed-sparse-row) adjacency view of a
// Graph, built once and shared by hot-path shortest-path code. Relative to
// walking Graph.OutEdges + MustEdge, a CSR traversal touches a few
// contiguous arrays and copies no Edge structs, which is what lets the
// Frank–Wolfe oracle relax edges allocation- and indirection-free.
//
// The slot arrays (AdjEdge, AdjTo and their int32 structure-of-arrays twins
// slotEid/slotTo) are grouped by source node: the out-edges of node u occupy
// slots Start[u]..Start[u+1], in ascending edge-id order — the same order
// Graph.OutEdges reports, so tie-breaking behaviour of algorithms ported to
// the CSR is unchanged. The edge-indexed arrays (EdgeFrom, EdgeTo, Cap) are
// addressed by EdgeID.
//
// A CSR may be a *renumbered* view (see Compile): node indices of Start,
// AdjTo, slotTo, EdgeFrom and EdgeTo then live in a permuted "hot" node
// space, while AdjEdge/slotEid and the indexing of EdgeFrom/EdgeTo/Cap stay
// in original edge-id space. Graph.CSR always returns the identity-order
// view.
type CSR struct {
	// Start has length NumNodes()+1; node u's out-slots are
	// AdjEdge[Start[u]:Start[u+1]].
	Start []int32
	// AdjEdge holds the edge id of each slot (always the original edge id,
	// even in renumbered views).
	AdjEdge []EdgeID
	// AdjTo holds the head node of each slot (AdjTo[i] is the To of edge
	// AdjEdge[i], in this view's node space).
	AdjTo []NodeID
	// EdgeFrom, EdgeTo and Cap are indexed by (original) EdgeID. The node
	// ids they hold are in this view's node space.
	EdgeFrom []NodeID
	EdgeTo   []NodeID
	Cap      []float64

	// slotEid / slotTo are the int32 structure-of-arrays twin of
	// (AdjEdge, AdjTo) used by the Dijkstra inner loop: splitting the two
	// streams halves the bytes pulled per relaxation that only needs the
	// head node, and packs twice as many slots per cache line as the old
	// interleaved (eid, to) pair array.
	slotEid []int32
	slotTo  []int32
}

// NumNodes returns the number of nodes of the underlying graph.
func (c *CSR) NumNodes() int { return len(c.Start) - 1 }

// NumEdges returns the number of directed edges.
func (c *CSR) NumEdges() int { return len(c.AdjEdge) }

// csrCache holds the lazily-built CSR; Graph mutations reset it.
type csrCache struct {
	ptr atomic.Pointer[CSR]
}

// CSR returns the flat adjacency view of g, building and caching it on
// first use. The cache is invalidated by AddNode/AddEdge; concurrent
// readers of an unchanging graph share one CSR. The returned CSR and its
// arrays must not be modified.
func (g *Graph) CSR() *CSR {
	if c := g.csr.ptr.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.csr.ptr.Store(c)
	return c
}

func buildCSR(g *Graph) *CSR {
	n, e := len(g.nodes), len(g.edges)
	c := &CSR{
		Start:    make([]int32, n+1),
		AdjEdge:  make([]EdgeID, 0, e),
		AdjTo:    make([]NodeID, 0, e),
		EdgeFrom: make([]NodeID, e),
		EdgeTo:   make([]NodeID, e),
		Cap:      make([]float64, e),
		slotEid:  make([]int32, 0, e),
		slotTo:   make([]int32, 0, e),
	}
	for i := range g.edges {
		ed := &g.edges[i]
		c.EdgeFrom[i] = ed.From
		c.EdgeTo[i] = ed.To
		c.Cap[i] = ed.Capacity
	}
	for u := 0; u < n; u++ {
		c.Start[u] = int32(len(c.AdjEdge))
		for _, eid := range g.out[u] {
			c.AdjEdge = append(c.AdjEdge, eid)
			c.AdjTo = append(c.AdjTo, g.edges[eid].To)
			c.slotEid = append(c.slotEid, int32(eid))
			c.slotTo = append(c.slotTo, int32(g.edges[eid].To))
		}
	}
	c.Start[n] = int32(len(c.AdjEdge))
	return c
}

// unreachedPred marks a node with no predecessor edge in an SSSP tree.
const unreachedPred = EdgeID(-1)

// SSSPScratch is reusable single-source shortest-path state over one CSR:
// distance, predecessor, weight and heap buffers that are reset by bumping
// an epoch counter instead of clearing, so a Dijkstra tree build performs
// zero allocations after warm-up. A scratch is not safe for concurrent use;
// hot paths keep one per worker.
//
// Usage: call SetWeights whenever the edge weights change, then Tree once
// per source; many Tree calls may share one SetWeights (the Frank–Wolfe
// oracle runs one sweep of sources per gradient).
type SSSPScratch struct {
	csr *CSR

	wSlot []float64 // active slot-ordered weights (own, or shared — see ShareWeightsFrom)
	own   []float64 // the scratch's private weight buffer

	node      []nodeState // per-node label: one bounds check, 4 labels per cache line
	epoch     uint32
	remaining int // wanted destinations not yet finalised

	heap []ssspItem

	buckets [][]ssspItem // circular Dial bucket queue (see TreeDial)

	// frontier/nextFrontier are the two-level queue of TreeDial's uniform
	// (span == 1) mode: with no duplicate entries and one distance per
	// level, a bucket entry is just the node id.
	frontier, nextFrontier []int32

	pathBuf []EdgeID // reversal scratch for AppendPathTo
}

// ssspItem is one (distance, node) heap entry; a single packed array keeps
// sift operations to one swap per level.
type ssspItem struct {
	dist float64
	node int32
}

// nodeState packs one node's entire Dijkstra label — tentative distance,
// predecessor, and a combined epoch/flag stamp — into 16 bytes, so four
// labels share each cache line (the old three-counter layout fit 2.67).
// pred is the predecessor's adjacency SLOT index (into slotEid/slotTo),
// not an edge id: recording the slot keeps the relax loop off the edge-id
// stream entirely, and slotEid recovers the original edge id on the cold
// paths that need it (exact-distance tie-breaks, path extraction). The
// stamp's low three bits are the per-epoch flags (fSeen, fDone, fNeed) and
// the rest is the epoch number: epochs advance by epochStride, and a stamp
// is current exactly when stamp-epoch < epochStride (unsigned), which
// replaces per-run clearing with one add. dist/pred are valid only when
// the stamp is current and carries fSeen.
type nodeState struct {
	dist  float64
	pred  int32
	stamp uint32
}

// Epoch/flag packing for nodeState.stamp. epochStride is 8 (three flag
// bits), so epochs wrap exactly at 2^32 and the wrap check in Tree/TreeDial
// stays a single equality test.
const (
	fSeen       uint32 = 1 // dist/pred hold a tentative label this epoch
	fDone       uint32 = 2 // node finalised this epoch
	fNeed       uint32 = 4 // node is a wanted destination this epoch
	epochStride uint32 = 8
)

// NewSSSPScratch allocates scratch state sized for c.
func NewSSSPScratch(c *CSR) *SSSPScratch {
	n := c.NumNodes()
	own := make([]float64, len(c.slotEid))
	return &SSSPScratch{
		csr:   c,
		wSlot: own,
		own:   own,
		node:  alignedSlab[nodeState](n),
		heap:  make([]ssspItem, 0, n),
	}
}

// ShareWeightsFrom points this scratch's weight view at src's buffer, so a
// group of per-worker scratches reads one frozen weight fill instead of
// each copying it — the zero-copy substrate of the oracle's intra-solve
// parallel sweep. Both scratches must be built for the same CSR (a
// mismatch is ignored). While shared, Tree/TreeDial only read the buffer;
// writing through SlotWeights or SetWeights on either scratch writes the
// shared storage, so sharers must treat the weights as frozen. Call
// UnshareWeights (done automatically by Compiled.ReleaseScratch) before
// the scratch is reused independently.
func (s *SSSPScratch) ShareWeightsFrom(src *SSSPScratch) {
	if src != nil && src.csr == s.csr {
		s.wSlot = src.wSlot
	}
}

// UnshareWeights restores the scratch's private weight buffer after a
// ShareWeightsFrom, severing any aliasing with other scratches.
func (s *SSSPScratch) UnshareWeights() { s.wSlot = s.own }

// SetWeights loads the edge-indexed weights w (len NumEdges) into the
// scratch's slot-ordered buffer so the Dijkstra inner loop reads weights
// sequentially, and validates them: weights must be nonnegative.
// Validating here keeps the per-relaxation step branch-free. Weights are
// always indexed by original edge id, on renumbered views too.
func (s *SSSPScratch) SetWeights(w []float64) error {
	eids := s.csr.slotEid
	for i := range eids {
		wt := w[eids[i]]
		if wt < 0 {
			return fmt.Errorf("graph: negative weight %v on edge %d", wt, eids[i])
		}
		s.wSlot[i] = wt
	}
	return nil
}

// SlotWeights exposes the scratch's slot-ordered weight buffer for callers
// that can compute weights directly in slot order (slot i corresponds to
// edge CSR.AdjEdge[i]), skipping SetWeights' gather pass. The caller must
// fill every entry with a nonnegative value before the next Tree call.
func (s *SSSPScratch) SlotWeights() []float64 { return s.wSlot }

// beginEpoch advances the stamp epoch for one Tree/TreeDial call and
// returns it, clearing all labels on the (rare) 2^32 wrap, and stamps the
// wanted destinations. It returns the epoch and the count of distinct
// wanted destinations.
func (s *SSSPScratch) beginEpoch(dsts []NodeID) (ep uint32, remaining int) {
	s.epoch += epochStride
	if s.epoch == 0 { // wrapped: stamps are stale, clear them
		for i := range s.node {
			s.node[i] = nodeState{}
		}
		s.epoch = epochStride
	}
	ep = s.epoch
	for _, d := range dsts {
		st := &s.node[d]
		if st.stamp-ep < epochStride {
			if st.stamp&fNeed == 0 {
				st.stamp |= fNeed
				remaining++
			}
		} else {
			st.stamp = ep | fNeed
			remaining++
		}
	}
	return ep, remaining
}

// Tree computes the Dijkstra shortest-path tree from src under the weights
// last loaded by SetWeights. When dsts is non-empty, the search stops as
// soon as every listed destination is finalised — predecessors of other
// nodes are then unspecified. Ties are broken exactly like the historical
// oracle: a node finalised once is never relabelled, and among
// equal-distance labels the smaller predecessor edge id wins. On a
// renumbered view the edge ids compared are still the original ids
// (slotEid), so the traversal is isomorphic to the identity-order one and
// every downstream output is byte-identical — see Compile.
//
// The heap is inlined and all scratch state is hoisted into locals: the
// compiler cannot prove the scratch's slice fields do not alias, so method
// calls and field loads inside the loop would otherwise defeat register
// allocation. The sift code preserves the exact comparison sequence of the
// historical swap-based heap, keeping pop order among equal keys — and
// with it every deterministic tie-break downstream — unchanged.
func (s *SSSPScratch) Tree(src NodeID, dsts []NodeID) {
	ep, remaining := s.beginEpoch(dsts)
	nodes := s.node
	wSlot := s.wSlot
	eids, tos, starts := s.csr.slotEid, s.csr.slotTo, s.csr.Start

	keep := uint32(0)
	if st := nodes[src].stamp; st-ep < epochStride {
		keep = st & fNeed
	}
	nodes[src] = nodeState{dist: 0, pred: int32(unreachedPred), stamp: ep | fSeen | keep}

	h := append(s.heap[:0], ssspItem{node: int32(src), dist: 0})
	for len(h) > 0 {
		// Inline heapPop (hole sift-down of the former last entry). Indices
		// are uint so the prover can drop the bounds checks.
		top := h[0]
		last := uint(len(h)) - 1
		siftv := h[last]
		h = h[:last]
		i := uint(0)
		sd := siftv.dist
		for {
			l, r := 2*i+1, 2*i+2
			// Pick the smaller child first (left wins ties), then compare it
			// against the sifted value: decision-equivalent to checking each
			// child against the running minimum in turn, but the two child
			// loads are independent, which shortens the serial load chain.
			var m uint
			if r < last {
				if h[l].dist <= h[r].dist {
					m = l
				} else {
					m = r
				}
			} else if l < last {
				m = l
			} else {
				break
			}
			if h[m].dist >= sd {
				break
			}
			h[i] = h[m]
			i = m
		}
		if last > 0 {
			h[i] = siftv
		}

		u, d := top.node, top.dist
		su := &nodes[u]
		// Every heap entry was pushed this call, so su's stamp is current:
		// the flag bits are exactly su.stamp-ep.
		if su.stamp&fDone != 0 || d > su.dist {
			continue
		}
		su.stamp |= fDone
		if su.stamp&fNeed != 0 {
			remaining--
			if remaining == 0 {
				break
			}
		}
		// Sub-slice ranging bounds-checks the adjacency row once; ws is cut
		// to the same bounds so its accesses are provably in range too. The
		// relax loop never reads the edge-id stream: predecessors are
		// recorded as slot indices, and original edge ids are looked up
		// through slotEid only on exact-distance ties (and at path
		// extraction), keeping the hot loop to two streams plus labels.
		base := starts[u]
		row := tos[base:starts[u+1]]
		ws := wSlot[base : base+int32(len(row))]
		for k := range row {
			v := row[k]
			st := &nodes[v]
			sv := st.stamp - ep // unsigned: current iff < epochStride, then == flags
			if sv&^uint32(fSeen|fNeed) == fDone {
				// Current and finalised (single fused test: stale stamps have
				// sv >= epochStride, so the masked value can't equal fDone).
				// Never rewrite a finalised node's predecessor: an
				// equal-distance overwrite after finalisation (common under
				// float absorption of tiny weights) can create predecessor
				// cycles and break path reconstruction.
				continue
			}
			nd := d + ws[k]
			if sv >= epochStride {
				st.stamp = ep | fSeen
				st.dist = nd
				st.pred = base + int32(k)
			} else if sv&fSeen == 0 {
				st.stamp |= fSeen
				st.dist = nd
				st.pred = base + int32(k)
			} else if nd < st.dist || (nd == st.dist && st.pred != int32(unreachedPred) && eids[base+int32(k)] < eids[st.pred]) {
				st.dist = nd
				st.pred = base + int32(k)
			} else {
				continue
			}
			// Inline heapPush (hole sift-up).
			it := ssspItem{node: v, dist: nd}
			h = append(h, it)
			j := uint(len(h)) - 1
			for j > 0 {
				p := (j - 1) / 2
				if h[p].dist <= nd {
					break
				}
				h[j] = h[p]
				j = p
			}
			h[j] = it
		}
	}
	s.heap = h
	s.remaining = remaining
}

// Reached reports whether dst was finalised by the last Tree call.
func (s *SSSPScratch) Reached(dst NodeID) bool {
	sv := s.node[dst].stamp - s.epoch
	return sv < epochStride && sv&fDone != 0
}

// Dist returns the shortest distance to dst from the last Tree call; it is
// meaningful only when Reached(dst).
func (s *SSSPScratch) Dist(dst NodeID) float64 { return s.node[dst].dist }

// AppendPathTo appends the edge ids of the tree path src->dst to buf and
// returns the extended slice. It reports ok=false when dst was not
// finalised by the last Tree call (unreachable, or pruned by the dsts
// early exit). An src==dst query yields an empty path. The appended edge
// ids are original edge ids even on a renumbered view (predecessors are
// slot indices mapped through slotEid here), so callers intern paths
// without any translation. The appended edges reuse no internal storage,
// but callers that retain the path across Tree calls on shared buffers
// should copy it.
func (s *SSSPScratch) AppendPathTo(dst NodeID, buf []EdgeID) (out []EdgeID, ok bool) {
	ep := s.epoch
	if sv := s.node[dst].stamp - ep; sv >= epochStride || sv&fDone == 0 {
		return buf, false
	}
	s.pathBuf = s.pathBuf[:0]
	c := s.csr
	for cur := dst; ; {
		if sv := s.node[cur].stamp - ep; sv >= epochStride || sv&fSeen == 0 {
			return buf, false
		}
		slot := s.node[cur].pred
		if slot == int32(unreachedPred) {
			break
		}
		eid := c.slotEid[slot]
		s.pathBuf = append(s.pathBuf, EdgeID(eid))
		cur = c.EdgeFrom[eid]
		if len(s.pathBuf) > c.NumEdges() {
			return buf, false // defensive: corrupted predecessor chain
		}
	}
	for i := len(s.pathBuf) - 1; i >= 0; i-- {
		buf = append(buf, s.pathBuf[i])
	}
	return buf, true
}
