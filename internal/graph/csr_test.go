package graph

import (
	"math/rand"
	"testing"
)

// randomGraph builds a reproducible directed multigraph for CSR tests.
func randomGraph(t *testing.T, seed int64, nodes, edges int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < nodes; i++ {
		g.AddNode("n", KindSwitch)
	}
	for i := 0; i < edges; i++ {
		a, b := NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes))
		if a == b {
			continue
		}
		if _, err := g.AddEdge(a, b, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestCSRMatchesAdjacency(t *testing.T) {
	g := randomGraph(t, 7, 30, 120)
	c := g.CSR()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("CSR size mismatch: %d/%d nodes, %d/%d edges",
			c.NumNodes(), g.NumNodes(), c.NumEdges(), g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		out := g.OutEdges(NodeID(u))
		row := c.AdjEdge[c.Start[u]:c.Start[u+1]]
		if len(out) != len(row) {
			t.Fatalf("node %d: out-degree %d vs CSR row %d", u, len(out), len(row))
		}
		for k, eid := range out {
			if row[k] != eid {
				t.Fatalf("node %d slot %d: edge %d vs %d (order must match OutEdges)", u, k, row[k], eid)
			}
			e := g.MustEdge(eid)
			if c.EdgeFrom[eid] != e.From || c.EdgeTo[eid] != e.To || c.Cap[eid] != e.Capacity {
				t.Fatalf("edge %d: CSR arrays disagree with Edge", eid)
			}
			if c.AdjTo[c.Start[u]+int32(k)] != e.To {
				t.Fatalf("edge %d: AdjTo mismatch", eid)
			}
		}
	}
}

func TestCSRCacheInvalidation(t *testing.T) {
	g := randomGraph(t, 8, 10, 20)
	c1 := g.CSR()
	if c2 := g.CSR(); c2 != c1 {
		t.Fatal("CSR not cached across calls on an unchanged graph")
	}
	n := g.AddNode("x", KindHost)
	if _, err := g.AddEdge(n, 0, 1); err != nil {
		t.Fatal(err)
	}
	c3 := g.CSR()
	if c3 == c1 {
		t.Fatal("CSR cache not invalidated by mutation")
	}
	if c3.NumNodes() != g.NumNodes() || c3.NumEdges() != g.NumEdges() {
		t.Fatal("rebuilt CSR stale")
	}
}

// TestSSSPTreeMatchesDijkstra cross-checks the scratch-based tree against
// the reference ShortestPathWeighted implementation, including deterministic
// tie-breaking, under weights with many exact ties.
func TestSSSPTreeMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(t, 9, 40, 160)
	w := make([]float64, g.NumEdges())
	scr := NewSSSPScratch(g.CSR())
	var buf []EdgeID
	for trial := 0; trial < 200; trial++ {
		for i := range w {
			w[i] = rng.Float64() * float64(rng.Intn(3)) // zero-weight ties included
		}
		if err := scr.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		var dsts []NodeID
		for i := 0; i < 5; i++ {
			if d := NodeID(rng.Intn(g.NumNodes())); d != src {
				dsts = append(dsts, d)
			}
		}
		scr.Tree(src, dsts)
		for _, dst := range dsts {
			ref, err := g.ShortestPathWeighted(src, dst, func(e Edge) float64 { return w[e.ID] })
			buf = buf[:0]
			got, ok := scr.AppendPathTo(dst, buf)
			if err != nil {
				if ok {
					t.Fatalf("trial %d %d->%d: reference unreachable but scratch found %v", trial, src, dst, got)
				}
				continue
			}
			if !ok {
				t.Fatalf("trial %d %d->%d: reference found %v, scratch none", trial, src, dst, ref.Edges)
			}
			if !edgesEqual(ref.Edges, got) {
				t.Fatalf("trial %d %d->%d: reference %v vs scratch %v", trial, src, dst, ref.Edges, got)
			}
		}
	}
}

// TestSSSPTreeZeroAllocs is the allocation-regression ceiling for the
// Frank–Wolfe oracle's tree build: after warm-up, a Dijkstra tree plus path
// extraction must not allocate at all.
func TestSSSPTreeZeroAllocs(t *testing.T) {
	g := randomGraph(t, 10, 60, 300)
	w := make([]float64, g.NumEdges())
	for i := range w {
		w[i] = float64(i%7) + 1
	}
	scr := NewSSSPScratch(g.CSR())
	if err := scr.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	src, dst := NodeID(0), NodeID(59)
	dsts := []NodeID{dst}
	buf := make([]EdgeID, 0, 64)
	scr.Tree(src, dsts) // warm-up sizes the heap and path buffers
	allocs := testing.AllocsPerRun(50, func() {
		scr.Tree(src, dsts)
		buf = buf[:0]
		buf, _ = scr.AppendPathTo(dst, buf)
	})
	if allocs != 0 {
		t.Fatalf("Dijkstra tree build allocates %.1f times per run, want 0", allocs)
	}
}

func TestPathInterner(t *testing.T) {
	it := NewPathInterner()
	a := []EdgeID{1, 2, 3}
	b := []EdgeID{1, 2, 4}
	ha := it.Intern(a)
	hb := it.Intern(b)
	if ha == hb {
		t.Fatal("distinct paths interned to one handle")
	}
	if got := it.Intern([]EdgeID{1, 2, 3}); got != ha {
		t.Fatalf("re-intern of equal path: handle %d, want %d", got, ha)
	}
	if it.Len() != 2 {
		t.Fatalf("Len = %d, want 2", it.Len())
	}
	if !edgesEqual(it.Edges(ha), a) {
		t.Fatalf("Edges(%d) = %v, want %v", ha, it.Edges(ha), a)
	}
	p := it.Path(hb)
	p.Edges[0] = 99 // mutating the copy must not corrupt the arena
	if !edgesEqual(it.Edges(hb), b) {
		t.Fatal("Path() exposed interner arena storage")
	}
	// Input slices may be reused by callers after interning.
	scratch := []EdgeID{7, 8}
	h := it.Intern(scratch)
	scratch[0] = 42
	if !edgesEqual(it.Edges(h), []EdgeID{7, 8}) {
		t.Fatal("Intern aliased its input slice")
	}
}

func TestCompareEdges(t *testing.T) {
	cases := []struct {
		a, b []EdgeID
		want int
	}{
		{nil, nil, 0},
		{[]EdgeID{1}, nil, 1},
		{nil, []EdgeID{1}, -1},
		{[]EdgeID{1, 2}, []EdgeID{1, 2}, 0},
		{[]EdgeID{1, 2}, []EdgeID{1, 3}, -1},
		{[]EdgeID{2}, []EdgeID{10}, -1}, // numeric, not string, order
		{[]EdgeID{1, 2, 3}, []EdgeID{1, 2}, 1},
	}
	for _, c := range cases {
		if got := CompareEdges(c.a, c.b); got != c.want {
			t.Fatalf("CompareEdges(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestComparePathKeysMatchesKeyStrings checks ComparePathKeys against the
// literal Path.Key() string comparison it replaces, over directed cases
// (digit-vs-separator collisions included) and random sequences.
func TestComparePathKeysMatchesKeyStrings(t *testing.T) {
	sign := func(x int) int {
		switch {
		case x < 0:
			return -1
		case x > 0:
			return 1
		}
		return 0
	}
	strcmp := func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	check := func(a, b []EdgeID) {
		ka, kb := (Path{Edges: a}).Key(), (Path{Edges: b}).Key()
		want := strcmp(ka, kb)
		if got := sign(ComparePathKeys(a, b)); got != want {
			t.Fatalf("ComparePathKeys(%v, %v) = %d, want %d (keys %q vs %q)", a, b, got, want, ka, kb)
		}
	}
	cases := [][2][]EdgeID{
		{nil, nil},
		{{1}, nil},
		{{10, 2}, {2, 10}},  // "10,2" > "2,10" as strings
		{{1, 22}, {10, 2}},  // ',' sorts below digits: "1,22" < "10,2"
		{{1, 2}, {1, 2, 3}}, // prefix
		{{0}, {0, 0}},
		{{123}, {12, 3}}, // "123" vs "12,3"
		{{7}, {7}},
	}
	for _, c := range cases {
		check(c[0], c[1])
		check(c[1], c[0])
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		mk := func() []EdgeID {
			n := rng.Intn(5)
			out := make([]EdgeID, n)
			for i := range out {
				out[i] = EdgeID(rng.Intn(130))
			}
			return out
		}
		check(mk(), mk())
	}
}
