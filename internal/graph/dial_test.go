package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeWeights(t *testing.T) {
	cases := []struct {
		name    string
		w       []float64
		maxSpan int
		q       float64
		span    int
		ok      bool
	}{
		{name: "unit", w: []float64{1, 1, 1}, maxSpan: 256, q: 1, span: 1, ok: true},
		{name: "even multiples", w: []float64{2, 4, 6}, maxSpan: 256, q: 2, span: 3, ok: true},
		{name: "power-of-two quantum", w: []float64{0.25, 0.5, 1, 2}, maxSpan: 256, q: 0.25, span: 8, ok: true},
		{name: "tiny quantum", w: []float64{1e-12, 3 * 1e-12}, maxSpan: 256, q: 1e-12, span: 3, ok: true},
		{name: "non-integer ratio", w: []float64{1, 1.5}, maxSpan: 256, ok: false},
		{name: "inexact multiple", w: []float64{1, 1 + 1e-9}, maxSpan: 256, ok: false},
		{name: "span exceeded", w: []float64{1, 300}, maxSpan: 256, ok: false},
		{name: "span boundary", w: []float64{1, 256}, maxSpan: 256, q: 1, span: 256, ok: true},
		{name: "zero weight", w: []float64{0, 1}, maxSpan: 256, ok: false},
		{name: "negative weight", w: []float64{-1, 1}, maxSpan: 256, ok: false},
		{name: "nan", w: []float64{1, math.NaN()}, maxSpan: 256, ok: false},
		{name: "inf", w: []float64{1, math.Inf(1)}, maxSpan: 256, ok: false},
		{name: "empty", w: nil, maxSpan: 256, ok: false},
		// 0.3 is not exactly representable; 3*0.3 != 0.9 in float64, but
		// QuantizeWeights only needs k*q to reproduce the stored bits, which
		// the construction below guarantees.
		{name: "decimal quantum", w: []float64{0.3, 2 * 0.3, 5 * 0.3}, maxSpan: 256, q: 0.3, span: 5, ok: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, span, ok := QuantizeWeights(tc.w, tc.maxSpan)
			if ok != tc.ok {
				t.Fatalf("QuantizeWeights(%v) ok = %v, want %v", tc.w, ok, tc.ok)
			}
			if ok && (q != tc.q || span != tc.span) {
				t.Fatalf("QuantizeWeights(%v) = (%v, %d), want (%v, %d)", tc.w, q, span, tc.q, tc.span)
			}
		})
	}
}

// TestTreeDialMatchesTree is the dial/heap cross-check: on randomized
// quantizable weights, TreeDial must reproduce Tree bit for bit — same
// distance bits, same predecessor edges, same extracted paths — for both
// full-tree builds and early-exit destination subsets.
func TestTreeDialMatchesTree(t *testing.T) {
	g := randomGraph(t, 21, 50, 260)
	csr := g.CSR()
	heap := NewSSSPScratch(csr)
	dial := NewSSSPScratch(csr)
	rng := rand.New(rand.NewSource(2))
	quanta := []float64{1, 0.25, 0.3, 1e-12}
	w := make([]float64, g.NumEdges())
	var bufH, bufD []EdgeID
	for trial := 0; trial < 200; trial++ {
		q := quanta[trial%len(quanta)]
		maxK := 1 + rng.Intn(MaxDialSpan)
		for i := range w {
			w[i] = float64(1+rng.Intn(maxK)) * q
		}
		w[0] = q // pin the minimum so the quantum detection recovers q itself
		qGot, span, ok := QuantizeWeights(w, MaxDialSpan)
		if !ok {
			t.Fatalf("trial %d: constructed weights did not quantize (q=%v maxK=%d)", trial, q, maxK)
		}
		if err := heap.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		if err := dial.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		var dsts []NodeID
		if trial%3 == 0 {
			for v := 0; v < g.NumNodes(); v++ { // full tree
				if NodeID(v) != src {
					dsts = append(dsts, NodeID(v))
				}
			}
		} else {
			for i := 0; i < 4; i++ { // early exit
				if d := NodeID(rng.Intn(g.NumNodes())); d != src {
					dsts = append(dsts, d)
				}
			}
		}
		heap.Tree(src, dsts)
		dial.TreeDial(src, dsts, qGot, span)
		for _, dst := range dsts {
			bufH = bufH[:0]
			bufD = bufD[:0]
			ph, okH := heap.AppendPathTo(dst, bufH)
			pd, okD := dial.AppendPathTo(dst, bufD)
			if okH != okD {
				t.Fatalf("trial %d %d->%d: heap reachable=%v dial reachable=%v", trial, src, dst, okH, okD)
			}
			if !okH {
				continue
			}
			if !edgesEqual(ph, pd) {
				t.Fatalf("trial %d %d->%d: heap path %v vs dial path %v", trial, src, dst, ph, pd)
			}
			dh := heap.node[dst].dist
			dd := dial.node[dst].dist
			if math.Float64bits(dh) != math.Float64bits(dd) {
				t.Fatalf("trial %d %d->%d: heap dist %v vs dial dist %v (bits differ)", trial, src, dst, dh, dd)
			}
		}
	}
}

// TestTreeDialInterleaved runs Tree and TreeDial alternately on one scratch
// to confirm the epoch reset and bucket clearing compose: state left by
// either traversal (including early-exited bucket entries) must not leak
// into the next.
func TestTreeDialInterleaved(t *testing.T) {
	g := randomGraph(t, 22, 30, 150)
	csr := g.CSR()
	scr := NewSSSPScratch(csr)
	ref := NewSSSPScratch(csr)
	w := make([]float64, g.NumEdges())
	rng := rand.New(rand.NewSource(3))
	var bufA, bufB []EdgeID
	for trial := 0; trial < 60; trial++ {
		for i := range w {
			w[i] = float64(1 + rng.Intn(9))
		}
		if err := scr.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		if err := ref.SetWeights(w); err != nil {
			t.Fatal(err)
		}
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		if src == dst {
			continue
		}
		dsts := []NodeID{dst}
		if trial%2 == 0 {
			scr.TreeDial(src, dsts, 1, 9)
		} else {
			scr.Tree(src, dsts)
		}
		ref.Tree(src, dsts)
		bufA = bufA[:0]
		bufB = bufB[:0]
		pa, okA := scr.AppendPathTo(dst, bufA)
		pb, okB := ref.AppendPathTo(dst, bufB)
		if okA != okB || !edgesEqual(pa, pb) {
			t.Fatalf("trial %d %d->%d: interleaved %v (%v) vs reference %v (%v)", trial, src, dst, pa, okA, pb, okB)
		}
	}
}

// TestShareWeights covers the zero-copy weight aliasing used by the
// parallel oracle: a sharing scratch reads the canonical buffer, and
// ReleaseScratch severs the alias so pooled scratch never leaks a foreign
// buffer to its next borrower.
func TestShareWeights(t *testing.T) {
	g := randomGraph(t, 23, 12, 40)
	c := Compile(g)
	// The canonical scratch must live on the same (hot) view as the pooled
	// per-worker scratches, exactly as the oracle builds it.
	canon := NewSSSPScratch(c.Hot())
	w := canon.SlotWeights()
	for i := range w {
		w[i] = float64(i%3) + 1
	}
	s := c.AcquireScratch()
	s.ShareWeightsFrom(canon)
	sw := s.SlotWeights()
	for i := range sw {
		if sw[i] != w[i] {
			t.Fatalf("slot %d: shared weight %v, want %v", i, sw[i], w[i])
		}
	}
	// Writes to the canonical buffer are visible through the alias.
	w[0] = 42
	if s.SlotWeights()[0] != 42 {
		t.Fatal("shared scratch did not observe canonical weight update")
	}
	c.ReleaseScratch(s)
	s2 := c.AcquireScratch()
	defer c.ReleaseScratch(s2)
	if &s2.SlotWeights()[0] == &w[0] {
		t.Fatal("pooled scratch still aliases the canonical buffer after release")
	}
}
