// Package graph provides the directed-graph substrate used by all routing
// and scheduling algorithms in dcnflow: adjacency storage, shortest paths
// (Dijkstra, BFS), Yen's k-shortest paths and path utilities.
//
// Links in the paper's model are bidirectional physical links whose two
// directions are scheduled independently; we therefore model the network as
// a directed graph and topology generators add one arc per direction.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node (switch or host) in a Graph.
type NodeID int

// EdgeID identifies a directed edge (one direction of a physical link).
type EdgeID int

// NodeKind classifies nodes for topology-aware algorithms and pretty
// printing. The zero value is KindUnknown.
type NodeKind int

// Node kinds recognised by the topology generators.
const (
	KindUnknown NodeKind = iota
	KindHost
	KindEdgeSwitch
	KindAggSwitch
	KindCoreSwitch
	KindSwitch // generic switch when the tier is not meaningful
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindHost:
		return "host"
	case KindEdgeSwitch:
		return "edge"
	case KindAggSwitch:
		return "agg"
	case KindCoreSwitch:
		return "core"
	case KindSwitch:
		return "switch"
	default:
		return "unknown"
	}
}

// Node is a vertex of the network graph.
type Node struct {
	ID   NodeID
	Name string
	Kind NodeKind
}

// Edge is a directed edge of the network graph. Capacity is the maximum
// transmission rate C of the underlying link direction.
type Edge struct {
	ID       EdgeID
	From, To NodeID
	Capacity float64
}

// Graph is a directed multigraph with stable integer identifiers. The zero
// value is an empty graph ready for use.
type Graph struct {
	nodes    []Node
	edges    []Edge
	out      [][]EdgeID    // adjacency: outgoing edge ids per node
	in       [][]EdgeID    // reverse adjacency
	csr      csrCache      // lazily-built flat adjacency (see CSR)
	compiled compiledCache // lazily-built compiled artifact bundle (see Compile)
}

// Errors returned by graph operations.
var (
	ErrNodeNotFound = errors.New("graph: node not found")
	ErrEdgeNotFound = errors.New("graph: edge not found")
	ErrNoPath       = errors.New("graph: no path between nodes")
)

// New returns an empty graph.
func New() *Graph {
	return &Graph{}
}

// AddNode appends a node with the given name and kind and returns its id.
func (g *Graph) AddNode(name string, kind NodeKind) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.invalidate()
	return id
}

// invalidate drops the cached derived views after a mutation.
func (g *Graph) invalidate() {
	g.csr.ptr.Store(nil)
	g.compiled.mu.Lock()
	g.compiled.ptr = nil
	g.compiled.mu.Unlock()
}

// AddEdge appends a directed edge and returns its id. Capacity must be
// positive.
func (g *Graph) AddEdge(from, to NodeID, capacity float64) (EdgeID, error) {
	if !g.HasNode(from) || !g.HasNode(to) {
		return 0, fmt.Errorf("add edge %d->%d: %w", from, to, ErrNodeNotFound)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("add edge %d->%d: capacity %v must be positive", from, to, capacity)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.invalidate()
	return id, nil
}

// AddBiEdge adds the two directed edges of a physical link and returns both
// edge ids (from->to, then to->from).
func (g *Graph) AddBiEdge(a, b NodeID, capacity float64) (EdgeID, EdgeID, error) {
	e1, err := g.AddEdge(a, b, capacity)
	if err != nil {
		return 0, 0, err
	}
	e2, err := g.AddEdge(b, a, capacity)
	if err != nil {
		return 0, 0, err
	}
	return e1, e2, nil
}

// HasNode reports whether id is a valid node of g.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// HasEdge reports whether id is a valid edge of g.
func (g *Graph) HasEdge(id EdgeID) bool { return id >= 0 && int(id) < len(g.edges) }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the node with the given id.
func (g *Graph) Node(id NodeID) (Node, error) {
	if !g.HasNode(id) {
		return Node{}, fmt.Errorf("node %d: %w", id, ErrNodeNotFound)
	}
	return g.nodes[id], nil
}

// Edge returns the edge with the given id.
func (g *Graph) Edge(id EdgeID) (Edge, error) {
	if !g.HasEdge(id) {
		return Edge{}, fmt.Errorf("edge %d: %w", id, ErrEdgeNotFound)
	}
	return g.edges[id], nil
}

// MustEdge returns the edge with the given id; it is intended for hot paths
// where the id is known valid (ids produced by this graph). It returns the
// zero Edge for invalid ids.
func (g *Graph) MustEdge(id EdgeID) Edge {
	if !g.HasEdge(id) {
		return Edge{}
	}
	return g.edges[id]
}

// Nodes returns a copy of all nodes.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdges returns the ids of edges leaving node id. The returned slice must
// not be modified.
func (g *Graph) OutEdges(id NodeID) []EdgeID {
	if !g.HasNode(id) {
		return nil
	}
	return g.out[id]
}

// InEdges returns the ids of edges entering node id. The returned slice must
// not be modified.
func (g *Graph) InEdges(id NodeID) []EdgeID {
	if !g.HasNode(id) {
		return nil
	}
	return g.in[id]
}

// NodesOfKind returns the ids of all nodes with the given kind, in id order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Kind == kind {
			out = append(out, n.ID)
		}
	}
	return out
}

// Reverse returns the edge id of the opposite direction of edge id, when the
// graph contains exactly one such edge. It reports ok=false otherwise.
func (g *Graph) Reverse(id EdgeID) (EdgeID, bool) {
	if !g.HasEdge(id) {
		return 0, false
	}
	e := g.edges[id]
	var found EdgeID
	count := 0
	for _, cand := range g.out[e.To] {
		if g.edges[cand].To == e.From {
			found = cand
			count++
		}
	}
	if count != 1 {
		return 0, false
	}
	return found, true
}

// Path is a directed path represented by its ordered edge ids.
type Path struct {
	Edges []EdgeID
}

// Len returns the number of edges (hops) of the path.
func (p Path) Len() int { return len(p.Edges) }

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	e := make([]EdgeID, len(p.Edges))
	copy(e, p.Edges)
	return Path{Edges: e}
}

// Nodes returns the node sequence visited by the path in g, starting with
// the source. An empty path yields nil.
func (p Path) Nodes(g *Graph) []NodeID {
	if len(p.Edges) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p.Edges)+1)
	first := g.MustEdge(p.Edges[0])
	out = append(out, first.From)
	for _, id := range p.Edges {
		out = append(out, g.MustEdge(id).To)
	}
	return out
}

// Validate checks that the path is a connected simple directed path in g
// from src to dst.
func (p Path) Validate(g *Graph, src, dst NodeID) error {
	if len(p.Edges) == 0 {
		if src == dst {
			return nil
		}
		return fmt.Errorf("validate path: empty path but src %d != dst %d", src, dst)
	}
	seen := make(map[NodeID]bool, len(p.Edges)+1)
	cur := src
	seen[cur] = true
	for i, id := range p.Edges {
		e, err := g.Edge(id)
		if err != nil {
			return fmt.Errorf("validate path hop %d: %w", i, err)
		}
		if e.From != cur {
			return fmt.Errorf("validate path hop %d: edge %d starts at %d, want %d", i, id, e.From, cur)
		}
		cur = e.To
		if seen[cur] {
			return fmt.Errorf("validate path hop %d: node %d revisited", i, cur)
		}
		seen[cur] = true
	}
	if cur != dst {
		return fmt.Errorf("validate path: ends at %d, want %d", cur, dst)
	}
	return nil
}

// Key returns a canonical string key of the path, usable as a map key.
func (p Path) Key() string {
	var b strings.Builder
	for i, e := range p.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", e)
	}
	return b.String()
}

// String renders the path as "e0,e1,...".
func (p Path) String() string { return p.Key() }

// ShortestPath returns a minimum-hop path from src to dst using BFS with
// deterministic tie-breaking (lowest edge id wins). It returns ErrNoPath if
// dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, error) {
	return g.ShortestPathWeighted(src, dst, nil)
}

// ShortestPathWeighted returns a minimum-weight path from src to dst using
// Dijkstra's algorithm. weight maps an edge to its nonnegative cost; a nil
// weight function means unit weights (hop count). Ties are broken
// deterministically by preferring the lexicographically smaller predecessor
// edge id.
func (g *Graph) ShortestPathWeighted(src, dst NodeID, weight func(Edge) float64) (Path, error) {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNodeNotFound)
	}
	if src == dst {
		return Path{}, nil
	}
	const unreached = -1
	dist := make([]float64, len(g.nodes))
	pred := make([]EdgeID, len(g.nodes))
	done := make([]bool, len(g.nodes))
	for i := range dist {
		dist[i] = inf
		pred[i] = unreached
	}
	dist[src] = 0

	h := &edgeHeap{}
	h.push(heapItem{node: src, dist: 0})
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			e := g.edges[eid]
			v := e.To
			if done[v] {
				// Never rewrite a finalised node's predecessor: an
				// equal-distance overwrite after finalisation (common
				// under float absorption of tiny weights) can create
				// predecessor cycles and break path reconstruction.
				continue
			}
			w := 1.0
			if weight != nil {
				w = weight(e)
				if w < 0 {
					return Path{}, fmt.Errorf("shortest path: negative weight %v on edge %d", w, eid)
				}
			}
			nd := dist[u] + w
			if nd < dist[v] || (nd == dist[v] && pred[v] != unreached && eid < pred[v]) {
				dist[v] = nd
				pred[v] = eid
				h.push(heapItem{node: v, dist: nd})
			}
		}
	}
	if pred[dst] == unreached {
		return Path{}, fmt.Errorf("shortest path %d->%d: %w", src, dst, ErrNoPath)
	}
	// Reconstruct.
	var rev []EdgeID
	for cur := dst; cur != src; {
		eid := pred[cur]
		rev = append(rev, eid)
		cur = g.edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return Path{Edges: edges}, nil
}

const inf = 1e308

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// nondecreasing weight order using Yen's algorithm. A nil weight function
// means unit weights.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, weight func(Edge) float64) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := g.ShortestPathWeighted(src, dst, weight)
	if err != nil {
		return nil, err
	}
	w := func(e Edge) float64 {
		if weight == nil {
			return 1
		}
		return weight(e)
	}
	pathCost := func(p Path) float64 {
		var c float64
		for _, id := range p.Edges {
			c += w(g.edges[id])
		}
		return c
	}

	accepted := []Path{first}
	seen := map[string]bool{first.Key(): true}
	type cand struct {
		p    Path
		cost float64
	}
	var candidates []cand

	for len(accepted) < k {
		prev := accepted[len(accepted)-1]
		prevNodes := prev.Nodes(g)
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]

			banEdges := make(map[EdgeID]bool)
			for _, ap := range accepted {
				if len(ap.Edges) > i && sameEdgePrefix(ap.Edges[:i], rootEdges) {
					banEdges[ap.Edges[i]] = true
				}
			}
			banNodes := make(map[NodeID]bool)
			for _, nid := range prevNodes[:i] {
				banNodes[nid] = true
			}

			spur, serr := g.shortestPathAvoiding(spurNode, dst, w, banEdges, banNodes)
			if serr != nil {
				continue
			}
			total := Path{Edges: append(append([]EdgeID{}, rootEdges...), spur.Edges...)}
			key := total.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			candidates = append(candidates, cand{p: total, cost: pathCost(total)})
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].cost != candidates[b].cost {
				return candidates[a].cost < candidates[b].cost
			}
			return candidates[a].p.Key() < candidates[b].p.Key()
		})
		accepted = append(accepted, candidates[0].p)
		candidates = candidates[1:]
	}
	return accepted, nil
}

func sameEdgePrefix(a, b []EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shortestPathAvoiding is Dijkstra avoiding a set of edges and nodes. The
// source itself may appear in banNodes and is still usable as origin.
func (g *Graph) shortestPathAvoiding(src, dst NodeID, w func(Edge) float64, banEdges map[EdgeID]bool, banNodes map[NodeID]bool) (Path, error) {
	const unreached = -1
	dist := make([]float64, len(g.nodes))
	pred := make([]EdgeID, len(g.nodes))
	done := make([]bool, len(g.nodes))
	for i := range dist {
		dist[i] = inf
		pred[i] = unreached
	}
	dist[src] = 0
	h := &edgeHeap{}
	h.push(heapItem{node: src, dist: 0})
	for h.len() > 0 {
		it := h.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, eid := range g.out[u] {
			if banEdges[eid] {
				continue
			}
			e := g.edges[eid]
			if banNodes[e.To] && e.To != dst {
				continue
			}
			nd := dist[u] + w(e)
			if nd < dist[e.To] {
				dist[e.To] = nd
				pred[e.To] = eid
				h.push(heapItem{node: e.To, dist: nd})
			}
		}
	}
	if src == dst {
		return Path{}, nil
	}
	if pred[dst] == unreached {
		return Path{}, ErrNoPath
	}
	var rev []EdgeID
	for cur := dst; cur != src; {
		eid := pred[cur]
		rev = append(rev, eid)
		cur = g.edges[eid].From
	}
	edges := make([]EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return Path{Edges: edges}, nil
}

// Connected reports whether dst is reachable from src.
func (g *Graph) Connected(src, dst NodeID) bool {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return false
	}
	if src == dst {
		return true
	}
	visited := make([]bool, len(g.nodes))
	queue := []NodeID{src}
	visited[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if visited[v] {
				continue
			}
			if v == dst {
				return true
			}
			visited[v] = true
			queue = append(queue, v)
		}
	}
	return false
}

// DOT renders the graph in Graphviz DOT format (physical links deduplicated
// when both directions exist).
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph dcn {\n")
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, n.Name, dotShape(n.Kind))
	}
	for _, e := range g.edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"e%d\"];\n", e.From, e.To, e.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

func dotShape(k NodeKind) string {
	switch k {
	case KindHost:
		return "ellipse"
	default:
		return "box"
	}
}
