// Package yds implements the optimal single-processor speed-scaling
// algorithm of Yao, Demers and Shenker (FOCS 1995) — the substrate the
// paper's Most-Critical-First algorithm generalises (Section III-C,
// Example 1). Jobs with release times, deadlines and work requirements are
// scheduled preemptively; the processor's speed is chosen per critical
// interval to minimise the energy integral of speed^alpha.
//
// The implementation uses the availability formulation that the paper
// itself adopts (Definition 1): the intensity of a window [a, b] is the
// contained work divided by the *available* (not yet committed) time in
// [a, b], and scheduled slots are marked unavailable for later iterations.
package yds

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/timeline"
)

// Job is a single-processor job.
type Job struct {
	// ID identifies the job in the result; caller-chosen.
	ID int
	// Release and Deadline delimit the feasible window.
	Release, Deadline float64
	// Work is the number of processing units required.
	Work float64
}

// Validate checks job parameters.
func (j Job) Validate() error {
	switch {
	case math.IsNaN(j.Release) || math.IsNaN(j.Deadline) || math.IsNaN(j.Work):
		return fmt.Errorf("yds: job %d: NaN field", j.ID)
	case j.Work <= 0:
		return fmt.Errorf("yds: job %d: work %v <= 0", j.ID, j.Work)
	case j.Deadline <= j.Release:
		return fmt.Errorf("yds: job %d: deadline %v <= release %v", j.ID, j.Deadline, j.Release)
	}
	return nil
}

// Execution is the schedule of one job: a constant speed over a set of
// disjoint slots.
type Execution struct {
	JobID int
	Speed float64
	Slots []timeline.Interval
}

// Duration returns the total scheduled time.
func (e Execution) Duration() float64 {
	var sum float64
	for _, s := range e.Slots {
		sum += s.Length()
	}
	return sum
}

// Result is the complete YDS schedule.
type Result struct {
	// Executions is indexed by position; use ByJob for id lookup.
	Executions []Execution
	byJob      map[int]int
}

// ByJob returns the execution of the given job id.
func (r *Result) ByJob(id int) (Execution, bool) {
	i, ok := r.byJob[id]
	if !ok {
		return Execution{}, false
	}
	return r.Executions[i], true
}

// Energy returns the speed-scaling energy of the schedule:
// sum over jobs of speed^alpha * duration = work * speed^(alpha-1).
func (r *Result) Energy(alpha float64) float64 {
	var sum float64
	for _, e := range r.Executions {
		sum += math.Pow(e.Speed, alpha) * e.Duration()
	}
	return sum
}

// ErrInfeasible is returned when no feasible schedule exists (numerically:
// work demanded inside a window with no available time).
var ErrInfeasible = errors.New("yds: infeasible instance")

// Solve computes the optimal speed-scaling schedule via iterated critical
// intervals. Duplicate job IDs are rejected.
func Solve(jobs []Job) (*Result, error) {
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
	}
	ids := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		if ids[j.ID] {
			return nil, fmt.Errorf("yds: duplicate job id %d", j.ID)
		}
		ids[j.ID] = true
	}

	pending := make([]Job, len(jobs))
	copy(pending, jobs)
	var blocked timeline.SlotSet
	res := &Result{byJob: make(map[int]int, len(jobs))}

	for len(pending) > 0 {
		a, b, critical, speed, err := criticalInterval(pending, &blocked)
		if err != nil {
			return nil, err
		}
		// Pack the critical jobs with preemptive EDF at the common speed.
		tasks := make([]Task, 0, len(critical))
		for _, j := range critical {
			tasks = append(tasks, Task{
				ID:       j.ID,
				Release:  j.Release,
				Deadline: j.Deadline,
				Duration: j.Work / speed,
			})
		}
		slots, err := PackEDF(tasks, blocked.Complement(a, b))
		if err != nil {
			return nil, fmt.Errorf("yds: packing critical interval [%g, %g]: %w", a, b, err)
		}
		for _, j := range critical {
			exec := Execution{JobID: j.ID, Speed: speed, Slots: slots[j.ID]}
			res.byJob[j.ID] = len(res.Executions)
			res.Executions = append(res.Executions, exec)
			blocked.AddAll(slots[j.ID])
		}
		pending = removeJobs(pending, critical)
	}
	sort.Slice(res.Executions, func(x, y int) bool {
		return res.Executions[x].JobID < res.Executions[y].JobID
	})
	for i, e := range res.Executions {
		res.byJob[e.JobID] = i
	}
	return res, nil
}

// MaxIntensity returns the maximum window intensity of the instance — the
// minimum constant processor speed at which preemptive EDF meets all
// deadlines. It is also the speed of the first YDS critical interval.
func MaxIntensity(jobs []Job) float64 {
	var blocked timeline.SlotSet
	_, _, _, speed, err := criticalInterval(jobs, &blocked)
	if err != nil {
		return 0
	}
	return speed
}

// criticalInterval finds the window [a, b] (a from releases, b from
// deadlines) maximising contained-work / available-time, with deterministic
// tie-breaking (earlier a, then later b).
func criticalInterval(pending []Job, blocked *timeline.SlotSet) (a, b float64, critical []Job, speed float64, err error) {
	if len(pending) == 0 {
		return 0, 0, nil, 0, errors.New("yds: no pending jobs")
	}
	releases := make([]float64, 0, len(pending))
	deadlines := make([]float64, 0, len(pending))
	for _, j := range pending {
		releases = append(releases, j.Release)
		deadlines = append(deadlines, j.Deadline)
	}
	releases = timeline.Breakpoints(releases)
	deadlines = timeline.Breakpoints(deadlines)

	bestDelta := -1.0
	bestA, bestB := 0.0, 0.0
	found := false
	for _, ca := range releases {
		for _, cb := range deadlines {
			if cb <= ca {
				continue
			}
			var work float64
			contained := false
			for _, j := range pending {
				if j.Release >= ca-timeline.Eps && j.Deadline <= cb+timeline.Eps {
					work += j.Work
					contained = true
				}
			}
			if !contained {
				continue
			}
			avail := blocked.AvailableWithin(ca, cb)
			if avail <= timeline.Eps {
				return 0, 0, nil, 0, fmt.Errorf("%w: work %v in window [%g, %g] with no available time", ErrInfeasible, work, ca, cb)
			}
			delta := work / avail
			if delta > bestDelta+timeline.Eps ||
				(math.Abs(delta-bestDelta) <= timeline.Eps && (ca < bestA-timeline.Eps ||
					(math.Abs(ca-bestA) <= timeline.Eps && cb > bestB+timeline.Eps))) {
				bestDelta, bestA, bestB = delta, ca, cb
				found = true
			}
		}
	}
	if !found {
		return 0, 0, nil, 0, errors.New("yds: no candidate interval")
	}
	for _, j := range pending {
		if j.Release >= bestA-timeline.Eps && j.Deadline <= bestB+timeline.Eps {
			critical = append(critical, j)
		}
	}
	return bestA, bestB, critical, bestDelta, nil
}

func removeJobs(pending, toRemove []Job) []Job {
	rm := make(map[int]bool, len(toRemove))
	for _, j := range toRemove {
		rm[j.ID] = true
	}
	out := pending[:0]
	for _, j := range pending {
		if !rm[j.ID] {
			out = append(out, j)
		}
	}
	return out
}
