package yds

import (
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/timeline"
)

// Task is a unit of work for the preemptive-EDF packer: it must receive
// Duration units of time within [Release, Deadline], restricted to the
// available slots handed to PackEDF.
type Task struct {
	ID                int
	Release, Deadline float64
	Duration          float64
}

// PackEDF schedules the tasks with preemptive Earliest-Deadline-First
// inside the given available slots (disjoint, ascending). It returns the
// execution slots per task id. An error is returned when EDF cannot meet a
// deadline — which, per the YDS/Most-Critical-First theory, only happens on
// genuinely infeasible input (or from numeric drift beyond tolerance).
func PackEDF(tasks []Task, avail []timeline.Interval) (map[int][]timeline.Interval, error) {
	for _, tk := range tasks {
		if tk.Duration < 0 || math.IsNaN(tk.Duration) {
			return nil, fmt.Errorf("yds: task %d has invalid duration %v", tk.ID, tk.Duration)
		}
		if tk.Deadline <= tk.Release {
			return nil, fmt.Errorf("yds: task %d has empty window [%g, %g]", tk.ID, tk.Release, tk.Deadline)
		}
	}
	byRelease := make([]Task, len(tasks))
	copy(byRelease, tasks)
	sort.Slice(byRelease, func(a, b int) bool {
		if byRelease[a].Release != byRelease[b].Release {
			return byRelease[a].Release < byRelease[b].Release
		}
		return byRelease[a].ID < byRelease[b].ID
	})

	remaining := make(map[int]float64, len(tasks))
	lastEnd := make(map[int]float64, len(tasks))
	out := make(map[int][]timeline.Interval, len(tasks))
	for _, tk := range tasks {
		remaining[tk.ID] = tk.Duration
		out[tk.ID] = nil
	}

	// ready holds released unfinished tasks; small instances make a linear
	// scan for the earliest deadline acceptable and simpler than a heap.
	var ready []Task
	next := 0 // index into byRelease of the next unreleased task
	pickEDF := func() int {
		best := -1
		for i, tk := range ready {
			if best == -1 ||
				tk.Deadline < ready[best].Deadline-timeline.Eps ||
				(math.Abs(tk.Deadline-ready[best].Deadline) <= timeline.Eps && tk.ID < ready[best].ID) {
				best = i
			}
		}
		return best
	}

	for _, slot := range avail {
		t := slot.Start
		for t < slot.End-timeline.Eps {
			for next < len(byRelease) && byRelease[next].Release <= t+timeline.Eps {
				if remaining[byRelease[next].ID] > timeline.Eps {
					ready = append(ready, byRelease[next])
				} else {
					delete(remaining, byRelease[next].ID)
				}
				next++
			}
			if len(ready) == 0 {
				// Idle until the next release or the end of the slot.
				if next >= len(byRelease) {
					t = slot.End
					break
				}
				t = math.Max(t, byRelease[next].Release)
				continue
			}
			bi := pickEDF()
			cur := ready[bi]
			// Run until: task finishes, a new release arrives (possible
			// preemption), or the slot ends.
			horizon := slot.End
			if next < len(byRelease) && byRelease[next].Release < horizon {
				horizon = byRelease[next].Release
			}
			run := math.Min(remaining[cur.ID], horizon-t)
			if run > timeline.Eps {
				appendSlot(out, lastEnd, cur.ID, timeline.Interval{Start: t, End: t + run})
				remaining[cur.ID] -= run
				t += run
			} else {
				t = horizon
			}
			if remaining[cur.ID] <= timeline.Eps {
				if t > cur.Deadline+1e-6 {
					return nil, fmt.Errorf("yds: task %d finishes at %g past deadline %g", cur.ID, t, cur.Deadline)
				}
				ready = append(ready[:bi], ready[bi+1:]...)
			}
		}
	}
	for id, rem := range remaining {
		if rem > 1e-6 {
			return nil, fmt.Errorf("yds: task %d has %v unscheduled work (insufficient available time)", id, rem)
		}
	}
	return out, nil
}

// appendSlot appends an execution slot, merging with the previous slot when
// contiguous.
func appendSlot(out map[int][]timeline.Interval, lastEnd map[int]float64, id int, iv timeline.Interval) {
	slots := out[id]
	if len(slots) > 0 && iv.Start-lastEnd[id] <= timeline.Eps {
		slots[len(slots)-1].End = iv.End
	} else {
		slots = append(slots, iv)
	}
	out[id] = slots
	lastEnd[id] = iv.End
}
