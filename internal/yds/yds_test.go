package yds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/timeline"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name string
		j    Job
		ok   bool
	}{
		{"valid", Job{ID: 1, Release: 0, Deadline: 1, Work: 1}, true},
		{"zero work", Job{ID: 1, Release: 0, Deadline: 1, Work: 0}, false},
		{"inverted window", Job{ID: 1, Release: 2, Deadline: 1, Work: 1}, false},
		{"nan", Job{ID: 1, Release: math.NaN(), Deadline: 1, Work: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.j.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestSolveSingleJob(t *testing.T) {
	res, err := Solve([]Job{{ID: 7, Release: 2, Deadline: 6, Work: 8}})
	if err != nil {
		t.Fatal(err)
	}
	e, ok := res.ByJob(7)
	if !ok {
		t.Fatal("job 7 missing from result")
	}
	if !almostEqual(e.Speed, 2, 1e-9) {
		t.Fatalf("speed = %v, want 2 (= 8/4)", e.Speed)
	}
	if !almostEqual(e.Duration(), 4, 1e-9) {
		t.Fatalf("duration = %v, want 4", e.Duration())
	}
	// Energy for alpha=2: s^2 * dur = 4*4 = 16 = w * s^(alpha-1).
	if got := res.Energy(2); !almostEqual(got, 16, 1e-9) {
		t.Fatalf("Energy = %v, want 16", got)
	}
}

func TestSolvePaperExampleOne(t *testing.T) {
	// Example 1 mapped to SS-SP: jobs with works 6*sqrt(2) and 8, windows
	// [2,4] and [1,3]. The optimal schedule runs both at speed
	// (8+6*sqrt2)/3 across [1,4].
	wantSpeed := (8 + 6*math.Sqrt2) / 3
	res, err := Solve([]Job{
		{ID: 1, Release: 2, Deadline: 4, Work: 6 * math.Sqrt2},
		{ID: 2, Release: 1, Deadline: 3, Work: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{1, 2} {
		e, ok := res.ByJob(id)
		if !ok {
			t.Fatalf("job %d missing", id)
		}
		if !almostEqual(e.Speed, wantSpeed, 1e-9) {
			t.Fatalf("job %d speed = %v, want %v", id, e.Speed, wantSpeed)
		}
	}
	// The two executions tile [1,4] exactly.
	var total float64
	for _, e := range res.Executions {
		total += e.Duration()
	}
	if !almostEqual(total, 3, 1e-9) {
		t.Fatalf("total busy time = %v, want 3", total)
	}
}

func TestSolveTwoDisjointJobs(t *testing.T) {
	res, err := Solve([]Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 2}, // density 1
		{ID: 2, Release: 5, Deadline: 6, Work: 3}, // density 3
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := res.ByJob(1)
	e2, _ := res.ByJob(2)
	if !almostEqual(e1.Speed, 1, 1e-9) || !almostEqual(e2.Speed, 3, 1e-9) {
		t.Fatalf("speeds = %v, %v; want 1, 3", e1.Speed, e2.Speed)
	}
}

func TestSolveNestedCriticalInterval(t *testing.T) {
	// A tight inner job forces a high-speed critical interval; the outer
	// job must be scheduled around it at a lower speed.
	res, err := Solve([]Job{
		{ID: 1, Release: 4, Deadline: 5, Work: 10}, // density 10 — critical
		{ID: 2, Release: 0, Deadline: 10, Work: 9}, // fits around at speed 1
	})
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := res.ByJob(1)
	e2, _ := res.ByJob(2)
	if !almostEqual(e1.Speed, 10, 1e-9) {
		t.Fatalf("inner speed = %v, want 10", e1.Speed)
	}
	// Outer: 9 work over the remaining 9 available units.
	if !almostEqual(e2.Speed, 1, 1e-9) {
		t.Fatalf("outer speed = %v, want 1", e2.Speed)
	}
	// The outer job must not execute inside [4,5].
	for _, s := range e2.Slots {
		if s.Start < 5-timeline.Eps && s.End > 4+timeline.Eps {
			t.Fatalf("outer job slot %v overlaps the blocked critical interval", s)
		}
	}
}

func TestSolveRejectsInvalid(t *testing.T) {
	if _, err := Solve([]Job{{ID: 1, Release: 0, Deadline: 1, Work: -1}}); err == nil {
		t.Fatal("invalid job accepted")
	}
	if _, err := Solve([]Job{
		{ID: 1, Release: 0, Deadline: 1, Work: 1},
		{ID: 1, Release: 0, Deadline: 2, Work: 1},
	}); err == nil {
		t.Fatal("duplicate job ids accepted")
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executions) != 0 {
		t.Fatal("empty instance should give empty result")
	}
	if res.Energy(2) != 0 {
		t.Fatal("empty instance energy should be 0")
	}
}

func TestMaxIntensity(t *testing.T) {
	jobs := []Job{
		{ID: 1, Release: 0, Deadline: 2, Work: 2},
		{ID: 2, Release: 0, Deadline: 1, Work: 3},
	}
	// Window [0,1] has work 3 => intensity 3. Window [0,2] has work 5 =>
	// 2.5. Max = 3.
	if got := MaxIntensity(jobs); !almostEqual(got, 3, 1e-9) {
		t.Fatalf("MaxIntensity = %v, want 3", got)
	}
	if got := MaxIntensity(nil); got != 0 {
		t.Fatalf("MaxIntensity(nil) = %v, want 0", got)
	}
}

// --- EDF packer -----------------------------------------------------------

func TestPackEDFSimple(t *testing.T) {
	slots, err := PackEDF(
		[]Task{
			{ID: 1, Release: 0, Deadline: 4, Duration: 1},
			{ID: 2, Release: 0, Deadline: 2, Duration: 1},
		},
		[]timeline.Interval{{Start: 0, End: 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	// EDF runs task 2 first (earlier deadline).
	if slots[2][0].Start != 0 {
		t.Fatalf("task 2 should start first, got %v", slots[2])
	}
	if !almostEqual(slots[1][0].Start, 1, 1e-9) {
		t.Fatalf("task 1 should start at 1, got %v", slots[1])
	}
}

func TestPackEDFPreemption(t *testing.T) {
	// Task 1 starts, then task 2 (tighter deadline) arrives and preempts.
	slots, err := PackEDF(
		[]Task{
			{ID: 1, Release: 0, Deadline: 10, Duration: 5},
			{ID: 2, Release: 2, Deadline: 4, Duration: 2},
		},
		[]timeline.Interval{{Start: 0, End: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(slots[1]) != 2 {
		t.Fatalf("task 1 should be split by preemption, got %v", slots[1])
	}
	if !almostEqual(slots[2][0].Start, 2, 1e-9) || !almostEqual(slots[2][0].End, 4, 1e-9) {
		t.Fatalf("task 2 slots = %v, want [2,4]", slots[2])
	}
}

func TestPackEDFAcrossHoles(t *testing.T) {
	slots, err := PackEDF(
		[]Task{{ID: 1, Release: 0, Deadline: 10, Duration: 4}},
		[]timeline.Interval{{Start: 0, End: 2}, {Start: 6, End: 9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range slots[1] {
		total += s.Length()
		if s.End > 2+timeline.Eps && s.Start < 6-timeline.Eps {
			t.Fatalf("slot %v inside the hole", s)
		}
	}
	if !almostEqual(total, 4, 1e-9) {
		t.Fatalf("scheduled %v, want 4", total)
	}
}

func TestPackEDFDetectsDeadlineMiss(t *testing.T) {
	_, err := PackEDF(
		[]Task{{ID: 1, Release: 0, Deadline: 1, Duration: 3}},
		[]timeline.Interval{{Start: 0, End: 10}},
	)
	if err == nil {
		t.Fatal("deadline miss not detected")
	}
}

func TestPackEDFDetectsInsufficientTime(t *testing.T) {
	_, err := PackEDF(
		[]Task{{ID: 1, Release: 0, Deadline: 10, Duration: 5}},
		[]timeline.Interval{{Start: 0, End: 2}},
	)
	if err == nil {
		t.Fatal("unschedulable work not detected")
	}
}

func TestPackEDFInvalidTask(t *testing.T) {
	if _, err := PackEDF([]Task{{ID: 1, Release: 0, Deadline: 1, Duration: -1}}, nil); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := PackEDF([]Task{{ID: 1, Release: 1, Deadline: 1, Duration: 1}}, nil); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestPackEDFIdleGapsBetweenReleases(t *testing.T) {
	slots, err := PackEDF(
		[]Task{
			{ID: 1, Release: 0, Deadline: 1, Duration: 0.5},
			{ID: 2, Release: 5, Deadline: 6, Duration: 0.5},
		},
		[]timeline.Interval{{Start: 0, End: 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(slots[2][0].Start, 5, 1e-9) {
		t.Fatalf("task 2 should wait for its release, got %v", slots[2])
	}
}

// --- Properties ------------------------------------------------------------

// randomFeasibleJobs generates jobs with generous windows.
func randomFeasibleJobs(rng *rand.Rand, n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		r := rng.Float64() * 50
		d := r + 1 + rng.Float64()*30
		jobs[i] = Job{ID: i, Release: r, Deadline: d, Work: 0.5 + rng.Float64()*10}
	}
	return jobs
}

// TestPropertyYDSFeasibleAndComplete: the schedule respects windows and
// completes all work.
func TestPropertyYDSFeasibleAndComplete(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomFeasibleJobs(rng, 2+rng.Intn(10))
		res, err := Solve(jobs)
		if err != nil {
			return false
		}
		for _, j := range jobs {
			e, ok := res.ByJob(j.ID)
			if !ok {
				return false
			}
			var done float64
			for _, s := range e.Slots {
				if s.Start < j.Release-1e-6 || s.End > j.Deadline+1e-6 {
					return false
				}
				done += s.Length() * e.Speed
			}
			if math.Abs(done-j.Work) > 1e-5*math.Max(1, j.Work) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyYDSProcessorNeverSharesTime: at most one job runs at a time.
func TestPropertyYDSProcessorNeverSharesTime(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomFeasibleJobs(rng, 2+rng.Intn(8))
		res, err := Solve(jobs)
		if err != nil {
			return false
		}
		type occ struct{ s, e float64 }
		var occs []occ
		for _, ex := range res.Executions {
			for _, s := range ex.Slots {
				occs = append(occs, occ{s.Start, s.End})
			}
		}
		for i := range occs {
			for j := i + 1; j < len(occs); j++ {
				lo := math.Max(occs[i].s, occs[j].s)
				hi := math.Min(occs[i].e, occs[j].e)
				if hi-lo > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyYDSEnergyBounds: optimal energy lies between the Jensen lower
// bound and the constant-max-intensity upper bound.
func TestPropertyYDSEnergyBounds(t *testing.T) {
	const alpha = 2.5
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomFeasibleJobs(rng, 2+rng.Intn(8))
		res, err := Solve(jobs)
		if err != nil {
			return false
		}
		energy := res.Energy(alpha)

		var totalWork float64
		for _, j := range jobs {
			totalWork += j.Work
		}
		smax := MaxIntensity(jobs)
		upper := totalWork * math.Pow(smax, alpha-1)
		if energy > upper*(1+1e-6) {
			return false
		}
		// Jensen: energy over any window >= |I| * delta(I)^alpha. Check
		// the window of each job pair.
		for _, a := range jobs {
			for _, b := range jobs {
				lo, hi := a.Release, b.Deadline
				if hi <= lo {
					continue
				}
				var work float64
				for _, j := range jobs {
					if j.Release >= lo-1e-12 && j.Deadline <= hi+1e-12 {
						work += j.Work
					}
				}
				lower := (hi - lo) * math.Pow(work/(hi-lo), alpha)
				if work > 0 && energy < lower*(1-1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyYDSDominatesConstantSpeed: YDS energy is no worse than EDF at
// the minimal constant feasible speed.
func TestPropertyYDSDominatesConstantSpeed(t *testing.T) {
	const alpha = 3
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		jobs := randomFeasibleJobs(rng, 2+rng.Intn(6))
		res, err := Solve(jobs)
		if err != nil {
			return false
		}
		smax := MaxIntensity(jobs)
		var totalWork float64
		for _, j := range jobs {
			totalWork += j.Work
		}
		constEnergy := totalWork * math.Pow(smax, alpha-1)
		return res.Energy(alpha) <= constEnergy*(1+1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
