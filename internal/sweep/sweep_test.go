package sweep

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestMapOrderedAcrossWorkerCounts is the pool-level determinism contract:
// identical results and identical emit sequences for every worker count,
// even when per-index latency is adversarially shuffled.
func TestMapOrderedAcrossWorkerCounts(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, n)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(3)) * time.Millisecond
	}
	run := func(workers int) ([]int, []int) {
		var emitted []int
		res, err := Map(context.Background(), n, workers,
			func(_ context.Context, i, _ int) (int, error) {
				time.Sleep(delays[i])
				return i * i, nil
			},
			func(i, _ int) { emitted = append(emitted, i) })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, emitted
	}
	want, wantEmit := run(1)
	for i, v := range want {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	for _, workers := range []int{2, 8, 64, 0} {
		got, emitted := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
		if len(emitted) != len(wantEmit) {
			t.Fatalf("workers=%d: %d emits, want %d", workers, len(emitted), len(wantEmit))
		}
		for i := range emitted {
			if emitted[i] != i {
				t.Fatalf("workers=%d: emit %d fired for index %d, want strictly increasing order", workers, i, emitted[i])
			}
		}
	}
}

// TestMapWorkerIDsStable checks the per-worker scratch contract: worker ids
// stay in [0, workers) and a given worker never runs two indices at once.
func TestMapWorkerIDsStable(t *testing.T) {
	const n, workers = 40, 4
	var mu sync.Mutex
	busy := make([]bool, workers)
	_, err := Map(context.Background(), n, workers, func(_ context.Context, i, w int) (int, error) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
		}
		mu.Lock()
		if busy[w] {
			t.Errorf("worker %d re-entered concurrently", w)
		}
		busy[w] = true
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		busy[w] = false
		mu.Unlock()
		return i, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapError: a failing index cancels the pool context, in-flight and
// later indices see the cancellation, and the reported error is the
// failure, not a secondary context.Canceled.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var cancelled int32
	var mu sync.Mutex
	_, err := Map(context.Background(), 32, 4, func(ctx context.Context, i, _ int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("cell 5: %w", boom)
		}
		select {
		case <-ctx.Done():
			mu.Lock()
			cancelled++
			mu.Unlock()
			return 0, ctx.Err()
		case <-time.After(2 * time.Millisecond):
			return i, nil
		}
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
}

// TestMapParentCancellation: cancelling the parent context stops the pool
// within the in-flight cells and surfaces the context error.
func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Map(ctx, 1000, 4, func(ctx context.Context, i, _ int) (int, error) {
			mu.Lock()
			ran++
			mu.Unlock()
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
				return i, nil
			}
		}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error = %v, want context.Canceled", err)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after parent cancellation")
	}
	mu.Lock()
	defer mu.Unlock()
	if ran >= 1000 {
		t.Fatalf("pool ran all %d cells despite cancellation", ran)
	}
}

// TestMapEmptyAndSmall covers the degenerate shapes.
func TestMapEmptyAndSmall(t *testing.T) {
	res, err := Map(context.Background(), 0, 8, func(context.Context, int, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	}, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("n=0: res=%v err=%v", res, err)
	}
	res, err = Map(context.Background(), 1, 8, func(_ context.Context, i, w int) (int, error) {
		if w != 0 {
			t.Errorf("single-cell pool used worker %d", w)
		}
		return 41 + i, nil
	}, nil)
	if err != nil || len(res) != 1 || res[0] != 41 {
		t.Fatalf("n=1: res=%v err=%v", res, err)
	}
}
