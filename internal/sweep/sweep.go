// Package sweep implements the deterministic bounded worker pool under the
// scenario-sweep engine (the root package's Sweep facade) and the
// experiment grids in internal/experiments. Its one primitive, Map, fans a
// fixed index range out over a worker pool while guaranteeing that the
// collected results — and the order of the streaming emit callback — are
// pure functions of the per-index work, never of the worker count or of
// scheduling timing. That guarantee is what lets `dcnflow sweep` promise
// byte-identical output at -workers 1 and -workers 8, and it is enforced by
// tests at this level and again at the CLI level.
//
// Determinism rules callers must follow:
//
//   - the work function must be a pure function of its index (derive any
//     seeds from the index or from per-cell spec data, never from a shared
//     RNG or from completion order), and
//   - per-worker mutable scratch is fine (the worker id is handed to the
//     work function for exactly that purpose), as long as the scratch never
//     changes results — only speed.
package sweep

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(ctx, i, worker) for every index i in [0, n) on a pool of at
// most workers goroutines (workers <= 0 selects GOMAXPROCS; the pool never
// exceeds n) and returns the n results in index order.
//
// The worker argument passed to fn is a stable id in [0, workers): a worker
// processes many indices sequentially, so callers can key reusable scratch
// (solver state, buffers) by it. Indices are handed out by an atomic
// counter — distribution across workers is timing-dependent, but because
// results are collected by index the returned slice is identical for every
// worker count.
//
// When emit is non-nil it is called as emit(i, result) for every index
// whose fn returned nil, serialized and in strictly increasing index order
// (a reorder buffer holds completed results until their predecessors
// finish). This is the streaming hook: JSONL writers and progress callbacks
// attach here and observe one deterministic sequence.
//
// Cancellation: fn receives a context derived from ctx that is cancelled as
// soon as any fn returns an error. Workers stop pulling new indices once
// the context ends, so Map returns promptly — within one in-flight cell per
// worker. The returned error is ctx's error when the parent context ended,
// otherwise the lowest-index non-cancellation error (falling back to the
// lowest-index error of any kind). The result slice is still returned so
// callers can salvage completed prefixes, but it is complete only when the
// error is nil.
func Map[R any](ctx context.Context, n, workers int, fn func(ctx context.Context, index, worker int) (R, error), emit func(index int, r R)) ([]R, error) {
	results := make([]R, n)
	if n <= 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		errs     = make([]error, n)
		done     = make([]bool, n)
		frontier int
		emitting bool
		wg       sync.WaitGroup
	)
	// flush advances the emission frontier: every completed index whose
	// predecessors are all resolved is emitted, in order (erroring indices
	// are skipped). Only one goroutine emits at a time (the `emitting`
	// flag), and the callbacks run with mu released — a slow consumer (a
	// JSONL writer on a slow disk) delays emission, never the other
	// workers' solves. Called with mu held; returns with mu held.
	flush := func() {
		if emit == nil || emitting {
			return
		}
		emitting = true
		for {
			start := frontier
			for frontier < n && (done[frontier] || errs[frontier] != nil) {
				frontier++
			}
			batch := frontier
			if batch == start {
				break
			}
			mu.Unlock()
			for i := start; i < batch; i++ {
				if done[i] {
					emit(i, results[i])
				}
			}
			mu.Lock()
		}
		emitting = false
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if poolCtx.Err() != nil {
					mu.Lock()
					errs[i] = poolCtx.Err()
					flush()
					mu.Unlock()
					continue
				}
				r, err := fn(poolCtx, i, worker)
				mu.Lock()
				if err != nil {
					errs[i] = err
					cancel()
				} else {
					results[i] = r
					done[i] = true
				}
				flush()
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return results, err
		}
	}
	return results, first
}
