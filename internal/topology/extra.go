package topology

import (
	"fmt"
	"math/rand"

	"dcnflow/internal/graph"
)

// VL2 builds a VL2-style folded-Clos topology [Greenberg et al., SIGCOMM
// 2009]: di intermediate switches, da aggregation switches (each connected
// to every intermediate switch), ToR switches each dual-homed to two
// aggregation switches, and hostsPerTor servers per ToR.
func VL2(di, da, tors, hostsPerTor int, capacity float64) (*Topology, error) {
	if di < 1 || da < 2 || tors < 1 || hostsPerTor < 1 {
		return nil, fmt.Errorf("vl2: invalid dimensions di=%d da=%d tors=%d hosts=%d", di, da, tors, hostsPerTor)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("vl2: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	ints := make([]graph.NodeID, di)
	for i := range ints {
		ints[i] = g.AddNode(fmt.Sprintf("int-%d", i), graph.KindCoreSwitch)
	}
	aggs := make([]graph.NodeID, da)
	for i := range aggs {
		aggs[i] = g.AddNode(fmt.Sprintf("agg-%d", i), graph.KindAggSwitch)
	}
	// Full bipartite intermediate <-> aggregation.
	for _, iv := range ints {
		for _, av := range aggs {
			if _, _, err := g.AddBiEdge(iv, av, capacity); err != nil {
				return nil, fmt.Errorf("vl2 int-agg: %w", err)
			}
		}
	}
	var hosts []graph.NodeID
	torIDs := make([]graph.NodeID, tors)
	for t := 0; t < tors; t++ {
		tor := g.AddNode(fmt.Sprintf("tor-%d", t), graph.KindEdgeSwitch)
		torIDs[t] = tor
		// Dual-home each ToR to two distinct aggregation switches.
		a1 := aggs[t%da]
		a2 := aggs[(t+1)%da]
		if _, _, err := g.AddBiEdge(tor, a1, capacity); err != nil {
			return nil, fmt.Errorf("vl2 tor-agg: %w", err)
		}
		if _, _, err := g.AddBiEdge(tor, a2, capacity); err != nil {
			return nil, fmt.Errorf("vl2 tor-agg: %w", err)
		}
		for h := 0; h < hostsPerTor; h++ {
			host := g.AddNode(fmt.Sprintf("host-%d-%d", t, h), graph.KindHost)
			hosts = append(hosts, host)
			if _, _, err := g.AddBiEdge(tor, host, capacity); err != nil {
				return nil, fmt.Errorf("vl2 tor-host: %w", err)
			}
		}
	}
	switches := make([]graph.NodeID, 0, di+da+tors)
	switches = append(switches, ints...)
	switches = append(switches, aggs...)
	switches = append(switches, torIDs...)
	return &Topology{
		Name:     fmt.Sprintf("vl2(%d,%d,%d,%d)", di, da, tors, hostsPerTor),
		Graph:    g,
		Hosts:    hosts,
		Switches: switches,
	}, nil
}

// Jellyfish builds a Jellyfish-style random regular switch graph [Singla et
// al., NSDI 2012]: switches wired as an (approximately) degree-regular
// random graph, each also hosting hostsPerSwitch servers. The wiring is
// deterministic per seed; if the randomized pairing dead-ends, remaining
// stubs are left unwired (degree may fall short by one on a few switches),
// which mirrors practical incremental-expansion builds.
func Jellyfish(switches, degree, hostsPerSwitch int, capacity float64, seed int64) (*Topology, error) {
	if switches < 2 || degree < 1 || hostsPerSwitch < 0 {
		return nil, fmt.Errorf("jellyfish: invalid dimensions switches=%d degree=%d hosts=%d", switches, degree, hostsPerSwitch)
	}
	if degree >= switches {
		return nil, fmt.Errorf("jellyfish: degree %d must be below switch count %d", degree, switches)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("jellyfish: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	sw := make([]graph.NodeID, switches)
	for i := range sw {
		sw[i] = g.AddNode(fmt.Sprintf("sw-%d", i), graph.KindSwitch)
	}
	rng := rand.New(rand.NewSource(seed))

	// Stub matching: every switch contributes `degree` stubs; repeatedly
	// pair random distinct stubs avoiding duplicates.
	remaining := make([]int, switches)
	for i := range remaining {
		remaining[i] = degree
	}
	connected := make(map[[2]int]bool)
	hasEdge := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		return connected[[2]int{a, b}]
	}
	markEdge := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		connected[[2]int{a, b}] = true
	}
	// A spanning ring first guarantees connectivity.
	for i := 0; i < switches; i++ {
		j := (i + 1) % switches
		if remaining[i] > 0 && remaining[j] > 0 && !hasEdge(i, j) {
			if _, _, err := g.AddBiEdge(sw[i], sw[j], capacity); err != nil {
				return nil, fmt.Errorf("jellyfish ring: %w", err)
			}
			markEdge(i, j)
			remaining[i]--
			remaining[j]--
		}
	}
	// Random pairing for the rest, with a bounded retry budget.
	for tries := 0; tries < 50*switches*degree; tries++ {
		var stubs []int
		for i, r := range remaining {
			if r > 0 {
				stubs = append(stubs, i)
			}
		}
		if len(stubs) < 2 {
			break
		}
		a := stubs[rng.Intn(len(stubs))]
		b := stubs[rng.Intn(len(stubs))]
		if a == b || hasEdge(a, b) {
			continue
		}
		if _, _, err := g.AddBiEdge(sw[a], sw[b], capacity); err != nil {
			return nil, fmt.Errorf("jellyfish pair: %w", err)
		}
		markEdge(a, b)
		remaining[a]--
		remaining[b]--
	}

	var hosts []graph.NodeID
	for i := 0; i < switches; i++ {
		for h := 0; h < hostsPerSwitch; h++ {
			host := g.AddNode(fmt.Sprintf("host-%d-%d", i, h), graph.KindHost)
			hosts = append(hosts, host)
			if _, _, err := g.AddBiEdge(sw[i], host, capacity); err != nil {
				return nil, fmt.Errorf("jellyfish host: %w", err)
			}
		}
	}
	return &Topology{
		Name:     fmt.Sprintf("jellyfish(%d,%d,%d)", switches, degree, hostsPerSwitch),
		Graph:    g,
		Hosts:    hosts,
		Switches: sw,
	}, nil
}
