package topology

import (
	"testing"

	"dcnflow/internal/graph"
)

// TestGeneratorInvariants is the table-driven invariant suite over the five
// data-center generators: exact node/physical-link/host counts (closed
// forms from the defining papers), capacity symmetry (every directed edge
// has a reverse twin with the same capacity — the paper's bidirectional
// identical-link assumption) and full host-pair connectivity.
func TestGeneratorInvariants(t *testing.T) {
	const capacity = 7.5
	cases := []struct {
		name                string
		build               func() (*Topology, error)
		nodes, links, hosts int
		// exactLinks is false for the randomized Jellyfish wiring, whose
		// link count may fall short of the regular-graph closed form when
		// the stub matching dead-ends; links is then a lower bound from
		// the guaranteed spanning ring.
		exactLinks bool
	}{
		{
			// k=4: (k/2)^2 = 4 core + 4 pods x (2 agg + 2 edge) = 20
			// switches, k^3/4 = 16 hosts; links: 16 core-agg + 16
			// agg-edge + 16 edge-host.
			name:  "fattree-k4",
			build: func() (*Topology, error) { return FatTree(4, capacity) },
			nodes: 36, links: 48, hosts: 16, exactLinks: true,
		},
		{
			// k=8 is the paper's evaluation topology: 80 switches and
			// 128 servers.
			name:  "fattree-k8",
			build: func() (*Topology, error) { return FatTree(8, capacity) },
			nodes: 208, links: 384, hosts: 128, exactLinks: true,
		},
		{
			// BCube(2,1): n^(l+1) = 4 servers, (l+1)*n^l = 4 switches,
			// each switch wired to n servers: 8 links.
			name:  "bcube-2-1",
			build: func() (*Topology, error) { return BCube(2, 1, capacity) },
			nodes: 8, links: 8, hosts: 4, exactLinks: true,
		},
		{
			// VL2(2,2,3,2): 2 intermediate + 2 aggregation + 3 ToR + 6
			// hosts; links: 4 int-agg + 2 per ToR + 6 tor-host.
			name:  "vl2-2-2-3-2",
			build: func() (*Topology, error) { return VL2(2, 2, 3, 2, capacity) },
			nodes: 13, links: 16, hosts: 6, exactLinks: true,
		},
		{
			// LeafSpine(2,3,2): full spine-leaf bipartite (6) plus 2
			// hosts per leaf (6).
			name:  "leafspine-2-3-2",
			build: func() (*Topology, error) { return LeafSpine(2, 3, 2, capacity) },
			nodes: 11, links: 12, hosts: 6, exactLinks: true,
		},
		{
			// Jellyfish(6,3,1): 6 switches + 6 hosts; the spanning ring
			// guarantees >= 6 switch links, plus one host link each.
			name:  "jellyfish-6-3-1",
			build: func() (*Topology, error) { return Jellyfish(6, 3, 1, capacity, 11) },
			nodes: 12, links: 12, hosts: 6, exactLinks: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			top, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			g := top.Graph
			if got := g.NumNodes(); got != tc.nodes {
				t.Errorf("nodes = %d, want %d", got, tc.nodes)
			}
			if got := top.NumPhysicalLinks(); (tc.exactLinks && got != tc.links) || (!tc.exactLinks && got < tc.links) {
				t.Errorf("physical links = %d, want %d (exact=%v)", got, tc.links, tc.exactLinks)
			}
			if got := len(top.Hosts); got != tc.hosts {
				t.Errorf("hosts = %d, want %d", got, tc.hosts)
			}
			if len(top.Hosts)+len(top.Switches) != g.NumNodes() {
				t.Errorf("hosts (%d) + switches (%d) != nodes (%d)", len(top.Hosts), len(top.Switches), g.NumNodes())
			}
			hostSet := make(map[graph.NodeID]bool)
			for _, h := range top.Hosts {
				if hostSet[h] {
					t.Errorf("host %d listed twice", h)
				}
				hostSet[h] = true
				n, err := g.Node(h)
				if err != nil || n.Kind != graph.KindHost {
					t.Errorf("host %d has kind %v", h, n.Kind)
				}
			}
			for _, s := range top.Switches {
				if hostSet[s] {
					t.Errorf("node %d listed as both host and switch", s)
				}
			}

			// Capacity symmetry: every directed edge carries the uniform
			// capacity and has a reverse twin with the same endpoints and
			// capacity.
			for _, e := range g.Edges() {
				if e.Capacity != capacity {
					t.Errorf("edge %d capacity %v, want %v", e.ID, e.Capacity, capacity)
				}
				rid, ok := g.Reverse(e.ID)
				if !ok {
					t.Errorf("edge %d (%d->%d) has no reverse", e.ID, e.From, e.To)
					continue
				}
				r := g.MustEdge(rid)
				if r.From != e.To || r.To != e.From || r.Capacity != e.Capacity {
					t.Errorf("edge %d reverse mismatch: %+v vs %+v", e.ID, e, r)
				}
			}

			// Connectivity between every ordered host pair.
			for _, src := range top.Hosts {
				for _, dst := range top.Hosts {
					if src == dst {
						continue
					}
					if !g.Connected(src, dst) {
						t.Errorf("hosts %d and %d are not connected", src, dst)
					}
				}
			}
		})
	}
}

// TestJellyfishSeedsDiffer complements TestJellyfishDeterministicPerSeed
// (extra_test.go): distinct seeds must (almost surely) produce distinct
// wirings, otherwise the sweep engine's topology seed field is inert.
func TestJellyfishSeedsDiffer(t *testing.T) {
	a, err := Jellyfish(8, 3, 1, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Jellyfish(8, 3, 1, 1, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.DOT() == c.Graph.DOT() {
		t.Error("different seeds produced identical jellyfish wirings")
	}
}
