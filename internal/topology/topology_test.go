package topology

import (
	"testing"

	"dcnflow/internal/graph"
)

func TestFatTreeCounts(t *testing.T) {
	tests := []struct {
		k            int
		wantSwitches int
		wantHosts    int
		wantLinks    int // physical links
	}{
		// k-ary fat-tree: (k/2)^2 core + k*k switches; k^3/4 hosts;
		// links: core-agg k^2/2*k/2? Computed per construction:
		// per pod: (k/2)^2 agg-edge + (k/2)^2 core-agg + (k/2)^2 host links
		// => 3k(k/2)^2 total.
		{2, 5, 2, 6},
		{4, 20, 16, 48},
		{8, 80, 128, 384}, // the paper's evaluation topology
	}
	for _, tt := range tests {
		ft, err := FatTree(tt.k, 10)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", tt.k, err)
		}
		if got := len(ft.Switches); got != tt.wantSwitches {
			t.Errorf("k=%d switches = %d, want %d", tt.k, got, tt.wantSwitches)
		}
		if got := len(ft.Hosts); got != tt.wantHosts {
			t.Errorf("k=%d hosts = %d, want %d", tt.k, got, tt.wantHosts)
		}
		if got := ft.NumPhysicalLinks(); got != tt.wantLinks {
			t.Errorf("k=%d links = %d, want %d", tt.k, got, tt.wantLinks)
		}
	}
}

func TestFatTreeInvalid(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, -2} {
		if _, err := FatTree(k, 10); err == nil {
			t.Errorf("FatTree(%d) succeeded, want error", k)
		}
	}
	if _, err := FatTree(4, 0); err == nil {
		t.Error("FatTree with zero capacity succeeded, want error")
	}
}

func TestFatTreeAllPairsConnected(t *testing.T) {
	ft, err := FatTree(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	h := ft.Hosts
	// Sample pairs across pods and within pod.
	pairs := [][2]int{{0, 1}, {0, 5}, {0, len(h) - 1}, {3, 12}}
	for _, p := range pairs {
		if !ft.Graph.Connected(h[p[0]], h[p[1]]) {
			t.Errorf("hosts %d and %d not connected", p[0], p[1])
		}
		sp, err := ft.Graph.ShortestPath(h[p[0]], h[p[1]])
		if err != nil {
			t.Fatalf("ShortestPath: %v", err)
		}
		if sp.Len() > 6 {
			t.Errorf("fat-tree path %d->%d has %d hops, want <= 6", p[0], p[1], sp.Len())
		}
	}
}

func TestFatTreeDiameterIsSix(t *testing.T) {
	ft, err := FatTree(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Hosts in different pods are exactly 6 hops apart
	// (host-edge-agg-core-agg-edge-host).
	a, b := ft.Hosts[0], ft.Hosts[len(ft.Hosts)-1]
	sp, err := ft.Graph.ShortestPath(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 6 {
		t.Fatalf("cross-pod path length = %d, want 6", sp.Len())
	}
}

func TestBCubeCounts(t *testing.T) {
	tests := []struct {
		n, l         int
		wantHosts    int
		wantSwitches int
		wantLinks    int
	}{
		{2, 0, 2, 1, 2},
		{2, 1, 4, 4, 8},
		{4, 1, 16, 8, 32},
	}
	for _, tt := range tests {
		bc, err := BCube(tt.n, tt.l, 10)
		if err != nil {
			t.Fatalf("BCube(%d,%d): %v", tt.n, tt.l, err)
		}
		if got := len(bc.Hosts); got != tt.wantHosts {
			t.Errorf("BCube(%d,%d) hosts = %d, want %d", tt.n, tt.l, got, tt.wantHosts)
		}
		if got := len(bc.Switches); got != tt.wantSwitches {
			t.Errorf("BCube(%d,%d) switches = %d, want %d", tt.n, tt.l, got, tt.wantSwitches)
		}
		if got := bc.NumPhysicalLinks(); got != tt.wantLinks {
			t.Errorf("BCube(%d,%d) links = %d, want %d", tt.n, tt.l, got, tt.wantLinks)
		}
	}
}

func TestBCubeConnectivityAndDegree(t *testing.T) {
	bc, err := BCube(4, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every server has l+1 = 2 ports.
	for _, h := range bc.Hosts {
		if got := len(bc.Graph.OutEdges(h)); got != 2 {
			t.Fatalf("server %d degree = %d, want 2", h, got)
		}
	}
	// Every switch has n = 4 ports.
	for _, s := range bc.Switches {
		if got := len(bc.Graph.OutEdges(s)); got != 4 {
			t.Fatalf("switch %d degree = %d, want 4", s, got)
		}
	}
	if !bc.Graph.Connected(bc.Hosts[0], bc.Hosts[len(bc.Hosts)-1]) {
		t.Fatal("bcube endpoints not connected")
	}
}

func TestBCubeInvalid(t *testing.T) {
	if _, err := BCube(1, 1, 10); err == nil {
		t.Error("BCube(1,1) succeeded, want error")
	}
	if _, err := BCube(2, -1, 10); err == nil {
		t.Error("BCube(2,-1) succeeded, want error")
	}
	if _, err := BCube(2, 1, 0); err == nil {
		t.Error("BCube with zero capacity succeeded, want error")
	}
}

func TestLeafSpine(t *testing.T) {
	ls, err := LeafSpine(4, 8, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Hosts) != 128 {
		t.Fatalf("hosts = %d, want 128", len(ls.Hosts))
	}
	if len(ls.Switches) != 12 {
		t.Fatalf("switches = %d, want 12", len(ls.Switches))
	}
	if ls.NumPhysicalLinks() != 4*8+128 {
		t.Fatalf("links = %d, want %d", ls.NumPhysicalLinks(), 4*8+128)
	}
	if !ls.Graph.Connected(ls.Hosts[0], ls.Hosts[127]) {
		t.Fatal("leaf-spine hosts not connected")
	}
	if _, err := LeafSpine(0, 1, 1, 10); err == nil {
		t.Error("LeafSpine(0,...) succeeded, want error")
	}
	if _, err := LeafSpine(1, 1, 1, -1); err == nil {
		t.Error("LeafSpine negative capacity succeeded, want error")
	}
}

func TestLine(t *testing.T) {
	ln, err := Line(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ln.Hosts) != 3 || ln.NumPhysicalLinks() != 2 {
		t.Fatalf("line(3): hosts=%d links=%d, want 3, 2", len(ln.Hosts), ln.NumPhysicalLinks())
	}
	p, err := ln.Graph.ShortestPath(ln.Hosts[0], ln.Hosts[2])
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("line path = %d hops, want 2", p.Len())
	}
	if _, err := Line(1, 5); err == nil {
		t.Error("Line(1) succeeded, want error")
	}
	if _, err := Line(3, 0); err == nil {
		t.Error("Line zero capacity succeeded, want error")
	}
}

func TestStar(t *testing.T) {
	st, err := Star(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Hosts) != 5 || st.NumPhysicalLinks() != 5 {
		t.Fatalf("star(5): hosts=%d links=%d, want 5, 5", len(st.Hosts), st.NumPhysicalLinks())
	}
	if _, err := Star(0, 2); err == nil {
		t.Error("Star(0) succeeded, want error")
	}
	if _, err := Star(3, 0); err == nil {
		t.Error("Star zero capacity succeeded, want error")
	}
}

func TestParallelLinks(t *testing.T) {
	pl, src, dst, err := ParallelLinks(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumPhysicalLinks() != 6 {
		t.Fatalf("parallel links = %d, want 6", pl.NumPhysicalLinks())
	}
	if len(pl.Graph.OutEdges(src)) != 6 || len(pl.Graph.OutEdges(dst)) != 6 {
		t.Fatal("parallel-link degrees wrong")
	}
	paths, err := pl.Graph.KShortestPaths(src, dst, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 6 {
		t.Fatalf("distinct src->dst paths = %d, want 6", len(paths))
	}
	if _, _, _, err := ParallelLinks(0, 3); err == nil {
		t.Error("ParallelLinks(0) succeeded, want error")
	}
	if _, _, _, err := ParallelLinks(2, 0); err == nil {
		t.Error("ParallelLinks zero capacity succeeded, want error")
	}
}

func TestInsertDigit(t *testing.T) {
	// s=5 (base 4: digits [1,1]), insert d=2 at pos 1 => digits [1,2,1]
	// = 1 + 2*4 + 1*16 = 25.
	if got := insertDigit(5, 2, 1, 4); got != 25 {
		t.Fatalf("insertDigit(5,2,1,4) = %d, want 25", got)
	}
	// pos 0 inserts the least significant digit.
	if got := insertDigit(3, 1, 0, 2); got != 7 {
		t.Fatalf("insertDigit(3,1,0,2) = %d, want 7", got)
	}
}

func TestHostsAreKindHost(t *testing.T) {
	ft, err := FatTree(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range ft.Hosts {
		n, err := ft.Graph.Node(h)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kind != graph.KindHost {
			t.Fatalf("host %d has kind %v", h, n.Kind)
		}
	}
}
