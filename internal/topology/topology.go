// Package topology generates the data-center network topologies used by the
// paper's evaluation and hardness constructions: fat-tree, BCube, leaf-spine
// Clos, line networks, star, and the parallel-link gadget from the
// NP-hardness reductions (Theorems 2 and 3).
//
// All generators produce bidirectional links (two directed edges per
// physical link) with uniform capacity, matching the paper's assumption of
// identical commodity switches and links.
package topology

import (
	"fmt"

	"dcnflow/internal/graph"
)

// Topology bundles a generated graph with the host nodes that can act as
// flow sources and destinations.
type Topology struct {
	// Name describes the topology instance, e.g. "fat-tree(k=8)".
	Name string
	// Graph is the directed network graph.
	Graph *graph.Graph
	// Hosts lists the server nodes in deterministic order.
	Hosts []graph.NodeID
	// Switches lists all switch nodes in deterministic order.
	Switches []graph.NodeID
}

// NumPhysicalLinks returns the number of physical (bidirectional) links.
func (t *Topology) NumPhysicalLinks() int { return t.Graph.NumEdges() / 2 }

// FatTree builds a k-ary fat-tree [Al-Fares et al., SIGCOMM'08] with
// (k/2)^2 core switches, k pods of k/2 aggregation and k/2 edge switches
// each, and k^3/4 hosts. k must be even and >= 2. Every link has the given
// capacity.
//
// For k=8 this yields exactly 80 switches and 128 servers — the topology
// used in the paper's Section V-C evaluation.
func FatTree(k int, capacity float64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("fat-tree: k must be even and >= 2, got %d", k)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("fat-tree: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	half := k / 2

	core := make([]graph.NodeID, half*half)
	for i := range core {
		core[i] = g.AddNode(fmt.Sprintf("core-%d", i), graph.KindCoreSwitch)
	}

	var (
		hosts    []graph.NodeID
		switches []graph.NodeID
	)
	switches = append(switches, core...)

	for pod := 0; pod < k; pod++ {
		aggs := make([]graph.NodeID, half)
		edges := make([]graph.NodeID, half)
		for i := 0; i < half; i++ {
			aggs[i] = g.AddNode(fmt.Sprintf("agg-%d-%d", pod, i), graph.KindAggSwitch)
		}
		for i := 0; i < half; i++ {
			edges[i] = g.AddNode(fmt.Sprintf("edge-%d-%d", pod, i), graph.KindEdgeSwitch)
		}
		switches = append(switches, aggs...)
		switches = append(switches, edges...)

		// Aggregation <-> edge full bipartite inside the pod.
		for _, a := range aggs {
			for _, e := range edges {
				if _, _, err := g.AddBiEdge(a, e, capacity); err != nil {
					return nil, fmt.Errorf("fat-tree agg-edge: %w", err)
				}
			}
		}
		// Aggregation i connects to core switches [i*half, (i+1)*half).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				c := core[i*half+j]
				if _, _, err := g.AddBiEdge(c, a, capacity); err != nil {
					return nil, fmt.Errorf("fat-tree core-agg: %w", err)
				}
			}
		}
		// Each edge switch hosts k/2 servers.
		for i, e := range edges {
			for j := 0; j < half; j++ {
				h := g.AddNode(fmt.Sprintf("host-%d-%d-%d", pod, i, j), graph.KindHost)
				hosts = append(hosts, h)
				if _, _, err := g.AddBiEdge(e, h, capacity); err != nil {
					return nil, fmt.Errorf("fat-tree edge-host: %w", err)
				}
			}
		}
	}
	return &Topology{
		Name:     fmt.Sprintf("fat-tree(k=%d)", k),
		Graph:    g,
		Hosts:    hosts,
		Switches: switches,
	}, nil
}

// BCube builds a BCube(n, l) server-centric topology [Guo et al.,
// SIGCOMM'09]: n^(l+1) servers, (l+1) levels of n^l switches each, where
// every server has l+1 ports, one per level. Every link has the given
// capacity. n >= 2 and l >= 0.
func BCube(n, l int, capacity float64) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("bcube: n must be >= 2, got %d", n)
	}
	if l < 0 {
		return nil, fmt.Errorf("bcube: l must be >= 0, got %d", l)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("bcube: capacity must be positive, got %v", capacity)
	}
	numServers := pow(n, l+1)
	numSwitchesPerLevel := pow(n, l)

	g := graph.New()
	hosts := make([]graph.NodeID, numServers)
	for i := range hosts {
		hosts[i] = g.AddNode(fmt.Sprintf("srv-%d", i), graph.KindHost)
	}
	var switches []graph.NodeID
	for level := 0; level <= l; level++ {
		for s := 0; s < numSwitchesPerLevel; s++ {
			sw := g.AddNode(fmt.Sprintf("sw-%d-%d", level, s), graph.KindSwitch)
			switches = append(switches, sw)
			// Switch s at level `level` connects the n servers whose digit
			// at position `level` (base n) varies while the other digits
			// spell s.
			for d := 0; d < n; d++ {
				srv := insertDigit(s, d, level, n)
				if _, _, err := g.AddBiEdge(sw, hosts[srv], capacity); err != nil {
					return nil, fmt.Errorf("bcube link: %w", err)
				}
			}
		}
	}
	return &Topology{
		Name:     fmt.Sprintf("bcube(n=%d,l=%d)", n, l),
		Graph:    g,
		Hosts:    hosts,
		Switches: switches,
	}, nil
}

// insertDigit interprets s as an l-digit base-n number (digits indexed from
// 0 = least significant), inserts digit d at position pos, and returns the
// resulting number: the server id attached to switch s at level pos.
func insertDigit(s, d, pos, n int) int {
	low := s % pow(n, pos)
	high := s / pow(n, pos)
	return high*pow(n, pos+1) + d*pow(n, pos) + low
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// LeafSpine builds a two-tier Clos with the given number of spine and leaf
// switches (full bipartite between tiers) and hostsPerLeaf servers per leaf.
func LeafSpine(spines, leaves, hostsPerLeaf int, capacity float64) (*Topology, error) {
	if spines < 1 || leaves < 1 || hostsPerLeaf < 1 {
		return nil, fmt.Errorf("leaf-spine: dimensions must be >= 1, got spines=%d leaves=%d hosts=%d", spines, leaves, hostsPerLeaf)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("leaf-spine: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	spineIDs := make([]graph.NodeID, spines)
	for i := range spineIDs {
		spineIDs[i] = g.AddNode(fmt.Sprintf("spine-%d", i), graph.KindCoreSwitch)
	}
	leafIDs := make([]graph.NodeID, leaves)
	for i := range leafIDs {
		leafIDs[i] = g.AddNode(fmt.Sprintf("leaf-%d", i), graph.KindEdgeSwitch)
	}
	var hosts []graph.NodeID
	for _, s := range spineIDs {
		for _, l := range leafIDs {
			if _, _, err := g.AddBiEdge(s, l, capacity); err != nil {
				return nil, fmt.Errorf("leaf-spine link: %w", err)
			}
		}
	}
	for i, l := range leafIDs {
		for j := 0; j < hostsPerLeaf; j++ {
			h := g.AddNode(fmt.Sprintf("host-%d-%d", i, j), graph.KindHost)
			hosts = append(hosts, h)
			if _, _, err := g.AddBiEdge(l, h, capacity); err != nil {
				return nil, fmt.Errorf("leaf-spine host link: %w", err)
			}
		}
	}
	switches := append(append([]graph.NodeID{}, spineIDs...), leafIDs...)
	return &Topology{
		Name:     fmt.Sprintf("leaf-spine(%dx%d,%d hosts/leaf)", spines, leaves, hostsPerLeaf),
		Graph:    g,
		Hosts:    hosts,
		Switches: switches,
	}, nil
}

// Line builds a line network of n nodes (n-1 physical links), the topology
// of the paper's Fig. 1 / Example 1. All nodes are usable as flow endpoints
// and are reported as hosts.
func Line(n int, capacity float64) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("line: need at least 2 nodes, got %d", n)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("line: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = g.AddNode(fmt.Sprintf("n-%d", i), graph.KindHost)
	}
	for i := 1; i < n; i++ {
		if _, _, err := g.AddBiEdge(nodes[i-1], nodes[i], capacity); err != nil {
			return nil, fmt.Errorf("line link: %w", err)
		}
	}
	return &Topology{
		Name:  fmt.Sprintf("line(%d)", n),
		Graph: g,
		Hosts: nodes,
	}, nil
}

// Star builds a star network: one center switch with n leaf hosts.
func Star(n int, capacity float64) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("star: need at least 1 leaf, got %d", n)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("star: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	center := g.AddNode("center", graph.KindSwitch)
	hosts := make([]graph.NodeID, n)
	for i := range hosts {
		hosts[i] = g.AddNode(fmt.Sprintf("leaf-%d", i), graph.KindHost)
		if _, _, err := g.AddBiEdge(center, hosts[i], capacity); err != nil {
			return nil, fmt.Errorf("star link: %w", err)
		}
	}
	return &Topology{
		Name:     fmt.Sprintf("star(%d)", n),
		Graph:    g,
		Hosts:    hosts,
		Switches: []graph.NodeID{center},
	}, nil
}

// ParallelLinks builds the hardness gadget of Theorems 2 and 3: two nodes
// src and dst connected by k parallel physical links. Flow endpoints are the
// two nodes; the function also returns them explicitly for convenience.
func ParallelLinks(k int, capacity float64) (*Topology, graph.NodeID, graph.NodeID, error) {
	if k < 1 {
		return nil, 0, 0, fmt.Errorf("parallel-links: need at least 1 link, got %d", k)
	}
	if capacity <= 0 {
		return nil, 0, 0, fmt.Errorf("parallel-links: capacity must be positive, got %v", capacity)
	}
	g := graph.New()
	src := g.AddNode("src", graph.KindHost)
	dst := g.AddNode("dst", graph.KindHost)
	for i := 0; i < k; i++ {
		if _, _, err := g.AddBiEdge(src, dst, capacity); err != nil {
			return nil, 0, 0, fmt.Errorf("parallel link %d: %w", i, err)
		}
	}
	t := &Topology{
		Name:  fmt.Sprintf("parallel(%d)", k),
		Graph: g,
		Hosts: []graph.NodeID{src, dst},
	}
	return t, src, dst, nil
}
