package topology

import (
	"testing"

	"dcnflow/internal/graph"
)

func TestVL2Counts(t *testing.T) {
	top, err := VL2(4, 8, 16, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Switches) != 4+8+16 {
		t.Fatalf("switches = %d, want 28", len(top.Switches))
	}
	if len(top.Hosts) != 16*20 {
		t.Fatalf("hosts = %d, want 320", len(top.Hosts))
	}
	// Links: 4*8 int-agg + 16*2 tor-agg + 320 host links.
	if got := top.NumPhysicalLinks(); got != 32+32+320 {
		t.Fatalf("links = %d, want 384", got)
	}
	if !top.Graph.Connected(top.Hosts[0], top.Hosts[len(top.Hosts)-1]) {
		t.Fatal("VL2 hosts not connected")
	}
}

func TestVL2Invalid(t *testing.T) {
	cases := [][4]int{{0, 2, 1, 1}, {1, 1, 1, 1}, {1, 2, 0, 1}, {1, 2, 1, 0}}
	for _, c := range cases {
		if _, err := VL2(c[0], c[1], c[2], c[3], 1); err == nil {
			t.Errorf("VL2(%v) accepted", c)
		}
	}
	if _, err := VL2(2, 2, 2, 2, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestJellyfishConnectivityAndDegree(t *testing.T) {
	top, err := Jellyfish(20, 4, 2, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Switches) != 20 || len(top.Hosts) != 40 {
		t.Fatalf("sizes = %d switches, %d hosts", len(top.Switches), len(top.Hosts))
	}
	// All pairs connected (ring guarantees it).
	if !top.Graph.Connected(top.Hosts[0], top.Hosts[39]) {
		t.Fatal("jellyfish hosts not connected")
	}
	// Switch degree (excluding host links) never exceeds the target.
	for i, sw := range top.Switches {
		degree := 0
		for _, eid := range top.Graph.OutEdges(sw) {
			to := top.Graph.MustEdge(eid).To
			node, err := top.Graph.Node(to)
			if err != nil {
				t.Fatal(err)
			}
			if node.Kind != graph.KindHost {
				degree++
			}
		}
		if degree > 4 {
			t.Fatalf("switch %d degree %d exceeds 4", i, degree)
		}
	}
}

func TestJellyfishDeterministicPerSeed(t *testing.T) {
	a, err := Jellyfish(12, 3, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Jellyfish(12, 3, 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs across identical seeds", i)
		}
	}
}

func TestJellyfishInvalid(t *testing.T) {
	if _, err := Jellyfish(1, 1, 1, 10, 0); err == nil {
		t.Error("too few switches accepted")
	}
	if _, err := Jellyfish(4, 4, 1, 10, 0); err == nil {
		t.Error("degree >= switches accepted")
	}
	if _, err := Jellyfish(4, 2, 1, 0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Jellyfish(4, 2, -1, 1, 0); err == nil {
		t.Error("negative hosts accepted")
	}
}
