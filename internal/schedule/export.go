package schedule

import (
	"encoding/json"
	"fmt"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/timeline"
)

// exportSegment is the serialized form of a RateSegment.
type exportSegment struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Rate  float64 `json:"rate"`
}

// exportFlow is the serialized form of a FlowSchedule.
type exportFlow struct {
	FlowID   int             `json:"flowId"`
	Edges    []int           `json:"edges"`
	Priority int             `json:"priority"`
	Segments []exportSegment `json:"segments"`
}

// exportSchedule is the serialized form of a Schedule.
type exportSchedule struct {
	HorizonStart float64      `json:"horizonStart"`
	HorizonEnd   float64      `json:"horizonEnd"`
	Flows        []exportFlow `json:"flows"`
}

// MarshalJSON serializes the schedule deterministically (flows in id
// order), so exports are byte-stable across runs.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	out := exportSchedule{
		HorizonStart: s.Horizon.Start,
		HorizonEnd:   s.Horizon.End,
		Flows:        make([]exportFlow, 0, len(s.flows)),
	}
	ids := s.FlowIDs()
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fs := s.flows[id]
		ef := exportFlow{
			FlowID:   int(fs.FlowID),
			Priority: fs.Priority,
			Edges:    make([]int, 0, len(fs.Path.Edges)),
			Segments: make([]exportSegment, 0, len(fs.Segments)),
		}
		for _, e := range fs.Path.Edges {
			ef.Edges = append(ef.Edges, int(e))
		}
		for _, seg := range fs.Segments {
			ef.Segments = append(ef.Segments, exportSegment{
				Start: seg.Interval.Start,
				End:   seg.Interval.End,
				Rate:  seg.Rate,
			})
		}
		out.Flows = append(out.Flows, ef)
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a schedule serialized by MarshalJSON. Segments are
// re-validated through SetFlow.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in exportSchedule
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("schedule: decode: %w", err)
	}
	s.Horizon = timeline.Interval{Start: in.HorizonStart, End: in.HorizonEnd}
	s.flows = make(map[flow.ID]*FlowSchedule, len(in.Flows))
	for _, ef := range in.Flows {
		fs := &FlowSchedule{
			FlowID:   flow.ID(ef.FlowID),
			Priority: ef.Priority,
			Path:     graph.Path{Edges: make([]graph.EdgeID, 0, len(ef.Edges))},
			Segments: make([]RateSegment, 0, len(ef.Segments)),
		}
		for _, e := range ef.Edges {
			fs.Path.Edges = append(fs.Path.Edges, graph.EdgeID(e))
		}
		for _, seg := range ef.Segments {
			fs.Segments = append(fs.Segments, RateSegment{
				Interval: timeline.Interval{Start: seg.Start, End: seg.End},
				Rate:     seg.Rate,
			})
		}
		if err := s.SetFlow(fs); err != nil {
			return fmt.Errorf("schedule: decode flow %d: %w", ef.FlowID, err)
		}
	}
	return nil
}
