package schedule

import (
	"math"
	"strings"
	"testing"

	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

func TestBreakdownMatchesTotals(t *testing.T) {
	g, _, p1, p2 := lineFixture(t)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 100}
	s := New(timeline.Interval{Start: 0, End: 10})
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 4}, Rate: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 2, End: 6}, Rate: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	b, err := s.Breakdown(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Total()-s.EnergyTotal(m)) > 1e-9 {
		t.Fatalf("breakdown total %v != EnergyTotal %v", b.Total(), s.EnergyTotal(m))
	}
	if math.Abs(b.Dynamic-s.EnergyDynamic(m)) > 1e-9 {
		t.Fatalf("breakdown dynamic %v != EnergyDynamic %v", b.Dynamic, s.EnergyDynamic(m))
	}
	// Line fixture nodes are all hosts: single tier "host-host".
	if len(b.Tiers) != 1 || b.Tiers[0].Tier != "host-host" {
		t.Fatalf("tiers = %+v", b.Tiers)
	}
	if b.Tiers[0].Links != 2 {
		t.Fatalf("active links in tier = %d, want 2", b.Tiers[0].Links)
	}
	if !strings.Contains(b.Table(), "host-host") {
		t.Fatal("table missing tier row")
	}
}

func TestBreakdownNilGraph(t *testing.T) {
	s := New(timeline.Interval{Start: 0, End: 1})
	if _, err := s.Breakdown(nil, power.Model{Mu: 1, Alpha: 2}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestBreakdownEmptySchedule(t *testing.T) {
	g, _, _, _ := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 1})
	b, err := s.Breakdown(g, power.Model{Sigma: 1, Mu: 1, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 0 || len(b.Tiers) != 0 {
		t.Fatalf("empty breakdown = %+v", b)
	}
}
