// Package schedule defines the schedule representation shared by all
// algorithms (Section II-B, Eq. 2): per-flow piecewise-constant
// transmission-rate functions s_i(t) plus a routing path P_i per flow. It
// also implements energy accounting (Eq. 5) and feasibility verification
// (Eq. 3).
package schedule

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

// RateSegment is one piece of a piecewise-constant rate function: the flow
// transmits at Rate during Interval.
type RateSegment struct {
	Interval timeline.Interval
	Rate     float64
}

// FlowSchedule is the schedule of a single flow: its chosen path and rate
// function.
type FlowSchedule struct {
	FlowID flow.ID
	// Path is the single routing path P_i carrying the flow.
	Path graph.Path
	// Segments is the piecewise-constant rate function, sorted by start
	// time with disjoint intervals.
	Segments []RateSegment
	// Priority is the packet priority derived from the flow's first
	// transmission time (Section III-C: earlier start = higher priority =
	// smaller value). It is advisory metadata for packet-switched
	// deployment.
	Priority int
}

// DataTransferred integrates the rate function: total data sent.
func (fs *FlowSchedule) DataTransferred() float64 {
	var sum float64
	for _, seg := range fs.Segments {
		sum += seg.Rate * seg.Interval.Length()
	}
	return sum
}

// Start returns the first transmission instant, or +Inf when the flow never
// transmits.
func (fs *FlowSchedule) Start() float64 {
	if len(fs.Segments) == 0 {
		return math.Inf(1)
	}
	return fs.Segments[0].Interval.Start
}

// End returns the last transmission instant, or -Inf when the flow never
// transmits.
func (fs *FlowSchedule) End() float64 {
	if len(fs.Segments) == 0 {
		return math.Inf(-1)
	}
	return fs.Segments[len(fs.Segments)-1].Interval.End
}

// MaxRate returns the largest segment rate.
func (fs *FlowSchedule) MaxRate() float64 {
	var max float64
	for _, seg := range fs.Segments {
		if seg.Rate > max {
			max = seg.Rate
		}
	}
	return max
}

// normalize sorts segments and validates disjointness.
func (fs *FlowSchedule) normalize() error {
	sort.Slice(fs.Segments, func(a, b int) bool {
		return fs.Segments[a].Interval.Start < fs.Segments[b].Interval.Start
	})
	for i, seg := range fs.Segments {
		if seg.Rate <= 0 {
			return fmt.Errorf("flow %d segment %d: rate %v must be positive", fs.FlowID, i, seg.Rate)
		}
		if seg.Interval.Empty() {
			return fmt.Errorf("flow %d segment %d: empty interval %v", fs.FlowID, i, seg.Interval)
		}
		if i > 0 && seg.Interval.Start < fs.Segments[i-1].Interval.End-timeline.Eps {
			return fmt.Errorf("flow %d segments %d and %d overlap", fs.FlowID, i-1, i)
		}
	}
	return nil
}

// Schedule is a complete solution: one FlowSchedule per flow plus the
// horizon [T0, T1] over which idle power is charged.
type Schedule struct {
	// Horizon is the period of interest [T0, T1].
	Horizon timeline.Interval
	flows   map[flow.ID]*FlowSchedule
}

// New creates an empty schedule over the given horizon.
func New(horizon timeline.Interval) *Schedule {
	return &Schedule{Horizon: horizon, flows: make(map[flow.ID]*FlowSchedule)}
}

// Errors returned by schedule operations.
var (
	ErrDuplicateFlow = errors.New("schedule: flow already scheduled")
	ErrInfeasible    = errors.New("schedule: infeasible")
)

// SetFlow installs the schedule of one flow. Segments are sorted and
// validated.
func (s *Schedule) SetFlow(fs *FlowSchedule) error {
	if _, ok := s.flows[fs.FlowID]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateFlow, fs.FlowID)
	}
	if err := fs.normalize(); err != nil {
		return err
	}
	s.flows[fs.FlowID] = fs
	return nil
}

// FlowSchedule returns the schedule of one flow, or nil when absent.
func (s *Schedule) FlowSchedule(id flow.ID) *FlowSchedule { return s.flows[id] }

// Len returns the number of scheduled flows.
func (s *Schedule) Len() int { return len(s.flows) }

// FlowIDs returns the scheduled flow ids in ascending order.
func (s *Schedule) FlowIDs() []flow.ID {
	out := make([]flow.ID, 0, len(s.flows))
	for id := range s.flows {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// AssignPriorities sets packet priorities by first transmission time
// (Section III-C): the flow with the earliest start gets priority 0.
func (s *Schedule) AssignPriorities() {
	ids := s.FlowIDs()
	sort.SliceStable(ids, func(a, b int) bool {
		return s.flows[ids[a]].Start() < s.flows[ids[b]].Start()
	})
	for rank, id := range ids {
		s.flows[id].Priority = rank
	}
}

// linkEvent is a rate change used when sweeping per-link rates.
type linkEvent struct {
	t     float64
	delta float64
}

// LinkRates aggregates the per-link transmission rate x_e(t) as a
// piecewise-constant function. A flow transmitting at rate s occupies every
// link of its path at rate s simultaneously (fluid view). Flows are swept
// in ascending id order (and coincident rate changes accumulated in that
// order — see sweep), so the floating-point rate values are deterministic;
// iterating the flow map directly would let three or more coincident
// segment boundaries on one link sum in map order and change the last bits
// of x_e(t) from run to run.
func (s *Schedule) LinkRates() map[graph.EdgeID][]RateSegment {
	events := make(map[graph.EdgeID][]linkEvent)
	for _, id := range s.FlowIDs() {
		fs := s.flows[id]
		for _, eid := range fs.Path.Edges {
			for _, seg := range fs.Segments {
				events[eid] = append(events[eid],
					linkEvent{t: seg.Interval.Start, delta: seg.Rate},
					linkEvent{t: seg.Interval.End, delta: -seg.Rate},
				)
			}
		}
	}
	out := make(map[graph.EdgeID][]RateSegment, len(events))
	for eid, evs := range events {
		out[eid] = sweep(evs)
	}
	return out
}

// sweep converts rate-change events into disjoint constant-rate segments
// (zero-rate gaps omitted). The sort must be stable: events at equal times
// keep their insertion order, so coincident deltas accumulate in a
// reproducible sequence.
func sweep(evs []linkEvent) []RateSegment {
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].t < evs[b].t })
	var (
		out  []RateSegment
		rate float64
		prev float64
	)
	i := 0
	for i < len(evs) {
		t := evs[i].t
		if rate > timeline.Eps && t-prev > timeline.Eps {
			out = append(out, RateSegment{Interval: timeline.Interval{Start: prev, End: t}, Rate: rate})
		}
		for i < len(evs) && evs[i].t-t <= timeline.Eps {
			rate += evs[i].delta
			i++
		}
		prev = t
	}
	return out
}

// ActiveLinks returns the ids of links that carry traffic at some point, in
// ascending order — the set E_a of Eq. 4.
func (s *Schedule) ActiveLinks() []graph.EdgeID {
	seen := make(map[graph.EdgeID]bool)
	for _, fs := range s.flows {
		if len(fs.Segments) == 0 {
			continue
		}
		for _, eid := range fs.Path.Edges {
			seen[eid] = true
		}
	}
	out := make([]graph.EdgeID, 0, len(seen))
	for eid := range seen {
		out = append(out, eid)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// EnergyDynamic returns the speed-scaling energy
// sum_e integral g(x_e(t)) dt (the Phi_g objective of Eq. 6). Links are
// accumulated in id order so the floating-point sum is deterministic.
func (s *Schedule) EnergyDynamic(m power.Model) float64 {
	rates := s.LinkRates()
	ids := make([]graph.EdgeID, 0, len(rates))
	for eid := range rates {
		ids = append(ids, eid)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var sum float64
	for _, eid := range ids {
		for _, seg := range rates[eid] {
			sum += m.G(seg.Rate) * seg.Interval.Length()
		}
	}
	return sum
}

// EnergyTotal returns the full objective Phi_f of Eq. 5: idle power sigma
// for every active link over the whole horizon plus the dynamic energy.
func (s *Schedule) EnergyTotal(m power.Model) float64 {
	idle := float64(len(s.ActiveLinks())) * m.Sigma * s.Horizon.Length()
	return idle + s.EnergyDynamic(m)
}

// VerifyOptions controls Verify's strictness.
type VerifyOptions struct {
	// EnforceCapacity checks x_e(t) <= C on every link. DCFS legitimately
	// relaxes this (Section III-A), so it is optional.
	EnforceCapacity bool
	// ExclusiveLinks checks the virtual-circuit property: at most one flow
	// transmits on a link at any time (holds for Most-Critical-First
	// schedules, not for the fluid Random-Schedule view).
	ExclusiveLinks bool
	// Tol is the numeric tolerance for data-completion checks; zero
	// selects 1e-6.
	Tol float64
}

// Verify checks that the schedule is feasible for the given flows on the
// given network: every flow's data is fully transferred within its span
// along a valid path (Eq. 3), plus the optional capacity and exclusivity
// invariants.
func (s *Schedule) Verify(g *graph.Graph, flows *flow.Set, m power.Model, opts VerifyOptions) error {
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	for _, f := range flows.Flows() {
		fs := s.flows[f.ID]
		if fs == nil {
			return fmt.Errorf("%w: flow %d not scheduled", ErrInfeasible, f.ID)
		}
		if err := fs.Path.Validate(g, f.Src, f.Dst); err != nil {
			return fmt.Errorf("%w: flow %d path: %v", ErrInfeasible, f.ID, err)
		}
		for _, seg := range fs.Segments {
			if seg.Interval.Start < f.Release-timeline.Eps || seg.Interval.End > f.Deadline+timeline.Eps {
				return fmt.Errorf("%w: flow %d transmits in %v outside span [%g, %g]",
					ErrInfeasible, f.ID, seg.Interval, f.Release, f.Deadline)
			}
		}
		got := fs.DataTransferred()
		if got < f.Size*(1-tol)-tol {
			return fmt.Errorf("%w: flow %d transfers %v of %v", ErrInfeasible, f.ID, got, f.Size)
		}
	}
	if opts.EnforceCapacity && m.Capped() {
		for eid, segs := range s.LinkRates() {
			e, err := g.Edge(eid)
			if err != nil {
				return fmt.Errorf("%w: unknown link %d", ErrInfeasible, eid)
			}
			cap := math.Min(e.Capacity, m.C)
			for _, seg := range segs {
				if seg.Rate > cap*(1+tol) {
					return fmt.Errorf("%w: link %d rate %v exceeds capacity %v during %v",
						ErrInfeasible, eid, seg.Rate, cap, seg.Interval)
				}
			}
		}
	}
	if opts.ExclusiveLinks {
		if err := s.verifyExclusive(); err != nil {
			return err
		}
	}
	return nil
}

// verifyExclusive checks the virtual-circuit property: per link, flow
// transmission intervals never overlap.
func (s *Schedule) verifyExclusive() error {
	type occ struct {
		iv timeline.Interval
		id flow.ID
	}
	perLink := make(map[graph.EdgeID][]occ)
	for _, fs := range s.flows {
		for _, eid := range fs.Path.Edges {
			for _, seg := range fs.Segments {
				perLink[eid] = append(perLink[eid], occ{iv: seg.Interval, id: fs.FlowID})
			}
		}
	}
	for eid, occs := range perLink {
		sort.Slice(occs, func(a, b int) bool { return occs[a].iv.Start < occs[b].iv.Start })
		for i := 1; i < len(occs); i++ {
			if occs[i].iv.Start < occs[i-1].iv.End-timeline.Eps {
				return fmt.Errorf("%w: link %d shared by flows %d and %d during overlap",
					ErrInfeasible, eid, occs[i-1].id, occs[i].id)
			}
		}
	}
	return nil
}

// MaxLinkRate returns the maximum instantaneous rate over all links, useful
// for reporting how far a relaxed schedule exceeds capacity.
func (s *Schedule) MaxLinkRate() float64 {
	var max float64
	for _, segs := range s.LinkRates() {
		for _, seg := range segs {
			if seg.Rate > max {
				max = seg.Rate
			}
		}
	}
	return max
}
