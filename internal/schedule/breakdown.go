package schedule

import (
	"fmt"
	"sort"
	"strings"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// TierEnergy is the energy attributed to one link tier.
type TierEnergy struct {
	// Tier labels the link by its endpoint kinds, e.g. "edge-host",
	// "agg-core".
	Tier string
	// Idle and Dynamic split the tier's energy by component.
	Idle, Dynamic float64
	// Links is the number of active links in the tier.
	Links int
}

// Total returns Idle + Dynamic.
func (t TierEnergy) Total() float64 { return t.Idle + t.Dynamic }

// EnergyBreakdown attributes the schedule's energy to topology tiers.
type EnergyBreakdown struct {
	// Tiers is sorted by descending total energy.
	Tiers []TierEnergy
	// Idle and Dynamic are the overall components (matching EnergyTotal).
	Idle, Dynamic float64
}

// Total returns the overall energy.
func (b *EnergyBreakdown) Total() float64 { return b.Idle + b.Dynamic }

// Table renders the breakdown as an aligned table.
func (b *EnergyBreakdown) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %12s %12s %12s\n", "tier", "links", "idle", "dynamic", "total")
	for _, t := range b.Tiers {
		fmt.Fprintf(&sb, "%-12s %8d %12.4g %12.4g %12.4g\n", t.Tier, t.Links, t.Idle, t.Dynamic, t.Total())
	}
	fmt.Fprintf(&sb, "%-12s %8s %12.4g %12.4g %12.4g\n", "total", "", b.Idle, b.Dynamic, b.Total())
	return sb.String()
}

// Breakdown computes the per-tier energy attribution of the schedule on
// the given network. A link's tier is the pair of its endpoint kinds
// (order-insensitive), e.g. a fat-tree yields "edge-host", "agg-edge" and
// "agg-core" tiers.
func (s *Schedule) Breakdown(g *graph.Graph, m power.Model) (*EnergyBreakdown, error) {
	if g == nil {
		return nil, fmt.Errorf("schedule: breakdown: nil graph")
	}
	horizon := s.Horizon.Length()
	byTier := make(map[string]*TierEnergy)
	tierOf := func(eid graph.EdgeID) (string, error) {
		e, err := g.Edge(eid)
		if err != nil {
			return "", err
		}
		from, err := g.Node(e.From)
		if err != nil {
			return "", err
		}
		to, err := g.Node(e.To)
		if err != nil {
			return "", err
		}
		a, b := from.Kind.String(), to.Kind.String()
		if a > b {
			a, b = b, a
		}
		return a + "-" + b, nil
	}

	rates := s.LinkRates()
	for _, eid := range s.ActiveLinks() {
		tier, err := tierOf(eid)
		if err != nil {
			return nil, fmt.Errorf("schedule: breakdown: %w", err)
		}
		te := byTier[tier]
		if te == nil {
			te = &TierEnergy{Tier: tier}
			byTier[tier] = te
		}
		te.Links++
		te.Idle += m.Sigma * horizon
		for _, seg := range rates[eid] {
			te.Dynamic += m.G(seg.Rate) * seg.Interval.Length()
		}
	}
	out := &EnergyBreakdown{}
	for _, te := range byTier {
		out.Tiers = append(out.Tiers, *te)
		out.Idle += te.Idle
		out.Dynamic += te.Dynamic
	}
	sort.Slice(out.Tiers, func(a, b int) bool {
		ta, tb := out.Tiers[a].Total(), out.Tiers[b].Total()
		if ta != tb {
			return ta > tb
		}
		return out.Tiers[a].Tier < out.Tiers[b].Tier
	})
	return out, nil
}
