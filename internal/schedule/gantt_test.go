package schedule

import (
	"strings"
	"testing"

	"dcnflow/internal/timeline"
)

func TestGanttRendersRows(t *testing.T) {
	_, _, p1, p2 := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 5}, Rate: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 5, End: 10}, Rate: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(40)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // ruler + 2 flows
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	// Flow 0 occupies the first half, flow 1 the second half.
	if !strings.Contains(lines[1], "####") || strings.Contains(lines[1][len(lines[1])-12:], "#") {
		t.Fatalf("flow 0 row wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "####") {
		t.Fatalf("flow 1 row wrong: %s", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	s := New(timeline.Interval{Start: 0, End: 10})
	if got := s.Gantt(40); !strings.Contains(got, "empty") {
		t.Fatalf("empty gantt = %q", got)
	}
	// Zero-width default.
	s2 := New(timeline.Interval{Start: 0, End: 0})
	if got := s2.Gantt(0); !strings.Contains(got, "empty") {
		t.Fatalf("zero-horizon gantt = %q", got)
	}
}

func TestGanttZeroWidthSegmentVisible(t *testing.T) {
	_, _, p1, _ := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 1000})
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 1, End: 1.1}, Rate: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	if out := s.Gantt(20); !strings.Contains(out, "#") {
		t.Fatalf("tiny segment invisible:\n%s", out)
	}
}
