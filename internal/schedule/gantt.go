package schedule

import (
	"fmt"
	"strings"
)

// Gantt renders the schedule as an ASCII chart: one row per flow, time on
// the horizontal axis scaled to width columns across the horizon. Cells
// show '#' while the flow transmits and '.' inside its idle horizon. It is
// meant for CLI inspection of small schedules.
func (s *Schedule) Gantt(width int) string {
	if width <= 0 {
		width = 72
	}
	span := s.Horizon.Length()
	if span <= 0 || s.Len() == 0 {
		return "(empty schedule)\n"
	}
	col := func(t float64) int {
		c := int(float64(width) * (t - s.Horizon.Start) / span)
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%8s |%s|\n", "t", axisLabel(s.Horizon.Start, s.Horizon.End, width))
	for _, id := range s.FlowIDs() {
		fs := s.FlowSchedule(id)
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range fs.Segments {
			lo, hi := col(seg.Interval.Start), col(seg.Interval.End)
			if hi == lo && hi < width {
				hi = lo + 1 // make zero-width segments visible
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "flow %3d |%s| rate<=%.3g\n", id, row, fs.MaxRate())
	}
	return b.String()
}

// axisLabel builds the header ruler with the horizon endpoints.
func axisLabel(start, end float64, width int) string {
	left := fmt.Sprintf("%g", start)
	right := fmt.Sprintf("%g", end)
	if len(left)+len(right)+1 >= width {
		return strings.Repeat("-", width)
	}
	middle := strings.Repeat("-", width-len(left)-len(right))
	return left + middle + right
}
