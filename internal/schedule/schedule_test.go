package schedule

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

// lineFixture builds a 3-node line (paper Fig. 1) and the two Example 1
// flows.
func lineFixture(t *testing.T) (*graph.Graph, *flow.Set, graph.Path, graph.Path) {
	t.Helper()
	g := graph.New()
	a := g.AddNode("A", graph.KindHost)
	b := g.AddNode("B", graph.KindHost)
	c := g.AddNode("C", graph.KindHost)
	ab, _, err := g.AddBiEdge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	bc, _, err := g.AddBiEdge(b, c, 100)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6}, // j1
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8}, // j2
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, fs, graph.Path{Edges: []graph.EdgeID{ab, bc}}, graph.Path{Edges: []graph.EdgeID{ab}}
}

func TestFlowScheduleAccessors(t *testing.T) {
	fs := &FlowSchedule{
		FlowID: 1,
		Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 2, End: 3}, Rate: 4},
			{Interval: timeline.Interval{Start: 5, End: 7}, Rate: 1},
		},
	}
	if got := fs.DataTransferred(); got != 6 {
		t.Fatalf("DataTransferred = %v, want 6", got)
	}
	if fs.Start() != 2 || fs.End() != 7 {
		t.Fatalf("Start/End = %v/%v, want 2/7", fs.Start(), fs.End())
	}
	if fs.MaxRate() != 4 {
		t.Fatalf("MaxRate = %v, want 4", fs.MaxRate())
	}
	empty := &FlowSchedule{}
	if !math.IsInf(empty.Start(), 1) || !math.IsInf(empty.End(), -1) {
		t.Fatal("empty schedule Start/End should be +/-Inf")
	}
}

func TestSetFlowValidation(t *testing.T) {
	s := New(timeline.Interval{Start: 0, End: 10})
	bad := &FlowSchedule{FlowID: 0, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 1}, Rate: -1},
	}}
	if err := s.SetFlow(bad); err == nil {
		t.Fatal("negative rate accepted")
	}
	overlap := &FlowSchedule{FlowID: 0, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 2}, Rate: 1},
		{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 1},
	}}
	if err := s.SetFlow(overlap); err == nil {
		t.Fatal("overlapping segments accepted")
	}
	ok := &FlowSchedule{FlowID: 0, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 3, End: 4}, Rate: 1},
		{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 1},
	}}
	if err := s.SetFlow(ok); err != nil {
		t.Fatalf("valid flow rejected: %v", err)
	}
	// Segments must now be sorted.
	if ok.Segments[0].Interval.Start != 0 {
		t.Fatal("segments not normalized to sorted order")
	}
	if err := s.SetFlow(&FlowSchedule{FlowID: 0}); !errors.Is(err, ErrDuplicateFlow) {
		t.Fatalf("duplicate flow err = %v, want ErrDuplicateFlow", err)
	}
}

func TestLinkRatesAggregation(t *testing.T) {
	g, _, p1, p2 := lineFixture(t)
	_ = g
	s := New(timeline.Interval{Start: 0, End: 10})
	mustSet := func(fs *FlowSchedule) {
		t.Helper()
		if err := s.SetFlow(fs); err != nil {
			t.Fatal(err)
		}
	}
	// Flow 0 at rate 2 on both links during [0, 4]; flow 1 at rate 3 on
	// link ab during [2, 6]: ab rate must be 2, then 5, then 3.
	mustSet(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 4}, Rate: 2},
	}})
	mustSet(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 2, End: 6}, Rate: 3},
	}})
	rates := s.LinkRates()
	ab := p2.Edges[0]
	segs := rates[ab]
	want := []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 2}, Rate: 2},
		{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 5},
		{Interval: timeline.Interval{Start: 4, End: 6}, Rate: 3},
	}
	if len(segs) != len(want) {
		t.Fatalf("link ab segments = %+v, want %+v", segs, want)
	}
	for i := range want {
		if math.Abs(segs[i].Rate-want[i].Rate) > 1e-9 ||
			math.Abs(segs[i].Interval.Start-want[i].Interval.Start) > 1e-9 ||
			math.Abs(segs[i].Interval.End-want[i].Interval.End) > 1e-9 {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
	bc := p1.Edges[1]
	if len(rates[bc]) != 1 || rates[bc][0].Rate != 2 {
		t.Fatalf("link bc segments = %+v", rates[bc])
	}
}

func TestActiveLinks(t *testing.T) {
	_, _, p1, p2 := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	// Flow with no segments does not activate links.
	if err := s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2}); err != nil {
		t.Fatal(err)
	}
	active := s.ActiveLinks()
	if len(active) != 2 {
		t.Fatalf("active links = %v, want the 2 links of p1", active)
	}
}

func TestEnergyAccounting(t *testing.T) {
	_, _, p1, _ := lineFixture(t)
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 100}
	s := New(timeline.Interval{Start: 0, End: 10})
	// One flow, rate 3 for 2 time units on a 2-link path:
	// dynamic = 2 links * 3^2 * 2 = 36; idle = 2 links * sigma * 10 = 20.
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := s.EnergyDynamic(m); math.Abs(got-36) > 1e-9 {
		t.Fatalf("EnergyDynamic = %v, want 36", got)
	}
	if got := s.EnergyTotal(m); math.Abs(got-56) > 1e-9 {
		t.Fatalf("EnergyTotal = %v, want 56", got)
	}
}

func TestEnergySuperposition(t *testing.T) {
	// Two flows overlapping on a shared link: energy must use the summed
	// rate, not the sum of per-flow energies (alpha > 1 is superadditive).
	_, _, _, p2 := lineFixture(t)
	m := power.Model{Sigma: 0, Mu: 1, Alpha: 2, C: 100}
	s := New(timeline.Interval{Start: 0, End: 10})
	for id := 0; id < 2; id++ {
		if err := s.SetFlow(&FlowSchedule{FlowID: flow.ID(id), Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 1},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// x = 2 on one link for 1 unit: energy = 4 (not 1+1).
	if got := s.EnergyDynamic(m); math.Abs(got-4) > 1e-9 {
		t.Fatalf("EnergyDynamic = %v, want 4", got)
	}
}

func TestVerifyHappyPath(t *testing.T) {
	g, fset, p1, p2 := lineFixture(t)
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 100}
	s := New(timeline.Interval{Start: 1, End: 4})
	// Feasible: flow 0 (w=6, span [2,4]) at rate 3; flow 1 (w=8, span
	// [1,3]) at rate 4.
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 3},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(g, fset, m, VerifyOptions{EnforceCapacity: true}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyFailures(t *testing.T) {
	g, fset, p1, p2 := lineFixture(t)
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 100}

	t.Run("missing flow", func(t *testing.T) {
		s := New(timeline.Interval{Start: 1, End: 4})
		if err := s.Verify(g, fset, m, VerifyOptions{}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("incomplete data", func(t *testing.T) {
		s := New(timeline.Interval{Start: 1, End: 4})
		_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 1}, // only 2 of 6
		}})
		_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
		}})
		if err := s.Verify(g, fset, m, VerifyOptions{}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("outside span", func(t *testing.T) {
		s := New(timeline.Interval{Start: 1, End: 4})
		_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 0, End: 2}, Rate: 3}, // before release 2
		}})
		_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
		}})
		if err := s.Verify(g, fset, m, VerifyOptions{}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("wrong path", func(t *testing.T) {
		s := New(timeline.Interval{Start: 1, End: 4})
		_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p2 /* ends at B, not C */, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 3},
		}})
		_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
		}})
		if err := s.Verify(g, fset, m, VerifyOptions{}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
	t.Run("capacity violation", func(t *testing.T) {
		tight := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 3.5}
		s := New(timeline.Interval{Start: 1, End: 4})
		_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 3},
		}})
		_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
		}})
		// Combined ab rate in [2,3] is 7 > C.
		if err := s.Verify(g, fset, tight, VerifyOptions{EnforceCapacity: true}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
		// Without capacity enforcement it passes.
		if err := s.Verify(g, fset, tight, VerifyOptions{}); err != nil {
			t.Fatalf("relaxed Verify: %v", err)
		}
	})
	t.Run("exclusivity violation", func(t *testing.T) {
		s := New(timeline.Interval{Start: 1, End: 4})
		_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 2, End: 4}, Rate: 3},
		}})
		_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 4},
		}})
		// Flows 0 and 1 share link ab during [2, 3].
		if err := s.Verify(g, fset, m, VerifyOptions{ExclusiveLinks: true}); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
}

func TestAssignPriorities(t *testing.T) {
	_, _, p1, p2 := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 5, End: 6}, Rate: 1},
	}})
	_ = s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 1, End: 2}, Rate: 1},
	}})
	s.AssignPriorities()
	if s.FlowSchedule(1).Priority != 0 || s.FlowSchedule(0).Priority != 1 {
		t.Fatalf("priorities = %d, %d; earlier start should get 0",
			s.FlowSchedule(1).Priority, s.FlowSchedule(0).Priority)
	}
}

func TestMaxLinkRate(t *testing.T) {
	_, _, _, p2 := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	_ = s.SetFlow(&FlowSchedule{FlowID: 0, Path: p2, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 7},
	}})
	if got := s.MaxLinkRate(); got != 7 {
		t.Fatalf("MaxLinkRate = %v, want 7", got)
	}
	if got := New(timeline.Interval{}).MaxLinkRate(); got != 0 {
		t.Fatalf("empty MaxLinkRate = %v, want 0", got)
	}
}

func TestFlowIDsSorted(t *testing.T) {
	_, _, p1, _ := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	for _, id := range []flow.ID{3, 0, 2} {
		if err := s.SetFlow(&FlowSchedule{FlowID: id, Path: p1, Segments: []RateSegment{
			{Interval: timeline.Interval{Start: 0, End: 1}, Rate: 1},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.FlowIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("FlowIDs not sorted: %v", ids)
		}
	}
}

// TestEnergyDeterministicUnderMapOrder guards the determinism contract of
// LinkRates/EnergyDynamic: with several flows sharing segment boundaries on
// one link, the per-link rate accumulation must not depend on the flow
// map's iteration order. Before flows were swept in id order (and sweep
// made stable), three-plus coincident deltas summed in map order and the
// energy drifted in its last bits from run to run.
func TestEnergyDeterministicUnderMapOrder(t *testing.T) {
	g := graph.New()
	a := g.AddNode("A", graph.KindHost)
	b := g.AddNode("B", graph.KindHost)
	ab, _, err := g.AddBiEdge(a, b, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	build := func() *Schedule {
		s := New(timeline.Interval{Start: 0, End: 10})
		// Rates chosen so the sum's low bits depend on association order.
		for i, rate := range []float64{0.1, 0.2, 0.3, 0.7, 1e-9, 3.3333333333333335} {
			if err := s.SetFlow(&FlowSchedule{
				FlowID: flow.ID(i),
				Path:   graph.Path{Edges: []graph.EdgeID{ab}},
				Segments: []RateSegment{{
					Interval: timeline.Interval{Start: 1, End: 9},
					Rate:     rate,
				}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	want := build().EnergyDynamic(m)
	for i := 0; i < 100; i++ {
		if got := build().EnergyDynamic(m); got != want {
			t.Fatalf("EnergyDynamic nondeterministic: %v != %v (iteration %d)", got, want, i)
		}
	}
}
