package schedule

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

func TestScheduleJSONRoundTrip(t *testing.T) {
	_, _, p1, p2 := lineFixture(t)
	s := New(timeline.Interval{Start: 0, End: 10})
	if err := s.SetFlow(&FlowSchedule{FlowID: 0, Path: p1, Priority: 1, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 1, End: 3}, Rate: 2.5},
		{Interval: timeline.Interval{Start: 5, End: 6}, Rate: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFlow(&FlowSchedule{FlowID: 1, Path: p2, Priority: 0, Segments: []RateSegment{
		{Interval: timeline.Interval{Start: 0, End: 4}, Rate: 3},
	}}); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Horizon != s.Horizon {
		t.Fatalf("horizon = %v, want %v", back.Horizon, s.Horizon)
	}
	if back.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", back.Len(), s.Len())
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 100}
	if math.Abs(back.EnergyTotal(m)-s.EnergyTotal(m)) > 1e-12 {
		t.Fatalf("energy changed across round trip: %v vs %v", back.EnergyTotal(m), s.EnergyTotal(m))
	}
	if back.FlowSchedule(0).Priority != 1 || back.FlowSchedule(1).Priority != 0 {
		t.Fatal("priorities lost in round trip")
	}
}

func TestScheduleJSONDeterministic(t *testing.T) {
	_, _, p1, _ := lineFixture(t)
	build := func() []byte {
		s := New(timeline.Interval{Start: 0, End: 10})
		for id := 4; id >= 0; id-- {
			if err := s.SetFlow(&FlowSchedule{
				FlowID: flow.ID(id), Path: p1,
				Segments: []RateSegment{{Interval: timeline.Interval{Start: float64(id), End: float64(id) + 0.5}, Rate: 1}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("JSON export not byte-stable")
	}
}

func TestScheduleJSONRejectsCorrupt(t *testing.T) {
	var s Schedule
	if err := json.Unmarshal([]byte(`{"flows": [{"flowId": 0, "segments": [{"start": 2, "end": 1, "rate": 1}]}]}`), &s); err == nil {
		t.Fatal("inverted segment accepted")
	}
	if err := json.Unmarshal([]byte(`not json`), &s); err == nil {
		t.Fatal("garbage accepted")
	}
}
