// Package baseline implements the comparison schemes of the evaluation:
// SP+MCF (shortest-path routing plus Most-Critical-First scheduling — the
// paper's stand-in for "the normal energy consumption in data centers"),
// ECMP+MCF (randomised equal-cost multi-path routing), and an always-on
// full-rate scheme modelling a data center with no energy management.
package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// ErrBadInput mirrors core.ErrBadInput for baseline-specific validation.
var ErrBadInput = errors.New("baseline: invalid input")

// ShortestPaths routes every flow on the deterministic minimum-hop path.
// It runs on the graph's compiled view (pooled epoch-reset Dijkstra
// scratch), which returns exactly the paths Graph.ShortestPath would —
// the equivalence is asserted pair-exhaustively in internal/graph — while
// allocating only the path slices themselves.
func ShortestPaths(g *graph.Graph, flows *flow.Set) (map[flow.ID]graph.Path, error) {
	if g == nil || flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	return ShortestPathsCompiled(graph.Compile(g), flows)
}

// ShortestPathsCompiled is ShortestPaths on an explicitly compiled view. It
// batches the queries through the compiled shared-frontier oracle
// (graph.Compiled.BatchShortestPaths): flows sharing a source reuse one
// early-exiting tree build instead of one Dijkstra run each. Paths and
// errors are identical to the per-flow loop it replaces — the batch reports
// the first failing flow in input order.
func ShortestPathsCompiled(c *graph.Compiled, flows *flow.Set) (map[flow.ID]graph.Path, error) {
	if c == nil || flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	fl := flows.Flows()
	queries := make([]graph.PathQuery, len(fl))
	for i, f := range fl {
		queries[i] = graph.PathQuery{Src: f.Src, Dst: f.Dst}
	}
	batch, failed, err := c.BatchShortestPaths(queries)
	if err != nil {
		return nil, fmt.Errorf("baseline: flow %d: %w", fl[failed].ID, err)
	}
	paths := make(map[flow.ID]graph.Path, len(fl))
	for i, f := range fl {
		paths[f.ID] = batch[i]
	}
	return paths, nil
}

// ECMPPaths routes every flow on one of its k minimum-hop equal-length
// paths, picked uniformly at random (seeded). It models flow-hash ECMP.
func ECMPPaths(g *graph.Graph, flows *flow.Set, k int, seed int64) (map[flow.ID]graph.Path, error) {
	if g == nil || flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrBadInput, k)
	}
	rng := rand.New(rand.NewSource(seed))
	paths := make(map[flow.ID]graph.Path, flows.Len())
	for _, f := range flows.Flows() {
		cands, err := g.KShortestPaths(f.Src, f.Dst, k, nil)
		if err != nil {
			return nil, fmt.Errorf("baseline: flow %d: %w", f.ID, err)
		}
		// Keep only the paths tied with the minimum hop count.
		minLen := cands[0].Len()
		equal := cands[:0]
		for _, p := range cands {
			if p.Len() == minLen {
				equal = append(equal, p)
			}
		}
		paths[f.ID] = equal[rng.Intn(len(equal))]
	}
	return paths, nil
}

// SPMCF runs the paper's comparison scheme: deterministic shortest-path
// routing followed by the optimal Most-Critical-First schedule on those
// routes. The result "can give the lower bound of the energy consumption
// by SP routing" (Section V-C).
func SPMCF(g *graph.Graph, flows *flow.Set, m power.Model) (*core.DCFSResult, error) {
	paths, err := ShortestPaths(g, flows)
	if err != nil {
		return nil, err
	}
	return core.SolveDCFS(core.DCFSInput{Graph: g, Flows: flows, Paths: paths, Model: m})
}

// ECMPMCF is SPMCF with randomised equal-cost multi-path routing.
func ECMPMCF(g *graph.Graph, flows *flow.Set, m power.Model, k int, seed int64) (*core.DCFSResult, error) {
	paths, err := ECMPPaths(g, flows, k, seed)
	if err != nil {
		return nil, err
	}
	return core.SolveDCFS(core.DCFSInput{Graph: g, Flows: flows, Paths: paths, Model: m})
}

// AlwaysOnResult is the outcome of the no-energy-management baseline.
type AlwaysOnResult struct {
	Schedule *schedule.Schedule
	// Energy charges idle power for EVERY link in the network across the
	// whole horizon (nothing is ever powered down) plus the dynamic energy
	// of full-rate transmissions.
	Energy float64
}

// AlwaysOnFullRate transmits each flow greedily at the link capacity C on
// its shortest path starting at its release, with all links powered
// throughout. It errors when a flow cannot finish by its deadline even at
// full rate, or when the model is uncapped.
func AlwaysOnFullRate(g *graph.Graph, flows *flow.Set, m power.Model) (*AlwaysOnResult, error) {
	if g == nil || flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if !m.Capped() {
		return nil, fmt.Errorf("%w: always-on baseline needs a finite link rate C", ErrBadInput)
	}
	t0, t1 := flows.Horizon()
	sched := schedule.New(timeline.Interval{Start: t0, End: t1})
	// One shared-frontier batch instead of a Dijkstra run per flow; the
	// compiled paths are identical to Graph.ShortestPath's.
	paths, err := ShortestPathsCompiled(graph.Compile(g), flows)
	if err != nil {
		return nil, err
	}
	for _, f := range flows.Flows() {
		p := paths[f.ID]
		finish := f.Release + f.Size/m.C
		if finish > f.Deadline+timeline.Eps {
			return nil, fmt.Errorf("baseline: flow %d misses deadline even at full rate (%g > %g)",
				f.ID, finish, f.Deadline)
		}
		if err := sched.SetFlow(&schedule.FlowSchedule{
			FlowID: f.ID,
			Path:   p,
			Segments: []schedule.RateSegment{{
				Interval: timeline.Interval{Start: f.Release, End: finish},
				Rate:     m.C,
			}},
		}); err != nil {
			return nil, fmt.Errorf("baseline: flow %d: %w", f.ID, err)
		}
	}
	idle := float64(g.NumEdges()) * m.Sigma * math.Max(0, t1-t0)
	return &AlwaysOnResult{
		Schedule: sched,
		Energy:   idle + sched.EnergyDynamic(m),
	}, nil
}
