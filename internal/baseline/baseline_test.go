package baseline

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/topology"
)

func fixture(t *testing.T, n int, seed int64) (*topology.Topology, *flow.Set) {
	t.Helper()
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: n, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs
}

func TestShortestPathsValid(t *testing.T) {
	ft, fs := fixture(t, 20, 1)
	paths, err := ShortestPaths(ft.Graph, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs.Flows() {
		if err := paths[f.ID].Validate(ft.Graph, f.Src, f.Dst); err != nil {
			t.Fatalf("flow %d: %v", f.ID, err)
		}
	}
	if _, err := ShortestPaths(nil, fs); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph err = %v, want ErrBadInput", err)
	}
}

func TestECMPPathsValidAndMinimal(t *testing.T) {
	ft, fs := fixture(t, 20, 2)
	ref, err := ShortestPaths(ft.Graph, fs)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ECMPPaths(ft.Graph, fs, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs.Flows() {
		if err := paths[f.ID].Validate(ft.Graph, f.Src, f.Dst); err != nil {
			t.Fatalf("flow %d: %v", f.ID, err)
		}
		if paths[f.ID].Len() != ref[f.ID].Len() {
			t.Fatalf("flow %d: ECMP path length %d != shortest %d", f.ID, paths[f.ID].Len(), ref[f.ID].Len())
		}
	}
	if _, err := ECMPPaths(ft.Graph, fs, 0, 7); !errors.Is(err, ErrBadInput) {
		t.Fatalf("k=0 err = %v, want ErrBadInput", err)
	}
}

func TestECMPDiversity(t *testing.T) {
	// On a fat-tree, cross-pod flows have several equal-cost paths; with
	// many flows, ECMP should pick at least two distinct routes for some
	// source-destination pair seen twice.
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]flow.Flow, 20)
	for i := range raw {
		raw[i] = flow.Flow{
			Src: ft.Hosts[0], Dst: ft.Hosts[15],
			Release: float64(i), Deadline: float64(i + 10), Size: 1,
		}
	}
	fs, err := flow.NewSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := ECMPPaths(ft.Graph, fs, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, p := range paths {
		keys[p.Key()] = true
	}
	if len(keys) < 2 {
		t.Fatalf("ECMP used %d distinct paths for 20 identical flows, want >= 2", len(keys))
	}
}

func TestSPMCFFeasible(t *testing.T) {
	ft, fs := fixture(t, 25, 3)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := SPMCF(ft.Graph, fs, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.EnergyTotal(m) <= 0 {
		t.Fatal("SP+MCF energy should be positive")
	}
}

func TestECMPMCFFeasible(t *testing.T) {
	ft, fs := fixture(t, 25, 4)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := ECMPMCF(ft.Graph, fs, m, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestAlwaysOnFullRate(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 10, Size: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 2, Mu: 1, Alpha: 2, C: 10}
	res, err := AlwaysOnFullRate(line.Graph, fs, m)
	if err != nil {
		t.Fatal(err)
	}
	// Idle: 4 directed edges * sigma 2 * horizon 10 = 80.
	// Dynamic: 2 links * 10^2 * 0.5 = 100.
	if math.Abs(res.Energy-180) > 1e-9 {
		t.Fatalf("energy = %v, want 180", res.Energy)
	}
	if err := res.Schedule.Verify(line.Graph, fs, m, schedule.VerifyOptions{EnforceCapacity: true}); err != nil {
		t.Fatal(err)
	}
}

func TestAlwaysOnErrors(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	okFlows, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 10, Size: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("uncapped model", func(t *testing.T) {
		if _, err := AlwaysOnFullRate(line.Graph, okFlows, power.Model{Sigma: 1, Mu: 1, Alpha: 2}); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("impossible deadline", func(t *testing.T) {
		tight, err := flow.NewSet([]flow.Flow{
			{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 0.1, Size: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := AlwaysOnFullRate(line.Graph, tight, power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 10}); err == nil {
			t.Fatal("impossible deadline accepted")
		}
	})
	t.Run("nil graph", func(t *testing.T) {
		if _, err := AlwaysOnFullRate(nil, okFlows, power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 10}); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
}

// TestSPMCFIsWorseThanOrEqualToECMPBest exercises both baselines on a
// congested single-rack pattern where they coincide (sanity: deterministic
// vs randomized routing with one candidate path).
func TestBaselinesCoincideOnLine(t *testing.T) {
	line, err := topology.Line(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[3], Release: 0, Deadline: 10, Size: 5},
		{Src: line.Hosts[1], Dst: line.Hosts[3], Release: 2, Deadline: 9, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.1, Mu: 1, Alpha: 2}
	sp, err := SPMCF(line.Graph, fs, m)
	if err != nil {
		t.Fatal(err)
	}
	ecmp, err := ECMPMCF(line.Graph, fs, m, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	a := sp.Schedule.EnergyTotal(m)
	b := ecmp.Schedule.EnergyTotal(m)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("line baselines differ: %v vs %v", a, b)
	}
}
