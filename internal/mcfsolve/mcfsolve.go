// Package mcfsolve solves the fractional multi-commodity flow problem
// (F-MCF, Definition 4) with convex per-link costs — the "convex
// programming" step of the Random-Schedule relaxation. The solver is a
// Frank–Wolfe (flow deviation) method whose linear oracle is a
// shortest-path computation under marginal-cost link weights; it therefore
// needs no external LP/convex toolbox.
//
// Because every Frank–Wolfe iteration routes each commodity's full demand
// onto a single path and then takes a convex combination, the iterates are
// by construction convex combinations of path flows. The solver tracks
// those combinations directly, yielding the weighted path decomposition of
// Raghavan–Tompson that Random-Schedule needs, with exact flow
// conservation.
package mcfsolve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// Commodity is one demand to be routed fractionally.
type Commodity struct {
	// ID ties the commodity back to a flow.
	ID flow.ID
	// Src and Dst are the endpoints.
	Src, Dst graph.NodeID
	// Demand is the traffic load (the flow's density D_i in
	// Random-Schedule).
	Demand float64
}

// CostKind selects the per-link cost the solver minimises.
type CostKind int

const (
	// CostDynamic uses g(x) = mu * x^alpha: the speed-scaling relaxation of
	// Section V-A (idle power accounted separately after rounding).
	CostDynamic CostKind = iota + 1
	// CostEnvelope uses the convex lower envelope of the full power
	// function f: linear at rate Ropt's power rate up to r* = min(Ropt, C),
	// then f. Minimising it both drives consolidation onto few links and
	// yields a valid lower bound on any integral schedule.
	CostEnvelope
)

// Options tunes the solver.
type Options struct {
	// Cost selects the link cost; default CostEnvelope.
	Cost CostKind
	// MaxIters bounds Frank–Wolfe iterations; default 60.
	MaxIters int
	// Tol is the relative duality-gap stopping criterion; default 1e-3.
	Tol float64
	// CapacityPenalty adds penalty*(x-C)^2 above capacity, keeping the
	// linear oracle a plain shortest path. Zero disables; it defaults to
	// 10*mu*alpha*C^(alpha-2) when the model is capped.
	CapacityPenalty float64
	// MinPathWeight prunes decomposition paths lighter than this fraction
	// of the demand; default 1e-6.
	MinPathWeight float64
}

func (o Options) withDefaults(m power.Model) Options {
	if o.Cost == 0 {
		o.Cost = CostEnvelope
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.CapacityPenalty == 0 && m.Capped() {
		o.CapacityPenalty = 10 * m.Mu * m.Alpha * math.Pow(m.C, m.Alpha-2)
	}
	if o.MinPathWeight <= 0 {
		o.MinPathWeight = 1e-6
	}
	return o
}

// WeightedPath is one path of a commodity's fractional decomposition.
type WeightedPath struct {
	Path graph.Path
	// Weight is in absolute demand units; the weights of one commodity sum
	// to its demand.
	Weight float64
}

// Result is the fractional solution.
type Result struct {
	// EdgeFlow is the aggregate rate x_e per directed edge (len =
	// g.NumEdges()).
	EdgeFlow []float64
	// PathsByCommodity holds, per input commodity (same order), its
	// weighted path decomposition.
	PathsByCommodity [][]WeightedPath
	// Objective is the final cost value (per unit time).
	Objective float64
	// Gap is the final relative duality gap estimate.
	Gap float64
	// Iters is the number of Frank–Wolfe iterations performed.
	Iters int
}

// Errors returned by Solve.
var (
	ErrNoRoute  = errors.New("mcfsolve: commodity endpoints not connected")
	ErrBadInput = errors.New("mcfsolve: invalid input")
)

type costFuncs struct {
	val   func(float64) float64
	deriv func(float64) float64
}

func makeCost(m power.Model, opts Options) costFuncs {
	base := costFuncs{val: m.G, deriv: m.GDeriv}
	if opts.Cost == CostEnvelope {
		base = costFuncs{val: m.Envelope, deriv: m.EnvelopeDeriv}
	}
	pen := opts.CapacityPenalty
	if pen <= 0 || !m.Capped() {
		return base
	}
	c := m.C
	return costFuncs{
		val: func(x float64) float64 {
			v := base.val(x)
			if x > c {
				d := x - c
				v += pen * d * d
			}
			return v
		},
		deriv: func(x float64) float64 {
			d := base.deriv(x)
			if x > c {
				d += 2 * pen * (x - c)
			}
			return d
		},
	}
}

// Solve minimises sum_e cost(x_e) subject to routing every commodity's
// demand from Src to Dst (fractionally, multi-path).
func Solve(g *graph.Graph, commodities []Commodity, m power.Model, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	for i, c := range commodities {
		if c.Demand <= 0 || math.IsNaN(c.Demand) {
			return nil, fmt.Errorf("%w: commodity %d demand %v", ErrBadInput, i, c.Demand)
		}
		if c.Src == c.Dst {
			return nil, fmt.Errorf("%w: commodity %d src == dst", ErrBadInput, i)
		}
		if !g.HasNode(c.Src) || !g.HasNode(c.Dst) {
			return nil, fmt.Errorf("%w: commodity %d endpoints unknown", ErrBadInput, i)
		}
	}
	opts = opts.withDefaults(m)
	cost := makeCost(m, opts)
	nE := g.NumEdges()

	res := &Result{
		EdgeFlow:         make([]float64, nE),
		PathsByCommodity: make([][]WeightedPath, len(commodities)),
	}
	if len(commodities) == 0 {
		return res, nil
	}

	// pathWeights[i] maps path key -> (path, weight in demand units).
	type wp struct {
		path   graph.Path
		weight float64
	}
	pathWeights := make([]map[string]*wp, len(commodities))
	for i := range pathWeights {
		pathWeights[i] = make(map[string]*wp, 4)
	}

	oracle := newOracle(g)

	// Initial point: hop-count shortest paths carrying full demands.
	x := make([]float64, nE)
	initPaths, err := oracle.shortestPaths(commodities, func(graph.Edge) float64 { return 1 })
	if err != nil {
		return nil, err
	}
	for i, p := range initPaths {
		for _, eid := range p.Edges {
			x[eid] += commodities[i].Demand
		}
		pathWeights[i][p.Key()] = &wp{path: p, weight: commodities[i].Demand}
	}

	objective := func(v []float64) float64 {
		var sum float64
		for _, xv := range v {
			sum += cost.val(xv)
		}
		return sum
	}

	xNew := make([]float64, nE)
	var gap float64
	iters := 0
	for iters = 0; iters < opts.MaxIters; iters++ {
		// Marginal-cost weights (tiny hop bias keeps zero-gradient regions
		// deterministic and hop-minimal).
		weights := make([]float64, nE)
		for eid := range weights {
			weights[eid] = cost.deriv(x[eid]) + 1e-12
		}
		paths, err := oracle.shortestPaths(commodities, func(e graph.Edge) float64 { return weights[e.ID] })
		if err != nil {
			return nil, err
		}
		// Direction point: all demand on the oracle paths.
		for i := range xNew {
			xNew[i] = 0
		}
		for i, p := range paths {
			for _, eid := range p.Edges {
				xNew[eid] += commodities[i].Demand
			}
		}
		// Duality gap: grad(x) . (x - xHat).
		gap = 0
		for eid := range x {
			gap += cost.deriv(x[eid]) * (x[eid] - xNew[eid])
		}
		obj := objective(x)
		if obj > 0 && gap/obj < opts.Tol {
			break
		}
		// Exact line search on the convex 1-D restriction.
		gamma := lineSearch(x, xNew, cost)
		if gamma <= 1e-12 {
			break
		}
		for eid := range x {
			x[eid] = (1-gamma)*x[eid] + gamma*xNew[eid]
		}
		// Fold the step into the path decomposition.
		for i := range pathWeights {
			for _, entry := range pathWeights[i] {
				entry.weight *= 1 - gamma
			}
			key := paths[i].Key()
			if entry, ok := pathWeights[i][key]; ok {
				entry.weight += gamma * commodities[i].Demand
			} else {
				pathWeights[i][key] = &wp{path: paths[i], weight: gamma * commodities[i].Demand}
			}
		}
	}

	res.EdgeFlow = x
	res.Objective = objective(x)
	res.Gap = gap
	res.Iters = iters
	for i, pw := range pathWeights {
		minW := opts.MinPathWeight * commodities[i].Demand
		var kept []WeightedPath
		var total float64
		for _, entry := range pw {
			if entry.weight >= minW {
				kept = append(kept, WeightedPath{Path: entry.path, Weight: entry.weight})
				total += entry.weight
			}
		}
		// Renormalise pruned mass back onto the kept paths.
		if total > 0 {
			scale := commodities[i].Demand / total
			for j := range kept {
				kept[j].Weight *= scale
			}
		}
		sort.Slice(kept, func(a, b int) bool {
			if kept[a].Weight != kept[b].Weight {
				return kept[a].Weight > kept[b].Weight
			}
			return kept[a].Path.Key() < kept[b].Path.Key()
		})
		res.PathsByCommodity[i] = kept
	}
	return res, nil
}

// lineSearch minimises phi(gamma) = sum_e cost((1-gamma) x + gamma xHat)
// over [0, 1] by bisection on the (monotone) derivative.
func lineSearch(x, xHat []float64, cost costFuncs) float64 {
	phiDeriv := func(gamma float64) float64 {
		var d float64
		for eid := range x {
			v := (1-gamma)*x[eid] + gamma*xHat[eid]
			d += cost.deriv(v) * (xHat[eid] - x[eid])
		}
		return d
	}
	lo, hi := 0.0, 1.0
	if phiDeriv(0) >= 0 {
		return 0
	}
	if phiDeriv(1) <= 0 {
		return 1
	}
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if phiDeriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
