// Package mcfsolve solves the fractional multi-commodity flow problem
// (F-MCF, Definition 4) with convex per-link costs — the "convex
// programming" step of the Random-Schedule relaxation. The solver is a
// Frank–Wolfe (flow deviation) method whose linear oracle is a
// shortest-path computation under marginal-cost link weights; it therefore
// needs no external LP/convex toolbox.
//
// Because every Frank–Wolfe iteration routes each commodity's full demand
// onto a single path and then takes a convex combination, the iterates are
// by construction convex combinations of path flows. The solver tracks
// those combinations directly, yielding the weighted path decomposition of
// Raghavan–Tompson that Random-Schedule needs, with exact flow
// conservation.
//
// The hot path is engineered for the per-interval fan-out of
// Random-Schedule: the oracle runs over a flat CSR adjacency with
// indexed []float64 edge weights and epoch-reset scratch (zero allocations
// per Dijkstra tree after warm-up), paths are deduplicated by integer
// interning instead of string keys, the exact line search probes only the
// edges whose flow actually changes (with a closed-form step when the cost
// restricted to the segment is quadratic), and a Solver can be reused
// across related instances, optionally warm-starting each solve from a
// neighbouring instance's path decomposition.
package mcfsolve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// Commodity is one demand to be routed fractionally.
type Commodity struct {
	// ID ties the commodity back to a flow.
	ID flow.ID
	// Src and Dst are the endpoints.
	Src, Dst graph.NodeID
	// Demand is the traffic load (the flow's density D_i in
	// Random-Schedule).
	Demand float64
}

// CostKind selects the per-link cost the solver minimises.
type CostKind int

const (
	// CostDynamic uses g(x) = mu * x^alpha: the speed-scaling relaxation of
	// Section V-A (idle power accounted separately after rounding).
	CostDynamic CostKind = iota + 1
	// CostEnvelope uses the convex lower envelope of the full power
	// function f: linear at rate Ropt's power rate up to r* = min(Ropt, C),
	// then f. Minimising it both drives consolidation onto few links and
	// yields a valid lower bound on any integral schedule.
	CostEnvelope
)

// Options tunes the solver.
type Options struct {
	// Cost selects the link cost; default CostEnvelope.
	Cost CostKind
	// MaxIters bounds Frank–Wolfe iterations; default 60.
	MaxIters int
	// Tol is the relative duality-gap stopping criterion; default 1e-3.
	Tol float64
	// CapacityPenalty adds penalty*(x-C)^2 above capacity, keeping the
	// linear oracle a plain shortest path. Zero disables; it defaults to
	// 10*mu*alpha*C^(alpha-2) when the model is capped.
	CapacityPenalty float64
	// MinPathWeight prunes decomposition paths lighter than this fraction
	// of the demand; default 1e-6.
	MinPathWeight float64
	// ClosedFormStep replaces the 50-probe bisection line search with the
	// closed-form optimal step whenever the cost restricted to the search
	// segment is an exact quadratic (alpha == 2, no envelope kink, capacity
	// penalty inactive). The step agrees with the bisection result to its
	// 2^-50 grid but is not bit-identical, so trajectories of
	// iteration-capped solves can drift relative to the default; leave
	// false for bit-reproducible results across releases.
	ClosedFormStep bool
	// OracleWorkers fans the per-source shortest-path runs of each
	// Frank–Wolfe iteration across this many goroutines. 0 or 1 keeps the
	// sweep sequential; a negative value means runtime.GOMAXPROCS(0).
	// Results are byte-identical at every worker count — the parallel sweep
	// merges in ascending-source order, so this knob trades only CPU for
	// single-solve latency on large fabrics.
	OracleWorkers int
}

func (o Options) withDefaults(m power.Model) Options {
	if o.Cost == 0 {
		o.Cost = CostEnvelope
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.CapacityPenalty == 0 && m.Capped() {
		o.CapacityPenalty = 10 * m.Mu * m.Alpha * math.Pow(m.C, m.Alpha-2)
	}
	if o.MinPathWeight <= 0 {
		o.MinPathWeight = 1e-6
	}
	return o
}

// WeightedPath is one path of a commodity's fractional decomposition.
type WeightedPath struct {
	Path graph.Path
	// Weight is in absolute demand units; the weights of one commodity sum
	// to its demand.
	Weight float64
}

// Result is the fractional solution.
type Result struct {
	// EdgeFlow is the aggregate rate x_e per directed edge (len =
	// g.NumEdges()).
	EdgeFlow []float64
	// PathsByCommodity holds, per input commodity (same order), its
	// weighted path decomposition.
	PathsByCommodity [][]WeightedPath
	// Objective is the final cost value (per unit time).
	Objective float64
	// Gap is the final relative duality gap estimate.
	Gap float64
	// Iters is the number of Frank–Wolfe iterations performed.
	Iters int
}

// Errors returned by Solve.
var (
	ErrNoRoute  = errors.New("mcfsolve: commodity endpoints not connected")
	ErrBadInput = errors.New("mcfsolve: invalid input")
)

// costModel is the devirtualised per-link cost: the envelope kink and
// capacity penalty are folded into precomputed constants so the inner loops
// evaluate the cost with branches and multiplications only (no closure
// indirection, no math.Pow for the integer alphas the evaluation uses).
type costModel struct {
	m      power.Model
	useEnv bool
	// Envelope linearisation: for 0 <= x <= rStar the envelope is x*rate.
	// rStar <= 0 means the envelope degenerates to the dynamic cost g.
	rStar, rate float64
	// pen > 0 adds pen*(x-c)^2 above c (capacity penalty).
	pen, c float64
	// lin marks the alpha == 2, no-envelope-kink case: val and deriv then
	// reduce to gMu*x^2 and dK*x (plus the penalty term), evaluated inline
	// with the exact same rounding as the generic path but without any
	// function calls. dK = alpha*mu, gMu = mu.
	lin     bool
	dK, gMu float64
	// quad additionally enables the closed-form line-search step
	// (Options.ClosedFormStep).
	quad bool
}

func makeCost(m power.Model, opts Options) costModel {
	cm := costModel{m: m, useEnv: opts.Cost == CostEnvelope}
	if cm.useEnv {
		cm.rStar = m.EffectiveOpt()
		if cm.rStar > 0 {
			cm.rate = m.PowerRate(cm.rStar)
		}
	}
	if opts.CapacityPenalty > 0 && m.Capped() {
		cm.pen = opts.CapacityPenalty
		cm.c = m.C
	}
	cm.lin = m.Alpha == 2 && !(cm.useEnv && cm.rStar > 0)
	cm.dK = m.Alpha * m.Mu
	cm.gMu = m.Mu
	cm.quad = cm.lin && opts.ClosedFormStep
	return cm
}

func (cm *costModel) val(x float64) float64 {
	if cm.lin {
		var v float64
		if x > 0 {
			v = cm.gMu * (x * x)
		}
		if cm.pen > 0 && x > cm.c {
			d := x - cm.c
			v += cm.pen * d * d
		}
		return v
	}
	return cm.valSlow(x)
}

func (cm *costModel) valSlow(x float64) float64 {
	var v float64
	switch {
	case x <= 0:
		v = 0
	case cm.useEnv && cm.rStar > 0:
		if x <= cm.rStar {
			v = x * cm.rate
		} else {
			v = cm.m.F(x)
		}
	default:
		v = cm.m.G(x)
	}
	if cm.pen > 0 && x > cm.c {
		d := x - cm.c
		v += cm.pen * d * d
	}
	return v
}

func (cm *costModel) deriv(x float64) float64 {
	if cm.lin {
		var d float64
		if x > 0 {
			d = cm.dK * x
		}
		if cm.pen > 0 && x > cm.c {
			d += 2 * cm.pen * (x - cm.c)
		}
		return d
	}
	return cm.derivSlow(x)
}

func (cm *costModel) derivSlow(x float64) float64 {
	var d float64
	if cm.useEnv && cm.rStar > 0 {
		xx := x
		if xx < 0 {
			xx = 0
		}
		if xx <= cm.rStar {
			d = cm.rate
		} else {
			d = cm.m.GDeriv(xx)
		}
	} else {
		d = cm.m.GDeriv(x)
	}
	if cm.pen > 0 && x > cm.c {
		d += 2 * cm.pen * (x - cm.c)
	}
	return d
}

// decomp is one commodity's running path decomposition, tracked by interned
// path handle.
type decomp struct {
	handles []graph.PathHandle
	weights []float64
}

func (d *decomp) reset() {
	d.handles = d.handles[:0]
	d.weights = d.weights[:0]
}

// add folds weight w onto path h.
func (d *decomp) add(h graph.PathHandle, w float64) {
	for i, have := range d.handles {
		if have == h {
			d.weights[i] += w
			return
		}
	}
	d.handles = append(d.handles, h)
	d.weights = append(d.weights, w)
}

// Solver is a reusable F-MCF solver bound to one graph and power model. It
// owns the shortest-path scratch, the edge-flow buffers and the path intern
// table, so consecutive Solve calls (for example Random-Schedule's
// per-interval relaxations) allocate only their results. A Solver is not
// safe for concurrent use; run one per worker.
type Solver struct {
	g        *graph.Graph
	compiled *graph.Compiled
	csr      *graph.CSR
	m        power.Model
	opts     Options
	cost     costModel

	intern *graph.PathInterner
	orc    *oracle

	x       []float64 // current edge flow
	xNew    []float64 // oracle direction point
	support []int32   // line-search delta support (edge ids)
	handles []graph.PathHandle
	decomps []decomp

	// base, when non-nil, is a fixed background load added to every edge
	// before the cost and its derivative are evaluated (set by
	// SolveBaseWarmCtx for the duration of one solve). It shifts the
	// operating point of the convex costs without entering the flow
	// variables, so conservation and the path decomposition are untouched.
	base []float64
}

// NewSolver validates the model and prepares reusable state for solving
// F-MCF instances on g. It compiles g on first use (graph.Compile caches
// the artifacts on the graph); callers already holding a compiled view
// should use NewSolverCompiled.
func NewSolver(g *graph.Graph, m power.Model, opts Options) (*Solver, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInput)
	}
	return NewSolverCompiled(graph.Compile(g), m, opts)
}

// NewSolverCompiled is NewSolver on an explicitly compiled graph view —
// the compile-once/solve-many entry point. The Solver borrows the compiled
// CSR; only its own scratch (edge-flow buffers, path intern table,
// shortest-path state) is allocated here, and a pooled Solver (see Pool)
// amortises even that across solves.
func NewSolverCompiled(c *graph.Compiled, m power.Model, opts Options) (*Solver, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil compiled graph", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	opts = opts.withDefaults(m)
	csr := c.CSR()
	intern := graph.NewPathInterner()
	nE := csr.NumEdges()
	// A negative worker count is resolved here rather than in withDefaults
	// so Options stays a stable comparable key for Pool.Matches regardless
	// of the machine's CPU count.
	workers := opts.OracleWorkers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Solver{
		g:        c.Graph(),
		compiled: c,
		csr:      csr,
		m:        m,
		opts:     opts,
		cost:     makeCost(m, opts),
		intern:   intern,
		orc:      newOracle(c, intern, workers),
		x:        make([]float64, nE),
		xNew:     make([]float64, nE),
	}, nil
}

// WarmStart seeds a solve from a previously solved, related instance: each
// commodity whose ID and endpoints match one of Commodities starts from
// that commodity's path decomposition in Result (weights rescaled to the
// new demand) instead of its hop-count shortest path. Commodities without a
// match fall back to the cold start. Both fields must come from the same
// graph as the Solver.
type WarmStart struct {
	Commodities []Commodity
	Result      *Result
}

// Solve minimises sum_e cost(x_e) subject to routing every commodity's
// demand from Src to Dst (fractionally, multi-path), starting from
// hop-count shortest paths.
func (s *Solver) Solve(commodities []Commodity) (*Result, error) {
	return s.SolveWarmCtx(context.Background(), commodities, WarmStart{})
}

// SolveCtx is Solve under a context: cancellation is checked before the
// first Frank–Wolfe iteration and at every iteration boundary, so a solve
// stops within one iteration of the context ending and returns the wrapped
// context error instead of a partial result.
func (s *Solver) SolveCtx(ctx context.Context, commodities []Commodity) (*Result, error) {
	return s.SolveWarmCtx(ctx, commodities, WarmStart{})
}

// Solve is the one-shot entry point: it builds a throwaway Solver and runs
// a cold-started solve. Callers solving many related instances should keep
// a Solver and use its Solve/SolveWarm methods instead.
func Solve(g *graph.Graph, commodities []Commodity, m power.Model, opts Options) (*Result, error) {
	s, err := NewSolver(g, m, opts)
	if err != nil {
		return nil, err
	}
	return s.Solve(commodities)
}

// SolveWarm is Solve with a warm start (see WarmStart). A zero WarmStart
// degenerates to the cold start.
func (s *Solver) SolveWarm(commodities []Commodity, warm WarmStart) (*Result, error) {
	return s.SolveWarmCtx(context.Background(), commodities, warm)
}

// SolveBaseWarmCtx is SolveWarmCtx against a fixed background load: the
// per-edge cost and its derivative are evaluated at base[e] + x_e, where x
// is the flow routed for the given commodities, and the reported Objective
// is the marginal cost sum_e [cost(base_e + x_e) - cost(base_e)] of the
// routed flow on top of the background. A rolling-horizon delta re-solve
// uses this to route a small arrival batch against the load already
// reserved by thousands of in-flight flows without materialising those
// flows as commodities. base must have length NumEdges; nil degenerates to
// SolveWarmCtx exactly (the base-free hot loops run untouched, keeping
// default results bit-identical).
func (s *Solver) SolveBaseWarmCtx(ctx context.Context, commodities []Commodity, base []float64, warm WarmStart) (*Result, error) {
	if base != nil && len(base) != s.csr.NumEdges() {
		return nil, fmt.Errorf("%w: base load has %d edges, graph has %d", ErrBadInput, len(base), s.csr.NumEdges())
	}
	s.base = base
	defer func() { s.base = nil }()
	return s.SolveWarmCtx(ctx, commodities, warm)
}

// SolveWarmCtx is SolveWarm under a context (see SolveCtx for the
// cancellation contract). A nil ctx is treated as context.Background().
func (s *Solver) SolveWarmCtx(ctx context.Context, commodities []Commodity, warm WarmStart) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for i, c := range commodities {
		if c.Demand <= 0 || math.IsNaN(c.Demand) {
			return nil, fmt.Errorf("%w: commodity %d demand %v", ErrBadInput, i, c.Demand)
		}
		if c.Src == c.Dst {
			return nil, fmt.Errorf("%w: commodity %d src == dst", ErrBadInput, i)
		}
		if !s.g.HasNode(c.Src) || !s.g.HasNode(c.Dst) {
			return nil, fmt.Errorf("%w: commodity %d endpoints unknown", ErrBadInput, i)
		}
	}
	nE := s.csr.NumEdges()
	res := &Result{
		EdgeFlow:         make([]float64, nE),
		PathsByCommodity: make([][]WeightedPath, len(commodities)),
	}
	if len(commodities) == 0 {
		return res, nil
	}

	s.orc.bind(commodities)
	if cap(s.handles) < len(commodities) {
		s.handles = make([]graph.PathHandle, len(commodities))
	}
	s.handles = s.handles[:len(commodities)]
	for len(s.decomps) < len(commodities) {
		s.decomps = append(s.decomps, decomp{})
	}
	for i := range commodities {
		s.decomps[i].reset()
	}

	x := s.x[:nE]
	for i := range x {
		x[i] = 0
	}

	// Initial point: warm-started commodities reuse the neighbouring
	// decomposition; the rest take hop-count shortest paths carrying full
	// demand.
	cold := s.seedWarm(commodities, warm)
	if cold {
		slotW := s.orc.slotWeights()
		for i := range slotW {
			slotW[i] = 1
		}
		if err := s.orc.shortestPaths(commodities, s.handles); err != nil {
			return nil, err
		}
		for i := range commodities {
			if s.decomps[i].handles != nil && len(s.decomps[i].handles) > 0 {
				continue // warm-started
			}
			h := s.handles[i]
			for _, eid := range s.intern.Edges(h) {
				x[eid] += commodities[i].Demand
			}
			s.decomps[i].add(h, commodities[i].Demand)
		}
	}

	// The full-sweep loops below (objective, weights, gap) specialise the
	// common linear-derivative case (alpha == 2, no envelope kink) so the
	// cost evaluates inline; arithmetic and term order match the generic
	// cost.val/cost.deriv calls exactly, keeping the sums bit-identical.
	// With a background load (SolveBaseWarmCtx) every loop instead takes a
	// dedicated offset branch, leaving the base-free paths byte-for-byte
	// untouched; the objective is then the marginal cost over the base.
	cost := &s.cost
	base := s.base
	lin, dK, gMu, pen, capC := cost.lin, cost.dK, cost.gMu, cost.pen, cost.c
	objective := func(v []float64) float64 {
		var sum float64
		if base != nil {
			for eid, xv := range v {
				sum += cost.val(base[eid]+xv) - cost.val(base[eid])
			}
			return sum
		}
		if lin {
			for _, xv := range v {
				var cv float64
				if xv > 0 {
					cv = gMu * (xv * xv)
				}
				if pen > 0 && xv > capC {
					d := xv - capC
					cv += pen * d * d
				}
				sum += cv
			}
			return sum
		}
		for _, xv := range v {
			sum += cost.val(xv)
		}
		return sum
	}

	xNew := s.xNew[:nE]
	var gap float64
	iters := 0
	for iters = 0; iters < s.opts.MaxIters; iters++ {
		// Cancellation boundary: one Frank–Wolfe iteration is the promised
		// response granularity. A cancelled solve surfaces the context error
		// rather than the (valid but unconverged) iterate.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mcfsolve: solve interrupted at iteration %d: %w", iters, err)
		}
		// Marginal-cost weights (tiny hop bias keeps zero-gradient regions
		// deterministic and hop-minimal), computed straight into the
		// oracle's slot-ordered buffer: each edge owns exactly one
		// adjacency slot, so the values match an edge-indexed fill
		// bit-for-bit.
		slotW := s.orc.slotWeights()
		slotEdges := s.orc.slotEdges()
		if base != nil {
			for i, eid := range slotEdges {
				slotW[i] = cost.deriv(base[eid]+x[eid]) + 1e-12
			}
		} else if lin {
			for i, eid := range slotEdges {
				xv := x[eid]
				var d float64
				if xv > 0 {
					d = dK * xv
				}
				if pen > 0 && xv > capC {
					d += 2 * pen * (xv - capC)
				}
				slotW[i] = d + 1e-12
			}
		} else {
			for i, eid := range slotEdges {
				slotW[i] = cost.deriv(x[eid]) + 1e-12
			}
		}
		if err := s.orc.shortestPaths(commodities, s.handles); err != nil {
			return nil, err
		}
		// Direction point: all demand on the oracle paths.
		for i := range xNew {
			xNew[i] = 0
		}
		for i := range commodities {
			for _, eid := range s.intern.Edges(s.handles[i]) {
				xNew[eid] += commodities[i].Demand
			}
		}
		// Duality gap: grad(x) . (x - xHat).
		gap = 0
		if base != nil {
			for eid := range x {
				gap += cost.deriv(base[eid]+x[eid]) * (x[eid] - xNew[eid])
			}
		} else if lin {
			for eid, xv := range x {
				var d float64
				if xv > 0 {
					d = dK * xv
				}
				if pen > 0 && xv > capC {
					d += 2 * pen * (xv - capC)
				}
				gap += d * (xv - xNew[eid])
			}
		} else {
			for eid := range x {
				gap += cost.deriv(x[eid]) * (x[eid] - xNew[eid])
			}
		}
		obj := objective(x)
		if obj > 0 && gap/obj < s.opts.Tol {
			break
		}
		// Exact line search on the convex 1-D restriction.
		gamma := s.lineSearch(x, xNew)
		if gamma <= 1e-12 {
			break
		}
		for eid := range x {
			x[eid] = (1-gamma)*x[eid] + gamma*xNew[eid]
		}
		// Fold the step into the path decomposition.
		for i := range commodities {
			d := &s.decomps[i]
			for j := range d.weights {
				d.weights[j] *= 1 - gamma
			}
			d.add(s.handles[i], gamma*commodities[i].Demand)
		}
	}

	copy(res.EdgeFlow, x)
	res.Objective = objective(x)
	res.Gap = gap
	res.Iters = iters
	for i := range commodities {
		res.PathsByCommodity[i] = s.emit(&s.decomps[i], commodities[i].Demand)
	}
	return res, nil
}

// seedWarm installs warm-start decompositions for every matchable commodity
// and reports whether any commodity still needs the cold start.
func (s *Solver) seedWarm(commodities []Commodity, warm WarmStart) (cold bool) {
	if warm.Result == nil || len(warm.Commodities) != len(warm.Result.PathsByCommodity) {
		return true
	}
	prevByID := make(map[flow.ID]int, len(warm.Commodities))
	for i, c := range warm.Commodities {
		if _, dup := prevByID[c.ID]; !dup {
			prevByID[c.ID] = i
		}
	}
	x := s.x[:s.csr.NumEdges()]
	for i, c := range commodities {
		pi, ok := prevByID[c.ID]
		if !ok {
			cold = true
			continue
		}
		prev := warm.Commodities[pi]
		wps := warm.Result.PathsByCommodity[pi]
		if prev.Src != c.Src || prev.Dst != c.Dst || prev.Demand <= 0 || len(wps) == 0 {
			cold = true
			continue
		}
		scale := c.Demand / prev.Demand
		ok = true
		for _, wp := range wps {
			if !s.validPath(wp.Path.Edges, c.Src, c.Dst) {
				ok = false
				break
			}
		}
		if !ok {
			cold = true
			continue
		}
		d := &s.decomps[i]
		for _, wp := range wps {
			w := wp.Weight * scale
			d.add(s.intern.Intern(wp.Path.Edges), w)
			for _, eid := range wp.Path.Edges {
				x[eid] += w
			}
		}
	}
	return cold
}

// validPath cheaply checks that edges is a connected src->dst walk in the
// Solver's graph (warm starts from a foreign or stale graph are rejected).
func (s *Solver) validPath(edges []graph.EdgeID, src, dst graph.NodeID) bool {
	if len(edges) == 0 {
		return false
	}
	cur := src
	for _, eid := range edges {
		if eid < 0 || int(eid) >= s.csr.NumEdges() || s.csr.EdgeFrom[eid] != cur {
			return false
		}
		cur = s.csr.EdgeTo[eid]
	}
	return cur == dst
}

// emit prunes, renormalises and deterministically orders one commodity's
// decomposition into the exported WeightedPath form.
func (s *Solver) emit(d *decomp, demand float64) []WeightedPath {
	minW := s.opts.MinPathWeight * demand
	var kept []WeightedPath
	var total float64
	for j, w := range d.weights {
		if w >= minW {
			kept = append(kept, WeightedPath{Path: s.intern.Path(d.handles[j]), Weight: w})
			total += w
		}
	}
	// Renormalise pruned mass back onto the kept paths.
	if total > 0 {
		scale := demand / total
		for j := range kept {
			kept[j].Weight *= scale
		}
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].Weight != kept[b].Weight {
			return kept[a].Weight > kept[b].Weight
		}
		return graph.ComparePathKeys(kept[a].Path.Edges, kept[b].Path.Edges) < 0
	})
	return kept
}

// lineSearch minimises phi(gamma) = sum_e cost((1-gamma) x + gamma xHat)
// over [0, 1]. Only edges with x != xHat contribute to phi', so the search
// first collects that delta support and then either applies the closed-form
// step (quadratic costs: the derivative is linear in gamma) or bisects the
// monotone derivative over the support.
func (s *Solver) lineSearch(x, xHat []float64) float64 {
	cost := &s.cost
	base := s.base
	support := s.support[:0]
	// penActive: the capacity penalty kicks in somewhere on the segment
	// for some support edge, so the restriction picks up extra kinks.
	penActive := false
	for eid := range x {
		if x[eid] != xHat[eid] {
			support = append(support, int32(eid))
			if cost.pen > 0 && (x[eid] > cost.c || xHat[eid] > cost.c) {
				penActive = true
			}
		}
	}
	s.support = support
	if len(support) == 0 {
		return 0
	}
	// A background load shifts the operating point, so the specialised
	// probe loops (which assume the raw flow is the cost argument) are
	// disabled; the generic offset branch evaluates the full derivative.
	quadOK := cost.quad && !penActive && base == nil
	// The probe loop is the line search's hot spot; specialise the common
	// linear-derivative case (alpha == 2, penalty inactive on the whole
	// segment: every probe point v lies between x and xHat, hence below c)
	// so the derivative evaluates inline. Term order and arithmetic match
	// the generic loop exactly, so both produce bit-identical sums.
	linProbe := cost.lin && !penActive && base == nil
	phiDeriv := func(gamma float64) float64 {
		var d float64
		if base != nil {
			for _, ei := range support {
				v := (1-gamma)*x[ei] + gamma*xHat[ei]
				d += cost.deriv(base[ei]+v) * (xHat[ei] - x[ei])
			}
			return d
		}
		if linProbe {
			dK := cost.dK
			for _, ei := range support {
				v := (1-gamma)*x[ei] + gamma*xHat[ei]
				var dv float64
				if v > 0 {
					dv = dK * v
				}
				d += dv * (xHat[ei] - x[ei])
			}
			return d
		}
		for _, ei := range support {
			v := (1-gamma)*x[ei] + gamma*xHat[ei]
			d += cost.deriv(v) * (xHat[ei] - x[ei])
		}
		return d
	}
	phi0 := phiDeriv(0)
	if phi0 >= 0 {
		return 0
	}
	phi1 := phiDeriv(1)
	if phi1 <= 0 {
		return 1
	}
	if quadOK {
		// phi' is linear in gamma: its root is where the chord crosses zero.
		return phi0 / (phi0 - phi1)
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if phiDeriv(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
