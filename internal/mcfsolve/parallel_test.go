package mcfsolve

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// workerCounts is the intra-solve parallelism grid the determinism tests
// sweep: sequential, minimal parallelism, and every core.
func workerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		counts = append(counts, n)
	}
	return counts
}

// incastCommodities builds a commodity set with the shapes that stress the
// oracle's grouping: many distinct sources converging on few destinations
// (incast fan-in), repeated (src, dst) pairs, and a couple of fan-out
// sources with many destinations.
func incastCommodities(hosts []graph.NodeID) []Commodity {
	var comms []Commodity
	sink := hosts[0]
	for i := 1; i < 17; i++ {
		src := hosts[i%len(hosts)]
		if src == sink {
			continue
		}
		comms = append(comms, Commodity{ID: 0, Src: src, Dst: sink, Demand: 1 + float64(i%3)})
	}
	// Duplicate (src, dst) pairs: dedup must still route every member.
	comms = append(comms,
		Commodity{ID: 0, Src: hosts[3], Dst: sink, Demand: 2},
		Commodity{ID: 0, Src: hosts[3], Dst: sink, Demand: 5},
	)
	// Fan-out sources.
	for i := 2; i < 10; i++ {
		comms = append(comms, Commodity{ID: 0, Src: hosts[1], Dst: hosts[i], Demand: 1.5})
	}
	return comms
}

// TestSolveBitIdenticalAcrossOracleWorkers asserts the tentpole determinism
// contract at the solver level: the full Result — edge flows, objective and
// gap bits, path decompositions — is byte-identical at every intra-solve
// worker count.
func TestSolveBitIdenticalAcrossOracleWorkers(t *testing.T) {
	ft, err := topology.FatTree(8, 50)
	if err != nil {
		t.Fatal(err)
	}
	comms := incastCommodities(ft.Hosts)
	m := power.Model{Mu: 1, Alpha: 2, C: 50}

	var ref *Result
	for _, w := range workerCounts() {
		s, err := NewSolver(ft.Graph, m, Options{MaxIters: 12, OracleWorkers: w})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(comms)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if math.Float64bits(res.Objective) != math.Float64bits(ref.Objective) ||
			math.Float64bits(res.Gap) != math.Float64bits(ref.Gap) || res.Iters != ref.Iters {
			t.Fatalf("workers=%d: objective/gap/iters diverge: (%v %v %d) vs (%v %v %d)",
				w, res.Objective, res.Gap, res.Iters, ref.Objective, ref.Gap, ref.Iters)
		}
		for eid := range ref.EdgeFlow {
			if math.Float64bits(res.EdgeFlow[eid]) != math.Float64bits(ref.EdgeFlow[eid]) {
				t.Fatalf("workers=%d: edge %d flow %v vs %v (bits differ)", w, eid, res.EdgeFlow[eid], ref.EdgeFlow[eid])
			}
		}
		if !reflect.DeepEqual(res.PathsByCommodity, ref.PathsByCommodity) {
			t.Fatalf("workers=%d: path decompositions diverge", w)
		}
	}
}

// TestNegativeOracleWorkersMeansAllCores checks the knob's sentinel: a
// negative count resolves to GOMAXPROCS and still produces the sequential
// result.
func TestNegativeOracleWorkersMeansAllCores(t *testing.T) {
	ft, err := topology.FatTree(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	comms := incastCommodities(ft.Hosts)
	m := power.Model{Mu: 1, Alpha: 2, C: 50}
	seq, err := Solve(ft.Graph, comms, m, Options{MaxIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Solve(ft.Graph, comms, m, Options{MaxIters: 8, OracleWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, all) {
		t.Fatal("OracleWorkers=-1 result differs from sequential")
	}
}

// TestParallelOracleErrorDeterministic covers the unroutable path: the
// surfaced error and — via a follow-up solve on the same Solver — the
// interner state left behind by the failed sweep must match the sequential
// oracle's at every worker count.
func TestParallelOracleErrorDeterministic(t *testing.T) {
	g := graph.New()
	nodes := make([]graph.NodeID, 8)
	for i := range nodes {
		nodes[i] = g.AddNode("n", graph.KindHost)
	}
	for i := 0; i < 5; i++ { // connected component 0..5
		if _, _, err := g.AddBiEdge(nodes[i], nodes[i+1], 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := g.AddBiEdge(nodes[6], nodes[7], 10); err != nil { // island
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 10}
	bad := []Commodity{
		{Src: nodes[0], Dst: nodes[4], Demand: 1},
		{Src: nodes[1], Dst: nodes[3], Demand: 1},
		{Src: nodes[2], Dst: nodes[7], Demand: 1}, // unroutable
		{Src: nodes[3], Dst: nodes[0], Demand: 1},
	}
	good := []Commodity{
		{Src: nodes[0], Dst: nodes[5], Demand: 1},
		{Src: nodes[5], Dst: nodes[1], Demand: 2},
	}
	var refErr string
	var refRes *Result
	for _, w := range workerCounts() {
		s, err := NewSolver(g, m, Options{MaxIters: 8, OracleWorkers: w})
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Solve(bad)
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("workers=%d: want ErrNoRoute, got %v", w, err)
		}
		badErr := err.Error()
		res, err := s.Solve(good)
		if err != nil {
			t.Fatalf("workers=%d: follow-up solve: %v", w, err)
		}
		if refErr == "" {
			refErr, refRes = badErr, res
			continue
		}
		if badErr != refErr {
			t.Fatalf("workers=%d: error %q, want %q", w, badErr, refErr)
		}
		if !reflect.DeepEqual(res, refRes) {
			t.Fatalf("workers=%d: follow-up result diverges after error path", w)
		}
	}
}
