package mcfsolve

import (
	"testing"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// TestOracleSweepZeroAllocsAfterWarmup is the allocation-regression ceiling
// for the solver's linear oracle: once every optimal path has been interned
// (first sweep), a full sweep — Dijkstra tree per distinct source plus path
// extraction and interning for every commodity — must not allocate.
func TestOracleSweepZeroAllocsAfterWarmup(t *testing.T) {
	ft, err := topology.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]Commodity, 12)
	for i := range comms {
		comms[i] = Commodity{
			ID:     0,
			Src:    ft.Hosts[(i*3)%len(ft.Hosts)],
			Dst:    ft.Hosts[(i*5+2)%len(ft.Hosts)],
			Demand: 1,
		}
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	s, err := NewSolver(ft.Graph, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.orc.bind(comms)
	out := make([]graph.PathHandle, len(comms))
	w := s.orc.slotWeights()
	for i := range w {
		w[i] = float64(i%5) + 1
	}
	if err := s.orc.shortestPaths(comms, out); err != nil {
		t.Fatal(err) // warm-up: interns every path, sizes buffers
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.orc.shortestPaths(comms, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("oracle sweep allocates %.1f times per run after warm-up, want 0", allocs)
	}
}
