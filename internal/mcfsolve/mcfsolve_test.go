package mcfsolve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff/scale <= tol
}

func TestSolveSplitsAcrossParallelLinks(t *testing.T) {
	// One commodity of demand 2 over two parallel links with cost x^2:
	// optimum splits 1/1 with objective 2 (vs 4 unsplit).
	top, src, dst, err := topology.ParallelLinks(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	res, err := Solve(top.Graph, []Commodity{{ID: 0, Src: src, Dst: dst, Demand: 2}}, m,
		Options{Cost: CostDynamic, MaxIters: 200, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Objective, 2, 1e-3) {
		t.Fatalf("objective = %v, want 2", res.Objective)
	}
	// Both src->dst edges carry about 1 each.
	var used int
	for _, e := range top.Graph.Edges() {
		if e.From == src && res.EdgeFlow[e.ID] > 0.4 {
			used++
			if !almostEqual(res.EdgeFlow[e.ID], 1, 5e-2) {
				t.Fatalf("edge %d flow = %v, want ~1", e.ID, res.EdgeFlow[e.ID])
			}
		}
	}
	if used != 2 {
		t.Fatalf("used %d forward links, want 2", used)
	}
}

func TestSolveEnvelopeConsolidates(t *testing.T) {
	// With sigma > 0 and demand below Ropt, the envelope is linear, so the
	// objective equals powerRate(r*) * demand * hops regardless of split.
	top, src, dst, err := topology.ParallelLinks(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 4, Mu: 1, Alpha: 2, C: 100} // Ropt = 2, rate = 4
	res, err := Solve(top.Graph, []Commodity{{ID: 0, Src: src, Dst: dst, Demand: 1}}, m,
		Options{Cost: CostEnvelope, MaxIters: 100, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Objective, 4, 1e-3) {
		t.Fatalf("objective = %v, want 4 (= powerRate(Ropt) * demand)", res.Objective)
	}
}

func TestSolveDiamondBalances(t *testing.T) {
	// Diamond a->{b,c}->d with cost x^2 and demand 4: optimum routes 2 via
	// b and 2 via c, objective = 4 links * 2^2 = 16.
	g := graph.New()
	a := g.AddNode("a", graph.KindHost)
	b := g.AddNode("b", graph.KindSwitch)
	c := g.AddNode("c", graph.KindSwitch)
	d := g.AddNode("d", graph.KindHost)
	for _, pair := range [][2]graph.NodeID{{a, b}, {a, c}, {b, d}, {c, d}} {
		if _, err := g.AddEdge(pair[0], pair[1], 100); err != nil {
			t.Fatal(err)
		}
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	res, err := Solve(g, []Commodity{{ID: 0, Src: a, Dst: d, Demand: 4}}, m,
		Options{Cost: CostDynamic, MaxIters: 300, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Objective, 16, 5e-3) {
		t.Fatalf("objective = %v, want 16", res.Objective)
	}
	for eid := 0; eid < g.NumEdges(); eid++ {
		if !almostEqual(res.EdgeFlow[eid], 2, 5e-2) {
			t.Fatalf("edge %d flow = %v, want ~2", eid, res.EdgeFlow[eid])
		}
	}
}

func TestSolveMultipleCommodities(t *testing.T) {
	// Two opposing commodities on a line use the two directions without
	// interference: objective = 2 * x^2 per hop.
	line, err := topology.Line(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	res, err := Solve(line.Graph, []Commodity{
		{ID: 0, Src: line.Hosts[0], Dst: line.Hosts[2], Demand: 3},
		{ID: 1, Src: line.Hosts[2], Dst: line.Hosts[0], Demand: 3},
	}, m, Options{Cost: CostDynamic, MaxIters: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Each direction: 2 hops at rate 3 → 2*9; both: 36.
	if !almostEqual(res.Objective, 36, 1e-3) {
		t.Fatalf("objective = %v, want 36", res.Objective)
	}
}

func TestSolveCapacityPenaltySpreads(t *testing.T) {
	// Demand 6 with C=2 over 3 parallel links: penalty forces an even
	// 2/2/2 spread with zero violation.
	top, src, dst, err := topology.ParallelLinks(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 2}
	res, err := Solve(top.Graph, []Commodity{{ID: 0, Src: src, Dst: dst, Demand: 6}}, m,
		Options{Cost: CostDynamic, MaxIters: 300, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range top.Graph.Edges() {
		if e.From != src {
			continue
		}
		if res.EdgeFlow[e.ID] > 2.1 {
			t.Fatalf("edge %d flow = %v exceeds capacity noticeably", e.ID, res.EdgeFlow[e.ID])
		}
	}
}

func TestPathDecompositionInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft, err := topology.FatTree(4, 100)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(6)
		comms := make([]Commodity, 0, n)
		for i := 0; i < n; i++ {
			s := ft.Hosts[rng.Intn(len(ft.Hosts))]
			d := ft.Hosts[rng.Intn(len(ft.Hosts))]
			if s == d {
				continue
			}
			comms = append(comms, Commodity{
				ID: 0, Src: s, Dst: d, Demand: 0.2 + rng.Float64()*3,
			})
		}
		if len(comms) == 0 {
			return true
		}
		m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 100}
		res, err := Solve(ft.Graph, comms, m, Options{MaxIters: 30})
		if err != nil {
			return false
		}
		for i, c := range comms {
			var total float64
			for _, wp := range res.PathsByCommodity[i] {
				if wp.Weight <= 0 {
					return false
				}
				if err := wp.Path.Validate(ft.Graph, c.Src, c.Dst); err != nil {
					return false
				}
				total += wp.Weight
			}
			if !almostEqual(total, c.Demand, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeFlowMatchesDecomposition(t *testing.T) {
	ft, err := topology.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	comms := []Commodity{
		{ID: 0, Src: ft.Hosts[0], Dst: ft.Hosts[9], Demand: 2},
		{ID: 1, Src: ft.Hosts[3], Dst: ft.Hosts[12], Demand: 1.5},
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 100}
	res, err := Solve(ft.Graph, comms, m, Options{MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	recon := make([]float64, ft.Graph.NumEdges())
	for i := range comms {
		for _, wp := range res.PathsByCommodity[i] {
			for _, eid := range wp.Path.Edges {
				recon[eid] += wp.Weight
			}
		}
	}
	for eid := range recon {
		if !almostEqual(recon[eid], res.EdgeFlow[eid], 1e-6) {
			t.Fatalf("edge %d: decomposition %v vs aggregate %v", eid, recon[eid], res.EdgeFlow[eid])
		}
	}
}

func TestSolveErrors(t *testing.T) {
	line, err := topology.Line(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2}
	t.Run("nil graph", func(t *testing.T) {
		if _, err := Solve(nil, nil, m, Options{}); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("bad model", func(t *testing.T) {
		if _, err := Solve(line.Graph, nil, power.Model{Mu: 1, Alpha: 1}, Options{}); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("zero demand", func(t *testing.T) {
		_, err := Solve(line.Graph, []Commodity{{Src: 0, Dst: 1, Demand: 0}}, m, Options{})
		if !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("self loop", func(t *testing.T) {
		_, err := Solve(line.Graph, []Commodity{{Src: 0, Dst: 0, Demand: 1}}, m, Options{})
		if !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("unknown node", func(t *testing.T) {
		_, err := Solve(line.Graph, []Commodity{{Src: 0, Dst: 99, Demand: 1}}, m, Options{})
		if !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		g := graph.New()
		a := g.AddNode("a", graph.KindHost)
		b := g.AddNode("b", graph.KindHost)
		_, err := Solve(g, []Commodity{{Src: a, Dst: b, Demand: 1}}, m, Options{})
		if !errors.Is(err, ErrNoRoute) {
			t.Fatalf("err = %v, want ErrNoRoute", err)
		}
	})
}

func TestSolveEmptyCommodities(t *testing.T) {
	line, err := topology.Line(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(line.Graph, nil, power.Model{Mu: 1, Alpha: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 0 {
		t.Fatalf("objective = %v, want 0", res.Objective)
	}
}

func TestGapDecreases(t *testing.T) {
	// More iterations must not worsen the objective.
	ft, err := topology.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	comms := []Commodity{
		{ID: 0, Src: ft.Hosts[0], Dst: ft.Hosts[15], Demand: 5},
		{ID: 1, Src: ft.Hosts[2], Dst: ft.Hosts[13], Demand: 4},
		{ID: 2, Src: ft.Hosts[5], Dst: ft.Hosts[8], Demand: 3},
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	coarse, err := Solve(ft.Graph, comms, m, Options{Cost: CostDynamic, MaxIters: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Solve(ft.Graph, comms, m, Options{Cost: CostDynamic, MaxIters: 100, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Objective > coarse.Objective+1e-9 {
		t.Fatalf("objective increased with iterations: %v -> %v", coarse.Objective, fine.Objective)
	}
}
