package mcfsolve

import (
	"runtime"
	"sync"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// Pool is a concurrency-safe free list of Solvers bound to one (compiled
// graph, power model, options) triple — the pooled per-solver scratch of
// the compile-once/solve-many architecture. Concurrent solves each Acquire
// a private Solver (constructing one only when the free list is empty) and
// Release it afterwards, so the shortest-path scratch, edge-flow buffers
// and path intern tables a Solver carries amortise across every solve on
// the same topology instead of across one caller's loop.
//
// Pooling is a speed lever only: a Solver's output is a pure function of
// its inputs whatever its scratch history (asserted by the conformance
// suite's scratch-reuse pass), so pooled and per-call solvers are
// bit-identical. The free list is an explicit bounded slice rather than a
// sync.Pool so warm capacity survives garbage collection — allocation
// counts stay deterministic, which the warm-vs-cold benchmark regressions
// rely on.
type Pool struct {
	c    *graph.Compiled
	m    power.Model
	opts Options // defaults applied, the form Solvers carry

	mu   sync.Mutex
	free []*Solver
	max  int
}

// NewPool validates the binding and returns an empty pool whose free list
// keeps at most 2*GOMAXPROCS idle Solvers (surplus Releases are dropped to
// the garbage collector).
func NewPool(g *graph.Graph, m power.Model, opts Options) (*Pool, error) {
	if g == nil {
		return nil, ErrBadInput
	}
	return NewPoolCompiled(graph.Compile(g), m, opts)
}

// NewPoolCompiled is NewPool on an explicitly compiled graph view.
func NewPoolCompiled(c *graph.Compiled, m power.Model, opts Options) (*Pool, error) {
	// Construct one Solver eagerly: it validates the triple once and
	// becomes the first warm entry.
	s, err := NewSolverCompiled(c, m, opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		c:    c,
		m:    m,
		opts: opts.withDefaults(m),
		max:  2 * runtime.GOMAXPROCS(0),
	}
	p.free = append(p.free, s)
	return p, nil
}

// Matches reports whether the pool is bound to exactly this (graph, model,
// options) triple — the guard callers use before substituting pooled
// solvers for per-call construction.
func (p *Pool) Matches(g *graph.Graph, m power.Model, opts Options) bool {
	return p != nil && p.c.Graph() == g && p.m == m && p.opts == opts.withDefaults(m)
}

// Acquire pops a warm Solver or constructs a fresh one. The caller owns it
// exclusively until Release.
func (p *Pool) Acquire() (*Solver, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	return NewSolverCompiled(p.c, p.m, p.opts)
}

// Release returns a Solver to the free list. Solvers not built by this
// pool's binding (or nil) are ignored, and the list never grows past its
// bound.
func (p *Pool) Release(s *Solver) {
	if s == nil || s.compiled != p.c || s.m != p.m || s.opts != p.opts {
		return
	}
	p.mu.Lock()
	if len(p.free) < p.max {
		p.free = append(p.free, s)
	}
	p.mu.Unlock()
}
