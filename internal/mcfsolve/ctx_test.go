package mcfsolve

import (
	"context"
	"errors"
	"testing"

	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// countingCtx is a context whose Err starts failing after failAfter calls —
// a deterministic probe for "cancellation is checked at every iteration
// boundary" without timing races.
type countingCtx struct {
	context.Context
	calls, failAfter int
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.calls > c.failAfter {
		return context.Canceled
	}
	return nil
}

// TestSolveCtxChecksEveryIteration proves the promised cancellation
// granularity: with a context that expires after k Err checks, a solve
// capped at far more iterations stops after exactly k iteration boundaries
// and returns the wrapped context error, not a partial result.
func TestSolveCtxChecksEveryIteration(t *testing.T) {
	ft, err := topology.FatTree(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	comms := []Commodity{
		{ID: 0, Src: ft.Hosts[0], Dst: ft.Hosts[5], Demand: 3},
		{ID: 1, Src: ft.Hosts[1], Dst: ft.Hosts[9], Demand: 2},
		{ID: 2, Src: ft.Hosts[2], Dst: ft.Hosts[13], Demand: 4},
	}
	// Reference run: the instance genuinely needs many iterations.
	ref, err := Solve(ft.Graph, comms, m, Options{MaxIters: 60, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Iters < 5 {
		t.Skipf("instance converges in %d iterations; too fast to probe", ref.Iters)
	}

	const failAfter = 3
	ctx := &countingCtx{Context: context.Background(), failAfter: failAfter}
	s, err := NewSolver(ft.Graph, m, Options{MaxIters: 60, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveCtx(ctx, comms)
	if res != nil || err == nil {
		t.Fatalf("cancelled solve returned %v, %v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if ctx.calls != failAfter+1 {
		t.Errorf("ctx.Err checked %d times before aborting, want %d (one per iteration)", ctx.calls, failAfter+1)
	}
}

// TestSolveCtxPreCancelled: a context already ended never starts iterating.
func TestSolveCtxPreCancelled(t *testing.T) {
	line, err := topology.Line(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSolver(line.Graph, power.Model{Mu: 1, Alpha: 2, C: 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.SolveCtx(ctx, []Commodity{{ID: 0, Src: line.Hosts[0], Dst: line.Hosts[2], Demand: 1}})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled solve returned %v, %v", res, err)
	}
}
