package mcfsolve

import (
	"fmt"
	"sort"

	"dcnflow/internal/graph"
)

// oracle computes shortest paths for all commodities under changing edge
// weights, deduplicating work by source node: one Dijkstra run serves every
// commodity sharing a source, and the run stops early once all of that
// source's destinations are finalised. All shortest-path state lives in a
// reusable graph.SSSPScratch and all produced paths are interned, so a full
// oracle sweep performs no allocations once every optimal path has been
// seen.
type oracle struct {
	csr    *graph.CSR
	sssp   *graph.SSSPScratch
	intern *graph.PathInterner

	// Commodity grouping, rebuilt by bind() when the commodity set changes.
	srcs    []graph.NodeID   // distinct sources, ascending
	members [][]int32        // commodity indices per source (same order)
	dsts    [][]graph.NodeID // destinations per source (deduplicated)

	pathBuf []graph.EdgeID // extraction scratch
}

func newOracle(csr *graph.CSR, intern *graph.PathInterner) *oracle {
	return &oracle{
		csr:    csr,
		sssp:   graph.NewSSSPScratch(csr),
		intern: intern,
	}
}

// bind (re)builds the source grouping for one commodity set. It is called
// once per Solve; the grouping is then reused by every Frank–Wolfe
// iteration.
func (o *oracle) bind(commodities []Commodity) {
	o.srcs = o.srcs[:0]
	o.members = o.members[:0]
	o.dsts = o.dsts[:0]
	bySrc := make(map[graph.NodeID]int, len(commodities))
	for i, c := range commodities {
		gi, ok := bySrc[c.Src]
		if !ok {
			gi = len(o.srcs)
			bySrc[c.Src] = gi
			o.srcs = append(o.srcs, c.Src)
			o.members = append(o.members, nil)
			o.dsts = append(o.dsts, nil)
		}
		o.members[gi] = append(o.members[gi], int32(i))
		found := false
		for _, d := range o.dsts[gi] {
			if d == c.Dst {
				found = true
				break
			}
		}
		if !found {
			o.dsts[gi] = append(o.dsts[gi], c.Dst)
		}
	}
	// Ascending source order keeps the sweep deterministic and matches the
	// historical map-then-sort implementation.
	order := make([]int, len(o.srcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return o.srcs[order[a]] < o.srcs[order[b]] })
	srcs := make([]graph.NodeID, len(order))
	members := make([][]int32, len(order))
	dsts := make([][]graph.NodeID, len(order))
	for i, gi := range order {
		srcs[i], members[i], dsts[i] = o.srcs[gi], o.members[gi], o.dsts[gi]
	}
	o.srcs, o.members, o.dsts = srcs, members, dsts
}

// slotWeights exposes the slot-ordered weight buffer (slot i carries edge
// csr.AdjEdge[i]); callers fill it before shortestPaths.
func (o *oracle) slotWeights() []float64 { return o.sssp.SlotWeights() }

// shortestPaths computes one weighted shortest path per bound commodity
// under the weights previously written into slotWeights and stores its
// interned handle in out (input order preserved). out must have
// len(commodities).
func (o *oracle) shortestPaths(commodities []Commodity, out []graph.PathHandle) error {
	for gi, src := range o.srcs {
		o.sssp.Tree(src, o.dsts[gi])
		for _, ci := range o.members[gi] {
			dst := commodities[ci].Dst
			o.pathBuf = o.pathBuf[:0]
			buf, ok := o.sssp.AppendPathTo(dst, o.pathBuf)
			if !ok {
				return fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, dst)
			}
			o.pathBuf = buf
			out[ci] = o.intern.Intern(buf)
		}
	}
	return nil
}
