package mcfsolve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dcnflow/internal/graph"
)

// oracle computes shortest paths for all commodities under changing edge
// weights, deduplicating work by source node: one Dijkstra run serves every
// commodity sharing a source, and the run stops early once all of that
// source's destinations are finalised. All shortest-path state lives in
// reusable graph.SSSPScratch and all produced paths are interned, so a full
// sequential oracle sweep performs no allocations once every optimal path
// has been seen.
//
// With workers > 1 the per-source runs of one sweep fan out across a
// bounded worker pool. Edge weights are frozen for the duration of a sweep,
// so source groups are independent: each worker borrows pooled scratch from
// the compiled graph, aliases the canonical weight buffer read-only
// (graph.SSSPScratch.ShareWeightsFrom), and extracts its groups' paths into
// per-group arenas. Interning and output assembly then happen in a single
// ascending-source merge pass, so the interner observes the exact call
// sequence of the sequential sweep and outputs are byte-identical at any
// worker count — the same order-fixed reduction contract the scenario-sweep
// pool established (see DESIGN.md "Determinism under parallel reduction").
type oracle struct {
	hot      *graph.CSR // renumbered view; all trees run in hot node space
	compiled *graph.Compiled
	sssp     *graph.SSSPScratch
	intern   *graph.PathInterner
	workers  int

	// Commodity grouping, rebuilt by bind() when the commodity set changes.
	// srcs/dsts stay in ORIGINAL node space: the ascending-source
	// determinism sort and ErrNoRoute messages must be layout-independent.
	// hsrcs/hdsts/cdst are their hot-space translations, which is what the
	// trees and path extraction consume (extracted paths still carry
	// original edge ids — see graph.Compiled's renumbering contract).
	srcs    []graph.NodeID   // distinct sources, ascending original ids
	members [][]int32        // commodity indices per source (same order)
	dsts    [][]graph.NodeID // destinations per source (deduplicated)
	hsrcs   []graph.NodeID   // srcs translated to hot ids
	hdsts   [][]graph.NodeID // dsts translated to hot ids
	cdst    []graph.NodeID   // per-commodity hot destination
	seen    map[[2]graph.NodeID]struct{}

	pathBuf []graph.EdgeID // sequential extraction scratch
	groups  []groupArena   // parallel extraction arenas, one per source group
}

// groupArena holds one source group's extracted paths between the parallel
// extraction pass and the ordered merge: member j's path occupies
// edges[offs[j]:offs[j+1]]. err records the first unroutable member; the
// members extracted before it (len(offs)-1 of them) are still interned by
// the merge so the interner state matches the sequential sweep's exactly.
type groupArena struct {
	edges []graph.EdgeID
	offs  []int32
	err   error
}

func newOracle(c *graph.Compiled, intern *graph.PathInterner, workers int) *oracle {
	if workers < 1 {
		workers = 1
	}
	hot := c.Hot()
	return &oracle{
		hot:      hot,
		compiled: c,
		sssp:     graph.NewSSSPScratch(hot),
		intern:   intern,
		workers:  workers,
	}
}

// bind (re)builds the source grouping for one commodity set. It is called
// once per Solve; the grouping is then reused by every Frank–Wolfe
// iteration. Destination dedup uses a (src, dst) seen set, so binding stays
// linear even on large incast fan-in groups (many commodities converging on
// one destination).
func (o *oracle) bind(commodities []Commodity) {
	o.srcs = o.srcs[:0]
	o.members = o.members[:0]
	o.dsts = o.dsts[:0]
	if o.seen == nil {
		o.seen = make(map[[2]graph.NodeID]struct{}, len(commodities))
	} else {
		clear(o.seen)
	}
	bySrc := make(map[graph.NodeID]int, len(commodities))
	for i, c := range commodities {
		gi, ok := bySrc[c.Src]
		if !ok {
			gi = len(o.srcs)
			bySrc[c.Src] = gi
			o.srcs = append(o.srcs, c.Src)
			o.members = append(o.members, nil)
			o.dsts = append(o.dsts, nil)
		}
		o.members[gi] = append(o.members[gi], int32(i))
		key := [2]graph.NodeID{c.Src, c.Dst}
		if _, dup := o.seen[key]; !dup {
			o.seen[key] = struct{}{}
			o.dsts[gi] = append(o.dsts[gi], c.Dst)
		}
	}
	// Ascending source order keeps the sweep deterministic and matches the
	// historical map-then-sort implementation.
	order := make([]int, len(o.srcs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return o.srcs[order[a]] < o.srcs[order[b]] })
	srcs := make([]graph.NodeID, len(order))
	members := make([][]int32, len(order))
	dsts := make([][]graph.NodeID, len(order))
	for i, gi := range order {
		srcs[i], members[i], dsts[i] = o.srcs[gi], o.members[gi], o.dsts[gi]
	}
	o.srcs, o.members, o.dsts = srcs, members, dsts

	// Hot-space translations, built once per bind so the per-sweep tree and
	// extraction loops are translation-free.
	o.hsrcs = o.hsrcs[:0]
	o.hdsts = o.hdsts[:0]
	for gi, src := range o.srcs {
		o.hsrcs = append(o.hsrcs, o.compiled.ToHot(src))
		hd := make([]graph.NodeID, len(o.dsts[gi]))
		for i, d := range o.dsts[gi] {
			hd[i] = o.compiled.ToHot(d)
		}
		o.hdsts = append(o.hdsts, hd)
	}
	o.cdst = o.cdst[:0]
	for _, c := range commodities {
		o.cdst = append(o.cdst, o.compiled.ToHot(c.Dst))
	}
}

// slotWeights exposes the slot-ordered weight buffer (slot i carries edge
// slotEdges()[i]); callers fill it before shortestPaths.
func (o *oracle) slotWeights() []float64 { return o.sssp.SlotWeights() }

// slotEdges returns the (original) edge id carried by each weight slot, in
// the hot view's slot order. The Frank–Wolfe weight fill iterates this in
// lockstep with slotWeights.
func (o *oracle) slotEdges() []graph.EdgeID { return o.hot.AdjEdge }

// tree runs one source group's shortest-path tree on s, via the dial bucket
// queue when the current weights quantize and the binary heap otherwise.
// Both produce bit-identical trees (the TreeDial contract), so the choice
// is invisible to everything downstream.
func (o *oracle) tree(s *graph.SSSPScratch, gi int, quantum float64, span int, dial bool) {
	if dial {
		s.TreeDial(o.hsrcs[gi], o.hdsts[gi], quantum, span)
	} else {
		s.Tree(o.hsrcs[gi], o.hdsts[gi])
	}
}

// shortestPaths computes one weighted shortest path per bound commodity
// under the weights previously written into slotWeights and stores its
// interned handle in out (input order preserved). out must have
// len(commodities).
func (o *oracle) shortestPaths(commodities []Commodity, out []graph.PathHandle) error {
	// Probe the frozen weights once per sweep: hop-count cold starts (all
	// ones) select the O(E) dial queue, the marginal-cost weights of warm
	// Frank–Wolfe iterations fall back to the heap.
	quantum, span, dial := graph.QuantizeWeights(o.sssp.SlotWeights(), graph.MaxDialSpan)
	if o.workers <= 1 || len(o.srcs) < 2 {
		return o.shortestPathsSeq(commodities, out, quantum, span, dial)
	}
	return o.shortestPathsPar(commodities, out, quantum, span, dial)
}

func (o *oracle) shortestPathsSeq(commodities []Commodity, out []graph.PathHandle, quantum float64, span int, dial bool) error {
	for gi, src := range o.srcs {
		o.tree(o.sssp, gi, quantum, span, dial)
		for _, ci := range o.members[gi] {
			o.pathBuf = o.pathBuf[:0]
			buf, ok := o.sssp.AppendPathTo(o.cdst[ci], o.pathBuf)
			if !ok {
				return fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, commodities[ci].Dst)
			}
			o.pathBuf = buf
			out[ci] = o.intern.Intern(buf)
		}
	}
	return nil
}

// shortestPathsPar is the worker-pool sweep: extraction fans out over
// source groups via a shared atomic cursor, then a sequential
// ascending-source merge interns every path. The merge is where determinism
// lives — see the type comment.
func (o *oracle) shortestPathsPar(commodities []Commodity, out []graph.PathHandle, quantum float64, span int, dial bool) error {
	ng := len(o.srcs)
	for len(o.groups) < ng {
		o.groups = append(o.groups, groupArena{})
	}
	nw := o.workers
	if nw > ng {
		nw = ng
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := o.compiled.AcquireScratch()
			s.ShareWeightsFrom(o.sssp)
			defer o.compiled.ReleaseScratch(s)
			for {
				gi := int(next.Add(1)) - 1
				if gi >= ng {
					return
				}
				o.extractGroup(s, gi, commodities, quantum, span, dial)
			}
		}()
	}
	// The calling goroutine is worker 0, on the oracle's own scratch.
	for {
		gi := int(next.Add(1)) - 1
		if gi >= ng {
			break
		}
		o.extractGroup(o.sssp, gi, commodities, quantum, span, dial)
	}
	wg.Wait()

	// Ordered merge: ascending source groups, members in input order —
	// exactly the sequential sweep's interner call sequence. A group's
	// extracted members are interned before its error surfaces, again
	// matching the sequential sweep (which interns the members preceding
	// the unroutable one before returning).
	for gi := 0; gi < ng; gi++ {
		g := &o.groups[gi]
		for j := 0; j+1 < len(g.offs); j++ {
			out[o.members[gi][j]] = o.intern.Intern(g.edges[g.offs[j]:g.offs[j+1]])
		}
		if g.err != nil {
			return g.err
		}
	}
	return nil
}

// extractGroup runs one source group's tree on s and copies every member's
// path into the group's arena. Arena slices are reused across sweeps, so a
// warm parallel sweep's only recurring allocations are the worker
// goroutines themselves.
func (o *oracle) extractGroup(s *graph.SSSPScratch, gi int, commodities []Commodity, quantum float64, span int, dial bool) {
	g := &o.groups[gi]
	g.edges = g.edges[:0]
	g.offs = append(g.offs[:0], 0)
	g.err = nil
	o.tree(s, gi, quantum, span, dial)
	src := o.srcs[gi]
	for _, ci := range o.members[gi] {
		buf, ok := s.AppendPathTo(o.cdst[ci], g.edges)
		if !ok {
			g.err = fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, commodities[ci].Dst)
			return
		}
		g.edges = buf
		g.offs = append(g.offs, int32(len(g.edges)))
	}
}
