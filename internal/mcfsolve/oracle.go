package mcfsolve

import (
	"fmt"
	"sort"

	"dcnflow/internal/graph"
)

// oracle computes shortest paths for all commodities under changing edge
// weights, deduplicating work by source node: one Dijkstra run serves every
// commodity sharing a source.
type oracle struct {
	g *graph.Graph
}

func newOracle(g *graph.Graph) *oracle { return &oracle{g: g} }

// shortestPaths returns one weighted shortest path per commodity (input
// order preserved).
func (o *oracle) shortestPaths(commodities []Commodity, weight func(graph.Edge) float64) ([]graph.Path, error) {
	bySrc := make(map[graph.NodeID][]int)
	for i, c := range commodities {
		bySrc[c.Src] = append(bySrc[c.Src], i)
	}
	srcs := make([]graph.NodeID, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Slice(srcs, func(a, b int) bool { return srcs[a] < srcs[b] })

	out := make([]graph.Path, len(commodities))
	for _, src := range srcs {
		pred, err := o.dijkstraTree(src, weight)
		if err != nil {
			return nil, err
		}
		for _, ci := range bySrc[src] {
			p, ok := extractPath(o.g, pred, src, commodities[ci].Dst)
			if !ok {
				return nil, fmt.Errorf("%w: %d -> %d", ErrNoRoute, src, commodities[ci].Dst)
			}
			out[ci] = p
		}
	}
	return out, nil
}

const unreachedPred = graph.EdgeID(-1)

// dijkstraTree runs single-source Dijkstra and returns the predecessor-edge
// array.
func (o *oracle) dijkstraTree(src graph.NodeID, weight func(graph.Edge) float64) ([]graph.EdgeID, error) {
	n := o.g.NumNodes()
	dist := make([]float64, n)
	pred := make([]graph.EdgeID, n)
	done := make([]bool, n)
	const inf = 1e308
	for i := range dist {
		dist[i] = inf
		pred[i] = unreachedPred
	}
	dist[src] = 0

	h := newNodeHeap(n)
	h.push(src, 0)
	for h.len() > 0 {
		u, d := h.pop()
		if done[u] || d > dist[u] {
			continue
		}
		done[u] = true
		for _, eid := range o.g.OutEdges(u) {
			e := o.g.MustEdge(eid)
			if done[e.To] {
				// Never rewrite the predecessor of a finalised node: with
				// float absorption (tiny weights added to huge distances)
				// "equal" distances are common, and a late equal-distance
				// overwrite can create predecessor cycles.
				continue
			}
			w := weight(e)
			if w < 0 {
				return nil, fmt.Errorf("mcfsolve: negative weight %v on edge %d", w, eid)
			}
			nd := dist[u] + w
			if nd < dist[e.To] || (nd == dist[e.To] && pred[e.To] != unreachedPred && eid < pred[e.To]) {
				dist[e.To] = nd
				pred[e.To] = eid
				h.push(e.To, nd)
			}
		}
	}
	return pred, nil
}

// extractPath walks the predecessor array back from dst.
func extractPath(g *graph.Graph, pred []graph.EdgeID, src, dst graph.NodeID) (graph.Path, bool) {
	if src == dst {
		return graph.Path{}, true
	}
	var rev []graph.EdgeID
	for cur := dst; cur != src; {
		eid := pred[cur]
		if eid == unreachedPred {
			return graph.Path{}, false
		}
		rev = append(rev, eid)
		cur = g.MustEdge(eid).From
		if len(rev) > g.NumEdges() {
			return graph.Path{}, false
		}
	}
	edges := make([]graph.EdgeID, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return graph.Path{Edges: edges}, true
}

// nodeHeap is a minimal binary min-heap of (node, dist) entries.
type nodeHeap struct {
	nodes []graph.NodeID
	dists []float64
}

func newNodeHeap(capHint int) *nodeHeap {
	return &nodeHeap{
		nodes: make([]graph.NodeID, 0, capHint),
		dists: make([]float64, 0, capHint),
	}
}

func (h *nodeHeap) len() int { return len(h.nodes) }

func (h *nodeHeap) push(n graph.NodeID, d float64) {
	h.nodes = append(h.nodes, n)
	h.dists = append(h.dists, d)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dists[p] <= h.dists[i] {
			break
		}
		h.swap(p, i)
		i = p
	}
}

func (h *nodeHeap) pop() (graph.NodeID, float64) {
	n, d := h.nodes[0], h.dists[0]
	last := len(h.nodes) - 1
	h.swap(0, last)
	h.nodes = h.nodes[:last]
	h.dists = h.dists[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.dists[l] < h.dists[smallest] {
			smallest = l
		}
		if r < last && h.dists[r] < h.dists[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
	return n, d
}

func (h *nodeHeap) swap(a, b int) {
	h.nodes[a], h.nodes[b] = h.nodes[b], h.nodes[a]
	h.dists[a], h.dists[b] = h.dists[b], h.dists[a]
}
