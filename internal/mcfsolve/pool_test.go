package mcfsolve

import (
	"reflect"
	"sync"
	"testing"

	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// poolTestGraph builds a small diamond with two equal-hop routes.
func poolTestGraph(t *testing.T) (*graph.Graph, []Commodity) {
	t.Helper()
	g := graph.New()
	s := g.AddNode("s", graph.KindHost)
	a := g.AddNode("a", graph.KindSwitch)
	b := g.AddNode("b", graph.KindSwitch)
	d := g.AddNode("d", graph.KindHost)
	for _, e := range [][2]graph.NodeID{{s, a}, {s, b}, {a, d}, {b, d}} {
		if _, err := g.AddEdge(e[0], e[1], 100); err != nil {
			t.Fatal(err)
		}
	}
	return g, []Commodity{{ID: 1, Src: s, Dst: d, Demand: 3}, {ID: 2, Src: s, Dst: d, Demand: 2}}
}

// TestPoolReuseAndMatch: Acquire/Release recycles solvers, Matches guards
// the binding, and pooled solves are bit-identical to fresh ones.
func TestPoolReuseAndMatch(t *testing.T) {
	g, comms := poolTestGraph(t)
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	opts := Options{MaxIters: 20}
	p, err := NewPool(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Matches(g, m, opts) {
		t.Fatal("pool does not match its own binding")
	}
	if p.Matches(g, power.Model{Mu: 2, Alpha: 2, C: 100}, opts) {
		t.Fatal("pool matches a foreign model")
	}
	other := graph.New()
	other.AddNode("x", graph.KindHost)
	if p.Matches(other, m, opts) {
		t.Fatal("pool matches a foreign graph")
	}

	s1, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	res1, err := s1.Solve(comms)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(s1)
	s2, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("Release/Acquire did not recycle the warm solver")
	}
	res2, err := s2.Solve(comms)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(s2)
	if res1.Objective != res2.Objective || !reflect.DeepEqual(res1.EdgeFlow, res2.EdgeFlow) {
		t.Fatalf("pooled re-solve diverged: %v vs %v", res1.Objective, res2.Objective)
	}

	fresh, err := NewSolver(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := fresh.Solve(comms)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Objective != res3.Objective || !reflect.DeepEqual(res1.EdgeFlow, res3.EdgeFlow) {
		t.Fatal("pooled solver output differs from a fresh solver's")
	}

	// A foreign solver must not enter the free list.
	foreign, err := NewSolver(g, m, Options{MaxIters: 7})
	if err != nil {
		t.Fatal(err)
	}
	p.Release(foreign)
	s3, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == foreign {
		t.Fatal("pool accepted a solver with a different options binding")
	}
}

// TestPoolConcurrentSolves: concurrent Acquire/Solve/Release cycles on one
// pool are race-free and every solve returns the same objective.
func TestPoolConcurrentSolves(t *testing.T) {
	g, comms := poolTestGraph(t)
	m := power.Model{Mu: 1, Alpha: 2, C: 100}
	p, err := NewPool(g, m, Options{MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSolver(g, m, Options{MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(comms)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				s, err := p.Acquire()
				if err != nil {
					errs <- err
					return
				}
				res, err := s.Solve(comms)
				p.Release(s)
				if err != nil {
					errs <- err
					return
				}
				if res.Objective != want.Objective {
					errs <- ErrBadInput
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent pooled solve failed: %v", err)
	}
}
