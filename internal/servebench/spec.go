// Package servebench is the open-loop load harness for the serve API: a
// deterministic request schedule (Poisson or burst arrivals over a
// scenario corpus, derived from one seed) fired by a pool of concurrent
// clients at a real `dcnflow serve` process, with per-class latency
// percentiles, throughput and error rates collected into a Report.
//
// The pieces compose: Load reads a Spec (strictly, mirroring the scenario
// loader), BuildSchedule expands it into timed requests, StartServer
// launches the server subprocess, and Run drives the schedule and
// aggregates. `make bench-serve` snapshots the results into
// BENCH_serve.json; `make bench-serve-smoke` is the CI-sized variant.
package servebench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"dcnflow"
)

// Arrival kinds a Spec may name.
const (
	ArrivalPoisson = "poisson"
	ArrivalBurst   = "burst"
)

// ErrBadSpec tags every spec validation failure.
var ErrBadSpec = errors.New("servebench: invalid spec")

// ArrivalSpec describes the open-loop arrival process.
type ArrivalSpec struct {
	// Kind is "poisson" (exponential inter-arrivals) or "burst" (groups of
	// Burst requests arriving together at the mean rate).
	Kind string `json:"kind"`
	// Rate is the mean arrival rate in requests per second.
	Rate float64 `json:"rate"`
	// Burst is the group size for kind "burst" (ignored for poisson).
	Burst int `json:"burst,omitempty"`
}

// ServeSpec configures the server under test.
type ServeSpec struct {
	// Shards is the engine shard count (`dcnflow serve -shards`); 0 = 1.
	Shards int `json:"shards,omitempty"`
	// AdmitRate enables token-bucket admission at this rate (requests/s);
	// 0 runs the server open (no admission control).
	AdmitRate float64 `json:"admit_rate,omitempty"`
	// AdmitBurst is the bucket capacity; 0 selects the server default.
	AdmitBurst float64 `json:"admit_burst,omitempty"`
	// AdmitQueue bounds the accept queue; 0 selects the server default.
	AdmitQueue int `json:"admit_queue,omitempty"`
}

// Spec is one load-test definition: the corpus, the arrival process, the
// client pool and the server configuration, all derived deterministically
// from Seed.
type Spec struct {
	// Name labels the run in reports.
	Name string `json:"name"`
	// Scenarios is the corpus; each request draws one uniformly.
	Scenarios []dcnflow.ScenarioSpec `json:"scenarios"`
	// Solvers lists the solver names requests draw from uniformly.
	Solvers []string `json:"solvers"`
	// Arrival is the open-loop arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Requests is the total request count of the schedule.
	Requests int `json:"requests"`
	// Clients is the concurrent client pool size.
	Clients int `json:"clients"`
	// Classes weights the priority classes requests are tagged with
	// (e.g. {"high": 1, "normal": 8, "low": 1}); empty means all normal.
	Classes map[string]float64 `json:"classes,omitempty"`
	// Seed makes the schedule reproducible: same spec, same schedule.
	Seed int64 `json:"seed"`
	// TimeoutMS is the per-request timeout_ms sent to the server (0 =
	// server ceiling only).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Serve configures the server under test.
	Serve ServeSpec `json:"serve"`
}

// Validate checks the spec. Errors wrap ErrBadSpec and name the field.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("%w: nil spec", ErrBadSpec)
	}
	if s.Name == "" {
		return fmt.Errorf("%w: name is required", ErrBadSpec)
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("%w: at least one scenario is required", ErrBadSpec)
	}
	for i := range s.Scenarios {
		if err := s.Scenarios[i].Validate(); err != nil {
			return fmt.Errorf("%w: scenario %d: %v", ErrBadSpec, i, err)
		}
	}
	if len(s.Solvers) == 0 {
		return fmt.Errorf("%w: at least one solver is required", ErrBadSpec)
	}
	registered := make(map[string]bool)
	for _, name := range dcnflow.SolverNames() {
		registered[name] = true
	}
	for _, name := range s.Solvers {
		if !registered[name] {
			return fmt.Errorf("%w: unknown solver %q", ErrBadSpec, name)
		}
	}
	switch s.Arrival.Kind {
	case ArrivalPoisson:
	case ArrivalBurst:
		if s.Arrival.Burst < 1 {
			return fmt.Errorf("%w: burst arrivals need burst >= 1", ErrBadSpec)
		}
	default:
		return fmt.Errorf("%w: unknown arrival kind %q (want %s or %s)",
			ErrBadSpec, s.Arrival.Kind, ArrivalPoisson, ArrivalBurst)
	}
	if s.Arrival.Rate <= 0 {
		return fmt.Errorf("%w: arrival rate must be positive", ErrBadSpec)
	}
	if s.Requests < 1 {
		return fmt.Errorf("%w: requests must be >= 1", ErrBadSpec)
	}
	if s.Clients < 1 {
		return fmt.Errorf("%w: clients must be >= 1", ErrBadSpec)
	}
	total := 0.0
	for class, weight := range s.Classes {
		ok := false
		for _, known := range dcnflow.PriorityClasses {
			if class == known {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w: unknown priority class %q", ErrBadSpec, class)
		}
		if weight < 0 {
			return fmt.Errorf("%w: class %q has negative weight", ErrBadSpec, class)
		}
		total += weight
	}
	if len(s.Classes) > 0 && total <= 0 {
		return fmt.Errorf("%w: class weights sum to zero", ErrBadSpec)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("%w: timeout_ms must be >= 0", ErrBadSpec)
	}
	if s.Serve.Shards < 0 || s.Serve.AdmitRate < 0 || s.Serve.AdmitBurst < 0 || s.Serve.AdmitQueue < 0 {
		return fmt.Errorf("%w: serve parameters must be >= 0", ErrBadSpec)
	}
	return nil
}

// Load strictly decodes one spec, mirroring dcnflow.LoadScenario: unknown
// fields, trailing garbage and invalid parameter combinations are
// rejected, and an accepted spec always validates (FuzzServeBenchSpec).
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: trailing data after the spec object", ErrBadSpec)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// LoadFile loads a spec from disk.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("servebench: %w", err)
	}
	defer f.Close()
	spec, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// Save writes the canonical encoding (2-space indent, trailing newline) —
// a fixed point: Save(Load(Save(x))) == Save(x).
func Save(w io.Writer, spec *Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// classNames returns the spec's weighted classes in deterministic order
// (sorted), or nil when every request is normal.
func (s *Spec) classNames() []string {
	if len(s.Classes) == 0 {
		return nil
	}
	names := make([]string, 0, len(s.Classes))
	for class := range s.Classes {
		names = append(names, class)
	}
	sort.Strings(names)
	return names
}
