package servebench

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
)

// listenBanner matches the serve command's startup line.
var listenBanner = regexp.MustCompile(`listening on (http://\S+)`)

// BuildBinary compiles the dcnflow binary into dir and returns its path.
// A real binary (not `go run`) so the server receives signals directly.
func BuildBinary(ctx context.Context, dir string) (string, error) {
	bin := filepath.Join(dir, "dcnflow")
	build := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/dcnflow")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return "", fmt.Errorf("servebench: building dcnflow: %w", err)
	}
	return bin, nil
}

// Server is a live `dcnflow serve` subprocess under test.
type Server struct {
	// BaseURL is the resolved listen address ("http://127.0.0.1:port").
	BaseURL string
	cmd     *exec.Cmd
}

// StartServer launches `bin serve` on a free port configured from the
// spec's ServeSpec (shards and admission flags) and waits for the listen
// banner. Callers own the process: Stop for a graceful SIGTERM exit, Kill
// to tear it down.
func StartServer(ctx context.Context, bin string, spec *Spec) (*Server, error) {
	args := []string{"serve", "-addr", "127.0.0.1:0"}
	if spec.Serve.Shards > 0 {
		args = append(args, "-shards", strconv.Itoa(spec.Serve.Shards))
	}
	if spec.Serve.AdmitRate > 0 {
		args = append(args, "-admit-rate", strconv.FormatFloat(spec.Serve.AdmitRate, 'g', -1, 64))
		if spec.Serve.AdmitBurst > 0 {
			args = append(args, "-admit-burst", strconv.FormatFloat(spec.Serve.AdmitBurst, 'g', -1, 64))
		}
		if spec.Serve.AdmitQueue > 0 {
			args = append(args, "-admit-queue", strconv.Itoa(spec.Serve.AdmitQueue))
		}
	}
	cmd := exec.CommandContext(ctx, bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("servebench: starting serve: %w", err)
	}

	scanner := bufio.NewScanner(stdout)
	base := ""
	for scanner.Scan() {
		if m := listenBanner.FindStringSubmatch(scanner.Text()); m != nil {
			base = m[1]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("servebench: serve printed no listen banner (scan error: %v)", scanner.Err())
	}
	go func() { // keep draining so the server never blocks on stdout
		for scanner.Scan() {
		}
	}()
	return &Server{BaseURL: base, cmd: cmd}, nil
}

// Stop SIGTERMs the server and waits for a clean exit.
func (s *Server) Stop() error {
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("servebench: signalling serve: %w", err)
	}
	if err := s.cmd.Wait(); err != nil {
		return fmt.Errorf("servebench: serve did not exit cleanly: %w", err)
	}
	return nil
}

// Kill tears the server down without waiting for a graceful exit.
func (s *Server) Kill() {
	s.cmd.Process.Kill()
	s.cmd.Wait()
}
