package servebench

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"dcnflow"
	"dcnflow/internal/stats"
)

// Request outcome labels in Report.Outcomes.
const (
	OutcomeOK          = "ok"              // 2xx with a solution
	OutcomeRejected    = "rejected"        // 429 (admission bucket/queue full)
	OutcomeUnavailable = "unavailable"     // 503 (drain)
	OutcomeServerError = "server_error"    // any other server-reported failure
	OutcomeTransport   = "transport_error" // connection/decoding failures
)

// ClassStats aggregates one priority class (or the whole run).
type ClassStats struct {
	// Requests is the number of scheduled requests in the class.
	Requests int `json:"requests"`
	// Outcomes counts terminal outcomes by label.
	Outcomes map[string]int `json:"outcomes"`
	// P50MS/P95MS/P99MS are open-loop latency percentiles in milliseconds,
	// measured from each request's scheduled fire time to completion (so
	// client-pool queueing counts, avoiding coordinated omission). Only
	// completed (ok) requests contribute.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	// MeanMS is the mean ok-latency in milliseconds.
	MeanMS float64 `json:"mean_ms"`
}

// Report is one load run's aggregate.
type Report struct {
	// Name echoes the spec name.
	Name string `json:"name"`
	// WallMS is the wall-clock span from first fire to last completion.
	WallMS float64 `json:"wall_ms"`
	// ThroughputRPS is completed-ok requests per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorRate is the fraction of requests that did not complete ok.
	ErrorRate float64 `json:"error_rate"`
	// Total aggregates every request; Classes splits by priority class
	// (canonical names; "" is reported as "normal").
	Total   ClassStats            `json:"total"`
	Classes map[string]ClassStats `json:"classes"`
}

// sample is one finished request.
type sample struct {
	class   string
	outcome string
	ms      float64
}

// Run fires the spec's schedule open-loop at baseURL: Clients workers pull
// timed requests in schedule order, each waiting for its fire instant, and
// latency is charged from the scheduled instant (not the actual send) so a
// saturated client pool shows up in the percentiles. Retry is nil-policy:
// a 429/503 is an outcome to record, not to paper over.
func Run(ctx context.Context, baseURL string, spec *Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	schedule := BuildSchedule(spec)
	client := &dcnflow.Client{
		BaseURL: baseURL,
		HTTPClient: &http.Client{
			Timeout: 120 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        spec.Clients,
				MaxIdleConnsPerHost: spec.Clients,
			},
		},
	}

	jobs := make(chan Call, len(schedule))
	for _, call := range schedule {
		jobs <- call
	}
	close(jobs)

	samples := make([]sample, 0, len(schedule))
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for call := range jobs {
				fireAt := start.Add(call.At)
				if d := time.Until(fireAt); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				_, err := client.Solve(ctx, call.Req)
				s := sample{
					class:   canonicalClass(call.Req.Priority),
					outcome: classifyOutcome(err),
					ms:      float64(time.Since(fireAt)) / float64(time.Millisecond),
				}
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("servebench: run aborted: %w", err)
	}
	if len(samples) != len(schedule) {
		return nil, fmt.Errorf("servebench: %d of %d requests completed", len(samples), len(schedule))
	}
	return aggregate(spec.Name, wall, samples), nil
}

func canonicalClass(class string) string {
	if class == "" {
		return dcnflow.PriorityNormal
	}
	return class
}

// classifyOutcome maps a client error to its outcome label.
func classifyOutcome(err error) string {
	if err == nil {
		return OutcomeOK
	}
	var se *dcnflow.ServeError
	if errors.As(err, &se) {
		switch se.Status {
		case http.StatusTooManyRequests:
			return OutcomeRejected
		case http.StatusServiceUnavailable:
			return OutcomeUnavailable
		default:
			return OutcomeServerError
		}
	}
	// The client reports solver-level failures (422/504 bodies) as plain
	// "dcnflow: server..." errors; everything else is transport.
	if strings.HasPrefix(err.Error(), "dcnflow: server") {
		return OutcomeServerError
	}
	return OutcomeTransport
}

// aggregate folds samples into the report.
func aggregate(name string, wall time.Duration, samples []sample) *Report {
	byClass := map[string][]sample{}
	for _, s := range samples {
		byClass[s.class] = append(byClass[s.class], s)
	}
	report := &Report{
		Name:    name,
		WallMS:  float64(wall) / float64(time.Millisecond),
		Total:   foldClass(samples),
		Classes: make(map[string]ClassStats, len(byClass)),
	}
	for class, ss := range byClass {
		report.Classes[class] = foldClass(ss)
	}
	ok := report.Total.Outcomes[OutcomeOK]
	if wall > 0 {
		report.ThroughputRPS = float64(ok) / wall.Seconds()
	}
	if len(samples) > 0 {
		report.ErrorRate = float64(len(samples)-ok) / float64(len(samples))
	}
	return report
}

func foldClass(ss []sample) ClassStats {
	cs := ClassStats{Requests: len(ss), Outcomes: map[string]int{}}
	var okLat []float64
	for _, s := range ss {
		cs.Outcomes[s.outcome]++
		if s.outcome == OutcomeOK {
			okLat = append(okLat, s.ms)
		}
	}
	if len(okLat) > 0 {
		cs.P50MS = stats.Percentile(okLat, 0.50)
		cs.P95MS = stats.Percentile(okLat, 0.95)
		cs.P99MS = stats.Percentile(okLat, 0.99)
		cs.MeanMS = stats.Mean(okLat)
	}
	return cs
}
