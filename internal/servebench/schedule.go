package servebench

import (
	"math/rand"
	"time"

	"dcnflow"
)

// Call is one scheduled request: fire At after the run starts.
type Call struct {
	// At is the offset from the run start at which the request fires.
	At time.Duration
	// Req is the fully-formed serve request (scenario, solver, priority).
	Req dcnflow.ServeRequest
}

// BuildSchedule expands a validated spec into its deterministic request
// schedule: one seeded PRNG drives arrival times, corpus picks and class
// assignment, so the same spec always produces byte-for-byte the same
// schedule regardless of host or clock.
func BuildSchedule(spec *Spec) []Call {
	rng := rand.New(rand.NewSource(spec.Seed))
	classes := spec.classNames()
	var weightSum float64
	for _, class := range classes {
		weightSum += spec.Classes[class]
	}

	calls := make([]Call, spec.Requests)
	var now time.Duration
	for i := range calls {
		switch spec.Arrival.Kind {
		case ArrivalPoisson:
			// Exponential inter-arrival with mean 1/rate.
			now += time.Duration(rng.ExpFloat64() / spec.Arrival.Rate * float64(time.Second))
		case ArrivalBurst:
			// Groups of Burst requests arrive together; the gaps between
			// groups keep the same mean rate as the Poisson process.
			if i > 0 && i%spec.Arrival.Burst == 0 {
				now += time.Duration(float64(spec.Arrival.Burst) / spec.Arrival.Rate * float64(time.Second))
			}
		}

		class := ""
		if len(classes) > 0 {
			pick := rng.Float64() * weightSum
			for _, c := range classes {
				pick -= spec.Classes[c]
				if pick < 0 {
					class = c
					break
				}
			}
			if class == "" {
				class = classes[len(classes)-1]
			}
		}

		calls[i] = Call{
			At: now,
			Req: dcnflow.ServeRequest{
				Scenario:  spec.Scenarios[rng.Intn(len(spec.Scenarios))],
				Solver:    spec.Solvers[rng.Intn(len(spec.Solvers))],
				TimeoutMS: spec.TimeoutMS,
				Priority:  class,
			},
		}
	}
	return calls
}
