package servebench

import (
	"bytes"
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dcnflow"
)

func benchScenario(name string, seed int64) dcnflow.ScenarioSpec {
	return dcnflow.ScenarioSpec{
		Name:     name,
		Topology: dcnflow.TopologySpec{Kind: "line", K: 3, Capacity: 100},
		Workload: dcnflow.WorkloadSpec{Kind: "shuffle", Hosts: 2, Release: 0, Deadline: 6, Size: 2},
		Model:    dcnflow.ModelSpec{Mu: 1, Alpha: 2, C: 100},
		Seed:     seed,
	}
}

func validSpec() *Spec {
	return &Spec{
		Name:      "unit",
		Scenarios: []dcnflow.ScenarioSpec{benchScenario("a", 1), benchScenario("b", 2)},
		Solvers:   []string{dcnflow.SolverSPMCF, dcnflow.SolverGreedyOnline},
		Arrival:   ArrivalSpec{Kind: ArrivalPoisson, Rate: 500},
		Requests:  20,
		Clients:   4,
		Classes:   map[string]float64{"high": 1, "normal": 8, "low": 1},
		Seed:      7,
	}
}

// validClass reports whether class is empty or a registered priority.
func validClass(class string) bool {
	if class == "" {
		return true
	}
	for _, known := range dcnflow.PriorityClasses {
		if class == known {
			return true
		}
	}
	return false
}

func TestSpecValidateTable(t *testing.T) {
	mutate := func(f func(*Spec)) *Spec {
		s := validSpec()
		f(s)
		return s
	}
	cases := map[string]struct {
		spec *Spec
		ok   bool
	}{
		"valid":            {validSpec(), true},
		"burst valid":      {mutate(func(s *Spec) { s.Arrival = ArrivalSpec{Kind: ArrivalBurst, Rate: 100, Burst: 5} }), true},
		"no classes":       {mutate(func(s *Spec) { s.Classes = nil }), true},
		"no name":          {mutate(func(s *Spec) { s.Name = "" }), false},
		"no scenarios":     {mutate(func(s *Spec) { s.Scenarios = nil }), false},
		"bad scenario":     {mutate(func(s *Spec) { s.Scenarios[0].Topology.Kind = "torus" }), false},
		"no solvers":       {mutate(func(s *Spec) { s.Solvers = nil }), false},
		"unknown solver":   {mutate(func(s *Spec) { s.Solvers = []string{"nope"} }), false},
		"bad arrival kind": {mutate(func(s *Spec) { s.Arrival.Kind = "steady" }), false},
		"zero rate":        {mutate(func(s *Spec) { s.Arrival.Rate = 0 }), false},
		"burst no size":    {mutate(func(s *Spec) { s.Arrival = ArrivalSpec{Kind: ArrivalBurst, Rate: 100} }), false},
		"zero requests":    {mutate(func(s *Spec) { s.Requests = 0 }), false},
		"zero clients":     {mutate(func(s *Spec) { s.Clients = 0 }), false},
		"unknown class":    {mutate(func(s *Spec) { s.Classes = map[string]float64{"urgent": 1} }), false},
		"negative weight":  {mutate(func(s *Spec) { s.Classes = map[string]float64{"high": -1} }), false},
		"zero weights":     {mutate(func(s *Spec) { s.Classes = map[string]float64{"high": 0} }), false},
		"negative timeout": {mutate(func(s *Spec) { s.TimeoutMS = -1 }), false},
		"negative shards":  {mutate(func(s *Spec) { s.Serve.Shards = -1 }), false},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("validation passed, want error")
			}
		})
	}
}

func TestLoadRejectsStrict(t *testing.T) {
	for name, input := range map[string]string{
		"garbage":       "{nope",
		"unknown field": `{"name": "x", "bogus": 1}`,
		"trailing":      `{"name": "x"} {}`,
		"empty":         ``,
	} {
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Load accepted %q", name, input)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := validSpec()
	var buf bytes.Buffer
	if err := Save(&buf, spec); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	back, err := Load(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, spec) {
		t.Fatalf("round-trip changed the spec:\n%+v\nvs\n%+v", back, spec)
	}
	var again bytes.Buffer
	if err := Save(&again, back); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatal("canonical encoding is not a fixed point")
	}
}

func TestScheduleDeterministicAndShaped(t *testing.T) {
	spec := validSpec()
	spec.Requests = 400
	a := BuildSchedule(spec)
	b := BuildSchedule(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different schedules")
	}
	if len(a) != spec.Requests {
		t.Fatalf("schedule has %d calls, want %d", len(a), spec.Requests)
	}

	// Fire times are non-decreasing, and the mean inter-arrival approaches
	// 1/rate (2ms at 500 rps; 400 samples keep the tolerance loose).
	classes := map[string]int{}
	for i, call := range a {
		if i > 0 && call.At < a[i-1].At {
			t.Fatalf("call %d fires before its predecessor", i)
		}
		if !validClass(call.Req.Priority) {
			t.Fatalf("call %d carries invalid priority %q", i, call.Req.Priority)
		}
		classes[call.Req.Priority]++
	}
	mean := a[len(a)-1].At.Seconds() / float64(len(a)-1)
	if mean < 0.0005 || mean > 0.008 {
		t.Fatalf("poisson mean inter-arrival %v s, want ~0.002", mean)
	}
	// The 1/8/1 class weights show up in the mix.
	if classes["normal"] <= classes["high"] || classes["normal"] <= classes["low"] {
		t.Fatalf("class mix ignores weights: %v", classes)
	}

	// A different seed moves the schedule.
	spec.Seed++
	if reflect.DeepEqual(a, BuildSchedule(spec)) {
		t.Fatal("different seed produced an identical schedule")
	}
}

func TestScheduleBurstGroups(t *testing.T) {
	spec := validSpec()
	spec.Arrival = ArrivalSpec{Kind: ArrivalBurst, Rate: 100, Burst: 5}
	spec.Requests = 20
	calls := BuildSchedule(spec)
	for i, call := range calls {
		group := i / 5
		want := time.Duration(float64(group) * 5 / 100 * float64(time.Second))
		if call.At != want {
			t.Fatalf("call %d fires at %v, want %v (group %d)", i, call.At, want, group)
		}
	}
}

func TestRunAgainstHandler(t *testing.T) {
	group := dcnflow.NewEngineGroup(2, dcnflow.EngineOptions{})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	spec := validSpec()
	spec.Requests = 30
	report, err := Run(context.Background(), srv.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Requests != 30 {
		t.Fatalf("report covers %d requests, want 30", report.Total.Requests)
	}
	if got := report.Total.Outcomes[OutcomeOK]; got != 30 {
		t.Fatalf("%d ok of 30 against an open server: %+v", got, report.Total.Outcomes)
	}
	if report.ErrorRate != 0 {
		t.Fatalf("error rate %v on an open server", report.ErrorRate)
	}
	if report.ThroughputRPS <= 0 || report.WallMS <= 0 {
		t.Fatalf("degenerate throughput/wall: %+v", report)
	}
	if report.Total.P50MS <= 0 || report.Total.P99MS < report.Total.P50MS {
		t.Fatalf("degenerate percentiles: %+v", report.Total)
	}
	classTotal := 0
	for class, cs := range report.Classes {
		if !validClass(class) {
			t.Fatalf("report names unknown class %q", class)
		}
		classTotal += cs.Requests
	}
	if classTotal != 30 {
		t.Fatalf("class split covers %d requests, want 30", classTotal)
	}
}

func TestRunRecordsRejections(t *testing.T) {
	group := dcnflow.NewEngineGroup(1, dcnflow.EngineOptions{})
	handler := dcnflow.NewServeHandlerSharded(group, dcnflow.ServeOptions{
		// One token, no refill to speak of, no queue to hide in: everything
		// past the first request is a 429.
		Admission: dcnflow.AdmissionOptions{Rate: 0.0001, Burst: 1, QueueDepth: 1, MaxWait: time.Millisecond},
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()
	defer handler.Drain()

	spec := validSpec()
	spec.Requests = 10
	spec.Classes = nil
	report, err := Run(context.Background(), srv.URL, spec)
	if err != nil {
		t.Fatal(err)
	}
	if report.Total.Outcomes[OutcomeRejected] == 0 {
		t.Fatalf("no rejections under a starved admission bucket: %+v", report.Total.Outcomes)
	}
	if report.ErrorRate <= 0 {
		t.Fatalf("error rate %v with rejections present", report.ErrorRate)
	}
}

// FuzzServeBenchSpec: Load is total — arbitrary input either yields a spec
// that validates and round-trips through the canonical encoding, or an
// error; never a panic, never a silently invalid spec. Mirrors
// FuzzLoadScenario and FuzzServeRequest.
func FuzzServeBenchSpec(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := Save(&seedBuf, validSpec()); err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		seedBuf.String(),
		`{}`,
		`{"name": "x"}`,
		`{"name": "x", "arrival": {"kind": "poisson", "rate": 10}}`,
		`{"bogus": true}`,
		`[1]`,
		"null",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Load accepted a spec that fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if err := Save(&buf, spec); err != nil {
			t.Fatalf("accepted spec does not save: %v", err)
		}
		first := buf.String()
		back, err := Load(strings.NewReader(first))
		if err != nil {
			t.Fatalf("canonical encoding does not load back: %v", err)
		}
		var again bytes.Buffer
		if err := Save(&again, back); err != nil {
			t.Fatal(err)
		}
		if again.String() != first {
			t.Fatal("canonical encoding is not a fixed point")
		}
		// The schedule generator must be total on accepted specs (bounded
		// for fuzz throughput).
		if spec.Requests <= 1000 {
			calls := BuildSchedule(spec)
			if len(calls) != spec.Requests {
				t.Fatalf("schedule has %d calls for %d requests", len(calls), spec.Requests)
			}
			for i := 1; i < len(calls); i++ {
				if calls[i].At < calls[i-1].At {
					t.Fatalf("call %d fires before its predecessor", i)
				}
				if math.Signbit(float64(calls[i].At)) {
					t.Fatalf("call %d fires at negative offset", i)
				}
			}
		}
	})
}
