// Package decision is the structured decision-log subsystem of the online
// schedulers: typed records of every admission and epoch-replan decision
// (who was admitted, on which path, what the alternatives would have cost),
// a counterfactual replayer that re-runs a recorded trace with one decision
// flipped and re-scores the suffix with the discrete-event simulator, and a
// weighted multi-objective fitness function that collapses a run (or a
// sweep cell) to one comparable scalar.
//
// The package sits below internal/online: the schedulers call a Recorder at
// every decision point and consult Overrides during counterfactual re-runs,
// while decision itself never imports the schedulers — Replay drives any
// sim.OnlineEngine through a caller-supplied factory.
//
// Determinism contract: records carry sequence numbers assigned in decision
// order (epoch/arrival order, never goroutine order), so two runs of the
// same instance produce byte-identical logs at any worker or parallelism
// count.
package decision

import (
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
)

// Kind classifies a decision record.
type Kind string

// The record kinds a scheduler emits.
const (
	// KindAdmit records an admitted flow: the chosen path, its rate and
	// exact marginal energy, and the scored alternatives.
	KindAdmit Kind = "admit"
	// KindReject records a flow refused by admission control (or by a
	// counterfactual override).
	KindReject Kind = "reject"
	// KindReplan records an epoch re-solve boundary of the rolling
	// scheduler (the greedy never emits it).
	KindReplan Kind = "replan"
)

// NoFlow is the Flow field of records not tied to a flow (replan
// boundaries). Flow IDs are non-negative, so the value cannot collide.
const NoFlow flow.ID = -1

// Alternative is one scored candidate the scheduler considered but did not
// choose — for the rolling scheduler a relaxation-candidate path with its
// aggregated rounding weight, for the greedy the min-hop path. Marginal
// energies are exact (integrated against the reservations at decision
// time), so counterfactual replays can be ranked before re-running anything.
type Alternative struct {
	// Path is the candidate's directed edge sequence.
	Path []graph.EdgeID `json:"path"`
	// Weight is the relaxation distribution mass behind the candidate
	// (zero for safety-net and greedy alternatives).
	Weight float64 `json:"weight,omitempty"`
	// MarginalEnergy is the exact energy increase of reserving the flow's
	// rate on this path over its residual span, at decision time.
	MarginalEnergy float64 `json:"marginal_energy"`
}

// Record is one typed decision of an online scheduler.
type Record struct {
	// Seq is the deterministic sequence number, assigned in decision order
	// starting at 0.
	Seq int `json:"seq"`
	// Time is the simulated decision instant (arrival time for the greedy,
	// epoch boundary for the rolling scheduler).
	Time float64 `json:"time"`
	// Epoch is the 1-based epoch index of the rolling scheduler; zero for
	// the greedy, which has no epochs.
	Epoch int `json:"epoch,omitempty"`
	// Kind classifies the decision; see KindAdmit, KindReject, KindReplan.
	Kind Kind `json:"kind"`
	// Flow names the decided flow; NoFlow (-1) for replan records.
	Flow flow.ID `json:"flow"`
	// Reason names the rule that produced the decision ("marginal-cost",
	// "relaxation", "over-capacity", "forced", "boundary", ...).
	Reason string `json:"reason,omitempty"`
	// Path is the chosen path's edge sequence (admits only).
	Path []graph.EdgeID `json:"path,omitempty"`
	// Rate is the admitted nominal rate (the residual density at decision
	// time; admits only).
	Rate float64 `json:"rate,omitempty"`
	// MarginalEnergy is the chosen path's exact marginal energy at decision
	// time (admits only), comparable against Alternatives.
	MarginalEnergy float64 `json:"marginal_energy,omitempty"`
	// Slack is the residual slack at decision time: deadline minus the
	// decision instant.
	Slack float64 `json:"slack,omitempty"`
	// Pending counts batched arrivals at a replan boundary.
	Pending int `json:"pending,omitempty"`
	// Alternatives are the scored candidates not chosen, best first.
	Alternatives []Alternative `json:"alternatives,omitempty"`
}

// Recorder receives decision records as a scheduler makes them. A nil
// Recorder disables tracing: the schedulers guard every call site, build no
// record and allocate nothing (the zero-alloc fast path pinned by
// TestEmitNilRecorderZeroAlloc).
//
// Record is called serially in decision order — schedulers decide one flow
// at a time even when their inner solves fan out — so implementations need
// no locking when used by a single run.
type Recorder interface {
	// Record observes one decision.
	Record(Record)
}

// Emit sends rec to r when r is non-nil. The nil path is a zero-alloc
// no-op, so schedulers may call it unconditionally with a pre-built record;
// call sites that would allocate building the record should still guard on
// the recorder themselves.
func Emit(r Recorder, rec Record) {
	if r != nil {
		r.Record(rec)
	}
}

// Memory is an in-memory Recorder accumulating records in decision order.
// Pair it with a Meta describing the run and call Log to package the trace
// for serialization.
type Memory struct {
	// Meta describes the recorded run (scheduler, workload, seeds); filled
	// by the caller, echoed into Log.
	Meta Meta
	// Records holds the accumulated records in sequence order.
	Records []Record
}

// Record implements Recorder.
func (m *Memory) Record(rec Record) { m.Records = append(m.Records, rec) }

// Log packages the accumulated trace.
func (m *Memory) Log() *Log { return &Log{Meta: m.Meta, Records: m.Records} }

// Overrides forces specific decisions during a counterfactual re-run: the
// schedulers consult it at each decision point before their own logic. The
// zero value (and a nil pointer) forces nothing.
type Overrides struct {
	// ForcePath routes a flow on the given edge sequence instead of the
	// scheduler's choice. The path must connect the flow's endpoints; the
	// scheduler validates and errors otherwise.
	ForcePath map[flow.ID][]graph.EdgeID
	// ForceReject rejects a flow the scheduler would have admitted (the
	// flip-one-admission counterfactual).
	ForceReject map[flow.ID]bool
}

// ForcedPath returns the override path for a flow, or ok=false. Nil-safe.
func (o *Overrides) ForcedPath(id flow.ID) (graph.Path, bool) {
	if o == nil {
		return graph.Path{}, false
	}
	edges, ok := o.ForcePath[id]
	if !ok {
		return graph.Path{}, false
	}
	return graph.Path{Edges: edges}, true
}

// Rejected reports whether a flow is force-rejected. Nil-safe.
func (o *Overrides) Rejected(id flow.ID) bool {
	return o != nil && o.ForceReject[id]
}
