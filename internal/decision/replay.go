package decision

import (
	"fmt"
	"math"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/sim"
	"dcnflow/internal/stats"
)

// EngineFactory builds a fresh online engine for one (re-)run, honoring the
// given overrides (nil means none — the base run). Replay re-runs the
// realized arrival sequence once per counterfactual, so the factory must
// return an engine whose un-overridden decisions reproduce the recorded
// run; callers supply it because decision sits below the schedulers (no
// import cycle) and because it is exactly the hook that lets Replay drive
// any sim.OnlineEngine, not just the two built-ins.
type EngineFactory func(ov *Overrides) (sim.OnlineEngine, error)

// ReplayInput is one counterfactual-replay request: the recorded log, the
// realized instance it was recorded against, and the engine factory.
type ReplayInput struct {
	// Log is the recorded trace; only its admit records spawn
	// counterfactuals.
	Log *Log
	// Graph, Flows and Model are the realized instance the log was
	// recorded on.
	Graph *graph.Graph
	Flows *flow.Set
	Model power.Model
	// Factory rebuilds the engine per run.
	Factory EngineFactory
	// Opts tunes the counterfactual generation.
	Opts ReplayOptions
}

// ReplayOptions tunes Replay.
type ReplayOptions struct {
	// TopK bounds the alternative paths tried per admit record (best
	// first); default 2.
	TopK int
	// FlipAdmit additionally tries rejecting each admitted flow — the
	// flip-one-admission counterfactual. Off by default: on workloads
	// without admission pressure a rejection always costs a miss.
	FlipAdmit bool
	// Fitness weighs the outcomes into per-decision regret; the zero value
	// selects DefaultFitness (energy only).
	Fitness Fitness
	// MaxDecisions bounds the admit records expanded (0 = all), oldest
	// first — the smoke-test lever.
	MaxDecisions int
}

// Outcome summarises one full run (base or counterfactual) through the
// simulator's validation.
type Outcome struct {
	// Energy is the simulator-measured total energy.
	Energy float64 `json:"energy"`
	// Misses counts missed deadlines (rejected flows included).
	Misses int `json:"misses"`
	// SlackP99 is the tail slack (see FitnessComponents).
	SlackP99 float64 `json:"slack_p99"`
	// CapacityViolations echoes the simulator's count.
	CapacityViolations int `json:"capacity_violations"`
	// Score is the weighted fitness of the run, lower better.
	Score float64 `json:"score"`
}

// CounterfactualOutcome is one re-scored alternative decision.
type CounterfactualOutcome struct {
	// Seq and Flow identify the flipped decision record.
	Seq  int     `json:"seq"`
	Flow flow.ID `json:"flow"`
	// Alternative indexes the record's Alternatives; -1 for a
	// flip-to-reject counterfactual.
	Alternative int `json:"alternative"`
	// Outcome is the full-run result with this one decision substituted
	// and the suffix re-planned by the engine.
	Outcome Outcome `json:"outcome"`
	// Regret is base score minus this outcome's score: positive means the
	// alternative would have beaten the recorded choice, negative means
	// the recorded choice wins by that margin.
	Regret float64 `json:"regret"`
	// Valid reports a sim-clean counterfactual: no capacity violations and
	// no deadline misses beyond the base run's.
	Valid bool `json:"valid"`
	// Err records a counterfactual whose re-run failed outright (invalid
	// forced path, infeasible suffix); its Outcome is zero.
	Err string `json:"error,omitempty"`
}

// ReplayReport is the outcome of a counterfactual replay.
type ReplayReport struct {
	// Base is the un-overridden re-run of the recorded trace.
	Base Outcome
	// Counterfactuals holds one entry per (admit record, alternative)
	// pair, in record order.
	Counterfactuals []CounterfactualOutcome
	// Fitness echoes the weights the scores used.
	Fitness Fitness
}

// RegretRows counts counterfactuals whose regret is meaningfully nonzero —
// decisions where the recorded choice and the alternative measurably differ
// (either direction), beyond float noise relative to the base score. The
// decisions-smoke gate asserts this is positive.
func (r *ReplayReport) RegretRows() int {
	eps := 1e-9 * (1 + math.Abs(r.Base.Score))
	n := 0
	for _, c := range r.Counterfactuals {
		if c.Err == "" && math.Abs(c.Regret) > eps {
			n++
		}
	}
	return n
}

// Table renders the report: the base run, then one row per counterfactual.
func (r *ReplayReport) Table() string {
	tb := stats.NewTable("seq", "flow", "alt", "energy", "dE", "misses", "regret", "valid")
	tb.AddRow("base", "-", "-", r.Base.Energy, 0.0, r.Base.Misses, 0.0, true)
	for _, c := range r.Counterfactuals {
		if c.Err != "" {
			tb.AddRow(c.Seq, int(c.Flow), c.Alternative, "-", "-", "-", "-", c.Err)
			continue
		}
		tb.AddRow(c.Seq, int(c.Flow), c.Alternative,
			c.Outcome.Energy, c.Outcome.Energy-r.Base.Energy, c.Outcome.Misses, c.Regret, c.Valid)
	}
	return tb.String()
}

// runOnce drives one engine through the realized arrival sequence and
// scores the validated result.
func runOnce(in ReplayInput, ov *Overrides) (Outcome, error) {
	engine, err := in.Factory(ov)
	if err != nil {
		return Outcome{}, err
	}
	rep, err := sim.ReplayOnline(in.Graph, in.Flows, in.Model, engine, sim.Options{})
	if err != nil {
		return Outcome{}, err
	}
	comp := SimComponents(in.Flows, rep.Sim)
	f := in.Opts.Fitness
	if f == (Fitness{}) {
		f = DefaultFitness()
	}
	return Outcome{
		Energy:             comp.Energy,
		Misses:             comp.Misses,
		SlackP99:           comp.SlackP99,
		CapacityViolations: rep.CapacityViolations,
		Score:              f.Score(comp),
	}, nil
}

// Replay re-runs a recorded trace against the realized arrival sequence,
// substituting alternatives at the recorded decision points: for each admit
// record, the top-k alternative paths (and, with FlipAdmit, a forced
// rejection) are forced through Overrides one at a time, the engine
// re-plans the suffix — decisions before the flipped one are untouched,
// since the override only changes state from that flow's admission onward —
// and the whole run is re-scored by the discrete-event simulator. The
// report carries per-decision regret: energy delta, misses introduced or
// avoided, and the weighted-fitness gap against the base run.
func Replay(in ReplayInput) (*ReplayReport, error) {
	if in.Log == nil || in.Graph == nil || in.Flows == nil || in.Factory == nil {
		return nil, fmt.Errorf("%w: replay needs a log, graph, flows and engine factory", ErrBadLog)
	}
	if err := in.Log.Validate(); err != nil {
		return nil, err
	}
	topK := in.Opts.TopK
	if topK <= 0 {
		topK = 2
	}
	f := in.Opts.Fitness
	if f == (Fitness{}) {
		f = DefaultFitness()
	}
	in.Opts.Fitness = f

	base, err := runOnce(in, nil)
	if err != nil {
		return nil, fmt.Errorf("decision: replaying the base run: %w", err)
	}
	report := &ReplayReport{Base: base, Fitness: f}

	admits := in.Log.Admits()
	if in.Opts.MaxDecisions > 0 && len(admits) > in.Opts.MaxDecisions {
		admits = admits[:in.Opts.MaxDecisions]
	}
	for _, rec := range admits {
		alts := rec.Alternatives
		if len(alts) > topK {
			alts = alts[:topK]
		}
		for ai, alt := range alts {
			out := CounterfactualOutcome{Seq: rec.Seq, Flow: rec.Flow, Alternative: ai}
			o, err := runOnce(in, &Overrides{ForcePath: map[flow.ID][]graph.EdgeID{rec.Flow: alt.Path}})
			if err != nil {
				out.Err = err.Error()
			} else {
				out.Outcome = o
				out.Regret = base.Score - o.Score
				out.Valid = o.CapacityViolations == 0 && o.Misses <= base.Misses
			}
			report.Counterfactuals = append(report.Counterfactuals, out)
		}
		if in.Opts.FlipAdmit {
			out := CounterfactualOutcome{Seq: rec.Seq, Flow: rec.Flow, Alternative: -1}
			o, err := runOnce(in, &Overrides{ForceReject: map[flow.ID]bool{rec.Flow: true}})
			if err != nil {
				out.Err = err.Error()
			} else {
				out.Outcome = o
				out.Regret = base.Score - o.Score
				out.Valid = o.CapacityViolations == 0 && o.Misses <= base.Misses+1
			}
			report.Counterfactuals = append(report.Counterfactuals, out)
		}
	}
	return report, nil
}
