package decision

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// ErrBadLog reports a decision log that failed strict decoding or
// validation; the wrapped message names the offending record and field. It
// mirrors ErrBadScenario of the scenario loader.
var ErrBadLog = errors.New("decision: invalid decision log")

// Schedulers lists the Meta.Scheduler values LoadLog accepts.
var Schedulers = []string{"greedy", "rolling"}

// Meta describes the run a log was recorded from — enough configuration to
// rebuild the exact instance and scheduler for a counterfactual replay
// (`dcnflow decisions -mode replay` does exactly that). Workload fields
// follow the online experiment conventions (fat-tree fabric, the O1
// workload generators).
type Meta struct {
	// Scheduler names the recorded scheduler; see Schedulers.
	Scheduler string `json:"scheduler"`
	// Workload is the arrival pattern ("uniform", "diurnal", "incast");
	// empty for logs recorded from ad-hoc flow sets.
	Workload string `json:"workload,omitempty"`
	// N is the workload's flow count.
	N int `json:"n,omitempty"`
	// FatTreeK is the fabric arity.
	FatTreeK int `json:"fattree_k,omitempty"`
	// Seed drives the workload draw and the rolling epoch re-solves.
	Seed int64 `json:"seed,omitempty"`
	// Alpha is the power exponent of the (sigma=0, mu=1) run model.
	Alpha float64 `json:"alpha,omitempty"`
	// Iters caps Frank–Wolfe iterations of the rolling epoch re-solves.
	Iters int `json:"iters,omitempty"`
	// Epoch is the rolling fixed re-plan period; zero re-plans per arrival.
	Epoch float64 `json:"epoch,omitempty"`
}

// Validate checks the meta header: the scheduler is known and the workload,
// when named, is one the online experiment generators can rebuild.
func (m Meta) Validate() error {
	known := false
	for _, s := range Schedulers {
		known = known || m.Scheduler == s
	}
	if !known {
		return fmt.Errorf("%w: unknown scheduler %q (want one of %s)",
			ErrBadLog, m.Scheduler, strings.Join(Schedulers, ", "))
	}
	switch m.Workload {
	case "", "uniform", "diurnal", "incast":
	default:
		return fmt.Errorf("%w: unknown workload %q (want uniform, diurnal or incast)", ErrBadLog, m.Workload)
	}
	if m.N < 0 || m.FatTreeK < 0 || m.Iters < 0 {
		return fmt.Errorf("%w: negative meta dimension (n=%d, fattree_k=%d, iters=%d)", ErrBadLog, m.N, m.FatTreeK, m.Iters)
	}
	if m.Epoch < 0 || math.IsNaN(m.Epoch) || math.IsInf(m.Epoch, 0) {
		return fmt.Errorf("%w: epoch must be finite and non-negative, got %v", ErrBadLog, m.Epoch)
	}
	if math.IsNaN(m.Alpha) || math.IsInf(m.Alpha, 0) || m.Alpha < 0 {
		return fmt.Errorf("%w: alpha must be finite and non-negative, got %v", ErrBadLog, m.Alpha)
	}
	return nil
}

// Log is a complete recorded trace: the run description followed by every
// decision in sequence order. Serialized as JSONL — the meta object on the
// first line, one compact record per line after it.
type Log struct {
	// Meta describes the recorded run.
	Meta Meta `json:"meta"`
	// Records are the decisions in sequence order.
	Records []Record `json:"records"`
}

// Validate checks the structural invariants LoadLog enforces: a valid meta
// header, contiguous sequence numbers from zero, non-decreasing finite
// decision times, known kinds, and kind-specific field shapes (admits carry
// a path and a positive rate, replan boundaries carry no flow).
func (l *Log) Validate() error {
	if l == nil {
		return fmt.Errorf("%w: nil log", ErrBadLog)
	}
	if err := l.Meta.Validate(); err != nil {
		return err
	}
	prev := math.Inf(-1)
	for i, rec := range l.Records {
		if rec.Seq != i {
			return fmt.Errorf("%w: record %d has seq %d (sequence numbers are contiguous from 0)", ErrBadLog, i, rec.Seq)
		}
		if math.IsNaN(rec.Time) || math.IsInf(rec.Time, 0) {
			return fmt.Errorf("%w: record %d time %v is not finite", ErrBadLog, i, rec.Time)
		}
		if rec.Time < prev {
			return fmt.Errorf("%w: record %d time %v precedes record %d", ErrBadLog, i, rec.Time, i-1)
		}
		prev = rec.Time
		if rec.Epoch < 0 || rec.Pending < 0 {
			return fmt.Errorf("%w: record %d has negative epoch or pending count", ErrBadLog, i)
		}
		switch rec.Kind {
		case KindAdmit:
			if rec.Flow < 0 {
				return fmt.Errorf("%w: record %d (admit) names no flow", ErrBadLog, i)
			}
			if len(rec.Path) == 0 {
				return fmt.Errorf("%w: record %d (admit, flow %d) has no path", ErrBadLog, i, rec.Flow)
			}
			if !(rec.Rate > 0) || math.IsInf(rec.Rate, 0) {
				return fmt.Errorf("%w: record %d (admit, flow %d) rate %v is not positive and finite", ErrBadLog, i, rec.Flow, rec.Rate)
			}
		case KindReject:
			if rec.Flow < 0 {
				return fmt.Errorf("%w: record %d (reject) names no flow", ErrBadLog, i)
			}
		case KindReplan:
			if rec.Flow != NoFlow {
				return fmt.Errorf("%w: record %d (replan) names flow %d (want %d)", ErrBadLog, i, rec.Flow, NoFlow)
			}
		default:
			return fmt.Errorf("%w: record %d has unknown kind %q", ErrBadLog, i, rec.Kind)
		}
		for j, alt := range rec.Alternatives {
			if len(alt.Path) == 0 {
				return fmt.Errorf("%w: record %d alternative %d has no path", ErrBadLog, i, j)
			}
		}
	}
	return nil
}

// Admits returns the admit records, in sequence order.
func (l *Log) Admits() []Record {
	var out []Record
	for _, rec := range l.Records {
		if rec.Kind == KindAdmit {
			out = append(out, rec)
		}
	}
	return out
}

// LoadLog strictly decodes one JSONL decision log: unknown fields, trailing
// garbage and structurally invalid traces are all rejected with errors
// wrapping ErrBadLog that name the problem. The loader is total — arbitrary
// input yields a validated log or an ErrBadLog-class error, never a panic
// (FuzzLoadDecisionLog pins this).
func LoadLog(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var meta Meta
	if err := dec.Decode(&meta); err != nil {
		return nil, fmt.Errorf("%w: meta header: %v", ErrBadLog, err)
	}
	log := &Log{Meta: meta}
	for dec.More() {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrBadLog, len(log.Records), err)
		}
		log.Records = append(log.Records, rec)
	}
	// More() goes false at a stray delimiter without consuming it; insist on
	// a clean EOF so trailing garbage is rejected, not ignored.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after record %d", ErrBadLog, len(log.Records))
	}
	if err := log.Validate(); err != nil {
		return nil, err
	}
	return log, nil
}

// LoadLogFile is LoadLog on a file path.
func LoadLogFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("decision: %w", err)
	}
	defer f.Close()
	log, err := LoadLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// SaveLog validates the log and writes it in the canonical JSONL form: the
// compact meta object on the first line, one compact record per line,
// trailing newline. SaveLog(LoadLog(x)) is byte-identical for canonical x,
// and two recordings of the same run serialize byte-identically at any
// parallelism (the determinism contract).
func SaveLog(w io.Writer, l *Log) error {
	if err := l.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(l.Meta); err != nil {
		return fmt.Errorf("decision: encoding meta: %w", err)
	}
	for _, rec := range l.Records {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("decision: encoding record %d: %w", rec.Seq, err)
		}
	}
	return nil
}

// SaveLogFile is SaveLog on a file path.
func SaveLogFile(path string, l *Log) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("decision: %w", err)
	}
	if err := SaveLog(f, l); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
