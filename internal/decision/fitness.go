package decision

import (
	"fmt"
	"math"

	"dcnflow/internal/flow"
	"dcnflow/internal/sim"
	"dcnflow/internal/stats"
)

// Fitness collapses a run to one weighted scalar, lower better:
//
//	score = EnergyWeight*Energy + MissWeight*Misses - SlackP99Weight*SlackP99
//
// Energy is the simulator-measured total energy, Misses counts flows whose
// deadline was missed (rejected flows included — the simulator never
// completes them), and SlackP99 is the tail slack: the residual slack
// (deadline minus completion time) that 99% of completed flows meet or
// exceed — the nearest-rank 1st percentile of per-flow slack, so a positive
// SlackP99Weight rewards schedules whose worst flows still finish early.
// Sweep wires it into SweepCellResult (SweepOptions.Fitness) so
// `dcnflow sweep` can rank replan policies on one axis.
type Fitness struct {
	// EnergyWeight scales the total energy term.
	EnergyWeight float64 `json:"energy_weight"`
	// MissWeight charges each missed deadline.
	MissWeight float64 `json:"miss_weight"`
	// SlackP99Weight credits the tail slack (subtracted: more robust
	// schedules score lower).
	SlackP99Weight float64 `json:"slack_p99_weight"`
}

// DefaultFitness weighs energy alone — the paper's objective — leaving
// misses and slack as reported-but-unweighted diagnostics.
func DefaultFitness() Fitness { return Fitness{EnergyWeight: 1} }

// FitnessComponents are the raw per-run quantities a Fitness weighs.
type FitnessComponents struct {
	// Energy is the simulator-measured total energy.
	Energy float64 `json:"energy"`
	// Misses counts flows that missed their deadline (never-completed and
	// rejected flows included).
	Misses int `json:"misses"`
	// SlackP99 is the nearest-rank 1st percentile of per-flow slack
	// (deadline - completion) over completed flows; zero when nothing
	// completed.
	SlackP99 float64 `json:"slack_p99"`
}

// Score applies the weights; lower is better.
func (f Fitness) Score(c FitnessComponents) float64 {
	return f.EnergyWeight*c.Energy + f.MissWeight*float64(c.Misses) - f.SlackP99Weight*c.SlackP99
}

// String renders the weights compactly for tables and usage text.
func (f Fitness) String() string {
	return fmt.Sprintf("energy*%g + misses*%g - slack_p99*%g", f.EnergyWeight, f.MissWeight, f.SlackP99Weight)
}

// SimComponents extracts the fitness components from a simulator result:
// the measured energy, the deadline misses, and the tail slack over the
// completed flows (a flow that never completes contributes a miss, not a
// slack sample — the miss term is where incompleteness is charged). The
// flow set supplies the deadlines the slacks are measured against.
func SimComponents(flows *flow.Set, res *sim.Result) FitnessComponents {
	c := FitnessComponents{Energy: res.TotalEnergy, Misses: res.DeadlinesMissed}
	var slacks []float64
	for _, fs := range res.Flows {
		if math.IsInf(fs.CompletionTime, 1) {
			continue
		}
		f, err := flows.Flow(fs.ID)
		if err != nil {
			continue
		}
		slacks = append(slacks, f.Deadline-fs.CompletionTime)
	}
	if len(slacks) > 0 {
		c.SlackP99 = stats.Percentile(slacks, 0.01)
	}
	return c
}
