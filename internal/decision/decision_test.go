package decision_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dcnflow/internal/core"
	"dcnflow/internal/decision"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/power"
	"dcnflow/internal/sim"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

func diurnalInstance(t *testing.T, n int, seed int64) (*topology.Topology, *flow.Set) {
	t.Helper()
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Diurnal(flow.DiurnalConfig{
		N: n, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs
}

func rollingOpts(parallelism int, rec decision.Recorder, ov *decision.Overrides) online.RollingOptions {
	return online.RollingOptions{
		Policy: online.FixedPeriod{Period: 2},
		DCFSR: core.DCFSROptions{
			Seed:        1,
			Solver:      mcfsolve.Options{MaxIters: 30},
			WarmStart:   true,
			Parallelism: parallelism,
		},
		Recorder:  rec,
		Overrides: ov,
	}
}

// recordRolling runs the rolling scheduler over the diurnal instance with a
// Memory recorder and returns the packaged log.
func recordRolling(t *testing.T, ft *topology.Topology, fs *flow.Set, parallelism int) *decision.Log {
	t.Helper()
	mem := &decision.Memory{Meta: decision.Meta{Scheduler: "rolling", Workload: "diurnal"}}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	if _, _, err := online.RunRolling(ft.Graph, fs, m, rollingOpts(parallelism, mem, nil)); err != nil {
		t.Fatal(err)
	}
	return mem.Log()
}

func logBytes(t *testing.T, l *decision.Log) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := decision.SaveLog(&buf, l); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDecisionLogDeterministic pins the determinism contract: recorded logs
// are byte-identical across solver parallelism and across re-runs of the
// same instance.
func TestDecisionLogDeterministic(t *testing.T) {
	ft, fs := diurnalInstance(t, 30, 7)
	base := logBytes(t, recordRolling(t, ft, fs, 1))
	if len(base) == 0 {
		t.Fatal("empty recorded log")
	}
	for _, p := range []int{4, 1} {
		got := logBytes(t, recordRolling(t, ft, fs, p))
		if !bytes.Equal(base, got) {
			t.Fatalf("log differs at parallelism %d", p)
		}
	}
}

// TestEmitNilRecorderZeroAlloc pins the nil-recorder fast path: schedulers
// may call Emit unconditionally without tracing cost.
func TestEmitNilRecorderZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		decision.Emit(nil, decision.Record{Kind: decision.KindAdmit, Flow: 1, Rate: 1})
	})
	if allocs != 0 {
		t.Fatalf("Emit(nil, ...) allocates %v per call", allocs)
	}
}

// TestLogRoundTrip: Save→Load→Save is byte-identical on a real recorded log.
func TestLogRoundTrip(t *testing.T) {
	ft, fs := diurnalInstance(t, 20, 3)
	l := recordRolling(t, ft, fs, 0)
	b1 := logBytes(t, l)
	l2, err := decision.LoadLog(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, logBytes(t, l2)) {
		t.Fatal("round trip is not byte-identical")
	}
}

// TestLoadLogRejects: the strict loader refuses malformed input with
// ErrBadLog-class errors.
func TestLoadLogRejects(t *testing.T) {
	meta := `{"scheduler":"rolling"}` + "\n"
	cases := map[string]string{
		"empty":          "",
		"bad scheduler":  `{"scheduler":"lifo"}` + "\n",
		"unknown field":  `{"scheduler":"rolling","turbo":true}` + "\n",
		"unknown kind":   meta + `{"seq":0,"time":0,"kind":"retry","flow":1}` + "\n",
		"gap in seq":     meta + `{"seq":1,"time":0,"kind":"replan","flow":-1}` + "\n",
		"time regressed": meta + `{"seq":0,"time":5,"kind":"replan","flow":-1}` + "\n" + `{"seq":1,"time":4,"kind":"replan","flow":-1}` + "\n",
		"admit sans path": meta +
			`{"seq":0,"time":0,"kind":"admit","flow":2,"rate":1}` + "\n",
		"admit zero rate": meta +
			`{"seq":0,"time":0,"kind":"admit","flow":2,"path":[1],"rate":0}` + "\n",
		"replan with flow": meta + `{"seq":0,"time":0,"kind":"replan","flow":3}` + "\n",
		"trailing junk":    meta + "}{",
	}
	for name, in := range cases {
		if _, err := decision.LoadLog(strings.NewReader(in)); !errors.Is(err, decision.ErrBadLog) {
			t.Errorf("%s: want ErrBadLog, got %v", name, err)
		}
	}
}

// TestGreedyRecords: the greedy scheduler emits one admit record per flow
// with contiguous sequence numbers and a scored min-hop alternative where
// one exists.
func TestGreedyRecords(t *testing.T) {
	ft, fs := diurnalInstance(t, 25, 5)
	mem := &decision.Memory{Meta: decision.Meta{Scheduler: "greedy", Workload: "diurnal"}}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	if _, err := online.Run(ft.Graph, fs, m, online.Options{Recorder: mem}); err != nil {
		t.Fatal(err)
	}
	l := mem.Log()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	admits := l.Admits()
	if len(admits) != fs.Len() {
		t.Fatalf("recorded %d admits, want %d", len(admits), fs.Len())
	}
	withAlts := 0
	for _, rec := range admits {
		if rec.MarginalEnergy <= 0 {
			t.Fatalf("flow %d admit has non-positive marginal energy %v", rec.Flow, rec.MarginalEnergy)
		}
		if rec.Slack <= 0 {
			t.Fatalf("flow %d admit has non-positive slack %v", rec.Flow, rec.Slack)
		}
		withAlts += len(rec.Alternatives)
	}
	if withAlts == 0 {
		t.Fatal("no admit recorded any alternative path")
	}
}

// TestOverridesForceGreedy: forcing a path (and a rejection) changes the
// greedy's decisions exactly as recorded.
func TestOverridesForceGreedy(t *testing.T) {
	ft, fs := diurnalInstance(t, 25, 5)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}

	// First recording: pick a flow with a recorded alternative.
	mem := &decision.Memory{Meta: decision.Meta{Scheduler: "greedy"}}
	if _, err := online.Run(ft.Graph, fs, m, online.Options{Recorder: mem}); err != nil {
		t.Fatal(err)
	}
	var target decision.Record
	for _, rec := range mem.Log().Admits() {
		if len(rec.Alternatives) > 0 {
			target = rec
			break
		}
	}
	if target.Kind != decision.KindAdmit {
		t.Fatal("no admit with alternatives to flip")
	}

	// Second run: force the alternative path on the target flow and reject
	// another flow outright.
	var rejectID flow.ID = -1
	for _, rec := range mem.Log().Admits() {
		if rec.Flow != target.Flow {
			rejectID = rec.Flow
			break
		}
	}
	ov := &decision.Overrides{
		ForcePath:   map[flow.ID][]graph.EdgeID{target.Flow: target.Alternatives[0].Path},
		ForceReject: map[flow.ID]bool{rejectID: true},
	}
	mem2 := &decision.Memory{Meta: decision.Meta{Scheduler: "greedy"}}
	if _, err := online.Run(ft.Graph, fs, m, online.Options{Recorder: mem2, Overrides: ov}); err != nil {
		t.Fatal(err)
	}
	forced, rejected := false, false
	for _, rec := range mem2.Records {
		if rec.Flow == target.Flow && rec.Kind == decision.KindAdmit {
			if rec.Reason != "forced" {
				t.Fatalf("forced flow %d admitted with reason %q", rec.Flow, rec.Reason)
			}
			if graph.ComparePathKeys(rec.Path, target.Alternatives[0].Path) != 0 {
				t.Fatalf("forced flow %d took path %v, want %v", rec.Flow, rec.Path, target.Alternatives[0].Path)
			}
			forced = true
		}
		if rec.Flow == rejectID {
			if rec.Kind != decision.KindReject || rec.Reason != "forced" {
				t.Fatalf("force-rejected flow %d recorded as %q/%q", rec.Flow, rec.Kind, rec.Reason)
			}
			rejected = true
		}
	}
	if !forced || !rejected {
		t.Fatalf("overrides not applied: forced=%v rejected=%v", forced, rejected)
	}
}

// TestReplayCounterfactuals: replaying a recorded rolling run over the
// diurnal workload yields sim-validated counterfactual outcomes.
func TestReplayCounterfactuals(t *testing.T) {
	ft, fs := diurnalInstance(t, 25, 9)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	l := recordRolling(t, ft, fs, 0)

	factory := func(ov *decision.Overrides) (sim.OnlineEngine, error) {
		t0, t1 := fs.Horizon()
		return online.NewRolling(ft.Graph, m, timeline.Interval{Start: t0, End: t1}, rollingOpts(0, nil, ov))
	}
	rep, err := decision.Replay(decision.ReplayInput{
		Log: l, Graph: ft.Graph, Flows: fs, Model: m, Factory: factory,
		Opts: decision.ReplayOptions{TopK: 2, MaxDecisions: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base.CapacityViolations != 0 || rep.Base.Misses != 0 {
		t.Fatalf("base re-run not clean: %+v", rep.Base)
	}
	if len(rep.Counterfactuals) == 0 {
		t.Fatal("no counterfactuals generated")
	}
	for _, c := range rep.Counterfactuals {
		if c.Err != "" {
			t.Fatalf("counterfactual seq=%d alt=%d failed: %s", c.Seq, c.Alternative, c.Err)
		}
		if !c.Valid {
			t.Fatalf("counterfactual seq=%d alt=%d not sim-clean: %+v", c.Seq, c.Alternative, c.Outcome)
		}
	}
	if got := rep.Table(); !strings.Contains(got, "regret") {
		t.Fatalf("table missing regret column:\n%s", got)
	}
}

// TestFitnessScore pins the weighting arithmetic and the default.
func TestFitnessScore(t *testing.T) {
	f := decision.Fitness{EnergyWeight: 2, MissWeight: 10, SlackP99Weight: 0.5}
	c := decision.FitnessComponents{Energy: 3, Misses: 2, SlackP99: 4}
	if got, want := f.Score(c), 2*3.0+10*2.0-0.5*4.0; got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	if got := decision.DefaultFitness().Score(c); got != 3 {
		t.Fatalf("default score = %v, want energy alone", got)
	}
}
