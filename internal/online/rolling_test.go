package online

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/sim"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

func diurnalWorkload(t *testing.T, n int, seed int64) (*topology.Topology, *flow.Set) {
	t.Helper()
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Diurnal(flow.DiurnalConfig{
		N: n, T0: 0, T1: 100, PeakFactor: 5,
		SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs
}

func rollingOpts(policy ReplanPolicy) RollingOptions {
	return RollingOptions{
		Policy: policy,
		DCFSR: core.DCFSROptions{
			Seed:      1,
			Solver:    mcfsolve.Options{MaxIters: 30},
			WarmStart: true,
		},
	}
}

// TestRollingMeetsAllDeadlines: every admitted flow's deadline must hold,
// verified by both the analytic Verify and the discrete-event simulator.
func TestRollingMeetsAllDeadlines(t *testing.T) {
	ft, fs := diurnalWorkload(t, 40, 3)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	res, rep, err := RunRolling(ft.Graph, fs, m, rollingOpts(FixedPeriod{Period: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected != 0 {
		t.Fatalf("uncapped-scale run rejected %d flows", rep.Rejected)
	}
	if rep.DeadlineViolations != 0 {
		t.Fatalf("%d deadline violations", rep.DeadlineViolations)
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{EnforceCapacity: true}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Stats.Epochs == 0 || res.Stats.Admitted != fs.Len() {
		t.Fatalf("stats: %+v", res.Stats)
	}
}

// TestRollingBeatsGreedyOnDiurnal is the headline comparison: with
// re-optimization at epoch boundaries the rolling scheduler must spend
// strictly less energy than the irrevocable marginal-cost greedy on the
// slowly varying diurnal workload.
func TestRollingBeatsGreedyOnDiurnal(t *testing.T) {
	ft, fs := diurnalWorkload(t, 60, 11)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	roll, _, err := RunRolling(ft.Graph, fs, m, rollingOpts(ArrivalCount{N: 1}))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Run(ft.Graph, fs, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rollE := roll.Schedule.EnergyTotal(m)
	greedyE := greedy.Schedule.EnergyTotal(m)
	if rollE >= greedyE {
		t.Fatalf("rolling energy %v >= greedy %v", rollE, greedyE)
	}
}

// TestRollingWarmStartFewerIterations: on the slowly-varying diurnal chain
// the warm-started run must spend strictly fewer Frank–Wolfe iterations
// across its epoch re-solves than the cold-started one — the workload the
// WarmStart knob exists for.
func TestRollingWarmStartFewerIterations(t *testing.T) {
	ft, fs := diurnalWorkload(t, 40, 7)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	run := func(warm bool) RollingStats {
		opts := rollingOpts(FixedPeriod{Period: 2})
		opts.DCFSR.WarmStart = warm
		res, _, err := RunRolling(ft.Graph, fs, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	warm, cold := run(true), run(false)
	if warm.SeededIntervals == 0 {
		t.Fatal("warm run seeded no intervals")
	}
	if warm.FWIters >= cold.FWIters {
		t.Fatalf("warm run used %d FW iters, cold used %d", warm.FWIters, cold.FWIters)
	}
	t.Logf("FW iterations: warm %d vs cold %d over %d epochs (%d seeded intervals)",
		warm.FWIters, cold.FWIters, warm.Epochs, warm.SeededIntervals)
}

// TestRollingUrgencyGuard: with an absurdly long period, short-span flows
// must still be admitted in time via the MaxDelayFraction guard.
func TestRollingUrgencyGuard(t *testing.T) {
	ft, fs := diurnalWorkload(t, 20, 5)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	opts := rollingOpts(FixedPeriod{Period: 1000})
	opts.MaxDelayFraction = 0.1
	_, rep, err := RunRolling(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineViolations != 0 || rep.Admitted != fs.Len() {
		t.Fatalf("urgency guard failed: %+v", rep)
	}
}

// TestRollingPolicies: the arrival-count and load-drift triggers re-plan
// and produce feasible schedules.
func TestRollingPolicies(t *testing.T) {
	ft, fs := diurnalWorkload(t, 24, 9)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	for name, pol := range map[string]ReplanPolicy{
		"arrival-count": ArrivalCount{N: 4},
		"load-drift":    LoadDrift{Fraction: 0.2},
	} {
		res, rep, err := RunRolling(ft.Graph, fs, m, rollingOpts(pol))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.DeadlineViolations != 0 {
			t.Fatalf("%s: %d deadline violations", name, rep.DeadlineViolations)
		}
		if res.Stats.Epochs == 0 {
			t.Fatalf("%s: no epochs ran", name)
		}
	}
}

// TestRollingAdmissionControl: on an incast overload with tight capacity,
// admission control must reject some flows and keep the rest feasible.
func TestRollingAdmissionControl(t *testing.T) {
	ft, err := topology.FatTree(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// 12 senders × density 5 into one receiver: the receiver's access link
	// fits at most 2 concurrent flows under C=10.
	fs, err := flow.Incast(ft.Hosts[0], ft.Hosts[1:13], 0, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 10}
	opts := rollingOpts(FixedPeriod{Period: 1})
	opts.RejectOverCapacity = true
	res, rep, err := RunRolling(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatal("overloaded incast rejected nothing")
	}
	if rep.Admitted == 0 {
		t.Fatal("admission control rejected everything")
	}
	if rep.CapacityViolations != 0 {
		t.Fatalf("admitted schedule violates capacity %d times", rep.CapacityViolations)
	}
	if rep.DeadlineViolations != 0 {
		t.Fatalf("admitted flows missed %d deadlines", rep.DeadlineViolations)
	}
	if len(res.RejectedIDs) != rep.Rejected {
		t.Fatalf("rejected ids %v vs count %d", res.RejectedIDs, rep.Rejected)
	}
}

// TestRollingMatchesGreedyThroughReplay: the greedy Scheduler driven
// through sim.ReplayOnline must produce exactly the schedule online.Run
// builds.
func TestRollingMatchesGreedyThroughReplay(t *testing.T) {
	ft, fs := diurnalWorkload(t, 30, 13)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	direct, err := Run(ft.Graph, fs, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0, t1 := fs.Horizon()
	eng, err := New(ft.Graph, m, timeline.Interval{Start: t0, End: t1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.ReplayOnline(ft.Graph, fs, m, eng, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dE := direct.Schedule.EnergyTotal(m)
	rE := rep.Schedule.EnergyTotal(m)
	if math.Abs(dE-rE) > 1e-9*dE {
		t.Fatalf("replayed greedy energy %v != direct %v", rE, dE)
	}
	if rep.DeadlineViolations != 0 {
		t.Fatalf("greedy replay violations: %d", rep.DeadlineViolations)
	}
}

// stuckPolicy advances once (passing the constructor's vet) and then
// returns a frozen boundary.
type stuckPolicy struct{}

func (stuckPolicy) NextBoundary(float64) float64          { return 10 }
func (stuckPolicy) BatchReady(int, float64, float64) bool { return false }

// TestRollingValidation covers constructor and sequencing errors.
func TestRollingValidation(t *testing.T) {
	ft, fs := diurnalWorkload(t, 4, 1)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	if _, err := NewRolling(nil, m, timeline.Interval{End: 10}, RollingOptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph: %v", err)
	}
	if _, err := NewRolling(ft.Graph, m, timeline.Interval{}, RollingOptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty horizon: %v", err)
	}
	if _, err := NewRolling(ft.Graph, m, timeline.Interval{End: 10}, RollingOptions{Policy: FixedPeriod{}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("non-advancing policy: %v", err)
	}
	// A policy whose boundary stops advancing after the first epoch must
	// produce an error, not hang AdvanceTo.
	stuck, err := NewRolling(ft.Graph, m, timeline.Interval{Start: 0, End: 100}, RollingOptions{Policy: stuckPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := stuck.AdvanceTo(50); !errors.Is(err, ErrBadInput) {
		t.Fatalf("non-advancing boundary: %v", err)
	}
	rs, err := NewRolling(ft.Graph, m, timeline.Interval{Start: 0, End: 100}, RollingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	flows := fs.Flows()
	if err := rs.Arrive(flows[0]); err != nil {
		t.Fatal(err)
	}
	// Out-of-order reveal: a release in the past must be refused.
	if err := rs.AdvanceTo(99); err != nil {
		t.Fatal(err)
	}
	if err := rs.Arrive(flows[1]); !errors.Is(err, ErrBadInput) {
		t.Fatalf("out-of-order arrival: %v", err)
	}
	if _, err := rs.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Arrive(flows[2]); !errors.Is(err, ErrBadInput) {
		t.Fatalf("arrive after finish: %v", err)
	}
}
