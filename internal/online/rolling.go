package online

import (
	"context"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/core"
	"dcnflow/internal/decision"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/sim"
	"dcnflow/internal/timeline"
)

// ReplanPolicy decides when the rolling-horizon scheduler re-optimises.
// Implementations must be deterministic functions of their inputs so runs
// are reproducible.
type ReplanPolicy interface {
	// NextBoundary returns the absolute time of the next scheduled epoch
	// boundary after a re-plan (or the run start) at now. +Inf disables
	// time-driven boundaries; arrivals then drive re-plans entirely via
	// BatchReady and the urgency guard.
	NextBoundary(now float64) float64
	// BatchReady reports whether the pending batch warrants an immediate
	// re-plan, given the number of queued arrivals, their aggregate
	// density, and the aggregate density of in-flight commitments.
	BatchReady(pending int, pendingDensity, committedDensity float64) bool
}

// FixedPeriod re-plans every Period time units — the classic rolling
// horizon. Smaller periods admit arrivals sooner (less span compression)
// at the price of more epoch re-solves.
type FixedPeriod struct{ Period float64 }

// NextBoundary implements ReplanPolicy.
func (p FixedPeriod) NextBoundary(now float64) float64 { return now + p.Period }

// BatchReady implements ReplanPolicy: fixed-period epochs never re-plan
// early on batch size.
func (FixedPeriod) BatchReady(int, float64, float64) bool { return false }

// ArrivalCount re-plans as soon as N arrivals are queued. N = 1 degenerates
// to per-arrival re-optimisation (no batching delay, maximum solve count).
type ArrivalCount struct{ N int }

// NextBoundary implements ReplanPolicy: count-driven epochs have no
// time-driven boundary.
func (ArrivalCount) NextBoundary(float64) float64 { return math.Inf(1) }

// BatchReady implements ReplanPolicy.
func (p ArrivalCount) BatchReady(pending int, _, _ float64) bool {
	n := p.N
	if n <= 0 {
		n = 1
	}
	return pending >= n
}

// LoadDrift re-plans when the queued arrivals' aggregate density reaches
// Fraction of the in-flight committed density — i.e. when the network state
// the last plan assumed has drifted enough to matter. With nothing
// committed, any arrival triggers a re-plan.
type LoadDrift struct{ Fraction float64 }

// NextBoundary implements ReplanPolicy: drift-driven epochs have no
// time-driven boundary.
func (LoadDrift) NextBoundary(float64) float64 { return math.Inf(1) }

// BatchReady implements ReplanPolicy.
func (p LoadDrift) BatchReady(pending int, pendingDensity, committedDensity float64) bool {
	if pending == 0 {
		return false
	}
	frac := p.Fraction
	if frac <= 0 {
		frac = 0.1
	}
	return pendingDensity >= frac*committedDensity
}

// RollingOptions tunes the rolling-horizon scheduler.
type RollingOptions struct {
	// Policy picks the re-plan trigger; default FixedPeriod with a period
	// of 1/50 of the horizon.
	Policy ReplanPolicy
	// MaxDelayFraction bounds how long an arrival may wait for the next
	// boundary: a flow is force-planned once this fraction of its span has
	// elapsed since release, whatever the policy says. Waiting compresses
	// the residual span (raising the density rate and its energy), so the
	// guard caps the compression; it also guarantees short-span flows are
	// admitted before their deadline becomes unreachable. Default 0.25.
	MaxDelayFraction float64
	// DCFSR configures the epoch re-solves (seed, solver options,
	// WarmStart for cross-epoch Frank–Wolfe seeding, parallelism).
	DCFSR core.DCFSROptions
	// SampleRounding reverts the epoch admission to Random-Schedule's pure
	// randomized rounding: each new flow samples one path from its
	// aggregated candidate distribution. By default the scheduler instead
	// scores every candidate (plus the marginal-cost shortest path as a
	// safety net) by the exact marginal energy of reserving the flow's
	// rate over its span against the current commitments, and picks the
	// cheapest — the deterministic, locally optimal member of the
	// relaxation's globally load-aware candidate set.
	SampleRounding bool
	// RejectOverCapacity enables admission control: a new flow whose
	// density does not fit under the link capacity C on its planned path
	// (given everything already committed) is rejected instead of admitted
	// over capacity.
	RejectOverCapacity bool
	// DensityRates disables temporal load shaping: every admitted flow
	// then transmits at its constant residual density, exactly like the
	// greedy scheduler. By default admission water-fills the flow's rate
	// profile against the committed load already reserved on its path —
	// transmitting harder through troughs and backing off under peaks —
	// which is where knowing the future committed profile beats the
	// greedy's flat-rate placement on time-varying workloads.
	DensityRates bool
	// Recorder, when non-nil, receives a typed decision.Record at every
	// epoch boundary and per-flow admission decision, in decision order
	// (epoch order, then deadline-sorted batch order) with deterministic
	// sequence numbers — byte-identical logs at any DCFSR parallelism.
	// Nil disables tracing at zero cost.
	Recorder decision.Recorder
	// Overrides, when non-nil, forces specific decisions during a
	// counterfactual re-run (decision.Replay builds these): a forced path
	// replaces the candidate scoring, a forced rejection is reported like
	// a capacity rejection.
	Overrides *decision.Overrides
	// Delta enables the sensitivity-bounded incremental re-solve: epochs
	// whose arrival batch touches only some intervals reuse the previous
	// epoch's relaxation state for the rest and solve the batch against the
	// committed load as a fixed background. Off by default; the zero value
	// keeps every epoch a full re-plan, and DriftBound = 0 keeps the delta
	// path disabled even with Enabled set (see core.DeltaOptions).
	Delta core.DeltaOptions
}

func (o RollingOptions) withDefaults(horizon timeline.Interval) RollingOptions {
	if o.Policy == nil {
		p := horizon.Length() / 50
		if p <= 0 {
			p = 1
		}
		o.Policy = FixedPeriod{Period: p}
	}
	if o.MaxDelayFraction <= 0 {
		o.MaxDelayFraction = 0.25
	}
	return o
}

// RollingStats aggregates per-epoch diagnostics of one rolling run.
type RollingStats struct {
	// Epochs counts re-plan boundaries that actually solved something.
	Epochs int
	// FWIters is the total Frank–Wolfe iterations across every epoch's
	// interval solves — the cost driver of the re-optimizer; compare warm
	// vs cold runs on slowly-varying workloads.
	FWIters int
	// SeededIntervals counts interval solves warm-seeded from the previous
	// epoch's decompositions.
	SeededIntervals int
	// SolvedIntervals counts interval solves across all epochs.
	SolvedIntervals int
	// DeltaEpochs counts the epochs handled by the incremental delta path
	// (a subset of Epochs); ReusedIntervals counts the interval solves those
	// epochs skipped by carrying the previous state verbatim.
	DeltaEpochs, ReusedIntervals int
	// Admitted and Rejected count flows.
	Admitted, Rejected int
	// FirstResidualLB is the residual relaxation value of the first epoch
	// (the full remaining horizon at that instant) — a diagnostic lower
	// bound, not comparable to the offline clairvoyant LowerBound.
	FirstResidualLB float64
}

// RollingResult is the outcome of a rolling-horizon run.
type RollingResult struct {
	// Schedule covers every admitted flow.
	Schedule *schedule.Schedule
	// Stats aggregates the epoch diagnostics.
	Stats RollingStats
	// RejectedIDs lists flows refused by admission control, ascending.
	RejectedIDs []flow.ID
}

// commitment is one admitted flow's irrevocable state: the pinned path and
// the frozen (possibly load-shaped) rate profile.
type commitment struct {
	f        flow.Flow
	path     graph.Path
	admitted float64 // admission instant (transmission start)
	nominal  float64 // residual density at admission: the relaxation demand
	segments []schedule.RateSegment
}

// transmittedBy integrates the frozen profile up to t.
func (c *commitment) transmittedBy(t float64) float64 {
	var sum float64
	for _, seg := range c.segments {
		if seg.Interval.End <= t {
			sum += seg.Rate * seg.Interval.Length()
		} else if seg.Interval.Start < t {
			sum += seg.Rate * (t - seg.Interval.Start)
		}
	}
	return sum
}

// RollingScheduler is the rolling-horizon online DCFSR scheduler — the
// re-optimizing big sibling of the marginal-cost greedy Scheduler. Arrivals
// are queued into the current epoch; at each epoch boundary (fixed period,
// arrival count, or load drift — see ReplanPolicy) the Random-Schedule
// relaxation is re-run over the remaining horizon via core.SolveDCFSRPartial
// with every in-flight flow's path and transmitted data frozen, and the
// queued arrivals are routed on the resulting candidate distributions. With
// DCFSR.WarmStart set, each epoch's per-interval Frank–Wolfe solves are
// seeded from the previous epoch's decompositions — consecutive residual
// instances are near-identical, which is exactly the workload warm starts
// pay on.
//
// RollingScheduler implements sim.OnlineEngine; drive it with
// sim.ReplayOnline or call Arrive/AdvanceTo/Finish directly in release
// order. The zero value is not usable; use NewRolling.
type RollingScheduler struct {
	g *graph.Graph
	// compiled is the graph's artifact bundle, compiled once at
	// construction and reused by every epoch re-solve; pool feeds the
	// epoch solves reusable F-MCF solvers the same way (unless the caller
	// already supplied one via DCFSR.Solvers). Both are speed levers only.
	compiled *graph.Compiled
	model    power.Model
	horizon  timeline.Interval
	opts     RollingOptions
	// ctx bounds the run: every epoch re-solve checks it first and the
	// Frank–Wolfe solves inside observe it per iteration. The engine stores
	// it (against the usual convention) because the sim.OnlineEngine methods
	// Arrive/AdvanceTo/Finish — where re-plans actually fire — carry no
	// context of their own.
	ctx context.Context

	now          float64
	nextBoundary float64
	urgent       float64 // earliest forced re-plan among pending arrivals

	bset      timeline.BreakpointSet
	pending   []flow.Flow
	committed map[flow.ID]*commitment
	res       map[graph.EdgeID]*reservation
	sched     *schedule.Schedule
	prev      *core.RelaxationState

	// Delta-mode bookkeeping: accumDrift sums the load drift absorbed since
	// the last full re-plan and sinceFull counts the delta epochs in the
	// current streak; either crossing its bound forces the next epoch full.
	accumDrift float64
	sinceFull  int

	stats    RollingStats
	rejected []flow.ID
	finished bool
	recSeq   int
}

// record stamps the next sequence number on rec and emits it; call only when
// a recorder is configured. Records are built and emitted serially in the
// epoch admission loop (deadline-sorted batch order), so sequence numbers
// never depend on solver parallelism.
func (s *RollingScheduler) record(rec decision.Record) {
	rec.Seq = s.recSeq
	s.recSeq++
	s.opts.Recorder.Record(rec)
}

// pathMarginalEnergy sums the exact marginal energy of reserving rate d over
// [a, b] on every edge of p, against the current reservations — the same
// metric bestPath ranks candidates by.
func (s *RollingScheduler) pathMarginalEnergy(p graph.Path, a, b, d float64) float64 {
	var sum float64
	for _, eid := range p.Edges {
		sum += s.res[eid].marginalEnergy(a, b, d, s.cost)
	}
	return sum
}

// alternatives scores the unchosen relaxation candidates for one admission
// record, best (highest relaxation weight) first, capped at maxAlternatives.
func (s *RollingScheduler) alternatives(chosen graph.Path, cands []core.CandidatePath, a, b, d float64) []decision.Alternative {
	var alts []decision.Alternative
	for _, c := range cands {
		if graph.ComparePathKeys(c.Path.Edges, chosen.Edges) == 0 {
			continue
		}
		alts = append(alts, decision.Alternative{
			Path:           c.Path.Edges,
			Weight:         c.Weight,
			MarginalEnergy: s.pathMarginalEnergy(c.Path, a, b, d),
		})
		if len(alts) == maxAlternatives {
			break
		}
	}
	return alts
}

// maxAlternatives caps the candidate paths recorded per admission; the
// relaxation distribution is weight-sorted, so the head is what a replay
// would try anyway.
const maxAlternatives = 3

// NewRolling creates a rolling-horizon scheduler over the given horizon.
func NewRolling(g *graph.Graph, model power.Model, horizon timeline.Interval, opts RollingOptions) (*RollingScheduler, error) {
	return NewRollingCtx(context.Background(), g, model, horizon, opts)
}

// NewRollingCtx is NewRolling under a context: once ctx ends, the next epoch
// boundary (and every Frank–Wolfe iteration of a re-solve already in flight)
// aborts the run with the wrapped context error. A nil ctx is treated as
// context.Background().
func NewRollingCtx(ctx context.Context, g *graph.Graph, model power.Model, horizon timeline.Interval, opts RollingOptions) (*RollingScheduler, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInput)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if horizon.Empty() {
		return nil, fmt.Errorf("%w: empty horizon %v", ErrBadInput, horizon)
	}
	opts = opts.withDefaults(horizon)
	if nb := opts.Policy.NextBoundary(horizon.Start); !math.IsInf(nb, 1) && nb <= horizon.Start {
		return nil, fmt.Errorf("%w: replan policy boundary %v does not advance past %v", ErrBadInput, nb, horizon.Start)
	}
	compiled := graph.Compile(g)
	if opts.DCFSR.Solvers == nil || !opts.DCFSR.Solvers.Matches(g, model, opts.DCFSR.Solver) {
		// Compile-once/solve-many across epochs: one pool of F-MCF solvers
		// feeds every epoch's per-interval fan-out, so consecutive re-plans
		// recycle scratch instead of reallocating it. Pooling never affects
		// results, so installing it here is invisible to callers.
		pool, err := mcfsolve.NewPoolCompiled(compiled, model, opts.DCFSR.Solver)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		opts.DCFSR.Solvers = pool
	}
	return &RollingScheduler{
		g:            g,
		compiled:     compiled,
		model:        model,
		horizon:      horizon,
		opts:         opts,
		ctx:          ctx,
		now:          horizon.Start,
		nextBoundary: opts.Policy.NextBoundary(horizon.Start),
		urgent:       math.Inf(1),
		committed:    make(map[flow.ID]*commitment),
		res:          make(map[graph.EdgeID]*reservation),
		sched:        schedule.New(horizon),
	}, nil
}

// Stats returns the accumulated epoch diagnostics.
func (s *RollingScheduler) Stats() RollingStats { return s.stats }

// cost is the admission-scoring metric: the full power function when idle
// power is charged (consolidation matters), the dynamic part otherwise.
func (s *RollingScheduler) cost(x float64) float64 {
	if s.model.Sigma > 0 {
		return s.model.F(x)
	}
	return s.model.G(x)
}

// pendingDensity sums the queued arrivals' densities as of a re-plan at t.
func (s *RollingScheduler) pendingDensity(t float64) float64 {
	var sum float64
	for _, f := range s.pending {
		if span := f.Deadline - t; span > timeline.Eps {
			sum += f.Size / span
		}
	}
	return sum
}

// committedDensity sums the in-flight commitments' nominal rates at time
// t, in ascending flow-ID order so the floating-point sum — and any
// knife-edge LoadDrift comparison on it — is deterministic.
func (s *RollingScheduler) committedDensity(t float64) float64 {
	ids := make([]flow.ID, 0, len(s.committed))
	for id, c := range s.committed {
		if c.f.Deadline > t+timeline.Eps {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var sum float64
	for _, id := range ids {
		sum += s.committed[id].nominal
	}
	return sum
}

// Arrive queues one newly released flow for the next epoch re-solve. Flows
// must arrive in non-decreasing release order (interleave with AdvanceTo).
func (s *RollingScheduler) Arrive(f flow.Flow) error {
	if s.finished {
		return fmt.Errorf("%w: Arrive after Finish", ErrBadInput)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if f.Release < s.now-timeline.Eps {
		return fmt.Errorf("%w: flow %d released at %v arrived at %v (out of order)", ErrBadInput, f.ID, f.Release, s.now)
	}
	if _, dup := s.committed[f.ID]; dup {
		return fmt.Errorf("%w: flow %d already admitted", ErrBadInput, f.ID)
	}
	// A same-ID flow already queued into this epoch would be planned twice:
	// the second commitment overwrites the first while the first's
	// reservation stays leaked on its links.
	for _, q := range s.pending {
		if q.ID == f.ID {
			return fmt.Errorf("%w: flow %d already queued for the next epoch", ErrBadInput, f.ID)
		}
	}
	if err := s.AdvanceTo(f.Release); err != nil {
		return err
	}
	s.pending = append(s.pending, f)
	s.bset.Insert(f.Deadline)
	// Urgency guard: this arrival must be planned before MaxDelayFraction
	// of its span elapses.
	if u := f.Release + s.opts.MaxDelayFraction*f.Span(); u < s.urgent {
		s.urgent = u
	}
	switch s.opts.Policy.(type) {
	case FixedPeriod, ArrivalCount:
		// These policies ignore the density arguments, so skip the
		// O(in-flight) sums that would otherwise dominate per-arrival cost
		// on large commitment sets.
		if s.opts.Policy.BatchReady(len(s.pending), 0, 0) {
			return s.replan(s.now)
		}
	default:
		if s.opts.Policy.BatchReady(len(s.pending), s.pendingDensity(s.now), s.committedDensity(s.now)) {
			return s.replan(s.now)
		}
	}
	return nil
}

// AdvanceTo moves simulated time forward to t, running every epoch re-solve
// due on the way (scheduled boundaries and urgency-guard deadlines, in
// order).
func (s *RollingScheduler) AdvanceTo(t float64) error {
	if s.finished {
		return fmt.Errorf("%w: AdvanceTo after Finish", ErrBadInput)
	}
	for {
		due := math.Min(s.nextBoundary, s.urgent)
		if due > t || math.IsInf(due, 1) {
			break
		}
		if err := s.replan(math.Max(due, s.now)); err != nil {
			return err
		}
	}
	if t > s.now {
		s.now = t
	}
	return nil
}

// Finish force-plans any still-queued arrivals, assembles the final
// schedule from the commitments (each flow's transmitted prefix plus its
// last re-balanced suffix), and returns it.
func (s *RollingScheduler) Finish() (*schedule.Schedule, error) {
	if !s.finished {
		if len(s.pending) > 0 {
			if err := s.replan(s.now); err != nil {
				return nil, err
			}
		}
		ids := make([]flow.ID, 0, len(s.committed))
		for id := range s.committed {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, id := range ids {
			c := s.committed[id]
			if err := s.sched.SetFlow(&schedule.FlowSchedule{
				FlowID: id, Path: c.path, Segments: mergeSegments(c.segments),
			}); err != nil {
				return nil, fmt.Errorf("online: installing flow %d: %w", id, err)
			}
		}
		s.sched.AssignPriorities()
		s.finished = true
	}
	return s.sched, nil
}

// mergeSegments coalesces adjacent equal-rate pieces left behind by
// epoch-boundary splits.
func mergeSegments(segs []schedule.RateSegment) []schedule.RateSegment {
	out := make([]schedule.RateSegment, 0, len(segs))
	for _, seg := range segs {
		if n := len(out); n > 0 && math.Abs(out[n-1].Rate-seg.Rate) < 1e-12 &&
			math.Abs(out[n-1].Interval.End-seg.Interval.Start) <= timeline.Eps {
			out[n-1].Interval.End = seg.Interval.End
			continue
		}
		out = append(out, seg)
	}
	return out
}

// Result finalises the run and packages the schedule with the diagnostics.
func (s *RollingScheduler) Result() (*RollingResult, error) {
	sched, err := s.Finish()
	if err != nil {
		return nil, err
	}
	ids := make([]flow.ID, len(s.rejected))
	copy(ids, s.rejected)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return &RollingResult{Schedule: sched, Stats: s.stats, RejectedIDs: ids}, nil
}

// replan is one epoch boundary at time tau: re-solve the residual instance
// with frozen commitments, then admit the queued arrivals on the resulting
// paths.
func (s *RollingScheduler) replan(tau float64) error {
	// Cancellation boundary: one epoch is the promised response granularity
	// of a rolling run; the Frank–Wolfe iteration checks inside the partial
	// solve bound the latency within an epoch already solving.
	if err := s.ctx.Err(); err != nil {
		return fmt.Errorf("online: epoch re-solve at %v interrupted: %w", tau, err)
	}
	s.now = tau
	s.nextBoundary = s.opts.Policy.NextBoundary(tau)
	if !math.IsInf(s.nextBoundary, 1) && s.nextBoundary <= tau {
		// A non-advancing boundary would loop AdvanceTo forever; the
		// constructor can only vet the first one.
		return fmt.Errorf("%w: replan policy boundary %v does not advance past %v", ErrBadInput, s.nextBoundary, tau)
	}
	s.urgent = math.Inf(1)

	// Reservation history wholly before tau can never affect a future
	// marginal-energy or capacity query (all later windows start at tau);
	// dropping it bounds memory and per-epoch scan work on long-running
	// horizons, mirroring timeline.BreakpointSet.Prune.
	for _, r := range s.res {
		r.prune(tau)
	}

	// Sensitivity-bounded delta epoch: with a previous fingerprinted state
	// and the streak within its drift and staleness budgets, try to localize
	// the re-plan to the intervals the arrival batch touches. A decline
	// (drift past the bound, stale intervals, unmatched grid) falls through
	// to the full re-plan below.
	if d := s.opts.Delta; d.Enabled && d.DriftBound > 0 && s.prev != nil &&
		len(s.prev.Fingerprints) > 0 && s.accumDrift <= d.DriftBound &&
		(d.MaxStaleEpochs <= 0 || s.sinceFull < d.MaxStaleEpochs) {
		ok, err := s.replanDelta(tau)
		if err != nil || ok {
			return err
		}
	}

	// Collect the active residual instance: in-flight commitments plus the
	// queued arrivals. Completed commitments drop out of the pinned set.
	var (
		flows  []flow.Flow
		pinned = make(map[flow.ID]core.PinnedCommitment)
	)
	for _, c := range s.committed {
		transmitted := c.transmittedBy(tau)
		if c.f.Deadline <= tau+timeline.Eps || transmitted >= c.f.Size*(1-1e-12) {
			continue // completed
		}
		flows = append(flows, c.f)
		pinned[c.f.ID] = core.PinnedCommitment{
			Path:        c.path,
			Transmitted: transmitted,
			Demand:      c.nominal,
		}
	}
	flows = append(flows, s.pending...)
	if len(flows) == 0 {
		return nil
	}

	// Incremental re-segmentation of the remaining horizon: deadlines were
	// inserted at arrival; stale past breakpoints are pruned, never
	// re-sorted.
	s.bset.Prune(tau)
	intervals := s.bset.IntervalsFrom(tau)

	res, err := core.SolveDCFSRPartialCtx(s.ctx, core.DCFSRPartialInput{
		Graph:     s.g,
		Compiled:  s.compiled,
		Flows:     flows,
		Model:     s.model,
		Now:       tau,
		Pinned:    pinned,
		Intervals: intervals,
		Prev:      s.prev,
		Delta:     s.opts.Delta,
		Argmax:    !s.opts.SampleRounding,
		Opts:      s.opts.DCFSR,
	})
	if err != nil {
		return fmt.Errorf("online: epoch re-solve at %v: %w", tau, err)
	}
	s.prev = res.State
	s.stats.Epochs++
	s.stats.FWIters += res.FWIters
	s.stats.SeededIntervals += res.SeededIntervals
	s.stats.SolvedIntervals += res.Intervals
	if s.stats.Epochs == 1 {
		s.stats.FirstResidualLB = res.ResidualLowerBound
	}
	if s.opts.DCFSR.Progress != nil {
		s.opts.DCFSR.Progress(core.ProgressEvent{
			Stage: "epoch", Index: s.stats.Epochs, FWIters: res.FWIters, Time: tau,
		})
	}

	if err := s.admitBatch(tau, res, "boundary"); err != nil {
		return err
	}
	// With every arrival placed, re-level the future of the whole system.
	if !s.opts.DensityRates {
		s.rebalance(tau)
	}
	// A full epoch resets the delta streak and re-anchors the drift
	// baselines at the post-rebalance reservations.
	s.sinceFull = 0
	s.accumDrift = 0
	if s.opts.Delta.Enabled {
		s.stampLoads(res.State, false)
	}
	return nil
}

// admitBatch admits the queued arrivals on their planned paths, most urgent
// first — the shared tail of the full and delta epoch boundaries. reason
// labels the epoch's replan record ("boundary" or "delta").
func (s *RollingScheduler) admitBatch(tau float64, res *core.DCFSRPartialResult, reason string) error {
	batch := s.pending
	s.pending = nil
	sort.Slice(batch, func(a, b int) bool {
		if batch[a].Deadline != batch[b].Deadline {
			return batch[a].Deadline < batch[b].Deadline
		}
		return batch[a].ID < batch[b].ID
	})
	if s.opts.Recorder != nil {
		s.record(decision.Record{
			Time: tau, Epoch: s.stats.Epochs, Kind: decision.KindReplan,
			Flow: decision.NoFlow, Reason: reason, Pending: len(batch),
		})
	}
	for _, f := range batch {
		if s.opts.Overrides.Rejected(f.ID) {
			if s.opts.Recorder != nil {
				s.record(decision.Record{
					Time: tau, Epoch: s.stats.Epochs, Kind: decision.KindReject,
					Flow: f.ID, Reason: "forced", Slack: f.Deadline - tau,
				})
			}
			s.rejected = append(s.rejected, f.ID)
			s.stats.Rejected++
			continue
		}
		rate := res.Rates[f.ID]
		p, ok := res.Paths[f.ID]
		if !ok || rate <= 0 {
			return fmt.Errorf("%w: epoch at %v produced no plan for flow %d", ErrBadInput, tau, f.ID)
		}
		reason := "relaxation"
		if !s.opts.SampleRounding {
			p = s.bestPath(f, rate, res.Candidates[f.ID], tau)
			reason = "marginal-cost"
		}
		if forced, fok := s.opts.Overrides.ForcedPath(f.ID); fok {
			if err := forced.Validate(s.g, f.Src, f.Dst); err != nil {
				return fmt.Errorf("%w: forced path for flow %d: %v", ErrBadInput, f.ID, err)
			}
			p = forced
			reason = "forced"
		}
		// The frozen rate profile: load-shaped against the committed
		// reservations on the chosen path, or the flat residual density.
		w := rate * (f.Deadline - tau)
		var segs []schedule.RateSegment
		if !s.opts.DensityRates {
			segs = s.shapeRates(p, tau, f.Deadline, w)
		}
		if segs == nil {
			if s.opts.RejectOverCapacity && s.model.Capped() && !s.fits(p, rate, tau, f.Deadline) {
				if s.opts.Recorder != nil {
					s.record(decision.Record{
						Time: tau, Epoch: s.stats.Epochs, Kind: decision.KindReject,
						Flow: f.ID, Reason: "over-capacity", Slack: f.Deadline - tau,
					})
				}
				s.rejected = append(s.rejected, f.ID)
				s.stats.Rejected++
				continue
			}
			segs = []schedule.RateSegment{{
				Interval: timeline.Interval{Start: tau, End: f.Deadline},
				Rate:     rate,
			}}
		}
		if s.opts.Recorder != nil {
			// Score choice and candidates against the pre-reserve state —
			// exactly the metric bestPath compared them on.
			s.record(decision.Record{
				Time: tau, Epoch: s.stats.Epochs, Kind: decision.KindAdmit,
				Flow: f.ID, Reason: reason, Path: p.Edges, Rate: rate,
				MarginalEnergy: s.pathMarginalEnergy(p, tau, f.Deadline, rate),
				Slack:          f.Deadline - tau,
				Alternatives:   s.alternatives(p, res.Candidates[f.ID], tau, f.Deadline, rate),
			})
		}
		s.reserve(p, segs, 1)
		s.committed[f.ID] = &commitment{f: f, path: p, admitted: tau, nominal: rate, segments: segs}
		s.stats.Admitted++
	}
	return nil
}

// replanDelta is the localized epoch boundary: the arrival batch is solved
// against the committed load as a fixed background (no pinned commodities),
// touching only the intervals the batch covers, while the previous epoch's
// state carries every other interval verbatim. Returns false when the core
// declines (drift past the bound, stale or unmatched intervals) and the
// caller must run the full re-plan instead.
func (s *RollingScheduler) replanDelta(tau float64) (bool, error) {
	if len(s.pending) == 0 {
		// Nothing to place: the previous plan is still exact, and invoking
		// the solver on an empty instance would only wipe the carried state.
		return true, nil
	}
	s.bset.Prune(tau)
	intervals := s.bset.IntervalsFrom(tau)
	res, err := core.SolveDCFSRPartialCtx(s.ctx, core.DCFSRPartialInput{
		Graph:     s.g,
		Compiled:  s.compiled,
		Flows:     s.pending,
		Model:     s.model,
		Now:       tau,
		Intervals: intervals,
		Prev:      s.prev,
		BaseLoad:  s.baseLoadDuring,
		Delta:     s.opts.Delta,
		Argmax:    !s.opts.SampleRounding,
		Opts:      s.opts.DCFSR,
	})
	if err != nil {
		return false, fmt.Errorf("online: delta re-solve at %v: %w", tau, err)
	}
	if !res.DeltaUsed {
		return false, nil
	}
	s.prev = res.State
	s.stats.Epochs++
	s.stats.DeltaEpochs++
	s.stats.FWIters += res.FWIters
	s.stats.SeededIntervals += res.SeededIntervals
	s.stats.SolvedIntervals += res.Intervals - res.ReusedIntervals
	s.stats.ReusedIntervals += res.ReusedIntervals
	s.accumDrift += res.Drift
	s.sinceFull++
	if s.opts.DCFSR.Progress != nil {
		s.opts.DCFSR.Progress(core.ProgressEvent{
			Stage: "epoch-delta", Index: s.stats.Epochs, FWIters: res.FWIters, Time: tau,
		})
	}
	if err := s.admitBatch(tau, res, "delta"); err != nil {
		return false, err
	}
	// No rebalance here: reshaping in-flight profiles would shift the very
	// loads the reused intervals were solved against. The next full epoch
	// re-levels the whole system.
	s.stampLoads(res.State, true)
	return true, nil
}

// stampLoads refreshes the per-interval load fingerprints of st from the
// reservations as they stand after this epoch's admissions (and rebalance,
// when one ran) — the baseline the next delta epoch measures drift against.
// freshOnly limits the stamp to intervals this epoch actually re-solved, so
// reused intervals stay anchored at their last solved snapshot and drift
// accumulates instead of being hidden.
func (s *RollingScheduler) stampLoads(st *core.RelaxationState, freshOnly bool) {
	if st == nil || len(st.Fingerprints) != len(st.Intervals) {
		return
	}
	for k := range st.Fingerprints {
		fp := &st.Fingerprints[k]
		if freshOnly && fp.Stale > 0 {
			continue
		}
		if fp.Load == nil {
			fp.Load = make([]float64, s.g.NumEdges())
		}
		s.baseLoadDuring(st.Intervals[k], fp.Load)
	}
}

// baseLoadDuring writes the committed per-edge load during iv into out —
// the background the delta path solves an arrival batch against. Committed
// reservations only change rate at past admission instants (all ≤ now ≤
// iv.Start) and at flow deadlines (all grid breakpoints), so they are
// constant within iv and the midpoint sample is exact.
func (s *RollingScheduler) baseLoadDuring(iv timeline.Interval, out []float64) {
	for i := range out {
		out[i] = 0
	}
	mid := (iv.Start + iv.End) / 2
	for eid, r := range s.res {
		out[eid] = r.rateAt(mid)
	}
}

// reserve adds (sign +1) or releases (sign -1) a rate profile on every
// link of a path.
func (s *RollingScheduler) reserve(p graph.Path, segs []schedule.RateSegment, sign float64) {
	for _, seg := range segs {
		for _, eid := range p.Edges {
			r := s.res[eid]
			if r == nil {
				r = &reservation{}
				s.res[eid] = r
			}
			r.add(seg.Interval.Start, seg.Interval.End, sign*seg.Rate)
		}
	}
}

// splitAt cuts a frozen profile at time tau into the immutable transmitted
// prefix and the still-replannable suffix.
func splitAt(segs []schedule.RateSegment, tau float64) (prefix, suffix []schedule.RateSegment) {
	for _, seg := range segs {
		switch {
		case seg.Interval.End <= tau+timeline.Eps:
			prefix = append(prefix, seg)
		case seg.Interval.Start >= tau-timeline.Eps:
			suffix = append(suffix, seg)
		default:
			pre, post := seg, seg
			pre.Interval.End = tau
			post.Interval.Start = tau
			prefix = append(prefix, pre)
			suffix = append(suffix, post)
		}
	}
	return prefix, suffix
}

// rebalance re-optimises the future rate profiles of every in-flight
// commitment at the epoch boundary tau — the decisions that are NOT frozen:
// paths and transmitted prefixes stay fixed, but each flow's remaining data
// is re-shaped against the current committed load. One ascending-ID sweep
// of exact single-flow water-fills is a block-coordinate-descent step on
// the convex rate-allocation problem for the fixed routing; arrivals that
// came after a flow's admission are what make this worthwhile, and it is
// the capability the irrevocable greedy fundamentally lacks.
func (s *RollingScheduler) rebalance(tau float64) {
	ids := make([]flow.ID, 0, len(s.committed))
	for id, c := range s.committed {
		if c.f.Deadline > tau+timeline.Eps {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		c := s.committed[id]
		prefix, oldSuffix := splitAt(c.segments, tau)
		var transmitted float64
		for _, seg := range prefix {
			transmitted += seg.Rate * seg.Interval.Length()
		}
		w := c.f.Size - transmitted
		if w <= c.f.Size*1e-12 || len(oldSuffix) == 0 {
			continue
		}
		s.reserve(c.path, oldSuffix, -1)
		newSuffix := s.shapeRates(c.path, tau, c.f.Deadline, w)
		if newSuffix == nil {
			newSuffix = oldSuffix
		}
		s.reserve(c.path, newSuffix, 1)
		c.segments = append(prefix, newSuffix...)
	}
}

// shapeRates computes the energy-minimal frozen transmission profile for
// one new flow on path p over [a, b]: minimize the marginal dynamic energy
//
//	∫ sum_e [g(cur_e(t) + x(t)) − g(cur_e(t))] dt
//
// subject to ∫ x dt = w and 0 ≤ x(t) ≤ C − max_e cur_e(t), where cur_e is
// the committed load already reserved on edge e. The optimum is a
// water-filling: on every transmitting segment the aggregate marginal cost
// sum_e g'(cur_e + x) equals a common level λ, so the flow pushes harder
// through load troughs and backs off under peaks — the temporal twin of
// the spatial load balancing the relaxation does across paths. With an
// idle committed path the profile degenerates to the flat density w/(b−a).
//
// It returns nil when shaping is impossible under the capacity bound (the
// caller falls back to the flat profile and its admission control).
func (s *RollingScheduler) shapeRates(p graph.Path, a, b, w float64) []schedule.RateSegment {
	if b-a <= timeline.Eps || w <= 0 {
		return nil
	}
	// Segment the window at every committed rate change on the path.
	times := []float64{a, b}
	for _, eid := range p.Edges {
		if r := s.res[eid]; r != nil {
			for _, seg := range r.segs {
				if seg.Interval.Start > a && seg.Interval.Start < b {
					times = append(times, seg.Interval.Start)
				}
				if seg.Interval.End > a && seg.Interval.End < b {
					times = append(times, seg.Interval.End)
				}
			}
		}
	}
	bounds := timeline.Breakpoints(times)
	type piece struct {
		iv   timeline.Interval
		cur  []float64 // committed rate per path edge
		xmax float64   // capacity headroom
	}
	pieces := make([]piece, 0, len(bounds)-1)
	var capTotal float64
	for i := 0; i+1 < len(bounds); i++ {
		pc := piece{
			iv:   timeline.Interval{Start: bounds[i], End: bounds[i+1]},
			cur:  make([]float64, len(p.Edges)),
			xmax: math.Inf(1),
		}
		mid := (pc.iv.Start + pc.iv.End) / 2
		var peak float64
		for j, eid := range p.Edges {
			if r := s.res[eid]; r != nil {
				pc.cur[j] = r.rateAt(mid)
			}
			if pc.cur[j] > peak {
				peak = pc.cur[j]
			}
		}
		if s.model.Capped() {
			pc.xmax = s.model.C - peak
			if pc.xmax < 0 {
				pc.xmax = 0
			}
		}
		capTotal += pc.xmax * pc.iv.Length()
		pieces = append(pieces, pc)
	}
	if capTotal < w*(1-1e-9) {
		return nil // cannot fit under capacity even with shaping
	}
	// marginal is the aggregate marginal cost of pushing rate x through a
	// piece; strictly increasing in x (g is strictly convex).
	marginal := func(pc *piece, x float64) float64 {
		var m float64
		for _, c := range pc.cur {
			m += s.model.GDeriv(c + x)
		}
		return m
	}
	density := w / (b - a)
	hiX := density
	for _, pc := range pieces {
		if pc.xmax < math.Inf(1) && pc.xmax > hiX {
			hiX = pc.xmax
		}
	}
	if !s.model.Capped() {
		// Uncapped: the level never needs to push a piece beyond delivering
		// the whole residual in that piece alone.
		for _, pc := range pieces {
			if x := w / pc.iv.Length(); x > hiX {
				hiX = x
			}
		}
	}
	// rateAtLevel inverts marginal on [0, min(xmax, hiX)] by bisection.
	rateAtLevel := func(pc *piece, lambda float64) float64 {
		hi := math.Min(pc.xmax, hiX)
		if hi <= 0 || marginal(pc, 0) >= lambda {
			return 0
		}
		if marginal(pc, hi) <= lambda {
			return hi
		}
		lo := 0.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if marginal(pc, mid) < lambda {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	delivered := func(lambda float64) float64 {
		var sum float64
		for i := range pieces {
			sum += rateAtLevel(&pieces[i], lambda) * pieces[i].iv.Length()
		}
		return sum
	}
	// Bisect the water level λ until the profile delivers w.
	loL, hiL := math.Inf(1), 0.0
	for i := range pieces {
		if m0 := marginal(&pieces[i], 0); m0 < loL {
			loL = m0
		}
		if mh := marginal(&pieces[i], math.Min(pieces[i].xmax, hiX)); mh > hiL {
			hiL = mh
		}
	}
	for i := 0; i < 80; i++ {
		mid := (loL + hiL) / 2
		if delivered(mid) < w {
			loL = mid
		} else {
			hiL = mid
		}
	}
	lambda := hiL
	// Assemble, rescaling the bisection residue onto the transmitting
	// pieces so the profile delivers exactly w.
	rates := make([]float64, len(pieces))
	var total float64
	for i := range pieces {
		rates[i] = rateAtLevel(&pieces[i], lambda)
		total += rates[i] * pieces[i].iv.Length()
	}
	if total <= 0 {
		return nil
	}
	scale := w / total
	var out []schedule.RateSegment
	for i, pc := range pieces {
		x := rates[i] * scale
		if x <= 1e-12 {
			continue
		}
		if s.model.Capped() && x > pc.xmax {
			x = pc.xmax // scale may nudge a saturated piece past headroom
		}
		out = append(out, schedule.RateSegment{Interval: pc.iv, Rate: x})
	}
	if len(out) == 0 {
		return nil
	}
	return mergeSegments(out)
}

// fits reports whether reserving rate d over [a, b] on every link of p
// stays under the model's capacity given the current commitments.
func (s *RollingScheduler) fits(p graph.Path, d, a, b float64) bool {
	for _, eid := range p.Edges {
		var cur float64
		if r := s.res[eid]; r != nil {
			cur = r.maxDuring(a, b)
		}
		if cur+d > s.model.C*(1+1e-9) {
			return false
		}
	}
	return true
}

// bestPath picks the admission path for one new flow: every relaxation
// candidate — plus the marginal-cost shortest path as a safety net — is
// scored by the exact marginal energy of reserving rate d over
// [tau, f.Deadline] against the current commitments, and the cheapest
// fitting path wins. The relaxation supplies globally load-aware candidates
// (its fractional solve saw every active flow and the whole remaining
// horizon); the exact scoring then replaces a single randomized draw with
// the locally optimal member of that set — strictly better information
// than the greedy's span-maximum heuristic. Near-ties keep the earlier
// entry (candidates arrive weight-sorted, the safety net goes last), so
// the choice is deterministic.
func (s *RollingScheduler) bestPath(f flow.Flow, d float64, cands []core.CandidatePath, tau float64) graph.Path {
	score := func(p graph.Path) float64 {
		var sum float64
		for _, eid := range p.Edges {
			sum += s.res[eid].marginalEnergy(tau, f.Deadline, d, s.cost)
		}
		return sum
	}
	paths := make([]graph.Path, 0, len(cands)+1)
	for _, c := range cands {
		paths = append(paths, c.Path)
	}
	if fb, err := s.g.ShortestPathWeighted(f.Src, f.Dst, func(e graph.Edge) float64 {
		return s.res[e.ID].marginalEnergy(tau, f.Deadline, d, s.cost) + 1e-9
	}); err == nil {
		dup := false
		for _, p := range paths {
			if graph.ComparePathKeys(p.Edges, fb.Edges) == 0 {
				dup = true
				break
			}
		}
		if !dup {
			paths = append(paths, fb)
		}
	}
	checkCap := s.opts.RejectOverCapacity && s.model.Capped()
	bestIdx := -1
	bestScore := math.Inf(1)
	anyFits := false
	for i, p := range paths {
		ok := !checkCap || s.fits(p, d, tau, f.Deadline)
		if checkCap && anyFits && !ok {
			continue // never trade a fitting path for a rejected one
		}
		sc := score(p)
		if bestIdx == -1 || (ok && !anyFits) || sc < bestScore-1e-9*(1+bestScore) {
			bestIdx, bestScore, anyFits = i, sc, ok || anyFits
		}
	}
	return paths[bestIdx]
}

// RunRolling replays a whole flow set through the rolling-horizon scheduler
// via the event-driven simulator and returns the validated outcome — the
// offline-comparable entry point, mirroring Run for the greedy scheduler.
func RunRolling(g *graph.Graph, flows *flow.Set, model power.Model, opts RollingOptions) (*RollingResult, *sim.ReplayResult, error) {
	return RunRollingCtx(context.Background(), g, flows, model, nil, opts)
}

// RunRollingCtx is RunRolling under a context: the replay aborts with the
// wrapped context error at the first epoch boundary after ctx ends (or
// within one Frank–Wolfe iteration of a re-solve already in flight). A
// non-nil horizon overrides the run window (it must contain the flow span
// — a wider window changes the default FixedPeriod replan cadence and the
// idle-energy accounting span); nil derives it from the flows as
// RunRolling does.
func RunRollingCtx(ctx context.Context, g *graph.Graph, flows *flow.Set, model power.Model, horizon *timeline.Interval, opts RollingOptions) (*RollingResult, *sim.ReplayResult, error) {
	if flows == nil {
		return nil, nil, fmt.Errorf("%w: nil flows", ErrBadInput)
	}
	t0, t1 := flows.Horizon()
	window := timeline.Interval{Start: t0, End: t1}
	if horizon != nil {
		window = *horizon
	}
	rs, err := NewRollingCtx(ctx, g, model, window, opts)
	if err != nil {
		return nil, nil, err
	}
	rep, err := sim.ReplayOnline(g, flows, model, rs, sim.Options{})
	if err != nil {
		return nil, nil, err
	}
	res, err := rs.Result()
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}
