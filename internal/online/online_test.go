package online

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/sim"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

func TestOnlineMeetsDeadlines(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 30, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.2, Mu: 1, Alpha: 2, C: 1e9}
	res, err := Run(ft.Graph, fs, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != fs.Len() {
		t.Fatalf("admitted = %d, want %d", res.Admitted, fs.Len())
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run(ft.Graph, fs, res.Schedule, m, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.DeadlinesMissed != 0 {
		t.Fatalf("online schedule missed %d deadlines", simRes.DeadlinesMissed)
	}
}

func TestOnlineMarginalCostSpreadsLoad(t *testing.T) {
	// Two same-span flows between the same pair over parallel links: the
	// second flow must avoid the first one's link (marginal cost of a
	// loaded link is higher under convex g).
	top, src, dst, err := topology.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 20},
		{Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	res, err := Run(top.Graph, fs, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p0 := res.Schedule.FlowSchedule(0).Path
	p1 := res.Schedule.FlowSchedule(1).Path
	if p0.Key() == p1.Key() {
		t.Fatalf("both flows on the same link: %s", p0)
	}
	if res.PeakRate > 2+1e-9 {
		t.Fatalf("peak rate %v, want 2 (each link one density-2 flow)", res.PeakRate)
	}
}

func TestOnlineFullCostConsolidates(t *testing.T) {
	// With idle power and full-f costing, a light second flow prefers the
	// link already powered by the first one (it avoids paying sigma to
	// light a dark link).
	top, src, dst, err := topology.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 2}, // density 0.2
		{Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 1}, // density 0.1
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: power.SigmaForRopt(1, 2, 5), Mu: 1, Alpha: 2, C: 1e9} // Ropt = 5
	res, err := Run(top.Graph, fs, m, Options{CostFull: true})
	if err != nil {
		t.Fatal(err)
	}
	p0 := res.Schedule.FlowSchedule(0).Path
	p1 := res.Schedule.FlowSchedule(1).Path
	if p0.Key() != p1.Key() {
		t.Fatalf("full-cost metric should consolidate: %s vs %s", p0, p1)
	}
}

func TestOnlineRejectOverCapacity(t *testing.T) {
	top, src, dst, err := topology.ParallelLinks(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 2}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5}, // would push rate to 3 > C
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(top.Graph, fs, m, Options{RejectOverCapacity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != 1 {
		t.Fatalf("admitted = %d, want 1", res.Admitted)
	}
	// Without rejection both are admitted (capacity relaxed).
	res2, err := Run(top.Graph, fs, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Admitted != 2 {
		t.Fatalf("relaxed admitted = %d, want 2", res2.Admitted)
	}
}

func TestOnlineErrors(t *testing.T) {
	m := power.Model{Mu: 1, Alpha: 2}
	if _, err := New(nil, m, timeline.Interval{}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph err = %v", err)
	}
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(line.Graph, power.Model{Mu: 1, Alpha: 0.3}, timeline.Interval{}, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad model err = %v", err)
	}
	s, err := New(line.Graph, m, timeline.Interval{Start: 0, End: 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(flow.Flow{Src: 0, Dst: 0, Release: 0, Deadline: 1, Size: 1}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("invalid flow err = %v", err)
	}
	if _, err := Run(line.Graph, nil, m, Options{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil flows err = %v", err)
	}
}

// TestPropertyOnlineNeverBeatsOfflineBadly: on random fat-tree workloads
// the online greedy is within a sane factor of offline Random-Schedule and
// always deadline-feasible.
func TestPropertyOnlineVsOffline(t *testing.T) {
	ft, err := topology.FatTree(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e12}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		fs, err := flow.Uniform(flow.GenConfig{
			N: n, T0: 1, T1: 60, SizeMean: 8, SizeStddev: 2,
			Hosts: ft.Hosts, Seed: seed,
		})
		if err != nil {
			return false
		}
		on, err := Run(ft.Graph, fs, m, Options{})
		if err != nil {
			return false
		}
		if err := on.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
			return false
		}
		off, err := core.SolveDCFSR(core.DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
		if err != nil {
			return false
		}
		onE := on.Schedule.EnergyTotal(m)
		offE := off.Schedule.EnergyTotal(m)
		// The online heuristic must stay within 3x of offline RS on these
		// mild instances, and never below the fractional bound.
		return onE <= 3*offE && onE >= off.LowerBound*(1-1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
