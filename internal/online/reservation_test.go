package online

import (
	"math"
	"math/rand"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

// resOp is one reservation mutation, recorded so the oracle can recompute
// the true piecewise-constant rate function from scratch.
type resOp struct{ a, b, rate float64 }

// flowAt builds one flow literal for the admission tests.
func flowAt(id flow.ID, src, dst graph.NodeID, release, deadline, size float64) flow.Flow {
	return flow.Flow{ID: id, Src: src, Dst: dst, Release: release, Deadline: deadline, Size: size}
}

// oracleRate is the ground-truth reserved rate at t: the sum of every
// operation whose half-open window [a, b) contains t.
func oracleRate(ops []resOp, t float64) float64 {
	var sum float64
	for _, op := range ops {
		if t >= op.a && t < op.b {
			sum += op.rate
		}
	}
	return sum
}

// oracleBounds collects every operation endpoint inside [a, b] — the grid a
// brute-force piecewise integration refines over.
func oracleBounds(ops []resOp, a, b float64) []float64 {
	pts := []float64{a, b}
	for _, op := range ops {
		if op.a > a && op.a < b {
			pts = append(pts, op.a)
		}
		if op.b > a && op.b < b {
			pts = append(pts, op.b)
		}
	}
	return timeline.Breakpoints(pts)
}

// oracleMarginalEnergy brute-force integrates cost(cur+d) - cost(cur) over
// [a, b] piece by piece on the operation grid.
func oracleMarginalEnergy(ops []resOp, a, b, d float64, cost func(float64) float64) float64 {
	if b <= a {
		return 0
	}
	pts := oracleBounds(ops, a, b)
	var sum float64
	for i := 0; i+1 < len(pts); i++ {
		mid := (pts[i] + pts[i+1]) / 2
		cur := oracleRate(ops, mid)
		sum += (cost(cur+d) - cost(cur)) * (pts[i+1] - pts[i])
	}
	return sum
}

// oracleMaxDuring brute-force maximizes the rate over the cells of [a, b].
func oracleMaxDuring(ops []resOp, a, b float64) float64 {
	pts := oracleBounds(ops, a, b)
	var max float64
	for i := 0; i+1 < len(pts); i++ {
		if r := oracleRate(ops, (pts[i]+pts[i+1])/2); r > max {
			max = r
		}
	}
	return max
}

// addRebuild is the pre-refactor O(n) full rebuild of reservation.add, kept
// verbatim as the behavioural oracle for the localized splice.
func addRebuild(r *reservation, a, b, rate float64) {
	bounds := []float64{a, b}
	for _, s := range r.segs {
		bounds = append(bounds, s.Interval.Start, s.Interval.End)
	}
	bounds = timeline.Breakpoints(bounds)
	var out []schedule.RateSegment
	rateAtLinear := func(t float64) float64 {
		for _, s := range r.segs {
			if s.Interval.Contains(t) {
				return s.Rate
			}
		}
		return 0
	}
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		mid := (lo + hi) / 2
		cur := rateAtLinear(mid)
		if mid >= a && mid <= b {
			cur += rate
		}
		if cur > timeline.Eps {
			if len(out) > 0 && math.Abs(out[len(out)-1].Rate-cur) < 1e-12 &&
				math.Abs(out[len(out)-1].Interval.End-lo) <= timeline.Eps {
				out[len(out)-1].Interval.End = hi
			} else {
				out = append(out, schedule.RateSegment{
					Interval: timeline.Interval{Start: lo, End: hi},
					Rate:     cur,
				})
			}
		}
	}
	r.segs = out
}

// randomOps draws a workload of reservations and releases on a coarse grid
// (steps of 0.5 over [0, 100], far above Eps): roughly a third of the
// operations release a previously added window, mirroring how rebalance
// removes exactly what reserve added.
func randomOps(rng *rand.Rand, n int) []resOp {
	var ops []resOp
	var added []resOp
	for len(ops) < n {
		if len(added) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(added))
			op := added[i]
			added = append(added[:i], added[i+1:]...)
			ops = append(ops, resOp{op.a, op.b, -op.rate})
			continue
		}
		a := float64(rng.Intn(180)) / 2
		b := a + 0.5 + float64(rng.Intn(40))/2
		rate := 0.5 + rng.Float64()*4
		op := resOp{a, b, rate}
		ops = append(ops, op)
		added = append(added, op)
	}
	return ops
}

// TestReservationAddMatchesRebuild pins the localized splice to the old full
// rebuild: after every operation of many random workloads, the piece lists
// must be identical.
func TestReservationAddMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var got, want reservation
		for i, op := range randomOps(rng, 60) {
			got.add(op.a, op.b, op.rate)
			addRebuild(&want, op.a, op.b, op.rate)
			if len(got.segs) != len(want.segs) {
				t.Fatalf("trial %d op %d: %d pieces, want %d\n got: %v\nwant: %v",
					trial, i, len(got.segs), len(want.segs), got.segs, want.segs)
			}
			for k := range got.segs {
				if got.segs[k] != want.segs[k] {
					t.Fatalf("trial %d op %d piece %d: %+v, want %+v",
						trial, i, k, got.segs[k], want.segs[k])
				}
			}
		}
	}
}

// TestReservationOracle property-checks rateAt, maxDuring and marginalEnergy
// against the brute-force oracle over randomized operation sets.
func TestReservationOracle(t *testing.T) {
	cost := func(x float64) float64 { return x * x }
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var r reservation
		ops := randomOps(rng, 40)
		for _, op := range ops {
			r.add(op.a, op.b, op.rate)
		}
		// rateAt at cell midpoints (never on a boundary, where the two
		// representations may legitimately disagree within Eps).
		pts := oracleBounds(ops, 0, 100)
		for i := 0; i+1 < len(pts); i++ {
			mid := (pts[i] + pts[i+1]) / 2
			want := oracleRate(ops, mid)
			if want < timeline.Eps {
				want = 0 // add drops zero-rate pieces
			}
			if got := r.rateAt(mid); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: rateAt(%v) = %v, want %v", trial, mid, got, want)
			}
		}
		for q := 0; q < 25; q++ {
			a := float64(rng.Intn(180)) / 2
			b := a + 0.5 + float64(rng.Intn(60))/2
			d := 0.5 + rng.Float64()*2
			if got, want := r.maxDuring(a, b), oracleMaxDuring(ops, a, b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: maxDuring(%v, %v) = %v, want %v", trial, a, b, got, want)
			}
			got := r.marginalEnergy(a, b, d, cost)
			want := oracleMarginalEnergy(ops, a, b, d, cost)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: marginalEnergy(%v, %v, %v) = %v, want %v", trial, a, b, d, got, want)
			}
		}
	}
}

// TestReservationPruneOracle checks that pruning preserves every query on
// windows at or after the prune instant.
func TestReservationPruneOracle(t *testing.T) {
	cost := func(x float64) float64 { return x * x }
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		var r reservation
		ops := randomOps(rng, 40)
		for _, op := range ops {
			r.add(op.a, op.b, op.rate)
		}
		cut := float64(rng.Intn(100))
		r.prune(cut)
		for q := 0; q < 20; q++ {
			a := cut + float64(rng.Intn(60))/2
			b := a + 0.5 + float64(rng.Intn(40))/2
			if got, want := r.maxDuring(a, b), oracleMaxDuring(ops, a, b); math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d: post-prune maxDuring(%v, %v) = %v, want %v", trial, a, b, got, want)
			}
			got := r.marginalEnergy(a, b, 1, cost)
			want := oracleMarginalEnergy(ops, a, b, 1, cost)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				t.Fatalf("trial %d: post-prune marginalEnergy(%v, %v) = %v, want %v", trial, a, b, got, want)
			}
		}
	}
}

// TestReservationKnifeEdge pins the back-to-back endpoint semantics audited
// for the online path: a piece that only touches the query window at a
// single instant (zero-length intersection) must not contribute its rate,
// so a flow starting exactly when another finishes sees free capacity.
func TestReservationKnifeEdge(t *testing.T) {
	cases := []struct {
		name string
		segs []resOp
		a, b float64
		want float64
	}{
		{"ends-at-window-start", []resOp{{0, 5, 3}}, 5, 10, 0},
		{"starts-at-window-end", []resOp{{5, 10, 3}}, 0, 5, 0},
		{"strictly-inside", []resOp{{0, 5, 3}}, 4, 10, 3},
		{"back-to-back-pair", []resOp{{0, 5, 3}, {5, 10, 2}}, 5, 10, 2},
		{"eps-overlap-only", []resOp{{0, 5 + timeline.Eps/2, 3}}, 5, 10, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r reservation
			for _, op := range tc.segs {
				r.add(op.a, op.b, op.rate)
			}
			if got := r.maxDuring(tc.a, tc.b); math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("maxDuring(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestGreedyBackToBackAdmission is the end-to-end face of the knife edge: a
// link fully saturated until t=5 must still admit a capacity-filling flow
// that starts exactly at t=5 under RejectOverCapacity.
func TestGreedyBackToBackAdmission(t *testing.T) {
	top, src, dst, err := topology.ParallelLinks(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 4}
	s, err := New(top.Graph, m, timeline.Interval{Start: 0, End: 10}, Options{RejectOverCapacity: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Admit(flowAt(1, src, dst, 0, 5, 20)); err != nil { // density 4 = C
		t.Fatalf("first flow: %v", err)
	}
	if err := s.Admit(flowAt(2, src, dst, 5, 10, 20)); err != nil {
		t.Fatalf("back-to-back flow spuriously rejected: %v", err)
	}
}

// TestGreedyAdmitWeightUsesSpanMaximum pins the documented Admit weight
// metric: candidates are compared at the span-MAXIMUM reserved rate, not
// the span average. One parallel link carries a short, high spike (high
// maximum, low average), the other a constant medium load chosen between
// the two; the admitted flow must avoid the spiked link.
func TestGreedyAdmitWeightUsesSpanMaximum(t *testing.T) {
	top, src, dst, err := topology.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	s, err := New(top.Graph, m, timeline.Interval{Start: 0, End: 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First src->dst link (edge 0): rate-10 spike over 1% of the span
	// (average 0.1). Second src->dst link (edge 2): constant rate 4.
	// Span-max prefers the constant link; span-average would prefer the
	// spiked one.
	s.res[0] = &reservation{}
	s.res[0].add(0, 1, 10)
	s.res[2] = &reservation{}
	s.res[2].add(0, 100, 4)
	if err := s.Admit(flowAt(7, src, dst, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	p := s.sched.FlowSchedule(7).Path
	if len(p.Edges) != 1 || p.Edges[0] != 2 {
		t.Fatalf("flow routed over edges %v, want the constant-load link (edge 2): "+
			"the weight must use maxDuring, not the span average", p.Edges)
	}
	// The documented formula, verified numerically on both candidates.
	d := 1.0 // size 100 over span 100
	w0 := m.G(10+d) - m.G(10) + 1e-9
	w1 := m.G(4+d) - m.G(4) + 1e-9
	if !(w1 < w0) {
		t.Fatalf("test premise broken: w1=%v should beat w0=%v", w1, w0)
	}
}
