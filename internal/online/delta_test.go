package online

import (
	"errors"
	"testing"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// assertSchedulesIdentical compares two rolling outcomes bit for bit:
// same rejections, same per-flow paths and rate segments, same energy.
func assertSchedulesIdentical(t *testing.T, a, b *RollingResult) {
	t.Helper()
	if len(a.RejectedIDs) != len(b.RejectedIDs) {
		t.Fatalf("rejected %d vs %d flows", len(a.RejectedIDs), len(b.RejectedIDs))
	}
	for i := range a.RejectedIDs {
		if a.RejectedIDs[i] != b.RejectedIDs[i] {
			t.Fatalf("rejected ID mismatch at %d: %d vs %d", i, a.RejectedIDs[i], b.RejectedIDs[i])
		}
	}
	af, bf := a.Schedule.FlowIDs(), b.Schedule.FlowIDs()
	if len(af) != len(bf) {
		t.Fatalf("schedules cover %d vs %d flows", len(af), len(bf))
	}
	for i, id := range af {
		if bf[i] != id {
			t.Fatalf("flow order mismatch at %d: %d vs %d", i, id, bf[i])
		}
		fa, fb := a.Schedule.FlowSchedule(id), b.Schedule.FlowSchedule(id)
		if fa.Path.Key() != fb.Path.Key() {
			t.Fatalf("flow %d: path %v vs %v", id, fa.Path, fb.Path)
		}
		if len(fa.Segments) != len(fb.Segments) {
			t.Fatalf("flow %d: %d vs %d segments", id, len(fa.Segments), len(fb.Segments))
		}
		for k := range fa.Segments {
			if fa.Segments[k] != fb.Segments[k] {
				t.Fatalf("flow %d segment %d: %+v vs %+v", id, k, fa.Segments[k], fb.Segments[k])
			}
		}
	}
}

// TestRollingDeltaDriftZeroBitIdentical pins the determinism contract: delta
// mode with DriftBound = 0 never takes the delta path, so its output — and
// every shared statistic — must match the default full-re-plan run bit for
// bit.
func TestRollingDeltaDriftZeroBitIdentical(t *testing.T) {
	ft, fs := diurnalWorkload(t, 30, 9)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	base, _, err := RunRolling(ft.Graph, fs, m, rollingOpts(ArrivalCount{N: 1}))
	if err != nil {
		t.Fatal(err)
	}
	opts := rollingOpts(ArrivalCount{N: 1})
	opts.Delta = core.DeltaOptions{Enabled: true, DriftBound: 0}
	pinned, _, err := RunRolling(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Stats.DeltaEpochs != 0 {
		t.Fatalf("DriftBound=0 ran %d delta epochs, want 0", pinned.Stats.DeltaEpochs)
	}
	if base.Stats != pinned.Stats {
		t.Fatalf("stats diverged:\n default: %+v\n pinned:  %+v", base.Stats, pinned.Stats)
	}
	assertSchedulesIdentical(t, base, pinned)
	if ea, eb := base.Schedule.EnergyTotal(m), pinned.Schedule.EnergyTotal(m); ea != eb {
		t.Fatalf("energy %v vs %v", ea, eb)
	}
}

// TestRollingDeltaMeetsDeadlines runs delta mode end to end on the diurnal
// workload: delta epochs must actually fire and reuse intervals, every
// admitted flow's deadline must hold, and the energy must stay within a
// modest factor of the full-re-plan run (delta epochs skip the rebalance
// sweep, so exact equality is not expected).
func TestRollingDeltaMeetsDeadlines(t *testing.T) {
	ft, fs := diurnalWorkload(t, 40, 3)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	full, _, err := RunRolling(ft.Graph, fs, m, rollingOpts(ArrivalCount{N: 1}))
	if err != nil {
		t.Fatal(err)
	}
	opts := rollingOpts(ArrivalCount{N: 1})
	opts.Delta = core.DeltaOptions{Enabled: true, DriftBound: 0.5, MaxStaleEpochs: 8}
	res, rep, err := RunRolling(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeltaEpochs == 0 {
		t.Fatal("no delta epochs fired on a per-arrival trace")
	}
	if res.Stats.ReusedIntervals == 0 {
		t.Fatal("delta epochs reused no intervals")
	}
	if res.Stats.DeltaEpochs >= res.Stats.Epochs {
		t.Fatalf("every epoch went delta (%d of %d): the stale cap never forced a full re-plan",
			res.Stats.DeltaEpochs, res.Stats.Epochs)
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	if rep.DeadlineViolations != 0 {
		t.Fatalf("delta run missed %d deadlines", rep.DeadlineViolations)
	}
	ef, ed := full.Schedule.EnergyTotal(m), res.Schedule.EnergyTotal(m)
	if ed > 1.5*ef {
		t.Fatalf("delta energy %v vs full %v: more than 1.5x apart", ed, ef)
	}
}

// TestRollingDeltaSolvesFewerIntervals is the cost claim behind the delta
// path: across a per-arrival trace it must solve strictly fewer intervals
// than the full-re-plan run touches.
func TestRollingDeltaSolvesFewerIntervals(t *testing.T) {
	ft, fs := diurnalWorkload(t, 40, 3)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	full, _, err := RunRolling(ft.Graph, fs, m, rollingOpts(ArrivalCount{N: 1}))
	if err != nil {
		t.Fatal(err)
	}
	opts := rollingOpts(ArrivalCount{N: 1})
	opts.Delta = core.DeltaOptions{Enabled: true, DriftBound: 0.5, MaxStaleEpochs: 8}
	res, _, err := RunRolling(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SolvedIntervals >= full.Stats.SolvedIntervals {
		t.Fatalf("delta solved %d intervals, full %d: no localization",
			res.Stats.SolvedIntervals, full.Stats.SolvedIntervals)
	}
}

// TestRollingDuplicatePendingArrival is the admission regression for the
// duplicate-ID bug: a second same-ID flow queued into the same epoch must
// be rejected up front, not planned over the first one's reservation.
func TestRollingDuplicatePendingArrival(t *testing.T) {
	ft, _ := diurnalWorkload(t, 4, 1)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	s, err := NewRolling(ft.Graph, m, timeline.Interval{Start: 0, End: 100}, rollingOpts(FixedPeriod{Period: 50}))
	if err != nil {
		t.Fatal(err)
	}
	f := flow.Flow{ID: 5, Src: ft.Hosts[0], Dst: ft.Hosts[1], Release: 1, Deadline: 40, Size: 10}
	if err := s.Arrive(f); err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(f); !errors.Is(err, ErrBadInput) {
		t.Fatalf("duplicate pending arrival: err = %v, want ErrBadInput", err)
	}
	// The run must still finish cleanly with the single admitted copy.
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Admitted != 1 {
		t.Fatalf("admitted %d flows, want 1", res.Stats.Admitted)
	}
}

// TestRollingDeltaEmptyEpochKeepsState: a time-driven boundary with no
// queued arrivals must not destroy the carried fingerprint state in delta
// mode (an empty solve would), so later arrivals still localize.
func TestRollingDeltaEmptyEpochKeepsState(t *testing.T) {
	ft, _ := diurnalWorkload(t, 4, 1)
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	opts := rollingOpts(FixedPeriod{Period: 5})
	opts.Delta = core.DeltaOptions{Enabled: true, DriftBound: 0.5}
	s, err := NewRolling(ft.Graph, m, timeline.Interval{Start: 0, End: 100}, opts)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id flow.ID, rel float64) flow.Flow {
		return flow.Flow{ID: id, Src: ft.Hosts[0], Dst: ft.Hosts[1], Release: rel, Deadline: 90, Size: 5}
	}
	if err := s.Arrive(mk(1, 0)); err != nil {
		t.Fatal(err)
	}
	// Cross several empty boundaries, then a second arrival.
	if err := s.AdvanceTo(30); err != nil {
		t.Fatal(err)
	}
	if err := s.Arrive(mk(2, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	if s.prev == nil || len(s.prev.Fingerprints) == 0 {
		t.Fatal("fingerprint state lost across empty epochs")
	}
	if s.stats.DeltaEpochs == 0 {
		t.Fatal("second arrival did not take the delta path")
	}
}
