// Package online implements an online variant of DCFSR — the extension the
// paper defers to future work ("we leave more exhaustive evaluation and
// further implementation as future work"; its related-work section surveys
// online deadline scheduling). Flows are revealed only at their release
// times; the scheduler must fix each flow's path and rate immediately and
// irrevocably.
//
// The package offers two schedulers at opposite ends of the
// effort/quality spectrum:
//
//   - Scheduler (marginal-cost greedy): when a flow arrives, route it on
//     the path minimising the *increase* of the power-function cost given
//     the rates currently reserved by admitted flows, then reserve the
//     flow's density D_i on every link of that path for its whole span.
//     Deadlines are met by construction (density rates), decisions are
//     instantaneous and irrevocable.
//   - RollingScheduler (rolling horizon): arrivals are batched into
//     epochs; each epoch boundary re-runs the Random-Schedule relaxation
//     over the remaining horizon with frozen commitments
//     (core.SolveDCFSRPartial) and routes the batch on the resulting
//     candidate distributions, warm-starting the per-interval Frank–Wolfe
//     solves from the previous epoch.
//
// Both implement sim.OnlineEngine and can be driven by sim.ReplayOnline.
package online

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/decision"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// Options tunes the online scheduler.
type Options struct {
	// CostFull uses the full power function f — including the idle charge
	// sigma paid when a dark link powers on — as the marginal-cost metric.
	// It makes the greedy consolidate onto already-active links; the
	// default metric is the dynamic-only g (load balancing).
	CostFull bool
	// RejectOverCapacity makes Schedule return ErrOverCapacity when a
	// flow's density cannot fit under C on any path; by default the flow
	// is admitted anyway (capacity relaxed, like DCFS).
	RejectOverCapacity bool
	// Recorder, when non-nil, receives a typed decision.Record for every
	// admission decision, in arrival order with deterministic sequence
	// numbers. Nil disables tracing at zero cost.
	Recorder decision.Recorder
	// Overrides, when non-nil, forces specific decisions during a
	// counterfactual re-run (decision.Replay builds these): a forced path
	// replaces the marginal-cost choice, a forced rejection is reported
	// like a capacity rejection.
	Overrides *decision.Overrides
}

// Errors returned by Schedule.
var (
	ErrBadInput      = errors.New("online: invalid input")
	ErrOverCapacity  = errors.New("online: flow cannot fit under link capacity")
	ErrNoRouteOnline = errors.New("online: no route for flow")
)

// Result is the outcome of the online scheduler.
type Result struct {
	Schedule *schedule.Schedule
	// Admitted counts flows placed under capacity; with
	// RejectOverCapacity=false this equals the flow count.
	Admitted int
	// PeakRate is the maximum reserved aggregate rate on any link.
	PeakRate float64
}

// reservation tracks, per link, the piecewise-constant aggregate rate
// reserved by admitted flows.
type reservation struct {
	// segs are the reserved (interval, rate) pieces kept disjoint/sorted.
	segs []schedule.RateSegment
}

// rateAt returns the reserved rate at instant t. The pieces are disjoint
// and sorted, so the first piece whose end reaches t is the only one that
// can contain it.
func (r *reservation) rateAt(t float64) float64 {
	i := sort.Search(len(r.segs), func(k int) bool { return r.segs[k].Interval.End >= t-timeline.Eps })
	if i < len(r.segs) && r.segs[i].Interval.Contains(t) {
		return r.segs[i].Rate
	}
	return 0
}

// rateIn is rateAt restricted to a window of pieces (used by the localized
// rebuild in add, whose probe points never fall outside the window).
func rateIn(segs []schedule.RateSegment, t float64) float64 {
	for _, s := range segs {
		if s.Interval.Contains(t) {
			return s.Rate
		}
	}
	return 0
}

// add reserves rate over [a, b] (negative rate releases), splitting existing
// pieces as needed. The rebuild is localized: pieces further than 2*Eps from
// [a, b] cannot interact with the insertion — their boundaries are outside
// the Breakpoints dedup reach of a and b, no probe point inside them gains
// the new rate, and surviving adjacent pieces are never re-mergeable (the
// merge below is what built them, so its condition already failed between
// them) — so only the overlapping window is re-derived and spliced back,
// turning the old O(n) full rebuild per insertion into O(log n + window)
// probe work plus a tail move. One extra piece on each side rides along so
// boundary-sharing neighbours see the exact probe context the full rebuild
// gave them.
func (r *reservation) add(a, b, rate float64) {
	const slack = 2 * timeline.Eps
	i := sort.Search(len(r.segs), func(k int) bool { return r.segs[k].Interval.End >= a-slack })
	j := sort.Search(len(r.segs), func(k int) bool { return r.segs[k].Interval.Start > b+slack })
	if i > 0 {
		i--
	}
	if j < len(r.segs) {
		j++
	}
	window := r.segs[i:j]
	bounds := make([]float64, 0, 2*len(window)+2)
	bounds = append(bounds, a, b)
	for _, s := range window {
		bounds = append(bounds, s.Interval.Start, s.Interval.End)
	}
	bounds = timeline.Breakpoints(bounds)
	out := make([]schedule.RateSegment, 0, len(window)+2)
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]
		mid := (lo + hi) / 2
		cur := rateIn(window, mid)
		if mid >= a && mid <= b {
			cur += rate
		}
		if cur > timeline.Eps {
			if len(out) > 0 && math.Abs(out[len(out)-1].Rate-cur) < 1e-12 &&
				math.Abs(out[len(out)-1].Interval.End-lo) <= timeline.Eps {
				out[len(out)-1].Interval.End = hi
			} else {
				out = append(out, schedule.RateSegment{
					Interval: timeline.Interval{Start: lo, End: hi},
					Rate:     cur,
				})
			}
		}
	}
	// Splice the rebuilt window over [i, j) in place; copy is memmove-safe
	// in both shift directions.
	switch delta := len(out) - (j - i); {
	case delta == 0:
		copy(r.segs[i:j], out)
	case delta < 0:
		copy(r.segs[i:], out)
		r.segs = append(r.segs[:i+len(out)], r.segs[j:]...)
	default:
		r.segs = append(r.segs, make([]schedule.RateSegment, delta)...)
		copy(r.segs[i+len(out):], r.segs[j:len(r.segs)-delta])
		copy(r.segs[i:], out)
	}
}

// marginalEnergy integrates cost(cur(t)+d) - cost(cur(t)) over [a, b],
// where cur is the reserved piecewise-constant rate (zero in the gaps
// between pieces): the exact energy increase of adding rate d to this link
// for the whole window. A nil receiver is an empty reservation.
func (r *reservation) marginalEnergy(a, b, d float64, cost func(float64) float64) float64 {
	if b <= a {
		return 0
	}
	gapDelta := cost(d) - cost(0)
	var sum float64
	cur := a
	if r != nil {
		i := sort.Search(len(r.segs), func(k int) bool { return r.segs[k].Interval.End > a+timeline.Eps })
		for ; i < len(r.segs); i++ {
			s := r.segs[i]
			if s.Interval.End <= cur+timeline.Eps {
				continue
			}
			if s.Interval.Start >= b-timeline.Eps {
				break
			}
			lo := math.Max(s.Interval.Start, cur)
			hi := math.Min(s.Interval.End, b)
			if lo > cur {
				sum += gapDelta * (lo - cur)
			}
			sum += (cost(s.Rate+d) - cost(s.Rate)) * (hi - lo)
			cur = hi
			if cur >= b-timeline.Eps {
				break
			}
		}
	}
	if cur < b {
		sum += gapDelta * (b - cur)
	}
	return sum
}

// prune discards pieces that end at or before t; callers must only query
// windows starting at or after t afterwards.
func (r *reservation) prune(t float64) {
	keep := r.segs[:0]
	for _, s := range r.segs {
		if s.Interval.End > t+timeline.Eps {
			keep = append(keep, s)
		}
	}
	r.segs = keep
}

// maxDuring returns the maximum reserved rate within [a, b]. Only pieces
// overlapping the window by more than timeline.Eps count: a piece ending
// exactly at a (or starting exactly at b) is a zero-measure touch, so a flow
// starting exactly when another finishes must not see the finished flow's
// rate (the back-to-back knife edge that would otherwise spuriously trip
// RejectOverCapacity). The strict-overlap guard is stated explicitly here
// rather than inherited from Interval.Intersect's non-empty contract, and
// the binary search makes the query O(log n + overlap) on long
// reservations.
func (r *reservation) maxDuring(a, b float64) float64 {
	var max float64
	i := sort.Search(len(r.segs), func(k int) bool { return r.segs[k].Interval.End > a+timeline.Eps })
	for ; i < len(r.segs); i++ {
		s := r.segs[i]
		if s.Interval.Start >= b-timeline.Eps {
			break
		}
		if math.Min(s.Interval.End, b)-math.Max(s.Interval.Start, a) > timeline.Eps && s.Rate > max {
			max = s.Rate
		}
	}
	return max
}

// Scheduler admits flows one at a time. The zero value is not usable; use
// New. It implements sim.OnlineEngine (Arrive/AdvanceTo/Finish), so it can
// be driven by sim.ReplayOnline interchangeably with RollingScheduler.
type Scheduler struct {
	g        *graph.Graph
	model    power.Model
	opts     Options
	res      map[graph.EdgeID]*reservation
	sched    *schedule.Schedule
	peak     float64
	rejected int
	recSeq   int
}

// New creates an online scheduler over the given horizon.
func New(g *graph.Graph, model power.Model, horizon timeline.Interval, opts Options) (*Scheduler, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInput)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &Scheduler{
		g:     g,
		model: model,
		opts:  opts,
		res:   make(map[graph.EdgeID]*reservation),
		sched: schedule.New(horizon),
	}, nil
}

// cost evaluates the marginal-cost metric at rate x.
func (s *Scheduler) cost(x float64) float64 {
	if s.opts.CostFull {
		return s.model.F(x)
	}
	return s.model.G(x)
}

// pathMarginalEnergy sums the exact marginal energy of reserving rate d over
// [a, b] on every edge of p, against the current reservations.
func (s *Scheduler) pathMarginalEnergy(p graph.Path, a, b, d float64) float64 {
	var sum float64
	for _, eid := range p.Edges {
		sum += s.res[eid].marginalEnergy(a, b, d, s.cost)
	}
	return sum
}

// record stamps the next sequence number on rec and emits it; call only when
// a recorder is configured.
func (s *Scheduler) record(rec decision.Record) {
	rec.Seq = s.recSeq
	s.recSeq++
	s.opts.Recorder.Record(rec)
}

// Admit routes and schedules one newly released flow. The decision is
// irrevocable: the flow's density is reserved on the chosen path across
// its span.
func (s *Scheduler) Admit(f flow.Flow) error {
	if err := f.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	d := f.Density()
	if s.opts.Overrides.Rejected(f.ID) {
		if s.opts.Recorder != nil {
			s.record(decision.Record{
				Time: f.Release, Kind: decision.KindReject, Flow: f.ID,
				Reason: "forced", Slack: f.Deadline - f.Release,
			})
		}
		return fmt.Errorf("%w: flow %d force-rejected by override", ErrOverCapacity, f.ID)
	}
	// Marginal cost of adding rate d to link e during the flow's span:
	// evaluate the cost delta at the span-maximum reserved rate
	// (maxDuring), a conservative estimate that is exact for the common
	// case of constant reservation over the span.
	weight := func(e graph.Edge) float64 {
		r := s.res[e.ID]
		var cur float64
		if r != nil {
			cur = r.maxDuring(f.Release, f.Deadline)
		}
		return s.cost(cur+d) - s.cost(cur) + 1e-9
	}
	p, err := s.g.ShortestPathWeighted(f.Src, f.Dst, weight)
	if err != nil {
		return fmt.Errorf("%w: flow %d: %v", ErrNoRouteOnline, f.ID, err)
	}
	reason := "marginal-cost"
	if forced, ok := s.opts.Overrides.ForcedPath(f.ID); ok {
		if err := forced.Validate(s.g, f.Src, f.Dst); err != nil {
			return fmt.Errorf("%w: forced path for flow %d: %v", ErrBadInput, f.ID, err)
		}
		p = forced
		reason = "forced"
	}
	if s.opts.RejectOverCapacity && s.model.Capped() {
		for _, eid := range p.Edges {
			var cur float64
			if r := s.res[eid]; r != nil {
				cur = r.maxDuring(f.Release, f.Deadline)
			}
			if cur+d > s.model.C*(1+1e-9) {
				if s.opts.Recorder != nil {
					s.record(decision.Record{
						Time: f.Release, Kind: decision.KindReject, Flow: f.ID,
						Reason: "over-capacity", Slack: f.Deadline - f.Release,
					})
				}
				return fmt.Errorf("%w: flow %d needs %v on link %d", ErrOverCapacity, f.ID, cur+d, eid)
			}
		}
	}
	if s.opts.Recorder != nil {
		// Score the choice and its alternative before reserving: marginal
		// energies are against the pre-admission reservations. The greedy's
		// only other natural candidate is the min-hop path.
		rec := decision.Record{
			Time: f.Release, Kind: decision.KindAdmit, Flow: f.ID,
			Reason: reason, Path: p.Edges, Rate: d,
			MarginalEnergy: s.pathMarginalEnergy(p, f.Release, f.Deadline, d),
			Slack:          f.Deadline - f.Release,
		}
		if alt, err := s.g.ShortestPath(f.Src, f.Dst); err == nil && alt.Key() != p.Key() {
			rec.Alternatives = []decision.Alternative{{
				Path:           alt.Edges,
				MarginalEnergy: s.pathMarginalEnergy(alt, f.Release, f.Deadline, d),
			}}
		}
		s.record(rec)
	}
	for _, eid := range p.Edges {
		r := s.res[eid]
		if r == nil {
			r = &reservation{}
			s.res[eid] = r
		}
		r.add(f.Release, f.Deadline, d)
		if m := r.maxDuring(f.Release, f.Deadline); m > s.peak {
			s.peak = m
		}
	}
	return s.sched.SetFlow(&schedule.FlowSchedule{
		FlowID: f.ID,
		Path:   p,
		Segments: []schedule.RateSegment{{
			Interval: timeline.Interval{Start: f.Release, End: f.Deadline},
			Rate:     d,
		}},
	})
}

// Arrive implements the sim.OnlineEngine reveal event: the flow is admitted
// immediately (the greedy decides at arrival, there is no batching), and a
// capacity rejection under RejectOverCapacity is recorded rather than
// returned as an error.
func (s *Scheduler) Arrive(f flow.Flow) error {
	if err := s.Admit(f); err != nil {
		if errors.Is(err, ErrOverCapacity) {
			s.rejected++
			return nil
		}
		return err
	}
	return nil
}

// AdvanceTo implements sim.OnlineEngine; the greedy has no internal
// boundaries, so advancing time is a no-op.
func (s *Scheduler) AdvanceTo(float64) error { return nil }

// Finish implements sim.OnlineEngine: it assigns packet priorities and
// returns the accumulated schedule.
func (s *Scheduler) Finish() (*schedule.Schedule, error) {
	s.sched.AssignPriorities()
	return s.sched, nil
}

// Rejected returns the number of flows refused under RejectOverCapacity
// since the scheduler was created.
func (s *Scheduler) Rejected() int { return s.rejected }

// Run replays a whole flow set in release order through the online
// scheduler — the offline-comparable entry point.
func Run(g *graph.Graph, flows *flow.Set, model power.Model, opts Options) (*Result, error) {
	return RunCtx(context.Background(), g, flows, model, nil, opts)
}

// RunCtx is Run under a context: cancellation is checked before each
// admission, so the replay stops within one flow of the context ending and
// returns the wrapped context error instead of a partial schedule. A
// non-nil horizon overrides the run window (it must contain the flow
// span); nil derives it from the flows as Run does.
func RunCtx(ctx context.Context, g *graph.Graph, flows *flow.Set, model power.Model, horizon *timeline.Interval, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if flows == nil {
		return nil, fmt.Errorf("%w: nil flows", ErrBadInput)
	}
	t0, t1 := flows.Horizon()
	window := timeline.Interval{Start: t0, End: t1}
	if horizon != nil {
		window = *horizon
	}
	s, err := New(g, model, window, opts)
	if err != nil {
		return nil, err
	}
	ordered := flows.Flows()
	sort.SliceStable(ordered, func(a, b int) bool {
		if ordered[a].Release != ordered[b].Release {
			return ordered[a].Release < ordered[b].Release
		}
		return ordered[a].ID < ordered[b].ID
	})
	admitted := 0
	for _, f := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("online: greedy replay interrupted at flow %d: %w", f.ID, err)
		}
		if err := s.Admit(f); err != nil {
			if errors.Is(err, ErrOverCapacity) {
				continue
			}
			return nil, err
		}
		admitted++
	}
	s.sched.AssignPriorities()
	return &Result{Schedule: s.sched, Admitted: admitted, PeakRate: s.peak}, nil
}
