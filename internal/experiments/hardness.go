package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dcnflow"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/topology"
)

// HardnessConfig parameterises the Theorem 2 construction: 3m flows with
// sizes in [B/4, B/2] summing to m*B, routed src->dst over k >> m parallel
// links within one unit of time, with sigma = mu*(alpha-1)*B^alpha so that
// Ropt = B. A perfect partition uses exactly m links at rate B with energy
// m * alpha * mu * B^alpha.
type HardnessConfig struct {
	// M is the number of 3-element groups; default 4.
	M int
	// B is the group sum; default 12.
	B float64
	// Alpha is the power exponent; default 2.
	Alpha float64
	// Links is the number of parallel links (k >> m); default 8*M.
	Links int
	// Seed drives the size perturbation and the rounding.
	Seed int64
	// Runs averages the RS ratio over several rounding seeds; default 5.
	Runs int
}

func (c HardnessConfig) withDefaults() HardnessConfig {
	if c.M <= 0 {
		c.M = 4
	}
	if c.B <= 0 {
		c.B = 12
	}
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if c.Links <= 0 {
		c.Links = 8 * c.M
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	return c
}

// HardnessResult reports the Theorem 2 gadget outcome and the Theorem 3
// inapproximability constant for the configured alpha.
type HardnessResult struct {
	Config HardnessConfig
	// Optimal is the partition optimum m * alpha * mu * B^alpha.
	Optimal float64
	// RSEnergy is the mean Random-Schedule energy across runs.
	RSEnergy float64
	// RSRatio is RSEnergy / Optimal (>= 1; how close the approximation
	// gets to the NP-hard optimum on its own worst-case family).
	RSRatio float64
	// LowerBound is the fractional bound (<= Optimal).
	LowerBound float64
	// ActiveLinksMean is the mean number of links RS powers on (optimum m).
	ActiveLinksMean float64
	// Theorem3Gamma is the approximation lower bound
	// 3/2 * (1 + ((2/3)^alpha - 1)/alpha) from Theorem 3.
	Theorem3Gamma float64
}

// Table renders the gadget summary.
func (r *HardnessResult) Table() string {
	tb := stats.NewTable("quantity", "value")
	tb.AddRow("m (groups)", r.Config.M)
	tb.AddRow("B (group sum)", r.Config.B)
	tb.AddRow("alpha", r.Config.Alpha)
	tb.AddRow("partition optimum", r.Optimal)
	tb.AddRow("fractional LB", r.LowerBound)
	tb.AddRow("RS energy (mean)", r.RSEnergy)
	tb.AddRow("RS / optimum", r.RSRatio)
	tb.AddRow("mean active links (opt m)", r.ActiveLinksMean)
	tb.AddRow("Theorem 3 gamma(alpha)", r.Theorem3Gamma)
	return tb.String()
}

// Theorem3Gamma returns the inapproximability constant of Theorem 3,
// gamma = 3/2 * (1 + ((2/3)^alpha - 1)/alpha).
func Theorem3Gamma(alpha float64) float64 {
	return 1.5 * (1 + (math.Pow(2.0/3.0, alpha)-1)/alpha)
}

// RunHardness builds the Theorem 2 instance and measures how
// Random-Schedule performs against the known optimum.
func RunHardness(cfg HardnessConfig) (*HardnessResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// 3m sizes in [B/4, B/2] summing to m*B: each group draws (a, b) and
	// sets c = B - a - b, redrawing until c lands in range.
	sizes := make([]float64, 0, 3*cfg.M)
	for g := 0; g < cfg.M; g++ {
		for {
			a := cfg.B/4 + rng.Float64()*cfg.B/4
			b := cfg.B/4 + rng.Float64()*cfg.B/4
			c := cfg.B - a - b
			if c >= cfg.B/4 && c <= cfg.B/2 {
				sizes = append(sizes, a, b, c)
				break
			}
		}
	}

	top, src, dst, err := topology.ParallelLinks(cfg.Links, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	fs, err := flow.HardnessInstance(src, dst, sizes)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	model := power.Model{
		Sigma: power.SigmaForRopt(1, cfg.Alpha, cfg.B), // Ropt = B
		Mu:    1,
		Alpha: cfg.Alpha,
		C:     1e12,
	}
	optimal := float64(cfg.M) * cfg.Alpha * model.Mu * math.Pow(cfg.B, cfg.Alpha)

	var energies, activeLinks []float64
	var lb float64
	for run := 0; run < cfg.Runs; run++ {
		res, err := solve(dcnflow.SolverDCFSR, top.Graph, fs, model,
			dcnflow.WithSeed(cfg.Seed+int64(run)))
		if err != nil {
			return nil, fmt.Errorf("experiments: hardness run %d: %w", run, err)
		}
		energies = append(energies, res.Energy)
		activeLinks = append(activeLinks, res.Stats["links_on"])
		lb = res.LowerBound
	}
	mean := stats.Mean(energies)
	return &HardnessResult{
		Config:          cfg,
		Optimal:         optimal,
		RSEnergy:        mean,
		RSRatio:         mean / optimal,
		LowerBound:      lb,
		ActiveLinksMean: stats.Mean(activeLinks),
		Theorem3Gamma:   Theorem3Gamma(cfg.Alpha),
	}, nil
}
