package experiments

import (
	"context"
	"fmt"

	"dcnflow"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// solve runs one registered solver of the unified Scenario/Solver API on an
// ad-hoc (graph, flows, model) triple. The experiments harness consumes the
// same registry as the CLI, so every runner exercises the public solving
// surface — one instance fanned across interchangeable algorithms — instead
// of re-wiring internal engines by hand.
func solve(name string, g *graph.Graph, fs *flow.Set, m power.Model, opts ...dcnflow.SolveOption) (*dcnflow.Solution, error) {
	inst, err := dcnflow.NewInstance(g, fs, m)
	if err != nil {
		return nil, fmt.Errorf("experiments: building instance: %w", err)
	}
	return dcnflow.Solve(context.Background(), name, inst, opts...)
}
