package experiments

import (
	"context"
	"fmt"
	"sync"

	"dcnflow"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
)

// sharedEngine is the one Engine every experiment runner dispatches
// through, so grids that revisit a topology (the fig2 flow-count ladder on
// one fat-tree, the ablations' repeated runs) share compiled graph
// artifacts and pooled solver scratch across cells. Engine dispatch never
// affects results (its determinism contract), which the grid
// worker-invariance tests in this package re-assert.
var (
	engineOnce sync.Once
	engineVal  *dcnflow.Engine
)

func sharedEngine() *dcnflow.Engine {
	engineOnce.Do(func() {
		engineVal = dcnflow.NewEngine(dcnflow.EngineOptions{})
	})
	return engineVal
}

// solve runs one registered solver of the unified Scenario/Solver API on an
// ad-hoc (graph, flows, model) triple, dispatched through the shared
// Engine. The experiments harness consumes the same registry as the CLI,
// so every runner exercises the public solving surface — one instance
// fanned across interchangeable algorithms — instead of re-wiring internal
// engines by hand.
func solve(name string, g *graph.Graph, fs *flow.Set, m power.Model, opts ...dcnflow.SolveOption) (*dcnflow.Solution, error) {
	inst, err := dcnflow.NewInstance(g, fs, m)
	if err != nil {
		return nil, fmt.Errorf("experiments: building instance: %w", err)
	}
	r := sharedEngine().Solve(context.Background(), dcnflow.Request{Instance: inst, Solver: name, Options: opts})
	return r.Solution, r.Err
}

// grid maps a (point, run) experiment lattice onto the flat index range of
// the sweep pool (internal/sweep.Map), runs innermost — the layout every
// runner in this package shares since the grids were rebased onto the sweep
// engine. Cell seeds derive from the coordinates the cell method returns,
// so execution order never leaks into results.
type grid struct {
	points []int
	runs   int
}

func newGrid(points []int, runs int) grid { return grid{points: points, runs: runs} }

// size returns the number of cells.
func (g grid) size() int { return len(g.points) * g.runs }

// cell maps a flat pool index back to its (point value, run) coordinates.
func (g grid) cell(i int) (point, run int) { return g.points[i/g.runs], i % g.runs }

// gridWorkers resolves a config's Workers field: experiments default to one
// pool worker because the relaxation underneath already fans out across
// intervals (DCFSROptions.Parallelism), so outer parallelism mostly
// oversubscribes; any positive value is honoured and never affects results.
func gridWorkers(w int) int {
	if w <= 0 {
		return 1
	}
	return w
}
