package experiments

import (
	"context"
	"fmt"

	"dcnflow"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/sweep"
	"dcnflow/internal/topology"
)

// AblateConfig shares the common knobs of the ablation studies (A1-A3):
// a k=4 fat-tree with a moderate workload unless overridden.
type AblateConfig struct {
	FatTreeK    int // default 4
	N           int // flows; default 40
	Runs        int // default 5
	Seed        int64
	Alpha       float64 // default 2
	SolverIters int     // default 40
	// Workers bounds concurrent grid cells on the sweep pool; default 1
	// and never affects results (see gridWorkers).
	Workers int
}

func (c AblateConfig) withDefaults() AblateConfig {
	if c.FatTreeK == 0 {
		c.FatTreeK = 4
	}
	if c.N <= 0 {
		c.N = 40
	}
	if c.Runs <= 0 {
		c.Runs = 5
	}
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if c.SolverIters <= 0 {
		c.SolverIters = 40
	}
	return c
}

// LambdaPoint is one row of the A1 ablation.
type LambdaPoint struct {
	// Quantum is the workload time-grid spacing; lambda is capped near
	// horizon / Quantum.
	Quantum float64
	Lambda  float64
	Ratio   float64 // RS / LB
}

// LambdaResult is the A1 (interval granularity) ablation: Theorem 6's
// bound scales with lambda^alpha, so shrinking the minimum span (growing
// lambda) should not catastrophically degrade the measured ratio — the
// bound is loose — but the trend is worth quantifying.
type LambdaResult struct {
	Config AblateConfig
	Points []LambdaPoint
}

// Table renders the A1 series.
func (r *LambdaResult) Table() string {
	tb := stats.NewTable("quantum", "lambda", "RS/LB")
	for _, p := range r.Points {
		tb.AddRow(p.Quantum, p.Lambda, p.Ratio)
	}
	return tb.String()
}

// RunAblationLambda sweeps the workload's time quantum, which controls the
// smallest decomposition interval and hence lambda.
func RunAblationLambda(cfg AblateConfig, quanta []float64) (*LambdaResult, error) {
	cfg = cfg.withDefaults()
	if len(quanta) == 0 {
		quanta = []float64{20, 10, 5, 2, 1}
	}
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	type cellResult struct {
		ratio, lambda float64
		haveLB        bool
	}
	results, err := sweep.Map(context.Background(), len(quanta)*cfg.Runs, gridWorkers(cfg.Workers),
		func(_ context.Context, i, _ int) (cellResult, error) {
			q, run := quanta[i/cfg.Runs], i%cfg.Runs
			fs, err := flow.Uniform(flow.GenConfig{
				N: cfg.N, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
				TimeQuantum: q, Hosts: ft.Hosts, Seed: cfg.Seed + int64(run),
			})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: %w", err)
			}
			model := ablateModel(cfg, fs)
			res, err := solve(dcnflow.SolverDCFSR, ft.Graph, fs, model,
				dcnflow.WithDCFSROptions(core.DCFSROptions{
					Seed:   cfg.Seed + int64(run),
					Solver: mcfsolve.Options{MaxIters: cfg.SolverIters},
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: lambda ablation: %w", err)
			}
			out := cellResult{lambda: res.Stats["lambda"]}
			if res.LowerBound > 0 {
				out.ratio, out.haveLB = res.Energy/res.LowerBound, true
			}
			return out, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	out := &LambdaResult{Config: cfg}
	for qi, q := range quanta {
		var ratios, lambdas []float64
		for run := 0; run < cfg.Runs; run++ {
			c := results[qi*cfg.Runs+run]
			if c.haveLB {
				ratios = append(ratios, c.ratio)
			}
			lambdas = append(lambdas, c.lambda)
		}
		out.Points = append(out.Points, LambdaPoint{
			Quantum: q,
			Lambda:  stats.Mean(lambdas),
			Ratio:   stats.Mean(ratios),
		})
	}
	return out, nil
}

// RoundingPoint is one row of the A2 ablation.
type RoundingPoint struct {
	Attempts     int
	FeasibleRate float64 // fraction of runs ending capacity-feasible
	MeanEnergy   float64 // mean energy of the returned assignment
}

// RoundingResult is the A2 (re-rounding budget) ablation on a
// capacity-tight instance.
type RoundingResult struct {
	Config AblateConfig
	Points []RoundingPoint
}

// Table renders the A2 series.
func (r *RoundingResult) Table() string {
	tb := stats.NewTable("attempts", "feasible", "energy")
	for _, p := range r.Points {
		tb.AddRow(p.Attempts, p.FeasibleRate, p.MeanEnergy)
	}
	return tb.String()
}

// RunAblationRounding sweeps MaxRoundingAttempts on a deliberately tight
// parallel-links instance where a single draw frequently violates C.
func RunAblationRounding(cfg AblateConfig, attempts []int) (*RoundingResult, error) {
	cfg = cfg.withDefaults()
	if len(attempts) == 0 {
		attempts = []int{1, 2, 5, 10, 50}
	}
	top, src, dst, err := topology.ParallelLinks(4, 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	// Six flows of density 0.9 over four C=2 links: feasible iff no link
	// carries three flows, so a uniform draw violates capacity often but
	// not always — exactly the regime where retries matter.
	raw := make([]flow.Flow, 6)
	for i := range raw {
		raw[i] = flow.Flow{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 0.9}
	}
	fs, err := flow.NewSet(raw)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	model := power.Model{Sigma: 1, Mu: 1, Alpha: cfg.Alpha, C: 2}
	type cellResult struct {
		energy   float64
		feasible bool
	}
	grid := newGrid(attempts, cfg.Runs)
	results, err := sweep.Map(context.Background(), grid.size(), gridWorkers(cfg.Workers),
		func(_ context.Context, i, _ int) (cellResult, error) {
			att, run := grid.cell(i)
			res, err := solve(dcnflow.SolverDCFSR, top.Graph, fs, model,
				dcnflow.WithDCFSROptions(core.DCFSROptions{
					Seed:                cfg.Seed + int64(run),
					MaxRoundingAttempts: att,
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: rounding ablation: %w", err)
			}
			return cellResult{energy: res.Energy, feasible: res.Stats["capacity_feasible"] == 1}, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	out := &RoundingResult{Config: cfg}
	for ai, att := range attempts {
		var feasible int
		var energies []float64
		for run := 0; run < cfg.Runs; run++ {
			c := results[ai*cfg.Runs+run]
			if c.feasible {
				feasible++
			}
			energies = append(energies, c.energy)
		}
		out.Points = append(out.Points, RoundingPoint{
			Attempts:     att,
			FeasibleRate: float64(feasible) / float64(cfg.Runs),
			MeanEnergy:   stats.Mean(energies),
		})
	}
	return out, nil
}

// SurrogatePoint is one row of the A3 ablation.
type SurrogatePoint struct {
	Cost        string
	Energy      float64 // mean total energy of RS under the full f
	ActiveLinks float64 // mean powered-on links
}

// SurrogateResult is the A3 (relaxation cost) ablation: rounding from the
// envelope-cost relaxation should power fewer links than rounding from the
// dynamic-only relaxation, because the envelope charges idle power
// proportionally and rewards consolidation.
type SurrogateResult struct {
	Config AblateConfig
	Points []SurrogatePoint
}

// Table renders the A3 comparison.
func (r *SurrogateResult) Table() string {
	tb := stats.NewTable("relaxation cost", "RS energy", "active links")
	for _, p := range r.Points {
		tb.AddRow(p.Cost, p.Energy, p.ActiveLinks)
	}
	return tb.String()
}

// RunAblationSurrogate compares CostDynamic and CostEnvelope relaxations on
// identical workloads and seeds.
func RunAblationSurrogate(cfg AblateConfig) (*SurrogateResult, error) {
	cfg = cfg.withDefaults()
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	kinds := []struct {
		name string
		cost mcfsolve.CostKind
	}{
		{"dynamic (mu*x^a)", mcfsolve.CostDynamic},
		{"envelope of f", mcfsolve.CostEnvelope},
	}
	type cellResult struct {
		energy, links float64
	}
	results, err := sweep.Map(context.Background(), len(kinds)*cfg.Runs, gridWorkers(cfg.Workers),
		func(_ context.Context, i, _ int) (cellResult, error) {
			kind, run := kinds[i/cfg.Runs], i%cfg.Runs
			fs, err := flow.Uniform(flow.GenConfig{
				N: cfg.N, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
				Hosts: ft.Hosts, Seed: cfg.Seed + int64(run),
			})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: %w", err)
			}
			model := ablateModel(cfg, fs)
			res, err := solve(dcnflow.SolverDCFSR, ft.Graph, fs, model,
				dcnflow.WithDCFSROptions(core.DCFSROptions{
					Seed:   cfg.Seed + int64(run),
					Solver: mcfsolve.Options{Cost: kind.cost, MaxIters: cfg.SolverIters},
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: surrogate ablation: %w", err)
			}
			return cellResult{energy: res.Energy, links: res.Stats["links_on"]}, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	out := &SurrogateResult{Config: cfg}
	for ki, kind := range kinds {
		var energies, links []float64
		for run := 0; run < cfg.Runs; run++ {
			c := results[ki*cfg.Runs+run]
			energies = append(energies, c.energy)
			links = append(links, c.links)
		}
		out.Points = append(out.Points, SurrogatePoint{
			Cost:        kind.name,
			Energy:      stats.Mean(energies),
			ActiveLinks: stats.Mean(links),
		})
	}
	return out, nil
}

// ablateModel mirrors fig2Model for the ablation configs.
func ablateModel(cfg AblateConfig, fs *flow.Set) power.Model {
	ropt := 3 * fs.MeanDensity()
	if ropt <= 0 {
		ropt = 1
	}
	return power.Model{
		Sigma: power.SigmaForRopt(1, cfg.Alpha, ropt),
		Mu:    1,
		Alpha: cfg.Alpha,
		C:     1e12,
	}
}
