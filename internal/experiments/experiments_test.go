package experiments

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRunExample1MatchesPaper(t *testing.T) {
	res, err := RunExample1()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelError > 1e-9 {
		t.Fatalf("max relative error %v vs the closed form; table:\n%s", res.MaxRelError, res.Table())
	}
	if !strings.Contains(res.Table(), "s1") {
		t.Fatal("table missing s1 row")
	}
}

func TestRunFig2SmallShape(t *testing.T) {
	// A reduced Fig. 2 (k=4, 2 runs, small n) must exhibit the paper's
	// qualitative shape: both ratios >= 1 and RS <= SP+MCF on average.
	res, err := RunFig2(Fig2Config{
		Alpha:       2,
		FlowCounts:  []int{10, 20},
		Runs:        2,
		FatTreeK:    4,
		Seed:        1,
		SolverIters: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.RS < 1-1e-6 {
			t.Fatalf("n=%d: RS ratio %v < 1 (below lower bound)", p.N, p.RS)
		}
		if p.SPMCF < 1-1e-6 {
			t.Fatalf("n=%d: SP+MCF ratio %v < 1", p.N, p.SPMCF)
		}
		if p.RS > p.SPMCF*1.05 {
			t.Fatalf("n=%d: RS ratio %v clearly above SP+MCF %v", p.N, p.RS, p.SPMCF)
		}
		if p.LB <= 0 {
			t.Fatalf("n=%d: LB %v", p.N, p.LB)
		}
	}
	out := res.Table()
	for _, want := range []string{"RS/LB", "SP+MCF/LB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunHardness(t *testing.T) {
	res, err := RunHardness(HardnessConfig{M: 3, B: 9, Alpha: 2, Seed: 2, Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.RSRatio < 1-1e-6 {
		t.Fatalf("RS ratio %v below 1 — RS beat the proven optimum", res.RSRatio)
	}
	if res.LowerBound > res.Optimal*(1+1e-6) {
		t.Fatalf("fractional LB %v above integral optimum %v", res.LowerBound, res.Optimal)
	}
	if res.RSRatio > 3 {
		t.Fatalf("RS ratio %v implausibly bad on the gadget", res.RSRatio)
	}
	if !strings.Contains(res.Table(), "partition optimum") {
		t.Fatal("table missing optimum row")
	}
}

func TestTheorem3Gamma(t *testing.T) {
	// gamma(2) = 1.5 * (1 + ((4/9) - 1)/2) = 1.5 * (1 - 5/18) = 1.0833...
	want := 1.5 * (1 + (math.Pow(2.0/3.0, 2)-1)/2)
	if got := Theorem3Gamma(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("gamma(2) = %v, want %v", got, want)
	}
	if Theorem3Gamma(4) <= 1 {
		t.Fatalf("gamma(4) = %v, want > 1", Theorem3Gamma(4))
	}
}

func TestRunAblationLambda(t *testing.T) {
	res, err := RunAblationLambda(
		AblateConfig{N: 12, Runs: 2, Seed: 3, SolverIters: 20},
		[]float64{20, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	// A finer time grid must grow lambda.
	if res.Points[1].Lambda <= res.Points[0].Lambda {
		t.Fatalf("lambda did not grow when the quantum shrank: %+v", res.Points)
	}
	for _, p := range res.Points {
		if p.Ratio < 1-1e-6 {
			t.Fatalf("ratio %v below 1", p.Ratio)
		}
	}
}

func TestRunAblationRounding(t *testing.T) {
	res, err := RunAblationRounding(AblateConfig{Runs: 4, Seed: 4}, []int{1, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	// More attempts cannot hurt feasibility.
	if res.Points[1].FeasibleRate < res.Points[0].FeasibleRate {
		t.Fatalf("feasibility decreased with attempts: %+v", res.Points)
	}
	if res.Points[1].FeasibleRate <= 0 {
		t.Fatal("50 attempts never found a feasible draw on the tight instance")
	}
}

func TestRunAblationSurrogate(t *testing.T) {
	res, err := RunAblationSurrogate(AblateConfig{N: 15, Runs: 2, Seed: 5, SolverIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	var dyn, env SurrogatePoint
	for _, p := range res.Points {
		if strings.Contains(p.Cost, "envelope") {
			env = p
		} else {
			dyn = p
		}
	}
	// The envelope relaxation should not power on more links on average.
	if env.ActiveLinks > dyn.ActiveLinks*1.15 {
		t.Fatalf("envelope powered more links (%v) than dynamic (%v)", env.ActiveLinks, dyn.ActiveLinks)
	}
}

func TestRunOnlineComparison(t *testing.T) {
	res, err := RunOnlineComparison(
		OnlineConfig{
			AblateConfig: AblateConfig{N: 10, Runs: 2, Seed: 9, SolverIters: 15},
			Workload:     "uniform",
		},
		[]int{8, 16},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Greedy < 1-1e-6 || p.Rolling < 1-1e-6 || p.Offline < 1-1e-6 {
			t.Fatalf("ratio below lower bound: %+v", p)
		}
		// Both online schemes must stay in the same ballpark as offline RS
		// on mild uniform workloads.
		if p.Greedy > 3*p.Offline || p.Rolling > 3*p.Offline {
			t.Fatalf("online ratios implausibly worse than offline: %+v", p)
		}
	}
	if !strings.Contains(res.Table(), "rolling/LB") {
		t.Fatal("table missing rolling column")
	}
}

// TestRunOnlineComparisonDiurnalRollingWins pins the headline claim of the
// online extension: on the diurnal workload, rolling-horizon
// re-optimization strictly beats the irrevocable marginal-cost greedy on
// mean total energy (both normalised by the shared offline lower bound),
// with the simulator validating every schedule inside the runner.
func TestRunOnlineComparisonDiurnalRollingWins(t *testing.T) {
	res, err := RunOnlineComparison(
		OnlineConfig{AblateConfig: AblateConfig{Runs: 3, Seed: 1, SolverIters: 25}},
		[]int{40, 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Workload != "diurnal" {
		t.Fatalf("default workload = %q, want diurnal", res.Config.Workload)
	}
	for _, p := range res.Points {
		if p.Rolling >= p.Greedy {
			t.Fatalf("n=%d: rolling %v did not beat greedy %v", p.N, p.Rolling, p.Greedy)
		}
	}
}

func TestRunOnlineComparisonIncast(t *testing.T) {
	res, err := RunOnlineComparison(
		OnlineConfig{
			AblateConfig: AblateConfig{Runs: 1, Seed: 3, SolverIters: 15},
			Workload:     "incast",
		},
		[]int{16},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Rolling < 1-1e-6 {
		t.Fatalf("incast points: %+v", res.Points)
	}
	if _, err := RunOnlineComparison(OnlineConfig{Workload: "bogus"}, []int{4}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunExactComparison(t *testing.T) {
	res, err := RunExactComparison(3, 2, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for _, p := range res.Points {
		if p.RSOverExact < 1-1e-6 {
			t.Fatalf("RS beat the exact optimum: %+v", p)
		}
		if p.LBOverExact > 1+1e-6 {
			t.Fatalf("LB above the exact optimum: %+v", p)
		}
		if p.LBOverExact <= 0 {
			t.Fatalf("degenerate LB ratio: %+v", p)
		}
	}
	if !strings.Contains(res.Table(), "RS/exact") {
		t.Fatal("table missing RS/exact column")
	}
}

func TestFig2ConfigDefaults(t *testing.T) {
	cfg := Fig2Config{}.withDefaults()
	if cfg.Alpha != 2 || cfg.Runs != 10 || cfg.FatTreeK != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if len(cfg.FlowCounts) != 5 || cfg.FlowCounts[0] != 40 || cfg.FlowCounts[4] != 200 {
		t.Fatalf("flow counts = %v, want paper's 40..200", cfg.FlowCounts)
	}
}

func TestAblationTables(t *testing.T) {
	lr := &LambdaResult{Points: []LambdaPoint{{Quantum: 5, Lambda: 20, Ratio: 2}}}
	if !strings.Contains(lr.Table(), "lambda") {
		t.Fatal("lambda table missing header")
	}
	rr := &RoundingResult{Points: []RoundingPoint{{Attempts: 5, FeasibleRate: 0.8, MeanEnergy: 12}}}
	if !strings.Contains(rr.Table(), "feasible") {
		t.Fatal("rounding table missing header")
	}
	sr := &SurrogateResult{Points: []SurrogatePoint{{Cost: "envelope of f", Energy: 10, ActiveLinks: 3}}}
	if !strings.Contains(sr.Table(), "envelope of f") {
		t.Fatal("surrogate table missing row")
	}
	or := &OnlineResult{Points: []OnlinePoint{{N: 10, Greedy: 1.2, Rolling: 1.1, Offline: 1.3}}}
	if !strings.Contains(or.Table(), "greedy/LB") || !strings.Contains(or.Table(), "rolling/LB") {
		t.Fatal("online table missing header")
	}
	er := &ExactResult{Points: []ExactPoint{{N: 2, RSOverExact: 1.1, LBOverExact: 0.9}}}
	if !strings.Contains(er.Table(), "LB/exact") {
		t.Fatal("exact table missing header")
	}
}

func TestFig2IdleExtensionModel(t *testing.T) {
	// With IdleRoptMultiple > 0 the model must carry positive idle power
	// and place Ropt at the requested multiple of the mean density.
	res, err := RunFig2(Fig2Config{
		Alpha: 2, FlowCounts: []int{6}, Runs: 1, FatTreeK: 4,
		Seed: 2, SolverIters: 10, IdleRoptMultiple: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].LB <= 0 {
		t.Fatalf("idle extension run broken: %+v", res.Points)
	}
	// Ratios remain >= 1 in the extension regime too.
	if res.Points[0].RS < 1-1e-6 || res.Points[0].SPMCF < 1-1e-6 {
		t.Fatalf("ratios below 1: %+v", res.Points[0])
	}
}

func TestHardnessDefaultsAndCustomLinks(t *testing.T) {
	cfg := HardnessConfig{}.withDefaults()
	if cfg.M != 4 || cfg.B != 12 || cfg.Alpha != 2 || cfg.Links != 32 || cfg.Runs != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	res, err := RunHardness(HardnessConfig{M: 2, B: 6, Links: 5, Runs: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Links != 5 {
		t.Fatalf("custom links not honoured: %+v", res.Config)
	}
}

// TestGridWorkersDoNotAffectResults pins the rebased grids' contract: the
// sweep pool under the experiment runners is a pure wall-clock lever, so
// Workers=4 must reproduce the sequential results bit for bit.
func TestGridWorkersDoNotAffectResults(t *testing.T) {
	fig := Fig2Config{Alpha: 2, FlowCounts: []int{6, 10}, Runs: 2, FatTreeK: 4, Seed: 1, SolverIters: 10}
	seq, err := RunFig2(fig)
	if err != nil {
		t.Fatal(err)
	}
	fig.Workers = 4
	par, err := RunFig2(fig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("fig2 points differ across worker counts:\n%+v\n%+v", seq.Points, par.Points)
	}

	onl := OnlineConfig{AblateConfig: AblateConfig{N: 8, Runs: 2, Seed: 9, SolverIters: 10}, Workload: "uniform"}
	oseq, err := RunOnlineComparison(onl, []int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	onl.Workers = 4
	opar, err := RunOnlineComparison(onl, []int{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oseq.Points, opar.Points) {
		t.Errorf("online points differ across worker counts:\n%+v\n%+v", oseq.Points, opar.Points)
	}

	lam := AblateConfig{N: 8, Runs: 2, Seed: 3, SolverIters: 10}
	lseq, err := RunAblationLambda(lam, []float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	lam.Workers = 4
	lpar, err := RunAblationLambda(lam, []float64{10, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lseq.Points, lpar.Points) {
		t.Errorf("lambda points differ across worker counts:\n%+v\n%+v", lseq.Points, lpar.Points)
	}
}
