package experiments

import (
	"context"
	"fmt"
	"math"

	"dcnflow"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/topology"
)

// Example1Result reproduces the paper's Fig. 1 / Example 1: two flows on a
// three-node line network with f(x) = x^2, whose optimal rates satisfy
// sqrt(2)*s1 = s2 = (8 + 6*sqrt2)/3.
type Example1Result struct {
	// S1, S2 are the rates computed by Most-Critical-First.
	S1, S2 float64
	// WantS1, WantS2 are the paper's analytic optima.
	WantS1, WantS2 float64
	// Energy and WantEnergy compare objective values.
	Energy, WantEnergy float64
	// MaxRelError is the largest relative deviation across the three
	// quantities.
	MaxRelError float64
}

// Table renders the comparison.
func (r *Example1Result) Table() string {
	tb := stats.NewTable("quantity", "paper", "measured", "rel.err")
	rel := func(want, got float64) float64 {
		if want == 0 {
			return 0
		}
		return math.Abs(got-want) / want
	}
	tb.AddRow("s1", r.WantS1, r.S1, rel(r.WantS1, r.S1))
	tb.AddRow("s2", r.WantS2, r.S2, rel(r.WantS2, r.S2))
	tb.AddRow("energy", r.WantEnergy, r.Energy, rel(r.WantEnergy, r.Energy))
	return tb.String()
}

// RunExample1 solves the Example 1 instance with Most-Critical-First and
// compares against the closed-form optimum.
func RunExample1() (*Example1Result, error) {
	line, err := topology.Line(3, 1e9)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	fs, err := flow.NewSet([]flow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6}, // j1
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8}, // j2
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := line.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		paths[f.ID] = p
	}
	model := power.Model{Sigma: 0, Mu: 1, Alpha: 2, C: 1e9}
	inst, err := dcnflow.NewInstanceBuilder().
		Graph(line.Graph).Flows(fs).Model(model).Routing(paths).Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	sol, err := dcnflow.Solve(context.Background(), dcnflow.SolverDCFSMCF, inst)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	wantS2 := (8 + 6*math.Sqrt2) / 3
	wantS1 := wantS2 / math.Sqrt2
	out := &Example1Result{
		S1:         sol.Schedule.FlowSchedule(0).MaxRate(),
		S2:         sol.Schedule.FlowSchedule(1).MaxRate(),
		WantS1:     wantS1,
		WantS2:     wantS2,
		Energy:     sol.Schedule.EnergyDynamic(model),
		WantEnergy: 12*wantS1 + 8*wantS2,
	}
	for _, pair := range [][2]float64{{out.WantS1, out.S1}, {out.WantS2, out.S2}, {out.WantEnergy, out.Energy}} {
		if pair[0] == 0 {
			continue
		}
		if rel := math.Abs(pair[1]-pair[0]) / pair[0]; rel > out.MaxRelError {
			out.MaxRelError = rel
		}
	}
	return out, nil
}
