// Package experiments contains one runner per paper artifact (DESIGN.md
// per-experiment index): Fig. 2, Example 1, the Theorem 2/3 hardness
// constructions and the ablations A1-A3. Each runner returns structured
// results plus an aligned text table matching the series the paper reports.
package experiments

import (
	"context"
	"fmt"

	"dcnflow"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/sweep"
	"dcnflow/internal/topology"
)

// Fig2Config parameterises the Fig. 2 reproduction (Section V-C): a
// fat-tree with 80 switches / 128 servers, horizon [1, 100], spans uniform,
// sizes N(10, 3), flow counts 40..200, values normalised by the fractional
// lower bound and averaged over independent runs.
type Fig2Config struct {
	// Alpha is the power exponent: the paper evaluates x^2 and x^4.
	Alpha float64
	// FlowCounts are the x-axis points; default {40, 80, 120, 160, 200}.
	FlowCounts []int
	// Runs is the number of independent workloads per point; paper: 10.
	Runs int
	// FatTreeK selects the topology; k=8 gives the paper's 80 switches and
	// 128 servers.
	FatTreeK int
	// Seed derives per-run workload and rounding seeds.
	Seed int64
	// SolverIters bounds Frank–Wolfe iterations per interval (quality vs
	// time knob); default 40.
	SolverIters int
	// IdleRoptMultiple selects the idle power. Zero reproduces the paper's
	// Section V-C setup exactly: pure speed-scaling power x^alpha
	// (sigma = 0). A positive value is the combined-model extension: sigma
	// is set so that Ropt equals this multiple of the mean flow density
	// (Lemma 3 inverted), adding per-active-link idle energy to both
	// schemes and to the lower bound.
	IdleRoptMultiple float64
	// Parallelism bounds concurrent interval solves.
	Parallelism int
	// Workers bounds concurrent (n, run) grid cells on the sweep pool.
	// Default 1 (the relaxation already parallelises across intervals);
	// the value never affects results — cell seeds derive from grid
	// coordinates and the pool collects by index.
	Workers int
}

func (c Fig2Config) withDefaults() Fig2Config {
	if c.Alpha == 0 {
		c.Alpha = 2
	}
	if len(c.FlowCounts) == 0 {
		c.FlowCounts = []int{40, 80, 120, 160, 200}
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.FatTreeK == 0 {
		c.FatTreeK = 8
	}
	if c.SolverIters <= 0 {
		c.SolverIters = 40
	}
	return c
}

// Fig2Point is one x-axis point of the figure.
type Fig2Point struct {
	N int
	// RS and SPMCF are energies normalised by the lower bound (mean over
	// runs); the LB series itself is identically 1.
	RS, SPMCF float64
	// RSStd and SPMCFStd are sample standard deviations of the ratios.
	RSStd, SPMCFStd float64
	// LB is the mean un-normalised lower bound, for reference.
	LB float64
}

// Fig2Result is the reproduced figure.
type Fig2Result struct {
	Config Fig2Config
	Points []Fig2Point
}

// Table renders the figure's series as text.
func (r *Fig2Result) Table() string {
	tb := stats.NewTable("n", "LB", "RS/LB", "±", "SP+MCF/LB", "±")
	for _, p := range r.Points {
		tb.AddRow(p.N, 1.0, p.RS, p.RSStd, p.SPMCF, p.SPMCFStd)
	}
	return tb.String()
}

// RunFig2 reproduces Fig. 2 for one power function x^alpha. The (n, run)
// grid executes on the shared sweep pool (internal/sweep): per-cell seeds
// derive from grid coordinates and results are collected in cell order, so
// Workers is a pure wall-clock lever.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	cfg = cfg.withDefaults()
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	type cellResult struct {
		rs, sp, lb float64
	}
	grid := newGrid(cfg.FlowCounts, cfg.Runs)
	results, err := sweep.Map(context.Background(), grid.size(), gridWorkers(cfg.Workers),
		func(_ context.Context, i, _ int) (cellResult, error) {
			n, run := grid.cell(i)
			seed := cfg.Seed + int64(1000*n+run)
			fs, err := flow.Uniform(flow.GenConfig{
				N: n, T0: 1, T1: 100,
				SizeMean: 10, SizeStddev: 3,
				Hosts: ft.Hosts, Seed: seed,
			})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: workload n=%d run=%d: %w", n, run, err)
			}
			model := fig2Model(cfg, fs)
			rs, err := solve(dcnflow.SolverDCFSR, ft.Graph, fs, model,
				dcnflow.WithDCFSROptions(core.DCFSROptions{
					Seed:        seed,
					Solver:      mcfsolve.Options{MaxIters: cfg.SolverIters},
					Parallelism: cfg.Parallelism,
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: RS n=%d run=%d: %w", n, run, err)
			}
			sp, err := solve(dcnflow.SolverSPMCF, ft.Graph, fs, model)
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: SP+MCF n=%d run=%d: %w", n, run, err)
			}
			lb := rs.LowerBound
			if lb <= 0 {
				return cellResult{}, fmt.Errorf("experiments: nonpositive lower bound n=%d run=%d", n, run)
			}
			return cellResult{rs: rs.Energy / lb, sp: sp.Energy / lb, lb: lb}, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{Config: cfg}
	for pi, n := range cfg.FlowCounts {
		var rsRatios, spRatios, lbs []float64
		for run := 0; run < cfg.Runs; run++ {
			c := results[pi*cfg.Runs+run]
			rsRatios = append(rsRatios, c.rs)
			spRatios = append(spRatios, c.sp)
			lbs = append(lbs, c.lb)
		}
		out.Points = append(out.Points, Fig2Point{
			N:        n,
			RS:       stats.Mean(rsRatios),
			RSStd:    stats.Stddev(rsRatios),
			SPMCF:    stats.Mean(spRatios),
			SPMCFStd: stats.Stddev(spRatios),
			LB:       stats.Mean(lbs),
		})
	}
	return out, nil
}

// fig2Model builds the power model for a workload: mu = 1, alpha from the
// config, C effectively uncapped (the paper's DCFS analysis relaxes it).
// The default sigma = 0 matches the paper's "power consumption functions
// x^2 or x^4"; IdleRoptMultiple > 0 enables the combined-model extension.
func fig2Model(cfg Fig2Config, fs *flow.Set) power.Model {
	var sigma float64
	if cfg.IdleRoptMultiple > 0 {
		ropt := cfg.IdleRoptMultiple * fs.MeanDensity()
		if ropt <= 0 {
			ropt = 1
		}
		sigma = power.SigmaForRopt(1, cfg.Alpha, ropt)
	}
	return power.Model{
		Sigma: sigma,
		Mu:    1,
		Alpha: cfg.Alpha,
		C:     1e12,
	}
}
