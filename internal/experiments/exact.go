package experiments

import (
	"fmt"
	"math/rand"

	"dcnflow"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/stats"
	"dcnflow/internal/topology"
)

// ExactPoint is one row of the EXT-EXACT comparison.
type ExactPoint struct {
	N int
	// RSOverExact is the mean ratio of Random-Schedule energy to the true
	// optimum (brute-force over path assignments, optimal scheduling per
	// assignment).
	RSOverExact float64
	// LBOverExact is the mean ratio of the fractional lower bound to the
	// true optimum, measuring how loose the Fig. 2 normaliser is.
	LBOverExact float64
}

// ExactResult is the EXT-EXACT experiment: the measured approximation
// quality of Random-Schedule against the *exact* optimum (not just the
// fractional bound), on instances small enough to enumerate.
type ExactResult struct {
	Runs   int
	Points []ExactPoint
}

// Table renders the series.
func (r *ExactResult) Table() string {
	tb := stats.NewTable("n", "RS/exact", "LB/exact")
	for _, p := range r.Points {
		tb.AddRow(p.N, p.RSOverExact, p.LBOverExact)
	}
	return tb.String()
}

// RunExactComparison measures RS and LB against the brute-force optimum on
// small diamond-topology instances (4 parallel two-hop routes).
func RunExactComparison(seed int64, runs int, flowCounts []int) (*ExactResult, error) {
	if runs <= 0 {
		runs = 5
	}
	if len(flowCounts) == 0 {
		flowCounts = []int{2, 3, 4}
	}
	top, src, dst, err := topology.ParallelLinks(4, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := &ExactResult{Runs: runs}
	for _, n := range flowCounts {
		var rsRatios, lbRatios []float64
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(seed + int64(100*n+run)))
			raw := make([]flow.Flow, n)
			for i := range raw {
				r := rng.Float64() * 4
				raw[i] = flow.Flow{
					Src: src, Dst: dst,
					Release: r, Deadline: r + 1 + rng.Float64()*4,
					Size: 1 + rng.Float64()*6,
				}
			}
			fs, err := flow.NewSet(raw)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			model := power.Model{
				Sigma: power.SigmaForRopt(1, 2, 2*fs.MeanDensity()),
				Mu:    1, Alpha: 2, C: 1e12,
			}
			exact, err := solve(dcnflow.SolverExact, top.Graph, fs, model,
				dcnflow.WithExactOptions(core.ExactOptions{PathsPerFlow: 4}))
			if err != nil {
				return nil, fmt.Errorf("experiments: exact n=%d run=%d: %w", n, run, err)
			}
			rs, err := solve(dcnflow.SolverDCFSR, top.Graph, fs, model,
				dcnflow.WithSeed(seed+int64(run)))
			if err != nil {
				return nil, fmt.Errorf("experiments: rs n=%d run=%d: %w", n, run, err)
			}
			if exact.Energy > 0 {
				rsRatios = append(rsRatios, rs.Energy/exact.Energy)
				lbRatios = append(lbRatios, rs.LowerBound/exact.Energy)
			}
		}
		out.Points = append(out.Points, ExactPoint{
			N:           n,
			RSOverExact: stats.Mean(rsRatios),
			LBOverExact: stats.Mean(lbRatios),
		})
	}
	return out, nil
}
