package experiments

import (
	"fmt"

	"dcnflow/internal/core"
	"dcnflow/internal/decision"
	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/power"
	"dcnflow/internal/sim"
	"dcnflow/internal/stats"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

// DecisionConfig configures the O2 decision-regret experiment and the
// `dcnflow decisions` record/replay/score modes.
type DecisionConfig struct {
	OnlineConfig
	// TopK bounds the alternative paths replayed per recorded admission.
	// Default 2.
	TopK int
	// MaxDecisions bounds the admit records the counterfactual replayer
	// expands (each costs one full re-run). Default 4.
	MaxDecisions int
	// MaxDemos bounds the greedy-vs-rolling forced-path demonstrations.
	// Default 4.
	MaxDemos int
	// Fitness weighs the run outcomes; the zero value selects
	// decision.DefaultFitness (energy only).
	Fitness decision.Fitness
}

func (c DecisionConfig) withDefaults() DecisionConfig {
	c.OnlineConfig = c.OnlineConfig.withDefaults()
	if c.TopK <= 0 {
		c.TopK = 2
	}
	if c.MaxDecisions <= 0 {
		c.MaxDecisions = 4
	}
	if c.MaxDemos <= 0 {
		c.MaxDemos = 4
	}
	if c.Fitness == (decision.Fitness{}) {
		c.Fitness = decision.DefaultFitness()
	}
	return c
}

// meta packages the run description a recorded log needs for replay.
func (c DecisionConfig) meta(scheduler string) decision.Meta {
	return decision.Meta{
		Scheduler: scheduler,
		Workload:  c.Workload,
		N:         c.N,
		FatTreeK:  c.FatTreeK,
		Seed:      c.Seed,
		Alpha:     c.Alpha,
		Iters:     c.SolverIters,
		Epoch:     c.Epoch,
	}
}

// decisionConfigFromMeta inverts DecisionConfig.meta: the experiment
// configuration that reproduces a recorded run.
func decisionConfigFromMeta(m decision.Meta) DecisionConfig {
	return DecisionConfig{OnlineConfig: OnlineConfig{
		AblateConfig: AblateConfig{
			N: m.N, FatTreeK: m.FatTreeK, Seed: m.Seed,
			Alpha: m.Alpha, SolverIters: m.Iters,
		},
		Workload: m.Workload,
		Epoch:    m.Epoch,
	}}.withDefaults()
}

// DecisionInstance rebuilds the exact instance a decision log was recorded
// on from its meta header: the fat-tree fabric, the workload draw, and the
// O1 evaluation power model (sigma = 0).
func DecisionInstance(m decision.Meta) (*topology.Topology, *flow.Set, power.Model, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, power.Model{}, err
	}
	cfg := decisionConfigFromMeta(m)
	return decisionInstance(cfg)
}

func decisionInstance(cfg DecisionConfig) (*topology.Topology, *flow.Set, power.Model, error) {
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, nil, power.Model{}, fmt.Errorf("experiments: %w", err)
	}
	fs, err := OnlineWorkloadInstance(cfg.OnlineConfig, ft, cfg.N, cfg.Seed)
	if err != nil {
		return nil, nil, power.Model{}, fmt.Errorf("experiments: %w", err)
	}
	model := ablateModel(cfg.AblateConfig, fs)
	model.Sigma = 0
	return ft, fs, model, nil
}

// decisionEngine builds the recorded scheduler with an optional recorder
// and overrides attached — the one construction path shared by recording,
// the replay factory, and the forced-path demonstrations.
func decisionEngine(scheduler string, cfg DecisionConfig, ft *topology.Topology, fs *flow.Set,
	m power.Model, rec decision.Recorder, ov *decision.Overrides) (sim.OnlineEngine, error) {
	t0, t1 := fs.Horizon()
	horizon := timeline.Interval{Start: t0, End: t1}
	switch scheduler {
	case "greedy":
		return online.New(ft.Graph, m, horizon, online.Options{Recorder: rec, Overrides: ov})
	case "rolling":
		var policy online.ReplanPolicy = online.ArrivalCount{N: 1}
		if cfg.Epoch > 0 {
			policy = online.FixedPeriod{Period: cfg.Epoch}
		}
		return online.NewRolling(ft.Graph, m, horizon, online.RollingOptions{
			Policy: policy,
			DCFSR: core.DCFSROptions{
				Seed:      cfg.Seed,
				Solver:    mcfsolve.Options{MaxIters: cfg.SolverIters},
				WarmStart: true,
			},
			Recorder:  rec,
			Overrides: ov,
		})
	default:
		return nil, fmt.Errorf("%w: unknown scheduler %q", decision.ErrBadLog, scheduler)
	}
}

// DecisionFactory returns the decision.EngineFactory that rebuilds the
// recorded scheduler from a log's meta header — the glue `dcnflow decisions
// -mode replay` and the O2 experiment hand to decision.Replay.
func DecisionFactory(m decision.Meta, ft *topology.Topology, fs *flow.Set, model power.Model) decision.EngineFactory {
	cfg := decisionConfigFromMeta(m)
	return func(ov *decision.Overrides) (sim.OnlineEngine, error) {
		return decisionEngine(m.Scheduler, cfg, ft, fs, model, nil, ov)
	}
}

// RecordDecisions runs one scheduler ("greedy" or "rolling") over the
// configured workload with a decision recorder attached and returns the
// packaged log alongside the sim-validated replay outcome.
func RecordDecisions(cfg DecisionConfig, scheduler string) (*decision.Log, *sim.ReplayResult, error) {
	cfg = cfg.withDefaults()
	ft, fs, model, err := decisionInstance(cfg)
	if err != nil {
		return nil, nil, err
	}
	mem := &decision.Memory{Meta: cfg.meta(scheduler)}
	rep, err := runDecisionEngine(scheduler, cfg, ft, fs, model, mem, nil)
	if err != nil {
		return nil, nil, err
	}
	return mem.Log(), rep, nil
}

func runDecisionEngine(scheduler string, cfg DecisionConfig, ft *topology.Topology, fs *flow.Set,
	m power.Model, rec decision.Recorder, ov *decision.Overrides) (*sim.ReplayResult, error) {
	engine, err := decisionEngine(scheduler, cfg, ft, fs, m, rec, ov)
	if err != nil {
		return nil, err
	}
	rep, err := sim.ReplayOnline(ft.Graph, fs, m, engine, sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s replay: %w", scheduler, err)
	}
	return rep, nil
}

// DecisionDemo is one forced-path demonstration: a flow where the rolling
// scheduler's chosen path differs from the greedy's, re-run with the
// greedy's choice forced into the rolling run and both full runs scored on
// the weighted fitness. Positive regret means the rolling scheduler's own
// choice beats the greedy's at that decision point.
type DecisionDemo struct {
	Flow flow.ID
	// Epoch is the rolling epoch the decision was taken in.
	Epoch int
	// RollingScore and ForcedScore are the full-run weighted fitness of the
	// recorded run and the greedy-path-forced run (lower better).
	RollingScore float64
	ForcedScore  float64
	// Regret is ForcedScore - RollingScore: what forcing the greedy's path
	// would have cost.
	Regret float64
	// Valid reports the forced run stayed sim-clean (no capacity or
	// deadline violations), so the comparison is apples-to-apples.
	Valid bool
}

// DecisionRegretResult is the O2 experiment outcome.
type DecisionRegretResult struct {
	Config DecisionConfig
	// GreedyLog and RollingLog are the recorded traces.
	GreedyLog, RollingLog *decision.Log
	// Greedy and Rolling are the sim-validated full-run outcomes.
	Greedy, Rolling decision.Outcome
	// Demos are the forced-path demonstrations, recorded-decision order.
	Demos []DecisionDemo
	// Replay is the top-k counterfactual replay of the rolling log.
	Replay *decision.ReplayReport
}

// RollingWins counts demonstrations where the rolling scheduler's choice
// strictly beats the forced greedy choice on weighted fitness.
func (r *DecisionRegretResult) RollingWins() int {
	n := 0
	for _, d := range r.Demos {
		if d.Valid && d.Regret > 0 {
			n++
		}
	}
	return n
}

// Table renders the experiment: the two schedulers' outcomes, then one row
// per forced-path demonstration.
func (r *DecisionRegretResult) Table() string {
	tb := stats.NewTable("scheduler", "energy", "misses", "slack p99", "fitness")
	tb.AddRow("greedy", r.Greedy.Energy, r.Greedy.Misses, r.Greedy.SlackP99, r.Greedy.Score)
	tb.AddRow("rolling", r.Rolling.Energy, r.Rolling.Misses, r.Rolling.SlackP99, r.Rolling.Score)
	out := tb.String()
	if len(r.Demos) > 0 {
		dt := stats.NewTable("flow", "epoch", "rolling fit", "greedy-path fit", "regret", "valid")
		for _, d := range r.Demos {
			dt.AddRow(int(d.Flow), d.Epoch, d.RollingScore, d.ForcedScore, d.Regret, d.Valid)
		}
		out += "\nforced greedy-path counterfactuals (regret > 0: rolling's choice wins):\n" + dt.String()
	}
	return out
}

// RunDecisionRegret is the O2 experiment: record the greedy and rolling
// schedulers on the same diurnal workload, then quantify decision quality
// two ways — (a) for flows the two schedulers routed differently, force the
// greedy's path into the rolling run and measure the weighted-fitness
// regret of that substitution; (b) replay the rolling log's own top-k
// recorded alternatives through decision.Replay for sim-validated
// per-decision regret. Demonstrating at least one decision where the
// rolling choice beats the greedy's (positive regret, Valid) is the
// experiment's acceptance gate.
func RunDecisionRegret(cfg DecisionConfig) (*DecisionRegretResult, error) {
	cfg = cfg.withDefaults()
	ft, fs, model, err := decisionInstance(cfg)
	if err != nil {
		return nil, err
	}
	gMem := &decision.Memory{Meta: cfg.meta("greedy")}
	gRep, err := runDecisionEngine("greedy", cfg, ft, fs, model, gMem, nil)
	if err != nil {
		return nil, err
	}
	rMem := &decision.Memory{Meta: cfg.meta("rolling")}
	rRep, err := runDecisionEngine("rolling", cfg, ft, fs, model, rMem, nil)
	if err != nil {
		return nil, err
	}
	res := &DecisionRegretResult{
		Config:     cfg,
		GreedyLog:  gMem.Log(),
		RollingLog: rMem.Log(),
		Greedy:     scoreReplay(fs, gRep, cfg.Fitness),
		Rolling:    scoreReplay(fs, rRep, cfg.Fitness),
	}

	// (a) Forced-path demonstrations at the decision points where the two
	// schedulers disagreed.
	greedyPath := make(map[flow.ID][]graph.EdgeID)
	for _, rec := range res.GreedyLog.Admits() {
		greedyPath[rec.Flow] = rec.Path
	}
	for _, rec := range res.RollingLog.Admits() {
		if len(res.Demos) == cfg.MaxDemos {
			break
		}
		gp, ok := greedyPath[rec.Flow]
		if !ok || graph.ComparePathKeys(gp, rec.Path) == 0 {
			continue
		}
		forced, err := runDecisionEngine("rolling", cfg, ft, fs, model, nil,
			&decision.Overrides{ForcePath: map[flow.ID][]graph.EdgeID{rec.Flow: gp}})
		if err != nil {
			return nil, fmt.Errorf("experiments: forcing greedy path on flow %d: %w", rec.Flow, err)
		}
		out := scoreReplay(fs, forced, cfg.Fitness)
		res.Demos = append(res.Demos, DecisionDemo{
			Flow: rec.Flow, Epoch: rec.Epoch,
			RollingScore: res.Rolling.Score, ForcedScore: out.Score,
			Regret: out.Score - res.Rolling.Score,
			Valid:  out.CapacityViolations == 0 && out.Misses <= res.Rolling.Misses,
		})
	}

	// (b) Counterfactual replay of the rolling log's own alternatives.
	res.Replay, err = decision.Replay(decision.ReplayInput{
		Log: res.RollingLog, Graph: ft.Graph, Flows: fs, Model: model,
		Factory: DecisionFactory(res.RollingLog.Meta, ft, fs, model),
		Opts: decision.ReplayOptions{
			TopK: cfg.TopK, MaxDecisions: cfg.MaxDecisions, Fitness: cfg.Fitness,
		},
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// scoreReplay collapses a validated replay outcome to a decision.Outcome
// under the given weights.
func scoreReplay(fs *flow.Set, rep *sim.ReplayResult, f decision.Fitness) decision.Outcome {
	comp := decision.SimComponents(fs, rep.Sim)
	return decision.Outcome{
		Energy:             comp.Energy,
		Misses:             comp.Misses,
		SlackP99:           comp.SlackP99,
		CapacityViolations: rep.CapacityViolations,
		Score:              f.Score(comp),
	}
}
