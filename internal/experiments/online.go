package experiments

import (
	"fmt"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/stats"
	"dcnflow/internal/topology"
)

// OnlinePoint is one row of the online-vs-offline extension experiment.
type OnlinePoint struct {
	N       int
	Online  float64 // online greedy energy / LB
	Offline float64 // offline Random-Schedule energy / LB
}

// OnlineResult is the EXT-ONLINE experiment: the price of irrevocable
// online decisions relative to the offline Random-Schedule, both
// normalised by the shared fractional lower bound.
type OnlineResult struct {
	Config AblateConfig
	Points []OnlinePoint
}

// Table renders the series.
func (r *OnlineResult) Table() string {
	tb := stats.NewTable("n", "online/LB", "offline RS/LB")
	for _, p := range r.Points {
		tb.AddRow(p.N, p.Online, p.Offline)
	}
	return tb.String()
}

// RunOnlineComparison sweeps the flow count and measures online greedy vs
// offline Random-Schedule on identical workloads.
func RunOnlineComparison(cfg AblateConfig, flowCounts []int) (*OnlineResult, error) {
	cfg = cfg.withDefaults()
	if len(flowCounts) == 0 {
		flowCounts = []int{20, 40, 80}
	}
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := &OnlineResult{Config: cfg}
	for _, n := range flowCounts {
		var onRatios, offRatios []float64
		for run := 0; run < cfg.Runs; run++ {
			fs, err := flow.Uniform(flow.GenConfig{
				N: n, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
				Hosts: ft.Hosts, Seed: cfg.Seed + int64(1000*n+run),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			model := ablateModel(cfg, fs)
			model.Sigma = 0 // match the paper's evaluation power function
			off, err := core.SolveDCFSR(core.DCFSRInput{
				Graph: ft.Graph, Flows: fs, Model: model,
				Opts: core.DCFSROptions{
					Seed:   cfg.Seed + int64(run),
					Solver: mcfsolve.Options{MaxIters: cfg.SolverIters},
				},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: online comparison offline leg: %w", err)
			}
			on, err := online.Run(ft.Graph, fs, model, online.Options{})
			if err != nil {
				return nil, fmt.Errorf("experiments: online comparison online leg: %w", err)
			}
			if off.LowerBound > 0 {
				onRatios = append(onRatios, on.Schedule.EnergyTotal(model)/off.LowerBound)
				offRatios = append(offRatios, off.Schedule.EnergyTotal(model)/off.LowerBound)
			}
		}
		out.Points = append(out.Points, OnlinePoint{
			N:       n,
			Online:  stats.Mean(onRatios),
			Offline: stats.Mean(offRatios),
		})
	}
	return out, nil
}
