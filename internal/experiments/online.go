package experiments

import (
	"context"
	"fmt"

	"dcnflow"
	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/online"
	"dcnflow/internal/sim"
	"dcnflow/internal/stats"
	"dcnflow/internal/sweep"
	"dcnflow/internal/topology"
)

// OnlineConfig configures the O1 online comparison experiment.
type OnlineConfig struct {
	AblateConfig
	// Workload selects the arrival pattern: "uniform" (the paper's
	// evaluation workload revealed online), "diurnal" (sinusoidal
	// time-varying load; the default), or "incast" (periodic many-to-one
	// bursts with shared deadlines).
	Workload string
	// Epoch, for workloads where batching is exercised, is reserved for a
	// fixed-period re-plan trigger; zero (the default) re-plans per
	// arrival, the strongest rolling configuration.
	Epoch float64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	c.AblateConfig = c.AblateConfig.withDefaults()
	if c.Workload == "" {
		c.Workload = "diurnal"
	}
	return c
}

// OnlinePoint is one row of the online comparison: the cost of revealing
// flows at release time, for the irrevocable marginal-cost greedy and the
// rolling-horizon re-optimizer, against the clairvoyant offline
// Random-Schedule — all normalised by the shared offline fractional lower
// bound.
type OnlinePoint struct {
	N       int
	Greedy  float64 // online greedy energy / LB
	Rolling float64 // rolling-horizon energy / LB
	Offline float64 // offline Random-Schedule energy / LB
}

// OnlineResult is the O1 experiment outcome. Every scheme on every run is
// validated by the discrete-event simulator (all deadlines met, no capacity
// violations) before its energy enters the series.
type OnlineResult struct {
	Config OnlineConfig
	Points []OnlinePoint
}

// Table renders the series.
func (r *OnlineResult) Table() string {
	tb := stats.NewTable("n", "greedy/LB", "rolling/LB", "offline RS/LB")
	for _, p := range r.Points {
		tb.AddRow(p.N, p.Greedy, p.Rolling, p.Offline)
	}
	return tb.String()
}

// OnlineWorkloadInstance draws one instance of the configured arrival
// pattern — shared by the comparison runner and the CLI's single-run modes
// so both always see identical workloads.
func OnlineWorkloadInstance(cfg OnlineConfig, ft *topology.Topology, n int, seed int64) (*flow.Set, error) {
	switch cfg.Workload {
	case "uniform":
		return flow.Uniform(flow.GenConfig{
			N: n, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
			Hosts: ft.Hosts, Seed: seed,
		})
	case "diurnal":
		return flow.Diurnal(flow.DiurnalConfig{
			N: n, T0: 0, T1: 100, PeakFactor: 5,
			SizeMean: 8, SizeStddev: 2, Hosts: ft.Hosts, Seed: seed,
		})
	case "incast":
		// Periodic many-to-one bursts: waves of fan-in onto rotating
		// receivers, each wave sharing one release and one deadline.
		waves := (n + 7) / 8
		var flows []flow.Flow
		span := 100.0 / float64(waves)
		for w := 0; w < waves; w++ {
			recv := ft.Hosts[w%len(ft.Hosts)]
			release := float64(w) * span
			count := 8
			if rem := n - w*8; rem < count {
				count = rem
			}
			for i := 0; i < count; i++ {
				src := ft.Hosts[(w+1+i*3)%len(ft.Hosts)]
				if src == recv {
					src = ft.Hosts[(w+2+i*3)%len(ft.Hosts)]
				}
				flows = append(flows, flow.Flow{
					Src: src, Dst: recv,
					Release: release, Deadline: release + span*1.5,
					Size: 8,
				})
			}
		}
		return flow.NewSet(flows)
	default:
		return nil, fmt.Errorf("experiments: unknown online workload %q", cfg.Workload)
	}
}

// RunOnlineComparison sweeps the flow count and measures the online greedy,
// the rolling-horizon re-optimizer and the offline Random-Schedule on
// identical workloads, each normalised by the offline fractional lower
// bound; every schedule is validated by the simulator before its energy is
// recorded. The (n, run) grid executes on the shared sweep pool
// (internal/sweep) — Workers in the embedded AblateConfig is a pure
// wall-clock lever.
func RunOnlineComparison(cfg OnlineConfig, flowCounts []int) (*OnlineResult, error) {
	cfg = cfg.withDefaults()
	if len(flowCounts) == 0 {
		flowCounts = []int{20, 40, 80}
	}
	ft, err := topology.FatTree(cfg.FatTreeK, 1e12)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	type cellResult struct {
		greedy, rolling, offline float64
		haveLB                   bool
	}
	grid := newGrid(flowCounts, cfg.Runs)
	results, err := sweep.Map(context.Background(), grid.size(), gridWorkers(cfg.Workers),
		func(_ context.Context, i, _ int) (cellResult, error) {
			n, run := grid.cell(i)
			fs, err := OnlineWorkloadInstance(cfg, ft, n, cfg.Seed+int64(1000*n+run))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: %w", err)
			}
			model := ablateModel(cfg.AblateConfig, fs)
			model.Sigma = 0 // match the paper's evaluation power function
			off, err := solve(dcnflow.SolverDCFSR, ft.Graph, fs, model,
				dcnflow.WithDCFSROptions(core.DCFSROptions{
					Seed:   cfg.Seed + int64(run),
					Solver: mcfsolve.Options{MaxIters: cfg.SolverIters},
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: online comparison offline leg: %w", err)
			}
			greedy, err := solve(dcnflow.SolverGreedyOnline, ft.Graph, fs, model)
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: online comparison greedy leg: %w", err)
			}
			var policy online.ReplanPolicy = online.ArrivalCount{N: 1}
			if cfg.Epoch > 0 {
				policy = online.FixedPeriod{Period: cfg.Epoch}
			}
			roll, err := solve(dcnflow.SolverRollingOnline, ft.Graph, fs, model,
				dcnflow.WithRollingOptions(online.RollingOptions{
					Policy: policy,
					DCFSR: core.DCFSROptions{
						Seed:      cfg.Seed + int64(run),
						Solver:    mcfsolve.Options{MaxIters: cfg.SolverIters},
						WarmStart: true,
					},
				}))
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: online comparison rolling leg: %w", err)
			}
			// Deadline feasibility of every scheme on every run is part of
			// the experiment's contract, not a soft statistic. The rolling
			// solver's replay validation surfaces in its Solution stats.
			if roll.Stats["deadline_violations"] != 0 || roll.Stats["rejected"] != 0 {
				return cellResult{}, fmt.Errorf("experiments: rolling schedule infeasible (n=%d run=%d): %g violations, %g rejected",
					n, run, roll.Stats["deadline_violations"], roll.Stats["rejected"])
			}
			gSim, err := sim.Run(ft.Graph, fs, greedy.Schedule, model, sim.Options{})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: greedy simulation: %w", err)
			}
			oSim, err := sim.Run(ft.Graph, fs, off.Schedule, model, sim.Options{})
			if err != nil {
				return cellResult{}, fmt.Errorf("experiments: offline simulation: %w", err)
			}
			if gSim.DeadlinesMissed != 0 || oSim.DeadlinesMissed != 0 {
				return cellResult{}, fmt.Errorf("experiments: deadline miss (n=%d run=%d): greedy %d, offline %d",
					n, run, gSim.DeadlinesMissed, oSim.DeadlinesMissed)
			}
			if off.LowerBound <= 0 {
				return cellResult{}, nil
			}
			return cellResult{
				greedy:  greedy.Energy / off.LowerBound,
				rolling: roll.Energy / off.LowerBound,
				offline: off.Energy / off.LowerBound,
				haveLB:  true,
			}, nil
		}, nil)
	if err != nil {
		return nil, err
	}
	out := &OnlineResult{Config: cfg}
	for pi, n := range flowCounts {
		var gRatios, rRatios, offRatios []float64
		for run := 0; run < cfg.Runs; run++ {
			c := results[pi*cfg.Runs+run]
			if !c.haveLB {
				continue
			}
			gRatios = append(gRatios, c.greedy)
			rRatios = append(rRatios, c.rolling)
			offRatios = append(offRatios, c.offline)
		}
		out.Points = append(out.Points, OnlinePoint{
			N:       n,
			Greedy:  stats.Mean(gRatios),
			Rolling: stats.Mean(rRatios),
			Offline: stats.Mean(offRatios),
		})
	}
	return out, nil
}
