package experiments

import (
	"strings"
	"testing"
)

// TestDecisionRegretSmoke runs the O2 experiment at a reduced size and pins
// its acceptance gate: sim-clean outcomes for both schedulers, at least one
// demonstrated decision where the rolling choice beats the forced greedy
// path on weighted fitness, and sim-validated counterfactual replay rows.
func TestDecisionRegretSmoke(t *testing.T) {
	cfg := DecisionConfig{
		OnlineConfig: OnlineConfig{AblateConfig: AblateConfig{N: 24, Seed: 5, SolverIters: 25}},
		MaxDemos:     3, MaxDecisions: 3,
	}
	res, err := RunDecisionRegret(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Greedy.Misses != 0 || res.Rolling.Misses != 0 ||
		res.Greedy.CapacityViolations != 0 || res.Rolling.CapacityViolations != 0 {
		t.Fatalf("base runs not sim-clean: greedy %+v rolling %+v", res.Greedy, res.Rolling)
	}
	if res.Rolling.Score >= res.Greedy.Score {
		t.Fatalf("rolling fitness %v does not beat greedy %v", res.Rolling.Score, res.Greedy.Score)
	}
	if len(res.Demos) == 0 {
		t.Fatal("no forced-path demonstrations (schedulers never disagreed)")
	}
	if res.RollingWins() == 0 {
		t.Fatalf("no demonstrated rolling win:\n%s", res.Table())
	}
	if res.Replay == nil || len(res.Replay.Counterfactuals) == 0 {
		t.Fatal("no replay counterfactuals")
	}
	for _, c := range res.Replay.Counterfactuals {
		if c.Err != "" {
			t.Fatalf("counterfactual seq=%d failed: %s", c.Seq, c.Err)
		}
		if !c.Valid {
			t.Fatalf("counterfactual seq=%d not sim-clean: %+v", c.Seq, c.Outcome)
		}
	}
	if err := res.RollingLog.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Table(); !strings.Contains(got, "regret") || !strings.Contains(got, "fitness") {
		t.Fatalf("table missing columns:\n%s", got)
	}
	// The replay factory reproduces the recorded run byte-identically: the
	// base outcome's energy matches the recorded rolling run's.
	if res.Replay.Base.Energy != res.Rolling.Energy {
		t.Fatalf("replay base energy %v != recorded rolling energy %v", res.Replay.Base.Energy, res.Rolling.Energy)
	}
}
