// Package timeline provides the time-interval machinery shared by the
// scheduling algorithms: breakpoint extraction (the set T of release times
// and deadlines, Section V-A), interval decomposition into I_1..I_K, and
// slot sets used to track per-link availability (the "a ~ b" available time
// of Definition 1).
package timeline

import (
	"fmt"
	"math"
	"sort"
)

// Eps is the tolerance used when comparing time values. Two instants closer
// than Eps are considered equal.
const Eps = 1e-9

// Interval is a closed time interval [Start, End].
type Interval struct {
	Start, End float64
}

// Length returns End - Start (never negative).
func (iv Interval) Length() float64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval has (numerically) zero length.
func (iv Interval) Empty() bool { return iv.End-iv.Start <= Eps }

// Contains reports whether t lies in [Start, End].
func (iv Interval) Contains(t float64) bool { return t >= iv.Start-Eps && t <= iv.End+Eps }

// Covers reports whether iv fully contains other.
func (iv Interval) Covers(other Interval) bool {
	return other.Start >= iv.Start-Eps && other.End <= iv.End+Eps
}

// Intersect returns the overlap of two intervals and whether it is
// non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s := math.Max(iv.Start, other.Start)
	e := math.Min(iv.End, other.End)
	if e-s <= Eps {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%g, %g]", iv.Start, iv.End) }

// Breakpoints returns the sorted, deduplicated (within Eps) list of time
// values: the paper's T = {t_0, ..., t_K}.
func Breakpoints(times []float64) []float64 {
	if len(times) == 0 {
		return nil
	}
	sorted := make([]float64, len(times))
	copy(sorted, times)
	sort.Float64s(sorted)
	out := sorted[:1]
	for _, t := range sorted[1:] {
		if t-out[len(out)-1] > Eps {
			out = append(out, t)
		}
	}
	res := make([]float64, len(out))
	copy(res, out)
	return res
}

// Decompose turns a breakpoint list into the consecutive intervals
// I_k = [t_{k-1}, t_k].
func Decompose(breakpoints []float64) []Interval {
	if len(breakpoints) < 2 {
		return nil
	}
	out := make([]Interval, 0, len(breakpoints)-1)
	for i := 1; i < len(breakpoints); i++ {
		out = append(out, Interval{Start: breakpoints[i-1], End: breakpoints[i]})
	}
	return out
}

// Lambda returns the paper's lambda = (t_K - t_0) / min_k |I_k|, the
// horizon-to-smallest-interval ratio that appears in the approximation
// bound of Theorem 6. It returns 1 for fewer than two breakpoints.
func Lambda(breakpoints []float64) float64 {
	ivs := Decompose(breakpoints)
	if len(ivs) == 0 {
		return 1
	}
	minLen := math.Inf(1)
	for _, iv := range ivs {
		if l := iv.Length(); l < minLen {
			minLen = l
		}
	}
	total := breakpoints[len(breakpoints)-1] - breakpoints[0]
	if minLen <= 0 {
		return math.Inf(1)
	}
	return total / minLen
}

// SlotSet is a set of disjoint, sorted intervals. The zero value is an
// empty set ready for use. It tracks, per link, the time already committed
// to scheduled flows so that the remaining availability "a ~ b" can be
// measured (Definition 1).
type SlotSet struct {
	slots []Interval
}

// Clone returns a deep copy.
func (s *SlotSet) Clone() *SlotSet {
	out := &SlotSet{slots: make([]Interval, len(s.slots))}
	copy(out.slots, s.slots)
	return out
}

// Slots returns a copy of the disjoint intervals in ascending order.
func (s *SlotSet) Slots() []Interval {
	out := make([]Interval, len(s.slots))
	copy(out, s.slots)
	return out
}

// Empty reports whether the set has zero measure.
func (s *SlotSet) Empty() bool { return len(s.slots) == 0 }

// Measure returns the total length of the set.
func (s *SlotSet) Measure() float64 {
	var sum float64
	for _, iv := range s.slots {
		sum += iv.Length()
	}
	return sum
}

// Add unions the interval into the set, merging overlaps.
func (s *SlotSet) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Find insertion window: all existing slots overlapping or adjacent.
	i := sort.Search(len(s.slots), func(k int) bool { return s.slots[k].End >= iv.Start-Eps })
	j := i
	start, end := iv.Start, iv.End
	for j < len(s.slots) && s.slots[j].Start <= end+Eps {
		start = math.Min(start, s.slots[j].Start)
		end = math.Max(end, s.slots[j].End)
		j++
	}
	merged := Interval{Start: start, End: end}
	out := make([]Interval, 0, len(s.slots)-(j-i)+1)
	out = append(out, s.slots[:i]...)
	out = append(out, merged)
	out = append(out, s.slots[j:]...)
	s.slots = out
}

// AddAll unions every interval into the set.
func (s *SlotSet) AddAll(ivs []Interval) {
	for _, iv := range ivs {
		s.Add(iv)
	}
}

// MeasureWithin returns the measure of the set intersected with [a, b].
func (s *SlotSet) MeasureWithin(a, b float64) float64 {
	if b <= a {
		return 0
	}
	var sum float64
	win := Interval{Start: a, End: b}
	for _, iv := range s.slots {
		if iv.Start > b {
			break
		}
		if ov, ok := iv.Intersect(win); ok {
			sum += ov.Length()
		}
	}
	return sum
}

// Complement returns the intervals of [a, b] NOT covered by the set, in
// ascending order. For a per-link blocked set this yields the available
// slots of the window.
func (s *SlotSet) Complement(a, b float64) []Interval {
	if b-a <= Eps {
		return nil
	}
	var out []Interval
	cur := a
	for _, iv := range s.slots {
		if iv.End <= a {
			continue
		}
		if iv.Start >= b {
			break
		}
		if iv.Start > cur+Eps {
			out = append(out, Interval{Start: cur, End: math.Min(iv.Start, b)})
		}
		cur = math.Max(cur, iv.End)
		if cur >= b-Eps {
			return out
		}
	}
	if b-cur > Eps {
		out = append(out, Interval{Start: cur, End: b})
	}
	return out
}

// AvailableWithin returns (b-a) minus the blocked measure: the paper's
// "a ~ b" when the receiver tracks blocked time.
func (s *SlotSet) AvailableWithin(a, b float64) float64 {
	if b <= a {
		return 0
	}
	return (b - a) - s.MeasureWithin(a, b)
}

// Contains reports whether instant t is covered by the set.
func (s *SlotSet) Contains(t float64) bool {
	i := sort.Search(len(s.slots), func(k int) bool { return s.slots[k].End >= t-Eps })
	return i < len(s.slots) && s.slots[i].Contains(t)
}
