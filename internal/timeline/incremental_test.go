package timeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBreakpointSetInsertDedup(t *testing.T) {
	var s BreakpointSet
	if added := s.Insert(5, 1, 3); added != 3 {
		t.Fatalf("added = %d, want 3", added)
	}
	if added := s.Insert(3, 1+Eps/2, 7); added != 1 {
		t.Fatalf("re-insert added = %d, want 1 (only 7 is new)", added)
	}
	got := s.Points()
	want := []float64{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > Eps {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
	if !s.Contains(3) || !s.Contains(3+Eps/2) || s.Contains(4) {
		t.Fatal("Contains disagrees with inserted points")
	}
}

func TestBreakpointSetIntervalsFrom(t *testing.T) {
	var s BreakpointSet
	s.Insert(10, 20, 30, 40)
	ivs := s.IntervalsFrom(15)
	want := []Interval{{15, 20}, {20, 30}, {30, 40}}
	if len(ivs) != len(want) {
		t.Fatalf("intervals = %v, want %v", ivs, want)
	}
	for i := range want {
		if math.Abs(ivs[i].Start-want[i].Start) > Eps || math.Abs(ivs[i].End-want[i].End) > Eps {
			t.Fatalf("intervals = %v, want %v", ivs, want)
		}
	}
	// A re-plan instant sitting exactly on a breakpoint skips it.
	ivs = s.IntervalsFrom(20)
	if len(ivs) != 2 || ivs[0].Start != 20 || ivs[0].End != 30 {
		t.Fatalf("intervals from breakpoint = %v", ivs)
	}
	// Nothing beyond the last breakpoint.
	if got := s.IntervalsFrom(40); got != nil {
		t.Fatalf("intervals past the end = %v, want nil", got)
	}
	if got := s.IntervalsFrom(45); got != nil {
		t.Fatalf("intervals past the end = %v, want nil", got)
	}
}

func TestBreakpointSetPrune(t *testing.T) {
	var s BreakpointSet
	s.Insert(1, 2, 3, 4, 5)
	s.Prune(3)
	got := s.Points()
	if len(got) != 3 || got[0] != 3 {
		t.Fatalf("after prune: %v, want [3 4 5]", got)
	}
	// Pruning must not disturb future re-segmentation.
	ivs := s.IntervalsFrom(3.5)
	if len(ivs) != 2 || ivs[0].Start != 3.5 || ivs[1].End != 5 {
		t.Fatalf("intervals after prune = %v", ivs)
	}
}

// Property: incremental insertion agrees with the batch Breakpoints +
// Decompose pipeline on random inputs.
func TestPropertyBreakpointSetMatchesBatch(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		times := make([]float64, n)
		var s BreakpointSet
		for i := range times {
			times[i] = math.Floor(rng.Float64()*200) / 4 // collision-prone grid
			s.Insert(times[i])
		}
		batch := Breakpoints(times)
		inc := s.Points()
		if len(batch) != len(inc) {
			return false
		}
		for i := range batch {
			if math.Abs(batch[i]-inc[i]) > Eps {
				return false
			}
		}
		// IntervalsFrom the minimum matches Decompose.
		ivs := s.IntervalsFrom(batch[0])
		dec := Decompose(batch)
		if len(ivs) != len(dec) {
			return false
		}
		for i := range dec {
			if math.Abs(ivs[i].Start-dec[i].Start) > Eps || math.Abs(ivs[i].End-dec[i].End) > Eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
