package timeline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Start: 2, End: 5}
	if iv.Length() != 3 {
		t.Fatalf("Length = %v, want 3", iv.Length())
	}
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if !iv.Contains(2) || !iv.Contains(5) || !iv.Contains(3.5) {
		t.Fatal("Contains failed on closed endpoints/interior")
	}
	if iv.Contains(1.9) || iv.Contains(5.1) {
		t.Fatal("Contains accepted outside points")
	}
	if (Interval{Start: 3, End: 3}).Length() != 0 {
		t.Fatal("degenerate interval should have zero length")
	}
	if (Interval{Start: 5, End: 2}).Length() != 0 {
		t.Fatal("inverted interval should have zero length")
	}
	if !(Interval{Start: 3, End: 3}).Empty() {
		t.Fatal("degenerate interval should be empty")
	}
}

func TestIntervalCoversIntersect(t *testing.T) {
	a := Interval{Start: 0, End: 10}
	b := Interval{Start: 2, End: 5}
	if !a.Covers(b) || b.Covers(a) {
		t.Fatal("Covers wrong")
	}
	ov, ok := a.Intersect(b)
	if !ok || ov != b {
		t.Fatalf("Intersect = %v, %v; want %v, true", ov, ok, b)
	}
	if _, ok := (Interval{0, 1}).Intersect(Interval{2, 3}); ok {
		t.Fatal("disjoint intervals intersected")
	}
	if _, ok := (Interval{0, 1}).Intersect(Interval{1, 2}); ok {
		t.Fatal("touching intervals should have empty intersection")
	}
}

func TestBreakpoints(t *testing.T) {
	got := Breakpoints([]float64{3, 1, 2, 3, 1 + 1e-12, 5})
	want := []float64{1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Breakpoints = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > Eps {
			t.Fatalf("Breakpoints[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Breakpoints(nil) != nil {
		t.Fatal("Breakpoints(nil) should be nil")
	}
}

func TestDecompose(t *testing.T) {
	ivs := Decompose([]float64{1, 2, 5})
	if len(ivs) != 2 {
		t.Fatalf("Decompose len = %d, want 2", len(ivs))
	}
	if ivs[0] != (Interval{1, 2}) || ivs[1] != (Interval{2, 5}) {
		t.Fatalf("Decompose = %v", ivs)
	}
	if Decompose([]float64{1}) != nil {
		t.Fatal("single breakpoint should yield no intervals")
	}
}

func TestLambda(t *testing.T) {
	if got := Lambda([]float64{0, 1, 2, 10}); got != 10 {
		t.Fatalf("Lambda = %v, want 10", got)
	}
	if got := Lambda([]float64{5}); got != 1 {
		t.Fatalf("Lambda single = %v, want 1", got)
	}
}

func TestSlotSetAddMerge(t *testing.T) {
	var s SlotSet
	s.Add(Interval{1, 2})
	s.Add(Interval{4, 5})
	s.Add(Interval{1.5, 4.5}) // bridges both
	slots := s.Slots()
	if len(slots) != 1 || slots[0].Start != 1 || slots[0].End != 5 {
		t.Fatalf("merged slots = %v, want [[1,5]]", slots)
	}
	if math.Abs(s.Measure()-4) > Eps {
		t.Fatalf("Measure = %v, want 4", s.Measure())
	}
}

func TestSlotSetAddAdjacent(t *testing.T) {
	var s SlotSet
	s.Add(Interval{1, 2})
	s.Add(Interval{2, 3}) // touching intervals merge
	if len(s.Slots()) != 1 {
		t.Fatalf("adjacent intervals not merged: %v", s.Slots())
	}
}

func TestSlotSetAddEmptyIgnored(t *testing.T) {
	var s SlotSet
	s.Add(Interval{3, 3})
	if !s.Empty() {
		t.Fatal("empty interval should not be added")
	}
}

func TestSlotSetMeasureWithin(t *testing.T) {
	var s SlotSet
	s.AddAll([]Interval{{1, 2}, {4, 6}})
	tests := []struct {
		a, b float64
		want float64
	}{
		{0, 10, 3},
		{1.5, 5, 1.5},
		{2, 4, 0},
		{5, 5, 0},
		{6, 3, 0}, // inverted window
	}
	for _, tt := range tests {
		if got := s.MeasureWithin(tt.a, tt.b); math.Abs(got-tt.want) > Eps {
			t.Errorf("MeasureWithin(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSlotSetComplement(t *testing.T) {
	var s SlotSet
	s.AddAll([]Interval{{1, 2}, {4, 6}})
	got := s.Complement(0, 10)
	want := []Interval{{0, 1}, {2, 4}, {6, 10}}
	if len(got) != len(want) {
		t.Fatalf("Complement = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i].Start-want[i].Start) > Eps || math.Abs(got[i].End-want[i].End) > Eps {
			t.Fatalf("Complement[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Fully-covered window.
	if c := s.Complement(4.2, 5.8); len(c) != 0 {
		t.Fatalf("Complement inside blocked = %v, want empty", c)
	}
	// Empty window.
	if c := s.Complement(3, 3); c != nil {
		t.Fatalf("Complement of empty window = %v, want nil", c)
	}
}

func TestSlotSetAvailableWithin(t *testing.T) {
	var s SlotSet
	s.Add(Interval{2, 4})
	if got := s.AvailableWithin(0, 10); math.Abs(got-8) > Eps {
		t.Fatalf("AvailableWithin = %v, want 8", got)
	}
	if got := s.AvailableWithin(5, 1); got != 0 {
		t.Fatalf("inverted window available = %v, want 0", got)
	}
}

func TestSlotSetContains(t *testing.T) {
	var s SlotSet
	s.AddAll([]Interval{{1, 2}, {4, 6}})
	for _, tt := range []struct {
		t    float64
		want bool
	}{{1.5, true}, {1, true}, {2, true}, {3, false}, {5, true}, {7, false}, {0, false}} {
		if got := s.Contains(tt.t); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestSlotSetClone(t *testing.T) {
	var s SlotSet
	s.Add(Interval{1, 2})
	c := s.Clone()
	c.Add(Interval{5, 6})
	if len(s.Slots()) != 1 {
		t.Fatal("Clone shares state with original")
	}
}

// Property: for random interval unions, Measure(complement) + Measure(set
// within window) == window length.
func TestPropertyComplementPartition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s SlotSet
		for i := 0; i < rng.Intn(20); i++ {
			a := rng.Float64() * 100
			b := a + rng.Float64()*10
			s.Add(Interval{a, b})
		}
		lo, hi := 10.0, 90.0
		inside := s.MeasureWithin(lo, hi)
		var compl float64
		for _, iv := range s.Complement(lo, hi) {
			compl += iv.Length()
		}
		return math.Abs(inside+compl-(hi-lo)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: slots stay disjoint and sorted after arbitrary unions.
func TestPropertySlotsDisjointSorted(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s SlotSet
		for i := 0; i < 2+rng.Intn(30); i++ {
			a := rng.Float64() * 50
			s.Add(Interval{a, a + rng.Float64()*5})
		}
		slots := s.Slots()
		for i := 1; i < len(slots); i++ {
			if slots[i].Start <= slots[i-1].End+Eps/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: measure is monotone under union and bounded by the hull.
func TestPropertyMeasureMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s SlotSet
		prev := 0.0
		for i := 0; i < 20; i++ {
			a := rng.Float64() * 100
			s.Add(Interval{a, a + rng.Float64()*8})
			m := s.Measure()
			if m < prev-Eps {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
