package timeline

import "sort"

// BreakpointSet maintains a sorted, Eps-deduplicated set of time breakpoints
// under incremental insertion — the online counterpart of Breakpoints. A
// rolling-horizon scheduler inserts the release times and deadlines of newly
// revealed flows as they arrive and re-segments only the remaining horizon
// at each re-plan instant, instead of rebuilding the full breakpoint list
// from every flow on every epoch.
//
// The zero value is an empty set ready for use.
type BreakpointSet struct {
	pts []float64
}

// Len returns the number of breakpoints currently held.
func (s *BreakpointSet) Len() int { return len(s.pts) }

// Points returns a copy of the breakpoints in ascending order.
func (s *BreakpointSet) Points() []float64 {
	out := make([]float64, len(s.pts))
	copy(out, s.pts)
	return out
}

// Insert adds the time values, keeping the set sorted and deduplicated
// within Eps. It returns the number of values that were genuinely new.
// Insertion is O(log n + n) per new value in the worst case but O(log n)
// for values already present — the common case for an online workload whose
// flows share grid-aligned deadlines.
func (s *BreakpointSet) Insert(times ...float64) (added int) {
	for _, t := range times {
		i := sort.SearchFloat64s(s.pts, t)
		// A value within Eps of t sits at index i-1 or i.
		if i > 0 && t-s.pts[i-1] <= Eps {
			continue
		}
		if i < len(s.pts) && s.pts[i]-t <= Eps {
			continue
		}
		s.pts = append(s.pts, 0)
		copy(s.pts[i+1:], s.pts[i:])
		s.pts[i] = t
		added++
	}
	return added
}

// Contains reports whether a breakpoint within Eps of t is present.
func (s *BreakpointSet) Contains(t float64) bool {
	i := sort.SearchFloat64s(s.pts, t)
	if i > 0 && t-s.pts[i-1] <= Eps {
		return true
	}
	return i < len(s.pts) && s.pts[i]-t <= Eps
}

// Prune discards breakpoints strictly before t (outside Eps), bounding the
// set's memory over a long-running horizon. Points already re-segmented
// into committed intervals are never needed again.
func (s *BreakpointSet) Prune(t float64) {
	i := sort.SearchFloat64s(s.pts, t-Eps)
	if i > 0 {
		s.pts = append(s.pts[:0], s.pts[i:]...)
	}
}

// IntervalsFrom re-segments the remaining horizon: it returns the
// consecutive intervals I_k covering [from, max breakpoint], starting at
// `from` and splitting at every breakpoint after it. Breakpoints at or
// before `from` (within Eps) are skipped, so the caller re-plans only the
// future without rebuilding past segmentation. It returns nil when no
// breakpoint lies beyond `from`.
func (s *BreakpointSet) IntervalsFrom(from float64) []Interval {
	return s.AppendIntervalsFrom(from, nil)
}

// AppendIntervalsFrom is IntervalsFrom writing into buf (reset to length
// zero first), so a caller re-segmenting on every re-plan — per arrival, in
// the worst case — can recycle one slice instead of allocating each time.
// It returns buf unchanged (possibly nil) when no breakpoint lies beyond
// `from`.
func (s *BreakpointSet) AppendIntervalsFrom(from float64, buf []Interval) []Interval {
	buf = buf[:0]
	i := sort.SearchFloat64s(s.pts, from)
	for i < len(s.pts) && s.pts[i]-from <= Eps {
		i++
	}
	if i == len(s.pts) {
		return buf
	}
	cur := from
	for ; i < len(s.pts); i++ {
		buf = append(buf, Interval{Start: cur, End: s.pts[i]})
		cur = s.pts[i]
	}
	return buf
}
