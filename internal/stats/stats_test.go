package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestStddev(t *testing.T) {
	// Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Stddev(xs); math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("Stddev = %v, want ~2.138", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev of singleton should be 0")
	}
}

func TestCI95(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	want := 1.96 * Stddev(xs) / math.Sqrt(5)
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95(nil) != 0 {
		t.Fatal("CI95(nil) should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "ratio")
	tb.AddRow(40, 1.2345678)
	tb.AddRow(200, 2.0)
	out := tb.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "ratio") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatalf("float not compacted:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + sep + 2 rows
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow(1, "x")
	csv := tb.CSV()
	want := "a,b\n1,x\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 0.95); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.95, 5}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be mutated (sort happens on a copy).
	if xs[0] != 5 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
	// 20 samples: p95 by nearest rank is the 19th order statistic.
	var big []float64
	for i := 20; i >= 1; i-- {
		big = append(big, float64(i))
	}
	if got := Percentile(big, 0.95); got != 19 {
		t.Fatalf("p95 of 1..20 = %v, want 19", got)
	}
}
