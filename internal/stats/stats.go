// Package stats provides the small statistics and table-formatting helpers
// used by the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// CI95 returns the half-width of an approximate 95% confidence interval of
// the mean (normal approximation).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(len(xs)))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-quantile of xs (0 <= p <= 1) by the
// nearest-rank method on a sorted copy: the smallest value v such that at
// least a p fraction of the samples are <= v. Deterministic (no
// interpolation, no randomness) so sweep aggregates are reproducible;
// returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p*float64(len(s)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s[rank]
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
