package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/sim"
	"dcnflow/internal/topology"
)

// TestPropertyDCFSRAlwaysMeetsDeadlines is Theorem 4 as a property: for
// random workloads and rounding seeds, Random-Schedule never misses a
// deadline (capacity relaxed).
func TestPropertyDCFSRAlwaysMeetsDeadlines(t *testing.T) {
	ft, err := topology.FatTree(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.2, Mu: 1, Alpha: 2, C: 1e12}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		fs, err := flow.Uniform(flow.GenConfig{
			N: n, T0: 1, T1: 50, SizeMean: 8, SizeStddev: 3,
			Hosts: ft.Hosts, Seed: seed,
		})
		if err != nil {
			return false
		}
		res, err := SolveDCFSR(DCFSRInput{
			Graph: ft.Graph, Flows: fs, Model: m,
			Opts: DCFSROptions{Seed: seed, Solver: mcfsolve.Options{MaxIters: 15}},
		})
		if err != nil {
			return false
		}
		if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
			return false
		}
		simRes, err := sim.Run(ft.Graph, fs, res.Schedule, m, sim.Options{})
		if err != nil {
			return false
		}
		return simRes.DeadlinesMissed == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDCFSAlwaysFeasible: Most-Critical-First output is always
// deadline-feasible on random line-network instances, with or without the
// shared fallback.
func TestPropertyDCFSAlwaysFeasible(t *testing.T) {
	m := power.Model{Mu: 1, Alpha: 2.5}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line, err := topology.Line(5, 1e12)
		if err != nil {
			return false
		}
		n := 2 + rng.Intn(10)
		raw := make([]flow.Flow, 0, n)
		for i := 0; i < n; i++ {
			s := rng.Intn(4)
			d := s + 1 + rng.Intn(4-s)
			r := rng.Float64() * 20
			raw = append(raw, flow.Flow{
				Src: line.Hosts[s], Dst: line.Hosts[d],
				Release: r, Deadline: r + 0.5 + rng.Float64()*15,
				Size: 0.2 + rng.Float64()*20,
			})
		}
		fs, err := flow.NewSet(raw)
		if err != nil {
			return false
		}
		paths := make(map[flow.ID]graph.Path, fs.Len())
		for _, f := range fs.Flows() {
			p, err := line.Graph.ShortestPath(f.Src, f.Dst)
			if err != nil {
				return false
			}
			paths[f.ID] = p
		}
		res, err := SolveDCFS(DCFSInput{Graph: line.Graph, Flows: fs, Paths: paths, Model: m})
		if err != nil {
			return false
		}
		return res.Schedule.Verify(line.Graph, fs, m, schedule.VerifyOptions{}) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySplittingNeverHurtsOnParallelLinks: splitting one big flow
// into k sub-flows (Section II-B) lets DCFSR spread load across parallel
// links; with convex dynamic power this must not increase energy.
func TestPropertySplittingNeverHurtsOnParallelLinks(t *testing.T) {
	m := power.Model{Mu: 1, Alpha: 2, C: 1e12}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top, src, dst, err := topology.ParallelLinks(4, 1e12)
		if err != nil {
			return false
		}
		size := 4 + rng.Float64()*12
		whole, err := flow.NewSet([]flow.Flow{
			{Src: src, Dst: dst, Release: 0, Deadline: 2, Size: size},
		})
		if err != nil {
			return false
		}
		parts, err := flow.SplitSet(whole, size/4)
		if err != nil {
			return false
		}
		solve := func(fs *flow.Set) float64 {
			res, err := SolveDCFSR(DCFSRInput{
				Graph: top.Graph, Flows: fs, Model: m,
				Opts: DCFSROptions{Seed: seed},
			})
			if err != nil {
				return -1
			}
			return res.Schedule.EnergyTotal(m)
		}
		eWhole := solve(whole)
		eSplit := solve(parts)
		if eWhole < 0 || eSplit < 0 {
			return false
		}
		return eSplit <= eWhole*(1+1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDCFSConflictInstance exercises the cross-link conflict scenario the
// packCritical path-aware EDF resolves: two flows share a critical link
// while one of them also traverses a link already blocked by an earlier
// round. The path-aware packer must place it without overlap.
func TestDCFSConflictInstance(t *testing.T) {
	// Nodes: a-b-c-d line; flows:
	//   J (b->c, [0,1], w=10): round 1, blocks bc during [0,1].
	//   I1 (a->d, [0,2], w=2): traverses ab, bc, cd.
	//   I2 (a->b, [0,2], w=3): traverses ab only.
	// Round 2's critical link is ab with both I1, I2; I1 can only use
	// [1,2] because bc is blocked in [0,1].
	line, err := topology.Line(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c, d := line.Hosts[0], line.Hosts[1], line.Hosts[2], line.Hosts[3]
	fs, err := flow.NewSet([]flow.Flow{
		{Src: b, Dst: c, Release: 0, Deadline: 1, Size: 10}, // J
		{Src: a, Dst: d, Release: 0, Deadline: 2, Size: 2},  // I1
		{Src: a, Dst: b, Release: 0, Deadline: 2, Size: 3},  // I2
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := line.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	m := power.Model{Mu: 1, Alpha: 2}
	res, err := SolveDCFS(DCFSInput{Graph: line.Graph, Flows: fs, Paths: paths, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(line.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	// I1 must not transmit while bc is blocked by J ([0,1]) if the
	// path-aware packer did its job (no conflicts reported).
	if res.Conflicts == 0 {
		i1 := res.Schedule.FlowSchedule(1)
		for _, seg := range i1.Segments {
			if seg.Interval.Start < 1-1e-9 {
				t.Fatalf("I1 transmits during J's bc occupation: %+v", i1.Segments)
			}
		}
	}
}
