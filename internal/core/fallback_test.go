package core

import (
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/topology"
)

// TestDCFSSharedFallbackRegression reproduces the workload that exposed
// the zero-availability window case (Fig. 2 harness, n=40, seed 40001 on
// the k=8 fat-tree with shortest-path routing): cross-link slot blocking
// left a flow's span fully occupied on a link, which the paper's literal
// Algorithm 1 cannot schedule exclusively. The solver must fall back to
// link sharing, keep every deadline, and report the conflicts.
func TestDCFSSharedFallbackRegression(t *testing.T) {
	ft, err := topology.FatTree(8, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 40001,
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e12}
	res, err := SolveDCFS(DCFSInput{Graph: ft.Graph, Flows: fs, Paths: paths, Model: m})
	if err != nil {
		t.Fatalf("SolveDCFS: %v", err)
	}
	// Every deadline must still hold (capacity/exclusivity relaxed).
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestDCFSDurationClampRegression pins the duration-overrun bug found by
// the time-seeded property tests (quick.Check seed 87933835583193213): a
// flow whose span is fully blocked on the critical link was handed a
// Theorem 1 duration larger than its span, which no placement can satisfy.
// The clamp caps the duration at the span (raising the rate to at least
// the density); the instance must now schedule feasibly.
func TestDCFSDurationClampRegression(t *testing.T) {
	line, err := topology.Line(5, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	h := line.Hosts
	fs, err := flow.NewSet([]flow.Flow{
		{Src: h[1], Dst: h[2], Release: 18.41719795720834, Deadline: 23.54583362298806, Size: 15.747791988825334},
		{Src: h[1], Dst: h[2], Release: 3.7989828768778215, Deadline: 11.48989430754735, Size: 14.183158394440692},
		{Src: h[3], Dst: h[4], Release: 5.90213095888552, Deadline: 17.322220827061166, Size: 1.56470920654761},
		{Src: h[1], Dst: h[2], Release: 8.82339301586156, Deadline: 24.063581224317915, Size: 14.508051487110617},
		{Src: h[2], Dst: h[3], Release: 16.812522878261866, Deadline: 30.246625412235048, Size: 19.02256840397115},
		{Src: h[0], Dst: h[3], Release: 2.4645193067219893, Deadline: 17.165111619066987, Size: 15.306801978225765},
		{Src: h[2], Dst: h[4], Release: 0.766877840711427, Deadline: 2.9889070335834553, Size: 0.3760169875511735},
		{Src: h[0], Dst: h[4], Release: 0.492087654116743, Deadline: 14.206690484210275, Size: 9.45288248447926},
		{Src: h[0], Dst: h[1], Release: 11.122945343433273, Deadline: 11.988646488614567, Size: 2.4602205145128493},
		{Src: h[2], Dst: h[4], Release: 17.025312332568028, Deadline: 31.595154193343987, Size: 4.556727845484798},
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := line.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	m := power.Model{Mu: 1, Alpha: 2.5}
	res, err := SolveDCFS(DCFSInput{Graph: line.Graph, Flows: fs, Paths: paths, Model: m})
	if err != nil {
		t.Fatalf("SolveDCFS: %v", err)
	}
	if err := res.Schedule.Verify(line.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestDCFSSharedFallbackSynthetic builds a minimal instance that forces the
// fallback deterministically. Line A-B-C. Flow H (A->C, span [0,10],
// w=100) and flow K (B->C, span [0,10], w=50) make link BC the round-1
// critical link (combined weight beats AB, which only adds the tiny L).
// H's EDF slot [0, ~7.4] is blocked on BOTH its links, so link AB becomes
// fully blocked across the span [4, 6] of the light flow L (A->B) — whose
// own window is excluded from round 1 because H's span is not contained in
// it. L can then only be scheduled by sharing AB.
func TestDCFSSharedFallbackSynthetic(t *testing.T) {
	line, err := topology.Line(3, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	fs, err := flow.NewSet([]flow.Flow{
		{Src: a, Dst: c, Release: 0, Deadline: 10, Size: 100}, // H: AB+BC
		{Src: b, Dst: c, Release: 0, Deadline: 10, Size: 50},  // K: BC
		{Src: a, Dst: b, Release: 4, Deadline: 6, Size: 0.5},  // L: AB, narrow span
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := line.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e12}
	res, err := SolveDCFS(DCFSInput{Graph: line.Graph, Flows: fs, Paths: paths, Model: m})
	if err != nil {
		t.Fatalf("SolveDCFS: %v", err)
	}
	if err := res.Schedule.Verify(line.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if res.Conflicts == 0 {
		t.Fatal("expected the light flow to be scheduled via the shared fallback")
	}
	light := res.Schedule.FlowSchedule(2)
	if light == nil || light.DataTransferred() < 0.5-1e-6 {
		t.Fatalf("light flow not fully transferred: %+v", light)
	}
	// Its rate must be the density 0.25 across its span [4, 6].
	if len(light.Segments) != 1 || light.Segments[0].Rate != 0.25 {
		t.Fatalf("light flow segments = %+v, want density rate 0.25 over [4,6]", light.Segments)
	}
}
