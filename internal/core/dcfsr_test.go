package core

import (
	"errors"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/topology"
)

func fatTreeWorkload(t *testing.T, k, n int, seed int64) (*topology.Topology, *flow.Set) {
	t.Helper()
	ft, err := topology.FatTree(k, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: n, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs
}

func TestDCFSRMeetsAllDeadlines(t *testing.T) {
	// Theorem 4: every deadline is met by Random-Schedule.
	ft, fs := fatTreeWorkload(t, 4, 20, 1)
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 1e9}
	res, err := SolveDCFSR(DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{EnforceCapacity: true}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !res.CapacityFeasible {
		t.Fatal("uncongested instance should be capacity feasible")
	}
}

func TestDCFSREnergyAtLeastLowerBound(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 15, 2)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := SolveDCFSR(DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerBound <= 0 {
		t.Fatalf("LowerBound = %v, want > 0", res.LowerBound)
	}
	energy := res.Schedule.EnergyTotal(m)
	if energy < res.LowerBound*(1-1e-6) {
		t.Fatalf("energy %v below lower bound %v", energy, res.LowerBound)
	}
}

func TestDCFSRDeterministicPerSeed(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 12, 3)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	run := func(seed int64) float64 {
		res, err := SolveDCFSR(DCFSRInput{
			Graph: ft.Graph, Flows: fs, Model: m,
			Opts: DCFSROptions{Seed: seed},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule.EnergyTotal(m)
	}
	if run(7) != run(7) {
		t.Fatal("same seed produced different energies")
	}
}

func TestDCFSRSingleFlowUsesSinglePath(t *testing.T) {
	line, err := topology.Line(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[3], Release: 0, Deadline: 10, Size: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := SolveDCFSR(DCFSRInput{Graph: line.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	fsch := res.Schedule.FlowSchedule(0)
	if fsch.Path.Len() != 3 {
		t.Fatalf("path length = %d, want 3 (the only route)", fsch.Path.Len())
	}
	// Rate must equal the density 0.5 over the whole span.
	if len(fsch.Segments) != 1 || fsch.Segments[0].Rate != 0.5 {
		t.Fatalf("segments = %+v, want single density-rate segment", fsch.Segments)
	}
	if res.Intervals != 1 {
		t.Fatalf("intervals = %d, want 1", res.Intervals)
	}
}

func TestDCFSRHardnessGadgetConsolidates(t *testing.T) {
	// Theorem 2 setup: 3m flows, sizes ~B/3 each, one unit of time, k >> m
	// parallel links, Ropt = B. RS should approach the m*alpha*mu*B^alpha
	// optimum by using about m links at rate about B.
	const (
		mPart = 3
		B     = 3.0
		alpha = 2.0
	)
	top, src, dst, err := topology.ParallelLinks(12, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1} // 3m = 9 flows of B/3 = 1
	fs, err := flow.HardnessInstance(src, dst, sizes)
	if err != nil {
		t.Fatal(err)
	}
	model := power.Model{
		Sigma: power.SigmaForRopt(1, alpha, B), // Ropt = B
		Mu:    1,
		Alpha: alpha,
		C:     1e9,
	}
	res, err := SolveDCFSR(DCFSRInput{Graph: top.Graph, Flows: fs, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Verify(top.Graph, fs, model, schedule.VerifyOptions{}); err != nil {
		t.Fatal(err)
	}
	optimal := float64(mPart) * alpha * model.Mu * B * B // m * alpha*mu*B^alpha
	energy := res.Schedule.EnergyTotal(model)
	if energy < optimal*(1-1e-6) {
		t.Fatalf("energy %v below the Theorem 2 optimum %v", energy, optimal)
	}
	// The fractional bound must also be at or below the integral optimum.
	if res.LowerBound > optimal*(1+1e-6) {
		t.Fatalf("lower bound %v above integral optimum %v", res.LowerBound, optimal)
	}
	// Consolidation sanity: no more links than flows get used.
	if used := len(res.Schedule.ActiveLinks()); used > len(sizes) {
		t.Fatalf("active links = %d, want <= %d", used, len(sizes))
	}
}

func TestDCFSRCapacityRetries(t *testing.T) {
	// Tight capacity forces spreading across the parallel links; the
	// rounding loop must find a feasible draw.
	top, src, dst, err := topology.ParallelLinks(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 2}
	res, err := SolveDCFSR(DCFSRInput{
		Graph: top.Graph, Flows: fs, Model: m,
		Opts: DCFSROptions{Seed: 1, MaxRoundingAttempts: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CapacityFeasible {
		t.Fatalf("no feasible rounding found (max rate %v, C=2)", res.MaxRate)
	}
	if err := res.Schedule.Verify(top.Graph, fs, m, schedule.VerifyOptions{EnforceCapacity: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDCFSREmptyFlows(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFSR(DCFSRInput{
		Graph: line.Graph, Flows: fs,
		Model: power.Model{Mu: 1, Alpha: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Len() != 0 || !res.CapacityFeasible {
		t.Fatal("empty instance should yield empty feasible schedule")
	}
}

func TestDCFSRInputValidation(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDCFSR(DCFSRInput{Flows: fs, Model: power.Model{Mu: 1, Alpha: 2}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph err = %v, want ErrBadInput", err)
	}
	if _, err := SolveDCFSR(DCFSRInput{Graph: line.Graph, Flows: fs, Model: power.Model{Mu: 0, Alpha: 2}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad model err = %v, want ErrBadInput", err)
	}
}

func TestLowerBoundStandalone(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 10, 4)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	lb, err := LowerBound(ft.Graph, fs, m, DCFSROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 {
		t.Fatalf("LowerBound = %v, want > 0", lb)
	}
	res, err := SolveDCFSR(DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(lb, res.LowerBound, 1e-9) {
		t.Fatalf("standalone LB %v != solver LB %v", lb, res.LowerBound)
	}
	if _, err := LowerBound(nil, fs, m, DCFSROptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph err = %v, want ErrBadInput", err)
	}
}

func TestDCFSRAttemptsSemantics(t *testing.T) {
	// Uncongested instance: the first draw is feasible, so exactly one
	// attempt is consumed.
	ft, fs := fatTreeWorkload(t, 4, 10, 6)
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	res, err := SolveDCFSR(DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 on an uncongested instance", res.Attempts)
	}
	// Uncapped model: always feasible on the first draw.
	un := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2}
	res2, err := SolveDCFSR(DCFSRInput{Graph: ft.Graph, Flows: fs, Model: un})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CapacityFeasible || res2.Attempts != 1 {
		t.Fatalf("uncapped: feasible=%v attempts=%d", res2.CapacityFeasible, res2.Attempts)
	}
}

func TestDCFSRInfeasibleStillReturnsBestEffort(t *testing.T) {
	// Pigeonhole-infeasible: 3 density-1.5 flows on 2 links of C=2. Every
	// draw violates capacity; the solver must return its least-violating
	// assignment with CapacityFeasible=false.
	top, src, dst, err := topology.ParallelLinks(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
		{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 2}
	res, err := SolveDCFSR(DCFSRInput{
		Graph: top.Graph, Flows: fs, Model: m,
		Opts: DCFSROptions{Seed: 1, MaxRoundingAttempts: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityFeasible {
		t.Fatal("pigeonhole-infeasible instance reported feasible")
	}
	// Deadlines still hold (capacity is the only violation).
	if verr := res.Schedule.Verify(top.Graph, fs, m, schedule.VerifyOptions{}); verr != nil {
		t.Fatalf("Verify: %v", verr)
	}
	// Least-violating: max rate 3 (two flows on one link), not 4.5 (all
	// three together).
	if res.MaxRate > 3+1e-9 {
		t.Fatalf("max rate = %v, want <= 3 (best-effort spreading)", res.MaxRate)
	}
}

func TestDCFSRLambdaAndIntervals(t *testing.T) {
	line, err := topology.Line(3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	// Two flows: breakpoints {0, 1, 4, 10} -> 3 intervals, lambda = 10/1.
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 4, Size: 2},
		{Src: line.Hosts[2], Dst: line.Hosts[0], Release: 1, Deadline: 10, Size: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFSR(DCFSRInput{
		Graph: line.Graph, Flows: fs,
		Model: power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intervals != 3 {
		t.Fatalf("intervals = %d, want 3", res.Intervals)
	}
	if !almostEqual(res.Lambda, 10, 1e-9) {
		t.Fatalf("lambda = %v, want 10", res.Lambda)
	}
}
