package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

func TestExactMatchesTheorem2Optimum(t *testing.T) {
	// On the hardness gadget with a perfect partition available, the exact
	// solver must find the proved optimum m * alpha * mu * B^alpha.
	const (
		mGroups = 2
		B       = 3.0
		alpha   = 2.0
	)
	top, src, dst, err := topology.ParallelLinks(3, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.HardnessInstance(src, dst, []float64{1, 1, 1, 1, 1, 1}) // 2 groups of B=3
	if err != nil {
		t.Fatal(err)
	}
	model := power.Model{
		Sigma: power.SigmaForRopt(1, alpha, B),
		Mu:    1, Alpha: alpha, C: 1e12,
	}
	exact, err := SolveDCFSRExact(DCFSRInput{Graph: top.Graph, Flows: fs, Model: model},
		ExactOptions{PathsPerFlow: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(mGroups) * alpha * model.Mu * B * B
	if !almostEqual(exact.Energy, want, 1e-9) {
		t.Fatalf("exact = %v, want Theorem 2 optimum %v", exact.Energy, want)
	}
}

func TestExactNeverWorseThanHeuristics(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top, src, dst, err := topology.ParallelLinks(3, 1e12)
		if err != nil {
			return false
		}
		n := 2 + rng.Intn(4)
		raw := make([]flow.Flow, n)
		for i := range raw {
			r := rng.Float64() * 5
			raw[i] = flow.Flow{
				Src: src, Dst: dst,
				Release: r, Deadline: r + 1 + rng.Float64()*5,
				Size: 0.5 + rng.Float64()*5,
			}
		}
		fs, err := flow.NewSet(raw)
		if err != nil {
			return false
		}
		m := power.Model{Sigma: 1, Mu: 1, Alpha: 2, C: 1e12}
		in := DCFSRInput{Graph: top.Graph, Flows: fs, Model: m, Opts: DCFSROptions{Seed: seed}}
		exact, err := SolveDCFSRExact(in, ExactOptions{PathsPerFlow: 3})
		if err != nil {
			return false
		}
		rs, err := SolveDCFSR(in)
		if err != nil {
			return false
		}
		rsEnergy := rs.Schedule.EnergyTotal(m)
		// Exact <= RS, and exact >= the fractional lower bound would NOT
		// hold in general (LB is for the density-smoothed relaxation), but
		// exact must be positive and finite.
		return exact.Energy <= rsEnergy*(1+1e-9) && exact.Energy > 0 && !math.IsInf(exact.Energy, 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestExactGuards(t *testing.T) {
	top, src, dst, err := topology.ParallelLinks(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]flow.Flow, 10)
	for i := range raw {
		raw[i] = flow.Flow{Src: src, Dst: dst, Release: 0, Deadline: 1, Size: 1}
	}
	fs, err := flow.NewSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2}
	// 4^10 assignments exceed the default bound.
	_, err = SolveDCFSRExact(DCFSRInput{Graph: top.Graph, Flows: fs, Model: m}, ExactOptions{})
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversized instance err = %v, want ErrBadInput", err)
	}
	if _, err := SolveDCFSRExact(DCFSRInput{Flows: fs, Model: m}, ExactOptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph err = %v, want ErrBadInput", err)
	}
}

func TestExactEmptyFlows(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFSRExact(DCFSRInput{
		Graph: line.Graph, Flows: fs, Model: power.Model{Mu: 1, Alpha: 2},
	}, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != 0 || res.Assignments != 1 {
		t.Fatalf("empty exact = %+v", res)
	}
}
