package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/topology"
	"dcnflow/internal/yds"
)

func almostEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff/scale <= tol
}

// exampleOne builds the paper's Fig. 1 / Example 1 instance.
func exampleOne(t *testing.T) DCFSInput {
	t.Helper()
	line, err := topology.Line(3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := line.Hosts[0], line.Hosts[1], line.Hosts[2]
	fs, err := flow.NewSet([]flow.Flow{
		{Src: a, Dst: c, Release: 2, Deadline: 4, Size: 6}, // j1
		{Src: a, Dst: b, Release: 1, Deadline: 3, Size: 8}, // j2
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := map[flow.ID]graph.Path{}
	for _, f := range fs.Flows() {
		p, err := line.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	return DCFSInput{
		Graph: line.Graph,
		Flows: fs,
		Paths: paths,
		Model: power.Model{Sigma: 0, Mu: 1, Alpha: 2, C: 1000},
	}
}

func TestDCFSExampleOneOptimalRates(t *testing.T) {
	in := exampleOne(t)
	res, err := SolveDCFS(in)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Example 1: sqrt(2)*s1 = s2 = (8 + 6*sqrt2)/3.
	wantS2 := (8 + 6*math.Sqrt2) / 3
	wantS1 := wantS2 / math.Sqrt2
	fs1 := res.Schedule.FlowSchedule(0)
	fs2 := res.Schedule.FlowSchedule(1)
	if fs1 == nil || fs2 == nil {
		t.Fatal("missing flow schedules")
	}
	if !almostEqual(fs1.MaxRate(), wantS1, 1e-9) {
		t.Fatalf("s1 = %v, want %v", fs1.MaxRate(), wantS1)
	}
	if !almostEqual(fs2.MaxRate(), wantS2, 1e-9) {
		t.Fatalf("s2 = %v, want %v", fs2.MaxRate(), wantS2)
	}
	// Optimal objective: 12*s1 + 8*s2.
	wantEnergy := 12*wantS1 + 8*wantS2
	if got := res.Schedule.EnergyDynamic(in.Model); !almostEqual(got, wantEnergy, 1e-9) {
		t.Fatalf("energy = %v, want %v", got, wantEnergy)
	}
	if res.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", res.Conflicts)
	}
	// The schedule must be feasible and virtual-circuit exclusive.
	if err := res.Schedule.Verify(in.Graph, in.Flows, in.Model, schedule.VerifyOptions{ExclusiveLinks: true}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestDCFSExampleOneSingleCriticalRound(t *testing.T) {
	in := exampleOne(t)
	res, err := SolveDCFS(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1 (both flows share the critical interval)", len(res.Rounds))
	}
	r := res.Rounds[0]
	if !almostEqual(r.Window.Start, 1, 1e-12) || !almostEqual(r.Window.End, 4, 1e-12) {
		t.Fatalf("critical window = %v, want [1,4]", r.Window)
	}
	wantDelta := (8 + 6*math.Sqrt2) / 3
	if !almostEqual(r.Intensity, wantDelta, 1e-9) {
		t.Fatalf("intensity = %v, want %v", r.Intensity, wantDelta)
	}
	if len(r.FlowIDs) != 2 {
		t.Fatalf("critical flows = %v, want both", r.FlowIDs)
	}
}

func TestDCFSEmptyFlowSet(t *testing.T) {
	line, err := topology.Line(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFS(DCFSInput{
		Graph: line.Graph, Flows: fs, Paths: map[flow.ID]graph.Path{},
		Model: power.Model{Mu: 1, Alpha: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Len() != 0 {
		t.Fatal("empty instance should produce empty schedule")
	}
}

func TestDCFSInputValidation(t *testing.T) {
	in := exampleOne(t)
	t.Run("nil graph", func(t *testing.T) {
		bad := in
		bad.Graph = nil
		if _, err := SolveDCFS(bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("bad model", func(t *testing.T) {
		bad := in
		bad.Model = power.Model{Mu: 1, Alpha: 0.5}
		if _, err := SolveDCFS(bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("missing path", func(t *testing.T) {
		bad := in
		bad.Paths = map[flow.ID]graph.Path{0: in.Paths[0]}
		if _, err := SolveDCFS(bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("wrong path endpoints", func(t *testing.T) {
		bad := in
		bad.Paths = map[flow.ID]graph.Path{0: in.Paths[1], 1: in.Paths[1]}
		if _, err := SolveDCFS(bad); !errors.Is(err, ErrBadInput) {
			t.Fatalf("err = %v, want ErrBadInput", err)
		}
	})
}

// TestDCFSMatchesYDSOnSharedLink: with a single shared link (|P| = 1 for
// every flow), Most-Critical-First degenerates to YDS exactly.
func TestDCFSMatchesYDSOnSharedLink(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top, src, dst, err := topology.ParallelLinks(1, 1e9)
		if err != nil {
			return false
		}
		n := 2 + rng.Intn(8)
		raw := make([]flow.Flow, n)
		jobs := make([]yds.Job, n)
		for i := 0; i < n; i++ {
			r := rng.Float64() * 20
			d := r + 1 + rng.Float64()*10
			w := 0.5 + rng.Float64()*8
			raw[i] = flow.Flow{Src: src, Dst: dst, Release: r, Deadline: d, Size: w}
			jobs[i] = yds.Job{ID: i, Release: r, Deadline: d, Work: w}
		}
		fs, err := flow.NewSet(raw)
		if err != nil {
			return false
		}
		p, err := top.Graph.ShortestPath(src, dst)
		if err != nil {
			return false
		}
		paths := map[flow.ID]graph.Path{}
		for _, f := range fs.Flows() {
			paths[f.ID] = p
		}
		alpha := 2.0
		res, err := SolveDCFS(DCFSInput{
			Graph: top.Graph, Flows: fs, Paths: paths,
			Model: power.Model{Mu: 1, Alpha: alpha},
		})
		if err != nil {
			return false
		}
		ydsRes, err := yds.Solve(jobs)
		if err != nil {
			return false
		}
		m := power.Model{Mu: 1, Alpha: alpha}
		return almostEqual(res.Schedule.EnergyDynamic(m), ydsRes.Energy(alpha), 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDCFSFeasibleOnFatTree: random workloads on a fat-tree with
// shortest-path routing always produce feasible schedules.
func TestDCFSFeasibleOnFatTree(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Sigma: 0.5, Mu: 1, Alpha: 2, C: 1e9}
	for seed := int64(0); seed < 5; seed++ {
		fs, err := flow.Uniform(flow.GenConfig{
			N: 30, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
			Hosts: ft.Hosts, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		paths := map[flow.ID]graph.Path{}
		for _, f := range fs.Flows() {
			p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
			if err != nil {
				t.Fatal(err)
			}
			paths[f.ID] = p
		}
		res, err := SolveDCFS(DCFSInput{Graph: ft.Graph, Flows: fs, Paths: paths, Model: m})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Schedule.Verify(ft.Graph, fs, m, schedule.VerifyOptions{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestDCFSEnergyNeverBelowJensenBound: per-link Jensen lower bound holds.
func TestDCFSEnergyNeverBelowJensenBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		line, err := topology.Line(4, 1e9)
		if err != nil {
			return false
		}
		n := 2 + rng.Intn(6)
		raw := make([]flow.Flow, 0, n)
		for i := 0; i < n; i++ {
			s := rng.Intn(3)
			d := s + 1 + rng.Intn(3-s)
			r := rng.Float64() * 10
			raw = append(raw, flow.Flow{
				Src: line.Hosts[s], Dst: line.Hosts[d],
				Release: r, Deadline: r + 1 + rng.Float64()*10,
				Size: 0.5 + rng.Float64()*5,
			})
		}
		fs, err := flow.NewSet(raw)
		if err != nil {
			return false
		}
		paths := map[flow.ID]graph.Path{}
		for _, f := range fs.Flows() {
			p, err := line.Graph.ShortestPath(f.Src, f.Dst)
			if err != nil {
				return false
			}
			paths[f.ID] = p
		}
		m := power.Model{Mu: 1, Alpha: 2}
		res, err := SolveDCFS(DCFSInput{Graph: line.Graph, Flows: fs, Paths: paths, Model: m})
		if err != nil {
			return false
		}
		got := res.Schedule.EnergyDynamic(m)
		// Jensen bound per link: energy >= sum_e |span_e| * (work_e/|span_e|)^alpha
		// over the hull window of the flows on e.
		linkWork := map[graph.EdgeID]float64{}
		linkLo := map[graph.EdgeID]float64{}
		linkHi := map[graph.EdgeID]float64{}
		for _, f := range fs.Flows() {
			for _, eid := range paths[f.ID].Edges {
				linkWork[eid] += f.Size
				if _, ok := linkLo[eid]; !ok {
					linkLo[eid] = f.Release
					linkHi[eid] = f.Deadline
				} else {
					linkLo[eid] = math.Min(linkLo[eid], f.Release)
					linkHi[eid] = math.Max(linkHi[eid], f.Deadline)
				}
			}
		}
		var bound float64
		for eid, w := range linkWork {
			span := linkHi[eid] - linkLo[eid]
			if span > 0 {
				bound += span * math.Pow(w/span, m.Alpha)
			}
		}
		return got >= bound*(1-1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDCFSSingleRatePerFlow: Lemma 1 — every flow uses one transmission
// rate across all its segments.
func TestDCFSSingleRatePerFlow(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: ft.Hosts, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := map[flow.ID]graph.Path{}
	for _, f := range fs.Flows() {
		p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	res, err := SolveDCFS(DCFSInput{
		Graph: ft.Graph, Flows: fs, Paths: paths,
		Model: power.Model{Mu: 1, Alpha: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.Schedule.FlowIDs() {
		fsch := res.Schedule.FlowSchedule(id)
		for _, seg := range fsch.Segments {
			if !almostEqual(seg.Rate, fsch.Segments[0].Rate, 1e-9) {
				t.Fatalf("flow %d uses multiple rates: %v vs %v", id, seg.Rate, fsch.Segments[0].Rate)
			}
		}
	}
}

// TestDCFSDecreasingIntensity: the critical-interval intensities are
// non-increasing across rounds (the YDS invariant).
func TestDCFSDecreasingIntensity(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 30, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: ft.Hosts, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	paths := map[flow.ID]graph.Path{}
	for _, f := range fs.Flows() {
		p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	res, err := SolveDCFS(DCFSInput{
		Graph: ft.Graph, Flows: fs, Paths: paths,
		Model: power.Model{Mu: 1, Alpha: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rounds); i++ {
		// Intensities may interleave across different links; the classic
		// invariant holds per link. Verify globally with a tolerant slack:
		// a later round on the same link must not exceed an earlier one.
		if res.Rounds[i].Link == res.Rounds[i-1].Link &&
			res.Rounds[i].Intensity > res.Rounds[i-1].Intensity+1e-6 {
			t.Fatalf("intensity increased on link %d: %v -> %v",
				res.Rounds[i].Link, res.Rounds[i-1].Intensity, res.Rounds[i].Intensity)
		}
	}
}

func TestSortedIDsHelper(t *testing.T) {
	m := map[flow.ID]int{3: 0, 1: 0, 2: 0}
	ids := sortedIDs(m)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("sortedIDs = %v", ids)
	}
}
