package core

import (
	"context"
	"fmt"
	"math"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
)

// ExactOptions bounds the brute-force DCFSR solver.
type ExactOptions struct {
	// PathsPerFlow bounds the candidate paths enumerated per flow (k
	// shortest, loopless); default 4.
	PathsPerFlow int
	// MaxAssignments aborts when the cross product of candidates exceeds
	// this bound; default 1 << 16.
	MaxAssignments int
}

func (o ExactOptions) withDefaults() ExactOptions {
	if o.PathsPerFlow <= 0 {
		o.PathsPerFlow = 4
	}
	if o.MaxAssignments <= 0 {
		o.MaxAssignments = 1 << 16
	}
	return o
}

// ExactResult is the brute-force optimum.
type ExactResult struct {
	// Energy is the minimum total energy Phi_f across all enumerated path
	// assignments (each scheduled optimally by Most-Critical-First).
	Energy float64
	// Paths is the optimal assignment.
	Paths map[flow.ID]graph.Path
	// Assignments is the number of assignments evaluated.
	Assignments int
	// Result is the Most-Critical-First output for the optimal assignment.
	Result *DCFSResult
}

// SolveDCFSRExact computes the exact DCFSR optimum (within the paper's
// virtual-circuit model with the capacity constraint relaxed) for SMALL
// instances by enumerating per-flow candidate paths and scheduling every
// assignment optimally with Most-Critical-First. Because the idle-energy
// term depends only on the set of active links — fixed once paths are
// chosen — per-assignment optimal scheduling plus exhaustive enumeration
// yields the global optimum over the candidate path sets.
//
// It exists to validate Random-Schedule empirically; its cost is
// exponential in the number of flows.
func SolveDCFSRExact(in DCFSRInput, opts ExactOptions) (*ExactResult, error) {
	return SolveDCFSRExactCtx(context.Background(), in, opts)
}

// SolveDCFSRExactCtx is SolveDCFSRExact under a context: cancellation is
// checked between path assignments, so the enumeration stops within one
// Most-Critical-First schedule of the context ending and returns the wrapped
// context error instead of the best-so-far assignment.
func SolveDCFSRExactCtx(ctx context.Context, in DCFSRInput, opts ExactOptions) (*ExactResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if in.Graph == nil || in.Flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := in.Model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	opts = opts.withDefaults()

	flows := in.Flows.Flows()
	candidates := make([][]graph.Path, len(flows))
	total := 1
	for i, f := range flows {
		paths, err := in.Graph.KShortestPaths(f.Src, f.Dst, opts.PathsPerFlow, nil)
		if err != nil {
			return nil, fmt.Errorf("core: exact candidates for flow %d: %w", f.ID, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("%w: flow %d has no path", ErrInfeasible, f.ID)
		}
		candidates[i] = paths
		total *= len(paths)
		if total > opts.MaxAssignments {
			return nil, fmt.Errorf("%w: assignment space exceeds %d", ErrBadInput, opts.MaxAssignments)
		}
	}

	best := &ExactResult{Energy: math.Inf(1)}
	if len(flows) == 0 {
		res, err := SolveDCFS(DCFSInput{Graph: in.Graph, Flows: in.Flows, Paths: map[flow.ID]graph.Path{}, Model: in.Model})
		if err != nil {
			return nil, err
		}
		return &ExactResult{Energy: 0, Paths: map[flow.ID]graph.Path{}, Assignments: 1, Result: res}, nil
	}

	idx := make([]int, len(flows))
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: exact enumeration interrupted after %d assignments: %w", best.Assignments, err)
		}
		assignment := make(map[flow.ID]graph.Path, len(flows))
		for i, f := range flows {
			assignment[f.ID] = candidates[i][idx[i]]
		}
		res, err := SolveDCFS(DCFSInput{Graph: in.Graph, Flows: in.Flows, Paths: assignment, Model: in.Model})
		if err != nil {
			return nil, fmt.Errorf("core: exact scheduling: %w", err)
		}
		best.Assignments++
		if energy := res.Schedule.EnergyTotal(in.Model); energy < best.Energy {
			best.Energy = energy
			best.Paths = assignment
			best.Result = res
		}
		// Advance the mixed-radix counter.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(candidates[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			break
		}
	}
	return best, nil
}
