package core

import (
	"math/rand"
	"testing"
)

// TestSamplePathZeroAllocs pins the randomized-rounding inner loop: drawing
// a path handle from a candidate distribution must never allocate.
func TestSamplePathZeroAllocs(t *testing.T) {
	list := []candidate{
		{handle: 0, weight: 0.45},
		{handle: 1, weight: 0.35},
		{handle: 2, weight: 0.20},
	}
	rng := rand.New(rand.NewSource(5))
	allocs := testing.AllocsPerRun(200, func() {
		_ = samplePath(rng, list)
	})
	if allocs != 0 {
		t.Fatalf("samplePath allocates %.1f times per run, want 0", allocs)
	}
}
