package core

import (
	"context"
	"errors"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// TestSolveDCFSRCtxPreCancelled: an ended context aborts before any
// relaxation work and surfaces the wrapped context error.
func TestSolveDCFSRCtxPreCancelled(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 10, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: ft.Hosts, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveDCFSRCtx(ctx, DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, %v", res, err)
	}
	if _, err := LowerBoundCtx(ctx, ft.Graph, fs, m, DCFSROptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("LowerBoundCtx error: %v", err)
	}
}

// TestSolveDCFSRPartialCtxCancelled: the epoch re-solve primitive obeys the
// same contract.
func TestSolveDCFSRPartialCtxCancelled(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 8, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3, Hosts: ft.Hosts, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveDCFSRPartialCtx(ctx, DCFSRPartialInput{
		Graph: ft.Graph,
		Flows: fs.Flows(),
		Model: power.Model{Mu: 1, Alpha: 2, C: 1e9},
		Now:   0,
	})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled partial solve returned %v, %v", res, err)
	}
}

// TestSolveDCFSRExactCtxCancelled: the enumeration checks between
// assignments.
func TestSolveDCFSRExactCtxCancelled(t *testing.T) {
	top, src, dst, err := topology.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: src, Dst: dst, Release: 0, Deadline: 5, Size: 4},
		{Src: src, Dst: dst, Release: 1, Deadline: 6, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveDCFSRExactCtx(ctx, DCFSRInput{
		Graph: top.Graph, Flows: fs, Model: power.Model{Mu: 1, Alpha: 2, C: 1e9},
	}, ExactOptions{})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled exact solve returned %v, %v", res, err)
	}
}
