package core

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

func partialModel() power.Model { return power.Model{Mu: 1, Alpha: 2, C: 1e9} }

// TestPartialMatchesFullRelaxationAtStart: with Now at the horizon start and
// nothing pinned, the residual instance IS the full instance, so the
// residual lower bound must equal core.LowerBound exactly.
func TestPartialMatchesFullRelaxationAtStart(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 12, 7)
	m := partialModel()
	opts := DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 25}}
	lb, err := LowerBound(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: fs.Flows(), Model: m, Now: 0, Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualLowerBound != lb {
		t.Fatalf("residual LB %v != offline LB %v", res.ResidualLowerBound, lb)
	}
	if !res.CapacityFeasible {
		t.Fatal("uncapped-scale instance reported infeasible")
	}
	for _, f := range fs.Flows() {
		p, ok := res.Paths[f.ID]
		if !ok {
			t.Fatalf("flow %d has no planned path", f.ID)
		}
		if err := p.Validate(ft.Graph, f.Src, f.Dst); err != nil {
			t.Fatalf("flow %d path invalid: %v", f.ID, err)
		}
		if got, want := res.Rates[f.ID], f.Density(); math.Abs(got-want) > 1e-9*want {
			t.Fatalf("flow %d rate %v, want density %v", f.ID, got, want)
		}
		if res.Starts[f.ID] != f.Release {
			t.Fatalf("flow %d start %v, want release %v", f.ID, res.Starts[f.ID], f.Release)
		}
	}
}

// TestPartialFrozenCommitments: pinned flows keep their path and only their
// residual data is re-planned.
func TestPartialFrozenCommitments(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 8, 3)
	m := partialModel()
	flows := fs.Flows()
	// Pin flow 0 to a deterministic shortest path with half its data sent.
	f0 := flows[0]
	pinPath, err := ft.Graph.ShortestPath(f0.Src, f0.Dst)
	if err != nil {
		t.Fatal(err)
	}
	now := (f0.Release + f0.Deadline) / 2
	// Keep only flows still alive at now.
	var active []flow.Flow
	for _, f := range flows {
		if f.Deadline > now+1 {
			active = append(active, f)
		}
	}
	if len(active) == 0 || active[0].ID != f0.ID && f0.Deadline <= now+1 {
		t.Skip("degenerate draw: pinned flow not alive at midpoint")
	}
	pinned := map[flow.ID]PinnedCommitment{
		f0.ID: {Path: pinPath, Transmitted: f0.Size / 2},
	}
	res, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: active, Model: m, Now: now, Pinned: pinned,
		Opts: DCFSROptions{Seed: 2, Solver: mcfsolve.Options{MaxIters: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Paths[f0.ID]
	if len(got.Edges) != len(pinPath.Edges) {
		t.Fatalf("pinned path not preserved: %v vs %v", got, pinPath)
	}
	for i := range got.Edges {
		if got.Edges[i] != pinPath.Edges[i] {
			t.Fatalf("pinned path not preserved: %v vs %v", got, pinPath)
		}
	}
	wantRate := (f0.Size / 2) / (f0.Deadline - now)
	if math.Abs(res.Rates[f0.ID]-wantRate) > 1e-9*wantRate {
		t.Fatalf("pinned residual rate %v, want %v", res.Rates[f0.ID], wantRate)
	}
	if res.Starts[f0.ID] != now {
		t.Fatalf("pinned start %v, want %v", res.Starts[f0.ID], now)
	}
}

// TestPartialCompletedFlowSkipped: a pinned flow with zero residual is
// complete and produces no plan entries.
func TestPartialCompletedFlowSkipped(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 4, 5)
	m := partialModel()
	flows := fs.Flows()
	f0 := flows[0]
	p, err := ft.Graph.ShortestPath(f0.Src, f0.Dst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: flows, Model: m, Now: 0,
		Pinned: map[flow.ID]PinnedCommitment{f0.ID: {Path: p, Transmitted: f0.Size}},
		Opts:   DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 15}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Paths[f0.ID]; ok {
		t.Fatal("completed flow received a plan")
	}
	if len(res.Paths) != len(flows)-1 {
		t.Fatalf("planned %d flows, want %d", len(res.Paths), len(flows)-1)
	}
}

// TestPartialExpiredDeadline: residual data past the deadline is infeasible.
func TestPartialExpiredDeadline(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 4, 9)
	m := partialModel()
	flows := fs.Flows()
	var latest float64
	for _, f := range flows {
		latest = math.Max(latest, f.Deadline)
	}
	_, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: flows, Model: m, Now: latest + 1,
		Opts: DCFSROptions{Seed: 1},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestPartialBadInput covers the validation paths.
func TestPartialBadInput(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 4, 11)
	m := partialModel()
	flows := fs.Flows()
	if _, err := SolveDCFSRPartial(DCFSRPartialInput{Flows: flows, Model: m}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil graph: %v", err)
	}
	dup := append([]flow.Flow{flows[0]}, flows...)
	if _, err := SolveDCFSRPartial(DCFSRPartialInput{Graph: ft.Graph, Flows: dup, Model: m}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("duplicate id: %v", err)
	}
	bad := map[flow.ID]PinnedCommitment{flows[0].ID: {Path: graph.Path{}, Transmitted: 0}}
	if _, err := SolveDCFSRPartial(DCFSRPartialInput{Graph: ft.Graph, Flows: flows, Model: m, Pinned: bad}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad pinned path: %v", err)
	}
	// Empty instance: everything complete is fine, not an error.
	res, err := SolveDCFSRPartial(DCFSRPartialInput{Graph: ft.Graph, Flows: nil, Model: m, Now: 5})
	if err != nil || len(res.Paths) != 0 {
		t.Fatalf("empty instance: %v, %v", res, err)
	}
}

// TestPartialArgmaxDeterministic: modal rounding is deterministic across
// runs and seeds.
func TestPartialArgmaxDeterministic(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 10, 13)
	m := partialModel()
	run := func(seed int64) map[flow.ID]string {
		res, err := SolveDCFSRPartial(DCFSRPartialInput{
			Graph: ft.Graph, Flows: fs.Flows(), Model: m, Now: 0, Argmax: true,
			Opts: DCFSROptions{Seed: seed, Solver: mcfsolve.Options{MaxIters: 20}},
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[flow.ID]string, len(res.Paths))
		for id, p := range res.Paths {
			out[id] = p.Key()
		}
		return out
	}
	a, b := run(1), run(99)
	for id := range a {
		if a[id] != b[id] {
			t.Fatalf("argmax rounding differs across seeds for flow %d", id)
		}
	}
}

// TestPartialWarmSeedingReducesIterations: a second epoch on a
// near-identical residual instance, seeded from the first epoch's
// decompositions, must converge in no more Frank–Wolfe iterations than the
// cold re-solve — the rolling-horizon payoff DESIGN.md promises.
func TestPartialWarmSeedingReducesIterations(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 24, 17)
	m := partialModel()
	base := DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 60, Tol: 1e-4}, WarmStart: true}

	first, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: fs.Flows(), Model: m, Now: 0, Opts: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shift the re-plan instant slightly: same flows, near-identical
	// intervals.
	epoch2 := func(prev *RelaxationState, warm bool) *DCFSRPartialResult {
		opts := base
		opts.WarmStart = warm
		res, err := SolveDCFSRPartial(DCFSRPartialInput{
			Graph: ft.Graph, Flows: fs.Flows(), Model: m, Now: 0.5,
			Prev: prev, Opts: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	warm := epoch2(first.State, true)
	cold := epoch2(nil, false)
	if warm.SeededIntervals == 0 {
		t.Fatal("no interval received a cross-epoch seed")
	}
	if warm.FWIters > cold.FWIters {
		t.Fatalf("warm-seeded epoch used %d FW iters, cold used %d", warm.FWIters, cold.FWIters)
	}
	// The warm epoch must reach a lower-or-equal objective: seeding never
	// degrades the bound materially.
	if warm.ResidualLowerBound > cold.ResidualLowerBound*1.01 {
		t.Fatalf("warm LB %v much worse than cold %v", warm.ResidualLowerBound, cold.ResidualLowerBound)
	}
}

// TestPartialExternalIntervals: caller-supplied segmentation (the
// incremental BreakpointSet path) gives the same lower bound as the
// internally rebuilt one when the segmentations agree.
func TestPartialExternalIntervals(t *testing.T) {
	ft, fs := fatTreeWorkload(t, 4, 10, 19)
	m := partialModel()
	opts := DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 20}}
	now := 2.0
	var alive []flow.Flow
	var bset timeline.BreakpointSet
	for _, f := range fs.Flows() {
		if f.Deadline > now+1e-6 {
			alive = append(alive, f)
			bset.Insert(math.Max(f.Release, now), f.Deadline)
		}
	}
	auto, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: alive, Model: m, Now: now, Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	manual, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: ft.Graph, Flows: alive, Model: m, Now: now,
		Intervals: bset.IntervalsFrom(now), Opts: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if auto.ResidualLowerBound != manual.ResidualLowerBound {
		t.Fatalf("external intervals LB %v != internal %v", manual.ResidualLowerBound, auto.ResidualLowerBound)
	}
}
