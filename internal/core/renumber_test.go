package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/topology"
)

// renumberCorpus builds the same seven topology families as the graph
// package's compile corpus, each with a deadline-feasible uniform workload
// over its hosts. Kept deliberately small: the cross-product below runs
// every family under two memory layouts times three oracle worker counts,
// and make test-race-online replays it all under -race.
func renumberCorpus(t *testing.T) map[string]struct {
	top   *topology.Topology
	flows *flow.Set
} {
	t.Helper()
	out := map[string]struct {
		top   *topology.Topology
		flows *flow.Set
	}{}
	add := func(name string, top *topology.Topology, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fl, err := flow.Uniform(flow.GenConfig{
			N: 10, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
			Hosts: top.Hosts, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s workload: %v", name, err)
		}
		out[name] = struct {
			top   *topology.Topology
			flows *flow.Set
		}{top, fl}
	}
	ft, err := topology.FatTree(4, 10)
	add("fattree-k4", ft, err)
	bc, err := topology.BCube(2, 1, 10)
	add("bcube-2-1", bc, err)
	ls, err := topology.LeafSpine(2, 3, 2, 10)
	add("leafspine", ls, err)
	vl, err := topology.VL2(4, 4, 4, 2, 10)
	add("vl2", vl, err)
	jf, err := topology.Jellyfish(8, 3, 1, 10, 7)
	add("jellyfish", jf, err)
	ln, err := topology.Line(4, 10)
	add("line-4", ln, err)
	st, err := topology.Star(4, 10)
	add("star-4", st, err)
	return out
}

// scheduleFingerprint renders a DCFSR result as an exact byte string: the
// raw IEEE-754 bits of the bound and energy plus every flow's path and
// rate segments. Two runs are "byte-identical" iff these strings match.
func scheduleFingerprint(res *DCFSRResult, energy float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lb=%016x energy=%016x\n",
		math.Float64bits(res.LowerBound), math.Float64bits(energy))
	ids := res.Schedule.FlowIDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fs := res.Schedule.FlowSchedule(id)
		fmt.Fprintf(&b, "flow %d path=%s prio=%d", id, fs.Path.Key(), fs.Priority)
		for _, seg := range fs.Segments {
			fmt.Fprintf(&b, " [%016x,%016x)@%016x",
				math.Float64bits(seg.Interval.Start), math.Float64bits(seg.Interval.End),
				math.Float64bits(seg.Rate))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestRenumberDeterminismAcrossFamilies is the cross-family determinism
// guard of the cache-locality overhaul: for all seven topology families,
// solving on the BFS-renumbered hot layout and on the identity layout,
// at oracle worker counts 1, 2 and NumCPU, must produce byte-identical
// schedules, bounds and energies. The memory layout and the parallelism
// grid are pure performance knobs; any drift here means a tie-break
// compared hot ids instead of original ids.
func TestRenumberDeterminismAcrossFamilies(t *testing.T) {
	workers := []int{1, 2, runtime.NumCPU()}
	m := partialModel()
	for name, tc := range renumberCorpus(t) {
		g := tc.top.Graph
		layouts := map[string]*graph.Compiled{
			"renumbered": graph.Compile(g),
			"identity":   graph.CompileIdentity(g),
		}
		want, wantFrom := "", ""
		for lname, c := range layouts {
			for _, w := range workers {
				res, err := SolveDCFSR(DCFSRInput{
					Graph:    g,
					Compiled: c,
					Flows:    tc.flows,
					Model:    m,
					Opts: DCFSROptions{
						Seed:   1,
						Solver: mcfsolve.Options{MaxIters: 24, OracleWorkers: w},
					},
				})
				if err != nil {
					t.Fatalf("%s %s workers=%d: %v", name, lname, w, err)
				}
				got := scheduleFingerprint(res, res.Schedule.EnergyTotal(m))
				label := fmt.Sprintf("%s workers=%d", lname, w)
				if want == "" {
					want, wantFrom = got, label
					continue
				}
				if got != want {
					t.Fatalf("%s: %s diverges from %s:\n--- want ---\n%s--- got ---\n%s",
						name, label, wantFrom, want, got)
				}
			}
		}
	}
}
