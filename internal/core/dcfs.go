// Package core implements the paper's two contributions: the optimal
// Most-Critical-First algorithm for Deadline-Constrained Flow Scheduling
// (DCFS, Section III) and the Random-Schedule approximation for joint
// Deadline-Constrained Flow Scheduling and Routing (DCFSR, Section V),
// together with the fractional lower bound used to normalise the
// evaluation.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// taskInfo is a critical-round flow with its required transmission duration
// and the union of blocked slots across its path links.
type taskInfo struct {
	f        flow.Flow
	duration float64
	avail    *timeline.SlotSet // union of blocked slots over path links
}

// Errors returned by the core solvers.
var (
	ErrInfeasible = errors.New("core: infeasible instance")
	ErrBadInput   = errors.New("core: invalid input")
)

// errNoCandidate signals that no (link, window) candidate with positive
// availability remains — the surviving flows can only be scheduled by
// sharing links (the packet-switching extension of Section III-C).
var errNoCandidate = errors.New("core: no candidate critical interval")

// DCFSInput is an instance of the Deadline-Constrained Flow Scheduling
// problem: routing paths are given, transmission rates are to be chosen.
type DCFSInput struct {
	Graph *graph.Graph
	Flows *flow.Set
	// Paths maps every flow to its (given) routing path P_i.
	Paths map[flow.ID]graph.Path
	Model power.Model
}

// CriticalRound records one iteration of Most-Critical-First for
// diagnostics: the critical link, the critical interval, the intensity and
// the flows scheduled in the round.
type CriticalRound struct {
	Link      graph.EdgeID
	Window    timeline.Interval
	Intensity float64
	FlowIDs   []flow.ID
}

// DCFSResult is the output of Most-Critical-First.
type DCFSResult struct {
	Schedule *schedule.Schedule
	// Rounds logs the critical intervals in scheduling order.
	Rounds []CriticalRound
	// Conflicts counts flows whose execution could not be placed fully
	// conflict-free across all their path links (see the package note on
	// the virtual-circuit assumption); their remainders were placed using
	// the paper-literal critical-link availability.
	Conflicts int
}

// validate checks the DCFS input.
func (in DCFSInput) validate() error {
	if in.Graph == nil || in.Flows == nil {
		return fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := in.Model.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	for _, f := range in.Flows.Flows() {
		p, ok := in.Paths[f.ID]
		if !ok {
			return fmt.Errorf("%w: flow %d has no path", ErrBadInput, f.ID)
		}
		if err := p.Validate(in.Graph, f.Src, f.Dst); err != nil {
			return fmt.Errorf("%w: flow %d: %v", ErrBadInput, f.ID, err)
		}
		if p.Len() == 0 {
			return fmt.Errorf("%w: flow %d has empty path", ErrBadInput, f.ID)
		}
	}
	return nil
}

// SolveDCFS runs the Most-Critical-First algorithm (Algorithm 1): it
// iteratively finds the (link, interval) pair with the highest intensity
// delta(I, e) = sum of contained virtual weights / available time
// (Definitions 1-2), schedules the contained flows with preemptive EDF at
// the rates of Theorem 1,
//
//	s_i = sum_j w'_j / (|P_i|^(1/alpha) * (a ~ b)),
//
// and marks the execution slots unavailable on every link of each
// scheduled flow's path. The resulting schedule is optimal for DCFS
// (Corollary 1). The maximum-rate constraint is relaxed, as justified in
// Section III-A.
func SolveDCFS(in DCFSInput) (*DCFSResult, error) {
	return SolveDCFSCtx(context.Background(), in)
}

// SolveDCFSCtx is SolveDCFS under a context: cancellation is checked between
// Most-Critical-First rounds and the wrapped context error is returned
// instead of a partial schedule.
func SolveDCFSCtx(ctx context.Context, in DCFSInput) (*DCFSResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := in.validate(); err != nil {
		return nil, err
	}
	t0, t1 := in.Flows.Horizon()
	sched := schedule.New(timeline.Interval{Start: t0, End: t1})
	res := &DCFSResult{Schedule: sched}
	if in.Flows.Len() == 0 {
		return res, nil
	}

	flows := in.Flows.Flows()
	// Per-link pending flow lists.
	linkFlows := make(map[graph.EdgeID][]flow.ID)
	for _, f := range flows {
		for _, eid := range in.Paths[f.ID].Edges {
			linkFlows[eid] = append(linkFlows[eid], f.ID)
		}
	}
	// Virtual weights w'_i = w_i * |P_i|^(1/alpha).
	vweight := make(map[flow.ID]float64, len(flows))
	for _, f := range flows {
		vweight[f.ID] = in.Model.VirtualWeight(f.Size, in.Paths[f.ID].Len())
	}

	pending := make(map[flow.ID]flow.Flow, len(flows))
	for _, f := range flows {
		pending[f.ID] = f
	}
	blocked := make(map[graph.EdgeID]*timeline.SlotSet)
	blockedOn := func(eid graph.EdgeID) *timeline.SlotSet {
		b, ok := blocked[eid]
		if !ok {
			b = &timeline.SlotSet{}
			blocked[eid] = b
		}
		return b
	}

	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: MCF interrupted with %d flows pending: %w", len(pending), err)
		}
		round, err := findCritical(pending, linkFlows, vweight, blockedOn)
		if errors.Is(err, errNoCandidate) {
			// Every remaining flow's span is fully blocked on all its
			// links by earlier virtual circuits. Exclusive occupancy is
			// impossible; fall back to link sharing (packet-switching
			// extension): transmit each flow at its density rate across
			// its whole span and account the superposed energy honestly.
			if ferr := scheduleSharedFallback(in, sched, pending, blockedOn); ferr != nil {
				return nil, ferr
			}
			res.Conflicts += len(pending)
			pending = map[flow.ID]flow.Flow{}
			break
		}
		if err != nil {
			return nil, err
		}
		avail := blockedOn(round.Link).AvailableWithin(round.Window.Start, round.Window.End)
		var sumW float64
		for _, id := range round.FlowIDs {
			sumW += vweight[id]
		}

		// Rates and durations (Theorem 1): duration_i = w'_i * avail / sumW.
		slots, conflicts, err := packCritical(in, round, pending, vweight, sumW, avail, blocked, blockedOn)
		if err != nil {
			return nil, err
		}
		res.Conflicts += conflicts

		for _, fid := range round.FlowIDs {
			// Rate = size / scheduled time. For unclamped flows this equals
			// the Theorem 1 closed form sumW / (|P|^(1/alpha) * avail); for
			// span-clamped flows it rises to at least the density, keeping
			// the data-completion identity exact either way.
			var placed float64
			for _, iv := range slots[fid] {
				placed += iv.Length()
			}
			if placed <= timeline.Eps {
				return nil, fmt.Errorf("%w: flow %d received no transmission time", ErrInfeasible, fid)
			}
			rate := pending[fid].Size / placed
			segs := make([]schedule.RateSegment, 0, len(slots[fid]))
			for _, iv := range slots[fid] {
				segs = append(segs, schedule.RateSegment{Interval: iv, Rate: rate})
			}
			if err := sched.SetFlow(&schedule.FlowSchedule{
				FlowID:   fid,
				Path:     in.Paths[fid].Clone(),
				Segments: segs,
			}); err != nil {
				return nil, fmt.Errorf("core: installing flow %d: %w", fid, err)
			}
			// Block the slots on every link of the path (virtual circuit).
			for _, eid := range in.Paths[fid].Edges {
				blockedOn(eid).AddAll(slots[fid])
			}
			delete(pending, fid)
		}
		res.Rounds = append(res.Rounds, round)
	}
	sched.AssignPriorities()
	return res, nil
}

// findCritical scans all (link, window) candidates and returns the most
// critical one. Windows start at a pending release and end at a pending
// deadline of flows on the link.
func findCritical(
	pending map[flow.ID]flow.Flow,
	linkFlows map[graph.EdgeID][]flow.ID,
	vweight map[flow.ID]float64,
	blockedOn func(graph.EdgeID) *timeline.SlotSet,
) (CriticalRound, error) {
	best := CriticalRound{Intensity: -1}
	found := false

	// Deterministic link order.
	links := make([]graph.EdgeID, 0, len(linkFlows))
	for eid := range linkFlows {
		links = append(links, eid)
	}
	sort.Slice(links, func(a, b int) bool { return links[a] < links[b] })

	for _, eid := range links {
		var active []flow.Flow
		for _, fid := range linkFlows[eid] {
			if f, ok := pending[fid]; ok {
				active = append(active, f)
			}
		}
		if len(active) == 0 {
			continue
		}
		releases := make([]float64, 0, len(active))
		deadlines := make([]float64, 0, len(active))
		for _, f := range active {
			releases = append(releases, f.Release)
			deadlines = append(deadlines, f.Deadline)
		}
		releases = timeline.Breakpoints(releases)
		deadlines = timeline.Breakpoints(deadlines)
		blk := blockedOn(eid)

		for _, a := range releases {
			for _, b := range deadlines {
				if b <= a {
					continue
				}
				var sumW float64
				contained := false
				for _, f := range active {
					if f.Release >= a-timeline.Eps && f.Deadline <= b+timeline.Eps {
						sumW += vweight[f.ID]
						contained = true
					}
				}
				if !contained {
					continue
				}
				avail := blk.AvailableWithin(a, b)
				if avail <= timeline.Eps {
					// Fully blocked window: a larger window may still
					// cover the contained flows; if none does, the caller
					// falls back to link sharing.
					continue
				}
				delta := sumW / avail
				if delta > best.Intensity+timeline.Eps {
					best = CriticalRound{Link: eid, Window: timeline.Interval{Start: a, End: b}, Intensity: delta}
					found = true
				}
			}
		}
	}
	if !found {
		return CriticalRound{}, errNoCandidate
	}
	// Collect the flow set of the winning candidate.
	for _, fid := range linkFlows[best.Link] {
		f, ok := pending[fid]
		if !ok {
			continue
		}
		if f.Release >= best.Window.Start-timeline.Eps && f.Deadline <= best.Window.End+timeline.Eps {
			best.FlowIDs = append(best.FlowIDs, fid)
		}
	}
	sort.Slice(best.FlowIDs, func(a, b int) bool { return best.FlowIDs[a] < best.FlowIDs[b] })
	return best, nil
}

// packCritical places the critical flows' execution slots. It first runs a
// path-aware preemptive EDF (a flow may transmit only while every link of
// its path is free), then falls back to the paper-literal critical-link
// availability for any remainder, counting such flows as conflicts.
func packCritical(
	in DCFSInput,
	round CriticalRound,
	pending map[flow.ID]flow.Flow,
	vweight map[flow.ID]float64,
	sumW, avail float64,
	blocked map[graph.EdgeID]*timeline.SlotSet,
	blockedOn func(graph.EdgeID) *timeline.SlotSet,
) (map[flow.ID][]timeline.Interval, int, error) {
	// Per-flow availability: complement of the union of blocked slots over
	// the flow's path links, within the critical window.
	window := round.Window
	tasks := make([]taskInfo, 0, len(round.FlowIDs))
	for _, fid := range round.FlowIDs {
		f := pending[fid]
		// Theorem 1 duration, clamped to the flow's span: when earlier
		// rounds blocked most of the flow's span on this link, the
		// critical window's availability can exceed what the flow can
		// physically use, and the un-clamped duration would overrun the
		// deadline. Clamping raises the flow's rate to at least its
		// density.
		dur := math.Min(vweight[fid]*avail/sumW, f.Span())
		union := &timeline.SlotSet{}
		for _, eid := range in.Paths[fid].Edges {
			if b, ok := blocked[eid]; ok {
				union.AddAll(b.Slots())
			}
		}
		tasks = append(tasks, taskInfo{f: f, duration: dur, avail: union})
	}

	out, remaining := edfPathAware(tasks, window)

	conflicts := 0
	if len(remaining) > 0 {
		// Fallback: place remainders on the critical link's availability
		// (the paper-literal rule), avoiding each flow's already-assigned
		// slots.
		critBlocked := blockedOn(round.Link)
		for _, ti := range tasks {
			rem := remaining[ti.f.ID]
			if rem <= timeline.Eps {
				continue
			}
			conflicts++
			own := &timeline.SlotSet{}
			own.AddAll(critBlocked.Slots())
			own.AddAll(out[ti.f.ID])
			free := own.Complement(math.Max(window.Start, ti.f.Release), math.Min(window.End, ti.f.Deadline))
			rem = placeGreedy(out, ti.f.ID, free, rem)
			if rem > timeline.Eps {
				// Last resort: ignore the critical link's other flows and
				// respect only this flow's own occupancy within its span.
				own2 := &timeline.SlotSet{}
				own2.AddAll(out[ti.f.ID])
				free2 := own2.Complement(ti.f.Release, ti.f.Deadline)
				rem = placeGreedy(out, ti.f.ID, free2, rem)
			}
			if rem > 1e-6 {
				return nil, conflicts, fmt.Errorf("%w: flow %d cannot place %v units of transmission time",
					ErrInfeasible, ti.f.ID, rem)
			}
		}
	}
	// Normalise slot lists.
	for fid, slots := range out {
		set := &timeline.SlotSet{}
		set.AddAll(slots)
		out[fid] = set.Slots()
	}
	return out, conflicts, nil
}

// scheduleSharedFallback installs the remaining flows at their density
// rates across their whole spans, sharing links with earlier virtual
// circuits. Deadlines are still met (density completes exactly at the
// deadline); the superposed link rates raise the measured energy, which the
// accounting reflects.
func scheduleSharedFallback(
	in DCFSInput,
	sched *schedule.Schedule,
	pending map[flow.ID]flow.Flow,
	blockedOn func(graph.EdgeID) *timeline.SlotSet,
) error {
	for _, fid := range sortedIDs(pending) {
		f := pending[fid]
		iv := timeline.Interval{Start: f.Release, End: f.Deadline}
		if err := sched.SetFlow(&schedule.FlowSchedule{
			FlowID:   fid,
			Path:     in.Paths[fid].Clone(),
			Segments: []schedule.RateSegment{{Interval: iv, Rate: f.Density()}},
		}); err != nil {
			return fmt.Errorf("core: installing shared-fallback flow %d: %w", fid, err)
		}
		for _, eid := range in.Paths[fid].Edges {
			blockedOn(eid).Add(iv)
		}
	}
	return nil
}

// placeGreedy assigns up to rem time from the free slots (ascending) to the
// flow and returns the remaining unplaced time.
func placeGreedy(out map[flow.ID][]timeline.Interval, fid flow.ID, free []timeline.Interval, rem float64) float64 {
	for _, iv := range free {
		if rem <= timeline.Eps {
			break
		}
		take := math.Min(rem, iv.Length())
		out[fid] = append(out[fid], timeline.Interval{Start: iv.Start, End: iv.Start + take})
		rem -= take
	}
	return rem
}
