package core

import (
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/timeline"
)

// edfPathAware runs preemptive EDF over the critical window where each task
// may transmit only while every link of its path is free (its blocked slot
// set does not cover the instant). It returns the execution slots per flow
// and the remaining unplaced durations (empty when fully packed).
func edfPathAware(tasks []taskInfo, window timeline.Interval) (map[flow.ID][]timeline.Interval, map[flow.ID]float64) {
	out := make(map[flow.ID][]timeline.Interval, len(tasks))
	remaining := make(map[flow.ID]float64, len(tasks))
	lastEnd := make(map[flow.ID]float64, len(tasks))
	for _, ti := range tasks {
		remaining[ti.f.ID] = ti.duration
	}

	// Event boundaries: window edges, releases, deadlines, and blocked-slot
	// boundaries of every task. Between consecutive boundaries each task's
	// eligibility is constant.
	bounds := []float64{window.Start, window.End}
	for _, ti := range tasks {
		bounds = append(bounds, clamp(ti.f.Release, window), clamp(ti.f.Deadline, window))
		for _, s := range ti.avail.Slots() {
			if s.End <= window.Start || s.Start >= window.End {
				continue
			}
			bounds = append(bounds, clamp(s.Start, window), clamp(s.End, window))
		}
	}
	bounds = timeline.Breakpoints(bounds)

	for bi := 0; bi+1 < len(bounds); bi++ {
		t, tNext := bounds[bi], bounds[bi+1]
		for t < tNext-timeline.Eps {
			mid := (t + tNext) / 2
			best := -1
			for i, ti := range tasks {
				if remaining[ti.f.ID] <= timeline.Eps {
					continue
				}
				if ti.f.Release > t+timeline.Eps || ti.f.Deadline < tNext-timeline.Eps {
					continue
				}
				if ti.avail.Contains(mid) {
					continue
				}
				if best == -1 ||
					ti.f.Deadline < tasks[best].f.Deadline-timeline.Eps ||
					(math.Abs(ti.f.Deadline-tasks[best].f.Deadline) <= timeline.Eps && ti.f.ID < tasks[best].f.ID) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			fid := tasks[best].f.ID
			run := math.Min(remaining[fid], tNext-t)
			slot := timeline.Interval{Start: t, End: t + run}
			if len(out[fid]) > 0 && slot.Start-lastEnd[fid] <= timeline.Eps {
				out[fid][len(out[fid])-1].End = slot.End
			} else {
				out[fid] = append(out[fid], slot)
			}
			lastEnd[fid] = slot.End
			remaining[fid] -= run
			t += run
		}
	}
	for fid, rem := range remaining {
		if rem <= timeline.Eps {
			delete(remaining, fid)
		}
	}
	return out, remaining
}

func clamp(t float64, window timeline.Interval) float64 {
	return math.Max(window.Start, math.Min(window.End, t))
}

// sortedIDs returns map keys in ascending order (test helper shared within
// the package).
func sortedIDs[T any](m map[flow.ID]T) []flow.ID {
	out := make([]flow.ID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
