package core

import (
	"errors"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

// deltaFixture builds a two-interval delta scenario on parallel links: a
// previous full solve over [0, 10] and [10, 20] with stamped fingerprints,
// and one batch arrival whose deadline 10 touches only the first interval.
func deltaFixture(t *testing.T) (*topology.Topology, graph.NodeID, graph.NodeID, *RelaxationState, []timeline.Interval) {
	t.Helper()
	top, src, dst, err := topology.ParallelLinks(2, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveDCFSRPartial(DCFSRPartialInput{
		Graph: top.Graph,
		Flows: []flow.Flow{
			{ID: 1, Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 20},
			{ID: 2, Src: src, Dst: dst, Release: 0, Deadline: 20, Size: 30},
		},
		Model: partialModel(),
		Now:   0,
		Delta: DeltaOptions{Enabled: true, DriftBound: 0.5},
		Opts:  DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := full.State
	if len(st.Fingerprints) != len(st.Intervals) {
		t.Fatalf("classic solve with Delta.Enabled stamped %d fingerprints for %d intervals",
			len(st.Fingerprints), len(st.Intervals))
	}
	// Stamp the loads the way the rolling scheduler does after admissions:
	// a flat committed load of 1 on every edge in both intervals.
	nE := top.Graph.NumEdges()
	for k := range st.Fingerprints {
		load := make([]float64, nE)
		for e := range load {
			load[e] = 1
		}
		st.Fingerprints[k].Load = load
	}
	return top, src, dst, st, st.Intervals
}

// deltaInput assembles the batch-only delta input against the fixture state.
func deltaInput(top *topology.Topology, src, dst graph.NodeID, st *RelaxationState, intervals []timeline.Interval, base func(timeline.Interval, []float64)) DCFSRPartialInput {
	return DCFSRPartialInput{
		Graph:     top.Graph,
		Flows:     []flow.Flow{{ID: 9, Src: src, Dst: dst, Release: 0, Deadline: 10, Size: 10}},
		Model:     partialModel(),
		Now:       0,
		Intervals: intervals,
		Prev:      st,
		BaseLoad:  base,
		Delta:     DeltaOptions{Enabled: true, DriftBound: 0.5},
		Opts:      DCFSROptions{Seed: 1, Solver: mcfsolve.Options{MaxIters: 20}},
	}
}

// TestDeltaBaseLoadRejectsPinned: the background load replaces pinned
// commodities, so supplying both is a contract violation.
func TestDeltaBaseLoadRejectsPinned(t *testing.T) {
	top, src, dst, st, intervals := deltaFixture(t)
	in := deltaInput(top, src, dst, st, intervals, func(iv timeline.Interval, out []float64) {})
	in.Pinned = map[flow.ID]PinnedCommitment{
		2: {Path: graph.Path{Edges: []graph.EdgeID{0}}, Demand: 1.5},
	}
	if _, err := SolveDCFSRPartial(in); !errors.Is(err, ErrBadInput) {
		t.Fatalf("BaseLoad with Pinned: err = %v, want ErrBadInput", err)
	}
}

// TestDeltaDeclinesWithoutPrev: a BaseLoad instance with no previous
// fingerprinted state must come back unused (thin result, no plan) instead
// of silently planning the batch on an empty network.
func TestDeltaDeclinesWithoutPrev(t *testing.T) {
	top, src, dst, _, intervals := deltaFixture(t)
	in := deltaInput(top, src, dst, nil, intervals, func(iv timeline.Interval, out []float64) {})
	res, err := SolveDCFSRPartial(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaUsed {
		t.Fatal("DeltaUsed = true without a previous state")
	}
	if len(res.Paths) != 0 {
		t.Fatalf("declined delta carried a plan for %d flows", len(res.Paths))
	}
}

// TestDeltaDeclinesOnDrift: when an untouched interval's background load
// moved past DriftBound relative to its stamped snapshot, the delta solve
// must decline so the caller re-plans fully.
func TestDeltaDeclinesOnDrift(t *testing.T) {
	top, src, dst, st, intervals := deltaFixture(t)
	in := deltaInput(top, src, dst, st, intervals, func(iv timeline.Interval, out []float64) {
		for e := range out {
			out[e] = 1
		}
		if iv.Start >= 10-timeline.Eps {
			// The untouched interval [10, 20]: stamped at 1, now 10 —
			// relative deviation 0.9 > DriftBound 0.5.
			for e := range out {
				out[e] = 10
			}
		}
	})
	res, err := SolveDCFSRPartial(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaUsed {
		t.Fatal("DeltaUsed = true despite drift past the bound")
	}
}

// TestDeltaDeclinesOnStale: an untouched interval already reused up to
// MaxStaleEpochs forces a decline.
func TestDeltaDeclinesOnStale(t *testing.T) {
	top, src, dst, st, intervals := deltaFixture(t)
	st.Fingerprints[1].Stale = 3
	in := deltaInput(top, src, dst, st, intervals, func(iv timeline.Interval, out []float64) {
		for e := range out {
			out[e] = 1
		}
	})
	in.Delta.MaxStaleEpochs = 3
	res, err := SolveDCFSRPartial(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaUsed {
		t.Fatal("DeltaUsed = true despite the stale cap")
	}
}

// TestDeltaSolveLocalizes: with matching grids and unchanged loads the
// delta path must run, reuse the uncovered interval verbatim, and plan the
// batch flow.
func TestDeltaSolveLocalizes(t *testing.T) {
	top, src, dst, st, intervals := deltaFixture(t)
	in := deltaInput(top, src, dst, st, intervals, func(iv timeline.Interval, out []float64) {
		for e := range out {
			out[e] = 1
		}
	})
	res, err := SolveDCFSRPartial(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeltaUsed {
		t.Fatal("DeltaUsed = false on an unchanged instance")
	}
	if res.ReusedIntervals != 1 {
		t.Fatalf("ReusedIntervals = %d, want 1 (the uncovered [10, 20])", res.ReusedIntervals)
	}
	if res.Drift != 0 {
		t.Fatalf("Drift = %v, want 0 for identical loads", res.Drift)
	}
	p, ok := res.Paths[9]
	if !ok {
		t.Fatal("batch flow 9 has no planned path")
	}
	if err := p.Validate(top.Graph, src, dst); err != nil {
		t.Fatalf("planned path invalid: %v", err)
	}
	if got, want := res.Rates[9], 1.0; got != want { // 10 data over span 10
		t.Fatalf("rate = %v, want %v", got, want)
	}
	// The carried state must be full-length with the reused interval staler
	// by one and the touched interval fresh.
	if len(res.State.Fingerprints) != 2 {
		t.Fatalf("state has %d fingerprints, want 2", len(res.State.Fingerprints))
	}
	if res.State.Fingerprints[1].Stale != 1 {
		t.Fatalf("reused interval Stale = %d, want 1", res.State.Fingerprints[1].Stale)
	}
	if res.State.Fingerprints[0].Stale != 0 {
		t.Fatalf("touched interval Stale = %d, want 0", res.State.Fingerprints[0].Stale)
	}
	if res.State.Results[1] != st.Results[1] {
		t.Fatal("uncovered interval's result was not carried verbatim")
	}
}
