package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// DCFSROptions tunes the Random-Schedule approximation.
type DCFSROptions struct {
	// Seed drives the randomized rounding; runs are deterministic per seed.
	Seed int64
	// MaxRoundingAttempts bounds the re-rounding loop used when a sampled
	// path assignment violates link capacities (Section V-A: "we can
	// always repeat the randomized rounding process until we obtain a
	// feasible solution"). Default 20.
	MaxRoundingAttempts int
	// Solver configures the per-interval F-MCF relaxation.
	Solver mcfsolve.Options
	// Parallelism bounds concurrent per-interval solves; default NumCPU.
	Parallelism int
}

func (o DCFSROptions) withDefaults() DCFSROptions {
	if o.MaxRoundingAttempts <= 0 {
		o.MaxRoundingAttempts = 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// DCFSRInput is an instance of the joint scheduling-and-routing problem.
type DCFSRInput struct {
	Graph *graph.Graph
	Flows *flow.Set
	Model power.Model
	Opts  DCFSROptions
}

// DCFSRResult is the output of Random-Schedule.
type DCFSRResult struct {
	// Schedule assigns every flow a single path and the constant density
	// rate D_i across its span (the fluid equivalent of the per-interval
	// EDF time-sharing at rate sum D_j; link rates and energy coincide).
	Schedule *schedule.Schedule
	// LowerBound is the fractional relaxation value: sum over intervals of
	// |I_k| times the envelope-cost F-MCF optimum. It is the LB series the
	// paper's Fig. 2 normalises by.
	LowerBound float64
	// FractionalObjective equals LowerBound (kept for clarity when callers
	// log both).
	FractionalObjective float64
	// Attempts is the number of rounding attempts consumed.
	Attempts int
	// CapacityFeasible reports whether the returned assignment satisfies
	// all link capacities (always true for uncapped models).
	CapacityFeasible bool
	// MaxRate is the maximum per-link per-interval aggregate rate.
	MaxRate float64
	// Intervals is K, the number of decomposition intervals.
	Intervals int
	// Lambda is (t_K - t_0) / min_k |I_k| (Theorem 6).
	Lambda float64
}

// candidate is one entry of a flow's rounded path distribution.
type candidate struct {
	path   graph.Path
	weight float64
}

// relaxation holds the solved multi-step F-MCF.
type relaxation struct {
	intervals  []timeline.Interval
	comms      [][]mcfsolve.Commodity
	results    []*mcfsolve.Result
	lowerBound float64
	lambda     float64
}

// solveRelaxation decomposes the horizon at flow release/deadline
// breakpoints and solves one F-MCF per interval (concurrently).
func solveRelaxation(g *graph.Graph, flows *flow.Set, m power.Model, opts DCFSROptions) (*relaxation, error) {
	var times []float64
	for _, f := range flows.Flows() {
		times = append(times, f.Release, f.Deadline)
	}
	breaks := timeline.Breakpoints(times)
	intervals := timeline.Decompose(breaks)

	rel := &relaxation{
		intervals: intervals,
		comms:     make([][]mcfsolve.Commodity, len(intervals)),
		results:   make([]*mcfsolve.Result, len(intervals)),
		lambda:    timeline.Lambda(breaks),
	}
	for k, iv := range intervals {
		for _, f := range flows.Flows() {
			if f.Release <= iv.Start+timeline.Eps && f.Deadline >= iv.End-timeline.Eps {
				rel.comms[k] = append(rel.comms[k], mcfsolve.Commodity{
					ID: f.ID, Src: f.Src, Dst: f.Dst, Demand: f.Density(),
				})
			}
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, opts.Parallelism)
	for k := range intervals {
		if len(rel.comms[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, err := mcfsolve.Solve(g, rel.comms[k], m, opts.Solver)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("interval %d: %w", k, err)
				}
				mu.Unlock()
				return
			}
			rel.results[k] = res
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for k, res := range rel.results {
		if res != nil {
			rel.lowerBound += res.Objective * intervals[k].Length()
		}
	}
	return rel, nil
}

// LowerBound computes the fractional relaxation value on its own — the
// normalisation denominator of Fig. 2 — without running the rounding.
func LowerBound(g *graph.Graph, flows *flow.Set, m power.Model, opts DCFSROptions) (float64, error) {
	if g == nil || flows == nil {
		return 0, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	rel, err := solveRelaxation(g, flows, m, opts.withDefaults())
	if err != nil {
		return 0, err
	}
	return rel.lowerBound, nil
}

// SolveDCFSR runs the Random-Schedule approximation (Algorithm 2):
//
//  1. relax to a multi-step fractional MCF (one per interval I_k) and
//     solve each by convex programming (Frank–Wolfe);
//  2. extract candidate paths Q_i per flow with per-interval weights
//     (Raghavan–Tompson decomposition, tracked natively by the solver);
//  3. aggregate time-weighted path probabilities
//     wbar_P = sum_k w_P(k) * |I_k| / (d_i - r_i);
//  4. sample one path per flow; re-sample up to MaxRoundingAttempts times
//     when link capacities are violated, keeping the best assignment;
//  5. transmit each flow at its density D_i across its span on the chosen
//     path (per-interval link rate sum_j D_j, EDF time-shared at the
//     packet level — Theorem 4 guarantees every deadline is met).
func SolveDCFSR(in DCFSRInput) (*DCFSRResult, error) {
	if in.Graph == nil || in.Flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := in.Model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	opts := in.Opts.withDefaults()

	t0, t1 := in.Flows.Horizon()
	horizon := timeline.Interval{Start: t0, End: t1}
	if in.Flows.Len() == 0 {
		return &DCFSRResult{Schedule: schedule.New(horizon), CapacityFeasible: true}, nil
	}

	rel, err := solveRelaxation(in.Graph, in.Flows, in.Model, opts)
	if err != nil {
		return nil, err
	}

	// Aggregate candidate paths and time-weighted probabilities per flow.
	cands := make(map[flow.ID]map[string]*candidate, in.Flows.Len())
	for k, res := range rel.results {
		if res == nil {
			continue
		}
		ivLen := rel.intervals[k].Length()
		for ci, c := range rel.comms[k] {
			f, ferr := in.Flows.Flow(c.ID)
			if ferr != nil {
				return nil, ferr
			}
			span := f.Span()
			byKey := cands[c.ID]
			if byKey == nil {
				byKey = make(map[string]*candidate, 4)
				cands[c.ID] = byKey
			}
			for _, wp := range res.PathsByCommodity[ci] {
				frac := wp.Weight / c.Demand
				add := frac * ivLen / span
				if entry, ok := byKey[wp.Path.Key()]; ok {
					entry.weight += add
				} else {
					byKey[wp.Path.Key()] = &candidate{path: wp.Path, weight: add}
				}
			}
		}
	}
	// Deterministic candidate ordering per flow.
	ordered := make(map[flow.ID][]*candidate, len(cands))
	for fid, byKey := range cands {
		list := make([]*candidate, 0, len(byKey))
		for _, c := range byKey {
			list = append(list, c)
		}
		sort.Slice(list, func(a, b int) bool {
			if list[a].weight != list[b].weight {
				return list[a].weight > list[b].weight
			}
			return list[a].path.Key() < list[b].path.Key()
		})
		ordered[fid] = list
	}
	for _, f := range in.Flows.Flows() {
		if len(ordered[f.ID]) == 0 {
			return nil, fmt.Errorf("%w: flow %d received no candidate paths", ErrInfeasible, f.ID)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var (
		best          *schedule.Schedule
		bestEnergy    = math.Inf(1)
		bestViolation = math.Inf(1)
		bestMaxRate   float64
		feasibleFound bool
		attempts      int
	)
	capLimit := math.Inf(1)
	if in.Model.Capped() {
		capLimit = in.Model.C
	}

	for attempts = 1; attempts <= opts.MaxRoundingAttempts; attempts++ {
		sched := schedule.New(horizon)
		for _, f := range in.Flows.Flows() {
			list := ordered[f.ID]
			chosen := samplePath(rng, list)
			if err := sched.SetFlow(&schedule.FlowSchedule{
				FlowID: f.ID,
				Path:   chosen.Clone(),
				Segments: []schedule.RateSegment{{
					Interval: timeline.Interval{Start: f.Release, End: f.Deadline},
					Rate:     f.Density(),
				}},
			}); err != nil {
				return nil, fmt.Errorf("core: installing flow %d: %w", f.ID, err)
			}
		}
		maxRate := sched.MaxLinkRate()
		violation := math.Max(0, maxRate-capLimit)
		if violation <= capLimit*1e-9 {
			energy := sched.EnergyTotal(in.Model)
			if !feasibleFound || energy < bestEnergy {
				best, bestEnergy, bestMaxRate = sched, energy, maxRate
				feasibleFound = true
			}
			// A feasible draw is accepted immediately — matching the
			// paper's "repeat until feasible" loop.
			break
		}
		if !feasibleFound && violation < bestViolation {
			best, bestViolation, bestMaxRate = sched, violation, maxRate
			bestEnergy = sched.EnergyTotal(in.Model)
		}
	}
	if attempts > opts.MaxRoundingAttempts {
		attempts = opts.MaxRoundingAttempts
	}
	best.AssignPriorities()
	return &DCFSRResult{
		Schedule:            best,
		LowerBound:          rel.lowerBound,
		FractionalObjective: rel.lowerBound,
		Attempts:            attempts,
		CapacityFeasible:    feasibleFound,
		MaxRate:             bestMaxRate,
		Intervals:           len(rel.intervals),
		Lambda:              rel.lambda,
	}, nil
}

// samplePath draws a path according to the aggregated weights (which sum to
// ~1; any drift is normalised).
func samplePath(rng *rand.Rand, list []*candidate) graph.Path {
	var total float64
	for _, c := range list {
		total += c.weight
	}
	u := rng.Float64() * total
	var acc float64
	for _, c := range list {
		acc += c.weight
		if u <= acc {
			return c.path
		}
	}
	return list[len(list)-1].path
}
