package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// ProgressEvent is one observation of a running solve, delivered through
// DCFSROptions.Progress.
type ProgressEvent struct {
	// Stage is "interval" (one per-interval relaxation solve finished) or
	// "epoch" (one rolling-horizon re-plan finished).
	Stage string
	// Index counts this event's unit within Total: the interval index within
	// the decomposition, or the 1-based epoch number (Total 0: unknown).
	Index, Total int
	// FWIters is the Frank–Wolfe iteration count of the finished unit.
	FWIters int
	// Time is the epoch boundary instant; zero for interval events.
	Time float64
}

// ProgressFunc observes solve progress. Interval events are emitted from the
// concurrent fan-out workers — calls are serialised by the solver, but
// interval indices arrive in completion order, not ascending order. The
// callback must not block for long: it runs on the solving goroutines.
type ProgressFunc func(ProgressEvent)

// DCFSROptions tunes the Random-Schedule approximation.
type DCFSROptions struct {
	// Seed drives the randomized rounding; runs are deterministic per seed.
	Seed int64
	// MaxRoundingAttempts bounds the re-rounding loop used when a sampled
	// path assignment violates link capacities (Section V-A: "we can
	// always repeat the randomized rounding process until we obtain a
	// feasible solution"). Default 20.
	MaxRoundingAttempts int
	// Solver configures the per-interval F-MCF relaxation, including the
	// intra-solve shortest-path parallelism (Solver.OracleWorkers). The
	// two parallelism knobs compose multiplicatively — Parallelism
	// concurrent interval solves, each fanning its oracle sweeps over
	// OracleWorkers goroutines — so on large fabrics with few intervals
	// prefer OracleWorkers, and on many-interval instances prefer
	// Parallelism; both are deterministic at any setting.
	Solver mcfsolve.Options
	// Parallelism bounds concurrent per-interval solves; default NumCPU.
	// It never affects results: intervals are partitioned into fixed-size
	// blocks, so the warm-start chaining below is machine-independent.
	Parallelism int
	// WarmStart seeds each interval's Frank–Wolfe solve from the
	// neighbouring interval's path decomposition instead of hop-count
	// shortest paths. Off by default: measurements on the paper's
	// evaluation workloads show the hop-count cold start converges in
	// fewer iterations (Frank–Wolfe has no away-steps, so carried-over
	// mass on stale paths drains only geometrically), and the cold start
	// keeps solver trajectories bit-identical across releases. The knob
	// exists for workloads with long chains of near-identical intervals,
	// where reusing the neighbour's routing does pay.
	WarmStart bool
	// Progress, when non-nil, receives one event per finished interval solve
	// (and, under the rolling-horizon scheduler, one per epoch re-plan). It
	// never affects results.
	Progress ProgressFunc
	// Solvers, when non-nil, supplies pooled reusable F-MCF solvers to the
	// per-interval fan-out instead of constructing one per block — the
	// pooled per-solver scratch of the compile-once/solve-many Engine. The
	// pool must be bound to the same (graph, model, Solver options) triple
	// as the solve; a mismatched pool is ignored and the fan-out constructs
	// solvers as before. Pooling never affects results: a Solver's output
	// is independent of its scratch history.
	Solvers *mcfsolve.Pool
}

func (o DCFSROptions) withDefaults() DCFSROptions {
	if o.MaxRoundingAttempts <= 0 {
		o.MaxRoundingAttempts = 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.NumCPU()
	}
	return o
}

// DCFSRInput is an instance of the joint scheduling-and-routing problem.
type DCFSRInput struct {
	Graph *graph.Graph
	// Compiled optionally supplies the graph's compiled artifact bundle
	// (CSR, scratch pools) so the solve consumes an explicitly compiled
	// view instead of compiling implicitly. It must match Graph when set;
	// nil compiles on demand (graph.Compile caches on the graph, so the
	// cost is paid once per graph either way).
	Compiled *graph.Compiled
	Flows    *flow.Set
	Model    power.Model
	Opts     DCFSROptions
}

// compiledView resolves the optional explicit compiled view against the
// graph, rejecting a bundle compiled from a different graph.
func compiledView(c *graph.Compiled, g *graph.Graph) (*graph.Compiled, error) {
	if c == nil {
		return graph.Compile(g), nil
	}
	if c.Graph() != g {
		return nil, fmt.Errorf("%w: compiled view belongs to a different graph", ErrBadInput)
	}
	return c, nil
}

// DCFSRResult is the output of Random-Schedule.
type DCFSRResult struct {
	// Schedule assigns every flow a single path and the constant density
	// rate D_i across its span (the fluid equivalent of the per-interval
	// EDF time-sharing at rate sum D_j; link rates and energy coincide).
	Schedule *schedule.Schedule
	// LowerBound is the fractional relaxation value: sum over intervals of
	// |I_k| times the envelope-cost F-MCF optimum. It is the LB series the
	// paper's Fig. 2 normalises by.
	LowerBound float64
	// FractionalObjective equals LowerBound (kept for clarity when callers
	// log both).
	FractionalObjective float64
	// Attempts is the number of rounding attempts consumed.
	Attempts int
	// CapacityFeasible reports whether the returned assignment satisfies
	// all link capacities (always true for uncapped models).
	CapacityFeasible bool
	// MaxRate is the maximum per-link per-interval aggregate rate.
	MaxRate float64
	// Intervals is K, the number of decomposition intervals.
	Intervals int
	// Lambda is (t_K - t_0) / min_k |I_k| (Theorem 6).
	Lambda float64
}

// candidate is one entry of a flow's rounded path distribution; the path
// lives in the aggregation's shared intern table.
type candidate struct {
	handle graph.PathHandle
	weight float64
}

// warmBlockSize is the number of consecutive intervals one worker solves
// with a shared, warm-start-chained Solver. A fixed constant (rather than a
// Parallelism-derived split) keeps the warm-start structure — and therefore
// the solver output — identical on any machine.
const warmBlockSize = 8

// relaxation holds the solved multi-step F-MCF.
type relaxation struct {
	intervals  []timeline.Interval
	comms      [][]mcfsolve.Commodity
	results    []*mcfsolve.Result
	lowerBound float64
	lambda     float64
}

// solveRelaxation decomposes the horizon at flow release/deadline
// breakpoints and solves one F-MCF per interval (concurrently).
func solveRelaxation(ctx context.Context, c *graph.Compiled, flows *flow.Set, m power.Model, opts DCFSROptions) (*relaxation, error) {
	var times []float64
	for _, f := range flows.Flows() {
		times = append(times, f.Release, f.Deadline)
	}
	breaks := timeline.Breakpoints(times)
	intervals := timeline.Decompose(breaks)

	rel := &relaxation{
		intervals: intervals,
		comms:     make([][]mcfsolve.Commodity, len(intervals)),
		results:   make([]*mcfsolve.Result, len(intervals)),
		lambda:    timeline.Lambda(breaks),
	}
	for k, iv := range intervals {
		for _, f := range flows.Flows() {
			if f.Release <= iv.Start+timeline.Eps && f.Deadline >= iv.End-timeline.Eps {
				rel.comms[k] = append(rel.comms[k], mcfsolve.Commodity{
					ID: f.ID, Src: f.Src, Dst: f.Dst, Demand: f.Density(),
				})
			}
		}
	}

	if err := solveIntervalRelaxation(ctx, c, m, opts, rel, nil); err != nil {
		return nil, err
	}
	return rel, nil
}

// solveIntervalRelaxation runs one F-MCF per interval of rel (concurrently)
// and fills rel.results and rel.lowerBound. rel.intervals and rel.comms must
// already be populated.
//
// Fan-out: the intervals run in contiguous blocks. Each worker owns one
// reusable Solver per block, so shortest-path scratch, intern table and
// edge buffers amortise across the block's solves. With opts.WarmStart
// set, every interval additionally seeds from its left neighbour within
// the block (adjacent intervals share most commodities); blocks are
// then a fixed constant — never derived from Parallelism — so results
// do not depend on the worker count or scheduling. Without warm starts
// the intervals are fully independent and blocking is purely a
// scheduling choice, so blocks shrink as needed to keep every worker
// busy on short horizons.
//
// seeds, when non-nil, supplies an external warm start for interval k (the
// rolling-horizon re-optimizer passes the previous epoch's time-aligned
// decompositions) and REPLACES the left-neighbour chain entirely: unseeded
// intervals run cold. The two warm mechanisms must not mix — a seed from a
// fully converged previous-epoch solve is near-optimal, while chaining on
// top of it would drag unconverged neighbour mass back in (Frank–Wolfe has
// no away-steps, so a bad start drains only geometrically). A zero-valued
// seed means "no seed for this interval".
//
// Workers draw their per-block Solvers from opts.Solvers when the pool is
// bound to this exact (graph, model, Solver options) triple, constructing
// them from the compiled view otherwise. Either way each Solver is owned
// by one worker for one block, so reuse is pure scratch recycling.
func solveIntervalRelaxation(ctx context.Context, c *graph.Compiled, m power.Model, opts DCFSROptions, rel *relaxation, seeds []mcfsolve.WarmStart) error {
	if ctx == nil {
		ctx = context.Background()
	}
	pool := opts.Solvers
	if pool != nil && !pool.Matches(c.Graph(), m, opts.Solver) {
		pool = nil
	}
	intervals := rel.intervals
	chain := opts.WarmStart && seeds == nil
	blockSize := warmBlockSize
	if !chain {
		if per := (len(intervals) + opts.Parallelism - 1) / opts.Parallelism; per < blockSize {
			blockSize = per
		}
		if blockSize < 1 {
			blockSize = 1
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		progMu   sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, opts.Parallelism)
	for lo := 0; lo < len(intervals); lo += blockSize {
		hi := lo + blockSize
		if hi > len(intervals) {
			hi = len(intervals)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var (
				solver *mcfsolve.Solver
				err    error
			)
			if pool != nil {
				solver, err = pool.Acquire()
				if err == nil {
					defer pool.Release(solver)
				}
			} else {
				solver, err = mcfsolve.NewSolverCompiled(c, m, opts.Solver)
			}
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			var warm mcfsolve.WarmStart
			for k := lo; k < hi; k++ {
				if len(rel.comms[k]) == 0 {
					warm = mcfsolve.WarmStart{}
					continue
				}
				// Cancellation boundary for the fan-out: a worker abandons
				// its remaining intervals as soon as the context ends; the
				// per-iteration check inside SolveWarmCtx bounds the latency
				// of the solve already in flight.
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: relaxation interrupted: %w", err)
					}
					mu.Unlock()
					return
				}
				use := warm
				if seeds != nil {
					use = seeds[k]
				}
				res, err := solver.SolveWarmCtx(ctx, rel.comms[k], use)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("interval %d: %w", k, err)
					}
					mu.Unlock()
					return
				}
				rel.results[k] = res
				if chain {
					warm = mcfsolve.WarmStart{Commodities: rel.comms[k], Result: res}
				}
				if opts.Progress != nil {
					progMu.Lock()
					opts.Progress(ProgressEvent{
						Stage: "interval", Index: k, Total: len(intervals), FWIters: res.Iters,
					})
					progMu.Unlock()
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	for k, res := range rel.results {
		if res != nil {
			rel.lowerBound += res.Objective * intervals[k].Length()
		}
	}
	return nil
}

// LowerBound computes the fractional relaxation value on its own — the
// normalisation denominator of Fig. 2 — without running the rounding.
func LowerBound(g *graph.Graph, flows *flow.Set, m power.Model, opts DCFSROptions) (float64, error) {
	return LowerBoundCtx(context.Background(), g, flows, m, opts)
}

// LowerBoundCtx is LowerBound under a context: the per-interval relaxation
// fan-out stops within one Frank–Wolfe iteration of the context ending and
// the wrapped context error is returned instead of a partial bound.
func LowerBoundCtx(ctx context.Context, g *graph.Graph, flows *flow.Set, m power.Model, opts DCFSROptions) (float64, error) {
	if g == nil || flows == nil {
		return 0, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	rel, err := solveRelaxation(ctx, graph.Compile(g), flows, m, opts.withDefaults())
	if err != nil {
		return 0, err
	}
	return rel.lowerBound, nil
}

// SolveDCFSR runs the Random-Schedule approximation (Algorithm 2):
//
//  1. relax to a multi-step fractional MCF (one per interval I_k) and
//     solve each by convex programming (Frank–Wolfe);
//  2. extract candidate paths Q_i per flow with per-interval weights
//     (Raghavan–Tompson decomposition, tracked natively by the solver);
//  3. aggregate time-weighted path probabilities
//     wbar_P = sum_k w_P(k) * |I_k| / (d_i - r_i);
//  4. sample one path per flow; re-sample up to MaxRoundingAttempts times
//     when link capacities are violated, keeping the best assignment;
//  5. transmit each flow at its density D_i across its span on the chosen
//     path (per-interval link rate sum_j D_j, EDF time-shared at the
//     packet level — Theorem 4 guarantees every deadline is met).
func SolveDCFSR(in DCFSRInput) (*DCFSRResult, error) {
	return SolveDCFSRCtx(context.Background(), in)
}

// SolveDCFSRCtx is SolveDCFSR under a context: cancellation is observed at
// every Frank–Wolfe iteration of every per-interval relaxation solve, so the
// call returns the wrapped context error within one iteration of the context
// ending — never a partial result.
func SolveDCFSRCtx(ctx context.Context, in DCFSRInput) (*DCFSRResult, error) {
	if in.Graph == nil || in.Flows == nil {
		return nil, fmt.Errorf("%w: nil graph or flows", ErrBadInput)
	}
	if err := in.Model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	compiled, err := compiledView(in.Compiled, in.Graph)
	if err != nil {
		return nil, err
	}
	opts := in.Opts.withDefaults()

	t0, t1 := in.Flows.Horizon()
	horizon := timeline.Interval{Start: t0, End: t1}
	if in.Flows.Len() == 0 {
		return &DCFSRResult{Schedule: schedule.New(horizon), CapacityFeasible: true}, nil
	}

	rel, err := solveRelaxation(ctx, compiled, in.Flows, in.Model, opts)
	if err != nil {
		return nil, err
	}

	spans := make(map[flow.ID]float64, in.Flows.Len())
	for _, f := range in.Flows.Flows() {
		spans[f.ID] = f.Span()
	}
	interner := graph.NewPathInterner()
	cands := aggregateCandidates(rel, spans, interner)
	for _, f := range in.Flows.Flows() {
		if len(cands[f.ID]) == 0 {
			return nil, fmt.Errorf("%w: flow %d received no candidate paths", ErrInfeasible, f.ID)
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var (
		best          *schedule.Schedule
		bestEnergy    = math.Inf(1)
		bestViolation = math.Inf(1)
		bestMaxRate   float64
		feasibleFound bool
		attempts      int
	)
	capLimit := math.Inf(1)
	if in.Model.Capped() {
		capLimit = in.Model.C
	}

	for attempts = 1; attempts <= opts.MaxRoundingAttempts; attempts++ {
		sched := schedule.New(horizon)
		for _, f := range in.Flows.Flows() {
			list := cands[f.ID]
			chosen := samplePath(rng, list)
			if err := sched.SetFlow(&schedule.FlowSchedule{
				FlowID: f.ID,
				Path:   interner.Path(chosen),
				Segments: []schedule.RateSegment{{
					Interval: timeline.Interval{Start: f.Release, End: f.Deadline},
					Rate:     f.Density(),
				}},
			}); err != nil {
				return nil, fmt.Errorf("core: installing flow %d: %w", f.ID, err)
			}
		}
		maxRate := sched.MaxLinkRate()
		violation := math.Max(0, maxRate-capLimit)
		if violation <= capLimit*1e-9 {
			energy := sched.EnergyTotal(in.Model)
			if !feasibleFound || energy < bestEnergy {
				best, bestEnergy, bestMaxRate = sched, energy, maxRate
				feasibleFound = true
			}
			// A feasible draw is accepted immediately — matching the
			// paper's "repeat until feasible" loop.
			break
		}
		if !feasibleFound && violation < bestViolation {
			best, bestViolation, bestMaxRate = sched, violation, maxRate
			bestEnergy = sched.EnergyTotal(in.Model)
		}
	}
	if attempts > opts.MaxRoundingAttempts {
		attempts = opts.MaxRoundingAttempts
	}
	best.AssignPriorities()
	return &DCFSRResult{
		Schedule:            best,
		LowerBound:          rel.lowerBound,
		FractionalObjective: rel.lowerBound,
		Attempts:            attempts,
		CapacityFeasible:    feasibleFound,
		MaxRate:             bestMaxRate,
		Intervals:           len(rel.intervals),
		Lambda:              rel.lambda,
	}, nil
}

// aggregateCandidates builds, per flow, the time-weighted candidate path
// distribution wbar_P = sum_k w_P(k) * |I_k| / span of a solved relaxation
// (Algorithm 2, step 3). Paths from every interval result are interned once
// into the shared table, so per-flow candidate identity is an integer handle
// compare instead of a string key build. spans maps each flow to the span
// normalising its weights; flows absent from spans are skipped (the partial
// re-solve skips path-pinned flows this way). Candidates come back sorted by
// descending weight (path key as the deterministic tie-break), so the first
// entry is the modal path.
func aggregateCandidates(rel *relaxation, spans map[flow.ID]float64, interner *graph.PathInterner) map[flow.ID][]candidate {
	cands := make(map[flow.ID][]candidate, len(spans))
	for k, res := range rel.results {
		if res == nil {
			continue
		}
		ivLen := rel.intervals[k].Length()
		for ci, c := range rel.comms[k] {
			span, ok := spans[c.ID]
			if !ok {
				continue
			}
			list := cands[c.ID]
			for _, wp := range res.PathsByCommodity[ci] {
				frac := wp.Weight / c.Demand
				add := frac * ivLen / span
				h := interner.Intern(wp.Path.Edges)
				found := false
				for i := range list {
					if list[i].handle == h {
						list[i].weight += add
						found = true
						break
					}
				}
				if !found {
					list = append(list, candidate{handle: h, weight: add})
				}
			}
			cands[c.ID] = list
		}
	}
	// Deterministic candidate ordering per flow.
	for fid, list := range cands {
		sort.Slice(list, func(a, b int) bool {
			if list[a].weight != list[b].weight {
				return list[a].weight > list[b].weight
			}
			return graph.ComparePathKeys(interner.Edges(list[a].handle), interner.Edges(list[b].handle)) < 0
		})
		cands[fid] = list
	}
	return cands
}

// samplePath draws a path handle according to the aggregated weights (which
// sum to ~1; any drift is normalised). It performs no allocations.
func samplePath(rng *rand.Rand, list []candidate) graph.PathHandle {
	var total float64
	for _, c := range list {
		total += c.weight
	}
	u := rng.Float64() * total
	var acc float64
	for _, c := range list {
		acc += c.weight
		if u <= acc {
			return c.handle
		}
	}
	return list[len(list)-1].handle
}
