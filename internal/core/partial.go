package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/timeline"
)

// PinnedCommitment is the frozen state of one in-flight flow at a re-plan
// instant: the path fixed at admission and the data already delivered. Both
// are constraints on the re-plan, never variables — a partial solve can
// neither move the flow to another path nor un-send its transmitted prefix.
type PinnedCommitment struct {
	// Path is the routing path pinned when the flow was first admitted.
	Path graph.Path
	// Transmitted is the data delivered before the re-plan instant; only
	// the residual Size - Transmitted remains to be scheduled.
	Transmitted float64
	// Demand optionally fixes the commodity demand the relaxation uses for
	// this pinned flow; zero selects the true residual density
	// (Size - Transmitted) / (Deadline - Now). A rolling scheduler passes
	// the admission-time nominal density here so that consecutive epochs
	// solve bit-identical pinned commodities — keeping cross-epoch warm
	// seeds matchable — even when the actually reserved rate profile was
	// shaped around the committed load.
	Demand float64
}

// RelaxationState carries one epoch's per-interval fractional solutions
// across re-plans. The next epoch seeds each of its interval solves from
// the state interval containing the same instant (commodities match by flow
// ID inside mcfsolve.Solver.SolveWarm), which is what makes rolling-horizon
// chains of near-identical residual instances converge in few Frank–Wolfe
// iterations.
type RelaxationState struct {
	// Now is the re-plan instant the state was solved at.
	Now float64
	// Intervals is the residual-horizon decomposition of that epoch.
	Intervals []timeline.Interval
	// Comms holds the commodities solved per interval (same order as
	// Intervals).
	Comms [][]mcfsolve.Commodity
	// Results holds the fractional solutions per interval.
	Results []*mcfsolve.Result
	// Fingerprints, when delta bookkeeping is on (DeltaOptions.Enabled),
	// holds one fingerprint per interval (same order as Intervals); nil
	// otherwise. The delta re-solve matches intervals across epochs on
	// them and reuses the stored solutions of untouched intervals.
	Fingerprints []IntervalFingerprint
}

// IntervalFingerprint summarises one interval of a RelaxationState for
// delta reuse.
type IntervalFingerprint struct {
	// End is the interval's right breakpoint — the stable identity across
	// re-plans, whose left edges advance with Now while deadlines stay put.
	End float64
	// Comm is an order-independent hash of the commodity multiset the
	// stored solution was solved for; it lets a consumer cheaply reject a
	// mismatched reuse or seed candidate before any exact comparison.
	Comm uint64
	// Load is the per-edge background load the interval was last stamped
	// with (the rolling scheduler refreshes it from its reservations after
	// each epoch's admissions). Drift is measured against it.
	Load []float64
	// Stale counts consecutive delta epochs the stored solution has been
	// reused verbatim; a full solve resets it to zero.
	Stale int
}

// DeltaOptions tunes the sensitivity-bounded delta re-solve of
// SolveDCFSRPartial — the opt-in localized epoch path of the rolling
// scheduler. The zero value disables delta mode entirely and changes
// nothing about the solve.
type DeltaOptions struct {
	// Enabled opts into delta bookkeeping: full solves stamp per-interval
	// fingerprints into the returned RelaxationState, and a caller that
	// also supplies BaseLoad (plus a previous fingerprinted state) gets
	// the localized delta path.
	Enabled bool
	// DriftBound caps the tolerated per-link relative load drift. An
	// untouched interval whose background load drifted beyond the bound
	// declines the delta solve (DeltaUsed=false: the caller must re-issue
	// a full solve), and the rolling scheduler additionally accumulates
	// the per-epoch Drift and forces a full re-plan once the sum exceeds
	// the bound. Zero keeps delta solving off — fingerprints are still
	// stamped — which pins delta mode to the full path bit for bit.
	DriftBound float64
	// MaxStaleEpochs caps how many consecutive delta epochs may reuse a
	// stored interval solution before a full re-plan is forced (the delta
	// path declines once any reused interval would exceed it). Zero means
	// no cap.
	MaxStaleEpochs int
}

// commHash folds a commodity multiset into an order-independent 64-bit
// fingerprint: per-commodity FNV-1a hashes combined by XOR, so the value is
// permutation-invariant and incrementally updatable. A collision can only
// make a consumer slower (a reuse or seed precheck passes and the exact
// comparison then rejects), never wrong.
func commHash(comms []mcfsolve.Commodity) uint64 {
	var h uint64
	for _, c := range comms {
		h ^= commHashOne(c)
	}
	return h
}

func commHashOne(c mcfsolve.Commodity) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range [...]uint64{uint64(c.ID), uint64(c.Src), uint64(c.Dst), math.Float64bits(c.Demand)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// modalResult trims a solve's decompositions to each commodity's modal
// (highest-weight) path carrying the commodity's full demand — the chain
// seed's starting point. Seeding from the full split was measured SLOWER
// than a cold start: adjacent intervals' base loads differ (each earlier
// arrival occupies its own span), and Frank–Wolfe with no away-steps drains
// a misplaced interior split only geometrically. The modal path is a
// vertex, so the first exact line search can leave it entirely — it keeps
// the previous solve's congestion knowledge while starting FW from the
// geometry it converges best from. emit() orders paths by descending
// weight, so the modal path is entry 0.
func modalResult(comms []mcfsolve.Commodity, r *mcfsolve.Result) *mcfsolve.Result {
	trim := &mcfsolve.Result{PathsByCommodity: make([][]mcfsolve.WeightedPath, len(r.PathsByCommodity))}
	for i, wps := range r.PathsByCommodity {
		if len(wps) == 0 || i >= len(comms) {
			continue
		}
		trim.PathsByCommodity[i] = []mcfsolve.WeightedPath{{Path: wps[0].Path, Weight: comms[i].Demand}}
	}
	return trim
}

// sameComms reports whether two commodity lists are elementwise identical
// (IDs, endpoints, demands). The delta-solve chain seed builds both lists
// with the same interval-coverage sweep over one batch, so an unchanged
// multiset always presents in the same order and the elementwise test is an
// exact multiset equality here.
func sameComms(a, b []mcfsolve.Commodity) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].Demand != b[i].Demand {
			return false
		}
	}
	return true
}

// seedFor returns the warm start for a target interval solving the given
// commodities: the state's solve whose interval contains the target's
// midpoint, and only if that solve covered the exact same commodity
// multiset (IDs, endpoints and demands). The restriction is deliberate —
// seeding a Frank–Wolfe solve whose instance gained or lost commodities
// starts it from stale mass that, with no away-steps, drains only
// geometrically and converges SLOWER than a cold hop-count start. An
// unchanged instance, by contrast, starts at the previous optimum and stops
// at the first duality-gap check. The zero WarmStart is returned when no
// matching solve exists.
func (st *RelaxationState) seedFor(iv timeline.Interval, comms []mcfsolve.Commodity) mcfsolve.WarmStart {
	if st == nil {
		return mcfsolve.WarmStart{}
	}
	mid := (iv.Start + iv.End) / 2
	i := sort.Search(len(st.Intervals), func(k int) bool { return st.Intervals[k].End >= mid })
	if i >= len(st.Intervals) || !st.Intervals[i].Contains(mid) || st.Results[i] == nil {
		return mcfsolve.WarmStart{}
	}
	prev := st.Comms[i]
	if len(prev) != len(comms) {
		return mcfsolve.WarmStart{}
	}
	// Fingerprint precheck: a mismatched multiset hash rejects without
	// building the ID map. Equal hashes still run the exact comparison, so
	// a collision costs time, not correctness.
	if len(st.Fingerprints) == len(st.Intervals) && st.Fingerprints[i].Comm != 0 &&
		st.Fingerprints[i].Comm != commHash(comms) {
		return mcfsolve.WarmStart{}
	}
	byID := make(map[flow.ID]mcfsolve.Commodity, len(prev))
	for _, c := range prev {
		byID[c.ID] = c
	}
	for _, c := range comms {
		p, ok := byID[c.ID]
		if !ok || p.Src != c.Src || p.Dst != c.Dst ||
			math.Abs(p.Demand-c.Demand) > 1e-9*math.Max(p.Demand, c.Demand) {
			return mcfsolve.WarmStart{}
		}
	}
	return mcfsolve.WarmStart{Commodities: st.Comms[i], Result: st.Results[i]}
}

// DCFSRPartialInput is a residual DCFSR instance: the joint
// routing-and-scheduling problem restricted to [Now, horizon end] with part
// of the decisions already frozen.
type DCFSRPartialInput struct {
	Graph *graph.Graph
	// Compiled optionally supplies the graph's compiled artifact bundle —
	// the rolling-horizon scheduler compiles once at construction and
	// passes it to every epoch re-solve. Must match Graph when set; nil
	// compiles on demand.
	Compiled *graph.Compiled
	// Flows are the active flows: in-flight pinned ones plus newly revealed
	// free ones. Flow IDs are the caller's and are preserved (nothing is
	// renumbered, unlike flow.NewSet), so commitments and warm-start
	// identities stay stable across epochs. Flows whose pinned residual is
	// already zero are treated as complete and skipped.
	Flows []flow.Flow
	Model power.Model
	// Now is the re-plan instant. Only [Now, …] is planned: each flow's
	// residual demand must fit into [max(Release, Now), Deadline].
	Now float64
	// Pinned maps in-flight flows to their frozen commitments. Flows not in
	// the map are free: the solve chooses their path.
	Pinned map[flow.ID]PinnedCommitment
	// Intervals optionally supplies the residual-horizon segmentation
	// (e.g. timeline.BreakpointSet.IntervalsFrom(Now), maintained
	// incrementally by a rolling scheduler). When nil it is rebuilt from
	// the residual spans.
	Intervals []timeline.Interval
	// Prev, with Opts.WarmStart set, seeds each interval's Frank–Wolfe
	// solve from the previous epoch's time-aligned decomposition.
	Prev *RelaxationState
	// BaseLoad, when set, fills out (len = Graph.NumEdges()) with the
	// per-edge background load during iv — the aggregate rate already
	// reserved by in-flight commitments. Supplying it is the delta switch:
	// Flows then holds ONLY the free arrival batch, Pinned must be empty
	// (the background load replaces pinned commodities entirely), and the
	// solve takes the localized delta path when Delta and Prev allow it
	// (declining with DeltaUsed=false otherwise). Nil always takes the
	// full path.
	BaseLoad func(iv timeline.Interval, out []float64)
	// Delta opts into the sensitivity-bounded delta re-solve; see
	// DeltaOptions. The zero value changes nothing.
	Delta DeltaOptions
	// Argmax makes the first rounding attempt assign every free flow its
	// modal (highest-weight) candidate path instead of sampling — the
	// deterministic choice a model-predictive controller prefers; repair
	// attempts after a capacity violation still sample.
	Argmax bool
	Opts   DCFSROptions
}

// CandidatePath is one entry of a free flow's aggregated rounding
// distribution: a path and its time-weighted fractional probability.
type CandidatePath struct {
	Path   graph.Path
	Weight float64
}

// DCFSRPartialResult is the residual plan.
type DCFSRPartialResult struct {
	// Paths holds the planned path per active flow: the sampled candidate
	// for free flows, the pinned path echoed back for pinned ones.
	Paths map[flow.ID]graph.Path
	// Candidates holds each free flow's aggregated candidate distribution
	// in descending weight order (deterministic tie-break) — the basis of
	// the rounding. Rolling-horizon callers re-score it against their own
	// reservation state instead of trusting a single draw.
	Candidates map[flow.ID][]CandidatePath
	// Rates holds each active flow's planning rate: the residual density —
	// the constant rate that, sustained from Starts[id] to the deadline,
	// exactly delivers the residual demand — or, for pinned flows, the
	// PinnedCommitment.Demand override when one was supplied.
	Rates map[flow.ID]float64
	// Starts holds each active flow's (re)start instant max(Release, Now).
	Starts map[flow.ID]float64
	// ResidualLowerBound is the fractional relaxation value of the residual
	// instance — a valid lower bound on the energy over [Now, …] of every
	// feasible continuation (pinning only constrains, so the unpinned
	// relaxation bounds the pinned continuation too).
	ResidualLowerBound float64
	// State is this epoch's relaxation, to be passed as Prev next epoch.
	State *RelaxationState
	// FWIters is the total number of Frank–Wolfe iterations across all
	// interval solves — the warm-start effectiveness metric.
	FWIters int
	// SeededIntervals counts interval solves that received a warm seed —
	// a Prev-epoch decomposition on the full path, or (under delta-solve
	// with Opts.WarmStart) a previous-epoch or within-epoch chain seed of
	// a touched marginal solve.
	SeededIntervals int
	// Intervals is the number of residual decomposition intervals.
	Intervals int
	// Attempts is the number of rounding attempts consumed.
	Attempts int
	// CapacityFeasible reports whether the returned assignment satisfies
	// link capacities (always true for uncapped models).
	CapacityFeasible bool
	// MaxRate is the maximum per-link per-interval aggregate planned rate.
	// A delta solve checks (and reports) only the intervals it re-solved:
	// untouched intervals' loads cannot have changed since their own check.
	MaxRate float64
	// DeltaUsed reports whether this result came from the localized delta
	// path. When a delta attempt declines (drift beyond DriftBound, a
	// stale-epoch cap hit, or no reusable previous state), the result
	// carries DeltaUsed=false and no plan: the caller must re-issue a full
	// solve with the complete flow set.
	DeltaUsed bool
	// ReusedIntervals counts intervals whose stored solution the delta
	// path reused verbatim.
	ReusedIntervals int
	// Drift is the interval-length-weighted relative background-load drift
	// measured across the reused intervals of a delta solve (zero on the
	// full path). Callers accumulate it across delta epochs to decide when
	// to fall back to a full re-plan.
	Drift float64
}

// residual is one active flow reduced to its remaining instance at a
// re-plan instant.
type residual struct {
	f       flow.Flow
	start   float64
	demand  float64 // residual data
	density float64 // demand / (deadline - start)
	pinned  bool
}

// SolveDCFSRPartial re-runs the Random-Schedule relaxation over the
// remaining horizon with frozen commitments — the epoch re-solve of the
// rolling-horizon online scheduler:
//
//  1. every active flow is reduced to its residual instance: demand
//     Size - Transmitted over [max(Release, Now), Deadline];
//  2. the residual multi-interval F-MCF relaxation is solved exactly as in
//     SolveDCFSR, warm-seeded per interval from Prev when Opts.WarmStart is
//     set (mcfsolve.Solver.SolveWarm matches commodities by flow ID);
//  3. free flows are rounded to candidate paths (modal-first under Argmax,
//     sampled otherwise, re-sampled on capacity violations); pinned flows
//     keep their pinned path — the rounding is where the frozen
//     commitments bind.
//
// The relaxation itself routes all active flows fractionally, so its value
// is the residual lower bound of the unconstrained continuation; since
// pinning only removes options, it also lower-bounds the pinned
// continuation the caller will actually execute.
func SolveDCFSRPartial(in DCFSRPartialInput) (*DCFSRPartialResult, error) {
	return SolveDCFSRPartialCtx(context.Background(), in)
}

// SolveDCFSRPartialCtx is SolveDCFSRPartial under a context: the residual
// relaxation's Frank–Wolfe solves observe cancellation at every iteration
// boundary and the wrapped context error is returned instead of a partial
// plan.
func SolveDCFSRPartialCtx(ctx context.Context, in DCFSRPartialInput) (*DCFSRPartialResult, error) {
	if in.Graph == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadInput)
	}
	if err := in.Model.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if math.IsNaN(in.Now) || math.IsInf(in.Now, 0) {
		return nil, fmt.Errorf("%w: bad re-plan instant %v", ErrBadInput, in.Now)
	}
	compiled, err := compiledView(in.Compiled, in.Graph)
	if err != nil {
		return nil, err
	}
	opts := in.Opts.withDefaults()

	// Reduce every active flow to its residual instance.
	var (
		active []residual
		seen   = make(map[flow.ID]bool, len(in.Flows))
	)
	res := &DCFSRPartialResult{
		Paths:            make(map[flow.ID]graph.Path, len(in.Flows)),
		Rates:            make(map[flow.ID]float64, len(in.Flows)),
		Starts:           make(map[flow.ID]float64, len(in.Flows)),
		CapacityFeasible: true,
	}
	for _, f := range in.Flows {
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		if seen[f.ID] {
			return nil, fmt.Errorf("%w: duplicate flow id %d", ErrBadInput, f.ID)
		}
		seen[f.ID] = true
		r := residual{f: f, start: math.Max(f.Release, in.Now), demand: f.Size}
		var fixedDemand float64
		if pc, ok := in.Pinned[f.ID]; ok {
			if err := pc.Path.Validate(in.Graph, f.Src, f.Dst); err != nil {
				return nil, fmt.Errorf("%w: pinned flow %d: %v", ErrBadInput, f.ID, err)
			}
			if pc.Transmitted < 0 || pc.Transmitted > f.Size*(1+1e-9) {
				return nil, fmt.Errorf("%w: pinned flow %d transmitted %v of %v", ErrBadInput, f.ID, pc.Transmitted, f.Size)
			}
			r.demand = f.Size - pc.Transmitted
			r.pinned = true
			fixedDemand = pc.Demand
		}
		if r.demand <= f.Size*1e-9 {
			continue // already complete; nothing left to plan
		}
		span := f.Deadline - r.start
		if span <= timeline.Eps {
			return nil, fmt.Errorf("%w: flow %d has %v residual data but its deadline %v has passed at %v",
				ErrInfeasible, f.ID, r.demand, f.Deadline, in.Now)
		}
		r.density = r.demand / span
		if fixedDemand > 0 {
			r.density = fixedDemand
		}
		active = append(active, r)
	}
	if len(active) == 0 {
		res.State = &RelaxationState{Now: in.Now}
		return res, nil
	}
	sort.Slice(active, func(a, b int) bool { return active[a].f.ID < active[b].f.ID })

	// Residual-horizon segmentation: the caller's incremental one, or a
	// rebuild from the residual spans.
	intervals := in.Intervals
	if intervals == nil {
		var times []float64
		for _, r := range active {
			times = append(times, r.start, r.f.Deadline)
		}
		intervals = timeline.Decompose(timeline.Breakpoints(times))
	}

	rel := &relaxation{
		intervals: intervals,
		comms:     make([][]mcfsolve.Commodity, len(intervals)),
		results:   make([]*mcfsolve.Result, len(intervals)),
	}
	for k, iv := range intervals {
		for _, r := range active {
			if r.start <= iv.Start+timeline.Eps && r.f.Deadline >= iv.End-timeline.Eps {
				rel.comms[k] = append(rel.comms[k], mcfsolve.Commodity{
					ID: r.f.ID, Src: r.f.Src, Dst: r.f.Dst, Demand: r.density,
				})
			}
		}
	}

	// Localized delta path: with a background-load callback the instance is
	// an arrival batch riding on frozen commitments, and the previous
	// epoch's fingerprinted state lets the solve touch only the intervals
	// the batch invalidates. The full path below is never reached with a
	// BaseLoad — a batch-only instance without the background reuse would
	// plan the arrivals as if the network were empty.
	if in.BaseLoad != nil {
		if len(in.Pinned) != 0 {
			return nil, fmt.Errorf("%w: BaseLoad requires an empty Pinned set (the background load replaces pinned commodities)", ErrBadInput)
		}
		if in.Delta.Enabled && in.Delta.DriftBound > 0 && in.Intervals != nil {
			out, used, err := solveDelta(ctx, compiled, in, opts, active, rel, res)
			if err != nil {
				return nil, err
			}
			if used {
				return out, nil
			}
		}
		return &DCFSRPartialResult{}, nil
	}

	// Cross-epoch warm seeds, resolved serially up front so the concurrent
	// fan-out only reads them. With Opts.WarmStart the seeds slice is
	// always non-nil — even on the first epoch, when every entry is zero —
	// because a non-nil slice also disables the offline left-neighbour
	// chain inside solveIntervalRelaxation: partial solves must keep every
	// interval fully converged so the NEXT epoch inherits good seeds.
	var seeds []mcfsolve.WarmStart
	if opts.WarmStart {
		seeds = make([]mcfsolve.WarmStart, len(intervals))
		for k, iv := range intervals {
			if len(rel.comms[k]) == 0 {
				continue
			}
			seeds[k] = in.Prev.seedFor(iv, rel.comms[k])
			if seeds[k].Result != nil {
				res.SeededIntervals++
			}
		}
	}
	if err := solveIntervalRelaxation(ctx, compiled, in.Model, opts, rel, seeds); err != nil {
		return nil, err
	}
	for _, r := range rel.results {
		if r != nil {
			res.FWIters += r.Iters
		}
	}
	res.ResidualLowerBound = rel.lowerBound
	res.Intervals = len(intervals)
	res.State = &RelaxationState{
		Now:       in.Now,
		Intervals: rel.intervals,
		Comms:     rel.comms,
		Results:   rel.results,
	}
	if in.Delta.Enabled {
		// Delta bookkeeping: stamp per-interval fingerprints so the next
		// epoch can localize. Load vectors are left for the caller to
		// refresh once its admissions are in (see IntervalFingerprint.Load);
		// stamping changes nothing about this solve's outputs.
		fps := make([]IntervalFingerprint, len(intervals))
		for k, iv := range intervals {
			fps[k] = IntervalFingerprint{End: iv.End, Comm: commHash(rel.comms[k])}
		}
		res.State.Fingerprints = fps
	}

	// Candidate aggregation for the free flows only; pinned paths are
	// frozen, so their fractional decompositions never reach the rounding.
	spans := make(map[flow.ID]float64, len(active))
	for _, r := range active {
		if !r.pinned {
			spans[r.f.ID] = r.f.Deadline - r.start
		}
	}
	interner := graph.NewPathInterner()
	cands := aggregateCandidates(rel, spans, interner)
	res.Candidates = make(map[flow.ID][]CandidatePath, len(spans))
	for _, r := range active {
		res.Rates[r.f.ID] = r.density
		res.Starts[r.f.ID] = r.start
		if r.pinned {
			res.Paths[r.f.ID] = in.Pinned[r.f.ID].Path
			continue
		}
		list := cands[r.f.ID]
		if len(list) == 0 {
			return nil, fmt.Errorf("%w: flow %d received no candidate paths", ErrInfeasible, r.f.ID)
		}
		out := make([]CandidatePath, len(list))
		for i, c := range list {
			out[i] = CandidatePath{Path: interner.Path(c.handle), Weight: c.weight}
		}
		res.Candidates[r.f.ID] = out
	}

	// Rounding: free flows draw a path (modal-first under Argmax), pinned
	// flows contribute their frozen load; re-sample free flows while link
	// capacities are violated, keeping the least-violating assignment.
	capLimit := math.Inf(1)
	if in.Model.Capped() {
		capLimit = in.Model.C
	}
	var free []residual
	for _, r := range active {
		if !r.pinned {
			free = append(free, r)
		}
	}
	// Per-interval pinned base load, shared by every attempt.
	nE := in.Graph.NumEdges()
	base := make([][]float64, len(intervals))
	for k, iv := range intervals {
		base[k] = make([]float64, nE)
		for _, r := range active {
			if r.pinned && r.start <= iv.Start+timeline.Eps && r.f.Deadline >= iv.End-timeline.Eps {
				for _, eid := range in.Pinned[r.f.ID].Path.Edges {
					base[k][eid] += r.density
				}
			}
		}
	}
	best, bestMaxRate, feasibleFound, attempts := roundFreeFlows(free, cands, intervals, base, interner, opts, in.Argmax, capLimit, nE)
	for _, r := range free {
		res.Paths[r.f.ID] = interner.Path(best[r.f.ID])
	}
	res.Attempts = attempts
	res.CapacityFeasible = feasibleFound
	res.MaxRate = bestMaxRate
	return res, nil
}

// roundFreeFlows draws one candidate path per free flow — modal-first when
// argmax is set — and re-samples on capacity violations, keeping the
// least-violating assignment (Algorithm 2's repeat-until-feasible loop).
// base[k] is the background load of intervals[k]; a nil entry skips that
// interval's capacity accounting entirely (the delta path checks only the
// intervals it re-solved, where every free flow lives).
func roundFreeFlows(free []residual, cands map[flow.ID][]candidate, intervals []timeline.Interval, base [][]float64, interner *graph.PathInterner, opts DCFSROptions, argmax bool, capLimit float64, nE int) (map[flow.ID]graph.PathHandle, float64, bool, int) {
	load := make([]float64, nE)
	maxAssignedRate := func(chosen map[flow.ID]graph.PathHandle) float64 {
		var max float64
		for k, iv := range intervals {
			if base[k] == nil {
				continue
			}
			copy(load, base[k])
			for _, r := range free {
				if r.start <= iv.Start+timeline.Eps && r.f.Deadline >= iv.End-timeline.Eps {
					for _, eid := range interner.Edges(chosen[r.f.ID]) {
						load[eid] += r.density
					}
				}
			}
			for _, v := range load {
				if v > max {
					max = v
				}
			}
		}
		return max
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	var (
		best          map[flow.ID]graph.PathHandle
		bestViolation = math.Inf(1)
		bestMaxRate   float64
		feasibleFound bool
		attempts      int
	)
	for attempts = 1; attempts <= opts.MaxRoundingAttempts; attempts++ {
		chosen := make(map[flow.ID]graph.PathHandle, len(free))
		for _, r := range free {
			list := cands[r.f.ID]
			if argmax && attempts == 1 {
				chosen[r.f.ID] = list[0].handle
			} else {
				chosen[r.f.ID] = samplePath(rng, list)
			}
		}
		maxRate := maxAssignedRate(chosen)
		violation := math.Max(0, maxRate-capLimit)
		if violation <= capLimit*1e-9 {
			best, bestMaxRate, feasibleFound = chosen, maxRate, true
			break
		}
		if violation < bestViolation {
			best, bestViolation, bestMaxRate = chosen, violation, maxRate
		}
	}
	if attempts > opts.MaxRoundingAttempts {
		attempts = opts.MaxRoundingAttempts
	}
	return best, bestMaxRate, feasibleFound, attempts
}

// relLoadDev is the drift metric of the delta path: the largest per-edge
// absolute load change, normalized by the larger of the two load peaks so
// the measure is scale-free. Zero when both vectors are all-zero.
func relLoadDev(old, cur []float64) float64 {
	var num, den float64
	for e := range cur {
		o := old[e]
		if d := math.Abs(cur[e] - o); d > num {
			num = d
		}
		if o > den {
			den = o
		}
		if cur[e] > den {
			den = cur[e]
		}
	}
	if den <= 0 {
		return 0
	}
	return num / den
}

// solveDelta is the localized epoch re-solve. The instance holds only the
// arrival batch (free), in.BaseLoad supplies the committed background load,
// and in.Prev's fingerprints identify which intervals the batch leaves
// untouched: an interval is touched when no previous interval shares its
// right breakpoint or when a batch flow covers it. Untouched intervals are
// reused verbatim — sound because a sub-interval of a previous interval
// inherits its rate-based solution, and every commodity of a previous epoch
// started at that epoch's Now, so coverage (hence the multiset) depends
// only on the shared right breakpoint. The solve declines — (nil, false,
// nil), caller falls back to a full re-plan — when an untouched interval
// exceeds the stale cap or its background load drifted past DriftBound;
// such an interval cannot be re-solved here because its commodities are not
// part of the batch-only instance.
func solveDelta(ctx context.Context, compiled *graph.Compiled, in DCFSRPartialInput, opts DCFSROptions, free []residual, rel *relaxation, res *DCFSRPartialResult) (*DCFSRPartialResult, bool, error) {
	prev := in.Prev
	if prev == nil || len(prev.Intervals) == 0 || len(prev.Fingerprints) != len(prev.Intervals) {
		return nil, false, nil
	}
	intervals := rel.intervals
	nE := in.Graph.NumEdges()
	K := len(intervals)
	touched := make([]bool, K)
	matched := make([]int, K)
	loads := make([][]float64, K)
	p := 0
	for k, iv := range intervals {
		for p < len(prev.Intervals) && prev.Intervals[p].End < iv.End-timeline.Eps {
			p++
		}
		matched[k] = -1
		if p < len(prev.Intervals) && math.Abs(prev.Intervals[p].End-iv.End) <= timeline.Eps {
			matched[k] = p
		}
		loads[k] = make([]float64, nE)
		in.BaseLoad(iv, loads[k])
		touched[k] = matched[k] < 0 || len(rel.comms[k]) > 0
	}

	var totalLen float64
	for _, iv := range intervals {
		totalLen += iv.Length()
	}
	var drift float64
	for k, iv := range intervals {
		if touched[k] {
			continue
		}
		fp := &prev.Fingerprints[matched[k]]
		if in.Delta.MaxStaleEpochs > 0 && fp.Stale+1 > in.Delta.MaxStaleEpochs {
			return nil, false, nil
		}
		if fp.Load == nil {
			continue // never stamped: nothing to measure drift against
		}
		d := relLoadDev(fp.Load, loads[k])
		if d > in.Delta.DriftBound {
			return nil, false, nil
		}
		if totalLen > 0 {
			drift += d * iv.Length() / totalLen
		}
	}

	// Solve the touched intervals serially against their background loads;
	// the touched set is exactly what the delta bounds, so fan-out would
	// buy little here.
	pool := opts.Solvers
	if pool != nil && !pool.Matches(compiled.Graph(), in.Model, opts.Solver) {
		pool = nil
	}
	var solver *mcfsolve.Solver
	if pool != nil {
		sv, err := pool.Acquire()
		if err != nil {
			return nil, false, err
		}
		defer pool.Release(sv)
		solver = sv
	} else {
		sv, err := mcfsolve.NewSolverCompiled(compiled, in.Model, opts.Solver)
		if err != nil {
			return nil, false, err
		}
		solver = sv
	}
	state := &RelaxationState{
		Now:          in.Now,
		Intervals:    intervals,
		Comms:        make([][]mcfsolve.Commodity, K),
		Results:      make([]*mcfsolve.Result, K),
		Fingerprints: make([]IntervalFingerprint, K),
	}
	var lower float64
	// Warm seeding across touched intervals (delta-solve follow-on, gated
	// behind opts.WarmStart like every other warm mechanism): a touched
	// interval first tries the previous epoch's time-aligned decomposition
	// (seedFor — exact commodity-multiset match required), and failing that
	// chains from the last touched interval of THIS epoch when the batch
	// commodity multiset is unchanged (the common case: a batch flow spans
	// many consecutive intervals with no breakpoint between them, so their
	// marginal instances are identical and the previous interval's converged
	// path distribution starts the next at its optimum). Both seeds reuse
	// the unchanged-multiset rule seedFor documents; a changed multiset
	// always runs cold.
	var (
		chainComms []mcfsolve.Commodity
		chainRes   *mcfsolve.Result
		chainHash  uint64
	)
	for k, iv := range intervals {
		if !touched[k] {
			fp := prev.Fingerprints[matched[k]]
			state.Comms[k] = prev.Comms[matched[k]]
			state.Results[k] = prev.Results[matched[k]]
			// Load is carried over verbatim — NOT restamped — so drift keeps
			// accumulating against the last fully-solved snapshot.
			state.Fingerprints[k] = IntervalFingerprint{End: iv.End, Comm: fp.Comm, Load: fp.Load, Stale: fp.Stale + 1}
			if state.Results[k] != nil {
				lower += state.Results[k].Objective * iv.Length()
			}
			res.ReusedIntervals++
			continue
		}
		state.Comms[k] = rel.comms[k]
		h := commHash(rel.comms[k])
		state.Fingerprints[k] = IntervalFingerprint{End: iv.End, Comm: h, Load: loads[k]}
		if len(rel.comms[k]) == 0 {
			continue
		}
		warm := mcfsolve.WarmStart{}
		if opts.WarmStart {
			warm = prev.seedFor(iv, rel.comms[k])
			if warm.Result == nil && chainRes != nil && h == chainHash && sameComms(chainComms, rel.comms[k]) {
				warm = mcfsolve.WarmStart{Commodities: chainComms, Result: modalResult(chainComms, chainRes)}
			}
		}
		r, err := solver.SolveBaseWarmCtx(ctx, rel.comms[k], loads[k], warm)
		if err != nil {
			return nil, false, fmt.Errorf("delta interval %d: %w", k, err)
		}
		if warm.Result != nil {
			res.SeededIntervals++
		}
		if opts.WarmStart {
			chainComms, chainRes, chainHash = rel.comms[k], r, h
		}
		state.Results[k] = r
		res.FWIters += r.Iters
		// Touched intervals contribute the batch's MARGINAL objective on
		// top of the background, reused intervals their stored absolute
		// objective — the sum is a progress diagnostic, not a valid bound.
		lower += r.Objective * iv.Length()
	}
	res.State = state
	res.ResidualLowerBound = lower
	res.Intervals = K
	res.DeltaUsed = true
	res.Drift = drift

	// Candidate aggregation and rounding restricted to the touched
	// intervals. This loses nothing: every batch flow starts at Now, so it
	// covers an interval iff its deadline reaches the interval's end, and
	// every interval it covers is touched by construction.
	spans := make(map[flow.ID]float64, len(free))
	for _, r := range free {
		spans[r.f.ID] = r.f.Deadline - r.start
		res.Rates[r.f.ID] = r.density
		res.Starts[r.f.ID] = r.start
	}
	tRel := &relaxation{}
	roundBase := make([][]float64, K)
	for k := range intervals {
		if touched[k] {
			roundBase[k] = loads[k]
			tRel.intervals = append(tRel.intervals, intervals[k])
			tRel.comms = append(tRel.comms, rel.comms[k])
			tRel.results = append(tRel.results, state.Results[k])
		}
	}
	interner := graph.NewPathInterner()
	cands := aggregateCandidates(tRel, spans, interner)
	res.Candidates = make(map[flow.ID][]CandidatePath, len(free))
	for _, r := range free {
		list := cands[r.f.ID]
		if len(list) == 0 {
			return nil, false, fmt.Errorf("%w: flow %d received no candidate paths", ErrInfeasible, r.f.ID)
		}
		out := make([]CandidatePath, len(list))
		for i, c := range list {
			out[i] = CandidatePath{Path: interner.Path(c.handle), Weight: c.weight}
		}
		res.Candidates[r.f.ID] = out
	}
	capLimit := math.Inf(1)
	if in.Model.Capped() {
		capLimit = in.Model.C
	}
	best, bestMaxRate, feasibleFound, attempts := roundFreeFlows(free, cands, intervals, roundBase, interner, opts, in.Argmax, capLimit, nE)
	for _, r := range free {
		res.Paths[r.f.ID] = interner.Path(best[r.f.ID])
	}
	res.Attempts = attempts
	res.CapacityFeasible = feasibleFound
	res.MaxRate = bestMaxRate
	return res, true, nil
}
