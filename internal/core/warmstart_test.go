package core

import (
	"context"
	"math"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// warmInstance builds the canonical 40-flow fat-tree relaxation workload.
func warmInstance(t *testing.T) (*topology.Topology, *flow.Set, power.Model) {
	t.Helper()
	ft, err := topology.FatTree(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 40, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs, power.Model{Mu: 1, Alpha: 2, C: 1e12}
}

// TestWarmStartMatchesColdWithinTolerance: warm-started interval chains
// must land on the same relaxation value as cold starts up to the solver's
// duality-gap tolerance — the two differ only in Frank–Wolfe trajectory.
func TestWarmStartMatchesColdWithinTolerance(t *testing.T) {
	ft, fs, m := warmInstance(t)
	solve := func(warm bool) float64 {
		opts := DCFSROptions{
			Seed:      1,
			Solver:    mcfsolve.Options{MaxIters: 25},
			WarmStart: warm,
		}.withDefaults()
		rel, err := solveRelaxation(context.Background(), graph.Compile(ft.Graph), fs, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rel.lowerBound
	}
	cold := solve(false)
	warm := solve(true)
	if math.Abs(cold-warm)/cold > 1e-2 {
		t.Fatalf("warm-start LB drifted beyond solver tolerance: cold %v warm %v", cold, warm)
	}
}

// TestWarmStartDeterministicAcrossParallelism: the fixed-size block fan-out
// must make relaxation results independent of the worker count, with and
// without warm starts.
func TestWarmStartDeterministicAcrossParallelism(t *testing.T) {
	ft, fs, m := warmInstance(t)
	for _, warm := range []bool{false, true} {
		var ref float64
		for i, par := range []int{1, 2, 7} {
			opts := DCFSROptions{
				Seed:        1,
				Solver:      mcfsolve.Options{MaxIters: 25},
				Parallelism: par,
				WarmStart:   warm,
			}.withDefaults()
			rel, err := solveRelaxation(context.Background(), graph.Compile(ft.Graph), fs, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = rel.lowerBound
			} else if rel.lowerBound != ref {
				t.Fatalf("warm=%v: LB depends on Parallelism: %v (par=1) vs %v (par=%d)",
					warm, ref, rel.lowerBound, par)
			}
		}
	}
}

// TestWarmStartSolverAPI: SolveWarm seeded with a previous result must
// reproduce a feasible decomposition for matching commodities.
func TestWarmStartSolverAPI(t *testing.T) {
	ft, _, m := warmInstance(t)
	comms := []mcfsolve.Commodity{
		{ID: 1, Src: ft.Hosts[0], Dst: ft.Hosts[9], Demand: 2},
		{ID: 2, Src: ft.Hosts[3], Dst: ft.Hosts[12], Demand: 1.5},
	}
	s, err := mcfsolve.NewSolver(ft.Graph, m, mcfsolve.Options{MaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve(comms)
	if err != nil {
		t.Fatal(err)
	}
	// Second instance: shared flow 1 (warm-startable), new flow 3 (cold).
	comms2 := []mcfsolve.Commodity{
		{ID: 1, Src: ft.Hosts[0], Dst: ft.Hosts[9], Demand: 2},
		{ID: 3, Src: ft.Hosts[5], Dst: ft.Hosts[14], Demand: 1},
	}
	second, err := s.SolveWarm(comms2, mcfsolve.WarmStart{Commodities: comms, Result: first})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range comms2 {
		var total float64
		for _, wp := range second.PathsByCommodity[i] {
			if err := wp.Path.Validate(ft.Graph, c.Src, c.Dst); err != nil {
				t.Fatalf("commodity %d: invalid path: %v", i, err)
			}
			total += wp.Weight
		}
		if math.Abs(total-c.Demand) > 1e-6*c.Demand {
			t.Fatalf("commodity %d: decomposition weight %v != demand %v", i, total, c.Demand)
		}
	}
}
