package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/mcfsolve"
	"dcnflow/internal/power"
	"dcnflow/internal/topology"
)

// metamorphic workload helper: a small fat-tree instance.
func smallInstance(t *testing.T, seed int64, n int) (*topology.Topology, *flow.Set) {
	t.Helper()
	ft, err := topology.FatTree(4, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: n, T0: 1, T1: 50, SizeMean: 8, SizeStddev: 2,
		Hosts: ft.Hosts, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ft, fs
}

// shiftFlows translates every span by delta.
func shiftFlows(t *testing.T, fs *flow.Set, delta float64) *flow.Set {
	t.Helper()
	raw := fs.Flows()
	for i := range raw {
		raw[i].Release += delta
		raw[i].Deadline += delta
	}
	out, err := flow.NewSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scaleFlows multiplies every size by c.
func scaleFlows(t *testing.T, fs *flow.Set, c float64) *flow.Set {
	t.Helper()
	raw := fs.Flows()
	for i := range raw {
		raw[i].Size *= c
	}
	out, err := flow.NewSet(raw)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetamorphicDCFSTimeShiftInvariant: shifting all spans by a constant
// leaves the Most-Critical-First energy unchanged.
func TestMetamorphicDCFSTimeShiftInvariant(t *testing.T) {
	ft, fs := smallInstance(t, 31, 15)
	m := power.Model{Mu: 1, Alpha: 2}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	solve := func(set *flow.Set) float64 {
		res, err := SolveDCFS(DCFSInput{Graph: ft.Graph, Flows: set, Paths: paths, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule.EnergyDynamic(m)
	}
	base := solve(fs)
	shifted := solve(shiftFlows(t, fs, 123.5))
	if math.Abs(base-shifted)/base > 1e-9 {
		t.Fatalf("time shift changed energy: %v vs %v", base, shifted)
	}
}

// TestMetamorphicDCFSSizeScaling: with sigma = 0, scaling all sizes by c
// scales the optimal dynamic energy by exactly c^alpha (rates scale
// linearly, energy = sum w * s^(alpha-1)).
func TestMetamorphicDCFSSizeScaling(t *testing.T) {
	const alpha = 2.5
	ft, fs := smallInstance(t, 32, 12)
	m := power.Model{Mu: 1, Alpha: alpha}
	paths := make(map[flow.ID]graph.Path, fs.Len())
	for _, f := range fs.Flows() {
		p, err := ft.Graph.ShortestPath(f.Src, f.Dst)
		if err != nil {
			t.Fatal(err)
		}
		paths[f.ID] = p
	}
	solve := func(set *flow.Set) float64 {
		res, err := SolveDCFS(DCFSInput{Graph: ft.Graph, Flows: set, Paths: paths, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedule.EnergyDynamic(m)
	}
	base := solve(fs)
	const c = 3.0
	scaled := solve(scaleFlows(t, fs, c))
	want := base * math.Pow(c, alpha)
	if math.Abs(scaled-want)/want > 1e-9 {
		t.Fatalf("scaling law violated: got %v, want %v", scaled, want)
	}
}

// TestMetamorphicLowerBoundScaling: the fractional LB obeys the same
// c^alpha law under sigma = 0 (densities scale linearly, envelope = g).
func TestMetamorphicLowerBoundScaling(t *testing.T) {
	ft, fs := smallInstance(t, 33, 10)
	m := power.Model{Mu: 1, Alpha: 2}
	opts := DCFSROptions{Solver: mcfsolve.Options{MaxIters: 40, Tol: 1e-8}}
	base, err := LowerBound(ft.Graph, fs, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	const c = 2.0
	scaled, err := LowerBound(ft.Graph, scaleFlows(t, fs, c), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := base * c * c
	if math.Abs(scaled-want)/want > 1e-2 { // Frank–Wolfe tolerance
		t.Fatalf("LB scaling: got %v, want ~%v", scaled, want)
	}
}

// TestMetamorphicDCFSRSubsetMonotone: removing flows never increases the
// Random-Schedule lower bound.
func TestMetamorphicDCFSRSubsetMonotone(t *testing.T) {
	ft, fs := smallInstance(t, 34, 10)
	m := power.Model{Mu: 1, Alpha: 2}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := fs.Flows()
		keep := raw[:0]
		for _, f := range raw {
			if rng.Float64() < 0.7 {
				keep = append(keep, f)
			}
		}
		if len(keep) == 0 {
			return true
		}
		sub, err := flow.NewSet(keep)
		if err != nil {
			return false
		}
		full, err := LowerBound(ft.Graph, fs, m, DCFSROptions{Solver: mcfsolve.Options{MaxIters: 25}})
		if err != nil {
			return false
		}
		partial, err := LowerBound(ft.Graph, sub, m, DCFSROptions{Solver: mcfsolve.Options{MaxIters: 25}})
		if err != nil {
			return false
		}
		// 2% slack for solver tolerance.
		return partial <= full*1.02
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
