package sim

import (
	"fmt"
	"strings"
	"testing"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

// stubEngine admits every flow at its density except the IDs in skip, and
// records the event order it observes.
type stubEngine struct {
	g      *graph.Graph
	sched  *schedule.Schedule
	skip   map[flow.ID]bool
	events []string
	last   float64
}

func (e *stubEngine) Arrive(f flow.Flow) error {
	e.events = append(e.events, fmt.Sprintf("arrive:%d", f.ID))
	if f.Release < e.last-timeline.Eps {
		return fmt.Errorf("arrival at %v before clock %v", f.Release, e.last)
	}
	if e.skip[f.ID] {
		return nil
	}
	p, err := e.g.ShortestPath(f.Src, f.Dst)
	if err != nil {
		return err
	}
	return e.sched.SetFlow(&schedule.FlowSchedule{
		FlowID: f.ID,
		Path:   p,
		Segments: []schedule.RateSegment{{
			Interval: timeline.Interval{Start: f.Release, End: f.Deadline},
			Rate:     f.Density(),
		}},
	})
}

func (e *stubEngine) AdvanceTo(t float64) error {
	if t > e.last {
		e.last = t
	}
	return nil
}

func (e *stubEngine) Finish() (*schedule.Schedule, error) {
	e.events = append(e.events, "finish")
	return e.sched, nil
}

func TestReplayOnlineDrivesEngineInReleaseOrder(t *testing.T) {
	top, err := topology.Line(3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := top.Hosts[0], top.Hosts[1], top.Hosts[2]
	flows, err := flow.NewSet([]flow.Flow{
		{Src: a, Dst: c, Release: 5, Deadline: 9, Size: 4},
		{Src: a, Dst: b, Release: 1, Deadline: 6, Size: 2},
		{Src: b, Dst: c, Release: 3, Deadline: 8, Size: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	t0, t1 := flows.Horizon()
	eng := &stubEngine{
		g:     top.Graph,
		sched: schedule.New(timeline.Interval{Start: t0, End: t1}),
		skip:  map[flow.ID]bool{2: true},
	}
	rep, err := ReplayOnline(top.Graph, flows, m, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals must come in release order (flow 1 released first), with
	// finish last.
	want := "arrive:1,arrive:2,arrive:0,finish"
	if got := strings.Join(eng.events, ","); got != want {
		t.Fatalf("event order %q, want %q", got, want)
	}
	if rep.Admitted != 2 || rep.Rejected != 1 {
		t.Fatalf("admitted/rejected = %d/%d, want 2/1", rep.Admitted, rep.Rejected)
	}
	// The skipped flow counts as a simulator miss but not as an admitted
	// violation.
	if rep.DeadlineViolations != 0 {
		t.Fatalf("violations = %d, want 0", rep.DeadlineViolations)
	}
	if rep.Sim.DeadlinesMissed != 1 || rep.Sim.DeadlinesMet != 2 {
		t.Fatalf("sim deadlines met/missed = %d/%d", rep.Sim.DeadlinesMet, rep.Sim.DeadlinesMissed)
	}
	if rep.Energy <= 0 || rep.Energy != rep.Sim.TotalEnergy {
		t.Fatalf("energy %v vs sim %v", rep.Energy, rep.Sim.TotalEnergy)
	}
}

func TestReplayOnlineBadInput(t *testing.T) {
	top, err := topology.Line(3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	if _, err := ReplayOnline(nil, nil, m, nil, Options{}); err == nil {
		t.Fatal("nil arguments accepted")
	}
	flows, _ := flow.NewSet([]flow.Flow{{Src: top.Hosts[0], Dst: top.Hosts[1], Release: 0, Deadline: 1, Size: 1}})
	if _, err := ReplayOnline(top.Graph, flows, m, nil, Options{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}
