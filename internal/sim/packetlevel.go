package sim

import (
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// PacketLevelOptions configures the store-and-forward simulation.
type PacketLevelOptions struct {
	// StepsPerInterval controls the fluid time step: each decomposition
	// interval is simulated in this many steps; default 40.
	StepsPerInterval int
}

// PacketLevelResult reports the outcome of simulating the per-link EDF
// serialisation discipline with store-and-forward across hops.
type PacketLevelResult struct {
	DeadlinesMet, DeadlinesMissed int
	// MaxLateness is the largest completion-past-deadline over all flows
	// (0 when every deadline holds).
	MaxLateness float64
	// Completion maps every flow to its measured end-to-end completion
	// time (+Inf if data remained undelivered at the horizon end).
	Completion map[flow.ID]float64
}

// RunPacketLevel simulates the Random-Schedule transmission discipline at
// the link level: within each decomposition interval, every link serves
// the buffered data of its flows one at a time in EDF order at the
// aggregate rate sum_j D_j, with data propagating hop by hop
// (store-and-forward). Theorem 4's argument is per-link; this simulation
// measures how the discipline behaves end-to-end, reporting per-flow
// completion times and lateness.
//
// The input schedule must be a Random-Schedule-style output: each flow at
// its constant density rate over its span on a single path.
func RunPacketLevel(g *graph.Graph, flows *flow.Set, sched *schedule.Schedule, opts PacketLevelOptions) (*PacketLevelResult, error) {
	if g == nil || flows == nil || sched == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadInput)
	}
	steps := opts.StepsPerInterval
	if steps <= 0 {
		steps = 40
	}

	var times []float64
	for _, f := range flows.Flows() {
		times = append(times, f.Release, f.Deadline)
	}
	intervals := timeline.Decompose(timeline.Breakpoints(times))
	if len(intervals) == 0 {
		return &PacketLevelResult{Completion: map[flow.ID]float64{}}, nil
	}

	type hopState struct {
		// buffered data per (link, flow).
		buf map[graph.EdgeID]map[flow.ID]float64
	}
	state := hopState{buf: make(map[graph.EdgeID]map[flow.ID]float64)}
	bufOn := func(eid graph.EdgeID) map[flow.ID]float64 {
		b, ok := state.buf[eid]
		if !ok {
			b = make(map[flow.ID]float64)
			state.buf[eid] = b
		}
		return b
	}

	paths := make(map[flow.ID][]graph.EdgeID, flows.Len())
	byFlow := make(map[flow.ID]flow.Flow, flows.Len())
	delivered := make(map[flow.ID]float64, flows.Len())
	completion := make(map[flow.ID]float64, flows.Len())
	for _, f := range flows.Flows() {
		fs := sched.FlowSchedule(f.ID)
		if fs == nil {
			return nil, fmt.Errorf("%w: flow %d unscheduled", ErrBadInput, f.ID)
		}
		paths[f.ID] = fs.Path.Edges
		byFlow[f.ID] = f
		completion[f.ID] = math.Inf(1)
	}
	// Per link, the flows crossing it (for rate computation).
	linkFlows := make(map[graph.EdgeID][]flow.Flow)
	for fid, edges := range paths {
		for _, eid := range edges {
			linkFlows[eid] = append(linkFlows[eid], byFlow[fid])
		}
	}

	// EDF order helper: flows sorted by deadline then id.
	edfOrder := func(ids []flow.ID) {
		sort.Slice(ids, func(a, b int) bool {
			fa, fb := byFlow[ids[a]], byFlow[ids[b]]
			if fa.Deadline != fb.Deadline {
				return fa.Deadline < fb.Deadline
			}
			return fa.ID < fb.ID
		})
	}

	for _, iv := range intervals {
		dt := iv.Length() / float64(steps)
		if dt <= 0 {
			continue
		}
		// Aggregate service rate per link for this interval: sum of
		// densities of flows active through the whole interval.
		rate := make(map[graph.EdgeID]float64, len(linkFlows))
		for eid, lfs := range linkFlows {
			for _, f := range lfs {
				if f.Release <= iv.Start+timeline.Eps && f.Deadline >= iv.End-timeline.Eps {
					rate[eid] += f.Density()
				}
			}
		}
		maxHops := 1
		for _, edges := range paths {
			if len(edges) > maxHops {
				maxHops = len(edges)
			}
		}
		eids := make([]graph.EdgeID, 0, len(rate))
		for eid := range rate {
			eids = append(eids, eid)
		}
		sort.Slice(eids, func(a, b int) bool { return eids[a] < eids[b] })

		for s := 0; s < steps; s++ {
			t := iv.Start + float64(s)*dt
			tEnd := t + dt
			// Source injection: active flows feed their first hop at
			// density rate.
			for fid, edges := range paths {
				f := byFlow[fid]
				if f.Release <= t+timeline.Eps && f.Deadline >= tEnd-timeline.Eps && len(edges) > 0 {
					bufOn(edges[0])[fid] += f.Density() * dt
				}
			}
			// Per-link EDF service with cut-through cascading: data served
			// at hop h becomes available at hop h+1 within the same step
			// (the paper's fluid semantics), bounded by each link's total
			// step capacity rate*dt.
			capLeft := make(map[graph.EdgeID]float64, len(eids))
			for _, eid := range eids {
				capLeft[eid] = rate[eid] * dt
			}
			for pass := 0; pass < maxHops; pass++ {
				moved := false
				for _, eid := range eids {
					if capLeft[eid] <= 0 {
						continue
					}
					buf := bufOn(eid)
					ids := make([]flow.ID, 0, len(buf))
					for fid, amt := range buf {
						if amt > timeline.Eps*1e-3 {
							ids = append(ids, fid)
						}
					}
					edfOrder(ids)
					for _, fid := range ids {
						if capLeft[eid] <= 0 {
							break
						}
						take := math.Min(capLeft[eid], buf[fid])
						if take <= 0 {
							continue
						}
						buf[fid] -= take
						capLeft[eid] -= take
						moved = true
						edges := paths[fid]
						hop := -1
						for i, e := range edges {
							if e == eid {
								hop = i
								break
							}
						}
						if hop == -1 {
							return nil, fmt.Errorf("sim: flow %d buffered on link %d not on its path", fid, eid)
						}
						if hop+1 < len(edges) {
							bufOn(edges[hop+1])[fid] += take
						} else {
							delivered[fid] += take
							f := byFlow[fid]
							if delivered[fid] >= f.Size*(1-1e-9)-1e-12 && math.IsInf(completion[fid], 1) {
								completion[fid] = tEnd
							}
						}
					}
				}
				if !moved {
					break
				}
			}
		}
	}

	res := &PacketLevelResult{Completion: completion}
	for fid, f := range byFlow {
		c := completion[fid]
		if c <= f.Deadline+timeline.Eps {
			res.DeadlinesMet++
		} else {
			res.DeadlinesMissed++
			late := c - f.Deadline
			if math.IsInf(c, 1) {
				late = math.Inf(1)
			}
			if late > res.MaxLateness {
				res.MaxLateness = late
			}
		}
	}
	return res, nil
}
