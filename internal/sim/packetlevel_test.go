package sim

import (
	"errors"
	"math"
	"testing"

	"dcnflow/internal/core"
	"dcnflow/internal/flow"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
	"dcnflow/internal/topology"
)

func TestPacketLevelSingleFlow(t *testing.T) {
	line, err := topology.Line(3, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[2], Release: 0, Deadline: 10, Size: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	res, err := core.SolveDCFSR(core.DCFSRInput{Graph: line.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := RunPacketLevel(line.Graph, fs, res.Schedule, PacketLevelOptions{StepsPerInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if pl.DeadlinesMissed != 0 {
		t.Fatalf("single flow missed its deadline (completion %v)", pl.Completion[0])
	}
	// With 2 hops and fluid steps, completion lands near the deadline
	// (store-and-forward adds at most one step per hop).
	if c := pl.Completion[0]; c < 9 || c > 10+0.3 {
		t.Fatalf("completion = %v, want ~10", c)
	}
}

func TestPacketLevelRandomScheduleFatTree(t *testing.T) {
	ft, err := topology.FatTree(4, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.Uniform(flow.GenConfig{
		N: 15, T0: 1, T1: 100, SizeMean: 10, SizeStddev: 3,
		Hosts: ft.Hosts, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := power.Model{Mu: 1, Alpha: 2, C: 1e9}
	res, err := core.SolveDCFSR(core.DCFSRInput{Graph: ft.Graph, Flows: fs, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := RunPacketLevel(ft.Graph, fs, res.Schedule, PacketLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Store-and-forward introduces bounded per-hop lag; with the default
	// resolution the discipline should deliver everything with at most a
	// small tail past the deadline.
	if pl.DeadlinesMet == 0 {
		t.Fatal("no deadlines met at all")
	}
	if math.IsInf(pl.MaxLateness, 1) {
		t.Fatal("some flow never completed")
	}
	_, t1 := fs.Horizon()
	_ = t1
	for fid, c := range pl.Completion {
		if math.IsInf(c, 1) {
			t.Fatalf("flow %d undelivered", fid)
		}
	}
}

func TestPacketLevelBadInput(t *testing.T) {
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet([]flow.Flow{
		{Src: line.Hosts[0], Dst: line.Hosts[1], Release: 0, Deadline: 1, Size: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPacketLevel(nil, fs, schedule.New(timeline.Interval{}), PacketLevelOptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
	if _, err := RunPacketLevel(line.Graph, fs, schedule.New(timeline.Interval{}), PacketLevelOptions{}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("unscheduled flow err = %v, want ErrBadInput", err)
	}
}

func TestPacketLevelEmptyFlows(t *testing.T) {
	line, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := flow.NewSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPacketLevel(line.Graph, fs, schedule.New(timeline.Interval{}), PacketLevelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadlinesMet != 0 || res.DeadlinesMissed != 0 {
		t.Fatal("empty instance should have no deadline stats")
	}
}
