package sim

import (
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// EDFReport summarises the per-link EDF time-sharing check of Theorem 4.
type EDFReport struct {
	// LinksChecked is the number of links carrying at least one flow.
	LinksChecked int
	// IntervalsChecked counts (link, interval) pairs examined.
	IntervalsChecked int
	// Violations lists human-readable descriptions of any interval whose
	// per-link work could not be serialised by its end.
	Violations []string
}

// OK reports whether the discipline met every interval boundary.
func (r *EDFReport) OK() bool { return len(r.Violations) == 0 }

// VerifyEDFTimeSharing validates the packet-level discipline behind
// Random-Schedule (Theorem 4): within every decomposition interval I_k,
// each link e serialises the data of its flows (D_i * |I_k| each) at rate
// sum_j D_j in EDF order, and all of it must finish by the end of the
// interval. The fluid schedule passed in must be a Random-Schedule output
// (flows at constant density rate over their spans).
func VerifyEDFTimeSharing(g *graph.Graph, flows *flow.Set, sched *schedule.Schedule) (*EDFReport, error) {
	if g == nil || flows == nil || sched == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadInput)
	}
	var times []float64
	for _, f := range flows.Flows() {
		times = append(times, f.Release, f.Deadline)
	}
	intervals := timeline.Decompose(timeline.Breakpoints(times))

	// Per link, the flows crossing it.
	linkFlows := make(map[graph.EdgeID][]flow.Flow)
	for _, f := range flows.Flows() {
		fs := sched.FlowSchedule(f.ID)
		if fs == nil {
			return nil, fmt.Errorf("%w: flow %d unscheduled", ErrBadInput, f.ID)
		}
		for _, eid := range fs.Path.Edges {
			linkFlows[eid] = append(linkFlows[eid], f)
		}
	}

	report := &EDFReport{LinksChecked: len(linkFlows)}
	for eid, lfs := range linkFlows {
		for _, iv := range intervals {
			// Flows active through the whole interval.
			var active []flow.Flow
			var totalRate float64
			for _, f := range lfs {
				if f.Release <= iv.Start+timeline.Eps && f.Deadline >= iv.End-timeline.Eps {
					active = append(active, f)
					totalRate += f.Density()
				}
			}
			if len(active) == 0 {
				continue
			}
			report.IntervalsChecked++
			// Serialise in EDF order at rate totalRate: flow j transmits
			// D_j * |I_k| units, taking D_j * |I_k| / totalRate time.
			sort.Slice(active, func(a, b int) bool {
				if active[a].Deadline != active[b].Deadline {
					return active[a].Deadline < active[b].Deadline
				}
				return active[a].ID < active[b].ID
			})
			t := iv.Start
			for _, f := range active {
				t += f.Density() * iv.Length() / totalRate
			}
			// Theorem 4: total service time is exactly |I_k|.
			if t > iv.End+math.Max(1e-9, 1e-9*iv.Length()) {
				report.Violations = append(report.Violations,
					fmt.Sprintf("link %d interval %v: EDF finishes at %g past %g", eid, iv, t, iv.End))
			}
		}
	}
	return report, nil
}
