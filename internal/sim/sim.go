// Package sim provides a discrete-event fluid network simulator — the Go
// equivalent of the Python simulator the authors used for Section V-C. It
// executes a schedule on a network, independently integrating link power
// over time, tracking per-flow completion, and checking deadlines and
// capacities at event granularity. Because it re-derives energy from the
// event timeline rather than from the schedule's own accounting, it serves
// as a cross-check of the analytic energy computations.
package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dcnflow/internal/flow"
	"dcnflow/internal/graph"
	"dcnflow/internal/power"
	"dcnflow/internal/schedule"
	"dcnflow/internal/timeline"
)

// Options configures a simulation run.
type Options struct {
	// Tol is the relative tolerance for completion checks; zero selects
	// 1e-6.
	Tol float64
}

// FlowStats reports the simulated outcome for one flow.
type FlowStats struct {
	ID flow.ID
	// Completed is the amount of data delivered by the deadline.
	Completed float64
	// CompletionTime is when the last byte left; +Inf if never finished.
	CompletionTime float64
	// DeadlineMet reports whether the full size arrived by the deadline.
	DeadlineMet bool
}

// Result is the outcome of a simulation.
type Result struct {
	// DynamicEnergy is the integrated speed-scaling energy across links.
	DynamicEnergy float64
	// IdleEnergy is sigma * horizon * |active links|.
	IdleEnergy float64
	// TotalEnergy = DynamicEnergy + IdleEnergy (Eq. 5).
	TotalEnergy float64
	// MaxLinkRate is the peak instantaneous aggregate rate on any link.
	MaxLinkRate float64
	// CapacityViolations counts (link, event-segment) pairs exceeding C.
	CapacityViolations int
	// DeadlinesMet / DeadlinesMissed count flows.
	DeadlinesMet, DeadlinesMissed int
	// Flows holds per-flow statistics in flow-id order.
	Flows []FlowStats
	// ActiveLinks is the number of links that carried traffic.
	ActiveLinks int
	// Events is the number of event boundaries processed.
	Events int
}

// ErrBadInput reports invalid simulator input.
var ErrBadInput = errors.New("sim: invalid input")

// Run executes the schedule and returns measured statistics.
func Run(g *graph.Graph, flows *flow.Set, sched *schedule.Schedule, m power.Model, opts Options) (*Result, error) {
	if g == nil || flows == nil || sched == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-6
	}

	// Event boundaries: all segment starts and ends.
	var bounds []float64
	type segRef struct {
		fid  flow.ID
		path []graph.EdgeID
		seg  schedule.RateSegment
	}
	var segs []segRef
	for _, fid := range sched.FlowIDs() {
		fs := sched.FlowSchedule(fid)
		for _, seg := range fs.Segments {
			bounds = append(bounds, seg.Interval.Start, seg.Interval.End)
			segs = append(segs, segRef{fid: fid, path: fs.Path.Edges, seg: seg})
		}
	}
	bounds = timeline.Breakpoints(bounds)

	res := &Result{}
	completed := make(map[flow.ID]float64, flows.Len())
	completionTime := make(map[flow.ID]float64, flows.Len())
	for _, f := range flows.Flows() {
		completionTime[f.ID] = math.Inf(1)
	}
	sizes := make(map[flow.ID]float64, flows.Len())
	for _, f := range flows.Flows() {
		sizes[f.ID] = f.Size
	}
	activeLinks := make(map[graph.EdgeID]bool)

	linkRate := make(map[graph.EdgeID]float64)
	for i := 0; i+1 < len(bounds); i++ {
		t, tNext := bounds[i], bounds[i+1]
		dt := tNext - t
		if dt <= timeline.Eps {
			continue
		}
		res.Events++
		mid := (t + tNext) / 2
		for k := range linkRate {
			delete(linkRate, k)
		}
		for _, sr := range segs {
			if !sr.seg.Interval.Contains(mid) {
				continue
			}
			// Flow progress.
			before := completed[sr.fid]
			after := before + sr.seg.Rate*dt
			completed[sr.fid] = after
			if before < sizes[sr.fid]-timeline.Eps && after >= sizes[sr.fid]-timeline.Eps {
				// Completion happens within this segment; interpolate.
				need := sizes[sr.fid] - before
				completionTime[sr.fid] = t + need/sr.seg.Rate
			}
			for _, eid := range sr.path {
				linkRate[eid] += sr.seg.Rate
				activeLinks[eid] = true
			}
		}
		// Accumulate links in id order for deterministic float sums.
		eids := make([]graph.EdgeID, 0, len(linkRate))
		for eid := range linkRate {
			eids = append(eids, eid)
		}
		sort.Slice(eids, func(a, b int) bool { return eids[a] < eids[b] })
		for _, eid := range eids {
			rate := linkRate[eid]
			res.DynamicEnergy += m.G(rate) * dt
			if rate > res.MaxLinkRate {
				res.MaxLinkRate = rate
			}
			e, err := g.Edge(eid)
			if err != nil {
				return nil, fmt.Errorf("%w: schedule references unknown link %d", ErrBadInput, eid)
			}
			limit := e.Capacity
			if m.Capped() && m.C < limit {
				limit = m.C
			}
			if rate > limit*(1+tol) {
				res.CapacityViolations++
			}
		}
	}

	res.ActiveLinks = len(activeLinks)
	res.IdleEnergy = float64(res.ActiveLinks) * m.Sigma * sched.Horizon.Length()
	res.TotalEnergy = res.DynamicEnergy + res.IdleEnergy

	for _, f := range flows.Flows() {
		met := completed[f.ID] >= f.Size*(1-tol)-tol && completionTime[f.ID] <= f.Deadline+timeline.Eps
		if met {
			res.DeadlinesMet++
		} else {
			res.DeadlinesMissed++
		}
		res.Flows = append(res.Flows, FlowStats{
			ID:             f.ID,
			Completed:      completed[f.ID],
			CompletionTime: completionTime[f.ID],
			DeadlineMet:    met,
		})
	}
	sort.Slice(res.Flows, func(a, b int) bool { return res.Flows[a].ID < res.Flows[b].ID })
	return res, nil
}
